#!/usr/bin/env bash
# Crash-recovery matrix: SIGKILL a real `gep-bench oocrun` child at
# journal sync points and assert the recovered + resumed run produces a
# bit-identical result (same content digest as an uninterrupted run).
#
#   scripts/recovery-matrix.sh --fast   kill at 3 sync points (PR gate)
#   scripts/recovery-matrix.sh --full   kill at EVERY sync point, plus a
#                                       fault-injection leg (nightly)
#
# Set GEP_BENCH to reuse a prebuilt binary; otherwise one is built.
set -euo pipefail

mode="${1:---fast}"
case "$mode" in
--fast | --full) ;;
*)
	echo "usage: $0 [--fast|--full]" >&2
	exit 2
	;;
esac

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

bin="${GEP_BENCH:-}"
if [[ -z "$bin" ]]; then
	bin="$workdir/gep-bench"
	echo "building gep-bench..."
	go build -o "$bin" ./cmd/gep-bench
fi

fail() {
	echo "FAIL: $*" >&2
	exit 1
}

# run_case NAME ARGS... : golden run, then kill/resume at sync points.
run_case() {
	local name="$1"
	shift
	local golden="$workdir/$name-golden"
	echo "== $name: golden run"
	"$bin" oocrun -dir "$golden" "$@" >"$workdir/$name-golden.log" ||
		fail "$name: golden run failed"
	local want
	want="$(awk '/^DIGEST/{print $2}' "$workdir/$name-golden.log")"
	[[ -n "$want" ]] || fail "$name: golden run printed no digest"
	mapfile -t syncs < <(awk '/^SYNC/{print $2}' "$workdir/$name-golden.log")
	((${#syncs[@]} >= 3)) || fail "$name: only ${#syncs[@]} sync points; geometry too coarse"

	local points=("${syncs[@]}")
	if [[ "$mode" == --fast ]]; then
		# First (just the load), one mid-run, and the last sync point.
		points=("${syncs[0]}" "${syncs[$((${#syncs[@]} / 2))]}" "${syncs[$((${#syncs[@]} - 1))]}")
	fi

	local p dir pid got
	for p in "${points[@]}"; do
		dir="$workdir/$name-kill$p"
		: >"$dir.log"
		"$bin" oocrun -dir "$dir" -hold "$p" "$@" >"$dir.log" &
		pid=$!
		# Wait for the child to park at the sync point, then kill it cold.
		local waited=0
		until grep -q '^HOLD' "$dir.log"; do
			kill -0 "$pid" 2>/dev/null || fail "$name: child died before HOLD $p (log: $(cat "$dir.log"))"
			sleep 0.1
			waited=$((waited + 1))
			((waited < 1200)) || fail "$name: timed out waiting for HOLD $p"
		done
		kill -9 "$pid"
		wait "$pid" 2>/dev/null || true

		"$bin" oocrun -dir "$dir" -resume "$@" >"$dir-resume.log" ||
			fail "$name: resume after kill at sync $p failed ($(tail -1 "$dir-resume.log" 2>/dev/null))"
		got="$(awk '/^DIGEST/{print $2}' "$dir-resume.log")"
		[[ "$got" == "$want" ]] ||
			fail "$name: kill at sync $p: resumed digest $got != golden $want"
		echo "ok $name sync=$p $(awk '/^RECOVER/{print}' "$dir-resume.log")"
	done
}

common=(-n 128 -tile 16 -checkpoint 8 -cache 262144 -stripes 3 -seed 42)

run_case lu "${common[@]}" -op lu
if [[ "$mode" == --full ]]; then
	run_case gauss "${common[@]}" -op gauss -compress
	run_case fw "${common[@]}" -op fw
	# Transient-fault leg: every 97th raw transfer fails once and is
	# retried; recovery must still be exact.
	run_case lu-faults "${common[@]}" -op lu -faults 97
else
	run_case gauss-compress "${common[@]}" -op gauss -compress
fi

echo "recovery matrix ($mode): all digests bit-identical"
