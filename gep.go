// Package gep is a cache-oblivious implementation of the Gaussian
// Elimination Paradigm (GEP) of Chowdhury and Ramachandran — the
// triply nested loop
//
//	for k, i, j:  if ⟨i,j,k⟩ ∈ Σ:  c[i,j] ← f(c[i,j], c[i,k], c[k,j], c[k,k])
//
// which covers Gaussian elimination and LU decomposition without
// pivoting, Floyd-Warshall all-pairs shortest paths, matrix
// multiplication, and many other dynamic programs.
//
// Three execution engines are provided:
//
//   - Iterative — the classic loop nest G: O(n³) time, O(n³/B) I/Os.
//   - CacheOblivious — the I-GEP recursion F: O(n³) time, only
//     O(n³/(B√M)) I/Os at every level of the memory hierarchy, without
//     knowing M or B. Exact for the standard instances above, but not
//     for arbitrary (f, Σ).
//   - General — the C-GEP recursion H: the same bounds as I-GEP and
//     guaranteed to match Iterative for every f and Σ, at the cost of
//     extra space (4n², or 2n² with GeneralCompact).
//
// Parallel executes the multithreaded recursion of the paper
// (span O(n log² n)); Multiply, FloydWarshall and Factorize expose the
// tuned application kernels. Parallel execution runs on a
// work-stealing fork-join scheduler: by default one process-wide
// instance sized by GOMAXPROCS, or — for callers hosting concurrent
// computations that must not contend for workers — per-computation
// instances created with NewRuntime and selected with WithRuntime
// (cmd/gep-server serves every job on its own instance this way).
//
// Matrices are addressed through the Grid interface, so the same
// engines run over in-core matrices, cache simulators and out-of-core
// stores. The recursive engines require power-of-two side lengths; use
// Pad to extend other sizes with a problem-neutral element.
package gep

import (
	"gep/internal/apsp"
	"gep/internal/core"
	"gep/internal/dp"
	"gep/internal/linalg"
	"gep/internal/matrix"
	"gep/internal/par"
)

// UpdateFunc is the GEP update f. It receives the indices ⟨i,j,k⟩ and
// the values x = c[i,j], u = c[i,k], v = c[k,j], w = c[k,k], and
// returns the new c[i,j]. It must be a pure function of its arguments.
// A typed UpdateFunc value is itself an Op, so any custom update can be
// passed straight to the engines.
type UpdateFunc[T any] = core.UpdateFunc[T]

// Op is an update operation the engines execute. Every UpdateFunc is
// an Op; the predefined ops below additionally carry fused block
// kernels that the flat-storage fast path dispatches to, eliminating
// the per-element indirect call (outputs are bit-identical either
// way). See MinPlusOp, MulAddOp, GaussElimOp, LUFactorOp, ClosureOp.
type Op[T any] = core.Op[T]

// Real enumerates the element types the predefined fused ops support.
type Real = interface{ core.Real }

// UpdateSet is the set Σ of updates to apply; see Full, GaussianSet,
// LUSet, Predicate and Explicit.
type UpdateSet = core.UpdateSet

// Grid is the n×n element accessor the engines operate on.
type Grid[T any] = matrix.Grid[T]

// Matrix is the standard in-core row-major implementation of Grid.
type Matrix[T any] = matrix.Dense[T]

// Option configures the recursive engines; see WithBaseSize,
// WithPrune, WithParallel and WithTableWidth.
type Option[T any] = core.Option[T]

// BitMatrix is a dense boolean matrix packed 64 cells per machine
// word. It implements Grid[bool], so every engine runs on it
// unchanged; the boolean-semiring and GF(2) ops (ClosureOp,
// GF2ElimOp) additionally dispatch word-parallel kernels — 64 cells
// per instruction — and a four-Russians table base case over it. See
// TransitiveClosurePacked, SolveGF2 and RankGF2 for packed
// applications.
type BitMatrix = matrix.Bits

// Standard update sets.
var (
	// Full contains every triple: Floyd-Warshall, matrix multiply.
	Full core.Full
	// GaussianSet is {k < i, k < j}: Gaussian elimination.
	GaussianSet core.Gaussian
	// LUSet is {k < i, k <= j}: LU decomposition with multipliers.
	LUSet core.LU
)

// Predicate builds an UpdateSet from a membership function.
func Predicate(pred func(i, j, k int) bool) UpdateSet {
	return core.Predicate{Pred: pred}
}

// NewMatrix returns a zero-initialized n×n matrix.
func NewMatrix[T any](n int) *Matrix[T] { return matrix.NewSquare[T](n) }

// NewBitMatrix returns a zero-initialized n×n packed boolean matrix.
func NewBitMatrix(n int) *BitMatrix { return matrix.NewBitsSquare(n) }

// PackMatrix converts a boolean matrix to packed form.
func PackMatrix(m *Matrix[bool]) *BitMatrix { return matrix.PackBool(m) }

// UnpackMatrix converts a packed matrix back to element-wise form.
func UnpackMatrix(b *BitMatrix) *Matrix[bool] { return matrix.UnpackBool(b) }

// FromRows builds a matrix from rows, copying the data.
func FromRows[T any](rows [][]T) *Matrix[T] { return matrix.FromRows(rows) }

// Pad returns a copy of m extended to the next power-of-two side; new
// off-diagonal cells hold fill and new diagonal cells hold diag.
func Pad[T any](m *Matrix[T], fill, diag T) *Matrix[T] {
	return matrix.PadPow2Diag(m, fill, diag)
}

// Crop returns the leading n×n corner of m as a fresh matrix.
func Crop[T any](m *Matrix[T], n int) *Matrix[T] { return matrix.Crop(m, n) }

// WithBaseSize sets the side at which the recursive engines switch to
// an iterative kernel (the paper's empirically tuned base-size).
func WithBaseSize[T any](b int) Option[T] { return core.WithBaseSize[T](b) }

// WithPrune toggles the quadrant pruning test (default on).
func WithPrune[T any](on bool) Option[T] { return core.WithPrune[T](on) }

// WithParallel enables goroutine execution of Parallel's independent
// recursive calls down to the given grain.
func WithParallel[T any](grain int) Option[T] { return core.WithParallel[T](grain) }

// Runtime is one instance of the work-stealing fork-join scheduler the
// parallel engines run on. The engines default to a process-wide
// shared instance sized by GOMAXPROCS; NewRuntime creates additional
// isolated instances, each with its own worker budget and telemetry
// scope, so concurrent computations in one process (the jobs of
// cmd/gep-server, tenants of an embedding application) cannot occupy
// each other's workers. Pass an instance to the engines with
// WithRuntime, and release its workers with Close when done.
type Runtime = par.Runtime

// NewRuntime returns an isolated scheduler instance with the given
// worker budget (workers <= 0 sizes it from GOMAXPROCS and tracks it).
// Close it when done; see Runtime.
func NewRuntime(workers int) *Runtime { return par.NewRuntime(workers) }

// WithRuntime confines the parallel recursion's forks to rt (nil =
// the shared default runtime). Combine with WithParallel.
func WithRuntime[T any](rt *Runtime) Option[T] { return core.WithRuntime[T](rt) }

// WithTableWidth sets the four-Russians table width for engine runs
// over a BitMatrix (0 disables the table kernel; default 8). It is
// ignored for element-wise storage.
func WithTableWidth[T any](tw int) Option[T] { return core.WithTableWidth[T](tw) }

// MinPlusOp returns the fused min-plus update
// (Floyd-Warshall: x ← min(x, u+v)).
func MinPlusOp[T Real]() Op[T] { return core.MinPlus[T]{} }

// MulAddOp returns the fused multiply-accumulate update
// (matrix multiplication: x ← x + u·v).
func MulAddOp[T Real]() Op[T] { return core.MulAdd[T]{} }

// GaussElimOp returns the fused Gaussian-elimination update
// (x ← x − (u/w)·v), applied over GaussianSet.
func GaussElimOp[T Real]() Op[T] { return core.GaussElim[T]{} }

// LUFactorOp returns the fused LU update (multiplier on j == k,
// elimination otherwise), applied over LUSet.
func LUFactorOp[T Real]() Op[T] { return core.LUFactor[T]{} }

// ClosureOp returns the fused boolean-semiring update
// (transitive closure: x ← x ∨ (u ∧ v)). On a BitMatrix it runs
// word-parallel with a four-Russians base case.
func ClosureOp() Op[bool] { return core.Closure{} }

// GF2ElimOp returns the GF(2) Gaussian-elimination update
// (x ← x ⊕ (u ∧ v)), applied over GaussianSet. On a BitMatrix it runs
// word-parallel with a four-Russians base case. Like GaussElimOp it
// assumes elimination is possible without pivoting; for general GF(2)
// systems use SolveGF2 / RankGF2, which pivot.
func GF2ElimOp() Op[bool] { return core.GF2Elim{} }

// Iterative runs the classic GEP loop nest (the paper's G).
func Iterative[T any](c Grid[T], op Op[T], set UpdateSet) {
	core.RunGEP(c, op, set)
}

// CacheOblivious runs I-GEP (the paper's F): same updates as
// Iterative, O(n³/(B√M)) I/Os, in place. Use it for the standard
// instances (Floyd-Warshall, Gaussian elimination, LU, matrix
// multiplication and friends); for arbitrary f and Σ use General.
// The side must be a power of two.
func CacheOblivious[T any](c Grid[T], op Op[T], set UpdateSet, opts ...Option[T]) {
	core.RunIGEP(c, op, set, opts...)
}

// General runs C-GEP (the paper's H): cache-oblivious and guaranteed
// to produce Iterative's output for every f and Σ, using 4n² extra
// cells. The side must be a power of two.
func General[T any](c Grid[T], op Op[T], set UpdateSet, opts ...Option[T]) {
	core.RunCGEP(c, op, set, opts...)
}

// GeneralCompact is General with the reduced-space (2n²) scheme; it
// trades re-initialization passes for memory.
func GeneralCompact[T any](c Grid[T], op Op[T], set UpdateSet, opts ...Option[T]) {
	core.RunCGEPCompact(c, op, set, opts...)
}

// GeneralParallel runs C-GEP over the multithreaded Figure-6 schedule
// (§3: the parallel time bound of I-GEP applies to C-GEP too); combine
// with WithParallel to enable goroutines. The unconditional-exactness
// guarantee of General is preserved.
func GeneralParallel[T any](c Grid[T], op Op[T], set UpdateSet, opts ...Option[T]) {
	core.RunCGEPParallel(c, op, set, opts...)
}

// Parallel runs the multithreaded I-GEP recursion (the paper's
// A/B/C/D functions). Combine with WithParallel to enable goroutines;
// without it the call is equivalent to CacheOblivious.
func Parallel[T any](c Grid[T], op Op[T], set UpdateSet, opts ...Option[T]) {
	core.RunABCD(c, op, set, opts...)
}

// Multiply computes c += a·b with the cache-oblivious recursion over
// disjoint matrices (span O(n) when parallel). Sides must be equal
// powers of two.
func Multiply(c, a, b *Matrix[float64]) {
	linalg.MulIGEP(c, a, b, 64)
}

// MultiplyParallel is Multiply on goroutines.
func MultiplyParallel(c, a, b *Matrix[float64]) {
	linalg.MulIGEPParallel(c, a, b, 64, 128)
}

// MultiplyStrassen computes c = a·b (overwriting c, which must not
// alias a or b) with the sub-cubic Strassen-Winograd recursion over
// the fused classical kernels: O(n^lg7) work, deterministic output,
// any side length. Elementwise error vs the classical product is
// within linalg.StrassenErrorBound. See DESIGN.md §15.
func MultiplyStrassen(c, a, b *Matrix[float64]) {
	linalg.MulStrassen(c, a, b)
}

// MultiplyStrassenParallel is MultiplyStrassen on goroutines; the
// result is bit-identical to the serial MultiplyStrassen.
func MultiplyStrassenParallel(c, a, b *Matrix[float64]) {
	linalg.MulStrassenParallel(c, a, b)
}

// FloydWarshall computes all-pairs shortest path distances in place:
// d holds edge weights (+Inf for no edge, 0 diagonal) and is replaced
// by shortest-path distances. Any side length is accepted.
func FloydWarshall(d *Matrix[float64]) {
	n := d.N()
	if n == 0 {
		return
	}
	if matrix.IsPow2(n) {
		apsp.FWIGEPTiled(d, 64)
		return
	}
	p := matrix.PadPow2Diag(d, apsp.Inf, 0)
	apsp.FWIGEPTiled(p, 64)
	d.CopyFrom(p.Sub(0, 0, n, n))
}

// FloydWarshallParallel is FloydWarshall on goroutines (multithreaded
// I-GEP with the Figure-6 schedule, on the work-stealing runtime).
// Any side length is accepted; non-power-of-two inputs are padded the
// same way FloydWarshall pads them.
func FloydWarshallParallel(d *Matrix[float64]) {
	n := d.N()
	if n == 0 {
		return
	}
	if matrix.IsPow2(n) {
		apsp.FWParallel(d, 64, 128)
		return
	}
	p := matrix.PadPow2Diag(d, apsp.Inf, 0)
	apsp.FWParallel(p, 64, 128)
	d.CopyFrom(p.Sub(0, 0, n, n))
}

// Factorize performs in-place LU decomposition without pivoting
// (L strictly below the diagonal with implicit unit diagonal, U on and
// above). The matrix must be factorizable without pivoting; the side
// must be a power of two (use Pad with diag 1 otherwise).
func Factorize(a *Matrix[float64]) {
	linalg.LUIGEP(a, 64)
}

// FactorizeParallel is Factorize on goroutines. The side must be a
// power of two.
func FactorizeParallel(a *Matrix[float64]) {
	linalg.LUIGEPParallel(a, 64, 128)
}

// Solve solves A·x = b by cache-oblivious LU factorization followed by
// forward and backward substitution; a is overwritten with its
// factors. Any side length is accepted.
func Solve(a *Matrix[float64], b []float64) []float64 {
	n := a.N()
	if matrix.IsPow2(n) {
		linalg.LUIGEP(a, 64)
		return linalg.SolveLU(a, b)
	}
	p := matrix.PadPow2Diag(a, 0, 1)
	linalg.LUIGEP(p, 64)
	// Crop the factors directly back into a (one copy through a view,
	// not Crop-then-CopyFrom) and solve from them in place.
	a.CopyFrom(p.Sub(0, 0, n, n))
	return linalg.SolveLU(a, b)
}

// ErrSingular reports a (numerically) singular matrix from FactorCA
// or the other pivoted solvers; match with errors.Is.
var ErrSingular = linalg.ErrSingular

// PivotedLU is a P·A = L·U factorization with partial or tournament
// pivoting: Solve and Det consume it, Perm maps factored row index to
// original row index.
type PivotedLU = linalg.LUP

// FactorCA computes P·A = L·U with communication-avoiding tournament
// pivoting (CALU): pivot rows are chosen per block column by a
// reduction tree of small partial-pivoted factorizations, and the
// O(n³) trailing updates run through the cache-oblivious fused kernel
// tier. a is not modified; any side length is accepted. Singular
// input returns an error wrapping ErrSingular. See DESIGN.md §17.
func FactorCA(a *Matrix[float64]) (*PivotedLU, error) {
	return linalg.FactorCA(a)
}

// FactorCAParallel is FactorCA with the tournament and the trailing
// updates forked on the work-stealing runtime.
func FactorCAParallel(a *Matrix[float64]) (*PivotedLU, error) {
	return linalg.FactorCAParallel(a)
}

// Invert returns A⁻¹ via cache-oblivious LU; a is not modified. The
// matrix must be invertible without pivoting.
func Invert(a *Matrix[float64]) *Matrix[float64] { return linalg.Invert(a) }

// Determinant returns det(A) via cache-oblivious LU; a is not
// modified.
func Determinant(a *Matrix[float64]) float64 { return linalg.Determinant(a) }

// TransitiveClosure computes graph reachability in place (Warshall's
// algorithm — the boolean-semiring GEP instance): reach initially
// holds edge presence; afterwards reach[i][j] reports whether j is
// reachable from i. Any side length is accepted.
func TransitiveClosure(reach *Matrix[bool]) { apsp.TransitiveClosure(reach) }

// TransitiveClosureParallel is TransitiveClosure on goroutines
// (multithreaded I-GEP on the work-stealing runtime); bit-identical to
// the serial path at every worker count. Any side length is accepted.
func TransitiveClosureParallel(reach *Matrix[bool]) {
	apsp.ClosureParallel(reach, 64)
}

// TransitiveClosurePacked is TransitiveClosure over packed storage:
// word-parallel row unions plus the four-Russians table base case,
// typically tens of times faster than the element-wise path and
// bit-for-bit equal to it. Any side length is accepted.
func TransitiveClosurePacked(reach *BitMatrix) {
	apsp.TransitiveClosurePacked(reach, -1)
}

// TransitiveClosurePackedParallel is TransitiveClosurePacked on
// goroutines. reach must be word-aligned (true for any matrix from
// NewBitMatrix or PackMatrix; only mid-word sub-views are not).
func TransitiveClosurePackedParallel(reach *BitMatrix) {
	apsp.ClosurePackedParallel(reach, -1, 64)
}

// SolveGF2 solves A·x = b over GF(2) (XOR linear systems) with
// partial pivoting, word-parallel; a is not modified. ok is false
// exactly when the system is inconsistent (linalg.SolveGF2 reports the
// same condition as an error wrapping ErrSingular); free variables of
// underdetermined systems are set to false.
func SolveGF2(a *BitMatrix, b []bool) (x []bool, ok bool) {
	x, err := linalg.SolveGF2(a, b)
	return x, err == nil
}

// RankGF2 returns the rank of a over GF(2); a is not modified.
func RankGF2(a *BitMatrix) int { return linalg.RankGF2(a) }

// MatrixChain returns the minimal scalar-multiplication count and an
// optimal parenthesization for multiplying matrices with the given
// dimension vector (len(dims) = #matrices + 1) — the "simple-DP"
// companion application, solved cache-obliviously.
func MatrixChain(dims []int) (cost float64, order string) {
	return dp.MatrixChainOrder(dims)
}

// GapCosts configures Align; see internal/dp for the recurrence.
type GapCosts = dp.GapCosts

// Align computes the alignment-cost table of two sequences of lengths
// n and m under arbitrary gap costs, cache-obliviously; the total cost
// is the bottom-right cell.
func Align(n, m int, costs GapCosts) *Matrix[float64] {
	return dp.AlignCacheOblivious(n, m, costs, 64)
}

// LegalityReport is the outcome of CheckLegality.
type LegalityReport = core.LegalityReport

// CheckLegality differentially tests whether plain I-GEP is a legal
// transformation for the given (f, Σ) on random inputs (§2.3 of the
// paper): a found counterexample is definitive evidence that General
// must be used instead of CacheOblivious. gen may be nil for default
// random inputs; supply one to restrict to the loop nest's real input
// domain.
func CheckLegality(f UpdateFunc[int64], set UpdateSet, maxN, trials int, seed int64, gen core.InputGen) LegalityReport {
	return core.CheckIGEPLegality(f, set, maxN, trials, seed, gen)
}
