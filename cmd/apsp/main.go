// Command apsp computes all-pairs shortest paths with cache-oblivious
// Floyd-Warshall (I-GEP).
//
// Usage:
//
//	apsp [-base n] [-verify] [-path u,v] < graph.txt
//	apsp -random n,p,maxw [-seed s] [-verify] [-path u,v]
//
// The input format is an edge list: a header line "n m" followed by m
// lines "u v w" (0-based vertices, float weights). The distance matrix
// is written to stdout as n whitespace-separated rows ("inf" for
// unreachable pairs).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"gep/internal/apsp"
)

func main() {
	base := flag.Int("base", 32, "I-GEP base-case size")
	random := flag.String("random", "", "generate a random graph instead of reading stdin: n,p,maxw")
	seed := flag.Int64("seed", 1, "seed for -random")
	verify := flag.Bool("verify", false, "cross-check against the Dijkstra oracle (non-negative weights)")
	pathPair := flag.String("path", "", "also print a shortest path for the pair u,v")
	quiet := flag.Bool("quiet", false, "suppress the distance matrix (summary only)")
	flag.Parse()

	g, err := loadGraph(*random, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apsp: %v\n", err)
		os.Exit(1)
	}

	d := apsp.Solve(g, *base)

	if *verify {
		want := apsp.AllPairsDijkstra(g)
		for i := 0; i < g.N; i++ {
			for j := 0; j < g.N; j++ {
				if d.At(i, j) != want.At(i, j) {
					fmt.Fprintf(os.Stderr, "apsp: VERIFY FAILED at (%d,%d): %g vs %g\n",
						i, j, d.At(i, j), want.At(i, j))
					os.Exit(1)
				}
			}
		}
		fmt.Fprintf(os.Stderr, "apsp: verified against Dijkstra (%d vertices, %d edges)\n", g.N, g.Edges())
	}

	if !*quiet {
		for i := 0; i < g.N; i++ {
			parts := make([]string, g.N)
			for j := 0; j < g.N; j++ {
				if v := d.At(i, j); math.IsInf(v, 1) {
					parts[j] = "inf"
				} else {
					parts[j] = strconv.FormatFloat(v, 'g', -1, 64)
				}
			}
			fmt.Println(strings.Join(parts, " "))
		}
	}

	if *pathPair != "" {
		u, v, err := parsePair(*pathPair)
		if err != nil {
			fmt.Fprintf(os.Stderr, "apsp: -path: %v\n", err)
			os.Exit(1)
		}
		p := apsp.Path(g, d, u, v)
		if p == nil {
			fmt.Fprintf(os.Stderr, "apsp: no path from %d to %d\n", u, v)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "path %d->%d (weight %g): %v\n", u, v, d.At(u, v), p)
	}
}

func loadGraph(random string, seed int64) (*apsp.Graph, error) {
	if random == "" {
		return apsp.ParseEdgeList(os.Stdin)
	}
	parts := strings.Split(random, ",")
	if len(parts) != 3 {
		return nil, fmt.Errorf("-random wants n,p,maxw, got %q", random)
	}
	n, err := strconv.Atoi(parts[0])
	if err != nil {
		return nil, fmt.Errorf("bad n: %w", err)
	}
	p, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return nil, fmt.Errorf("bad p: %w", err)
	}
	maxW, err := strconv.Atoi(parts[2])
	if err != nil {
		return nil, fmt.Errorf("bad maxw: %w", err)
	}
	return apsp.Random(n, p, maxW, seed), nil
}

func parsePair(s string) (int, int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want u,v, got %q", s)
	}
	u, err := strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, err
	}
	v, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, err
	}
	return u, v, nil
}
