package main

import "testing"

func TestParsePair(t *testing.T) {
	u, v, err := parsePair("3,17")
	if err != nil || u != 3 || v != 17 {
		t.Fatalf("parsePair = %d,%d,%v", u, v, err)
	}
	for _, bad := range []string{"", "3", "3,4,5", "a,b", "3,"} {
		if _, _, err := parsePair(bad); err == nil {
			t.Errorf("parsePair(%q) accepted", bad)
		}
	}
}

func TestLoadGraphRandom(t *testing.T) {
	g, err := loadGraph("10,0.5,20", 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 10 {
		t.Fatalf("n = %d", g.N)
	}
	// Deterministic for a fixed seed.
	g2, _ := loadGraph("10,0.5,20", 1)
	if g2.Edges() != g.Edges() {
		t.Fatal("random graph not deterministic for fixed seed")
	}
	for _, bad := range []string{"10", "10,0.5", "x,0.5,20", "10,y,20", "10,0.5,z"} {
		if _, err := loadGraph(bad, 1); err == nil {
			t.Errorf("loadGraph(%q) accepted", bad)
		}
	}
}
