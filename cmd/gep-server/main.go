// Command gep-server runs the GEP job service: an HTTP API over the
// in-core engines where each job executes on its own isolated
// par.Runtime (internal/serve, DESIGN.md §14). Endpoints are
// documented in docs/API.md and operational guidance — sizing the
// worker budgets, admission tuning, metrics scraping, shutdown — in
// docs/OPERATIONS.md.
//
// Usage:
//
//	gep-server [flags]
//
// Flags:
//
//	-addr HOST:PORT       listen address (default :8080)
//	-max-queue N          queued-job bound before 429 (default 64)
//	-max-concurrent N     jobs running at once (default 2)
//	-workers-per-job N    default per-job worker budget (default 2)
//	-max-workers N        cap on a job's requested budget (default 2×workers-per-job)
//	-max-n N              largest accepted problem side (default 4096)
//	-deadline D           default per-job deadline (default 60s)
//	-shutdown-timeout D   drain budget on SIGINT/SIGTERM before
//	                      in-flight jobs are aborted (default 30s)
//
// On SIGINT or SIGTERM the server stops admitting jobs, drains the
// queue and whatever is running, and only aborts still-running jobs
// once the shutdown timeout expires.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gep/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxQueue := flag.Int("max-queue", 64, "queued-job bound before submissions get 429")
	maxConcurrent := flag.Int("max-concurrent", 2, "jobs running at once")
	workersPerJob := flag.Int("workers-per-job", 2, "default per-job worker budget")
	maxWorkers := flag.Int("max-workers", 0, "cap on a job's requested worker budget (0 = 2x workers-per-job)")
	maxN := flag.Int("max-n", 4096, "largest accepted problem side")
	deadline := flag.Duration("deadline", 60*time.Second, "default per-job deadline")
	shutdownTimeout := flag.Duration("shutdown-timeout", 30*time.Second, "drain budget before in-flight jobs are aborted")
	flag.Parse()

	srv := serve.New(serve.Config{
		QueueDepth:      *maxQueue,
		MaxConcurrent:   *maxConcurrent,
		DefaultWorkers:  *workersPerJob,
		MaxWorkers:      *maxWorkers,
		DefaultDeadline: *deadline,
		MaxN:            *maxN,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "gep-server listening on %s (%d concurrent jobs x %d workers)\n",
		*addr, srv.Config().MaxConcurrent, srv.Config().DefaultWorkers)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "gep-server: %v\n", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "gep-server: %v, draining (up to %v)\n", s, *shutdownTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "gep-server: drain incomplete, in-flight jobs aborted: %v\n", err)
	}
	hs.Shutdown(context.Background())
}
