// Doclint enforces the repository's documentation policy without
// external dependencies: every package under the named directories
// must carry a package-level doc comment, and every exported
// identifier (func, type, const, var, method on an exported type)
// must have a doc comment. It is the stand-in for revive's `exported`
// and `package-comments` rules, built on go/ast so CI needs nothing
// beyond the Go toolchain.
//
// Usage:
//
//	go run ./cmd/doclint ./internal/... ./pkg
//
// A trailing /... walks the tree. Test files (*_test.go) are exempt.
// Exit status is non-zero when any finding is reported.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: doclint <dir>[/...] ...")
		os.Exit(2)
	}
	var dirs []string
	for _, a := range args {
		root, walk := strings.CutSuffix(a, "/...")
		if !walk {
			dirs = append(dirs, root)
			continue
		}
		err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				dirs = append(dirs, p)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(2)
		}
	}

	var findings []string
	for _, dir := range dirs {
		fs, err := lintDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	sort.Strings(findings)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// lintDir parses the non-test Go files of one directory and reports
// missing doc comments. Directories with no Go files yield nothing.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}

	var findings []string
	for _, pkg := range pkgs {
		if pkg.Name == "main" {
			// Commands document themselves via their binary doc
			// comment; only the package comment is required.
			findings = append(findings, lintPackageComment(fset, pkg)...)
			continue
		}
		findings = append(findings, lintPackageComment(fset, pkg)...)
		for _, file := range pkg.Files {
			findings = append(findings, lintFile(fset, file)...)
		}
	}
	return findings, nil
}

// lintPackageComment requires at least one file in the package to
// carry a package doc comment.
func lintPackageComment(fset *token.FileSet, pkg *ast.Package) []string {
	var first string
	for name, file := range pkg.Files {
		if file.Doc != nil && strings.TrimSpace(file.Doc.Text()) != "" {
			return nil
		}
		if first == "" || name < first {
			first = name
		}
	}
	return []string{fmt.Sprintf("%s: package %s has no package doc comment", first, pkg.Name)}
}

// lintFile reports exported declarations without doc comments in one
// file.
func lintFile(fset *token.FileSet, file *ast.File) []string {
	var findings []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, what, name))
	}

	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedReceiver(d) {
				continue
			}
			if d.Doc == nil || strings.TrimSpace(d.Doc.Text()) == "" {
				what := "function"
				if d.Recv != nil {
					what = "method"
				}
				report(d.Pos(), what, d.Name.Name)
			}
		case *ast.GenDecl:
			findings = append(findings, lintGenDecl(fset, d, report)...)
		}
	}
	return findings
}

// exportedReceiver reports whether a FuncDecl is a plain function or a
// method on an exported type; methods on unexported types are exempt.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr: // generic receiver T[P1, P2]
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// lintGenDecl handles type/const/var declarations. A doc comment on
// the grouped declaration covers every name in the group, matching
// godoc's rendering; otherwise each exported name needs its own
// comment.
func lintGenDecl(fset *token.FileSet, d *ast.GenDecl, report func(token.Pos, string, string)) []string {
	if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
		return nil
	}
	groupDoc := d.Doc != nil && strings.TrimSpace(d.Doc.Text()) != ""
	var findings []string
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && (s.Doc == nil || strings.TrimSpace(s.Doc.Text()) == "") {
				p := fset.Position(s.Pos())
				findings = append(findings, fmt.Sprintf("%s:%d: exported type %s has no doc comment", p.Filename, p.Line, s.Name.Name))
			}
		case *ast.ValueSpec:
			specDoc := s.Doc != nil && strings.TrimSpace(s.Doc.Text()) != ""
			if groupDoc || specDoc {
				continue
			}
			for _, name := range s.Names {
				if !name.IsExported() {
					continue
				}
				what := "var"
				if d.Tok == token.CONST {
					what = "const"
				}
				p := fset.Position(name.Pos())
				findings = append(findings, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, what, name.Name))
			}
		}
	}
	return findings
}
