// Command gesolve solves a dense linear system A·x = b with
// cache-oblivious LU decomposition.
//
// Usage:
//
//	gesolve [-base n] [-algo igep|tiled|gep] [-pivot none|partial|tournament] < system.txt
//	gesolve -random n [-seed s] [-algo ...]
//
// Input format: a line with n, then n lines of n matrix entries, then
// one line of n right-hand-side entries. The solution vector and the
// max-norm residual are printed. With -pivot none (the default) the
// matrix must be factorizable without pivoting (e.g. diagonally
// dominant) and gesolve reports the residual so ill-suited inputs are
// visible; -pivot partial (scalar GEPP oracle) and -pivot tournament
// (communication-avoiding CALU) accept any nonsingular matrix and
// report singular ones.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"gep/internal/linalg"
	"gep/internal/matrix"
)

func main() {
	base := flag.Int("base", 64, "I-GEP base-case / tile size")
	algo := flag.String("algo", "igep", "factorization: igep, tiled or gep (ignored with -pivot)")
	pivot := flag.String("pivot", "none", "row pivoting: none, partial or tournament")
	random := flag.Int("random", 0, "solve a random diagonally dominant n×n system instead of reading stdin")
	seed := flag.Int64("seed", 1, "seed for -random")
	flag.Parse()

	a, b, err := loadSystem(*random, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gesolve: %v\n", err)
		os.Exit(1)
	}
	n := a.N()

	var x []float64
	switch *pivot {
	case "partial", "tournament":
		var f *linalg.LUP
		if *pivot == "partial" {
			f, err = linalg.Factor(a)
		} else {
			f, err = linalg.FactorCAParallel(a)
		}
		if err != nil {
			if errors.Is(err, linalg.ErrSingular) {
				fmt.Fprintf(os.Stderr, "gesolve: matrix is singular to working precision (%v)\n", err)
				os.Exit(3)
			}
			fmt.Fprintf(os.Stderr, "gesolve: %v\n", err)
			os.Exit(1)
		}
		x = f.Solve(b)
	case "none":
		// The I-GEP factorization needs a power-of-two side: pad with
		// an identity block, which leaves the leading system unchanged.
		work := a.Clone()
		padded := work
		if !matrix.IsPow2(n) && *algo == "igep" {
			padded = matrix.PadPow2Diag(work, 0, 1)
		}
		switch *algo {
		case "igep":
			linalg.LUIGEP(padded, *base)
		case "tiled":
			linalg.LUTiled(padded, *base)
		case "gep":
			linalg.LUGEPOpt(padded)
		default:
			fmt.Fprintf(os.Stderr, "gesolve: unknown -algo %q\n", *algo)
			os.Exit(2)
		}
		lu := padded
		if padded.N() != n {
			lu = matrix.Crop(padded, n)
		}
		x = linalg.SolveLU(lu, b)
	default:
		fmt.Fprintf(os.Stderr, "gesolve: unknown -pivot %q\n", *pivot)
		os.Exit(2)
	}

	parts := make([]string, n)
	for i, v := range x {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	fmt.Println(strings.Join(parts, " "))
	fmt.Fprintf(os.Stderr, "residual (max-norm of Ax-b): %g\n", linalg.Residual(a, x, b))
}

func loadSystem(random int, seed int64) (*matrix.Dense[float64], []float64, error) {
	if random > 0 {
		rng := rand.New(rand.NewSource(seed))
		a := matrix.NewSquare[float64](random)
		a.Apply(func(i, j int, _ float64) float64 {
			if i == j {
				return float64(2*random) + rng.Float64()
			}
			return rng.Float64()*2 - 1
		})
		b := make([]float64, random)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		return a, b, nil
	}
	br := bufio.NewReader(os.Stdin)
	var n int
	if _, err := fmt.Fscan(br, &n); err != nil {
		return nil, nil, fmt.Errorf("reading n: %w", err)
	}
	if n <= 0 {
		return nil, nil, fmt.Errorf("bad dimension %d", n)
	}
	a := matrix.NewSquare[float64](n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var v float64
			if _, err := fmt.Fscan(br, &v); err != nil {
				return nil, nil, fmt.Errorf("reading A[%d][%d]: %w", i, j, err)
			}
			a.Set(i, j, v)
		}
	}
	b := make([]float64, n)
	for i := range b {
		if _, err := fmt.Fscan(br, &b[i]); err != nil {
			return nil, nil, fmt.Errorf("reading b[%d]: %w", i, err)
		}
	}
	return a, b, nil
}
