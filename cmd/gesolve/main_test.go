package main

import (
	"os"
	"testing"

	"gep/internal/linalg"
)

func TestLoadSystemRandom(t *testing.T) {
	a, b, err := loadSystem(12, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != 12 || len(b) != 12 {
		t.Fatalf("shape %d / %d", a.N(), len(b))
	}
	// Diagonally dominant by construction: solvable without pivoting.
	if linalg.NeedsPivoting(a, 16) {
		t.Fatal("random system needs pivoting")
	}
}

func TestLoadSystemStdin(t *testing.T) {
	// Redirect stdin through a pipe.
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdin
	os.Stdin = r
	defer func() { os.Stdin = old }()
	go func() {
		w.WriteString("2\n4 1\n1 3\n5 4\n")
		w.Close()
	}()
	a, b, err := loadSystem(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != 2 || a.At(0, 1) != 1 || b[1] != 4 {
		t.Fatalf("parsed wrong: %v %v", a, b)
	}
}

func TestLoadSystemErrors(t *testing.T) {
	cases := []string{"", "0\n", "-3\n", "2\n1 2 3\n", "2\n1 2\n3 4\n5\n"}
	for _, in := range cases {
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		old := os.Stdin
		os.Stdin = r
		go func(s string) {
			w.WriteString(s)
			w.Close()
		}(in)
		_, _, err = loadSystem(0, 0)
		os.Stdin = old
		if err == nil {
			t.Errorf("loadSystem accepted %q", in)
		}
	}
}
