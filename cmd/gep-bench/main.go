// Command gep-bench regenerates the tables and figures of the paper's
// evaluation section (§4). Each experiment prints an aligned text
// table plus the qualitative shape the paper reports, so results can
// be compared directly against EXPERIMENTS.md; -csv and -json
// additionally emit machine-readable artifacts (per-table CSV files
// and one BENCH_<experiment>.json report per experiment).
//
// Usage:
//
//	gep-bench [flags] list
//	gep-bench [flags] all
//	gep-bench [flags] <experiment> [<experiment>...]
//	gep-bench compare [-threshold r] <old> <new>
//	gep-bench oocrun -dir DIR [flags]
//
// Flags:
//
//	-scale small|full   experiment size (seconds vs minutes)
//	-csv DIR            mirror every table as CSV files into DIR
//	-json DIR           write BENCH_<experiment>.json reports into DIR
//	-cpuprofile FILE    write a pprof CPU profile of the run
//	-memprofile FILE    write a pprof heap profile at exit
//	-trace FILE         write a runtime/trace of the run
//
// The compare subcommand diffs two report files — or two directories
// of BENCH_*.json files, matched by experiment — row by row and exits
// with status 1 if any row's wall time regressed by more than the
// threshold ratio (default 1.5).
//
// The oocrun subcommand runs one resumable out-of-core computation
// against a durable striped store — the crash-recovery drill driven by
// scripts/recovery-matrix.sh; see oocrun.go for the output protocol.
//
// Experiments: table1 table2 fig7a fig7b fig8 fig9 fig10 fig11 fig12
// ooc incore scaling gf2 serve ablation-base ablation-layout
// ablation-prune ablation-grain lemma31 bounds.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"

	"gep/internal/bench"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		os.Exit(runCompare(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "oocrun" {
		os.Exit(runOOC(os.Args[2:]))
	}

	scaleFlag := flag.String("scale", "small", "experiment size: small (seconds) or full (minutes)")
	csvDir := flag.String("csv", "", "also write every table as CSV files into this directory")
	jsonDir := flag.String("json", "", "also write BENCH_<experiment>.json reports into this directory")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	traceFile := flag.String("trace", "", "write a runtime/trace to this file")
	flag.Usage = usage
	flag.Parse()

	var scale bench.Scale
	switch *scaleFlag {
	case "small":
		scale = bench.Small
	case "full":
		scale = bench.Full
	default:
		fmt.Fprintf(os.Stderr, "gep-bench: unknown scale %q (want small or full)\n", *scaleFlag)
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	if args[0] == "list" {
		for _, e := range bench.All() {
			fmt.Printf("%-16s %s\n", e.Name, e.Title)
		}
		return
	}

	names := args
	if args[0] == "all" {
		names = nil
		for _, e := range bench.All() {
			names = append(names, e.Name)
		}
	}

	stopProfiling, err := startProfiling(*cpuProfile, *memProfile, *traceFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gep-bench: %v\n", err)
		os.Exit(1)
	}

	failed := false
	for _, name := range names {
		e, ok := bench.Get(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "gep-bench: unknown experiment %q (try `gep-bench list`)\n", name)
			failed = true
			continue
		}
		fmt.Printf("=== %s: %s ===\n\n", e.Name, e.Title)
		opts := bench.RunOptions{CSVDir: *csvDir, JSONDir: *jsonDir}
		if err := bench.RunExperiment(os.Stdout, e, scale, opts); err != nil {
			fmt.Fprintf(os.Stderr, "gep-bench: %s: %v\n", name, err)
			failed = true
		}
		fmt.Println()
	}
	stopProfiling()
	if failed {
		os.Exit(1)
	}
}

// startProfiling enables the requested opt-in profilers and returns
// the function that stops them and writes end-of-run artifacts (the
// heap profile is captured at stop time, after a final GC, so it shows
// live retention rather than transient garbage).
func startProfiling(cpuFile, memFile, traceOut string) (stop func(), err error) {
	var stops []func()
	if cpuFile != "" {
		f, err := os.Create(cpuFile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return nil, err
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			return nil, err
		}
		stops = append(stops, func() {
			trace.Stop()
			f.Close()
		})
	}
	if memFile != "" {
		stops = append(stops, func() {
			f, err := os.Create(memFile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gep-bench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "gep-bench: memprofile: %v\n", err)
			}
		})
	}
	return func() {
		for _, s := range stops {
			s()
		}
	}, nil
}

// runCompare implements `gep-bench compare [-threshold r] old new`
// and returns the process exit code: 0 clean, 1 regression past the
// threshold, 2 usage or load error.
func runCompare(args []string) int {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	threshold := fs.Float64("threshold", 1.5, "regression ratio (new/old wall time) above which compare fails")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gep-bench compare [-threshold r] <old.json|oldDir> <new.json|newDir>")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	if *threshold <= 1 {
		fmt.Fprintf(os.Stderr, "gep-bench: compare threshold must be > 1, got %g\n", *threshold)
		return 2
	}
	regressed, err := bench.ComparePaths(os.Stdout, fs.Arg(0), fs.Arg(1), *threshold)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gep-bench: compare: %v\n", err)
		return 2
	}
	if regressed {
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: gep-bench [flags] list | all | <experiment>...")
	fmt.Fprintln(os.Stderr, "       gep-bench compare [-threshold r] <old> <new>")
	fmt.Fprintln(os.Stderr, "       gep-bench oocrun -dir DIR [flags]")
	flag.PrintDefaults()
}
