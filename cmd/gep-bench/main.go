// Command gep-bench regenerates the tables and figures of the paper's
// evaluation section (§4). Each experiment prints an aligned text
// table plus the qualitative shape the paper reports, so results can
// be compared directly against EXPERIMENTS.md.
//
// Usage:
//
//	gep-bench [-scale small|full] list
//	gep-bench [-scale small|full] all
//	gep-bench [-scale small|full] <experiment> [<experiment>...]
//
// Experiments: table1 table2 fig7a fig7b fig8 fig9 fig10 fig11 fig12
// ablation-base ablation-layout ablation-prune ablation-grain.
package main

import (
	"flag"
	"fmt"
	"os"

	"gep/internal/bench"
)

func main() {
	scaleFlag := flag.String("scale", "small", "experiment size: small (seconds) or full (minutes)")
	csvDir := flag.String("csv", "", "also write every table as CSV files into this directory")
	flag.Usage = usage
	flag.Parse()

	var scale bench.Scale
	switch *scaleFlag {
	case "small":
		scale = bench.Small
	case "full":
		scale = bench.Full
	default:
		fmt.Fprintf(os.Stderr, "gep-bench: unknown scale %q (want small or full)\n", *scaleFlag)
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	if args[0] == "list" {
		for _, e := range bench.All() {
			fmt.Printf("%-16s %s\n", e.Name, e.Title)
		}
		return
	}

	names := args
	if args[0] == "all" {
		names = nil
		for _, e := range bench.All() {
			names = append(names, e.Name)
		}
	}

	failed := false
	for _, name := range names {
		e, ok := bench.Get(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "gep-bench: unknown experiment %q (try `gep-bench list`)\n", name)
			failed = true
			continue
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "gep-bench: %v\n", err)
				os.Exit(1)
			}
			bench.SetCSVDir(*csvDir, e.Name)
		}
		fmt.Printf("=== %s: %s ===\n\n", e.Name, e.Title)
		if err := e.Run(os.Stdout, scale); err != nil {
			fmt.Fprintf(os.Stderr, "gep-bench: %s: %v\n", name, err)
			failed = true
		}
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: gep-bench [-scale small|full] list | all | <experiment>...")
	flag.PrintDefaults()
}
