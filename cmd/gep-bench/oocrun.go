package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"

	"gep/internal/core"
	"gep/internal/ooc"
)

// runOOC implements `gep-bench oocrun`: a single resumable out-of-core
// I-GEP run against a durable striped store, built for the crash-
// recovery matrix (scripts/recovery-matrix.sh). A fresh run creates
// the store, loads a deterministic input derived from -seed, commits
// sync point 0, and computes with a checkpoint every -checkpoint
// blocks, announcing each committed sync point as a "SYNC <tag>" line.
// With -hold T it parks forever right after committing sync point T —
// the harness SIGKILLs it there, then reruns with -resume, which
// recovers the store, resumes from the reported frontier, and prints
// the content digest; bit-identical recovery means the digest matches
// an uninterrupted run's.
//
// Output protocol (one token-prefixed line each, unbuffered):
//
//	LOADED                              input durable at sync point 0
//	SYNC <tag>                          sync point <tag> committed
//	HOLD <tag>                          parked; safe to SIGKILL
//	RECOVER frontier=<t> tiles=<n> bytes=<b> torn=<bool>
//	BLOCKS run=<n>                      blocks executed this process
//	DIGEST <16 hex digits>              XXH64 of the final contents
func runOOC(args []string) int {
	fs := flag.NewFlagSet("oocrun", flag.ExitOnError)
	dir := fs.String("dir", "", "store directory (required)")
	n := fs.Int("n", 256, "matrix side (power of two)")
	tile := fs.Int("tile", 32, "tile side")
	stripes := fs.Int("stripes", 2, "backing stripe files")
	unit := fs.Int("unit", 0, "stripe unit in bytes (0 = default)")
	cache := fs.Int64("cache", 1<<24, "tile cache budget in bytes")
	checkpoint := fs.Int64("checkpoint", 16, "base-case blocks per durable sync point")
	compress := fs.Bool("compress", false, "compress tile payloads")
	opName := fs.String("op", "lu", "update op: lu, gauss, or fw")
	seed := fs.Int64("seed", 1, "input seed")
	faults := fs.Int64("faults", 0, "inject a transient I/O fault every N raw transfers")
	resume := fs.Bool("resume", false, "recover an existing store and resume from its frontier")
	hold := fs.Int64("hold", -1, "park forever after committing the first sync point >= this tag (-1 = never)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gep-bench oocrun -dir DIR [flags]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if *dir == "" || fs.NArg() != 0 {
		fs.Usage()
		return 2
	}

	var op core.Op[float64]
	var set core.UpdateSet
	switch *opName {
	case "lu":
		op, set = core.LUFactor[float64]{}, core.LU{}
	case "gauss":
		op, set = core.GaussElim[float64]{}, core.Gaussian{}
	case "fw":
		op, set = core.MinPlus[float64]{}, core.Full{}
	default:
		fmt.Fprintf(os.Stderr, "gep-bench: oocrun: unknown op %q (want lu, gauss, or fw)\n", *opName)
		return 2
	}

	holdAt := func(tag int64) {
		if *hold >= 0 && tag >= *hold {
			fmt.Printf("HOLD %d\n", tag)
			select {} // parked for SIGKILL; never returns
		}
	}

	cfg := ooc.Config{
		PageSize:   4096,
		CacheSize:  *cache,
		Stripes:    *stripes,
		StripeUnit: *unit,
		Compress:   *compress,
		FaultEvery: *faults,
	}
	var (
		s     *ooc.Store
		err   error
		start int64
	)
	if *resume {
		// Geometry lives in the journal header; adopt it.
		cfg.Stripes, cfg.StripeUnit = 0, 0
		s, err = ooc.Open(*dir, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gep-bench: oocrun: %v\n", err)
			return 1
		}
		info, rerr := s.Recover()
		fmt.Printf("RECOVER frontier=%d tiles=%d bytes=%d torn=%v\n",
			info.Frontier, info.Tiles, info.Bytes, info.Torn)
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "gep-bench: oocrun: recover: %v\n", rerr)
			return 1
		}
		if info.Frontier < 0 {
			fmt.Fprintln(os.Stderr, "gep-bench: oocrun: no committed sync point; nothing to resume")
			return 1
		}
		start = info.Frontier
	} else {
		s, err = ooc.CreateAt(*dir, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gep-bench: oocrun: %v\n", err)
			return 1
		}
	}

	m := ooc.NewMatrix(s, *n, 0, ooc.MortonTiledLayout(*tile))
	if !*resume {
		if err := m.LoadFunc(func(i, j int) float64 {
			return cellValue(*seed, *n, i, j)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "gep-bench: oocrun: load: %v\n", err)
			return 1
		}
		if err := s.Checkpoint(0); err != nil {
			fmt.Fprintf(os.Stderr, "gep-bench: oocrun: %v\n", err)
			return 1
		}
		fmt.Println("LOADED")
		fmt.Println("SYNC 0")
		holdAt(0)
	}

	var ran int64
	err = ooc.RunIGEP(m, op, set, ooc.RunOptions{
		Prefetch:        true,
		CheckpointEvery: *checkpoint,
		StartBlock:      start,
		OnCheckpoint: func(tag int64) {
			fmt.Printf("SYNC %d\n", tag)
			ran = tag - start
			holdAt(tag)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gep-bench: oocrun: run: %v\n", err)
		return 1
	}
	fmt.Printf("BLOCKS run=%d\n", ran)

	digest, err := m.Digest()
	if err != nil {
		fmt.Fprintf(os.Stderr, "gep-bench: oocrun: digest: %v\n", err)
		return 1
	}
	fmt.Printf("DIGEST %016x\n", digest)
	if err := s.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "gep-bench: oocrun: close: %v\n", err)
		return 1
	}
	return 0
}

// cellValue is the deterministic input generator: cell (i, j) depends
// only on (seed, n, i, j) — not on evaluation order — so a fresh run
// and a resumed run agree on the input by construction. The matrix is
// diagonally dominant, keeping the division-based ops finite.
func cellValue(seed int64, n, i, j int) float64 {
	var b [24]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(seed))
	binary.LittleEndian.PutUint64(b[8:], uint64(i))
	binary.LittleEndian.PutUint64(b[16:], uint64(j))
	u := float64(ooc.Checksum(b[:])>>11) / float64(int64(1)<<53) // [0, 1)
	if i == j {
		return float64(n) + u
	}
	return 2*u - 1
}
