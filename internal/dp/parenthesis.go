package dp

import (
	"fmt"
	"math"

	"gep/internal/matrix"
)

// Inf is the "not computable" sentinel in DP tables.
var Inf = math.Inf(1)

// CostFunc scores splitting interval (i, j) at point k (i < k < j):
// the parenthesis recurrence is
//
//	c[i][j] = min_{i<k<j} ( c[i][k] + c[k][j] + w(i,k,j) ).
//
// Matrix-chain multiplication uses w(i,k,j) = dims[i]·dims[k]·dims[j].
type CostFunc func(i, k, j int) float64

// ParenthesisIterative solves the parenthesis problem over points
// 0..n by the classic increasing-span loop. base[i] seeds c[i][i+1]
// (length n). The returned (n+1)×(n+1) table has the answer for every
// interval in its upper triangle; cells below the diagonal are unused
// (+Inf).
func ParenthesisIterative(n int, w CostFunc, base []float64) *matrix.Dense[float64] {
	c := newParenTable(n, base)
	for span := 2; span <= n; span++ {
		for i := 0; i+span <= n; i++ {
			j := i + span
			best := Inf
			for k := i + 1; k < j; k++ {
				if cand := c.At(i, k) + c.At(k, j) + w(i, k, j); cand < best {
					best = cand
				}
			}
			c.Set(i, j, best)
		}
	}
	return c
}

// ParenthesisCacheOblivious solves the same recurrence with the
// cache-oblivious recursion: solve the two half triangles, then fill
// the connecting rectangle with a quadrant recursion whose
// cross-quadrant contributions are min-plus rectangular products —
// O(n³/(B√M)) cache misses, no machine parameters. block is the
// iterative base-case side (>= 1); any n >= 1 is accepted.
func ParenthesisCacheOblivious(n int, w CostFunc, base []float64, block int) *matrix.Dense[float64] {
	if block < 1 {
		block = 1
	}
	c := newParenTable(n, base)
	p := &parenSolver{c: c, w: w, block: block}
	p.solve(0, n)
	return c
}

func newParenTable(n int, base []float64) *matrix.Dense[float64] {
	if len(base) != n {
		panic(fmt.Sprintf("dp: base has %d entries, want n=%d", len(base), n))
	}
	c := matrix.NewSquare[float64](n + 1)
	c.Fill(Inf)
	for i := 0; i < n; i++ {
		c.Set(i, i+1, base[i])
	}
	for i := 0; i <= n; i++ {
		c.Set(i, i, 0)
	}
	return c
}

type parenSolver struct {
	c     *matrix.Dense[float64]
	w     CostFunc
	block int
	// grain > 0 enables goroutine execution of independent calls on
	// subproblems larger than grain.
	grain int
	// dims, when non-nil, declares w to be the matrix-chain weight
	// dims[i]·dims[k]·dims[j]; the hot loops then inline the product
	// instead of making an indirect w call per candidate split. The
	// inlined expression multiplies in the same order as the closure in
	// MatrixChainCost, so results are bit-identical.
	dims []float64
}

// parAt reports whether work of the given size should fork.
func (p *parenSolver) parAt(size int) bool { return p.grain > 0 && size > p.grain }

// solve computes every c[i][j] with l <= i < j <= r, assuming nothing
// precomputed beyond the unit intervals.
func (p *parenSolver) solve(l, r int) {
	if r-l <= 1 {
		return
	}
	if r-l <= p.block {
		// Iterative base case on the small triangle.
		for span := 2; span <= r-l; span++ {
			for i := l; i+span <= r; i++ {
				j := i + span
				best := p.c.At(i, j)
				if wd := p.dims; wd != nil {
					wj := wd[j]
					for k := i + 1; k < j; k++ {
						if cand := p.c.At(i, k) + p.c.At(k, j) + wd[i]*wd[k]*wj; cand < best {
							best = cand
						}
					}
				} else {
					for k := i + 1; k < j; k++ {
						if cand := p.c.At(i, k) + p.c.At(k, j) + p.w(i, k, j); cand < best {
							best = cand
						}
					}
				}
				p.c.Set(i, j, best)
			}
		}
		return
	}
	m := (l + r) / 2
	// The two half triangles are independent.
	par2(p.parAt(r-l),
		func() { p.solve(l, m) },
		func() { p.solve(m, r) })
	// Seed the rectangle X = [l,m) × (m,r] with the k = m split, the
	// only contribution exterior to the whole rectangle.
	if wd := p.dims; wd != nil {
		for i := l; i < m; i++ {
			wim := wd[i] * wd[m]
			for j := m + 1; j <= r; j++ {
				cand := p.c.At(i, m) + p.c.At(m, j) + wim*wd[j]
				if cand < p.c.At(i, j) {
					p.c.Set(i, j, cand)
				}
			}
		}
	} else {
		for i := l; i < m; i++ {
			for j := m + 1; j <= r; j++ {
				cand := p.c.At(i, m) + p.c.At(m, j) + p.w(i, m, j)
				if cand < p.c.At(i, j) {
					p.c.Set(i, j, cand)
				}
			}
		}
	}
	p.combine(l, m-1, m+1, r)
}

// combine finishes the rectangle rows [i1,i2] × cols [j1,j2]
// (inclusive), assuming every contribution with split point k outside
// the rectangle's own row span (i1,i2] and column span [j1,j2) has
// already been folded in. Interior contributions:
//
//	c[i][j] = min(c[i][j], c[i][k] + c[k][j] + w)  for k ∈ (i, i2]   (rows below)
//	c[i][j] = min(c[i][j], c[i][k] + c[k][j] + w)  for k ∈ [j1, j)   (columns left)
func (p *parenSolver) combine(i1, i2, j1, j2 int) {
	if i1 > i2 || j1 > j2 {
		return
	}
	if i2-i1+1 <= p.block && j2-j1+1 <= p.block {
		p.combineKernel(i1, i2, j1, j2)
		return
	}
	// Split the longer side; quadrant order: bottom-left first, then
	// top-left and bottom-right (independent), then top-right, with
	// min-plus product "apply" steps carrying contributions across.
	if i2-i1 >= j2-j1 {
		rm := (i1 + i2) / 2 // rows [i1,rm] top, [rm+1,i2] bottom
		p.combine(rm+1, i2, j1, j2)
		p.apply(i1, rm, rm+1, i2, j1, j2)
		p.combine(i1, rm, j1, j2)
	} else {
		cm := (j1 + j2) / 2 // cols [j1,cm] left, [cm+1,j2] right
		p.combine(i1, i2, j1, cm)
		p.apply(i1, i2, j1, cm, cm+1, j2)
		p.combine(i1, i2, cm+1, j2)
	}
}

// apply folds completed split points k ∈ [k1,k2] into the target
// cells [i1,i2] × [j1,j2]:
//
//	c[i][j] min= c[i][k] + c[k][j] + w(i,k,j).
//
// Both cross-band steps of combine are this one min-plus rectangular
// product (with k a row band below the target or a column band to its
// left — the formula is identical). The sources are complete and
// disjoint from the target, so the recursion splits freely; it keeps
// the whole algorithm within the O(n³/(B√M)) miss bound rather than
// degrading the apply work to O(n³/B).
func (p *parenSolver) apply(i1, i2, k1, k2, j1, j2 int) {
	di, dk, dj := i2-i1+1, k2-k1+1, j2-j1+1
	if di <= p.block && dk <= p.block && dj <= p.block {
		if wd := p.dims; wd != nil {
			// Closed-form weight: hoist wd[i]·wd[k] out of the j loop.
			// wik*wd[j] associates exactly like the closure's
			// wd[i]*wd[k]*wd[j], so candidates are bit-identical.
			for k := k1; k <= k2; k++ {
				ck := p.c.Row(k)
				wk := wd[k]
				for i := i1; i <= i2; i++ {
					ci := p.c.Row(i)
					cik := ci[k]
					if cik == Inf {
						continue
					}
					wik := wd[i] * wk
					for j := j1; j <= j2; j++ {
						if cand := cik + ck[j] + wik*wd[j]; cand < ci[j] {
							ci[j] = cand
						}
					}
				}
			}
			return
		}
		for k := k1; k <= k2; k++ {
			ck := p.c.Row(k)
			for i := i1; i <= i2; i++ {
				ci := p.c.Row(i)
				cik := ci[k]
				if cik == Inf {
					continue
				}
				for j := j1; j <= j2; j++ {
					if cand := cik + ck[j] + p.w(i, k, j); cand < ci[j] {
						ci[j] = cand
					}
				}
			}
		}
		return
	}
	switch {
	case di >= dk && di >= dj:
		im := (i1 + i2) / 2
		// Disjoint target rows: parallel-safe.
		par2(p.parAt(di),
			func() { p.apply(i1, im, k1, k2, j1, j2) },
			func() { p.apply(im+1, i2, k1, k2, j1, j2) })
	case dk >= dj:
		// Both halves fold into the same cells: keep sequential.
		km := (k1 + k2) / 2
		p.apply(i1, i2, k1, km, j1, j2)
		p.apply(i1, i2, km+1, k2, j1, j2)
	default:
		jm := (j1 + j2) / 2
		par2(p.parAt(dj),
			func() { p.apply(i1, i2, k1, k2, j1, jm) },
			func() { p.apply(i1, i2, k1, k2, jm+1, j2) })
	}
}

// combineKernel is the iterative base case of combine: rows bottom-up,
// columns left-to-right, folding the interior contributions.
func (p *parenSolver) combineKernel(i1, i2, j1, j2 int) {
	if wd := p.dims; wd != nil {
		for i := i2; i >= i1; i-- {
			ci := p.c.Row(i)
			wi := wd[i]
			for j := j1; j <= j2; j++ {
				best := ci[j]
				wj := wd[j]
				for k := i + 1; k <= i2; k++ {
					if cand := ci[k] + p.c.At(k, j) + wi*wd[k]*wj; cand < best {
						best = cand
					}
				}
				for k := j1; k < j; k++ {
					if cand := ci[k] + p.c.At(k, j) + wi*wd[k]*wj; cand < best {
						best = cand
					}
				}
				ci[j] = best
			}
		}
		return
	}
	for i := i2; i >= i1; i-- {
		ci := p.c.Row(i)
		for j := j1; j <= j2; j++ {
			best := ci[j]
			for k := i + 1; k <= i2; k++ {
				if cand := ci[k] + p.c.At(k, j) + p.w(i, k, j); cand < best {
					best = cand
				}
			}
			for k := j1; k < j; k++ {
				if cand := ci[k] + p.c.At(k, j) + p.w(i, k, j); cand < best {
					best = cand
				}
			}
			ci[j] = best
		}
	}
}

// chainWeights converts a dimension vector to float64 once so the
// solver's specialized loops can index it directly.
func chainWeights(dims []int) []float64 {
	wd := make([]float64, len(dims))
	for i, d := range dims {
		wd[i] = float64(d)
	}
	return wd
}

// parenthesisChain solves the matrix-chain instance with the
// closed-form-weight solver: no indirect w call in the hot loops.
func parenthesisChain(dims []int, block int) *matrix.Dense[float64] {
	n := len(dims) - 1
	c := newParenTable(n, make([]float64, n))
	p := &parenSolver{c: c, block: block, dims: chainWeights(dims)}
	p.solve(0, n)
	return c
}

// MatrixChainCost returns the minimal scalar-multiplication count for
// multiplying matrices with the given dimensions (len(dims) = #matrices
// + 1), computed cache-obliviously.
func MatrixChainCost(dims []int) float64 {
	n := len(dims) - 1
	if n < 1 {
		return 0
	}
	return parenthesisChain(dims, 32).At(0, n)
}

// MatrixChainOrder additionally reconstructs an optimal
// parenthesization (as a string like "((A0 A1) A2)") from the cost
// table.
func MatrixChainOrder(dims []int) (float64, string) {
	n := len(dims) - 1
	if n < 1 {
		return 0, ""
	}
	w := func(i, k, j int) float64 {
		return float64(dims[i]) * float64(dims[k]) * float64(dims[j])
	}
	c := parenthesisChain(dims, 32)
	var render func(i, j int) string
	render = func(i, j int) string {
		if j == i+1 {
			return fmt.Sprintf("A%d", i)
		}
		for k := i + 1; k < j; k++ {
			if c.At(i, k)+c.At(k, j)+w(i, k, j) == c.At(i, j) {
				return "(" + render(i, k) + " " + render(k, j) + ")"
			}
		}
		panic("dp: inconsistent cost table")
	}
	return c.At(0, n), render(0, n)
}
