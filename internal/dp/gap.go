package dp

import (
	"fmt"

	"gep/internal/matrix"
)

// Sequence alignment with general gap costs (the "gap problem"): align
// x[1..n] against y[1..m] where a gap may cover any run of characters
// at a cost given by an arbitrary function of its endpoints. The
// recurrence over the (n+1)×(m+1) table D is
//
//	D[0][0] = 0
//	D[i][j] = min( D[i-1][j-1] + Sub(i,j),             (i,j > 0)
//	               min_{0<=q<j} D[i][q] + GapY(q,j),    (j > 0)
//	               min_{0<=p<i} D[p][j] + GapX(p,i) )   (i > 0)
//
// — O(n²m + nm²) work. The cache-oblivious solver uses the same
// quadrant-plus-apply structure as the parenthesis problem.

// GapCosts supplies the scoring functions. Indices are 1-based into
// the sequences (as in the recurrence above).
type GapCosts struct {
	// Sub is the cost of aligning x_i with y_j.
	Sub func(i, j int) float64
	// GapX is the cost of deleting x_{p+1..i} (a vertical move).
	GapX func(p, i int) float64
	// GapY is the cost of inserting y_{q+1..j} (a horizontal move).
	GapY func(q, j int) float64
}

// AlignIterative fills the alignment table with the textbook loops;
// the alignment cost is the bottom-right cell.
func AlignIterative(n, m int, g GapCosts) *matrix.Dense[float64] {
	checkGapArgs(n, m)
	d := newAlignTable(n, m)
	for i := 0; i <= n; i++ {
		for j := 0; j <= m; j++ {
			if i == 0 && j == 0 {
				continue
			}
			best := Inf
			if i > 0 && j > 0 {
				best = d.At(i-1, j-1) + g.Sub(i, j)
			}
			for q := 0; q < j; q++ {
				if cand := d.At(i, q) + g.GapY(q, j); cand < best {
					best = cand
				}
			}
			for p := 0; p < i; p++ {
				if cand := d.At(p, j) + g.GapX(p, i); cand < best {
					best = cand
				}
			}
			d.Set(i, j, best)
		}
	}
	return d
}

// AlignCacheOblivious computes the same table with the cache-oblivious
// recursion: solve the top-left quadrant, fold its row and column
// contributions into the adjacent quadrants with recursive min-plus
// apply steps, and recurse — O((n²m + nm²)/(B√M)) misses. block is the
// iterative base-case side. Results equal AlignIterative exactly.
func AlignCacheOblivious(n, m int, g GapCosts, block int) *matrix.Dense[float64] {
	checkGapArgs(n, m)
	if block < 1 {
		block = 1
	}
	d := newAlignTable(n, m)
	s := &gapSolver{d: d, g: g, block: block}
	s.solve(0, n, 0, m)
	return d
}

func newAlignTable(n, m int) *matrix.Dense[float64] {
	d := matrix.New[float64](n+1, m+1)
	d.Fill(Inf)
	d.Set(0, 0, 0)
	return d
}

type gapSolver struct {
	d     *matrix.Dense[float64]
	g     GapCosts
	block int
	// grain > 0 enables goroutine execution of the independent
	// top-right/bottom-left quadrants above the grain size.
	grain int
}

func (s *gapSolver) parAt(size int) bool { return s.grain > 0 && size > s.grain }

// solve computes cells [i1,i2] × [j1,j2] (inclusive), assuming every
// contribution from cells above/left of the block — the diagonal
// neighbours of its first row/column, row-gap contributions with
// q < j1, and column-gap contributions with p < i1 — has already been
// folded into the block (the whole-table call has none).
//
// Blocks hold the running minimum in place: a cell starts at +Inf (or
// the partially folded value) and is finished when its own block is
// solved.
func (s *gapSolver) solve(i1, i2, j1, j2 int) {
	if i2-i1+1 <= s.block && j2-j1+1 <= s.block {
		s.kernel(i1, i2, j1, j2)
		return
	}
	if i2-i1+1 > s.block && j2-j1+1 > s.block {
		// Quadrant split: after the top-left quadrant, the top-right
		// and bottom-left quadrants touch disjoint cells and read only
		// completed regions — they run in parallel (the gap-problem
		// analogue of Figure 6's independent B/C calls).
		im, jm := (i1+i2)/2, (j1+j2)/2
		s.solve(i1, im, j1, jm) // TL
		s.applyRow(i1, im, j1, jm, jm+1, j2)
		s.applyDiagCol(jm+1, i1, im)
		s.applyCol(im+1, i2, i1, im, j1, jm)
		s.applyDiagRow(im+1, j1, jm)
		par2(s.parAt(i2-i1+1),
			func() { s.solve(i1, im, jm+1, j2) }, // TR
			func() { s.solve(im+1, i2, j1, jm) }, // BL
		)
		s.applyCol(im+1, i2, i1, im, jm+1, j2)
		s.applyRow(im+1, i2, j1, jm, jm+1, j2)
		s.applyDiagRow(im+1, jm+1, j2)
		s.applyDiagCol(jm+1, im+1, i2)
		s.solve(im+1, i2, jm+1, j2) // BR
		return
	}
	// One thin dimension: split the longer side.
	if i2-i1 >= j2-j1 {
		im := (i1 + i2) / 2
		s.solve(i1, im, j1, j2) // top band
		// Fold the top band into the bottom band: column gaps with
		// p ∈ [i1, im], plus the diagonal terms crossing the split.
		s.applyCol(im+1, i2, i1, im, j1, j2)
		s.applyDiagRow(im+1, j1, j2)
		s.solve(im+1, i2, j1, j2)
	} else {
		jm := (j1 + j2) / 2
		s.solve(i1, i2, j1, jm) // left band
		s.applyRow(i1, i2, j1, jm, jm+1, j2)
		s.applyDiagCol(jm+1, i1, i2)
		s.solve(i1, i2, jm+1, j2)
	}
}

// applyRow folds row-gap contributions from completed columns
// q ∈ [q1,q2] into target cells [i1,i2] × [j1,j2]:
// D[i][j] min= D[i][q] + GapY(q,j). Recursive for cache-obliviousness.
func (s *gapSolver) applyRow(i1, i2, q1, q2, j1, j2 int) {
	di, dq, dj := i2-i1+1, q2-q1+1, j2-j1+1
	if di <= s.block && dq <= s.block && dj <= s.block {
		for i := i1; i <= i2; i++ {
			row := s.d.Row(i)
			for q := q1; q <= q2; q++ {
				diq := row[q]
				if diq == Inf {
					continue
				}
				for j := j1; j <= j2; j++ {
					if cand := diq + s.g.GapY(q, j); cand < row[j] {
						row[j] = cand
					}
				}
			}
		}
		return
	}
	switch {
	case di >= dq && di >= dj:
		im := (i1 + i2) / 2
		s.applyRow(i1, im, q1, q2, j1, j2)
		s.applyRow(im+1, i2, q1, q2, j1, j2)
	case dq >= dj:
		qm := (q1 + q2) / 2
		s.applyRow(i1, i2, q1, qm, j1, j2)
		s.applyRow(i1, i2, qm+1, q2, j1, j2)
	default:
		jm := (j1 + j2) / 2
		s.applyRow(i1, i2, q1, q2, j1, jm)
		s.applyRow(i1, i2, q1, q2, jm+1, j2)
	}
}

// applyCol folds column-gap contributions from completed rows
// p ∈ [p1,p2] into target cells [i1,i2] × [j1,j2]:
// D[i][j] min= D[p][j] + GapX(p,i).
func (s *gapSolver) applyCol(i1, i2, p1, p2, j1, j2 int) {
	di, dp, dj := i2-i1+1, p2-p1+1, j2-j1+1
	if di <= s.block && dp <= s.block && dj <= s.block {
		for p := p1; p <= p2; p++ {
			rowP := s.d.Row(p)
			for i := i1; i <= i2; i++ {
				cost := s.g.GapX(p, i)
				row := s.d.Row(i)
				for j := j1; j <= j2; j++ {
					if dpj := rowP[j]; dpj != Inf {
						if cand := dpj + cost; cand < row[j] {
							row[j] = cand
						}
					}
				}
			}
		}
		return
	}
	switch {
	case di >= dp && di >= dj:
		im := (i1 + i2) / 2
		s.applyCol(i1, im, p1, p2, j1, j2)
		s.applyCol(im+1, i2, p1, p2, j1, j2)
	case dp >= dj:
		pm := (p1 + p2) / 2
		s.applyCol(i1, i2, p1, pm, j1, j2)
		s.applyCol(i1, i2, pm+1, p2, j1, j2)
	default:
		jm := (j1 + j2) / 2
		s.applyCol(i1, i2, p1, p2, j1, jm)
		s.applyCol(i1, i2, p1, p2, jm+1, j2)
	}
}

// applyDiagRow folds the diagonal (substitution) contribution into the
// first row i of a lower band from the completed row i-1 above it.
func (s *gapSolver) applyDiagRow(i, j1, j2 int) {
	if i == 0 {
		return
	}
	prev := s.d.Row(i - 1)
	row := s.d.Row(i)
	for j := max(j1, 1); j <= j2; j++ {
		if prev[j-1] == Inf {
			continue
		}
		if cand := prev[j-1] + s.g.Sub(i, j); cand < row[j] {
			row[j] = cand
		}
	}
}

// applyDiagCol folds the diagonal contribution into the first column j
// of a right band from the completed column j-1.
func (s *gapSolver) applyDiagCol(j, i1, i2 int) {
	if j == 0 {
		return
	}
	for i := max(i1, 1); i <= i2; i++ {
		prev := s.d.At(i-1, j-1)
		if prev == Inf {
			continue
		}
		if cand := prev + s.g.Sub(i, j); cand < s.d.At(i, j) {
			s.d.Set(i, j, cand)
		}
	}
}

// kernel is the iterative base case: cells row-major, folding the
// diagonal and in-block gap contributions (out-of-block ones are
// already in place by the solve invariant).
func (s *gapSolver) kernel(i1, i2, j1, j2 int) {
	for i := i1; i <= i2; i++ {
		row := s.d.Row(i)
		for j := j1; j <= j2; j++ {
			if i == 0 && j == 0 {
				continue
			}
			best := row[j]
			if i > i1 && j > j1 { // in-block diagonal (cross-block is pre-folded)
				if prev := s.d.At(i-1, j-1); prev != Inf {
					if cand := prev + s.g.Sub(i, j); cand < best {
						best = cand
					}
				}
			}
			for q := j1; q < j; q++ { // in-block row gaps
				if row[q] == Inf {
					continue
				}
				if cand := row[q] + s.g.GapY(q, j); cand < best {
					best = cand
				}
			}
			for p := i1; p < i; p++ { // in-block column gaps
				if dpj := s.d.At(p, j); dpj != Inf {
					if cand := dpj + s.g.GapX(p, i); cand < best {
						best = cand
					}
				}
			}
			row[j] = best
		}
	}
}

// checkGapArgs validates sizes for the public helpers.
func checkGapArgs(n, m int) {
	if n < 0 || m < 0 {
		panic(fmt.Sprintf("dp: negative sequence length %d/%d", n, m))
	}
}
