package dp

import (
	"math/rand"
	"testing"
)

// TestChainSpecializationBitIdentical: the dims-specialized solver
// (parenthesisChain, inlined w(i,k,j) = dims[i]·dims[k]·dims[j]) must
// be bit-identical to the closure path — Go associates a*b*c left to
// right, so the inlined product rounds exactly like the closure's.
func TestChainSpecializationBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for _, n := range []int{1, 2, 3, 5, 8, 13, 40} {
		dims := make([]int, n+1)
		for i := range dims {
			dims[i] = 1 + rng.Intn(50)
		}
		wd := chainWeights(dims)
		w := CostFunc(func(i, k, j int) float64 { return wd[i] * wd[k] * wd[j] })
		for _, block := range []int{1, 4, 32} {
			want := ParenthesisCacheOblivious(n, w, make([]float64, n), block)
			got := parenthesisChain(dims, block)
			for i := 0; i <= n; i++ {
				for j := i + 1; j <= n; j++ {
					if want.At(i, j) != got.At(i, j) {
						t.Fatalf("n=%d block=%d: chain c[%d][%d]=%g, closure=%g",
							n, block, i, j, got.At(i, j), want.At(i, j))
					}
				}
			}
		}
	}
}
