package dp

import (
	"gep/internal/matrix"
	"gep/internal/par"
)

// Parallel variants of the DP solvers, following the same recipe as
// multithreaded I-GEP: independent recursive calls run on goroutines
// above a grain size. In the parenthesis problem the two half
// triangles are independent; in both solvers the i- and j-splits of
// the min-plus apply steps write disjoint targets and parallelize,
// while k-splits fold into the same cells and stay sequential.

// ParenthesisParallel is ParenthesisCacheOblivious with goroutine
// execution above the given grain (in interval length).
func ParenthesisParallel(n int, w CostFunc, base []float64, block, grain int) *matrix.Dense[float64] {
	if block < 1 {
		block = 1
	}
	if grain < block {
		grain = block
	}
	c := newParenTable(n, base)
	p := &parenSolver{c: c, w: w, block: block, grain: grain}
	p.solve(0, n)
	return c
}

// AlignParallel is AlignCacheOblivious with goroutine execution above
// the given grain (in cells per side).
func AlignParallel(n, m int, g GapCosts, block, grain int) *matrix.Dense[float64] {
	checkGapArgs(n, m)
	if block < 1 {
		block = 1
	}
	if grain < block {
		grain = block
	}
	d := newAlignTable(n, m)
	s := &gapSolver{d: d, g: g, block: block, grain: grain}
	s.solve(0, n, 0, m)
	return d
}

// par2 runs two tasks, concurrently when size exceeds the grain. Forks
// go through the shared work-stealing runtime (internal/par) rather
// than raw goroutines, so the DP solvers obey the same worker budget,
// depth cutoff, and telemetry as the GEP engines.
func par2(parallel bool, f1, f2 func()) {
	if !parallel {
		f1()
		f2()
		return
	}
	par.Do(f1, f2)
}
