package dp_test

import (
	"fmt"

	"gep/internal/dp"
)

func ExampleMatrixChainOrder() {
	cost, order := dp.MatrixChainOrder([]int{10, 100, 5, 50})
	fmt.Println(cost, order)
	// Output: 7500 ((A0 A1) A2)
}

func ExampleParenthesisCacheOblivious() {
	// Optimal polygon-triangulation-style DP: cost of an interval is
	// the best split plus a per-merge charge of 1.
	n := 4
	w := func(i, k, j int) float64 { return 1 }
	base := make([]float64, n)
	c := dp.ParenthesisCacheOblivious(n, w, base, 2)
	fmt.Println(c.At(0, n)) // n-1 merges
	// Output: 3
}

func ExampleAlignCacheOblivious() {
	x, y := "ACGT", "AGT"
	g := dp.GapCosts{
		Sub: func(i, j int) float64 {
			if x[i-1] == y[j-1] {
				return 0
			}
			return 2
		},
		GapX: func(p, i int) float64 { return float64(i - p) },
		GapY: func(q, j int) float64 { return float64(j - q) },
	}
	d := dp.AlignCacheOblivious(len(x), len(y), g, 2)
	fmt.Println(d.At(len(x), len(y))) // delete "C": one gap of length 1
	// Output: 1
}

func ExampleTraceback() {
	x, y := "AT", "AGT"
	g := dp.GapCosts{
		Sub: func(i, j int) float64 {
			if x[i-1] == y[j-1] {
				return 0
			}
			return 2
		},
		GapX: func(p, i int) float64 { return float64(i-p) + 1 },
		GapY: func(q, j int) float64 { return float64(j-q) + 1 },
	}
	d := dp.AlignCacheOblivious(len(x), len(y), g, 2)
	for _, op := range dp.Traceback(d, len(x), len(y), g) {
		fmt.Printf("%c(%d,%d) ", op.Kind, op.I, op.J)
	}
	fmt.Println()
	// Output: M(1,1) Y(1,2) M(2,3)
}
