package dp

import "gep/internal/matrix"

// Gotoh's O(nm) algorithm for alignment with affine gap costs
// w(l) = open + extend·l. It is an independent oracle for the general
// gap solvers: on affine costs all three must agree.

// GotohAffine returns the full alignment cost table for sequences of
// lengths n and m under substitution cost sub(i,j) (1-based) and
// affine gaps.
func GotohAffine(n, m int, sub func(i, j int) float64, open, extend float64) *matrix.Dense[float64] {
	d := matrix.New[float64](n+1, m+1) // best cost ending anyhow
	p := matrix.New[float64](n+1, m+1) // best cost ending in a vertical (x) gap
	q := matrix.New[float64](n+1, m+1) // best cost ending in a horizontal (y) gap

	min2 := func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}

	d.Set(0, 0, 0)
	p.Set(0, 0, Inf)
	q.Set(0, 0, Inf)
	for i := 1; i <= n; i++ {
		gap := open + extend*float64(i)
		d.Set(i, 0, gap)
		p.Set(i, 0, gap)
		q.Set(i, 0, Inf)
	}
	for j := 1; j <= m; j++ {
		gap := open + extend*float64(j)
		d.Set(0, j, gap)
		q.Set(0, j, gap)
		p.Set(0, j, Inf)
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			pv := min2(d.At(i-1, j)+open+extend, p.At(i-1, j)+extend)
			qv := min2(d.At(i, j-1)+open+extend, q.At(i, j-1)+extend)
			dv := min2(d.At(i-1, j-1)+sub(i, j), min2(pv, qv))
			p.Set(i, j, pv)
			q.Set(i, j, qv)
			d.Set(i, j, dv)
		}
	}
	return d
}

// AffineCosts builds the GapCosts of an affine penalty, for feeding
// the general solvers.
func AffineCosts(sub func(i, j int) float64, open, extend float64) GapCosts {
	return GapCosts{
		Sub:  sub,
		GapX: func(p, i int) float64 { return open + extend*float64(i-p) },
		GapY: func(q, j int) float64 { return open + extend*float64(j-q) },
	}
}
