package dp

import (
	"math/rand"
	"testing"
)

func BenchmarkParenthesisIterative(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w, base := randChainW(rng, 256)
	for i := 0; i < b.N; i++ {
		_ = ParenthesisIterative(256, w, base)
	}
}

func BenchmarkParenthesisCacheOblivious(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w, base := randChainW(rng, 256)
	for i := 0; i < b.N; i++ {
		_ = ParenthesisCacheOblivious(256, w, base, 32)
	}
}

func BenchmarkAlignIterative(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x, y := randomSeqs(rng, 128, 128)
	g := AffineCosts(subCost(x, y), 5, 1)
	for i := 0; i < b.N; i++ {
		_ = AlignIterative(128, 128, g)
	}
}

func BenchmarkAlignCacheOblivious(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x, y := randomSeqs(rng, 128, 128)
	g := AffineCosts(subCost(x, y), 5, 1)
	for i := 0; i < b.N; i++ {
		_ = AlignCacheOblivious(128, 128, g, 32)
	}
}

func BenchmarkGotohAffine(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x, y := randomSeqs(rng, 128, 128)
	sub := subCost(x, y)
	for i := 0; i < b.N; i++ {
		_ = GotohAffine(128, 128, sub, 5, 1)
	}
}
