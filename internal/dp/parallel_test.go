package dp

import (
	"math/rand"
	"testing"
)

func TestParenthesisParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	for _, n := range []int{5, 16, 33, 64} {
		w, base := randChainW(rng, n)
		want := ParenthesisCacheOblivious(n, w, base, 4)
		got := ParenthesisParallel(n, w, base, 4, 8)
		for i := 0; i <= n; i++ {
			for j := i + 1; j <= n; j++ {
				if want.At(i, j) != got.At(i, j) {
					t.Fatalf("n=%d: parallel c[%d][%d] = %g, want %g", n, i, j, got.At(i, j), want.At(i, j))
				}
			}
		}
	}
}

func TestAlignParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for _, sh := range [][2]int{{16, 16}, {33, 20}, {48, 48}, {7, 40}} {
		n, m := sh[0], sh[1]
		x, y := randomSeqs(rng, n, m)
		g := GapCosts{
			Sub:  subCost(x, y),
			GapX: func(p, i int) float64 { return 3 + float64(i-p) },
			GapY: func(q, j int) float64 { return 3 + float64(j-q) },
		}
		want := AlignIterative(n, m, g)
		got := AlignParallel(n, m, g, 4, 8)
		for i := 0; i <= n; i++ {
			for j := 0; j <= m; j++ {
				if want.At(i, j) != got.At(i, j) {
					t.Fatalf("%dx%d: parallel D[%d][%d] = %g, want %g", n, m, i, j, got.At(i, j), want.At(i, j))
				}
			}
		}
	}
}

// TestAlignQuadrantSerial checks the quadrant-split path at grain 0
// (serial) against the iterative solver — the path the thin binary
// splits used to cover is now reached only for thin blocks.
func TestAlignQuadrantSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	n, m := 30, 30
	x, y := randomSeqs(rng, n, m)
	g := GapCosts{
		Sub:  subCost(x, y),
		GapX: func(p, i int) float64 { return 5 + 0.5*float64(i-p) },
		GapY: func(q, j int) float64 { return 2 + 2.5*float64(j-q) },
	}
	want := AlignIterative(n, m, g)
	for _, block := range []int{1, 2, 5, 16} {
		got := AlignCacheOblivious(n, m, g, block)
		for i := 0; i <= n; i++ {
			for j := 0; j <= m; j++ {
				if want.At(i, j) != got.At(i, j) {
					t.Fatalf("block=%d: D[%d][%d] = %g, want %g", block, i, j, got.At(i, j), want.At(i, j))
				}
			}
		}
	}
}

func TestTracebackRecoversOptimalAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for _, sh := range [][2]int{{8, 8}, {15, 22}, {30, 30}} {
		n, m := sh[0], sh[1]
		x, y := randomSeqs(rng, n, m)
		g := GapCosts{
			Sub:  subCost(x, y),
			GapX: func(p, i int) float64 { return 4 + float64(i-p) },
			GapY: func(q, j int) float64 { return 4 + float64(j-q) },
		}
		d := AlignCacheOblivious(n, m, g, 8)
		ops := Traceback(d, n, m, g)
		if ops == nil {
			t.Fatalf("%dx%d: no traceback found", n, m)
		}
		if !OpsCoverSequences(ops, n, m) {
			t.Fatalf("%dx%d: traceback does not cover the sequences: %v", n, m, ops)
		}
		if cost := OpsCost(ops, g); cost != d.At(n, m) {
			t.Fatalf("%dx%d: traceback cost %g != optimal %g", n, m, cost, d.At(n, m))
		}
	}
}

func TestTracebackEmpty(t *testing.T) {
	g := GapCosts{
		Sub:  func(i, j int) float64 { return 0 },
		GapX: func(p, i int) float64 { return 1 },
		GapY: func(q, j int) float64 { return 1 },
	}
	d := AlignIterative(0, 0, g)
	ops := Traceback(d, 0, 0, g)
	if len(ops) != 0 {
		t.Fatalf("empty alignment has ops: %v", ops)
	}
	if !OpsCoverSequences(nil, 0, 0) {
		t.Fatal("empty cover rejected")
	}
}

func TestOpsCoverRejectsGaps(t *testing.T) {
	if OpsCoverSequences([]Op{{Kind: 'M', I: 1, J: 1}}, 2, 1) {
		t.Fatal("incomplete cover accepted")
	}
	if OpsCoverSequences([]Op{{Kind: 'M', I: 2, J: 1}}, 2, 1) {
		t.Fatal("non-monotone cover accepted")
	}
	if OpsCoverSequences([]Op{{Kind: '?', I: 1, J: 1}}, 1, 1) {
		t.Fatal("unknown op accepted")
	}
}
