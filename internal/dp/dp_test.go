package dp

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// ---- parenthesis problem -------------------------------------------

// bruteParenthesis is an exponential-free memoized reference computed
// top-down, structurally unlike the two production solvers.
func bruteParenthesis(n int, w CostFunc, base []float64) [][]float64 {
	memo := make([][]float64, n+1)
	for i := range memo {
		memo[i] = make([]float64, n+1)
		for j := range memo[i] {
			memo[i][j] = math.NaN()
		}
	}
	var rec func(i, j int) float64
	rec = func(i, j int) float64 {
		if !math.IsNaN(memo[i][j]) {
			return memo[i][j]
		}
		var v float64
		switch {
		case j == i+1:
			v = base[i]
		default:
			v = Inf
			for k := i + 1; k < j; k++ {
				if cand := rec(i, k) + rec(k, j) + w(i, k, j); cand < v {
					v = cand
				}
			}
		}
		memo[i][j] = v
		return v
	}
	for i := 0; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			rec(i, j)
		}
	}
	return memo
}

func randChainW(rng *rand.Rand, n int) (CostFunc, []float64) {
	dims := make([]int, n+1)
	for i := range dims {
		dims[i] = rng.Intn(20) + 1
	}
	w := func(i, k, j int) float64 { return float64(dims[i] * dims[k] * dims[j]) }
	base := make([]float64, n)
	return w, base
}

func TestParenthesisSolversAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for _, n := range []int{1, 2, 3, 5, 8, 13, 21, 40} {
		w, base := randChainW(rng, n)
		memo := bruteParenthesis(n, w, base)
		iter := ParenthesisIterative(n, w, base)
		for _, block := range []int{1, 2, 4, 7, 64} {
			co := ParenthesisCacheOblivious(n, w, base, block)
			for i := 0; i <= n; i++ {
				for j := i + 1; j <= n; j++ {
					if iter.At(i, j) != memo[i][j] {
						t.Fatalf("n=%d: iterative c[%d][%d]=%g, brute=%g", n, i, j, iter.At(i, j), memo[i][j])
					}
					if co.At(i, j) != memo[i][j] {
						t.Fatalf("n=%d block=%d: cache-oblivious c[%d][%d]=%g, brute=%g",
							n, block, i, j, co.At(i, j), memo[i][j])
					}
				}
			}
		}
	}
}

func TestParenthesisArbitraryCosts(t *testing.T) {
	// k-dependent and i/j-dependent costs with nonzero bases.
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 5; trial++ {
		n := 10 + trial*7
		costs := make(map[[3]int]float64)
		w := func(i, k, j int) float64 {
			key := [3]int{i, k, j}
			if v, ok := costs[key]; ok {
				return v
			}
			v := float64((i*7+k*13+j*29)%50 + 1)
			costs[key] = v
			return v
		}
		base := make([]float64, n)
		for i := range base {
			base[i] = float64(rng.Intn(10))
		}
		iter := ParenthesisIterative(n, w, base)
		co := ParenthesisCacheOblivious(n, w, base, 4)
		for i := 0; i <= n; i++ {
			for j := i + 1; j <= n; j++ {
				if iter.At(i, j) != co.At(i, j) {
					t.Fatalf("n=%d: mismatch at (%d,%d): %g vs %g", n, i, j, iter.At(i, j), co.At(i, j))
				}
			}
		}
	}
}

func TestMatrixChainKnownExample(t *testing.T) {
	// CLRS example: dims 30,35,15,5,10,20,25 → 15125.
	dims := []int{30, 35, 15, 5, 10, 20, 25}
	if got := MatrixChainCost(dims); got != 15125 {
		t.Fatalf("MatrixChainCost = %g, want 15125", got)
	}
	cost, order := MatrixChainOrder(dims)
	if cost != 15125 {
		t.Fatalf("MatrixChainOrder cost = %g", cost)
	}
	// CLRS optimal: ((A0 (A1 A2)) ((A3 A4) A5)).
	if order != "((A0 (A1 A2)) ((A3 A4) A5))" {
		t.Fatalf("order = %q", order)
	}
	if MatrixChainCost([]int{7}) != 0 || MatrixChainCost([]int{3, 4}) != 0 {
		t.Fatal("degenerate chains should cost 0")
	}
}

func TestMatrixChainOrderBalanced(t *testing.T) {
	// Equal dims: any order has equal cost; the string must still be a
	// well-formed full parenthesization with n-1 multiplications.
	cost, order := MatrixChainOrder([]int{2, 2, 2, 2, 2})
	if cost != 3*8 {
		t.Fatalf("cost = %g, want 24", cost)
	}
	if strings.Count(order, "(") != 3 || strings.Count(order, "A") != 4 {
		t.Fatalf("order = %q", order)
	}
}

// ---- gap alignment --------------------------------------------------

func randomSeqs(rng *rand.Rand, n, m int) (x, y []byte) {
	const alpha = "ACGT"
	x = make([]byte, n)
	y = make([]byte, m)
	for i := range x {
		x[i] = alpha[rng.Intn(4)]
	}
	for j := range y {
		y[j] = alpha[rng.Intn(4)]
	}
	return
}

func subCost(x, y []byte) func(i, j int) float64 {
	return func(i, j int) float64 {
		if x[i-1] == y[j-1] {
			return 0
		}
		return 3
	}
}

func TestAlignCacheObliviousMatchesIterative(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	shapes := [][2]int{{0, 0}, {1, 0}, {0, 3}, {1, 1}, {5, 5}, {7, 13}, {16, 16}, {33, 9}, {24, 40}}
	for _, sh := range shapes {
		n, m := sh[0], sh[1]
		x, y := randomSeqs(rng, n, m)
		// A quirky concave-ish integer gap cost.
		g := GapCosts{
			Sub:  subCost(x, y),
			GapX: func(p, i int) float64 { return 4 + float64((i-p)%5) },
			GapY: func(q, j int) float64 { return 2 + 2*float64(j-q) },
		}
		want := AlignIterative(n, m, g)
		for _, block := range []int{1, 2, 3, 8, 64} {
			got := AlignCacheOblivious(n, m, g, block)
			for i := 0; i <= n; i++ {
				for j := 0; j <= m; j++ {
					if want.At(i, j) != got.At(i, j) {
						t.Fatalf("n=%d m=%d block=%d: D[%d][%d] = %g, want %g",
							n, m, block, i, j, got.At(i, j), want.At(i, j))
					}
				}
			}
		}
	}
}

func TestAlignAffineMatchesGotoh(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, sh := range [][2]int{{6, 6}, {12, 20}, {25, 25}, {31, 17}} {
		n, m := sh[0], sh[1]
		x, y := randomSeqs(rng, n, m)
		sub := subCost(x, y)
		const open, extend = 5, 1
		oracle := GotohAffine(n, m, sub, open, extend)
		general := AlignCacheOblivious(n, m, AffineCosts(sub, open, extend), 8)
		for i := 0; i <= n; i++ {
			for j := 0; j <= m; j++ {
				if oracle.At(i, j) != general.At(i, j) {
					t.Fatalf("n=%d m=%d: D[%d][%d] = %g, Gotoh %g",
						n, m, i, j, general.At(i, j), oracle.At(i, j))
				}
			}
		}
	}
}

func TestAlignIdenticalSequencesCostZero(t *testing.T) {
	x := []byte("GATTACA")
	g := GapCosts{
		Sub:  subCost(x, x),
		GapX: func(p, i int) float64 { return 10 },
		GapY: func(q, j int) float64 { return 10 },
	}
	d := AlignCacheOblivious(len(x), len(x), g, 4)
	if d.At(len(x), len(x)) != 0 {
		t.Fatalf("self-alignment cost = %g, want 0", d.At(len(x), len(x)))
	}
}

func TestAlignValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AlignIterative(-1, 3, GapCosts{})
}

func TestParenthesisBaseValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ParenthesisIterative(4, func(i, k, j int) float64 { return 0 }, make([]float64, 3))
}
