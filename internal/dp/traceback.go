package dp

// Alignment traceback: reconstruct the operations of an optimal
// alignment from a completed cost table. Works with any gap costs —
// the table plus the cost functions determine which move produced each
// cell, the same way apsp.Path rebuilds routes from distances.

// Op is one alignment operation.
type Op struct {
	// Kind is 'M' (match/substitute x_i with y_j), 'X' (gap in y:
	// delete x_{p+1..i}) or 'Y' (gap in x: insert y_{q+1..j}).
	Kind byte
	// I, J are the 1-based end positions in x and y after the op.
	I, J int
	// From records the gap start (p or q) for gap ops; unused for 'M'.
	From int
}

// Traceback returns the operations of one optimal alignment, in order,
// given the completed table from AlignIterative/AlignCacheOblivious
// and the same cost functions. It returns nil if the table is
// inconsistent with the costs.
func Traceback(d interface{ At(i, j int) float64 }, n, m int, g GapCosts) []Op {
	var ops []Op
	i, j := n, m
	for i > 0 || j > 0 {
		cur := d.At(i, j)
		found := false
		// Diagonal move.
		if i > 0 && j > 0 && d.At(i-1, j-1)+g.Sub(i, j) == cur {
			ops = append(ops, Op{Kind: 'M', I: i, J: j})
			i, j = i-1, j-1
			found = true
		}
		// Gap in y (horizontal): D[i][q] + GapY(q, j).
		if !found && j > 0 {
			for q := j - 1; q >= 0; q-- {
				if d.At(i, q)+g.GapY(q, j) == cur {
					ops = append(ops, Op{Kind: 'Y', I: i, J: j, From: q})
					j = q
					found = true
					break
				}
			}
		}
		// Gap in x (vertical): D[p][j] + GapX(p, i).
		if !found && i > 0 {
			for p := i - 1; p >= 0; p-- {
				if d.At(p, j)+g.GapX(p, i) == cur {
					ops = append(ops, Op{Kind: 'X', I: i, J: j, From: p})
					i = p
					found = true
					break
				}
			}
		}
		if !found {
			return nil // inconsistent table/costs
		}
	}
	// Reverse into forward order.
	for a, b := 0, len(ops)-1; a < b; a, b = a+1, b-1 {
		ops[a], ops[b] = ops[b], ops[a]
	}
	return ops
}

// OpsCost sums the cost of an operation sequence under g; a valid
// traceback's cost equals the table's bottom-right cell.
func OpsCost(ops []Op, g GapCosts) float64 {
	total := 0.0
	for _, op := range ops {
		switch op.Kind {
		case 'M':
			total += g.Sub(op.I, op.J)
		case 'X':
			total += g.GapX(op.From, op.I)
		case 'Y':
			total += g.GapY(op.From, op.J)
		}
	}
	return total
}

// OpsCoverSequences reports whether ops is a complete monotone cover
// of x[1..n] and y[1..m] (every position consumed exactly once).
func OpsCoverSequences(ops []Op, n, m int) bool {
	i, j := 0, 0
	for _, op := range ops {
		switch op.Kind {
		case 'M':
			if op.I != i+1 || op.J != j+1 {
				return false
			}
			i, j = op.I, op.J
		case 'X':
			if op.From != i || op.I <= i {
				return false
			}
			i = op.I
		case 'Y':
			if op.From != j || op.J <= j {
				return false
			}
			j = op.J
		default:
			return false
		}
	}
	return i == n && j == m
}
