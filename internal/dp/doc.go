// Package dp contains the two dynamic-programming applications the
// paper inherits from its companion work ([5] Cherng-Ladner, [6]
// Chowdhury-Ramachandran SODA'06) and cites as further uses of the
// cache-oblivious machinery:
//
//   - the parenthesis problem ("simple-DP"): optimal binary splitting
//     of an interval, covering matrix-chain multiplication, optimal
//     polygon triangulation and similar O(n³) interval DPs; and
//   - sequence alignment with a general (not necessarily affine) gap
//     cost function, an O(n²m + nm²) DP.
//
// Each comes in an iterative textbook form and a cache-oblivious
// divide-and-conquer form built from the same ingredients as I-GEP:
// quadrant recursion plus min-plus rectangular "matrix product" apply
// steps for the cross-quadrant contributions. With integer costs the
// two forms produce bitwise-identical tables.
//
// Key entry points:
//
//   - ParenthesisIterative / ParenthesisCacheOblivious /
//     ParenthesisParallel over a CostFunc, with MatrixChainOrder as
//     the classic instantiation and Traceback to recover the optimal
//     split tree.
//   - AlignIterative / AlignCacheOblivious / AlignParallel over
//     GapCosts; AffineCosts builds the affine special case and
//     GotohAffine is the independent O(nm) oracle the tests compare
//     against.
package dp
