package sched

import "testing"

func TestSimulateCALUValidation(t *testing.T) {
	if _, err := SimulateCALU(CALUConfig{N: 0, Panel: 32, P: 4, C: 1}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := SimulateCALU(CALUConfig{N: 256, Panel: 32, P: 8, C: 3}); err == nil {
		t.Error("c=3 not dividing p=8 accepted")
	}
	if _, err := SimulateCALU(CALUConfig{N: 256, Panel: 32, P: 8, C: 2}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestSimulateCALUDeterministic(t *testing.T) {
	cfg := CALUConfig{N: 1024, Panel: 32, P: 8, C: 2}
	a, err := SimulateCALU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := SimulateCALU(cfg)
	if a != b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

// TestSimulateCALUSingleProcessor: with one processor and no
// replication every phase is local, so the simulated network volume
// is exactly zero.
func TestSimulateCALUSingleProcessor(t *testing.T) {
	v, err := SimulateCALU(CALUConfig{N: 512, Panel: 32, P: 1, C: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v.Total() != 0 {
		t.Fatalf("p=1 volume %+v, want 0", v)
	}
}

// TestSimulateCALUReplicationTradeoff: the 2.5D story at P = 64 —
// replication divides the broadcast traffic (strictly decreasing in
// c), pays a replication price in Reduce/RowSwap, and still wins
// overall at c = 4.
func TestSimulateCALUReplicationTradeoff(t *testing.T) {
	const n, b, p = 2048, 32, 64
	vol := map[int]CommVolume{}
	for _, c := range []int{1, 2, 4} {
		v, err := SimulateCALU(CALUConfig{N: n, Panel: b, P: p, C: c})
		if err != nil {
			t.Fatal(err)
		}
		vol[c] = v
	}
	bcast := func(v CommVolume) float64 { return v.PanelBcast + v.TrailingU }
	if !(bcast(vol[2]) < bcast(vol[1])) || !(bcast(vol[4]) < bcast(vol[2])) {
		t.Fatalf("broadcast volume not decreasing in c: c1=%g c2=%g c4=%g",
			bcast(vol[1]), bcast(vol[2]), bcast(vol[4]))
	}
	if vol[1].Reduce != 0 {
		t.Fatalf("c=1 has a reduction phase: %g", vol[1].Reduce)
	}
	if !(vol[2].Reduce < vol[4].Reduce) {
		t.Fatalf("replication price not increasing in c: c2=%g c4=%g",
			vol[2].Reduce, vol[4].Reduce)
	}
	if !(vol[4].Total() < vol[1].Total()) {
		t.Fatalf("c=4 total %g not below c=1 total %g", vol[4].Total(), vol[1].Total())
	}
}

// TestSimulateCALUNearBound: across the experiment's sweep the
// simulated per-processor volume stays within a factor of 4 of the
// Kwasniewski et al. lower bound n³/(P·√M) at the derived 2.5D memory
// M = c·n²/P — the "near-optimal" acceptance band (and above 1/20 of
// it, i.e. the model is not trivially undercounting).
func TestSimulateCALUNearBound(t *testing.T) {
	const n, b = 2048, 32
	for _, p := range []int{2, 4, 8, 16, 64} {
		for _, c := range []int{1, 2, 4} {
			if p%c != 0 {
				continue
			}
			cfg := CALUConfig{N: n, Panel: b, P: p, C: c}
			v, err := SimulateCALU(cfg)
			if err != nil {
				t.Fatal(err)
			}
			bound := LUCommLowerBound(n, p, cfg.Memory())
			if bound <= 0 {
				t.Fatalf("p=%d c=%d: bound %g", p, c, bound)
			}
			ratio := v.Total() / bound
			if ratio > 4 || ratio < 1.0/20 {
				t.Errorf("p=%d c=%d: volume %g vs bound %g (ratio %.2f) outside [0.05, 4]",
					p, c, v.Total(), bound, ratio)
			}
		}
	}
}

// TestLUCommLowerBoundDegenerate: non-positive inputs return 0 rather
// than NaN/Inf.
func TestLUCommLowerBoundDegenerate(t *testing.T) {
	for _, tc := range []struct {
		n, p int
		m    int64
	}{{0, 4, 8}, {64, 0, 8}, {64, 4, 0}} {
		if got := LUCommLowerBound(tc.n, tc.p, tc.m); got != 0 {
			t.Errorf("LUCommLowerBound(%d,%d,%d) = %g, want 0", tc.n, tc.p, tc.m, got)
		}
	}
}
