package sched

import "testing"

func BenchmarkBuildAndSchedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plan := BuildPlan(FW, 256, 16)
		_ = Schedule(Flatten(plan), 8)
	}
}

func BenchmarkWorkStealingSchedule(b *testing.B) {
	tp := BuildTiledPlan(FW, 256, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ScheduleWorkStealing(tp, 8, int64(i))
	}
}
