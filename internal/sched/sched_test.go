package sched

import "testing"

func TestLeafAndCombinators(t *testing.T) {
	p := Seq{Leaf{10}, Par{Leaf{5}, Leaf{7}}, Leaf{3}}
	if got := TotalWork(p); got != 25 {
		t.Fatalf("TotalWork = %d, want 25", got)
	}
	if got := Span(p); got != 20 { // 10 + max(5,7) + 3
		t.Fatalf("Span = %d, want 20", got)
	}
}

func TestScheduleSerialEqualsWork(t *testing.T) {
	for _, w := range []Workload{FW, GE, MM} {
		p := BuildPlan(w, 32, 4)
		d := Flatten(p)
		if got, want := Schedule(d, 1), TotalWork(p); got != want {
			t.Fatalf("%v: T_1 = %d, want total work %d", w, got, want)
		}
	}
}

func TestScheduleRespectsBrentBound(t *testing.T) {
	// Greedy scheduling satisfies T_p <= T_1/p + T_inf and
	// T_p >= max(T_1/p, T_inf).
	for _, w := range []Workload{FW, GE, MM} {
		p := BuildPlan(w, 64, 8)
		d := Flatten(p)
		t1 := TotalWork(p)
		tinf := Span(p)
		for _, q := range []int{1, 2, 4, 8, 16} {
			tp := Schedule(d, q)
			lower := t1 / int64(q)
			if tinf > lower {
				lower = tinf
			}
			if tp < lower {
				t.Fatalf("%v p=%d: T_p=%d below lower bound %d", w, q, tp, lower)
			}
			if upper := t1/int64(q) + tinf + 1; tp > upper {
				t.Fatalf("%v p=%d: T_p=%d above Brent bound %d", w, q, tp, upper)
			}
		}
	}
}

func TestWorkCounts(t *testing.T) {
	// FW/MM over n³; GE over {k<i, k<j}: sum_k (n-1-k)² = n(n-1)(2n-1)/6.
	n := 16
	if got := TotalWork(BuildPlan(FW, n, 2)); got != int64(n*n*n) {
		t.Fatalf("FW work = %d, want %d", got, n*n*n)
	}
	if got := TotalWork(BuildPlan(MM, n, 2)); got != int64(n*n*n) {
		t.Fatalf("MM work = %d, want %d", got, n*n*n)
	}
	wantGE := int64(n * (n - 1) * (2*n - 1) / 6)
	if got := TotalWork(BuildPlan(GE, n, 2)); got != wantGE {
		t.Fatalf("GE work = %d, want %d", got, wantGE)
	}
}

func TestMMHasShorterSpanThanFW(t *testing.T) {
	// Theorem 3.1: span O(n log² n) for the A recursion vs O(n) for
	// the MM recursion. At equal n and grain, MM's span must be
	// strictly smaller and the gap must widen with n.
	prevRatio := 0.0
	for _, n := range []int{16, 32, 64, 128} {
		fw := Span(BuildPlan(FW, n, 1))
		mm := Span(BuildPlan(MM, n, 1))
		if mm >= fw {
			t.Fatalf("n=%d: span(MM)=%d >= span(FW)=%d", n, mm, fw)
		}
		ratio := float64(fw) / float64(mm)
		if ratio <= prevRatio {
			t.Fatalf("n=%d: span ratio %.2f did not grow (prev %.2f)", n, ratio, prevRatio)
		}
		prevRatio = ratio
	}
}

func TestMMSpanLinear(t *testing.T) {
	// Span(MM) with grain 1 is exactly 2n - 1... each level doubles
	// the sequential k-halves: S(n) = 2 S(n/2), S(1) = 1 → S(n) = n.
	for _, n := range []int{2, 8, 64} {
		if got := Span(BuildPlan(MM, n, 1)); got != int64(n) {
			t.Fatalf("span(MM, n=%d) = %d, want %d", n, got, n)
		}
	}
}

// TestSpeedupOrdering reproduces Figure 12's qualitative finding: at
// p = 8 the speedups order MM >= FW >= GE.
func TestSpeedupOrdering(t *testing.T) {
	const n, grain = 256, 16
	at8 := func(w Workload) float64 {
		c := SpeedupCurve(BuildPlan(w, n, grain), []int{8})
		return c[0].Speedup
	}
	mm, fw, ge := at8(MM), at8(FW), at8(GE)
	if !(mm >= fw && fw >= ge) {
		t.Fatalf("speedup ordering violated: MM=%.2f FW=%.2f GE=%.2f", mm, fw, ge)
	}
	if mm < 4 {
		t.Fatalf("MM speedup at p=8 is %.2f; expected substantial parallelism", mm)
	}
}

func TestSpeedupMonotonic(t *testing.T) {
	curve := SpeedupCurve(BuildPlan(FW, 128, 8), []int{1, 2, 3, 4, 5, 6, 7, 8})
	if curve[0].Speedup != 1 {
		t.Fatalf("speedup at p=1 is %.3f, want 1", curve[0].Speedup)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Makespan > curve[i-1].Makespan {
			t.Fatalf("makespan increased from p=%d to p=%d", curve[i-1].P, curve[i].P)
		}
	}
}

func TestFlattenJoinNodesKeepEdgesLinear(t *testing.T) {
	// A Seq of two wide Pars must use a barrier node rather than a
	// quadratic bipartite connection.
	wide := make(Par, 100)
	for i := range wide {
		wide[i] = Leaf{1}
	}
	d := Flatten(Seq{wide, wide})
	edges := 0
	for _, s := range d.succs {
		edges += len(s)
	}
	if edges > 300 {
		t.Fatalf("edge count %d suggests quadratic connection", edges)
	}
	if got := Schedule(d, 10); got != 20 {
		t.Fatalf("T_10 = %d, want 20", got)
	}
}

func TestBuildPlanValidation(t *testing.T) {
	for _, f := range []func(){
		func() { BuildPlan(FW, 12, 2) },
		func() { BuildPlan(FW, 16, 3) },
		func() { BuildPlan(FW, 4, 8) },
		func() { BuildPlan(FW, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestGEPruningShrinksPlan(t *testing.T) {
	// GE's Σ_G leaves ~1/3 of the update boxes empty; the plan must
	// contain strictly fewer leaves than FW's.
	countLeaves := func(p Plan) int {
		var rec func(Plan) int
		rec = func(p Plan) int {
			switch v := p.(type) {
			case nil:
				return 0
			case Leaf:
				return 1
			case Seq:
				n := 0
				for _, c := range v {
					n += rec(c)
				}
				return n
			case Par:
				n := 0
				for _, c := range v {
					n += rec(c)
				}
				return n
			}
			return 0
		}
		return rec(p)
	}
	fw := countLeaves(BuildPlan(FW, 64, 8))
	ge := countLeaves(BuildPlan(GE, 64, 8))
	if ge >= fw {
		t.Fatalf("GE leaves (%d) not below FW leaves (%d)", ge, fw)
	}
}
