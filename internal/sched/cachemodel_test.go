package sched

import "testing"

func TestTiledPlanLeafFootprints(t *testing.T) {
	tp := BuildTiledPlan(FW, 32, 8)
	if tp.R != 4 {
		t.Fatalf("R = %d, want 4", tp.R)
	}
	if len(tp.tiles) == 0 {
		t.Fatal("no leaves recorded")
	}
	for i, ids := range tp.tiles {
		if len(ids) == 0 || len(ids) > 4 {
			t.Fatalf("leaf %d touches %d tiles", i, len(ids))
		}
		seen := map[int32]bool{}
		for _, id := range ids {
			if id < 0 || int(id) >= tp.R*tp.R {
				t.Fatalf("leaf %d: tile %d out of range", i, id)
			}
			if seen[id] {
				t.Fatalf("leaf %d: duplicate tile %d", i, id)
			}
			seen[id] = true
		}
	}
	// Work must match the untiled plan.
	if TotalWork(tp.Plan) != TotalWork(BuildPlan(FW, 32, 8)) {
		t.Fatal("tiled plan work differs from plain plan")
	}
}

func TestScheduleTraceConsistent(t *testing.T) {
	tp := BuildTiledPlan(GE, 64, 8)
	for _, p := range []int{1, 3, 8} {
		makespan, log := ScheduleTrace(tp, p)
		if len(log) != len(tp.tiles) {
			t.Fatalf("p=%d: %d events for %d leaves", p, len(log), len(tp.tiles))
		}
		// Makespan must match the plain scheduler.
		d := Flatten(tp.Plan)
		if want := Schedule(d, p); makespan != want {
			t.Fatalf("p=%d: trace makespan %d, Schedule %d", p, makespan, want)
		}
		// Processor IDs in range; starts non-decreasing.
		prev := int64(0)
		for _, ev := range log {
			if ev.Proc < 0 || ev.Proc >= p {
				t.Fatalf("bad processor %d", ev.Proc)
			}
			if ev.Start < prev {
				t.Fatalf("events not in start order")
			}
			prev = ev.Start
		}
	}
}

// TestLemma31Shape: with private caches, total misses Q_p grow with p
// (the paper's Lemma 3.1 overhead term) but stay within a modest
// multiple of Q_1 for small p.
func TestLemma31Shape(t *testing.T) {
	tp := BuildTiledPlan(FW, 256, 16) // 16x16 tile grid
	const cacheTiles = 32
	q1 := DistributedMisses(tp, 1, cacheTiles)
	if q1 <= 0 {
		t.Fatal("no misses at p=1")
	}
	prev := q1
	for _, p := range []int{2, 4, 8} {
		qp := DistributedMisses(tp, p, cacheTiles)
		if qp < q1 {
			t.Fatalf("p=%d: distributed Q_p (%d) below Q_1 (%d)", p, qp, q1)
		}
		if qp > 3*q1 {
			t.Fatalf("p=%d: Q_p (%d) more than 3x Q_1 (%d)", p, qp, q1)
		}
		_ = prev
		prev = qp
	}
}

// TestLemma32Shape: with one shared cache of unchanged size, the
// parallel schedule's misses stay within a constant factor of the
// sequential ones (Lemma 3.2(b)(ii)).
func TestLemma32Shape(t *testing.T) {
	tp := BuildTiledPlan(FW, 256, 16)
	const cacheTiles = 32
	q1 := SharedMisses(tp, 1, cacheTiles)
	for _, p := range []int{2, 4, 8} {
		qp := SharedMisses(tp, p, cacheTiles)
		if float64(qp) > 3*float64(q1) {
			t.Fatalf("p=%d: shared Q_p (%d) vs Q_1 (%d) exceeds constant factor", p, qp, q1)
		}
	}
}

// TestColdMissesLowerBound: every distinct tile must be fetched at
// least once however large the cache.
func TestColdMissesLowerBound(t *testing.T) {
	tp := BuildTiledPlan(MM, 64, 16)
	distinct := map[int32]bool{}
	for _, ids := range tp.tiles {
		for _, id := range ids {
			distinct[id] = true
		}
	}
	got := SharedMisses(tp, 4, 1<<20)
	if got != int64(len(distinct)) {
		t.Fatalf("huge-cache misses = %d, want cold count %d", got, len(distinct))
	}
}

func TestCacheModelValidation(t *testing.T) {
	tp := BuildTiledPlan(FW, 16, 8)
	for _, f := range []func(){
		func() { DistributedMisses(tp, 2, 0) },
		func() { SharedMisses(tp, 2, 0) },
		func() { BuildTiledPlan(FW, 10, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
