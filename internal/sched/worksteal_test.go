package sched

import "testing"

func TestWorkStealingExecutesEverything(t *testing.T) {
	tp := BuildTiledPlan(FW, 64, 8)
	for _, p := range []int{1, 2, 8} {
		res := ScheduleWorkStealing(tp, p, 1)
		if len(res.Log) != len(tp.tiles) {
			t.Fatalf("p=%d: executed %d leaves, want %d", p, len(res.Log), len(tp.tiles))
		}
		// Work conservation: makespan >= T1/p and >= span.
		t1 := TotalWork(tp.Plan)
		if res.Makespan < t1/int64(p) {
			t.Fatalf("p=%d: makespan %d below T1/p", p, res.Makespan)
		}
		if sp := Span(tp.Plan); res.Makespan < sp {
			t.Fatalf("p=%d: makespan %d below span %d", p, res.Makespan, sp)
		}
	}
}

func TestWorkStealingSerialNoSteals(t *testing.T) {
	tp := BuildTiledPlan(GE, 64, 8)
	res := ScheduleWorkStealing(tp, 1, 3)
	if res.Steals != 0 {
		t.Fatalf("p=1 stole %d times", res.Steals)
	}
	if res.Makespan != TotalWork(tp.Plan) {
		t.Fatalf("serial makespan %d != work %d", res.Makespan, TotalWork(tp.Plan))
	}
}

func TestWorkStealingDeterministic(t *testing.T) {
	tp := BuildTiledPlan(MM, 64, 16)
	a := ScheduleWorkStealing(tp, 4, 42)
	b := ScheduleWorkStealing(tp, 4, 42)
	if a.Makespan != b.Makespan || a.Steals != b.Steals {
		t.Fatal("same seed produced different schedules")
	}
	c := ScheduleWorkStealing(tp, 4, 43)
	_ = c // different seed may differ; just ensure it runs
}

func TestWorkStealingRespectsDependencies(t *testing.T) {
	// FW's A-recursion has strict sequencing: verify via per-leaf
	// start times against a reconstructed dependency check — the
	// makespan matching Brent bounds plus full execution implies no
	// dependency violated (violations would deadlock or panic), so
	// here we simply check steals happen at all with p > 1.
	tp := BuildTiledPlan(FW, 128, 16)
	res := ScheduleWorkStealing(tp, 8, 7)
	if res.Steals == 0 {
		t.Fatal("no steals at p=8 — scheduler not distributing work")
	}
	speedup := float64(TotalWork(tp.Plan)) / float64(res.Makespan)
	if speedup < 3 {
		t.Fatalf("work stealing speedup %.2f at p=8 is implausibly low", speedup)
	}
}

// TestWorkStealingLocality: LIFO self-scheduling keeps subtrees local,
// so private-cache misses under work stealing stay within a small
// factor of the sequential misses (Lemma 3.1(a)'s practical content).
// Note Q_p can drop BELOW Q_1: p processors bring p times the
// aggregate cache capacity.
func TestWorkStealingLocality(t *testing.T) {
	tp := BuildTiledPlan(FW, 256, 16)
	const cacheTiles = 32
	q1 := DistributedMisses(tp, 1, cacheTiles)
	distinct := map[int32]bool{}
	for _, ids := range tp.tiles {
		for _, id := range ids {
			distinct[id] = true
		}
	}
	for _, p := range []int{2, 4, 8} {
		qws := DistributedMissesWS(tp, p, cacheTiles, 5)
		if qws < int64(len(distinct)) {
			t.Fatalf("p=%d: WS misses (%d) below cold misses (%d)", p, qws, len(distinct))
		}
		if qws > 4*q1 {
			t.Fatalf("p=%d: WS misses (%d) far above sequential (%d)", p, qws, q1)
		}
	}
}
