package sched

import (
	"fmt"
	"math"
)

// Communication-volume model for the distributed-cache regime of
// tournament-pivoted LU (linalg.FactorCA), after Kwasniewski et al.,
// "On the Parallel I/O Optimality of Linear Algebra Kernels:
// Near-Optimal LU Factorization" (PAPERS.md). The model places the
// matrix block-cyclically on a pr × pc × c processor grid (c is the
// 2.5D replication factor; c = 1 is the plain 2D decomposition) and
// charges each processor, panel by panel, for the words it moves:
//
//   - Tournament: the CALU reduction tree exchanges one b×b candidate
//     block per merge level along the pr panel-column processors.
//   - PanelBcast: the factored panel (L21, m×b) broadcast along each
//     processor row; with replication only every c-th panel is owned
//     by a layer, so the per-processor share is divided by c.
//   - RowSwap: the b pivot rows crossing the row-block boundary,
//     n/pc words per row, shared among the pr row processors.
//   - TrailingU: the U12 (b×q) broadcast down each processor column,
//     divided by c like the panel broadcast.
//   - Reduce: the 2.5D resolution step — layers combine their partial
//     Schur updates for the next panel column before it is factored
//     ((c−1)/c of its words), the price 2.5D pays for dividing the
//     broadcasts.
//
// Summed over the n/b panels the per-processor total is
// Θ(n²/√(cP)) + Θ((c−1)n²/P) + Θ(n·b·log pr): within a small constant
// of the near-optimal bound n³/(P·√M) at M = c·n²/P, decreasing in c
// until the replication (Reduce/RowSwap) terms take over — the
// tradeoff the `pivot` bench experiment tabulates.

// CALUConfig describes one simulated distributed CALU run.
type CALUConfig struct {
	// N is the matrix side and Panel the block-column width b.
	N, Panel int
	// P is the processor count and C the 2.5D replication factor
	// (1, 2, 4, ...); C must divide P.
	P, C int
	// M is the per-processor fast-memory size in words for the lower
	// bound; 0 derives the 2.5D working set c·n²/P (at least 3·b²).
	M int64
}

// Memory returns the per-processor fast-memory size the bound uses:
// the configured M, or the derived 2.5D working set.
func (cfg CALUConfig) Memory() int64 {
	if cfg.M > 0 {
		return cfg.M
	}
	m := int64(cfg.C) * int64(cfg.N) * int64(cfg.N) / int64(maxInt(cfg.P, 1))
	if floor := 3 * int64(cfg.Panel) * int64(cfg.Panel); m < floor {
		m = floor
	}
	return m
}

// grid returns the pr × pc processor grid of one replication layer:
// pr is the largest divisor of P/C not exceeding √(P/C), so the grid
// is as square as the factorization of P/C allows.
func (cfg CALUConfig) grid() (pr, pc int) {
	layer := cfg.P / cfg.C
	pr = 1
	for d := 1; d*d <= layer; d++ {
		if layer%d == 0 {
			pr = d
		}
	}
	return pr, layer / pr
}

// CommVolume is the simulated per-processor word traffic of one CALU
// run, split by phase; see the package comment of this file.
type CommVolume struct {
	Tournament float64
	PanelBcast float64
	RowSwap    float64
	TrailingU  float64
	Reduce     float64
}

// Total returns the per-processor word traffic summed over phases.
func (v CommVolume) Total() float64 {
	return v.Tournament + v.PanelBcast + v.RowSwap + v.TrailingU + v.Reduce
}

// SimulateCALU walks the pivoted block schedule panel by panel and
// returns the per-processor communication volume. It errors when the
// configuration is degenerate (non-positive sizes, C not dividing P).
func SimulateCALU(cfg CALUConfig) (CommVolume, error) {
	if cfg.N <= 0 || cfg.Panel <= 0 || cfg.P <= 0 || cfg.C <= 0 {
		return CommVolume{}, fmt.Errorf("sched: non-positive CALU config %+v", cfg)
	}
	if cfg.P%cfg.C != 0 {
		return CommVolume{}, fmt.Errorf("sched: replication factor %d does not divide p=%d", cfg.C, cfg.P)
	}
	pr, pc := cfg.grid()
	n, b, c := float64(cfg.N), float64(cfg.Panel), float64(cfg.C)
	fpr, fpc := float64(pr), float64(pc)
	depth := math.Ceil(math.Log2(fpr))
	// A broadcast (or swap) moves words only when the grid dimension
	// has remote peers: the average per-processor receive share is
	// (dim-1)/dim of the payload, zero on a dimension of one — with
	// P = C = 1 every phase is local and the volume is 0, matching a
	// shared-memory run.
	rowPeers := (fpc - 1) / fpc
	colPeers := (fpr - 1) / fpr

	var v CommVolume
	for kk := 0; kk < cfg.N; kk += cfg.Panel {
		w := math.Min(b, n-float64(kk))
		m := n - float64(kk) - w // rows below the panel
		q := n - float64(kk) - w // columns right of the panel
		// Reduction tree over the pr panel-column processors: one w×w
		// candidate block received per merge level.
		v.Tournament += depth * w * w
		// Factored panel (L21) broadcast along the processor row;
		// each layer owns every c-th panel.
		v.PanelBcast += (m / fpr) * w / c * rowPeers
		// Pivot rows cross the block-row boundary: w rows of n/pc
		// words, shared among the pr row processors (every layer
		// applies the swaps to its replica).
		v.RowSwap += w * (n / fpc) / fpr * colPeers
		// U12 broadcast down the processor column.
		v.TrailingU += w * (q / fpc) / c * colPeers
		// Layers resolve their partial updates of the next panel
		// column ((c-1)/c of its m×w words) before it factors.
		v.Reduce += (c - 1) / c * (m / fpr) * (w / fpc)
	}
	return v, nil
}

// LUCommLowerBound returns the Kwasniewski et al. per-processor
// communication lower bound for LU, n³/(P·√M) words, against which
// SimulateCALU's totals are compared in the `pivot` experiment.
func LUCommLowerBound(n, p int, m int64) float64 {
	if n <= 0 || p <= 0 || m <= 0 {
		return 0
	}
	fn := float64(n)
	return fn * fn * fn / (float64(p) * math.Sqrt(float64(m)))
}
