package sched

import (
	"container/heap"
	"fmt"
)

// Cache-complexity simulation for parallel I-GEP (§3.1 of the paper):
// replay the leaf schedule through tile-granularity LRU caches, either
// one private cache per processor (distributed, Lemma 3.1) or a single
// cache shared by all processors (Lemma 3.2). A leaf (base-case block)
// touches at most four tiles — X, U, V and W — so tile fetches are the
// block-transfer currency, exactly the granularity at which the
// paper's bounds are stated (a tile is the √M × √M working set).

// TiledPlan couples a plan with its tile geometry and per-leaf tile
// footprints.
type TiledPlan struct {
	Plan Plan
	// R is the tile-grid side (n / grain).
	R int
	// tiles[leafIndex] lists the distinct tile IDs the leaf touches.
	tiles [][]int32
}

// BuildTiledPlan constructs the plan and records each leaf's tile
// footprint, in the same traversal order Flatten assigns leaf nodes.
func BuildTiledPlan(w Workload, n, g int) *TiledPlan {
	if n <= 0 || n&(n-1) != 0 || g <= 0 || g&(g-1) != 0 || g > n {
		panic(fmt.Sprintf("sched: BuildTiledPlan(%d, %d): need powers of two with g <= n", n, g))
	}
	tp := &TiledPlan{R: n / g}
	b := &tileBuilder{tp: tp, w: w, g: g}
	if w == MM {
		tp.Plan = b.mm(0, 0, 0, n)
	} else {
		tp.Plan = b.abcd(0, 0, 0, n)
	}
	return tp
}

type tileBuilder struct {
	tp *TiledPlan
	w  Workload
	g  int
}

func (b *tileBuilder) leaf(xi, xj, k0, s int) Plan {
	work := blockWork(b.w, xi, xj, k0, s)
	if work == 0 {
		return nil
	}
	r := int32(b.tp.R)
	ti, tj, tk := int32(xi/b.g), int32(xj/b.g), int32(k0/b.g)
	ids := make([]int32, 0, 4)
	add := func(a, c int32) {
		id := a*r + c
		for _, have := range ids {
			if have == id {
				return
			}
		}
		ids = append(ids, id)
	}
	add(ti, tj) // X
	add(ti, tk) // U
	add(tk, tj) // V
	add(tk, tk) // W
	b.tp.tiles = append(b.tp.tiles, ids)
	return Leaf{Work: work}
}

func (b *tileBuilder) abcd(xi, xj, k0, s int) Plan {
	if blockWork(b.w, xi, xj, k0, s) == 0 {
		return nil
	}
	if s <= b.g {
		return b.leaf(xi, xj, k0, s)
	}
	h := s / 2
	rec := func(a, c, k int) Plan { return b.abcd(a, c, k, h) }
	iK, jK := xi == k0, xj == k0
	var steps []Plan
	switch {
	case iK && jK:
		steps = []Plan{
			rec(xi, xj, k0),
			Par{rec(xi, xj+h, k0), rec(xi+h, xj, k0)},
			rec(xi+h, xj+h, k0),
			rec(xi+h, xj+h, k0+h),
			Par{rec(xi+h, xj, k0+h), rec(xi, xj+h, k0+h)},
			rec(xi, xj, k0+h),
		}
	case iK:
		steps = []Plan{
			Par{rec(xi, xj, k0), rec(xi, xj+h, k0)},
			Par{rec(xi+h, xj, k0), rec(xi+h, xj+h, k0)},
			Par{rec(xi+h, xj, k0+h), rec(xi+h, xj+h, k0+h)},
			Par{rec(xi, xj, k0+h), rec(xi, xj+h, k0+h)},
		}
	case jK:
		steps = []Plan{
			Par{rec(xi, xj, k0), rec(xi+h, xj, k0)},
			Par{rec(xi, xj+h, k0), rec(xi+h, xj+h, k0)},
			Par{rec(xi, xj+h, k0+h), rec(xi+h, xj+h, k0+h)},
			Par{rec(xi, xj, k0+h), rec(xi+h, xj, k0+h)},
		}
	default:
		steps = []Plan{
			Par{rec(xi, xj, k0), rec(xi, xj+h, k0), rec(xi+h, xj, k0), rec(xi+h, xj+h, k0)},
			Par{rec(xi, xj, k0+h), rec(xi, xj+h, k0+h), rec(xi+h, xj, k0+h), rec(xi+h, xj+h, k0+h)},
		}
	}
	return compactSeq(steps)
}

func (b *tileBuilder) mm(xi, xj, k0, s int) Plan {
	if s <= b.g {
		return b.leaf(xi, xj, k0, s)
	}
	h := s / 2
	rec := func(a, c, k int) Plan { return b.mm(a, c, k, h) }
	return compactSeq([]Plan{
		Par{rec(xi, xj, k0), rec(xi, xj+h, k0), rec(xi+h, xj, k0), rec(xi+h, xj+h, k0)},
		Par{rec(xi, xj, k0+h), rec(xi, xj+h, k0+h), rec(xi+h, xj, k0+h), rec(xi+h, xj+h, k0+h)},
	})
}

// LeafEvent is one executed leaf in schedule order.
type LeafEvent struct {
	Leaf  int   // index into the tiled plan's leaf list
	Proc  int   // executing processor
	Start int64 // start time in work units
}

// ScheduleTrace list-schedules the plan on p processors like Schedule,
// additionally returning the leaf execution log sorted by start time
// (ties by processor). Leaf indices follow the plan's construction
// order, which Flatten preserves for Leaf nodes.
func ScheduleTrace(tp *TiledPlan, p int) (makespan int64, log []LeafEvent) {
	d := Flatten(tp.Plan)
	// Leaf nodes are the nodes with nonzero work; map node -> leaf
	// index in construction order (Flatten emits leaves in plan
	// traversal order, matching tileBuilder's append order).
	leafOf := make(map[int32]int, len(tp.tiles))
	idx := 0
	for node, wrk := range d.work {
		if wrk > 0 {
			leafOf[int32(node)] = idx
			idx++
		}
	}
	if idx != len(tp.tiles) {
		panic(fmt.Sprintf("sched: %d weighted nodes vs %d recorded leaves", idx, len(tp.tiles)))
	}

	n := len(d.work)
	remaining := make([]int32, n)
	copy(remaining, d.preds)
	var ready []int32
	for i := 0; i < n; i++ {
		if remaining[i] == 0 {
			ready = append(ready, int32(i))
		}
	}
	running := &eventHeap{}
	var now int64
	freeProcs := make([]int, p)
	for i := range freeProcs {
		freeProcs[i] = p - 1 - i // stack; pop from the end
	}
	done := 0
	procOf := make(map[int32]int, p)

	complete := func(node int32) {
		done++
		for _, s := range d.succs[node] {
			remaining[s]--
			if remaining[s] == 0 {
				ready = append(ready, s)
			}
		}
	}

	for done < n {
		for len(ready) > 0 && len(freeProcs) > 0 {
			node := ready[len(ready)-1] // LIFO: depth-first, the sequential order
			ready = ready[:len(ready)-1]
			if d.work[node] == 0 {
				complete(node)
				continue
			}
			proc := freeProcs[len(freeProcs)-1]
			freeProcs = freeProcs[:len(freeProcs)-1]
			procOf[node] = proc
			log = append(log, LeafEvent{Leaf: leafOf[node], Proc: proc, Start: now})
			heap.Push(running, event{finish: now + d.work[node], node: node})
		}
		if done >= n {
			break
		}
		if running.Len() == 0 {
			panic("sched: deadlock")
		}
		ev := heap.Pop(running).(event)
		now = ev.finish
		freeProcs = append(freeProcs, procOf[ev.node])
		complete(ev.node)
		for running.Len() > 0 && (*running)[0].finish == now {
			ev = heap.Pop(running).(event)
			freeProcs = append(freeProcs, procOf[ev.node])
			complete(ev.node)
		}
	}
	return now, log
}

// tileLRU is a small LRU set over tile IDs.
type tileLRU struct {
	cap  int
	mru  []int32
	miss int64
}

func (c *tileLRU) access(tile int32) {
	for i, t := range c.mru {
		if t == tile {
			copy(c.mru[1:i+1], c.mru[:i])
			c.mru[0] = tile
			return
		}
	}
	c.miss++
	if len(c.mru) >= c.cap {
		c.mru = c.mru[:c.cap-1]
	}
	c.mru = append([]int32{tile}, c.mru...)
}

// DistributedMisses replays the p-processor schedule with one private
// LRU cache of `tiles` tiles per processor and returns the total tile
// fetches — the Q_p of Lemma 3.1.
func DistributedMisses(tp *TiledPlan, p, tiles int) int64 {
	if tiles < 1 {
		panic("sched: cache must hold at least one tile")
	}
	_, log := ScheduleTrace(tp, p)
	caches := make([]tileLRU, p)
	for i := range caches {
		caches[i].cap = tiles
	}
	for _, ev := range log {
		c := &caches[ev.Proc]
		for _, t := range tp.tiles[ev.Leaf] {
			c.access(t)
		}
	}
	var total int64
	for i := range caches {
		total += caches[i].miss
	}
	return total
}

// SharedMisses replays the p-processor schedule's global leaf order
// through a single LRU cache of `tiles` tiles — the Q_p of Lemma 3.2
// for a shared cache under the greedy (depth-first-flavoured)
// schedule. p = 1 gives Q_1.
func SharedMisses(tp *TiledPlan, p, tiles int) int64 {
	if tiles < 1 {
		panic("sched: cache must hold at least one tile")
	}
	_, log := ScheduleTrace(tp, p)
	c := tileLRU{cap: tiles}
	for _, ev := range log {
		for _, t := range tp.tiles[ev.Leaf] {
			c.access(t)
		}
	}
	return c.miss
}
