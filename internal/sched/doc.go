// Package sched simulates parallel execution of multithreaded I-GEP.
// It builds the exact task DAG induced by the A/B/C/D recursion of
// Figure 6 (sequential steps ordered, `parallel:` groups unordered)
// with base-case blocks as weighted leaves, then list-schedules the
// DAG greedily on p virtual processors.
//
// This is the substitute for the paper's 8-processor pthreads
// experiment (Figure 12) on hardware without 8 cores: the simulated
// makespan T_p reflects the true work/critical-path structure, so the
// paper's qualitative result — matrix multiplication (all-D recursion,
// span O(n)) speeds up better than Floyd-Warshall and Gaussian
// elimination (A recursion, span O(n log² n)) — emerges from the DAG
// itself rather than being asserted. Greedy list scheduling obeys the
// classic bound T_p <= T_1/p + T_inf, matching Theorem 3.1's model.
//
// Key types and entry points:
//
//   - Plan (Leaf / Seq / Par): the task-structure AST of a recursion;
//     BuildPlan constructs it for a Workload at grain g, TotalWork and
//     Span compute T_1 and T_inf, and Schedule list-schedules the
//     flattened DAG.
//   - TiledPlan / BuildTiledPlan / ScheduleTrace /
//     ScheduleWorkStealing: the leaf-footprint refinement behind the
//     Lemma 3.1 cache-miss experiments; DistributedMisses and
//     SharedMisses model the two multicore cache organizations the
//     lemma bounds.
package sched
