package sched

import "fmt"

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Plan is the task-structure AST of a recursion: a Leaf of weighted
// work, a Seq of phases, or a Par of independent branches.
type Plan interface{ isPlan() }

// Leaf is a base-case block costing Work units (one unit = one
// update).
type Leaf struct{ Work int64 }

// Seq runs its children one after another.
type Seq []Plan

// Par runs its children independently.
type Par []Plan

func (Leaf) isPlan() {}
func (Seq) isPlan()  {}
func (Par) isPlan()  {}

// Workload selects the update set whose work profile the plan models.
type Workload int

const (
	// FW is Floyd-Warshall: the full update set over the A recursion.
	FW Workload = iota
	// GE is Gaussian elimination without pivoting: the {k<i, k<j} set
	// over the A recursion (many pruned subproblems).
	GE
	// MM is matrix multiplication: the full set over the all-D
	// disjoint recursion with span O(n).
	MM
)

// String returns the workload's short name as used in figures and
// reports.
func (w Workload) String() string {
	switch w {
	case FW:
		return "FW"
	case GE:
		return "GE"
	case MM:
		return "MM"
	}
	return fmt.Sprintf("Workload(%d)", int(w))
}

// blockWork counts the updates of the workload's Σ_G inside the box
// [xi,xi+s) × [xj,xj+s) × [k0,k0+s).
func blockWork(w Workload, xi, xj, k0, s int) int64 {
	switch w {
	case FW, MM:
		return int64(s) * int64(s) * int64(s)
	case GE:
		var total int64
		for k := k0; k < k0+s; k++ {
			rows := xi + s - maxInt(xi, k+1)
			if rows < 0 {
				rows = 0
			}
			cols := xj + s - maxInt(xj, k+1)
			if cols < 0 {
				cols = 0
			}
			total += int64(rows) * int64(cols)
		}
		return total
	}
	panic("sched: unknown workload")
}

// BuildPlan constructs the recursion plan for an n×n problem with
// base-case (grain) side g. n and g must be powers of two with g <= n.
func BuildPlan(w Workload, n, g int) Plan {
	if n <= 0 || n&(n-1) != 0 || g <= 0 || g&(g-1) != 0 || g > n {
		panic(fmt.Sprintf("sched: BuildPlan(%d, %d): need powers of two with g <= n", n, g))
	}
	if w == MM {
		return mmPlan(0, 0, 0, n, g)
	}
	return abcdPlan(w, 0, 0, 0, n, g)
}

func abcdPlan(w Workload, xi, xj, k0, s, g int) Plan {
	work := blockWork(w, xi, xj, k0, s)
	if work == 0 {
		return nil // pruned (line 1 of Figure 6)
	}
	if s <= g {
		return Leaf{Work: work}
	}
	h := s / 2
	rec := func(a, b, c int) Plan { return abcdPlan(w, a, b, c, h, g) }
	iK, jK := xi == k0, xj == k0
	var steps []Plan
	switch {
	case iK && jK: // A
		steps = []Plan{
			rec(xi, xj, k0),
			Par{rec(xi, xj+h, k0), rec(xi+h, xj, k0)},
			rec(xi+h, xj+h, k0),
			rec(xi+h, xj+h, k0+h),
			Par{rec(xi+h, xj, k0+h), rec(xi, xj+h, k0+h)},
			rec(xi, xj, k0+h),
		}
	case iK: // B
		steps = []Plan{
			Par{rec(xi, xj, k0), rec(xi, xj+h, k0)},
			Par{rec(xi+h, xj, k0), rec(xi+h, xj+h, k0)},
			Par{rec(xi+h, xj, k0+h), rec(xi+h, xj+h, k0+h)},
			Par{rec(xi, xj, k0+h), rec(xi, xj+h, k0+h)},
		}
	case jK: // C
		steps = []Plan{
			Par{rec(xi, xj, k0), rec(xi+h, xj, k0)},
			Par{rec(xi, xj+h, k0), rec(xi+h, xj+h, k0)},
			Par{rec(xi, xj+h, k0+h), rec(xi+h, xj+h, k0+h)},
			Par{rec(xi, xj, k0+h), rec(xi+h, xj, k0+h)},
		}
	default: // D
		steps = []Plan{
			Par{rec(xi, xj, k0), rec(xi, xj+h, k0), rec(xi+h, xj, k0), rec(xi+h, xj+h, k0)},
			Par{rec(xi, xj, k0+h), rec(xi, xj+h, k0+h), rec(xi+h, xj, k0+h), rec(xi+h, xj+h, k0+h)},
		}
	}
	return compactSeq(steps)
}

func mmPlan(xi, xj, k0, s, g int) Plan {
	if s <= g {
		return Leaf{Work: int64(s) * int64(s) * int64(s)}
	}
	h := s / 2
	rec := func(a, b, c int) Plan { return mmPlan(a, b, c, h, g) }
	return compactSeq([]Plan{
		Par{rec(xi, xj, k0), rec(xi, xj+h, k0), rec(xi+h, xj, k0), rec(xi+h, xj+h, k0)},
		Par{rec(xi, xj, k0+h), rec(xi, xj+h, k0+h), rec(xi+h, xj, k0+h), rec(xi+h, xj+h, k0+h)},
	})
}

// compactSeq drops nil (pruned) children and unwraps singleton groups.
func compactSeq(steps []Plan) Plan {
	out := make(Seq, 0, len(steps))
	for _, s := range steps {
		if p := compact(s); p != nil {
			out = append(out, p)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

func compact(p Plan) Plan {
	switch v := p.(type) {
	case nil:
		return nil
	case Par:
		out := make(Par, 0, len(v))
		for _, c := range v {
			if cc := compact(c); cc != nil {
				out = append(out, cc)
			}
		}
		switch len(out) {
		case 0:
			return nil
		case 1:
			return out[0]
		}
		return out
	default:
		return p
	}
}

// TotalWork is T_1: the summed leaf work of the plan.
func TotalWork(p Plan) int64 {
	switch v := p.(type) {
	case nil:
		return 0
	case Leaf:
		return v.Work
	case Seq:
		var t int64
		for _, c := range v {
			t += TotalWork(c)
		}
		return t
	case Par:
		var t int64
		for _, c := range v {
			t += TotalWork(c)
		}
		return t
	}
	panic("sched: unknown plan node")
}

// Span is T_inf: the critical-path work of the plan.
func Span(p Plan) int64 {
	switch v := p.(type) {
	case nil:
		return 0
	case Leaf:
		return v.Work
	case Seq:
		var t int64
		for _, c := range v {
			t += Span(c)
		}
		return t
	case Par:
		var m int64
		for _, c := range v {
			if s := Span(c); s > m {
				m = s
			}
		}
		return m
	}
	panic("sched: unknown plan node")
}
