package sched

import (
	"container/heap"
	"math/rand"
)

// Randomized work stealing — the scheduler model behind Lemma 3.1(a)
// (the Cilk bound of Frigo-Strumpen applied to I-GEP). Each processor
// owns a deque: it pushes newly enabled tasks to the bottom and pops
// its own work LIFO; an idle processor steals FIFO from the top of a
// random victim. LIFO self-execution keeps a subtree on one processor
// (good locality), while steals grab the oldest — largest — pending
// subcomputations.

// StealResult reports one simulated work-stealing run.
type StealResult struct {
	Makespan int64
	Steals   int64
	// Log lists executed leaves in start order, as ScheduleTrace does.
	Log []LeafEvent
}

// ScheduleWorkStealing simulates the DAG of tp on p processors under
// randomized work stealing (deterministic for a fixed seed).
func ScheduleWorkStealing(tp *TiledPlan, p int, seed int64) StealResult {
	d := Flatten(tp.Plan)
	leafOf := make(map[int32]int, len(tp.tiles))
	idx := 0
	for node, wrk := range d.work {
		if wrk > 0 {
			leafOf[int32(node)] = idx
			idx++
		}
	}

	rng := rand.New(rand.NewSource(seed))
	n := len(d.work)
	remaining := make([]int32, n)
	copy(remaining, d.preds)

	deques := make([][]int32, p)
	// Initially ready nodes go to processor 0's deque.
	for i := 0; i < n; i++ {
		if remaining[i] == 0 {
			deques[0] = append(deques[0], int32(i))
		}
	}

	running := &eventHeap{}
	procBusy := make([]bool, p)
	procOf := make(map[int32]int, p)
	var now int64
	var steals int64
	done := 0
	res := StealResult{}

	enable := func(node int32, proc int) {
		deques[proc] = append(deques[proc], node) // push bottom
	}

	complete := func(node int32, proc int) {
		done++
		for _, s := range d.succs[node] {
			remaining[s]--
			if remaining[s] == 0 {
				enable(s, proc)
			}
		}
	}

	// acquire pops work for proc: own deque bottom (LIFO), else steal
	// from the top of a random victim (one sweep over victims in
	// random order).
	acquire := func(proc int) (int32, bool) {
		if q := deques[proc]; len(q) > 0 {
			node := q[len(q)-1]
			deques[proc] = q[:len(q)-1]
			return node, true
		}
		order := rng.Perm(p)
		for _, v := range order {
			if v == proc {
				continue
			}
			if q := deques[v]; len(q) > 0 {
				node := q[0]
				deques[v] = q[1:]
				steals++
				return node, true
			}
		}
		return 0, false
	}

	dispatch := func() {
		for proc := 0; proc < p; proc++ {
			for !procBusy[proc] {
				node, ok := acquire(proc)
				if !ok {
					break
				}
				if d.work[node] == 0 {
					complete(node, proc)
					continue
				}
				procBusy[proc] = true
				procOf[node] = proc
				res.Log = append(res.Log, LeafEvent{Leaf: leafOf[node], Proc: proc, Start: now})
				heap.Push(running, event{finish: now + d.work[node], node: node})
			}
		}
	}

	for done < n {
		dispatch()
		if done >= n {
			break
		}
		if running.Len() == 0 {
			panic("sched: work-stealing deadlock")
		}
		ev := heap.Pop(running).(event)
		now = ev.finish
		proc := procOf[ev.node]
		procBusy[proc] = false
		complete(ev.node, proc)
		for running.Len() > 0 && (*running)[0].finish == now {
			ev = heap.Pop(running).(event)
			proc = procOf[ev.node]
			procBusy[proc] = false
			complete(ev.node, proc)
		}
	}
	res.Makespan = now
	res.Steals = steals
	return res
}

// DistributedMissesWS replays a work-stealing schedule through private
// per-processor tile caches, for comparison with the greedy FIFO
// schedule's DistributedMisses.
func DistributedMissesWS(tp *TiledPlan, p, tiles int, seed int64) int64 {
	if tiles < 1 {
		panic("sched: cache must hold at least one tile")
	}
	res := ScheduleWorkStealing(tp, p, seed)
	caches := make([]tileLRU, p)
	for i := range caches {
		caches[i].cap = tiles
	}
	for _, ev := range res.Log {
		c := &caches[ev.Proc]
		for _, t := range tp.tiles[ev.Leaf] {
			c.access(t)
		}
	}
	var total int64
	for i := range caches {
		total += caches[i].miss
	}
	return total
}
