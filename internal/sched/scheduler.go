package sched

import (
	"container/heap"
	"fmt"
)

// DAG is the flattened dependence graph of a Plan. Nodes are created
// in a topological order; zero-weight join nodes keep the edge count
// linear in the plan size.
type DAG struct {
	work  []int64
	succs [][]int32
	preds []int32 // dependency counts
}

// Nodes returns the node count (including joins).
func (d *DAG) Nodes() int { return len(d.work) }

// Flatten converts a Plan into a DAG.
func Flatten(p Plan) *DAG {
	d := &DAG{}
	entries, exits := d.build(p)
	_ = entries
	_ = exits
	return d
}

func (d *DAG) newNode(work int64) int32 {
	d.work = append(d.work, work)
	d.succs = append(d.succs, nil)
	d.preds = append(d.preds, 0)
	return int32(len(d.work) - 1)
}

func (d *DAG) edge(from, to int32) {
	d.succs[from] = append(d.succs[from], to)
	d.preds[to]++
}

// build returns the entry and exit frontiers of the subplan.
func (d *DAG) build(p Plan) (entries, exits []int32) {
	switch v := p.(type) {
	case nil:
		return nil, nil
	case Leaf:
		n := d.newNode(v.Work)
		return []int32{n}, []int32{n}
	case Seq:
		var firstEntries, prevExits []int32
		for _, c := range v {
			e, x := d.build(c)
			if len(e) == 0 {
				continue
			}
			if firstEntries == nil {
				firstEntries = e
			} else {
				d.connect(prevExits, e)
			}
			prevExits = x
		}
		return firstEntries, prevExits
	case Par:
		var es, xs []int32
		for _, c := range v {
			e, x := d.build(c)
			es = append(es, e...)
			xs = append(xs, x...)
		}
		return es, xs
	}
	panic("sched: unknown plan node")
}

// connect joins two frontiers, inserting a zero-work barrier node when
// a full bipartite connection would be quadratic.
func (d *DAG) connect(from, to []int32) {
	if len(from)*len(to) <= 4 {
		for _, f := range from {
			for _, t := range to {
				d.edge(f, t)
			}
		}
		return
	}
	join := d.newNode(0)
	for _, f := range from {
		d.edge(f, join)
	}
	for _, t := range to {
		d.edge(join, t)
	}
}

// event is a running task completion.
type event struct {
	finish int64
	node   int32
}

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].finish < h[j].finish }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Schedule greedily list-schedules the DAG on p processors and returns
// the makespan T_p in work units. Ready tasks are dispatched LIFO
// (depth-first — at p = 1 this is the sequential execution order); a
// zero-work task completes instantly.
func Schedule(d *DAG, p int) int64 {
	if p < 1 {
		panic(fmt.Sprintf("sched: p = %d", p))
	}
	n := len(d.work)
	remaining := make([]int32, n)
	copy(remaining, d.preds)

	var ready []int32
	for i := 0; i < n; i++ {
		if remaining[i] == 0 {
			ready = append(ready, int32(i))
		}
	}

	running := &eventHeap{}
	var now int64
	idle := p
	done := 0

	complete := func(node int32) {
		done++
		for _, s := range d.succs[node] {
			remaining[s]--
			if remaining[s] == 0 {
				ready = append(ready, s)
			}
		}
	}

	for done < n {
		// Dispatch as many ready tasks as processors allow; zero-work
		// join nodes complete immediately without occupying a slot.
		for len(ready) > 0 && idle > 0 {
			node := ready[len(ready)-1] // LIFO: depth-first, the sequential order
			ready = ready[:len(ready)-1]
			if d.work[node] == 0 {
				complete(node)
				continue
			}
			idle--
			heap.Push(running, event{finish: now + d.work[node], node: node})
		}
		if done >= n {
			break
		}
		if running.Len() == 0 {
			panic("sched: deadlock — cyclic plan?")
		}
		// Advance to the next completion (draining ties).
		ev := heap.Pop(running).(event)
		now = ev.finish
		idle++
		complete(ev.node)
		for running.Len() > 0 && (*running)[0].finish == now {
			ev = heap.Pop(running).(event)
			idle++
			complete(ev.node)
		}
	}
	return now
}

// Speedup is one simulated point of Figure 12.
type Speedup struct {
	P        int
	Makespan int64
	Speedup  float64
}

// SpeedupCurve schedules the plan for each processor count and reports
// T_1/T_p.
func SpeedupCurve(p Plan, procs []int) []Speedup {
	d := Flatten(p)
	t1 := Schedule(d, 1)
	out := make([]Speedup, 0, len(procs))
	for _, q := range procs {
		tp := Schedule(d, q)
		out = append(out, Speedup{P: q, Makespan: tp, Speedup: float64(t1) / float64(tp)})
	}
	return out
}
