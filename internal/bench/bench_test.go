package bench

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"

	"gep/internal/sched"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2", "fig7a", "fig7b", "ooc", "fig8", "fig9",
		"fig10", "fig11", "fig12", "incore", "scaling", "gf2",
		"ablation-base", "ablation-layout", "ablation-prune", "ablation-grain",
		"lemma31", "bounds", "bounds2", "serve", "pivot",
	}
	for _, name := range want {
		if _, ok := Get(name); !ok {
			t.Errorf("experiment %q not registered", name)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
}

func TestTableFormatting(t *testing.T) {
	var tab Table
	tab.Header("a", "bb")
	tab.Row(1, 2.5)
	tab.Row("xyz", time.Millisecond)
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "a") || !strings.Contains(lines[0], "bb") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.Contains(out, "2.5") || !strings.Contains(out, "1ms") {
		t.Fatalf("formatting wrong:\n%s", out)
	}
}

func TestPeakPositive(t *testing.T) {
	if p := PeakGFLOPS(); p <= 0 {
		t.Fatalf("peak = %g", p)
	}
	h := Host()
	if h.CPUs < 1 || h.GoVersion == "" {
		t.Fatalf("bad host info: %+v", h)
	}
}

func TestTimeHelpers(t *testing.T) {
	d := TimeBest(3, func() { time.Sleep(time.Millisecond) })
	if d < time.Millisecond/2 {
		t.Fatalf("TimeBest = %v", d)
	}
	if g := GFLOPS(2e9, time.Second); g != 2 {
		t.Fatalf("GFLOPS = %g", g)
	}
	if g := GFLOPS(1, 0); g != 0 {
		t.Fatalf("GFLOPS at zero duration = %g", g)
	}
}

// TestTheoryExperimentsRun executes the cheap experiments end to end;
// the expensive figures are exercised by the root bench_test.go under
// -bench and smoke-tested here at Small scale where fast enough.
func TestTheoryExperimentsRun(t *testing.T) {
	for _, name := range []string{"table1", "table2"} {
		e, _ := Get(name)
		var buf bytes.Buffer
		if err := e.Run(&buf, Small); err != nil {
			t.Fatalf("%s: %v\n%s", name, err, buf.String())
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", name)
		}
	}
}

func TestFig7SmokeSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range []string{"fig7a", "fig7b"} {
		e, _ := Get(name)
		var buf bytes.Buffer
		if err := e.Run(&buf, Small); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := buf.String()
		if !strings.Contains(out, "GEP") || !strings.Contains(out, "I-GEP") {
			t.Fatalf("%s output missing algorithms:\n%s", name, out)
		}
	}
}

func TestFig12SmokeSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	e, _ := Get("fig12")
	var buf bytes.Buffer
	if err := e.Run(&buf, Small); err != nil {
		t.Fatalf("fig12: %v", err)
	}
	for _, want := range []string{"MM", "FW", "GE", "span"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("fig12 output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Register(Experiment{Name: "table1"})
}

func TestWriteCSVAndSink(t *testing.T) {
	var tab Table
	tab.Header("a", "b")
	tab.Row(1, "x,y") // comma needs quoting
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "a,b\n1,\"x,y\"\n" {
		t.Fatalf("csv = %q", got)
	}

	dir := t.TempDir()
	SetCSVDir(dir, "exp")
	defer SetCSVDir("", "")
	var out bytes.Buffer
	if _, err := tab.WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/exp-1.csv")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a,b\n1,\"x,y\"\n" {
		t.Fatalf("mirrored csv = %q", data)
	}
}

// TestScalingOrdering checks the Figure-12 claim behind exp_scaling's
// extra["speedup"] without timing anything: at the experiment's
// (n, grain) the simulated p=8 speedup must order MM strictly above
// both GE and FW (the all-D recursion's O(n) span vs O(n log^2 n)).
func TestScalingOrdering(t *testing.T) {
	const n, grain, p = 1024, 64, 8
	speedup := func(w sched.Workload) float64 {
		plan := sched.BuildPlan(w, n, grain)
		return float64(sched.TotalWork(plan)) / float64(sched.Schedule(sched.Flatten(plan), p))
	}
	mm, ge, fw := speedup(sched.MM), speedup(sched.GE), speedup(sched.FW)
	if mm <= ge || mm <= fw {
		t.Fatalf("p=8 sim speedups: MM=%.3f GE=%.3f FW=%.3f; want MM strictly greatest", mm, ge, fw)
	}
}
