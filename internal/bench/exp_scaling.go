package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"gep/internal/apsp"
	"gep/internal/linalg"
	"gep/internal/matrix"
	"gep/internal/par"
	"gep/internal/sched"
)

func init() {
	Register(Experiment{
		Name:  "scaling",
		Title: "Work-stealing runtime scalability: fused MM / GE / FW, p = 1,2,4,8",
		Run:   runScaling,
	})
}

// runScaling sweeps the work-stealing runtime's worker count over the
// fused engine-backed kernels and emits one row per (workload, p).
// Each row carries two speedup figures:
//
//   - extra["speedup"]: T_1 / T_p from internal/sched's greedy
//     schedule of the true Figure-6 task DAG at the same (n, grain) —
//     deterministic and machine-independent, the same substitution for
//     the paper's 8-way Opteron that fig12 Part 1 makes (DESIGN.md §4).
//     This is the figure the Figure-12 ordering claim (MM > FW ≈ GE)
//     is checked against.
//   - extra["speedup_wall"]: measured wall-clock T_1 / T_p on this
//     host. Physical speedup needs physical cores; on few-core CI
//     machines this mostly measures runtime overhead, which is exactly
//     what makes it a useful cross-check — a broken scheduler shows up
//     as speedup_wall collapsing at p=1 even when the model says 1.0.
//
// The cross-check column reports T_p^wall / T_p^sim normalized so the
// p=1 entry is 1.0: drift across p means the runtime diverges from the
// greedy schedule the model assumes (e.g. steals failing to move the
// big subtrees).
func runScaling(w io.Writer, scale Scale) error {
	n, grain := 1024, 64
	reps := 1
	if scale == Full {
		n, grain, reps = 2048, 64, 2
	}
	base := 64
	procs := []int{1, 2, 4, 8}

	prevProcs := runtime.GOMAXPROCS(0)
	defer func() {
		runtime.GOMAXPROCS(prevProcs)
		par.ResetWorkers()
	}()

	fmt.Fprintf(w, "Fused kernels on the work-stealing runtime (n=%d, base=%d, grain=%d):\n", n, base, grain)
	fmt.Fprintf(w, "sim speedup = T1/Tp of the greedy DAG schedule (internal/sched);\n")
	fmt.Fprintf(w, "wall speedup = measured on this host (GOMAXPROCS was %d).\n\n", prevProcs)

	type workload struct {
		name string
		wl   sched.Workload
		run  func()
	}
	a, b := randDense(n, 11), randDense(n, 12)
	mmOut := matrix.NewSquare[float64](n)
	luIn := diagDom(n, 13)
	g := apsp.Random(n, 0.25, 100, 14)
	fwIn := g.DistanceMatrix()
	workloads := []workload{
		{"MM", sched.MM, func() {
			mmOut.Fill(0)
			linalg.MulFusedParallel(mmOut, a, b, base, grain)
		}},
		{"GE", sched.GE, func() {
			m := luIn.Clone()
			linalg.GaussFusedParallel(m, base, grain)
		}},
		{"FW", sched.FW, func() {
			d := fwIn.Clone()
			apsp.FWFusedParallel(d, base, grain)
		}},
	}

	var t Table
	t.Header("workload", "p", "wall", "wall speedup", "sim speedup", "wall/sim (norm)")
	for _, wl := range workloads {
		plan := sched.BuildPlan(wl.wl, n, grain)
		dag := sched.Flatten(plan)
		t1 := sched.TotalWork(plan)
		tinf := sched.Span(plan)

		var wall1 time.Duration
		var norm1 float64
		for _, p := range procs {
			runtime.GOMAXPROCS(p)
			par.SetWorkers(p)
			wall, met := TimeBestMetered(reps, wl.run)
			simTp := sched.Schedule(dag, p)
			simSpeedup := float64(t1) / float64(simTp)
			if p == 1 {
				wall1 = wall
				norm1 = float64(wall) / float64(simTp)
			}
			wallSpeedup := float64(wall1) / float64(wall)
			crossCheck := float64(wall) / float64(simTp) / norm1
			Record(Row{
				Engine:  wl.name,
				N:       n,
				Param:   fmt.Sprintf("p=%d", p),
				Workers: p,
				Wall:    wall,
				Metrics: met,
				Extra: map[string]float64{
					"speedup":      simSpeedup,
					"speedup_wall": wallSpeedup,
					"sim_makespan": float64(simTp),
					"sim_t1":       float64(t1),
					"sim_tinf":     float64(tinf),
					"wall_vs_sim":  crossCheck,
				},
			})
			t.Row(wl.name, p, wall, wallSpeedup, simSpeedup, crossCheck)
		}
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nExpected (paper, Fig 12): MM scales best — its all-D recursion has")
	fmt.Fprintln(w, "span O(n) vs O(n log^2 n) for the A recursion of GE/FW — so the sim")
	fmt.Fprintln(w, "speedup at p=8 must order MM > FW ≈ GE. Wall speedup tracks it only")
	fmt.Fprintln(w, "with physical cores; the normalized wall/sim column should stay flat.")
	return nil
}
