package bench

import (
	"fmt"
	"io"

	"gep/internal/sched"
)

func init() {
	Register(Experiment{
		Name:  "lemma31",
		Title: "Lemmas 3.1/3.2: parallel cache complexity under distributed and shared caches",
		Run:   runLemma31,
	})
}

// runLemma31 replays the greedy parallel schedule of multithreaded
// I-GEP through tile-granularity caches: one private cache per
// processor (Lemma 3.1's distributed setting) and one cache shared by
// all processors (Lemma 3.2). The paper's claims, in simulation form:
// distributed Q_p exceeds Q_1 by a bounded overhead term, and a shared
// cache of unchanged size keeps Q_p = O(Q_1).
func runLemma31(w io.Writer, scale Scale) error {
	n, grain := 256, 16
	if scale == Full {
		n, grain = 1024, 32
	}
	const cacheTiles = 32
	fmt.Fprintf(w, "Tile-level cache replay of the parallel schedule (n=%d, grain=%d,\n", n, grain)
	fmt.Fprintf(w, "cache = %d tiles; one tile = one base-case block = the √M working set):\n\n", cacheTiles)

	var t Table
	t.Header("workload", "p", "Q_p greedy", "Q_p worksteal", "steals", "Q_p shared", "shared/Q_1")
	for _, wl := range []sched.Workload{sched.FW, sched.GE, sched.MM} {
		tp := sched.BuildTiledPlan(wl, n, grain)
		q1s := sched.SharedMisses(tp, 1, cacheTiles)
		for _, p := range []int{1, 2, 4, 8} {
			qd := sched.DistributedMisses(tp, p, cacheTiles)
			ws := sched.ScheduleWorkStealing(tp, p, 1)
			qws := sched.DistributedMissesWS(tp, p, cacheTiles, 1)
			qs := sched.SharedMisses(tp, p, cacheTiles)
			Record(Row{Engine: wl.String(), N: n, Param: fmt.Sprintf("p=%d", p),
				Extra: map[string]float64{
					"q_greedy":    float64(qd),
					"q_worksteal": float64(qws),
					"steals":      float64(ws.Steals),
					"q_shared":    float64(qs),
				}})
			t.Row(wl.String(), p, qd, qws, ws.Steals, qs, float64(qs)/float64(q1s))
		}
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nExpected shape (paper §3.1): distributed Q_p stays within a modest")
	fmt.Fprintln(w, "factor of Q_1 under both the greedy schedule (Lemma 3.1(b)'s")
	fmt.Fprintln(w, "deterministic schedule) and randomized work stealing (Lemma 3.1(a)'s")
	fmt.Fprintln(w, "Cilk model); with a shared cache of unchanged size Q_p stays within a")
	fmt.Fprintln(w, "constant factor of Q_1 (Lemma 3.2).")
	return nil
}
