package bench

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"gep/internal/cachesim"
	"gep/internal/linalg"
	"gep/internal/matrix"
	"gep/internal/ooc"
	"gep/internal/par"
)

func init() {
	Register(Experiment{
		Name:  "bounds2",
		Title: "Sub-cubic check: classical vs Strassen misses against their respective I/O lower bounds, in-core and out-of-core",
		Run:   runBounds2,
	})
}

// runBounds2 is the I/O-optimality story for the Strassen-GEP hybrid:
// for each engine (classical fused recursion vs Strassen-Winograd) and
// each regime (in-core simulated cache, out-of-core tile store), report
// measured misses/transfers next to the engine's own lower bound as a
// ratio — each engine against the bound for ITS computation:
//
//   - classical: the tight classical MM bound of Smith et al. ("A Tight
//     I/O Lower Bound for Matrix Multiplication"), leading term
//     2n³/(B√M), with the 3n²/B compulsory floor;
//   - Strassen: the recomputation-robust bound of Bilardi & De Stefani
//     ("The I/O complexity of Strassen's matrix multiplication with
//     recomputation"), Ω((n/√M)^lg7 · M/B), constant taken as 1, same
//     floor.
//
// A ratio near 1 means the recursion is near its bound; the point of
// the experiment is that BOTH engines sit at small constant ratios in
// both regimes while Strassen's absolute numbers undercut the
// classical ones once n/√M is large — the sub-cubic flop count comes
// with sub-classical I/O, not at its expense. The rows carry
// "model=classical|strassen" in their identity so the two bound models
// can never be cross-compared by the regression gate.
//
// The experiment also records the wall-clock acceptance rows for the
// hybrid (classical fused vs Strassen at p=1 and p=8), which the
// compare gate tracks across PRs.
func runBounds2(w io.Writer, scale Scale) error {
	if err := bounds2InCore(w, scale); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := bounds2OOC(w, scale); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return bounds2Wall(w, scale)
}

// mulInput builds a uniform [-1, 1) matrix for the multiply benchmarks.
func mulInput(n int, seed int64) *matrix.Dense[float64] {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.NewSquare[float64](n)
	m.Apply(func(i, j int, _ float64) float64 { return rng.Float64()*2 - 1 })
	return m
}

// classicalMMLowerBound is the Smith et al. tight classical bound in
// misses: 2n³/(B√M) with a 3n²/B compulsory floor (M, B in elements).
func classicalMMLowerBound(n int, mElems, bElems float64) float64 {
	nf := float64(n)
	lb := 2 * nf * nf * nf / (bElems * math.Sqrt(mElems))
	if comp := 3 * nf * nf / bElems; comp > lb {
		lb = comp
	}
	return lb
}

// strassenMMLowerBound is the Bilardi & De Stefani recomputation bound
// in misses: (n/√M)^lg7 · M/B with the Ω-constant folded to 1, same
// compulsory floor (M, B in elements).
func strassenMMLowerBound(n int, mElems, bElems float64) float64 {
	nf := float64(n)
	lb := math.Pow(nf/math.Sqrt(mElems), math.Log2(7)) * mElems / bElems
	if comp := 3 * nf * nf / bElems; comp > lb {
		lb = comp
	}
	return lb
}

// bounds2InCore traces both engines once via the generic mirror
// (bit-identical to the flat engines) over Morton-tiled addressing —
// the same best-layout assumption exp_bounds makes — then replays each
// trace against a sweep of LRU cache sizes.
func bounds2InCore(w io.Writer, scale Scale) error {
	n, co := 64, 16
	ms := []int64{2 << 10, 8 << 10}
	if scale == Full {
		n = 128
		ms = []int64{4 << 10, 16 << 10, 64 << 10}
	}
	const lineB = 64
	a, b := mulInput(n, 21), mulInput(n, 22)

	// One trace per engine: c, a, b and every arena temporary get
	// distinct base addresses; recycled temporaries reappear at their
	// old addresses, exactly as the real arena reuses buffers.
	trace := func(crossover int) []int64 {
		rec := &cachesim.TraceRecorder{}
		layout := cachesim.MortonTiled(8)
		base := int64(0)
		place := func(m matrix.Grid[float64]) matrix.Grid[float64] {
			g := cachesim.NewRecording[float64](m, rec, layout, base)
			base = cachesim.NextBase(base, m.N())
			return g
		}
		cg := place(matrix.NewSquare[float64](n))
		ag, bg := place(a), place(b)
		free := map[int][]matrix.Grid[float64]{}
		get := func(h int) matrix.Grid[float64] {
			if l := free[h]; len(l) > 0 {
				g := l[len(l)-1]
				free[h] = l[:len(l)-1]
				return g
			}
			return place(matrix.NewSquare[float64](h))
		}
		put := func(h int, g matrix.Grid[float64]) { free[h] = append(free[h], g) }
		// Base 8 for tracing (same as exp_bounds's I-GEP trace): the
		// result is bitwise base-independent, but a 64-side leaf's
		// working set would drown the recursion at the small simulated
		// M values swept here.
		linalg.MulStrassenGeneric(cg, ag, bg, crossover, get, put, 8)
		return rec.Addrs()
	}
	classicTrace := trace(n) // crossover ≥ n: the purely classical recursion
	strassenTrace := trace(co)

	fmt.Fprintf(w, "In-core: n=%d, B=%d B, LRU replay; Strassen crossover %d:\n\n", n, lineB, co)
	var t Table
	t.Header("M", "engine", "sim misses", "lower bound", "miss/bound")
	const bElems = float64(lineB) / 8
	for _, m := range ms {
		mElems := float64(m) / 8
		for _, e := range []struct {
			name  string
			trace []int64
			bound float64
			model string
		}{
			{"MulFused", classicTrace, classicalMMLowerBound(n, mElems, bElems), "classical"},
			{"MulStrassen", strassenTrace, strassenMMLowerBound(n, mElems, bElems), "strassen"},
		} {
			miss := cachesim.SimulateLRU(e.trace, m, lineB)
			ratio := float64(miss) / e.bound
			Record(Row{Engine: e.name, N: n,
				Param: fmt.Sprintf("incore M=%d model=%s", m, e.model),
				Extra: map[string]float64{
					"misses":      float64(miss),
					"lower_bound": e.bound,
					"ratio":       ratio,
				}})
			t.Row(m, e.name, miss, fmt.Sprintf("%.0f", e.bound), fmt.Sprintf("%.2f", ratio))
		}
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nExpected shape: the classical ratio is a small, M-stable constant (the")
	fmt.Fprintln(w, "Smith et al. bound is tight, constant included). The Strassen column")
	fmt.Fprintln(w, "sits higher and may drift: its bound's omega-constant is folded to 1")
	fmt.Fprintln(w, "and the O(n^2/B) quadrant-addition traffic is not in the leading term.")
	fmt.Fprintln(w, "What must hold is that neither ratio ever dips below 1, and Strassen's")
	fmt.Fprintln(w, "absolute misses undercut the classical engine's as n/sqrt(M) grows.")
	return nil
}

// bounds2OOC runs both engines on the tile store and reports measured
// tile transfers (reads + writes) against the same two bounds with
// M = the cache budget and B = one tile.
func bounds2OOC(w io.Writer, scale Scale) error {
	n, ts := 128, 16
	if scale == Full {
		n, ts = 1024, 64
	}
	tileBytes := int64(ts) * int64(ts) * 8
	cache := 12 * tileBytes // a few tiles: forces eviction at every level
	a, b := mulInput(n, 23), mulInput(n, 24)
	mElems := float64(cache) / 8
	bElems := float64(ts) * float64(ts)

	fmt.Fprintf(w, "Out-of-core: n=%d, tile=%d (B=%d KB), M=%d KB; transfers = tile reads+writes:\n\n",
		n, ts, tileBytes>>10, cache>>10)
	var t Table
	t.Header("engine", "tile reads", "tile writes", "transfers", "lower bound", "transfer/bound")
	for _, e := range []struct {
		name      string
		crossover int
		bound     float64
		model     string
	}{
		{"MulFused", n, classicalMMLowerBound(n, mElems, bElems), "classical"},
		{"MulStrassen", ts, strassenMMLowerBound(n, mElems, bElems), "strassen"},
	} {
		s, err := ooc.Create("", ooc.Config{PageSize: 4096, CacheSize: cache, WriteBehind: 2})
		if err != nil {
			return err
		}
		bytes := int64(n) * int64(n) * 8
		layout := ooc.MortonTiledLayout(ts)
		ma := ooc.NewMatrix(s, n, 0, layout)
		mb := ooc.NewMatrix(s, n, bytes, layout)
		mc := ooc.NewMatrix(s, n, 2*bytes, layout)
		if err := ma.Load(a); err == nil {
			err = mb.Load(b)
		}
		if err != nil {
			s.Close()
			return err
		}
		s.ResetStats()
		var runErr error
		wall, mets := TimeBestMetered(1, func() {
			runErr = ooc.RunStrassen(mc, ma, mb, e.crossover, ooc.RunOptions{Prefetch: true})
		})
		st := s.Stats()
		if cerr := s.Close(); runErr == nil {
			runErr = cerr
		}
		if runErr != nil {
			return runErr
		}
		transfers := st.TileReads + st.TileWrites
		ratio := float64(transfers) / e.bound
		Record(Row{Engine: e.name, N: n,
			Param: fmt.Sprintf("ooc M=%d B=%d model=%s", cache, ts, e.model),
			Wall:  wall, Metrics: mets,
			Extra: map[string]float64{
				"tile_reads":  float64(st.TileReads),
				"tile_writes": float64(st.TileWrites),
				"transfers":   float64(transfers),
				"lower_bound": e.bound,
				"ratio":       ratio,
			}})
		t.Row(e.name, st.TileReads, st.TileWrites, transfers,
			fmt.Sprintf("%.0f", e.bound), fmt.Sprintf("%.2f", ratio))
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nExpected shape: the classical tile loop sits a small constant above its")
	fmt.Fprintln(w, "tight bound. Strassen's column is higher at these scales: its quadrant")
	fmt.Fprintln(w, "additions stream whole matrices at tile granularity (visible as write")
	fmt.Fprintln(w, "traffic), a cost the leading (n/sqrt(M))^lg7 term does not model, and its")
	fmt.Fprintln(w, "transfer advantage needs n/sqrt(M) far larger than a CI-sized store.")
	fmt.Fprintln(w, "Scratch tiles are materialized read-free (ooc.tile.fresh), so temporaries")
	fmt.Fprintln(w, "cost transfers only when they actually spill.")
	return nil
}

// bounds2Wall records the hybrid's wall-clock acceptance rows:
// classical fused vs Strassen at p=1 and p=8. Full scale runs the
// acceptance size n=2048; small scale keeps cheap CI rows of the same
// shape for the regression gate.
func bounds2Wall(w io.Writer, scale Scale) error {
	n := 256
	if scale == Full {
		n = 2048
	}
	a, b := mulInput(n, 25), mulInput(n, 26)
	c := matrix.NewSquare[float64](n)

	fmt.Fprintf(w, "Wall-clock: n=%d, Strassen crossover %d (auto):\n\n", n, linalg.DefaultCrossover)
	var t Table
	t.Header("engine", "p", "wall time", "speedup vs classical")
	var classical time.Duration
	for _, p := range []int{1, 8} {
		rt := par.NewRuntime(p)
		for _, e := range []struct {
			name string
			run  func()
		}{
			{"MulFused", func() {
				c.Apply(func(int, int, float64) float64 { return 0 })
				linalg.MulFusedParallelOn(rt, c, a, b, 64, 128)
			}},
			{"MulStrassen", func() { linalg.MulStrassenParallelOn(rt, c, a, b) }},
		} {
			wall, mets := TimeBestMetered(1, e.run)
			extra := map[string]float64{}
			if e.name == "MulFused" {
				classical = wall
			} else {
				extra["speedup_vs_classical"] = float64(classical) / float64(wall)
			}
			extra["gflops_effective"] = linalg.MulFlops(n) / wall.Seconds() / 1e9
			Record(Row{Engine: e.name, N: n, Param: fmt.Sprintf("incore p=%d", p),
				Workers: p, Wall: wall, Metrics: mets, Extra: extra})
			speed := ""
			if e.name == "MulStrassen" {
				speed = fmt.Sprintf("%.2fx", float64(classical)/float64(wall))
			}
			t.Row(e.name, p, wall, speed)
		}
		rt.Close()
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nAcceptance: MulStrassen < MulFused at both worker counts (the speedup")
	fmt.Fprintln(w, "column stays above 1.0); the flop advantage is (n/crossover)^(3-lg7).")
	return nil
}
