package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"time"

	"gep/internal/serve"
)

func init() {
	Register(Experiment{
		Name:  "serve",
		Title: "Job-service throughput and latency: concurrent LU jobs over HTTP, isolated runtimes",
		Run:   runServe,
	})
}

// runServe measures the gep-server job service end to end: a fixed
// set of closed-loop clients submit LU jobs over HTTP (each waits for
// its job to finish before submitting the next) against servers with
// different executor/worker shapes. One row per shape:
//
//   - Wall is the sustained run's total duration (the compare gate's
//     regression signal).
//   - extra["throughput_jps"] is completed jobs per second.
//   - extra["p50_ms"] / extra["p99_ms"] are end-to-end job latency
//     percentiles, submit to terminal status, including queueing.
//
// Isolation is part of what's measured: each job runs on its own
// par.Runtime, so c concurrent jobs with w workers each occupy c×w
// workers total (the Workers column) without sharing queues.
func runServe(w io.Writer, scale Scale) error {
	n, jobs := 128, 24
	if scale == Full {
		n, jobs = 256, 96
	}
	shapes := []struct{ concurrent, workers int }{
		{1, 1},
		{1, 2},
		{2, 2},
		{4, 2},
	}

	fmt.Fprintf(w, "Closed-loop clients submitting lu jobs (n=%d, %d jobs per shape)\n", n, jobs)
	fmt.Fprintf(w, "against gep-server shapes c executors x w workers per job:\n\n")

	var t Table
	t.Header("shape", "total wall", "throughput (jobs/s)", "p50", "p99")
	for _, sh := range shapes {
		wall, lats, err := serveRun(n, jobs, sh.concurrent, sh.workers)
		if err != nil {
			return err
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		p50 := lats[len(lats)/2]
		p99 := lats[(len(lats)*99)/100]
		tput := float64(jobs) / wall.Seconds()
		Record(Row{
			Engine:  "serve-lu",
			N:       n,
			Param:   fmt.Sprintf("c=%d w=%d", sh.concurrent, sh.workers),
			Workers: sh.concurrent * sh.workers,
			Wall:    wall,
			Extra: map[string]float64{
				"throughput_jps": tput,
				"p50_ms":         float64(p50) / float64(time.Millisecond),
				"p99_ms":         float64(p99) / float64(time.Millisecond),
				"jobs":           float64(jobs),
			},
		})
		t.Row(fmt.Sprintf("c=%d w=%d", sh.concurrent, sh.workers), wall, tput, p50, p99)
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nExpected: throughput grows with executors until c x w exhausts the")
	fmt.Fprintln(w, "host's cores; p99 tracks queueing (clients = 2c keep one job queued")
	fmt.Fprintln(w, "per executor), so it stays near 2x the isolated job latency.")
	return nil
}

// serveRun drives one server shape with 2×concurrent closed-loop
// clients and returns the total wall plus every job's end-to-end
// latency.
func serveRun(n, jobs, concurrent, workers int) (time.Duration, []time.Duration, error) {
	srv := serve.New(serve.Config{
		QueueDepth:     jobs,
		MaxConcurrent:  concurrent,
		DefaultWorkers: workers,
		RetainJobs:     jobs + 1,
	})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Shutdown(context.Background())
	}()

	clients := 2 * concurrent
	lats := make([]time.Duration, jobs)
	errs := make(chan error, clients)
	next := make(chan int, jobs)
	for i := 0; i < jobs; i++ {
		next <- i
	}
	close(next)

	start := time.Now()
	for c := 0; c < clients; c++ {
		go func() {
			for i := range next {
				lat, err := serveOneJob(ts.URL, n, int64(i))
				if err != nil {
					errs <- err
					return
				}
				lats[i] = lat
			}
			errs <- nil
		}()
	}
	for c := 0; c < clients; c++ {
		if err := <-errs; err != nil {
			return 0, nil, err
		}
	}
	return time.Since(start), lats, nil
}

// serveOneJob submits one lu job and polls until it finishes,
// returning the submit-to-terminal latency.
func serveOneJob(base string, n int, seed int64) (time.Duration, error) {
	body, _ := json.Marshal(serve.Spec{Op: "lu", N: n, Seed: seed})
	start := time.Now()
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	var v serve.JobView
	err = json.NewDecoder(resp.Body).Decode(&v)
	resp.Body.Close()
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return 0, fmt.Errorf("serve bench: submit returned %d", resp.StatusCode)
	}
	for {
		resp, err := http.Get(base + "/v1/jobs/" + v.ID)
		if err != nil {
			return 0, err
		}
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			return 0, err
		}
		if v.Status.Terminal() {
			if v.Status != serve.StatusDone {
				return 0, fmt.Errorf("serve bench: job %s finished %s (%s)", v.ID, v.Status, v.Error)
			}
			return time.Since(start), nil
		}
		time.Sleep(2 * time.Millisecond)
	}
}
