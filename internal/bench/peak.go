package bench

import (
	"runtime"
	"sync"
	"time"
)

// Peak-FLOPS calibration. The paper reports kernel performance as "%
// of peak", with peak = 2 × clock (two double-precision flops per
// cycle on its machines). Go code on an unknown container has no
// published peak, so we measure one: the throughput of a maximally
// unrolled multiply-add loop over register-resident accumulators. That
// is the same figure of merit — the fastest FP rate plain code reaches
// on this machine — and every kernel is scored against it.

var (
	peakOnce sync.Once
	peakVal  float64
)

// PeakGFLOPS returns the calibrated peak, measuring it on first use.
func PeakGFLOPS() float64 {
	peakOnce.Do(func() { peakVal = measurePeak(200 * time.Millisecond) })
	return peakVal
}

// measurePeak runs the calibration kernel for roughly the given
// duration and returns the best observed GFLOPS.
func measurePeak(budget time.Duration) float64 {
	const flopsPerIter = 16 // 8 accumulators × (1 mul + 1 add)
	iters := 1 << 20
	best := 0.0
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		start := time.Now()
		sink = fmaKernel(iters)
		d := time.Since(start)
		if g := GFLOPS(float64(iters)*flopsPerIter, d); g > best {
			best = g
		}
	}
	return best
}

// sink defeats dead-code elimination.
var sink float64

// fmaKernel keeps eight independent multiply-add chains in flight so
// the FP units, not the dependency chain, bound throughput.
func fmaKernel(iters int) float64 {
	a0, a1, a2, a3 := 1.0, 1.1, 1.2, 1.3
	a4, a5, a6, a7 := 1.4, 1.5, 1.6, 1.7
	m, c := 0.999999, 1e-9
	for i := 0; i < iters; i++ {
		a0 = a0*m + c
		a1 = a1*m + c
		a2 = a2*m + c
		a3 = a3*m + c
		a4 = a4*m + c
		a5 = a5*m + c
		a6 = a6*m + c
		a7 = a7*m + c
	}
	return a0 + a1 + a2 + a3 + a4 + a5 + a6 + a7
}

// HostInfo describes the machine for the Table 2 reproduction; it is
// also the host header of every BENCH_*.json report, so compare can
// warn when two runs came from different machines.
type HostInfo struct {
	GoVersion  string  `json:"go_version"`
	OS         string  `json:"os"`
	Arch       string  `json:"arch"`
	CPUs       int     `json:"cpus"`
	PeakGFLOPS float64 `json:"peak_gflops"`
}

// Host gathers the host description.
func Host() HostInfo {
	return HostInfo{
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		PeakGFLOPS: PeakGFLOPS(),
	}
}
