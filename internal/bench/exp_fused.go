package bench

import (
	"fmt"
	"io"

	"gep/internal/apsp"
	"gep/internal/core"
	"gep/internal/linalg"
	"gep/internal/matrix"
)

func init() {
	Register(Experiment{
		Name:  "incore",
		Title: "In-core generic-engine kernels: Floyd-Warshall and matrix multiply vs hand-specialized code",
		Run:   runIncore,
	})
}

// mulUpdate is the fused multiply-accumulate op; RunDisjoint takes its
// 4×4 register-tiled micro-kernel on fully covered blocks.
var mulUpdate = core.MulAdd[float64]{}

// runIncore measures the generic engines on the paper's two headline
// in-core instances — Floyd-Warshall through RunIGEP and matrix
// multiplication through RunDisjoint — against the hand-specialized
// kernels in internal/apsp and internal/linalg. The engine rows are the
// regression-gated ones: their identity (engine, n) is stable across
// PRs, so `gep-bench compare` on two BENCH_incore.json files shows
// exactly how much an engine change moved the hot path.
func runIncore(w io.Writer, scale Scale) error {
	sizes := []int{256, 512}
	if scale == Full {
		sizes = []int{512, 1024}
	}
	base := 64

	fmt.Fprintf(w, "In-core engine kernels (base=%d):\n", base)
	var t Table
	t.Header("n", "igep-fw", "hand-fw", "igep-mm", "hand-mm", "fw engine/hand", "mm engine/hand")
	for _, n := range sizes {
		reps := 3
		if n >= 1024 {
			reps = 2
		}
		din := fwInput(n, int64(n))
		a, b := randDense(n, int64(n)+1), randDense(n, int64(n)+2)
		flops := 2 * float64(n) * float64(n) * float64(n)

		dFW, metFW := TimeBestMetered(reps, func() {
			m := din.Clone()
			core.RunIGEP[float64](m, fwUpdate, core.Full{}, core.WithBaseSize[float64](base))
		})
		Record(Row{Engine: "igep-fw", N: n, Wall: dFW, Metrics: metFW})

		dFWh, metFWh := TimeBestMetered(reps, func() {
			m := din.Clone()
			apsp.FWIGEP(m, base)
		})
		Record(Row{Engine: "hand-fw", N: n, Wall: dFWh, Metrics: metFWh})

		dMM, metMM := TimeBestMetered(reps, func() {
			c := matrix.NewSquare[float64](n)
			core.RunDisjoint[float64](c, a, b, b, mulUpdate, core.Full{}, core.WithBaseSize[float64](base))
		})
		g := GFLOPS(flops, dMM)
		Record(Row{Engine: "igep-mm", N: n, Wall: dMM, GFLOPS: g, Metrics: metMM})

		dMMh, metMMh := TimeBestMetered(reps, func() {
			c := matrix.NewSquare[float64](n)
			linalg.MulIGEP(c, a, b, base)
		})
		gh := GFLOPS(flops, dMMh)
		Record(Row{Engine: "hand-mm", N: n, Wall: dMMh, GFLOPS: gh, Metrics: metMMh})

		t.Row(n, dFW, dFWh, dMM, dMMh,
			float64(dFW)/float64(dFWh), float64(dMM)/float64(dMMh))
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nThe engine rows (igep-*) are the regression-gated hot paths; the")
	fmt.Fprintln(w, "hand-* rows are the specialized comparators the fused kernels chase.")
	return nil
}
