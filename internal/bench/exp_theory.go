package bench

import (
	"fmt"
	"io"
	"math/rand"

	"gep/internal/core"
	"gep/internal/matrix"
	"gep/internal/trace"
)

func init() {
	Register(Experiment{
		Name:  "table1",
		Title: "Table 1: states read by G and F before each update (theorem check)",
		Run:   runTable1,
	})
	Register(Experiment{
		Name:  "table2",
		Title: "Table 2: experimental machine (host introspection + calibrated peak)",
		Run:   runTable2,
	})
}

// runTable1 validates Table 1 on live executions: the F column via
// Theorem 2.2 (π/δ states) on instrumented I-GEP runs, and the G
// column on instrumented iterative runs, over random and standard
// update sets.
func runTable1(w io.Writer, scale Scale) error {
	fmt.Fprintln(w, "Table 1 — operand states before update <i,j,k> (0-based states, -1 = initial):")
	fmt.Fprintln(w, "  cell     G reads                      F (I-GEP) reads")
	fmt.Fprintln(w, "  c[i,j]   state k-1                    state k-1")
	fmt.Fprintln(w, "  c[i,k]   state k-1 if j<=k else k     state pi(j,k)")
	fmt.Fprintln(w, "  c[k,j]   state k-1 if i<=k else k     state pi(i,k)")
	fmt.Fprintln(w, "  c[k,k]   state k-1 if i<k or          state delta(i,j,k)")
	fmt.Fprintln(w, "           (i=k and j<=k) else k")
	fmt.Fprintln(w)

	sizes := []int{4, 8, 16}
	trials := 3
	if scale == Full {
		sizes = []int{4, 8, 16, 32}
		trials = 8
	}

	rng := rand.New(rand.NewSource(1))
	f := func(i, j, k int, x, u, v, w int64) int64 { return x + 2*u + 3*v + 5*w }

	var t Table
	t.Header("set", "n", "updates", "thm2.1+2.2 (F)", "table1-G (G)")
	check := func(name string, set core.UpdateSet, n int) error {
		in := matrix.NewSquare[int64](n)
		in.Apply(func(i, j int, _ int64) int64 { return rng.Int63n(1000) - 500 })
		count, err := trace.VerifyIGEP(in, f, set)
		fRes := "PASS"
		if err != nil {
			fRes = "FAIL: " + err.Error()
		}
		_, gErr := trace.VerifyGEP(in, f, set)
		gRes := "PASS"
		if gErr != nil {
			gRes = "FAIL: " + gErr.Error()
		}
		t.Row(name, n, count, fRes, gRes)
		Record(Row{Engine: name, N: n, Status: "F:" + fRes + " G:" + gRes,
			Extra: map[string]float64{"updates": float64(count)}})
		if err != nil {
			return err
		}
		return gErr
	}

	for _, n := range sizes {
		for trial := 0; trial < trials; trial++ {
			set := core.NewExplicit(n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					for k := 0; k < n; k++ {
						if rng.Float64() < 0.5 {
							set.Add(i, j, k)
						}
					}
				}
			}
			if err := check(fmt.Sprintf("random#%d", trial), set, n); err != nil {
				t.WriteTo(w)
				return err
			}
		}
		for name, set := range map[string]core.UpdateSet{
			"full": core.Full{}, "gaussian": core.Gaussian{}, "lu": core.LU{},
		} {
			if err := check(name, set, n); err != nil {
				t.WriteTo(w)
				return err
			}
		}
	}
	_, err := t.WriteTo(w)
	return err
}

// runTable2 prints the machine description, mirroring the paper's
// Table 2 (which lists the Xeon/Opteron machines; we report the actual
// host plus the simulated cache geometries used by the miss-count
// experiments).
func runTable2(w io.Writer, scale Scale) error {
	h := Host()
	Record(Row{Engine: "host", Extra: map[string]float64{
		"cpus": float64(h.CPUs), "peak_gflops": h.PeakGFLOPS,
	}})
	var t Table
	t.Header("property", "value")
	t.Row("go", h.GoVersion)
	t.Row("os/arch", h.OS+"/"+h.Arch)
	t.Row("cpus", h.CPUs)
	t.Row("measured peak GFLOPS", h.PeakGFLOPS)
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Simulated cache geometries (paper's Table 2 machines):")
	var t2 Table
	t2.Header("machine", "L1", "L2", "line")
	t2.Row("Intel P4 Xeon", "8 KB 4-way", "512 KB 8-way", "64 B")
	t2.Row("AMD Opteron 250/850", "64 KB 2-way", "1 MB 8-way", "64 B")
	_, err := t2.WriteTo(w)
	return err
}
