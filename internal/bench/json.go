package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"gep/internal/metrics"
)

// Machine-readable telemetry. Every experiment, in addition to its
// human-readable text table, can emit structured rows into a
// BENCH_<experiment>.json report: one Report per experiment, one Row
// per measured configuration (engine × size × parameter). Reports are
// the substrate for regression tracking — `gep-bench compare` (see
// compare.go) diffs two of them and fails past a threshold — and CI
// archives one per push, so the performance trajectory of the repo is
// queryable instead of living in eyeballed text files.
//
// The schema is documented with a worked example in EXPERIMENTS.md
// ("Machine-readable results"); bump ReportSchema when changing it
// incompatibly.

// ReportSchema is the version stamp written into every report.
const ReportSchema = 1

// Row is one structured measurement: an engine (algorithm variant) at
// one configuration. Zero-valued fields are omitted from the JSON, so
// a row carries exactly the measurements its experiment produced.
type Row struct {
	// Experiment names the producing experiment; Record fills it in
	// from the active report.
	Experiment string `json:"experiment,omitempty"`
	// Engine is the algorithm variant measured, e.g. "I-GEP(b=64)".
	Engine string `json:"engine"`
	// N is the problem side length, when the row has one.
	N int `json:"n,omitempty"`
	// Param is the remaining configuration axis, formatted "name=value"
	// (e.g. "base=64", "p=8", "M=8192"); it is part of the row identity
	// for compare.
	Param string `json:"param,omitempty"`
	// Workers is the par-runtime worker count the row was measured at,
	// when the experiment sweeps it (see exp_scaling.go). Informational:
	// row identity already encodes it via Param.
	Workers int `json:"workers,omitempty"`
	// Wall is the measured wall-clock time in nanoseconds.
	Wall time.Duration `json:"wall_ns,omitempty"`
	// GFLOPS is the achieved floating-point rate, when meaningful.
	GFLOPS float64 `json:"gflops,omitempty"`
	// PctPeak is GFLOPS as a percentage of the calibrated host peak.
	PctPeak float64 `json:"pct_peak,omitempty"`
	// L1Misses / L2Misses are simulated cache misses (internal/cachesim).
	L1Misses int64 `json:"sim_l1_misses,omitempty"`
	L2Misses int64 `json:"sim_l2_misses,omitempty"`
	// Status carries pass/fail for theorem-checking experiments.
	Status string `json:"status,omitempty"`
	// Extra holds experiment-specific numeric results (page transfer
	// counts, speedups, normalized bound constants, ...).
	Extra map[string]float64 `json:"extra,omitempty"`
	// Metrics is the engine-counter delta attributed to this row
	// (see TimeBestMetered), keyed by counter name.
	Metrics map[string]int64 `json:"metrics,omitempty"`
}

// Report is the machine-readable result of one experiment run; it is
// what BENCH_<experiment>.json contains.
type Report struct {
	// Schema is ReportSchema at write time.
	Schema int `json:"schema"`
	// Experiment and Title identify the paper artifact reproduced.
	Experiment string `json:"experiment"`
	Title      string `json:"title,omitempty"`
	// Scale is "small" or "full".
	Scale string `json:"scale"`
	// Timestamp is the RFC 3339 UTC start time of the run.
	Timestamp string `json:"timestamp,omitempty"`
	// Host describes the measuring machine and its calibrated peak.
	Host HostInfo `json:"host"`
	// Wall is the wall-clock time of the whole experiment.
	Wall time.Duration `json:"wall_ns,omitempty"`
	// Metrics is the delta of every engine counter (internal/metrics)
	// across the experiment: forks, kernel dispatches, pool decisions,
	// simulated misses.
	Metrics map[string]int64 `json:"metrics,omitempty"`
	// Rows are the per-configuration measurements.
	Rows []Row `json:"rows"`
}

// Validate checks the invariants every consumer (compare, CI) relies
// on: known schema version, a named experiment and scale, and a named
// engine on every row.
func (r *Report) Validate() error {
	if r.Schema != ReportSchema {
		return fmt.Errorf("bench: unsupported report schema %d (want %d)", r.Schema, ReportSchema)
	}
	if r.Experiment == "" {
		return fmt.Errorf("bench: report has no experiment name")
	}
	if r.Scale == "" {
		return fmt.Errorf("bench: report %s has no scale", r.Experiment)
	}
	for i, row := range r.Rows {
		if row.Engine == "" {
			return fmt.Errorf("bench: report %s row %d has no engine", r.Experiment, i)
		}
	}
	return nil
}

// String returns the Scale's flag spelling.
func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "small"
}

// active is the report currently being recorded, nil when structured
// output is disabled. Like csvSink, recording is single-run state: the
// harness runs experiments one at a time.
var active *Report

// StartReport begins structured recording for one experiment; rows
// passed to Record accumulate until FinishReport. Recording is
// disabled again by FinishReport, so experiments run by `go test` or
// without -json never pay for or produce reports.
func StartReport(e Experiment, scale Scale) {
	active = &Report{
		Schema:     ReportSchema,
		Experiment: e.Name,
		Title:      e.Title,
		Scale:      scale.String(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Host:       Host(),
		Rows:       []Row{},
	}
}

// Record appends a structured row to the active report; it is a no-op
// when no report is being recorded, so experiments call it
// unconditionally alongside their Table rows.
func Record(r Row) {
	if active == nil {
		return
	}
	r.Experiment = active.Experiment
	active.Rows = append(active.Rows, r)
}

// Recording reports whether a report is being recorded. Experiments
// with expensive opt-in instrumentation can consult it; most just call
// Record unconditionally.
func Recording() bool { return active != nil }

// FinishReport ends recording and returns the accumulated report
// (nil when none was started).
func FinishReport() *Report {
	r := active
	active = nil
	return r
}

// ReportPath returns the conventional file name for an experiment's
// report inside dir: BENCH_<experiment>.json.
func ReportPath(dir, experiment string) string {
	return filepath.Join(dir, "BENCH_"+experiment+".json")
}

// WriteReport validates r and writes it to ReportPath(dir, ...),
// creating dir if needed.
func WriteReport(dir string, r *Report) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(ReportPath(dir, r.Experiment), append(data, '\n'), 0o644)
}

// LoadReport reads and validates one report file.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// RunOptions configures one harness invocation of an experiment.
type RunOptions struct {
	// CSVDir, when non-empty, mirrors every rendered table as CSV
	// files into the directory (see SetCSVDir).
	CSVDir string
	// JSONDir, when non-empty, records structured rows and writes
	// BENCH_<experiment>.json into the directory.
	JSONDir string
}

// RunExperiment executes e at the given scale with the configured
// artifact sinks: text always goes to w, CSV and JSON outputs are
// written when their directories are set. The JSON report includes the
// delta of every engine counter across the run.
func RunExperiment(w io.Writer, e Experiment, scale Scale, opts RunOptions) error {
	if opts.CSVDir != "" {
		if err := os.MkdirAll(opts.CSVDir, 0o755); err != nil {
			return err
		}
		SetCSVDir(opts.CSVDir, e.Name)
		defer SetCSVDir("", "")
	}
	var before map[string]int64
	if opts.JSONDir != "" {
		StartReport(e, scale)
		defer FinishReport() // no-op when the normal path below ran
		before = metrics.Snapshot()
	}
	start := time.Now()
	err := e.Run(w, scale)
	wall := time.Since(start)
	if opts.JSONDir != "" {
		rep := FinishReport()
		rep.Wall = wall
		rep.Metrics = metrics.Diff(before, metrics.Snapshot())
		if err == nil {
			err = WriteReport(opts.JSONDir, rep)
		}
	}
	return err
}

// TimeBestMetered is TimeBest plus telemetry: it runs f reps times,
// returns the fastest wall-clock duration, and the engine-counter
// delta of the final repetition (the counters are deterministic per
// repetition, so the last one stands for all). When no report is being
// recorded it skips the snapshots and returns a nil map.
func TimeBestMetered(reps int, f func()) (time.Duration, map[string]int64) {
	if !Recording() {
		return TimeBest(reps, f), nil
	}
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps-1; i++ {
		if d := TimeIt(f); d < best {
			best = d
		}
	}
	before := metrics.Snapshot()
	if d := TimeIt(f); d < best {
		best = d
	}
	return best, metrics.Diff(before, metrics.Snapshot())
}
