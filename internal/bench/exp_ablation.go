package bench

import (
	"fmt"
	"io"

	"gep/internal/apsp"
	"gep/internal/cachesim"
	"gep/internal/core"
	"gep/internal/linalg"
	"gep/internal/matrix"
)

// Ablation benches for the design choices called out in DESIGN.md §5.

func init() {
	Register(Experiment{
		Name:  "ablation-base",
		Title: "Ablation: I-GEP base-size (the paper's empirically tuned knob, §4.2)",
		Run:   runAblationBase,
	})
	Register(Experiment{
		Name:  "ablation-layout",
		Title: "Ablation: row-major vs bit-interleaved (Morton) layout, incl. conversion",
		Run:   runAblationLayout,
	})
	Register(Experiment{
		Name:  "ablation-prune",
		Title: "Ablation: quadrant pruning (line 1 of F) on/off for a sparse update set",
		Run:   runAblationPrune,
	})
	Register(Experiment{
		Name:  "ablation-grain",
		Title: "Ablation: parallel grain size (spawn overhead vs exposed parallelism)",
		Run:   runAblationGrain,
	})
}

func runAblationBase(w io.Writer, scale Scale) error {
	n := 512
	bases := []int{8, 16, 32, 64, 128}
	if scale == Full {
		n = 1024
		bases = []int{8, 16, 32, 64, 128, 256, 512, 1024}
	}
	a, b := randDense(n, 11), randDense(n, 12)
	fmt.Fprintf(w, "MulIGEP at n=%d, varying base-size (paper found 64-128 optimal):\n\n", n)
	var t Table
	t.Header("base", "time", "GFLOPS")
	for _, base := range bases {
		d, met := TimeBestMetered(2, func() {
			c := matrix.NewSquare[float64](n)
			linalg.MulIGEP(c, a, b, base)
		})
		Record(Row{Engine: "MulIGEP", N: n, Param: fmt.Sprintf("base=%d", base),
			Wall: d, GFLOPS: GFLOPS(linalg.MulFlops(n), d), Metrics: met})
		t.Row(base, d, GFLOPS(linalg.MulFlops(n), d))
	}
	_, err := t.WriteTo(w)
	return err
}

func runAblationLayout(w io.Writer, scale Scale) error {
	n := 512
	if scale == Full {
		n = 1024
	}
	const base = 64
	a, b := randDense(n, 13), randDense(n, 14)
	fmt.Fprintf(w, "MM at n=%d, base=%d: row-major recursion vs Morton-tiled storage\n", n, base)
	fmt.Fprintln(w, "(conversion to/from the tiled layout included, as the paper reports):")
	fmt.Fprintln(w)
	var t Table
	t.Header("layout", "time", "GFLOPS")
	dRow := TimeBest(2, func() {
		c := matrix.NewSquare[float64](n)
		linalg.MulIGEP(c, a, b, base)
	})
	Record(Row{Engine: "MulIGEP", N: n, Param: "layout=row-major",
		Wall: dRow, GFLOPS: GFLOPS(linalg.MulFlops(n), dRow)})
	t.Row("row-major", dRow, GFLOPS(linalg.MulFlops(n), dRow))
	dMorton := TimeBest(2, func() {
		at := matrix.NewTiled[float64](n, base)
		bt := matrix.NewTiled[float64](n, base)
		ct := matrix.NewTiled[float64](n, base)
		at.FromDense(a)
		bt.FromDense(b)
		linalg.MulTiledMorton(ct, at, bt, base)
		_ = ct.ToDense()
	})
	Record(Row{Engine: "MulIGEP", N: n, Param: "layout=morton+convert",
		Wall: dMorton, GFLOPS: GFLOPS(linalg.MulFlops(n), dMorton)})
	t.Row("morton+convert", dMorton, GFLOPS(linalg.MulFlops(n), dMorton))
	if _, err := t.WriteTo(w); err != nil {
		return err
	}

	// TLB pressure — the paper's stated reason for bit-interleaving
	// (§4.2): simulate a small TLB under the I-GEP recursion in each
	// layout.
	tlbN := 128
	fmt.Fprintf(w, "\nSimulated TLB misses (16-entry, 4 KB pages) for I-GEP FW at n=%d:\n\n", tlbN)
	var t2 Table
	t2.Header("layout", "TLB misses")
	for _, v := range []struct {
		name   string
		layout func(n int) func(i, j int) int64
	}{
		{"row-major", cachesim.RowMajor},
		{"morton(32)", cachesim.MortonTiled(32)},
	} {
		tlb := cachesim.TLB(16, 4096)
		h := cachesim.NewHierarchy(tlb)
		m := matrix.NewSquare[float64](tlbN)
		g := cachesim.NewTraced[float64](m, h, v.layout, 0)
		core.RunIGEP[float64](g, fwUpdate, core.Full{}, core.WithBaseSize[float64](32))
		Record(Row{Engine: "I-GEP FW", N: tlbN, Param: "layout=" + v.name,
			Extra: map[string]float64{"tlb_misses": float64(tlb.Stats().Misses)}})
		t2.Row(v.name, tlb.Stats().Misses)
	}
	if _, err := t2.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nExpected shape: the Morton layout touches far fewer pages per base")
	fmt.Fprintln(w, "block, so its TLB misses are well below row-major's.")
	return nil
}

func runAblationPrune(w io.Writer, scale Scale) error {
	n := 256
	if scale == Full {
		n = 512
	}
	in := diagDom(n, 15)
	lu := core.LUFactor[float64]{}
	fmt.Fprintf(w, "Generic I-GEP on the LU set (touches ~1/3 of quadrant boxes) at n=%d:\n\n", n)
	var t Table
	t.Header("pruning", "time")
	for _, prune := range []bool{true, false} {
		p := prune
		d, met := TimeBestMetered(2, func() {
			m := in.Clone()
			core.RunIGEP[float64](m, lu, core.LU{},
				core.WithBaseSize[float64](32), core.WithPrune[float64](p))
		})
		Record(Row{Engine: "I-GEP LU", N: n, Param: fmt.Sprintf("prune=%t", p),
			Wall: d, Metrics: met})
		t.Row(p, d)
	}
	_, err := t.WriteTo(w)
	return err
}

func runAblationGrain(w io.Writer, scale Scale) error {
	n := 256
	grains := []int{32, 64, 128, 256}
	if scale == Full {
		n = 512
		grains = []int{32, 64, 128, 256, 512}
	}
	g := apsp.Random(n, 0.3, 1000, 16)
	in := g.DistanceMatrix()
	fmt.Fprintf(w, "Parallel FW at n=%d, varying spawn grain (grain=n is serial):\n\n", n)
	var t Table
	t.Header("grain", "time")
	for _, grain := range grains {
		gr := grain
		d, met := TimeBestMetered(2, func() {
			m := in.Clone()
			apsp.FWParallel(m, 32, gr)
		})
		Record(Row{Engine: "FWParallel", N: n, Param: fmt.Sprintf("grain=%d", gr),
			Wall: d, Metrics: met})
		t.Row(gr, d)
	}
	_, err := t.WriteTo(w)
	return err
}
