// Package bench is the experiment harness: it regenerates every table
// and figure of the paper's evaluation section (§4) as textual tables
// and, on request, as machine-readable artifacts. Each experiment is a
// named function over an io.Writer plus a Scale knob; cmd/gep-bench
// exposes them as subcommands and the root bench_test.go wires them
// into `go test -bench`.
//
// Key types and entry points:
//
//   - Experiment / Register / Get / All: the experiment registry. Each
//     exp_*.go file registers the experiments for one paper artifact
//     group (Tables 1-2, Figures 7-12, the ablations, and the Lemma
//     3.1 / I/O-bound checks that go beyond the paper's own plots).
//   - Table: aligned text rendering with optional CSV mirroring
//     (SetCSVDir), the plot-ready artifact trail under results/csv.
//   - Row / Report / RunExperiment (json.go): the telemetry layer.
//     With a JSON directory configured, every experiment additionally
//     emits structured rows — engine, n, parameter, wall time, GFLOPS,
//     % of calibrated peak, simulated misses, and the engine-counter
//     deltas from internal/metrics — into a BENCH_<experiment>.json
//     report stamped with the host description.
//   - CompareReports / ComparePaths (compare.go): regression gating
//     over two reports or directories of reports, used by the
//     `gep-bench compare` subcommand and CI.
//   - PeakGFLOPS / Host (peak.go): the calibrated peak-FLOPS figure
//     the paper's "% of peak" metric is scored against (§4.2).
//
// The EXPERIMENTS.md file at the repository root records, for each
// experiment, the paper's reported numbers next to ours, the expected
// qualitative shape, and the JSON report schema.
package bench
