package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func testReport(name string, wallByEngine map[string]time.Duration) *Report {
	r := &Report{
		Schema:     ReportSchema,
		Experiment: name,
		Scale:      "small",
		Host:       Host(),
	}
	for engine, wall := range wallByEngine {
		r.Rows = append(r.Rows, Row{Engine: engine, N: 256, Wall: wall})
	}
	return r
}

func TestCompareIdenticalPasses(t *testing.T) {
	dirOld, dirNew := t.TempDir(), t.TempDir()
	r := testReport("fig8", map[string]time.Duration{
		"GEP": 10 * time.Millisecond, "I-GEP": 2 * time.Millisecond,
	})
	if err := WriteReport(dirOld, r); err != nil {
		t.Fatal(err)
	}
	if err := WriteReport(dirNew, r); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	regressed, err := ComparePaths(&buf, dirOld, dirNew, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("identical reports flagged as regression:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "2 rows compared, 0 regressed") {
		t.Fatalf("unexpected summary:\n%s", buf.String())
	}
}

// TestCompareFlagsInjectedSlowdown is the regression-gate golden test:
// a 2x slowdown on one engine must trip a 1.5x threshold, name the
// regressed row, and leave the unchanged row alone.
func TestCompareFlagsInjectedSlowdown(t *testing.T) {
	dirOld, dirNew := t.TempDir(), t.TempDir()
	old := testReport("fig8", map[string]time.Duration{
		"GEP": 10 * time.Millisecond, "I-GEP": 2 * time.Millisecond,
	})
	slow := testReport("fig8", map[string]time.Duration{
		"GEP": 10 * time.Millisecond, "I-GEP": 4 * time.Millisecond, // injected 2x
	})
	if err := WriteReport(dirOld, old); err != nil {
		t.Fatal(err)
	}
	if err := WriteReport(dirNew, slow); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	regressed, err := ComparePaths(&buf, dirOld, dirNew, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("2x slowdown not flagged at 1.5x threshold:\n%s", buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "fig8/I-GEP") {
		t.Fatalf("regressed row not named:\n%s", out)
	}
	if strings.Contains(out, "fig8/GEP/n=256  10ms  10ms  1  REGRESSED") {
		t.Fatalf("unchanged row flagged:\n%s", out)
	}
}

func TestCompareSingleFiles(t *testing.T) {
	dirOld, dirNew := t.TempDir(), t.TempDir()
	old := testReport("fig10", map[string]time.Duration{"tiled(64)": time.Millisecond})
	improved := testReport("fig10", map[string]time.Duration{"tiled(64)": time.Millisecond / 2})
	if err := WriteReport(dirOld, old); err != nil {
		t.Fatal(err)
	}
	if err := WriteReport(dirNew, improved); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	regressed, err := ComparePaths(&buf, ReportPath(dirOld, "fig10"), ReportPath(dirNew, "fig10"), 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatal("improvement flagged as regression")
	}
	if !strings.Contains(buf.String(), "improved") {
		t.Fatalf("improvement not labeled:\n%s", buf.String())
	}
}

func TestCompareDeltas(t *testing.T) {
	old := testReport("x", map[string]time.Duration{"e": 100})
	new_ := testReport("x", map[string]time.Duration{"e": 150})
	deltas := CompareReports(old, new_)
	if len(deltas) != 1 {
		t.Fatalf("deltas = %v", deltas)
	}
	if d := deltas[0]; d.Ratio != 1.5 || d.Old != 100 || d.New != 150 {
		t.Fatalf("delta = %+v", d)
	}
	if got := Regressions(deltas, 1.4); len(got) != 1 {
		t.Fatalf("1.5x should regress past 1.4 threshold: %v", got)
	}
	if got := Regressions(deltas, 1.6); len(got) != 0 {
		t.Fatalf("1.5x should pass 1.6 threshold: %v", got)
	}
}

func TestCompareDisjointExperimentsErrors(t *testing.T) {
	dirOld, dirNew := t.TempDir(), t.TempDir()
	if err := WriteReport(dirOld, testReport("a", map[string]time.Duration{"e": 1})); err != nil {
		t.Fatal(err)
	}
	if err := WriteReport(dirNew, testReport("b", map[string]time.Duration{"e": 1})); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ComparePaths(&buf, dirOld, dirNew, 1.5); err == nil {
		t.Fatal("expected error for disjoint experiment sets")
	}
}
