package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"gep/internal/apsp"
	"gep/internal/linalg"
	"gep/internal/matrix"
	"gep/internal/sched"
)

func init() {
	Register(Experiment{
		Name:  "fig12",
		Title: "Figure 12: multithreaded I-GEP speedup for MM / GE / FW, p = 1..8",
		Run:   runFig12,
	})
}

func runFig12(w io.Writer, scale Scale) error {
	// Part 1: simulated speedups from the true task DAG (the
	// substitution for the paper's 8-processor Opteron 850 — see
	// DESIGN.md §4). r = n/grain matches the paper's effective task
	// granularity (n = 5000, base-size 64 ≈ 78; we use the nearest
	// power of two regime).
	// r = n/grain = 16 matches the effective task granularity of the
	// paper's runs (n = 5000 with coarse pthreads tasks); larger r
	// makes every curve saturate at p trivially.
	n, grain := 512, 32
	if scale == Full {
		n, grain = 4096, 256
	}
	fmt.Fprintf(w, "Simulated speedup from the Figure-6 task DAG (n=%d, grain=%d):\n\n", n, grain)
	procs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	var t Table
	t.Header("workload", "T1 (work)", "Tinf (span)", "p=1", "p=2", "p=4", "p=6", "p=8")
	for _, wl := range []sched.Workload{sched.MM, sched.GE, sched.FW} {
		plan := sched.BuildPlan(wl, n, grain)
		curve := sched.SpeedupCurve(plan, procs)
		byP := map[int]float64{}
		extra := map[string]float64{
			"t1":   float64(sched.TotalWork(plan)),
			"tinf": float64(sched.Span(plan)),
		}
		for _, c := range curve {
			byP[c.P] = c.Speedup
			extra[fmt.Sprintf("speedup_p%d", c.P)] = c.Speedup
		}
		Record(Row{Engine: wl.String(), N: n, Param: "model=dag", Extra: extra})
		t.Row(wl.String(), sched.TotalWork(plan), sched.Span(plan),
			byP[1], byP[2], byP[4], byP[6], byP[8])
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nExpected shape (paper, Fig 12): MM speeds up best (~6x at p=8 there),")
	fmt.Fprintln(w, "FW and GE below it (5.73x / 5.33x) — MM's all-D recursion has span O(n)")
	fmt.Fprintln(w, "vs O(n log^2 n) for the A recursion. (In the pure DAG model GE edges")
	fmt.Fprintln(w, "slightly ahead of FW; see EXPERIMENTS.md.)")

	// Part 2: the real goroutine implementations, timed at whatever
	// parallelism this host offers (wall-clock speedup requires
	// physical cores; with 1 CPU this measures spawn overhead only).
	nReal := 256
	if scale == Full {
		nReal = 512
	}
	fmt.Fprintf(w, "\nGoroutine implementations at GOMAXPROCS=%d (n=%d):\n\n", runtime.GOMAXPROCS(0), nReal)
	var t2 Table
	t2.Header("workload", "serial", "parallel(grain=64)", "ratio")
	record := func(workload string, ds, dp time.Duration, metS, metP map[string]int64) {
		Record(Row{Engine: workload, N: nReal, Param: "exec=serial", Wall: ds, Metrics: metS})
		Record(Row{Engine: workload, N: nReal, Param: "exec=parallel", Wall: dp, Metrics: metP})
		t2.Row(workload, ds, dp, float64(ds)/float64(dp))
	}
	{
		a, b := randDense(nReal, 3), randDense(nReal, 4)
		ds, metS := TimeBestMetered(2, func() {
			c := newZero(nReal)
			linalg.MulIGEP(c, a, b, 32)
		})
		dp, metP := TimeBestMetered(2, func() {
			c := newZero(nReal)
			linalg.MulIGEPParallel(c, a, b, 32, 64)
		})
		record("MM", ds, dp, metS, metP)
	}
	{
		in := diagDom(nReal, 5)
		ds, metS := TimeBestMetered(2, func() {
			m := in.Clone()
			linalg.LUIGEP(m, 32)
		})
		dp, metP := TimeBestMetered(2, func() {
			m := in.Clone()
			linalg.LUIGEPParallel(m, 32, 64)
		})
		record("GE", ds, dp, metS, metP)
	}
	{
		g := apsp.Random(nReal, 0.3, 1000, 6)
		in := g.DistanceMatrix()
		ds, metS := TimeBestMetered(2, func() {
			d := in.Clone()
			apsp.FWIGEP(d, 32)
		})
		dp, metP := TimeBestMetered(2, func() {
			d := in.Clone()
			apsp.FWParallel(d, 32, 64)
		})
		record("FW", ds, dp, metS, metP)
	}
	_, err := t2.WriteTo(w)
	return err
}

func newZero(n int) *matrix.Dense[float64] { return matrix.NewSquare[float64](n) }
