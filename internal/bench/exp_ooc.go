package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"gep/internal/core"
	"gep/internal/matrix"
	"gep/internal/ooc"
)

func init() {
	Register(Experiment{
		Name:  "fig7a",
		Title: "Figure 7(a): out-of-core Floyd-Warshall I/O wait vs cache size M (n, B fixed)",
		Run:   runFig7a,
	})
	Register(Experiment{
		Name:  "fig7b",
		Title: "Figure 7(b): out-of-core Floyd-Warshall I/O wait vs M/B (M fixed, B varied)",
		Run:   runFig7b,
	})
	Register(Experiment{
		Name:  "ooc",
		Title: "Tile-granular out-of-core I-GEP: element path vs resident-tile kernels vs prefetch",
		Run:   runOOCTiles,
	})
}

// fwUpdate is the fused min-plus op over float64 (integer edge weights
// keep it exact), shared by every Floyd-Warshall experiment: dense
// in-core runs take its fused kernel, wrapper grids (cache simulators,
// out-of-core stores) call its Func per element — identical accesses,
// identical results.
var fwUpdate = core.MinPlus[float64]{}

// oocAlgo names one algorithm, its natural disk layout and how to run
// it on an out-of-core matrix.
type oocAlgo struct {
	name   string
	layout ooc.LayoutFunc
	run    func(s *ooc.Store, m *ooc.Matrix) error
}

// oocAlgos are the four contenders of Figure 7: iterative GEP, I-GEP,
// and both C-GEP variants (aux matrices also file-backed, charged to
// the same cache budget). Each algorithm gets its natural disk layout,
// as the paper's per-implementation tuning does: row-major for the
// scanning iterative GEP, Morton-tiled for the recursive algorithms.
func oocAlgos(base int) []oocAlgo {
	newAux := func(s *ooc.Store, next *int64) func(rows, cols int) matrix.Rect[float64] {
		return func(rows, cols int) matrix.Rect[float64] {
			r := ooc.NewTiledRect(s, rows, cols, 16, *next)
			*next += r.Bytes()
			return r
		}
	}
	morton := ooc.MortonTiledLayout(minInt2(base, 32))
	return []oocAlgo{
		{"GEP", ooc.RowMajorLayout, func(s *ooc.Store, m *ooc.Matrix) error {
			core.RunGEP[float64](m, fwUpdate, core.Full{})
			return s.Err()
		}},
		{"I-GEP", morton, func(s *ooc.Store, m *ooc.Matrix) error {
			core.RunIGEP[float64](m, fwUpdate, core.Full{}, core.WithBaseSize[float64](base))
			return s.Err()
		}},
		{"C-GEP(4n^2)", morton, func(s *ooc.Store, m *ooc.Matrix) error {
			next := m.Bytes()
			core.RunCGEP[float64](m, fwUpdate, core.Full{},
				core.WithBaseSize[float64](base), core.WithAuxFactory[float64](newAux(s, &next)))
			return s.Err()
		}},
		{"C-GEP(2n^2)", morton, func(s *ooc.Store, m *ooc.Matrix) error {
			next := m.Bytes()
			core.RunCGEPCompact[float64](m, fwUpdate, core.Full{},
				core.WithBaseSize[float64](base), core.WithAuxFactory[float64](newAux(s, &next)))
			return s.Err()
		}},
	}
}

// fwInput builds a random integer-weight distance matrix.
func fwInput(n int, seed int64) *matrix.Dense[float64] {
	rng := rand.New(rand.NewSource(seed))
	d := matrix.NewSquare[float64](n)
	d.Apply(func(i, j int, _ float64) float64 {
		if i == j {
			return 0
		}
		return float64(rng.Intn(1000) + 1)
	})
	return d
}

// runOOC executes one algorithm on a fresh store and reports the I/O
// counters, modeled disk wait, measured wall-clock time, and the
// engine-counter delta of the run. Every error path propagates: setup,
// load, the run itself (including the store's sticky element-path
// error), and close.
func runOOC(a oocAlgo, in *matrix.Dense[float64], pageSize int, cacheSize int64) (ooc.Stats, time.Duration, time.Duration, map[string]int64, error) {
	s, err := ooc.Create("", ooc.Config{PageSize: pageSize, CacheSize: cacheSize})
	if err != nil {
		return ooc.Stats{}, 0, 0, nil, err
	}
	m := ooc.NewMatrix(s, in.N(), 0, a.layout)
	if err := m.Load(in); err != nil {
		s.Close()
		return ooc.Stats{}, 0, 0, nil, err
	}
	s.ResetStats()
	var runErr error
	wall, mets := TimeBestMetered(1, func() { runErr = a.run(s, m) })
	st, ioWait := s.Stats(), s.IOTime()
	if cerr := s.Close(); runErr == nil {
		runErr = cerr
	}
	return st, ioWait, wall, mets, runErr
}

func runFig7a(w io.Writer, scale Scale) error {
	// Keep M/B comfortably above the paper's degenerate small-M/B
	// regime and the Morton tile within a couple of pages.
	n, pageSize, base := 128, 1024, 16
	if scale == Full {
		n, pageSize, base = 256, 8192, 32
	}
	in := fwInput(n, 7)
	matBytes := int64(n) * int64(n) * 8

	fmt.Fprintf(w, "n=%d (matrix %d KB), B=%d B; sweeping M\n\n", n, matBytes>>10, pageSize)
	var t Table
	t.Header("M/matrix", "algorithm", "page reads", "page writes", "modeled I/O wait", "wall time")
	for _, frac := range []int{8, 4, 2, 1} { // M = matrix/8 .. matrix/1
		cache := matBytes / int64(frac)
		for _, a := range oocAlgos(base) {
			st, ioWait, wall, mets, err := runOOC(a, in, pageSize, cache)
			if err != nil {
				return err
			}
			Record(Row{Engine: a.name, N: n, Param: fmt.Sprintf("M=1/%d", frac), Wall: wall,
				Metrics: mets,
				Extra: map[string]float64{
					"page_reads":  float64(st.PageReads),
					"page_writes": float64(st.PageWrites),
					"io_wait_ns":  float64(ioWait.Nanoseconds()),
				}})
			t.Row(fmt.Sprintf("1/%d", frac), a.name, st.PageReads, st.PageWrites, ioWait, wall)
		}
	}
	_, err := t.WriteTo(w)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\nExpected shape (paper): GEP's I/O wait is orders of magnitude above")
	fmt.Fprintln(w, "I-GEP/C-GEP and nearly flat in M; I-GEP and C-GEP improve as M grows.")
	return nil
}

func runFig7b(w io.Writer, scale Scale) error {
	n, base := 128, 16
	pageSizes := []int{512, 1024, 2048, 4096}
	if scale == Full {
		n, base = 256, 32
		pageSizes = []int{2048, 4096, 8192, 16384, 32768}
	}
	in := fwInput(n, 8)
	matBytes := int64(n) * int64(n) * 8
	cache := matBytes / 2 // M fixed at half the matrix

	fmt.Fprintf(w, "n=%d, M=%d KB fixed; sweeping B (so M/B varies)\n\n", n, cache>>10)
	var t Table
	t.Header("B", "M/B", "algorithm", "page reads", "page writes", "modeled I/O wait")
	for _, b := range pageSizes {
		for _, a := range oocAlgos(base) {
			st, ioWait, _, mets, err := runOOC(a, in, b, cache)
			if err != nil {
				return err
			}
			Record(Row{Engine: a.name, N: n, Param: fmt.Sprintf("B=%d", b),
				Metrics: mets,
				Extra: map[string]float64{
					"page_reads":  float64(st.PageReads),
					"page_writes": float64(st.PageWrites),
					"io_wait_ns":  float64(ioWait.Nanoseconds()),
				}})
			t.Row(b, cache/int64(b), a.name, st.PageReads, st.PageWrites, ioWait)
		}
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nExpected shape (paper): I/O wait grows roughly linearly with M/B for")
	fmt.Fprintln(w, "all algorithms (more, smaller pages => more transfers at fixed volume),")
	fmt.Fprintln(w, "with GEP far above I-GEP/C-GEP throughout.")
	return nil
}

// runOOCTiles measures what the tile-granular runtime buys over the
// element-at-a-time path on the same out-of-core I-GEP recursion: the
// element engine calls ReadFloat/WriteFloat four times per update,
// the tile engine runs the fused kernels on pinned resident quadrants,
// and the prefetch variant additionally overlaps the next block's
// reads (and all dirty write-backs) with compute. All three produce
// bit-identical results; only staging differs.
func runOOCTiles(w io.Writer, scale Scale) error {
	type config struct {
		n, tile, pageSize int
		cache             int64
	}
	configs := []config{
		{n: 256, tile: 32, pageSize: 4096, cache: 256 * 256 * 8 / 2},
	}
	if scale == Full {
		// The acceptance configuration: n=2048 (32 MB matrix) against a
		// 16 MB cache, 64 KB pages, 64-wide tiles.
		configs = append(configs, config{n: 2048, tile: 64, pageSize: 1 << 16, cache: 16 << 20})
	}
	engines := []struct {
		name string
		run  func(tile int) func(s *ooc.Store, m *ooc.Matrix) error
	}{
		{"I-GEP(element)", func(tile int) func(s *ooc.Store, m *ooc.Matrix) error {
			return func(s *ooc.Store, m *ooc.Matrix) error {
				core.RunIGEP[float64](m, fwUpdate, core.Full{}, core.WithBaseSize[float64](tile))
				return s.Err()
			}
		}},
		{"I-GEP(tile)", func(int) func(s *ooc.Store, m *ooc.Matrix) error {
			return func(s *ooc.Store, m *ooc.Matrix) error {
				return ooc.RunIGEP(m, fwUpdate, core.Full{}, ooc.RunOptions{})
			}
		}},
		{"I-GEP(tile+prefetch)", func(int) func(s *ooc.Store, m *ooc.Matrix) error {
			return func(s *ooc.Store, m *ooc.Matrix) error {
				return ooc.RunIGEP(m, fwUpdate, core.Full{}, ooc.RunOptions{Prefetch: true})
			}
		}},
	}
	for ci, c := range configs {
		if ci > 0 {
			fmt.Fprintln(w)
		}
		in := fwInput(c.n, 11)
		matBytes := int64(c.n) * int64(c.n) * 8
		fmt.Fprintf(w, "n=%d (matrix %d KB), B=%d B, M=%d KB, tile=%d\n\n",
			c.n, matBytes>>10, c.pageSize, c.cache>>10, c.tile)
		var t Table
		t.Header("engine", "tile reads", "tile writes", "page reads", "modeled I/O wait", "wall time", "speedup")
		var elementWall time.Duration
		for _, e := range engines {
			a := oocAlgo{e.name, ooc.MortonTiledLayout(c.tile), e.run(c.tile)}
			st, ioWait, wall, mets, err := runOOC(a, in, c.pageSize, c.cache)
			if err != nil {
				return err
			}
			if elementWall == 0 {
				elementWall = wall
			}
			speedup := float64(elementWall) / float64(wall)
			Record(Row{Engine: e.name, N: c.n,
				Param: fmt.Sprintf("B=%d,M=%dK,t=%d", c.pageSize, c.cache>>10, c.tile),
				Wall:  wall, Metrics: mets,
				Extra: map[string]float64{
					"page_reads":         float64(st.PageReads),
					"page_writes":        float64(st.PageWrites),
					"tile_reads":         float64(st.TileReads),
					"tile_writes":        float64(st.TileWrites),
					"io_wait_ns":         float64(ioWait.Nanoseconds()),
					"speedup_vs_element": speedup,
				}})
			t.Row(e.name, st.TileReads, st.TileWrites, st.PageReads, ioWait,
				wall, fmt.Sprintf("%.1fx", speedup))
		}
		if _, err := t.WriteTo(w); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "\nExpected shape: identical results and identical transfer volume at tile")
	fmt.Fprintln(w, "granularity, but the tile engines replace four interface calls and a")
	fmt.Fprintln(w, "page-cache probe per update with fused kernels over resident buffers —")
	fmt.Fprintln(w, "an order of magnitude of wall time — and prefetch hides part of the")
	fmt.Fprintln(w, "remaining read stalls behind compute.")
	return nil
}

func minInt2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
