package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"gep/internal/core"
	"gep/internal/matrix"
	"gep/internal/ooc"
)

func init() {
	Register(Experiment{
		Name:  "fig7a",
		Title: "Figure 7(a): out-of-core Floyd-Warshall I/O wait vs cache size M (n, B fixed)",
		Run:   runFig7a,
	})
	Register(Experiment{
		Name:  "fig7b",
		Title: "Figure 7(b): out-of-core Floyd-Warshall I/O wait vs M/B (M fixed, B varied)",
		Run:   runFig7b,
	})
}

// fwUpdate is the fused min-plus op over float64 (integer edge weights
// keep it exact), shared by every Floyd-Warshall experiment: dense
// in-core runs take its fused kernel, wrapper grids (cache simulators,
// out-of-core stores) call its Func per element — identical accesses,
// identical results.
var fwUpdate = core.MinPlus[float64]{}

// oocAlgo names one algorithm, its natural disk layout and how to run
// it on an out-of-core matrix.
type oocAlgo struct {
	name   string
	layout ooc.LayoutFunc
	run    func(s *ooc.Store, m *ooc.Matrix)
}

// oocAlgos are the four contenders of Figure 7: iterative GEP, I-GEP,
// and both C-GEP variants (aux matrices also file-backed, charged to
// the same cache budget). Each algorithm gets its natural disk layout,
// as the paper's per-implementation tuning does: row-major for the
// scanning iterative GEP, Morton-tiled for the recursive algorithms.
func oocAlgos(base int) []oocAlgo {
	newAux := func(s *ooc.Store, next *int64) func(rows, cols int) matrix.Rect[float64] {
		return func(rows, cols int) matrix.Rect[float64] {
			r := ooc.NewTiledRect(s, rows, cols, 16, *next)
			*next += r.Bytes()
			return r
		}
	}
	morton := ooc.MortonTiledLayout(minInt2(base, 32))
	return []oocAlgo{
		{"GEP", ooc.RowMajorLayout, func(s *ooc.Store, m *ooc.Matrix) {
			core.RunGEP[float64](m, fwUpdate, core.Full{})
		}},
		{"I-GEP", morton, func(s *ooc.Store, m *ooc.Matrix) {
			core.RunIGEP[float64](m, fwUpdate, core.Full{}, core.WithBaseSize[float64](base))
		}},
		{"C-GEP(4n^2)", morton, func(s *ooc.Store, m *ooc.Matrix) {
			next := m.Bytes()
			core.RunCGEP[float64](m, fwUpdate, core.Full{},
				core.WithBaseSize[float64](base), core.WithAuxFactory[float64](newAux(s, &next)))
		}},
		{"C-GEP(2n^2)", morton, func(s *ooc.Store, m *ooc.Matrix) {
			next := m.Bytes()
			core.RunCGEPCompact[float64](m, fwUpdate, core.Full{},
				core.WithBaseSize[float64](base), core.WithAuxFactory[float64](newAux(s, &next)))
		}},
	}
}

// fwInput builds a random integer-weight distance matrix.
func fwInput(n int, seed int64) *matrix.Dense[float64] {
	rng := rand.New(rand.NewSource(seed))
	d := matrix.NewSquare[float64](n)
	d.Apply(func(i, j int, _ float64) float64 {
		if i == j {
			return 0
		}
		return float64(rng.Intn(1000) + 1)
	})
	return d
}

// runOOC executes one algorithm on a fresh store and reports counters.
func runOOC(a oocAlgo, in *matrix.Dense[float64], pageSize int, cacheSize int64) (ooc.Stats, time.Duration, time.Duration, error) {
	s, err := ooc.Create("", ooc.Config{PageSize: pageSize, CacheSize: cacheSize})
	if err != nil {
		return ooc.Stats{}, 0, 0, err
	}
	defer s.Close()
	m := ooc.NewMatrix(s, in.N(), 0, a.layout)
	m.Load(in)
	s.ResetStats()
	wall := TimeIt(func() { a.run(s, m) })
	return s.Stats(), s.IOTime(), wall, nil
}

func runFig7a(w io.Writer, scale Scale) error {
	// Keep M/B comfortably above the paper's degenerate small-M/B
	// regime and the Morton tile within a couple of pages.
	n, pageSize, base := 128, 1024, 16
	if scale == Full {
		n, pageSize, base = 256, 8192, 32
	}
	in := fwInput(n, 7)
	matBytes := int64(n) * int64(n) * 8

	fmt.Fprintf(w, "n=%d (matrix %d KB), B=%d B; sweeping M\n\n", n, matBytes>>10, pageSize)
	var t Table
	t.Header("M/matrix", "algorithm", "page reads", "page writes", "modeled I/O wait", "wall time")
	for _, frac := range []int{8, 4, 2, 1} { // M = matrix/8 .. matrix/1
		cache := matBytes / int64(frac)
		for _, a := range oocAlgos(base) {
			st, ioWait, wall, err := runOOC(a, in, pageSize, cache)
			if err != nil {
				return err
			}
			Record(Row{Engine: a.name, N: n, Param: fmt.Sprintf("M=1/%d", frac), Wall: wall,
				Extra: map[string]float64{
					"page_reads":  float64(st.PageReads),
					"page_writes": float64(st.PageWrites),
					"io_wait_ns":  float64(ioWait.Nanoseconds()),
				}})
			t.Row(fmt.Sprintf("1/%d", frac), a.name, st.PageReads, st.PageWrites, ioWait, wall)
		}
	}
	_, err := t.WriteTo(w)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\nExpected shape (paper): GEP's I/O wait is orders of magnitude above")
	fmt.Fprintln(w, "I-GEP/C-GEP and nearly flat in M; I-GEP and C-GEP improve as M grows.")
	return nil
}

func runFig7b(w io.Writer, scale Scale) error {
	n, base := 128, 16
	pageSizes := []int{512, 1024, 2048, 4096}
	if scale == Full {
		n, base = 256, 32
		pageSizes = []int{2048, 4096, 8192, 16384, 32768}
	}
	in := fwInput(n, 8)
	matBytes := int64(n) * int64(n) * 8
	cache := matBytes / 2 // M fixed at half the matrix

	fmt.Fprintf(w, "n=%d, M=%d KB fixed; sweeping B (so M/B varies)\n\n", n, cache>>10)
	var t Table
	t.Header("B", "M/B", "algorithm", "page reads", "page writes", "modeled I/O wait")
	for _, b := range pageSizes {
		for _, a := range oocAlgos(base) {
			st, ioWait, _, err := runOOC(a, in, b, cache)
			if err != nil {
				return err
			}
			Record(Row{Engine: a.name, N: n, Param: fmt.Sprintf("B=%d", b),
				Extra: map[string]float64{
					"page_reads":  float64(st.PageReads),
					"page_writes": float64(st.PageWrites),
					"io_wait_ns":  float64(ioWait.Nanoseconds()),
				}})
			t.Row(b, cache/int64(b), a.name, st.PageReads, st.PageWrites, ioWait)
		}
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nExpected shape (paper): I/O wait grows roughly linearly with M/B for")
	fmt.Fprintln(w, "all algorithms (more, smaller pages => more transfers at fixed volume),")
	fmt.Fprintln(w, "with GEP far above I-GEP/C-GEP throughout.")
	return nil
}

func minInt2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
