package bench

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"gep/internal/core"
	"gep/internal/matrix"
	"gep/internal/ooc"
)

func init() {
	Register(Experiment{
		Name:  "fig7a",
		Title: "Figure 7(a): out-of-core Floyd-Warshall I/O wait vs cache size M (n, B fixed)",
		Run:   runFig7a,
	})
	Register(Experiment{
		Name:  "fig7b",
		Title: "Figure 7(b): out-of-core Floyd-Warshall I/O wait vs M/B (M fixed, B varied)",
		Run:   runFig7b,
	})
	Register(Experiment{
		Name:  "ooc",
		Title: "Tile-granular out-of-core I-GEP: element path vs resident-tile kernels vs prefetch; durable striped stores + crash recovery",
		Run:   runOOCTiles,
	})
}

// fwUpdate is the fused min-plus op over float64 (integer edge weights
// keep it exact), shared by every Floyd-Warshall experiment: dense
// in-core runs take its fused kernel, wrapper grids (cache simulators,
// out-of-core stores) call its Func per element — identical accesses,
// identical results.
var fwUpdate = core.MinPlus[float64]{}

// oocAlgo names one algorithm, its natural disk layout and how to run
// it on an out-of-core matrix.
type oocAlgo struct {
	name   string
	layout ooc.LayoutFunc
	run    func(s *ooc.Store, m *ooc.Matrix) error
}

// oocAlgos are the four contenders of Figure 7: iterative GEP, I-GEP,
// and both C-GEP variants (aux matrices also file-backed, charged to
// the same cache budget). Each algorithm gets its natural disk layout,
// as the paper's per-implementation tuning does: row-major for the
// scanning iterative GEP, Morton-tiled for the recursive algorithms.
func oocAlgos(base int) []oocAlgo {
	newAux := func(s *ooc.Store, next *int64) func(rows, cols int) matrix.Rect[float64] {
		return func(rows, cols int) matrix.Rect[float64] {
			r := ooc.NewTiledRect(s, rows, cols, 16, *next)
			*next += r.Bytes()
			return r
		}
	}
	morton := ooc.MortonTiledLayout(minInt2(base, 32))
	return []oocAlgo{
		{"GEP", ooc.RowMajorLayout, func(s *ooc.Store, m *ooc.Matrix) error {
			core.RunGEP[float64](m, fwUpdate, core.Full{})
			return s.Err()
		}},
		{"I-GEP", morton, func(s *ooc.Store, m *ooc.Matrix) error {
			core.RunIGEP[float64](m, fwUpdate, core.Full{}, core.WithBaseSize[float64](base))
			return s.Err()
		}},
		{"C-GEP(4n^2)", morton, func(s *ooc.Store, m *ooc.Matrix) error {
			next := m.Bytes()
			core.RunCGEP[float64](m, fwUpdate, core.Full{},
				core.WithBaseSize[float64](base), core.WithAuxFactory[float64](newAux(s, &next)))
			return s.Err()
		}},
		{"C-GEP(2n^2)", morton, func(s *ooc.Store, m *ooc.Matrix) error {
			next := m.Bytes()
			core.RunCGEPCompact[float64](m, fwUpdate, core.Full{},
				core.WithBaseSize[float64](base), core.WithAuxFactory[float64](newAux(s, &next)))
			return s.Err()
		}},
	}
}

// fwInput builds a random integer-weight distance matrix.
func fwInput(n int, seed int64) *matrix.Dense[float64] {
	rng := rand.New(rand.NewSource(seed))
	d := matrix.NewSquare[float64](n)
	d.Apply(func(i, j int, _ float64) float64 {
		if i == j {
			return 0
		}
		return float64(rng.Intn(1000) + 1)
	})
	return d
}

// runOOC executes one algorithm on a fresh store and reports the I/O
// counters, modeled disk wait, measured wall-clock time, and the
// engine-counter delta of the run. Every error path propagates: setup,
// load, the run itself (including the store's sticky element-path
// error), and close.
func runOOC(a oocAlgo, in *matrix.Dense[float64], pageSize int, cacheSize int64) (ooc.Stats, time.Duration, time.Duration, map[string]int64, error) {
	s, err := ooc.Create("", ooc.Config{PageSize: pageSize, CacheSize: cacheSize})
	if err != nil {
		return ooc.Stats{}, 0, 0, nil, err
	}
	m := ooc.NewMatrix(s, in.N(), 0, a.layout)
	if err := m.Load(in); err != nil {
		s.Close()
		return ooc.Stats{}, 0, 0, nil, err
	}
	s.ResetStats()
	var runErr error
	wall, mets := TimeBestMetered(1, func() { runErr = a.run(s, m) })
	st, ioWait := s.Stats(), s.IOTime()
	if cerr := s.Close(); runErr == nil {
		runErr = cerr
	}
	return st, ioWait, wall, mets, runErr
}

func runFig7a(w io.Writer, scale Scale) error {
	// Keep M/B comfortably above the paper's degenerate small-M/B
	// regime and the Morton tile within a couple of pages.
	n, pageSize, base := 128, 1024, 16
	if scale == Full {
		n, pageSize, base = 256, 8192, 32
	}
	in := fwInput(n, 7)
	matBytes := int64(n) * int64(n) * 8

	fmt.Fprintf(w, "n=%d (matrix %d KB), B=%d B; sweeping M\n\n", n, matBytes>>10, pageSize)
	var t Table
	t.Header("M/matrix", "algorithm", "page reads", "page writes", "modeled I/O wait", "wall time")
	for _, frac := range []int{8, 4, 2, 1} { // M = matrix/8 .. matrix/1
		cache := matBytes / int64(frac)
		for _, a := range oocAlgos(base) {
			st, ioWait, wall, mets, err := runOOC(a, in, pageSize, cache)
			if err != nil {
				return err
			}
			Record(Row{Engine: a.name, N: n, Param: fmt.Sprintf("M=1/%d", frac), Wall: wall,
				Metrics: mets,
				Extra: map[string]float64{
					"page_reads":  float64(st.PageReads),
					"page_writes": float64(st.PageWrites),
					"io_wait_ns":  float64(ioWait.Nanoseconds()),
				}})
			t.Row(fmt.Sprintf("1/%d", frac), a.name, st.PageReads, st.PageWrites, ioWait, wall)
		}
	}
	_, err := t.WriteTo(w)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\nExpected shape (paper): GEP's I/O wait is orders of magnitude above")
	fmt.Fprintln(w, "I-GEP/C-GEP and nearly flat in M; I-GEP and C-GEP improve as M grows.")
	return nil
}

func runFig7b(w io.Writer, scale Scale) error {
	n, base := 128, 16
	pageSizes := []int{512, 1024, 2048, 4096}
	if scale == Full {
		n, base = 256, 32
		pageSizes = []int{2048, 4096, 8192, 16384, 32768}
	}
	in := fwInput(n, 8)
	matBytes := int64(n) * int64(n) * 8
	cache := matBytes / 2 // M fixed at half the matrix

	fmt.Fprintf(w, "n=%d, M=%d KB fixed; sweeping B (so M/B varies)\n\n", n, cache>>10)
	var t Table
	t.Header("B", "M/B", "algorithm", "page reads", "page writes", "modeled I/O wait")
	for _, b := range pageSizes {
		for _, a := range oocAlgos(base) {
			st, ioWait, _, mets, err := runOOC(a, in, b, cache)
			if err != nil {
				return err
			}
			Record(Row{Engine: a.name, N: n, Param: fmt.Sprintf("B=%d", b),
				Metrics: mets,
				Extra: map[string]float64{
					"page_reads":  float64(st.PageReads),
					"page_writes": float64(st.PageWrites),
					"io_wait_ns":  float64(ioWait.Nanoseconds()),
				}})
			t.Row(b, cache/int64(b), a.name, st.PageReads, st.PageWrites, ioWait)
		}
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nExpected shape (paper): I/O wait grows roughly linearly with M/B for")
	fmt.Fprintln(w, "all algorithms (more, smaller pages => more transfers at fixed volume),")
	fmt.Fprintln(w, "with GEP far above I-GEP/C-GEP throughout.")
	return nil
}

// runOOCTiles measures what the tile-granular runtime buys over the
// element-at-a-time path on the same out-of-core I-GEP recursion: the
// element engine calls ReadFloat/WriteFloat four times per update,
// the tile engine runs the fused kernels on pinned resident quadrants,
// and the prefetch variant additionally overlaps the next block's
// reads (and all dirty write-backs) with compute. All three produce
// bit-identical results; only staging differs.
func runOOCTiles(w io.Writer, scale Scale) error {
	type config struct {
		n, tile, pageSize int
		cache             int64
	}
	configs := []config{
		{n: 256, tile: 32, pageSize: 4096, cache: 256 * 256 * 8 / 2},
	}
	if scale == Full {
		// The acceptance configuration: n=2048 (32 MB matrix) against a
		// 16 MB cache, 64 KB pages, 64-wide tiles.
		configs = append(configs, config{n: 2048, tile: 64, pageSize: 1 << 16, cache: 16 << 20})
	}
	engines := []struct {
		name string
		run  func(tile int) func(s *ooc.Store, m *ooc.Matrix) error
	}{
		{"I-GEP(element)", func(tile int) func(s *ooc.Store, m *ooc.Matrix) error {
			return func(s *ooc.Store, m *ooc.Matrix) error {
				core.RunIGEP[float64](m, fwUpdate, core.Full{}, core.WithBaseSize[float64](tile))
				return s.Err()
			}
		}},
		{"I-GEP(tile)", func(int) func(s *ooc.Store, m *ooc.Matrix) error {
			return func(s *ooc.Store, m *ooc.Matrix) error {
				return ooc.RunIGEP(m, fwUpdate, core.Full{}, ooc.RunOptions{})
			}
		}},
		{"I-GEP(tile+prefetch)", func(int) func(s *ooc.Store, m *ooc.Matrix) error {
			return func(s *ooc.Store, m *ooc.Matrix) error {
				return ooc.RunIGEP(m, fwUpdate, core.Full{}, ooc.RunOptions{Prefetch: true})
			}
		}},
	}
	for ci, c := range configs {
		if ci > 0 {
			fmt.Fprintln(w)
		}
		in := fwInput(c.n, 11)
		matBytes := int64(c.n) * int64(c.n) * 8
		fmt.Fprintf(w, "n=%d (matrix %d KB), B=%d B, M=%d KB, tile=%d\n\n",
			c.n, matBytes>>10, c.pageSize, c.cache>>10, c.tile)
		var t Table
		t.Header("engine", "tile reads", "tile writes", "page reads", "modeled I/O wait", "wall time", "speedup")
		var elementWall time.Duration
		for _, e := range engines {
			a := oocAlgo{e.name, ooc.MortonTiledLayout(c.tile), e.run(c.tile)}
			st, ioWait, wall, mets, err := runOOC(a, in, c.pageSize, c.cache)
			if err != nil {
				return err
			}
			if elementWall == 0 {
				elementWall = wall
			}
			speedup := float64(elementWall) / float64(wall)
			Record(Row{Engine: e.name, N: c.n,
				Param: fmt.Sprintf("B=%d,M=%dK,t=%d", c.pageSize, c.cache>>10, c.tile),
				Wall:  wall, Metrics: mets,
				Extra: map[string]float64{
					"page_reads":         float64(st.PageReads),
					"page_writes":        float64(st.PageWrites),
					"tile_reads":         float64(st.TileReads),
					"tile_writes":        float64(st.TileWrites),
					"io_wait_ns":         float64(ioWait.Nanoseconds()),
					"speedup_vs_element": speedup,
				}})
			t.Row(e.name, st.TileReads, st.TileWrites, st.PageReads, ioWait,
				wall, fmt.Sprintf("%.1fx", speedup))
		}
		if _, err := t.WriteTo(w); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "\nExpected shape: identical results and identical transfer volume at tile")
	fmt.Fprintln(w, "granularity, but the tile engines replace four interface calls and a")
	fmt.Fprintln(w, "page-cache probe per update with fused kernels over resident buffers —")
	fmt.Fprintln(w, "an order of magnitude of wall time — and prefetch hides part of the")
	fmt.Fprintln(w, "remaining read stalls behind compute.")
	fmt.Fprintln(w)
	return runOOCDurable(w, scale)
}

// dconf is one durable-store configuration: an LU factorization on a
// striped, checksummed, journaled store with periodic sync points.
// band > 0 makes the input zero outside |i-j| <= band — the realistic
// compressible case (LU fill-in stays within 2×band).
type dconf struct {
	n, tile    int
	cache      int64
	stripes    int
	compress   bool
	band       int
	checkpoint int64
}

func (c dconf) param() string {
	return fmt.Sprintf("s=%d,z=%v,ckpt=%d", c.stripes, c.compress, c.checkpoint)
}

// oocCell is the deterministic, order-independent input generator for
// the durable legs (matrices too large to stage densely in RAM load
// tile by tile via LoadFunc): diagonally dominant so LU stays finite,
// zero outside the band when one is set.
func oocCell(seed int64, n, i, j, band int) float64 {
	if band > 0 {
		d := i - j
		if d < 0 {
			d = -d
		}
		if d > band {
			return 0
		}
	}
	var b [24]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(seed))
	binary.LittleEndian.PutUint64(b[8:], uint64(i))
	binary.LittleEndian.PutUint64(b[16:], uint64(j))
	u := float64(ooc.Checksum(b[:])>>11) / float64(int64(1)<<53)
	if i == j {
		return float64(n) + u
	}
	return 2*u - 1
}

// luBlocks is the number of I-GEP base-case blocks an LU run visits on
// an nt×nt tile grid (sum of squares — the checkpoint/resume cursor
// space the crash drill picks its stop point from).
func luBlocks(nt int) int64 {
	total := int64(0)
	for j := 1; j <= nt; j++ {
		total += int64(j) * int64(j)
	}
	return total
}

// newDurable creates a durable store + matrix, loads the deterministic
// input through the tile path, and commits sync point 0 — the state
// every checkpointed run (and every resume) starts from.
func newDurable(c dconf) (*ooc.Store, *ooc.Matrix, string, error) {
	dir, err := os.MkdirTemp("", "gep-ooc-durable-*")
	if err != nil {
		return nil, nil, "", err
	}
	s, err := ooc.CreateAt(dir, ooc.Config{
		PageSize: 4096, CacheSize: c.cache,
		Stripes: c.stripes, Compress: c.compress,
	})
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, "", err
	}
	m := ooc.NewMatrix(s, c.n, 0, ooc.MortonTiledLayout(c.tile))
	if err := m.LoadFunc(func(i, j int) float64 {
		return oocCell(13, c.n, i, j, c.band)
	}); err == nil {
		err = s.Checkpoint(0)
	} else {
		s.Abandon()
	}
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, "", err
	}
	return s, m, dir, nil
}

// runOOCDurable measures the production storage path — striping,
// per-tile checksums, optional compression, write-ahead journal — and
// the crash → recover → resume drill. The durable rows report the
// logical/physical byte split (the §4.1 transfer accounting stays in
// logical tiles; only IOTime and the physical column see compression)
// and the drill row times Store.Recover and verifies, in-process, that
// the resumed result is digest-identical to an uninterrupted run.
func runOOCDurable(w io.Writer, scale Scale) error {
	smallCache := int64(256 * 256 * 8 / 2)
	configs := []dconf{
		{n: 256, tile: 32, cache: smallCache, stripes: 1, checkpoint: 64},
		{n: 256, tile: 32, cache: smallCache, stripes: 4, checkpoint: 64},
		{n: 256, tile: 32, cache: smallCache, stripes: 4, compress: true, band: 48, checkpoint: 64},
	}
	if scale == Full {
		configs = append(configs,
			// 32 MB matrix against a 16 MB cache.
			dconf{n: 2048, tile: 64, cache: 16 << 20, stripes: 4, checkpoint: 512},
			// The acceptance leg: 2 GiB matrix against a 128 MiB cache
			// (M ≈ n²/16), banded + compressed, ~22 sync points.
			dconf{n: 16384, tile: 256, cache: 128 << 20, stripes: 4,
				compress: true, band: 2048, checkpoint: 4096},
		)
	}

	fmt.Fprintln(w, "durable stores (LU, striped + checksummed + journaled, checkpointed):")
	fmt.Fprintln(w)
	var t Table
	t.Header("n", "config", "logical MB", "physical MB", "sync points", "modeled I/O wait", "wall time")
	for _, c := range configs {
		s, m, dir, err := newDurable(c)
		if err != nil {
			return err
		}
		s.ResetStats()
		var runErr error
		wall, mets := TimeBestMetered(1, func() {
			runErr = ooc.RunIGEP(m, core.LUFactor[float64]{}, core.LU{},
				ooc.RunOptions{Prefetch: true, CheckpointEvery: c.checkpoint})
		})
		st, ioWait := s.Stats(), s.IOTime()
		if cerr := s.Close(); runErr == nil {
			runErr = cerr
		}
		os.RemoveAll(dir)
		if runErr != nil {
			return fmt.Errorf("durable n=%d: %w", c.n, runErr)
		}
		Record(Row{Engine: "I-GEP(durable)", N: c.n, Param: c.param(), Wall: wall,
			Metrics: mets,
			Extra: map[string]float64{
				"bytes_logical":   float64(st.BytesLogical),
				"bytes_physical":  float64(st.BytesPhysical),
				"tile_reads":      float64(st.TileReads),
				"tile_writes":     float64(st.TileWrites),
				"journal_commits": float64(st.JournalCommits),
				"checksum_ok":     float64(st.ChecksumOK),
				"io_wait_ns":      float64(ioWait.Nanoseconds()),
			}})
		t.Row(c.n, c.param(), st.BytesLogical>>20, st.BytesPhysical>>20,
			st.JournalCommits, ioWait, wall)
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}

	drills := []dconf{
		{n: 256, tile: 32, cache: smallCache, stripes: 4, checkpoint: 32},
	}
	if scale == Full {
		drills = append(drills,
			dconf{n: 4096, tile: 128, cache: 32 << 20, stripes: 4, checkpoint: 512})
	}
	fmt.Fprintln(w, "\ncrash drill (stop cold at 60% of the blocks, recover, resume):")
	fmt.Fprintln(w)
	var d Table
	d.Header("n", "frontier/total", "replayed", "recovery time", "resume wall", "digest")
	for _, c := range drills {
		if err := runCrashDrill(&d, c); err != nil {
			return err
		}
	}
	if _, err := d.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nExpected shape: striping is free at this concurrency, the journal's")
	fmt.Fprintln(w, "double-write costs a modest constant factor, compression drops physical")
	fmt.Fprintln(w, "(not logical) bytes on banded inputs, and recovery time is journal-scan")
	fmt.Fprintln(w, "plus replay — milliseconds, independent of how much computation is done.")
	return nil
}

// runCrashDrill runs LU to completion for a reference digest, reruns
// it with a cold stop at 60% of the blocks, recovers, resumes from the
// reported frontier, and fails the experiment unless the digests
// match. Recovery time (Open + Recover) and resume wall go in the row.
func runCrashDrill(t *Table, c dconf) error {
	s, m, dir, err := newDurable(c)
	if err != nil {
		return err
	}
	opts := ooc.RunOptions{Prefetch: true, CheckpointEvery: c.checkpoint}
	var want uint64
	runErr := ooc.RunIGEP(m, core.LUFactor[float64]{}, core.LU{}, opts)
	if runErr == nil {
		want, runErr = m.Digest()
	}
	if cerr := s.Close(); runErr == nil {
		runErr = cerr
	}
	os.RemoveAll(dir)
	if runErr != nil {
		return fmt.Errorf("drill golden n=%d: %w", c.n, runErr)
	}

	total := luBlocks(c.n / c.tile)
	stopOpts := opts
	stopOpts.StopAfter = total * 3 / 5
	s2, m2, dir2, err := newDurable(c)
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir2)
	if err := ooc.RunIGEP(m2, core.LUFactor[float64]{}, core.LU{}, stopOpts); !errors.Is(err, ooc.ErrStopped) {
		s2.Abandon()
		return fmt.Errorf("drill n=%d: stop run returned %v, want ErrStopped", c.n, err)
	}
	s2.Abandon() // the simulated kill: no sync, no close

	start := time.Now()
	s3, err := ooc.Open(dir2, ooc.Config{PageSize: 4096, CacheSize: c.cache, Compress: c.compress})
	if err != nil {
		return fmt.Errorf("drill n=%d: reopen: %w", c.n, err)
	}
	info, err := s3.Recover()
	recovery := time.Since(start)
	if err != nil {
		s3.Abandon()
		return fmt.Errorf("drill n=%d: recover: %w", c.n, err)
	}
	m3 := ooc.NewMatrix(s3, c.n, 0, ooc.MortonTiledLayout(c.tile))
	resumeOpts := opts
	resumeOpts.StartBlock = info.Frontier
	var resumeErr error
	resumeWall := TimeIt(func() {
		resumeErr = ooc.RunIGEP(m3, core.LUFactor[float64]{}, core.LU{}, resumeOpts)
	})
	var got uint64
	if resumeErr == nil {
		got, resumeErr = m3.Digest()
	}
	if cerr := s3.Close(); resumeErr == nil {
		resumeErr = cerr
	}
	if resumeErr != nil {
		return fmt.Errorf("drill n=%d: resume: %w", c.n, resumeErr)
	}
	if got != want {
		return fmt.Errorf("drill n=%d: resumed digest %016x != uninterrupted %016x", c.n, got, want)
	}
	Record(Row{Engine: "I-GEP(recover)", N: c.n, Param: c.param(), Wall: resumeWall,
		Extra: map[string]float64{
			"recovery_ns":    float64(recovery.Nanoseconds()),
			"frontier":       float64(info.Frontier),
			"blocks_total":   float64(total),
			"replayed_tiles": float64(info.Tiles),
			"replayed_bytes": float64(info.Bytes),
		}})
	t.Row(c.n, fmt.Sprintf("%d/%d", info.Frontier, total), info.Tiles,
		recovery, resumeWall, fmt.Sprintf("%016x ok", got))
	return nil
}

func minInt2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
