package bench

import (
	"fmt"
	"io"
	"math/rand"

	"gep/internal/cachesim"
	"gep/internal/core"
	"gep/internal/linalg"
	"gep/internal/matrix"
)

func init() {
	Register(Experiment{
		Name:  "fig10",
		Title: "Figure 10: Gaussian elimination w/o pivoting — GEP vs I-GEP vs tiled (BLAS substitute), % of peak",
		Run:   runFig10,
	})
	Register(Experiment{
		Name:  "fig11",
		Title: "Figure 11: square matrix multiplication — GEP vs I-GEP vs tiled (BLAS substitute), % of peak and cache misses",
		Run:   runFig11,
	})
}

func randDense(n int, seed int64) *matrix.Dense[float64] {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.NewSquare[float64](n)
	m.Apply(func(i, j int, _ float64) float64 { return rng.Float64()*2 - 1 })
	return m
}

func diagDom(n int, seed int64) *matrix.Dense[float64] {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.NewSquare[float64](n)
	m.Apply(func(i, j int, _ float64) float64 {
		if i == j {
			return float64(2*n) + rng.Float64()
		}
		return rng.Float64()*2 - 1
	})
	return m
}

func runFig10(w io.Writer, scale Scale) error {
	sizes := []int{256, 512}
	reps := 2
	if scale == Full {
		sizes = []int{512, 1024, 2048}
	}
	peak := PeakGFLOPS()
	fmt.Fprintf(w, "Calibrated peak: %.2f GFLOPS\n\n", peak)
	var t Table
	t.Header("n", "algo", "time", "GFLOPS", "% of peak")
	for _, n := range sizes {
		in := diagDom(n, int64(n))
		flops := linalg.GEFlops(n)
		for _, v := range []struct {
			name string
			run  func(m *matrix.Dense[float64])
		}{
			{"GEP", linalg.LUGEP},
			{"GEP-opt", linalg.LUGEPOpt},
			{"I-GEP(b=64)", func(m *matrix.Dense[float64]) { linalg.LUIGEP(m, 64) }},
			{"tiled(64)", func(m *matrix.Dense[float64]) { linalg.LUTiled(m, 64) }},
		} {
			d, met := TimeBestMetered(reps, func() {
				m := in.Clone()
				v.run(m)
			})
			g := GFLOPS(flops, d)
			Record(Row{Engine: v.name, N: n, Wall: d, GFLOPS: g, PctPeak: 100 * g / peak, Metrics: met})
			t.Row(n, v.name, d, g, 100*g/peak)
		}
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nExpected shape (paper, Fig 10): cache-aware tuned code (GotoBLAS there,")
	fmt.Fprintln(w, "our tiled kernel here) > I-GEP > GEP in percent-of-peak, with I-GEP within ~1.5x")
	fmt.Fprintln(w, "of the cache-aware code and several times above naive GEP.")
	return nil
}

func runFig11(w io.Writer, scale Scale) error {
	sizes := []int{256, 512}
	reps := 2
	if scale == Full {
		sizes = []int{512, 1024, 2048}
	}
	peak := PeakGFLOPS()
	fmt.Fprintf(w, "Calibrated peak: %.2f GFLOPS\n\n", peak)
	var t Table
	t.Header("n", "algo", "time", "GFLOPS", "% of peak")
	for _, n := range sizes {
		a, b := randDense(n, 1), randDense(n, 2)
		flops := linalg.MulFlops(n)
		for _, v := range []struct {
			name string
			run  func(c *matrix.Dense[float64])
		}{
			{"GEP", func(c *matrix.Dense[float64]) { linalg.MulNaive(c, a, b) }},
			{"I-GEP(b=64)", func(c *matrix.Dense[float64]) { linalg.MulIGEP(c, a, b, 64) }},
			{"tiled(64)", func(c *matrix.Dense[float64]) { linalg.MulTiled(c, a, b, 64) }},
		} {
			d, met := TimeBestMetered(reps, func() {
				c := matrix.NewSquare[float64](n)
				v.run(c)
			})
			g := GFLOPS(flops, d)
			Record(Row{Engine: v.name, N: n, Wall: d, GFLOPS: g, PctPeak: 100 * g / peak, Metrics: met})
			t.Row(n, v.name, d, g, 100*g/peak)
		}
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}

	// Miss counts: identical access patterns re-executed through
	// traced grids on the simulated Xeon-like hierarchy.
	missN := 128
	if scale == Full {
		missN = 256
	}
	fmt.Fprintf(w, "\nSimulated cache misses at n=%d (8 KB L1 / 64 KB L2 scaled geometry):\n", missN)
	var t2 Table
	t2.Header("algo", "L1 misses", "L2 misses")
	mulU := core.MulAdd[float64]{}
	for _, v := range []struct {
		name string
		run  func(h *cachesim.Hierarchy, c, a, b matrix.Grid[float64])
	}{
		{"GEP", func(h *cachesim.Hierarchy, c, a, b matrix.Grid[float64]) {
			n := c.N()
			for i := 0; i < n; i++ {
				for k := 0; k < n; k++ {
					for j := 0; j < n; j++ {
						c.Set(i, j, c.At(i, j)+a.At(i, k)*b.At(k, j))
					}
				}
			}
		}},
		// Base 8 lets the recursion keep adapting below the L1
		// working set — the cache-oblivious multilevel advantage the
		// single-tile-size kernel lacks.
		{"I-GEP(b=8)", func(h *cachesim.Hierarchy, c, a, b matrix.Grid[float64]) {
			core.RunDisjoint[float64](c, a, b, b, mulU, core.Full{}, core.WithBaseSize[float64](8))
		}},
		{"tiled(32)", func(h *cachesim.Hierarchy, c, a, b matrix.Grid[float64]) {
			tracedTiledMul(c, a, b, 32)
		}},
	} {
		h := cachesim.Scaled(8<<10, 64<<10, 64)
		n := missN
		layout := cachesim.RowMajor
		base0 := int64(0)
		base1 := cachesim.NextBase(base0, n)
		base2 := cachesim.NextBase(base1, n)
		c := cachesim.NewTraced[float64](matrix.NewSquare[float64](n), h, layout, base0)
		ag := cachesim.NewTraced[float64](randDense(n, 1), h, layout, base1)
		bg := cachesim.NewTraced[float64](randDense(n, 2), h, layout, base2)
		v.run(h, c, ag, bg)
		Record(Row{Engine: v.name, N: n, Param: "sim=misses",
			L1Misses: h.Level(0).Misses, L2Misses: h.Level(1).Misses})
		t2.Row(v.name, h.Level(0).Misses, h.Level(1).Misses)
	}
	if _, err := t2.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nExpected shape (paper, Fig 11): tuned cache-aware code > I-GEP > GEP")
	fmt.Fprintln(w, "in percent-of-peak, while I-GEP incurs the fewest (or equal-fewest) cache misses")
	fmt.Fprintln(w, "— the BLAS speed advantage is not a cache advantage.")
	return nil
}

// tracedTiledMul replays MulTiled's access pattern over Grid
// interfaces so the cache simulator sees exactly what the tiled kernel
// touches.
func tracedTiledMul(c, a, b matrix.Grid[float64], tile int) {
	n := c.N()
	for ii := 0; ii < n; ii += tile {
		iMax := ii + tile
		if iMax > n {
			iMax = n
		}
		for kk := 0; kk < n; kk += tile {
			kMax := kk + tile
			if kMax > n {
				kMax = n
			}
			for jj := 0; jj < n; jj += tile {
				jMax := jj + tile
				if jMax > n {
					jMax = n
				}
				for i := ii; i < iMax; i++ {
					for k := kk; k < kMax; k++ {
						aik := a.At(i, k)
						for j := jj; j < jMax; j++ {
							c.Set(i, j, c.At(i, j)+aik*b.At(k, j))
						}
					}
				}
			}
		}
	}
}
