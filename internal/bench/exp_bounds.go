package bench

import (
	"fmt"
	"io"
	"math"

	"gep/internal/cachesim"
	"gep/internal/core"
	"gep/internal/matrix"
)

func init() {
	Register(Experiment{
		Name:  "bounds",
		Title: "I/O-complexity check: misses vs M against the O(n³/(B√M)) and O(n³/B) bounds",
		Run:   runBounds,
	})
}

// runBounds validates the paper's complexity claims directly: on a
// fixed Floyd-Warshall trace, sweep the (fully associative, LRU) cache
// size M and report measured misses alongside the bound predictions.
// If the theory holds, GEP's misses barely move with M (O(n³/B)),
// while I-GEP's normalized constant misses×B√M/n³ never grows — the
// O(n³/(B√M)) bound holds at every M the recursion was never told
// about.
func runBounds(w io.Writer, scale Scale) error {
	n := 64
	ms := []int64{2 << 10, 4 << 10, 8 << 10, 16 << 10}
	if scale == Full {
		n = 128
		ms = []int64{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10}
	}
	const lineB = 64
	n3 := float64(n) * float64(n) * float64(n)

	// Record each algorithm's trace once, replay against every M.
	record := func(algo func(g matrix.Grid[float64])) []int64 {
		rec := &cachesim.TraceRecorder{}
		m := fwInput(n, 3)
		g := cachesim.NewRecording[float64](m, rec, cachesim.MortonTiled(8), 0)
		algo(g)
		return rec.Addrs()
	}
	gepTrace := record(func(g matrix.Grid[float64]) {
		core.RunGEP[float64](g, fwUpdate, core.Full{})
	})
	igepTrace := record(func(g matrix.Grid[float64]) {
		core.RunIGEP[float64](g, fwUpdate, core.Full{}, core.WithBaseSize[float64](8))
	})

	fmt.Fprintf(w, "Floyd-Warshall at n=%d, B=%d B, LRU replay; constants should be ~flat per row group:\n\n", n, lineB)
	var t Table
	t.Header("M", "algo", "misses", "misses*B*sqrtM/n^3", "misses*B/n^3")
	for _, m := range ms {
		sqrtM := math.Sqrt(float64(m) / 8) // M in elements for the bound
		gepMiss := cachesim.SimulateLRU(gepTrace, m, lineB)
		igepMiss := cachesim.SimulateLRU(igepTrace, m, lineB)
		bElems := float64(lineB) / 8
		// Each engine's row must identify which bound model its
		// normalized constant belongs to: GEP's bound is O(n³/B)
		// (norm_b is its flat constant; norm_bsqrtm grows as √M by
		// construction), I-GEP's is O(n³/(B√M)) (norm_bsqrtm flat).
		// Both columns are recorded for both engines, with the
		// engine's own model named in the row identity.
		Record(Row{Engine: "GEP", N: n, Param: fmt.Sprintf("M=%d model=nb", m),
			Extra: map[string]float64{
				"misses":      float64(gepMiss),
				"norm_bsqrtm": float64(gepMiss) * bElems * sqrtM / n3,
				"norm_b":      float64(gepMiss) * bElems / n3,
			}})
		Record(Row{Engine: "I-GEP", N: n, Param: fmt.Sprintf("M=%d model=nbsqrtm", m),
			Extra: map[string]float64{
				"misses":      float64(igepMiss),
				"norm_bsqrtm": float64(igepMiss) * bElems * sqrtM / n3,
				"norm_b":      float64(igepMiss) * bElems / n3,
			}})
		t.Row(m, "GEP", gepMiss, float64(gepMiss)*bElems*sqrtM/n3, float64(gepMiss)*bElems/n3)
		t.Row(m, "I-GEP", igepMiss, float64(igepMiss)*bElems*sqrtM/n3, float64(igepMiss)*bElems/n3)
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nExpected shape: the GEP rows hold the 5th column ~constant (O(n^3/B):")
	fmt.Fprintln(w, "no benefit from larger M), while I-GEP's misses fall at least as fast")
	fmt.Fprintln(w, "as 1/sqrt(M) — its 4th column never grows (the bound is an upper")
	fmt.Fprintln(w, "bound; once M approaches n^2, reuse becomes complete and misses drop")
	fmt.Fprintln(w, "toward the compulsory n^2/B).")
	return nil
}
