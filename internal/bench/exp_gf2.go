package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"gep/internal/apsp"
	"gep/internal/core"
	"gep/internal/linalg"
	"gep/internal/matrix"
	"gep/internal/par"
)

func init() {
	Register(Experiment{
		Name:  "gf2",
		Title: "Bit-packed boolean/GF(2) engines: element-wise bool vs packed vs packed+four-Russians vs packed-parallel",
		Run:   runGF2,
	})
}

// gf2Workers is the worker count of the packed-parallel closure rows.
const gf2Workers = 4

// runGF2 measures the 64×-density play: transitive closure and GF(2)
// elimination through the same I-GEP recursion at three kernel tiers —
// the element-wise bool fast path, the word-parallel packed kernel
// (tw=0), and the packed kernel with the four-Russians table base case
// (tw=8) — plus the packed closure on the multithreaded A/B/C/D
// schedule. All four closure engines produce bit-identical outputs
// (the differential and fuzz tests in internal/apsp assert it); the
// rows here measure only the constant factor, which is the point: the
// recursion and its O(n³/(B√M)) miss bound are unchanged, each base
// case just touches 1/64 the bytes.
//
// The element-wise rows are capped (they are O(n³) bool updates; at
// n=16384 that is ~4×10¹² updates, hours of wall clock), so the
// largest size runs packed-only — exactly the new-workload regime the
// packed engines exist for. Capped rows are logged, not silently
// dropped. Packed rows carry extra["speedup_vs_bool"] only at sizes
// where the bool row was actually measured; no extrapolation.
func runGF2(w io.Writer, scale Scale) error {
	sizes := []int{256, 1024}
	boolCap := 1024
	if scale == Full {
		sizes = []int{1024, 4096, 16384}
		boolCap = 4096
	}
	defer par.ResetWorkers()

	fmt.Fprintf(w, "Packed boolean/GF(2) engines (closure: Full set; elimination: Gaussian set).\n")
	fmt.Fprintf(w, "bool rows capped at n=%d; packed-par rows use p=%d workers.\n\n", boolCap, gf2Workers)

	var t Table
	t.Header("engine", "n", "wall", "Gcell/s", "vs bool")
	for _, n := range sizes {
		reps := 2
		if n >= 4096 {
			reps = 1
		}
		// One random edge set per size, dense enough that the closure
		// saturates (the element-wise kernel then gets no row-skip help,
		// so the comparison is the honest dense-work ratio).
		rng := rand.New(rand.NewSource(int64(7000 + n)))
		edges := matrix.NewBitsSquare(n)
		for i := 0; i < n; i++ {
			for e := 0; e < 12; e++ {
				edges.Set(i, rng.Intn(n), true)
			}
		}
		var edgesBool *matrix.Dense[bool]
		if n <= boolCap {
			edgesBool = matrix.UnpackBool(edges)
		}
		cells := float64(n) * float64(n) * float64(n)

		record := func(engine, param string, workers int, wall time.Duration, met map[string]int64, boolWall time.Duration) {
			extra := map[string]float64{}
			if boolWall > 0 {
				extra["speedup_vs_bool"] = float64(boolWall) / float64(wall)
			}
			Record(Row{
				Engine: engine, N: n, Param: param, Workers: workers,
				Wall: wall, Metrics: met, Extra: extra,
			})
			vs := "-"
			if boolWall > 0 {
				vs = fmt.Sprintf("%.1fx", float64(boolWall)/float64(wall))
			}
			t.Row(engine, n, wall, GFLOPS(cells, wall), vs)
		}

		// --- Transitive closure ---
		var boolWall time.Duration
		if edgesBool != nil {
			var met map[string]int64
			boolWall, met = TimeBestMetered(reps, func() {
				r := edgesBool.Clone()
				apsp.TransitiveClosure(r)
			})
			record("closure-bool", "", 0, boolWall, met, 0)
		} else {
			fmt.Fprintf(w, "closure-bool skipped at n=%d (cap %d)\n", n, boolCap)
		}
		wall, met := TimeBestMetered(reps, func() {
			r := edges.Clone()
			apsp.TransitiveClosurePacked(r, 0)
		})
		record("closure-packed", "tw=0", 0, wall, met, boolWall)
		wall, met = TimeBestMetered(reps, func() {
			r := edges.Clone()
			apsp.TransitiveClosurePacked(r, -1)
		})
		record("closure-m4ri", "tw=8", 0, wall, met, boolWall)
		par.SetWorkers(gf2Workers)
		wall, met = TimeBestMetered(reps, func() {
			r := edges.Clone()
			apsp.ClosurePackedParallel(r, -1, 64)
		})
		par.ResetWorkers()
		record("closure-packed-par", fmt.Sprintf("p=%d", gf2Workers), gf2Workers, wall, met, boolWall)

		// --- GF(2) elimination (Gaussian set) ---
		boolWall = 0
		if edgesBool != nil {
			var met map[string]int64
			boolWall, met = TimeBestMetered(reps, func() {
				m := edgesBool.Clone()
				core.RunIGEP[bool](m, core.GF2Elim{}, core.Gaussian{})
			})
			record("gf2elim-bool", "", 0, boolWall, met, 0)
		} else {
			fmt.Fprintf(w, "gf2elim-bool skipped at n=%d (cap %d)\n", n, boolCap)
		}
		wall, met = TimeBestMetered(reps, func() {
			m := edges.Clone()
			linalg.GaussGF2Fused(m, 0, 0)
		})
		record("gf2elim-packed", "tw=0", 0, wall, met, boolWall)
		wall, met = TimeBestMetered(reps, func() {
			m := edges.Clone()
			linalg.GaussGF2Fused(m, 0, -1)
		})
		record("gf2elim-m4ri", "tw=8", 0, wall, met, boolWall)
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nExpected: packed ≥ 20x over element-wise bool at equal n (64 cells per")
	fmt.Fprintln(w, "word minus masking overhead), four-Russians ahead of plain packed at the")
	fmt.Fprintln(w, "512-side base cases, and the parallel row tracking the serial packed row")
	fmt.Fprintln(w, "on few-core hosts (its value is the schedule, not this machine).")
	return nil
}
