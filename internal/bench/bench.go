package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Scale selects experiment sizes. Small finishes in seconds (CI and
// `go test -bench`); Full takes minutes and approaches the paper's
// regime as closely as one container allows.
type Scale int

const (
	// Small is the quick-run preset.
	Small Scale = iota
	// Full is the paper-regime preset.
	Full
)

// Experiment is one regenerable table or figure.
type Experiment struct {
	// Name is the subcommand, e.g. "fig8".
	Name string
	// Title describes the paper artifact reproduced.
	Title string
	// Run writes the regenerated rows to w.
	Run func(w io.Writer, scale Scale) error
}

var registry = map[string]Experiment{}

// Register adds an experiment; duplicate names panic at init time.
func Register(e Experiment) {
	if _, dup := registry[e.Name]; dup {
		panic("bench: duplicate experiment " + e.Name)
	}
	registry[e.Name] = e
}

// Get returns a registered experiment.
func Get(name string) (Experiment, bool) {
	e, ok := registry[name]
	return e, ok
}

// All returns the experiments sorted by name.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// csvSink, when set, receives a CSV copy of every table rendered by
// WriteTo — the plot-ready artifact trail. See SetCSVDir.
var csvSink struct {
	dir     string
	exp     string
	counter int
}

// SetCSVDir enables CSV mirroring of all tables into dir (empty
// disables); exp names the current experiment for file naming.
func SetCSVDir(dir, exp string) {
	csvSink.dir = dir
	csvSink.exp = exp
	csvSink.counter = 0
}

// Table renders aligned columns: the first row is the header.
type Table struct {
	rows [][]string
}

// Header sets the column names.
func (t *Table) Header(cols ...string) { t.rows = append(t.rows, cols) }

// Row appends a data row; values are formatted with %v, and float64s
// get four significant decimals.
func (t *Table) Row(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case time.Duration:
			row[i] = x.Round(10 * time.Microsecond).String()
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// WriteCSV renders the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// mirrorCSV writes the table to the configured CSV sink, if any.
func (t *Table) mirrorCSV() {
	if csvSink.dir == "" {
		return
	}
	csvSink.counter++
	name := fmt.Sprintf("%s-%d.csv", csvSink.exp, csvSink.counter)
	f, err := os.Create(filepath.Join(csvSink.dir, name))
	if err != nil {
		return // CSV mirroring is best-effort
	}
	defer f.Close()
	_ = t.WriteCSV(f)
}

// WriteTo renders the table (and mirrors it to the CSV sink when one
// is configured with SetCSVDir).
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	t.mirrorCSV()
	widths := map[int]int{}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var total int64
	for ri, row := range t.rows {
		var sb strings.Builder
		for i, cell := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(row)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		sb.WriteByte('\n')
		n, err := io.WriteString(w, sb.String())
		total += int64(n)
		if err != nil {
			return total, err
		}
		if ri == 0 {
			sep := strings.Repeat("-", len(strings.TrimRight(sb.String(), "\n")))
			n, err = io.WriteString(w, sep+"\n")
			total += int64(n)
			if err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// TimeIt runs f once and returns its wall-clock duration.
func TimeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// TimeBest runs f reps times and returns the fastest duration —
// the standard noise-resistant measurement.
func TimeBest(reps int, f func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		if d := TimeIt(f); d < best {
			best = d
		}
	}
	return best
}

// GFLOPS converts an operation count and duration to 10⁹ ops/second.
func GFLOPS(flops float64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return flops / d.Seconds() / 1e9
}
