package bench

import (
	"fmt"
	"io"
	"time"

	"gep/internal/apsp"
	"gep/internal/cachesim"
	"gep/internal/core"
	"gep/internal/matrix"
)

func init() {
	Register(Experiment{
		Name:  "fig8",
		Title: "Figure 8: in-core Floyd-Warshall, GEP vs I-GEP running time",
		Run:   runFig8,
	})
	Register(Experiment{
		Name:  "fig9",
		Title: "Figure 9: in-core I-GEP vs C-GEP variants, time and L2 misses",
		Run:   runFig9,
	})
}

func runFig8(w io.Writer, scale Scale) error {
	sizes := []int{128, 256, 512}
	if scale == Full {
		sizes = []int{256, 512, 1024, 2048}
	}
	fmt.Fprintln(w, "In-core Floyd-Warshall (specialized float64 kernels, integer weights):")
	var t Table
	t.Header("n", "GEP-pure", "GEP-opt", "I-GEP(b=64)", "I-GEP tiled", "pure/tiled", "opt/tiled")
	for _, n := range sizes {
		reps := 3
		if n >= 1024 {
			reps = 1 // the pure-GEP baseline alone takes ~a minute at n=2048
		}
		g := apsp.Random(n, 0.3, 1000, int64(n))
		in := g.DistanceMatrix()

		variants := []struct {
			name string
			run  func(d *matrix.Dense[float64])
		}{
			{"GEP-pure", func(d *matrix.Dense[float64]) { apsp.FWGEPPure(d) }},
			{"GEP-opt", func(d *matrix.Dense[float64]) { apsp.FWGEP(d) }},
			{"I-GEP(b=64)", func(d *matrix.Dense[float64]) { apsp.FWIGEP(d, 64) }},
			{"I-GEP tiled", func(d *matrix.Dense[float64]) { apsp.FWIGEPTiled(d, 64) }},
		}
		times := make([]time.Duration, len(variants))
		for vi, v := range variants {
			d, met := TimeBestMetered(reps, func() {
				d := in.Clone()
				v.run(d)
			})
			times[vi] = d
			Record(Row{Engine: v.name, N: n, Wall: d, Metrics: met})
		}
		dPure, dOpt, dIgep, dTiled := times[0], times[1], times[2], times[3]
		t.Row(n, dPure, dOpt, dIgep, dTiled,
			float64(dPure)/float64(dTiled), float64(dOpt)/float64(dTiled))
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nExpected shape (paper, Fig 8): I-GEP 4-6x faster than GEP at large n.")
	fmt.Fprintln(w, "The tiled column is the paper's bit-interleaved layout (conversion cost")
	fmt.Fprintln(w, "included); the paper's GEP baseline sits between our pure and opt columns.")
	return nil
}

func runFig9(w io.Writer, scale Scale) error {
	// Timing: all three algorithms through the same generic engine so
	// the comparison isolates the C-GEP bookkeeping, as in the paper.
	sizes := []int{128, 256}
	if scale == Full {
		sizes = []int{128, 256, 512}
	}
	fmt.Fprintln(w, "In-core Floyd-Warshall through the generic engine (base=32):")
	var t Table
	t.Header("n", "I-GEP", "C-GEP(4n^2)", "C-GEP(2n^2)", "4n^2/I-GEP", "2n^2/I-GEP")
	for _, n := range sizes {
		in := fwInput(n, int64(n))
		base := core.WithBaseSize[float64](32)
		dI, metI := TimeBestMetered(2, func() {
			m := in.Clone()
			core.RunIGEP[float64](m, fwUpdate, core.Full{}, base)
		})
		dC4, metC4 := TimeBestMetered(2, func() {
			m := in.Clone()
			core.RunCGEP[float64](m, fwUpdate, core.Full{}, base)
		})
		dC2, metC2 := TimeBestMetered(2, func() {
			m := in.Clone()
			core.RunCGEPCompact[float64](m, fwUpdate, core.Full{}, base)
		})
		Record(Row{Engine: "I-GEP", N: n, Wall: dI, Metrics: metI})
		Record(Row{Engine: "C-GEP(4n^2)", N: n, Wall: dC4, Metrics: metC4})
		Record(Row{Engine: "C-GEP(2n^2)", N: n, Wall: dC2, Metrics: metC2})
		t.Row(n, dI, dC4, dC2, float64(dC4)/float64(dI), float64(dC2)/float64(dI))
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}

	// Miss counts on the simulated Xeon L2 (scaled down for small n so
	// the matrix exceeds the cache, as in the paper's full-size runs).
	fmt.Fprintln(w, "\nSimulated L2 misses (8 KB L1 / 64 KB L2 scaled geometry, 64 B lines):")
	var t2 Table
	t2.Header("n", "algo", "L1 misses", "L2 misses")
	missSizes := sizes
	if missSizes[len(missSizes)-1] > 256 {
		missSizes = missSizes[:len(missSizes)-1]
	}
	for _, n := range missSizes {
		in := fwInput(n, int64(n))
		type variant struct {
			name string
			run  func(h *cachesim.Hierarchy, m matrix.Grid[float64], aux func(int, int) matrix.Rect[float64])
		}
		variants := []variant{
			{"I-GEP", func(h *cachesim.Hierarchy, m matrix.Grid[float64], aux func(int, int) matrix.Rect[float64]) {
				core.RunIGEP[float64](m, fwUpdate, core.Full{}, core.WithBaseSize[float64](32))
			}},
			{"C-GEP(4n^2)", func(h *cachesim.Hierarchy, m matrix.Grid[float64], aux func(int, int) matrix.Rect[float64]) {
				core.RunCGEP[float64](m, fwUpdate, core.Full{},
					core.WithBaseSize[float64](32), core.WithAuxFactory[float64](aux))
			}},
			{"C-GEP(2n^2)", func(h *cachesim.Hierarchy, m matrix.Grid[float64], aux func(int, int) matrix.Rect[float64]) {
				core.RunCGEPCompact[float64](m, fwUpdate, core.Full{},
					core.WithBaseSize[float64](32), core.WithAuxFactory[float64](aux))
			}},
		}
		for _, v := range variants {
			h := cachesim.Scaled(8<<10, 64<<10, 64)
			mat := in.Clone()
			traced := cachesim.NewTraced[float64](mat, h, cachesim.MortonTiled(32), 0)
			nextBase := cachesim.NextBase(0, n)
			aux := func(rows, cols int) matrix.Rect[float64] {
				inner := matrix.New[float64](rows, cols)
				r := cachesim.NewTracedRect[float64](inner, h, cols, nextBase)
				nextBase += int64(rows)*int64(cols)*cachesim.ElemSize8 + 4096
				return r
			}
			v.run(h, traced, aux)
			Record(Row{Engine: v.name, N: n, Param: "sim=misses",
				L1Misses: h.Level(0).Misses, L2Misses: h.Level(1).Misses})
			t2.Row(n, v.name, h.Level(0).Misses, h.Level(1).Misses)
		}
	}
	if _, err := t2.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nExpected shape (paper, Fig 9): both C-GEP variants run slower and")
	fmt.Fprintln(w, "miss more than I-GEP (extra writes); the 4n^2 variant beats the")
	fmt.Fprintln(w, "compact one; the overhead shrinks as n grows.")
	return nil
}
