package bench

import (
	"bytes"
	"io"
	"reflect"
	"testing"
	"time"
)

// fakeExperiment returns an unregistered experiment that records two
// structured rows, for exercising the report pipeline without the cost
// of a real experiment.
func fakeExperiment() Experiment {
	return Experiment{
		Name:  "fake",
		Title: "round-trip fixture",
		Run: func(w io.Writer, scale Scale) error {
			// The metrics keys are the kernel-dispatch counter inventory
			// (DESIGN.md §9): one counter per rung of the kernel
			// hierarchy, so a report records how every base-case block
			// was dispatched.
			Record(Row{Engine: "I-GEP", N: 256, Param: "base=64",
				Wall: 123456789, GFLOPS: 1.5, PctPeak: 42.0,
				Metrics: map[string]int64{
					"core.kernel.fused":   48,
					"core.kernel.flat":    16,
					"core.kernel.generic": 0,
				}})
			Record(Row{Engine: "GEP", N: 256, Wall: 987654321,
				L1Misses: 1000, L2Misses: 100,
				Extra: map[string]float64{"page_reads": 7}})
			_, err := io.WriteString(w, "text output\n")
			return err
		},
	}
}

// TestReportRoundTrip is the schema golden test: a report produced by
// the harness path (StartReport → Record → write) must load back
// field-for-field identical through LoadReport.
func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	e := fakeExperiment()
	if err := RunExperiment(&buf, e, Small, RunOptions{JSONDir: dir}); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "text output\n" {
		t.Fatalf("text output lost: %q", buf.String())
	}

	got, err := LoadReport(ReportPath(dir, "fake"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != ReportSchema || got.Experiment != "fake" || got.Scale != "small" {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.Host.GoVersion == "" || got.Host.CPUs < 1 {
		t.Fatalf("host header missing: %+v", got.Host)
	}
	if got.Wall <= 0 {
		t.Fatalf("experiment wall time missing: %v", got.Wall)
	}
	if got.Timestamp == "" {
		t.Fatal("timestamp missing")
	}
	want := []Row{
		{Experiment: "fake", Engine: "I-GEP", N: 256, Param: "base=64",
			Wall: 123456789, GFLOPS: 1.5, PctPeak: 42.0,
			Metrics: map[string]int64{
				"core.kernel.fused":   48,
				"core.kernel.flat":    16,
				"core.kernel.generic": 0,
			}},
		{Experiment: "fake", Engine: "GEP", N: 256, Wall: 987654321,
			L1Misses: 1000, L2Misses: 100,
			Extra: map[string]float64{"page_reads": 7}},
	}
	if !reflect.DeepEqual(got.Rows, want) {
		t.Fatalf("rows did not round-trip:\ngot  %+v\nwant %+v", got.Rows, want)
	}
}

// TestRealExperimentReport runs a cheap registered experiment end to
// end with JSON output and validates the result — the same path as
// `gep-bench -json`.
func TestRealExperimentReport(t *testing.T) {
	dir := t.TempDir()
	e, ok := Get("table2")
	if !ok {
		t.Fatal("table2 not registered")
	}
	var buf bytes.Buffer
	if err := RunExperiment(&buf, e, Small, RunOptions{JSONDir: dir}); err != nil {
		t.Fatal(err)
	}
	r, err := LoadReport(ReportPath(dir, "table2"))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("table2 recorded no rows")
	}
	if r.Rows[0].Extra["peak_gflops"] <= 0 {
		t.Fatalf("peak not recorded: %+v", r.Rows[0])
	}
}

// TestIncoreReportRecordsDispatchSplit runs the regression-gated
// incore experiment end to end and asserts its JSON report carries
// the fused/flat/generic kernel-dispatch split: the engine rows
// (igep-*) use built-in fused ops over dense matrices with an
// interval set, so every base-case block must dispatch to a fused
// kernel — none may fall back to the flat per-element path.
func TestIncoreReportRecordsDispatchSplit(t *testing.T) {
	if testing.Short() {
		t.Skip("runs timed matrix kernels")
	}
	dir := t.TempDir()
	e, ok := Get("incore")
	if !ok {
		t.Fatal("incore not registered")
	}
	var buf bytes.Buffer
	if err := RunExperiment(&buf, e, Small, RunOptions{JSONDir: dir}); err != nil {
		t.Fatal(err)
	}
	r, err := LoadReport(ReportPath(dir, "incore"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["core.kernel.fused"] == 0 {
		t.Fatalf("report-level metrics missing fused dispatches: %v", r.Metrics)
	}
	for _, row := range r.Rows {
		if row.Engine != "igep-fw" && row.Engine != "igep-mm" {
			continue
		}
		if row.Metrics["core.kernel.fused"] == 0 {
			t.Errorf("%s n=%d: no fused dispatches: %v", row.Engine, row.N, row.Metrics)
		}
		if row.Metrics["core.kernel.flat"] != 0 || row.Metrics["core.kernel.generic"] != 0 {
			t.Errorf("%s n=%d: engine row fell off the fused rung: %v", row.Engine, row.N, row.Metrics)
		}
	}
}

func TestRecordIsNoOpWithoutReport(t *testing.T) {
	if Recording() {
		t.Fatal("recording unexpectedly active")
	}
	Record(Row{Engine: "x"}) // must not panic or leak anywhere
	if FinishReport() != nil {
		t.Fatal("FinishReport should be nil without StartReport")
	}
}

func TestValidateRejectsBadReports(t *testing.T) {
	cases := []Report{
		{Schema: ReportSchema + 1, Experiment: "e", Scale: "small"},
		{Schema: ReportSchema, Scale: "small"},
		{Schema: ReportSchema, Experiment: "e"},
		{Schema: ReportSchema, Experiment: "e", Scale: "small", Rows: []Row{{}}},
	}
	for i, r := range cases {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestTimeBestMeteredWithoutRecording(t *testing.T) {
	d, met := TimeBestMetered(2, func() { time.Sleep(time.Millisecond) })
	if d < time.Millisecond/2 {
		t.Fatalf("duration = %v", d)
	}
	if met != nil {
		t.Fatalf("expected nil metrics outside recording, got %v", met)
	}
}
