package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Regression comparison of BENCH_*.json reports. Rows are paired by
// identity (experiment, engine, n, param); a pair whose new wall time
// exceeds the old by more than the threshold ratio is a regression.
// Only timed rows participate — counter-only rows (miss tables,
// theorem checks) are deterministic and compare equal or not at all.

// Delta is the wall-time comparison of one row identity across two
// reports.
type Delta struct {
	// Experiment, Engine, N, Param identify the row (see Row).
	Experiment string
	Engine     string
	N          int
	Param      string
	// Old and New are the two wall-clock measurements.
	Old, New time.Duration
	// Ratio is New/Old: 1.0 = unchanged, 2.0 = twice as slow.
	Ratio float64
}

// Key renders the row identity for display.
func (d Delta) Key() string {
	k := d.Experiment + "/" + d.Engine
	if d.N != 0 {
		k += fmt.Sprintf("/n=%d", d.N)
	}
	if d.Param != "" {
		k += "/" + d.Param
	}
	return k
}

type rowKey struct {
	engine string
	n      int
	param  string
}

// CompareReports pairs the timed rows of two same-experiment reports
// and returns their deltas, in row order of the new report. Rows
// present in only one report, or without wall-time measurements, are
// skipped (counter-only rows carry no timing signal).
func CompareReports(old, new *Report) []Delta {
	oldByKey := map[rowKey]Row{}
	for _, r := range old.Rows {
		if r.Wall > 0 {
			oldByKey[rowKey{r.Engine, r.N, r.Param}] = r
		}
	}
	var out []Delta
	for _, r := range new.Rows {
		if r.Wall <= 0 {
			continue
		}
		o, ok := oldByKey[rowKey{r.Engine, r.N, r.Param}]
		if !ok {
			continue
		}
		out = append(out, Delta{
			Experiment: new.Experiment,
			Engine:     r.Engine,
			N:          r.N,
			Param:      r.Param,
			Old:        o.Wall,
			New:        r.Wall,
			Ratio:      float64(r.Wall) / float64(o.Wall),
		})
	}
	return out
}

// Regressions returns the deltas whose ratio exceeds threshold.
func Regressions(deltas []Delta, threshold float64) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Ratio > threshold {
			out = append(out, d)
		}
	}
	return out
}

// loadReportSet loads one comparison side: a single report file, or
// every BENCH_*.json inside a directory, keyed by experiment name.
func loadReportSet(path string) (map[string]*Report, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	paths := []string{path}
	if info.IsDir() {
		paths, err = filepath.Glob(filepath.Join(path, "BENCH_*.json"))
		if err != nil {
			return nil, err
		}
		if len(paths) == 0 {
			return nil, fmt.Errorf("bench: no BENCH_*.json files in %s", path)
		}
		sort.Strings(paths)
	}
	out := map[string]*Report{}
	for _, p := range paths {
		r, err := LoadReport(p)
		if err != nil {
			return nil, err
		}
		out[r.Experiment] = r
	}
	return out, nil
}

// ComparePaths loads two report files (or two directories of
// BENCH_*.json files), prints per-row wall-time deltas to w, and
// reports whether any row regressed past the threshold ratio. It is
// the engine of the `gep-bench compare` subcommand.
func ComparePaths(w io.Writer, oldPath, newPath string, threshold float64) (regressed bool, err error) {
	olds, err := loadReportSet(oldPath)
	if err != nil {
		return false, err
	}
	news, err := loadReportSet(newPath)
	if err != nil {
		return false, err
	}

	names := make([]string, 0, len(news))
	for name := range news {
		if _, ok := olds[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return false, fmt.Errorf("bench: the two sides share no experiments")
	}

	var t Table
	t.Header("row", "old", "new", "ratio", "verdict")
	nRegressed, nCompared := 0, 0
	for _, name := range names {
		o, n := olds[name], news[name]
		if !sameHost(o.Host, n.Host) {
			fmt.Fprintf(w, "note: %s measured on different hosts (old %s/%s go %s, new %s/%s go %s) — deltas may reflect the machine, not the code\n",
				name, o.Host.OS, o.Host.Arch, o.Host.GoVersion, n.Host.OS, n.Host.Arch, n.Host.GoVersion)
		}
		for _, d := range CompareReports(o, n) {
			nCompared++
			verdict := "ok"
			switch {
			case d.Ratio > threshold:
				verdict = "REGRESSED"
				nRegressed++
			case d.Ratio < 1/threshold:
				verdict = "improved"
			}
			t.Row(d.Key(), d.Old, d.New, d.Ratio, verdict)
		}
	}
	if _, err := t.WriteTo(w); err != nil {
		return false, err
	}
	fmt.Fprintf(w, "\n%d rows compared, %d regressed (threshold %.2fx)\n", nCompared, nRegressed, threshold)
	return nRegressed > 0, nil
}

// sameHost reports whether two report headers describe the same
// machine. PeakGFLOPS is deliberately excluded: it is re-calibrated
// on every run and jitters a few percent even on identical hardware.
func sameHost(a, b HostInfo) bool {
	return a.GoVersion == b.GoVersion && a.OS == b.OS &&
		a.Arch == b.Arch && a.CPUs == b.CPUs
}
