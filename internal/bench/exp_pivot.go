package bench

import (
	"fmt"
	"io"
	"math"
	"runtime"

	"gep/internal/linalg"
	"gep/internal/matrix"
	"gep/internal/par"
	"gep/internal/sched"
)

func init() {
	Register(Experiment{
		Name:  "pivot",
		Title: "Tournament-pivoted CALU: adversarial residual oracle, p-scaling, simulated communication vs the near-optimal bound",
		Run:   runPivot,
	})
}

// runPivot measures the communication-avoiding pivoted LU
// (linalg.FactorCA) in three parts:
//
//  1. Residual oracle on the shared adversarial fixtures
//     (linalg.Adversarial): the separating fixtures must show the
//     unpivoted I-GEP path diverging (residual > 1e-3 or non-finite)
//     while FactorCA stays ≤ 1e-10 — ROADMAP item 4's acceptance.
//  2. Wall/GFLOPS scaling of FactorCAParallel at p = 1..8.
//  3. Simulated per-processor communication volume of the pivoted
//     block schedule (sched.SimulateCALU) for p ∈ {1,2,4,8} and 2.5D
//     replication c ∈ {1,2,4}, against the Kwasniewski et al. lower
//     bound n³/(P·√M); the acceptance band is a factor of 4.
func runPivot(w io.Writer, scale Scale) error {
	oracleN, sweepN, commN := 64, 256, 2048
	reps := 1
	if scale == Full {
		oracleN, sweepN, commN, reps = 128, 1024, 8192, 2
	}

	// Part 1: adversarial residual oracle, pivoted vs unpivoted.
	fmt.Fprintf(w, "Adversarial residual oracle (n=%d):\n\n", oracleN)
	var t1 Table
	t1.Header("fixture", "separates", "FactorCA residual", "unpivoted residual")
	for _, fix := range linalg.Adversarial() {
		n := oracleN
		if fix.Name == "wilkinson" {
			// Growth 2^(n-1) exhausts float64 beyond n≈50 for every
			// pivot order; measure it where the comparison is exact.
			n = 32
		}
		a := fix.Make(n)
		b := make([]float64, n)
		for i := range b {
			b[i] = 1 + float64(i%7)
		}
		var pivoted float64
		status := "ok"
		f, err := linalg.FactorCA(a)
		if err != nil {
			pivoted = math.Inf(1)
			status = "factor-failed"
		} else {
			pivoted = linalg.Residual(a, f.Solve(b), b)
		}
		unpivoted := unpivotedLUResidual(a, b)
		if fix.Separates {
			if !(pivoted <= 1e-10) || unpivoted <= 1e-3 {
				status = "FAIL"
			}
		}
		Record(Row{
			Engine: "oracle/" + fix.Name,
			N:      n,
			Status: status,
			Extra: map[string]float64{
				// JSON has no Inf/NaN: clamp divergent residuals to a
				// finite sentinel (the "diverged" flag carries the bit).
				"residual_pivoted":   jsonFinite(pivoted),
				"residual_unpivoted": jsonFinite(unpivoted),
				"diverged_unpivoted": boolToFloat(math.IsInf(unpivoted, 0) || math.IsNaN(unpivoted)),
				"separates":          boolToFloat(fix.Separates),
			},
		})
		t1.Row(fix.Name, fix.Separates, pivoted, unpivoted)
	}
	if _, err := t1.WriteTo(w); err != nil {
		return err
	}

	// Part 2: p-sweep of the parallel factorization.
	fmt.Fprintf(w, "\nFactorCAParallel scaling (n=%d, panel=32):\n\n", sweepN)
	prevProcs := runtime.GOMAXPROCS(0)
	defer func() {
		runtime.GOMAXPROCS(prevProcs)
		par.ResetWorkers()
	}()
	in := randDense(sweepN, 17)
	flops := linalg.GEFlops(sweepN)
	peak := PeakGFLOPS()
	var t2 Table
	t2.Header("p", "wall", "GFLOPS", "speedup")
	var wall1 float64
	for p := 1; p <= 8; p++ {
		runtime.GOMAXPROCS(p)
		par.SetWorkers(p)
		var ferr error
		d, met := TimeBestMetered(reps, func() {
			_, ferr = linalg.FactorCAParallel(in)
		})
		if ferr != nil {
			return fmt.Errorf("pivot: FactorCAParallel(n=%d, p=%d): %w", sweepN, p, ferr)
		}
		g := GFLOPS(flops, d)
		if p == 1 {
			wall1 = float64(d)
		}
		speedup := wall1 / float64(d)
		Record(Row{
			Engine:  "FactorCA",
			N:       sweepN,
			Param:   fmt.Sprintf("p=%d", p),
			Workers: p,
			Wall:    d,
			GFLOPS:  g,
			PctPeak: 100 * g / peak,
			Metrics: met,
			Extra:   map[string]float64{"speedup_wall": speedup},
		})
		t2.Row(p, d, g, speedup)
	}
	if _, err := t2.WriteTo(w); err != nil {
		return err
	}

	// Part 3: simulated communication volume vs the near-optimal bound.
	fmt.Fprintf(w, "\nSimulated per-processor communication (n=%d, panel=32), words:\n", commN)
	fmt.Fprintf(w, "bound = n^3/(P*sqrt(M)) at the 2.5D working set M = c*n^2/P;\n")
	fmt.Fprintf(w, "acceptance: total within 4x of the bound (and swaps/reduce show\n")
	fmt.Fprintf(w, "the replication tradeoff).\n\n")
	var t3 Table
	t3.Header("p", "c", "tournament", "bcast", "swaps", "reduce", "total", "bound", "ratio")
	for _, p := range []int{1, 2, 4, 8} {
		for _, c := range []int{1, 2, 4} {
			if p%c != 0 {
				continue
			}
			cfg := sched.CALUConfig{N: commN, Panel: 32, P: p, C: c}
			v, err := sched.SimulateCALU(cfg)
			if err != nil {
				return err
			}
			bound := sched.LUCommLowerBound(commN, p, cfg.Memory())
			ratio := 0.0
			status := "ok"
			if bound > 0 && v.Total() > 0 {
				ratio = v.Total() / bound
				if ratio > 4 {
					status = "FAIL"
				}
			}
			Record(Row{
				Engine: "CALU-sim",
				N:      commN,
				Param:  fmt.Sprintf("p=%d,c=%d", p, c),
				Status: status,
				Extra: map[string]float64{
					"vol_tournament": v.Tournament,
					"vol_bcast":      v.PanelBcast + v.TrailingU,
					"vol_swap":       v.RowSwap,
					"vol_reduce":     v.Reduce,
					"vol_total":      v.Total(),
					"bound":          bound,
					"bound_ratio":    ratio,
				},
			})
			t3.Row(p, c, v.Tournament, v.PanelBcast+v.TrailingU, v.RowSwap, v.Reduce, v.Total(), bound, ratio)
		}
	}
	if _, err := t3.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nExpected: the separating fixtures (tinypivot, signalt) diverge without")
	fmt.Fprintln(w, "pivoting and solve to machine precision with it; simulated volume stays")
	fmt.Fprintln(w, "within 4x of the near-optimal bound, with broadcasts shrinking as c grows")
	fmt.Fprintln(w, "while swap/reduce traffic records the replication price.")
	return nil
}

// unpivotedLUResidual runs the pivot-free I-GEP factorization
// (padding to a power of two when needed) and returns the solve
// residual, +Inf when the factors went non-finite.
func unpivotedLUResidual(a *matrix.Dense[float64], b []float64) float64 {
	n := a.N()
	work := a.Clone()
	padded := work
	if !matrix.IsPow2(n) {
		padded = matrix.PadPow2Diag(work, 0, 1)
	}
	linalg.LUIGEP(padded, 32)
	lu := padded
	if padded.N() != n {
		lu = matrix.Crop(padded, n)
	}
	x := linalg.SolveLU(lu, b)
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return math.Inf(1)
		}
	}
	r := linalg.Residual(a, x, b)
	if math.IsNaN(r) {
		return math.Inf(1)
	}
	return r
}

func boolToFloat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// jsonFinite clamps non-finite measurements to a large finite
// sentinel, since encoding/json rejects Inf and NaN.
func jsonFinite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 1e300
	}
	return v
}
