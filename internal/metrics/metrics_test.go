package metrics

import (
	"encoding/json"
	"expvar"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	c := New("test.basic")
	if c.Name() != "test.basic" {
		t.Fatalf("name = %q", c.Name())
	}
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("value = %d, want 42", got)
	}
	if got := Snapshot()["test.basic"]; got != 42 {
		t.Fatalf("snapshot = %d, want 42", got)
	}
}

func TestDuplicatePanics(t *testing.T) {
	New("test.dup")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	New("test.dup")
}

func TestDiff(t *testing.T) {
	before := map[string]int64{"a": 10, "b": 5}
	after := map[string]int64{"a": 10, "b": 9, "c": 3}
	d := Diff(before, after)
	if len(d) != 2 || d["b"] != 4 || d["c"] != 3 {
		t.Fatalf("diff = %v", d)
	}
	if _, ok := d["a"]; ok {
		t.Fatal("zero delta should be omitted")
	}
}

func TestResetAndNames(t *testing.T) {
	c := New("test.reset")
	c.Add(7)
	Reset()
	if c.Value() != 0 {
		t.Fatalf("after reset: %d", c.Value())
	}
	found := false
	for _, n := range Names() {
		if n == "test.reset" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() missing test.reset: %v", Names())
	}
}

func TestConcurrentAdds(t *testing.T) {
	c := New("test.concurrent")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("concurrent value = %d, want 8000", c.Value())
	}
}

func TestExpvarPublished(t *testing.T) {
	v := expvar.Get("gep.metrics")
	if v == nil {
		t.Fatal("gep.metrics not published")
	}
	var m map[string]int64
	if err := json.Unmarshal([]byte(v.String()), &m); err != nil {
		t.Fatalf("expvar value not JSON: %v", err)
	}
}
