// Package metrics provides the cheap named counters behind the
// harness telemetry: every engine records what it actually did — forks
// handed to the worker pool, fast-path vs generic base-case kernel
// dispatches, pool submissions vs inline runs, simulated cache misses —
// and the benchmark harness (internal/bench) snapshots the counters
// around each experiment so the deltas land in the BENCH_*.json
// reports next to the wall-clock numbers.
//
// Counters live in registries. The package-level functions (New,
// Snapshot, Reset, Names) operate on the process-wide Default
// registry, which is what the engines' package-var counters join and
// what /debug/vars publishes as "gep.metrics". NewRegistry creates an
// additional isolated scope: an instantiable par.Runtime gives each
// scope its own "par.*" counters, which is how the job server
// (internal/serve) reports per-job scheduler activity next to the
// process-wide aggregate.
//
// Design constraints, in order:
//
//  1. Hot-path cost: one uncontended atomic add, zero allocation, no
//     locks. Counters are incremented from inside parallel recursions
//     (internal/core, internal/par), so anything heavier would distort
//     the very numbers the harness measures. The registry mutex guards
//     only registration and Snapshot, which happen per process / per
//     experiment, never per update.
//  2. Queryability: Snapshot returns all counters by name, Diff turns
//     two snapshots into per-counter deltas, and the Default registry
//     is published through expvar as "gep.metrics" so a live process
//     (cmd/gep-server, or anything started with -trace) exposes the
//     counters on /debug/vars without extra wiring.
//
// Counter names are dotted paths, "<package>.<event>", e.g.
// "core.kernel.flat" or "par.spawn.inline"; the authoritative list
// lives with the packages that own the events (internal/par/par.go,
// internal/core/metrics.go, internal/cachesim/cache.go).
package metrics

import (
	"expvar"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event counter. The zero value
// is unusable; obtain counters from a registry (New or
// Registry.Counter) so they can be snapshotted.
type Counter struct {
	name string
	v    atomic.Int64
}

// Name returns the registered dotted name.
func (c *Counter) Name() string { return c.name }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be any int64; counters conventionally only grow).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Registry is one isolated scope of named counters. The process-wide
// Default registry holds the engines' aggregate counters; additional
// registries (NewRegistry) scope the same counter names to one
// par.Runtime, so a multi-tenant process can attribute scheduler
// activity per job and still read the aggregate from Default.
type Registry struct {
	name string
	mu   sync.Mutex
	m    map[string]*Counter
}

// NewRegistry returns an empty registry. name labels the scope for
// display (e.g. a job id); it does not prefix counter names.
func NewRegistry(name string) *Registry {
	return &Registry{name: name, m: map[string]*Counter{}}
}

// Name returns the scope label passed to NewRegistry ("" for Default).
func (r *Registry) Name() string { return r.name }

// New registers and returns a counter with the given dotted name.
// Registration normally happens in package var blocks; duplicate names
// panic because they would make Snapshot ambiguous.
func (r *Registry) New(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[name]; dup {
		panic("metrics: duplicate counter " + name)
	}
	c := &Counter{name: name}
	r.m[name] = c
	return c
}

// Counter returns the counter with the given name, registering it
// first if needed. It is the get-or-create variant of New for callers
// that legitimately re-resolve the same name — the par runtime reuses
// its per-worker counters across SetWorkers rebuilds.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.m[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.m[name] = c
	return c
}

// Snapshot returns the current value of every counter in the registry,
// keyed by name. The map is a copy; mutating it does not affect the
// counters.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.m))
	for name, c := range r.m {
		out[name] = c.Value()
	}
	return out
}

// Reset zeroes every counter in the registry. It exists for tests and
// for long-lived processes that want per-phase absolute values; the
// bench harness prefers Snapshot+Diff, which needs no reset and is
// safe under concurrent counting.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.m {
		c.v.Store(0)
	}
}

// Names returns the registry's counter names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.m))
	for name := range r.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Default is the process-wide registry: every package-var counter in
// the engines lives here, and expvar publishes it as "gep.metrics".
var Default = NewRegistry("")

// New registers and returns a counter in the Default registry;
// duplicate names panic.
func New(name string) *Counter { return Default.New(name) }

// Snapshot returns the current value of every counter in the Default
// registry, keyed by name.
func Snapshot() map[string]int64 { return Default.Snapshot() }

// Diff returns after[k] - before[k] for every key of after, omitting
// zero deltas (and counters that did not yet exist in before are
// reported from zero). The result is what a BENCH_*.json report stores
// per experiment: only the counters the experiment actually moved.
func Diff(before, after map[string]int64) map[string]int64 {
	out := map[string]int64{}
	for name, v := range after {
		if d := v - before[name]; d != 0 {
			out[name] = d
		}
	}
	return out
}

// Reset zeroes every counter in the Default registry.
func Reset() { Default.Reset() }

// Names returns the Default registry's counter names, sorted.
func Names() []string { return Default.Names() }

func init() {
	// One expvar map for the whole Default registry: /debug/vars shows
	// {"gep.metrics": {"core.kernel.flat": ..., ...}}.
	expvar.Publish("gep.metrics", expvar.Func(func() any { return Snapshot() }))
}
