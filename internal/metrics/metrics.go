// Package metrics provides the cheap global counters behind the
// harness telemetry: every engine records what it actually did — forks
// handed to the worker pool, fast-path vs generic base-case kernel
// dispatches, pool submissions vs inline runs, simulated cache misses —
// and the benchmark harness (internal/bench) snapshots the counters
// around each experiment so the deltas land in the BENCH_*.json
// reports next to the wall-clock numbers.
//
// Design constraints, in order:
//
//  1. Hot-path cost: one uncontended atomic add, zero allocation, no
//     locks. Counters are incremented from inside parallel recursions
//     (internal/core, internal/par), so anything heavier would distort
//     the very numbers the harness measures. The package mutex guards
//     only registration and Snapshot, which happen per process / per
//     experiment, never per update.
//  2. Queryability: Snapshot returns all counters by name, Diff turns
//     two snapshots into per-counter deltas, and the whole registry is
//     published through expvar as "gep.metrics" so a live process
//     (e.g. one started with -trace or a future server mode) exposes
//     the counters on /debug/vars without extra wiring.
//
// Counter names are dotted paths, "<package>.<event>", e.g.
// "core.kernel.flat" or "par.spawn.inline"; the authoritative list
// lives with the packages that own the events (internal/par/par.go,
// internal/core/metrics.go, internal/cachesim/cache.go).
package metrics

import (
	"expvar"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event counter. The zero value
// is unusable; obtain counters with New so they join the registry.
type Counter struct {
	name string
	v    atomic.Int64
}

// Name returns the registered dotted name.
func (c *Counter) Name() string { return c.name }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be any int64; counters conventionally only grow).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

var (
	mu       sync.Mutex
	registry = map[string]*Counter{}
)

// New registers and returns a counter with the given dotted name.
// Registration normally happens in package var blocks; duplicate names
// panic because they would make Snapshot ambiguous.
func New(name string) *Counter {
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[name]; dup {
		panic("metrics: duplicate counter " + name)
	}
	c := &Counter{name: name}
	registry[name] = c
	return c
}

// Snapshot returns the current value of every registered counter,
// keyed by name. The map is a copy; mutating it does not affect the
// counters.
func Snapshot() map[string]int64 {
	mu.Lock()
	defer mu.Unlock()
	out := make(map[string]int64, len(registry))
	for name, c := range registry {
		out[name] = c.Value()
	}
	return out
}

// Diff returns after[k] - before[k] for every key of after, omitting
// zero deltas (and counters that did not yet exist in before are
// reported from zero). The result is what a BENCH_*.json report stores
// per experiment: only the counters the experiment actually moved.
func Diff(before, after map[string]int64) map[string]int64 {
	out := map[string]int64{}
	for name, v := range after {
		if d := v - before[name]; d != 0 {
			out[name] = d
		}
	}
	return out
}

// Reset zeroes every registered counter. It exists for tests and for
// long-lived processes that want per-phase absolute values; the bench
// harness prefers Snapshot+Diff, which needs no reset and is safe
// under concurrent counting.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for _, c := range registry {
		c.v.Store(0)
	}
}

// Names returns the registered counter names, sorted.
func Names() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	// One expvar map for the whole registry: /debug/vars shows
	// {"gep.metrics": {"core.kernel.flat": ..., ...}}.
	expvar.Publish("gep.metrics", expvar.Func(func() any { return Snapshot() }))
}
