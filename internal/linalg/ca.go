package linalg

import (
	"fmt"
	"math"

	"gep/internal/core"
	"gep/internal/matrix"
	"gep/internal/metrics"
	"gep/internal/par"
)

// Communication-avoiding LU with tournament pivoting (CALU), in the
// style of Kwasniewski et al.'s near-I/O-optimal LU and the
// Grigori/Demmel/Xiang TSLU panel factorization. Pivoting's
// data-dependent row exchanges fall outside GEP's fixed update set, so
// the paper's engines are pivot-free; FactorCA confines the
// data-dependent part to narrow column panels — each panel's pivot
// rows are chosen by a reduction tree of small partial-pivoted
// factorizations (the "tournament") — and hands the O(n³) bulk of the
// work, the Schur-complement trailing update, back to the
// cache-oblivious fused kernel tier (core.DisjointBlock with the
// MulSub op), so the dominant cost keeps the paper's I/O behavior and
// its counters. See DESIGN.md §17.
//
// The result is the same LUP (P·A = L·U) that Factor produces, so
// Solve/Det and every consumer work unchanged; the pivot sequence
// differs from exact partial pivoting but carries the CALU stability
// guarantee (growth bounded by 2^(b·depth) in theory, GEPP-like in
// practice).

// Tournament-pivoting telemetry; see docs/OPERATIONS.md for the
// counter inventory.
var (
	pivotPanels    = metrics.New("linalg.pivot.panels")
	pivotMatches   = metrics.New("linalg.pivot.tournament.matches")
	pivotSwaps     = metrics.New("linalg.pivot.swaps")
	pivotTrailing  = metrics.New("linalg.pivot.trailing.tiles")
	pivotFallbacks = metrics.New("linalg.pivot.trailing.edge")
)

// caCfg carries the tunables of FactorCA.
type caCfg struct {
	panel int // block-column width b (pivot rows chosen per panel)
	grain int // fork cutoff (rows/cols) for the parallel recursions
}

// CAOption configures FactorCA; see WithPanelWidth and WithCAGrain.
type CAOption func(*caCfg)

// WithPanelWidth sets the block-column width b: pivot rows are chosen
// b at a time and the trailing update runs on b-deep Schur tiles.
// Multiples of 4 keep the register-tiled micro-kernel eligible; the
// default is 32.
func WithPanelWidth(b int) CAOption {
	return func(c *caCfg) {
		if b > 0 {
			c.panel = b
		}
	}
}

// WithCAGrain sets the side below which the parallel recursions stop
// forking (default 128); it is ignored by the serial FactorCA.
func WithCAGrain(g int) CAOption {
	return func(c *caCfg) {
		if g > 0 {
			c.grain = g
		}
	}
}

// FactorCA computes P·A = L·U with tournament pivoting; a is not
// modified. It returns ErrSingular (wrapped, with the column) when a
// pivot is negligible against its column's magnitude. Any side length
// is accepted.
func FactorCA(a *matrix.Dense[float64], opts ...CAOption) (*LUP, error) {
	return factorCAOn(nil, a, false, opts)
}

// FactorCAParallel is FactorCA with the tournament, the row-panel
// update and the trailing Schur update forked on the default
// work-stealing runtime.
func FactorCAParallel(a *matrix.Dense[float64], opts ...CAOption) (*LUP, error) {
	return FactorCAParallelOn(nil, a, opts...)
}

// FactorCAParallelOn is FactorCAParallel with all forks confined to rt
// (nil = the default runtime).
func FactorCAParallelOn(rt *par.Runtime, a *matrix.Dense[float64], opts ...CAOption) (*LUP, error) {
	return factorCAOn(par.Or(rt), a, true, opts)
}

func factorCAOn(rt *par.Runtime, a *matrix.Dense[float64], parallel bool, opts []CAOption) (*LUP, error) {
	cfg := caCfg{panel: 32, grain: 128}
	for _, o := range opts {
		o(&cfg)
	}
	n := a.N()
	lu := a.Clone()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	r := &caRun{lu: lu, perm: perm, n: n, cfg: cfg}
	if parallel {
		r.rt = rt
	}
	if err := r.factor(); err != nil {
		return nil, err
	}
	return &LUP{LU: lu, Perm: perm, Swaps: r.swaps}, nil
}

// caRun is the per-factorization state of the CALU driver.
type caRun struct {
	lu    *matrix.Dense[float64]
	perm  []int
	n     int
	cfg   caCfg
	rt    *par.Runtime // nil = serial
	swaps int
}

func (r *caRun) factor() error {
	n, b := r.n, r.cfg.panel
	for kk := 0; kk < n; kk += b {
		w := b
		if kk+w > n {
			w = n - kk
		}
		pivotPanels.Inc()
		// 1. Tournament: choose the panel's w pivot rows by the
		// reduction tree over the current (already-updated) panel.
		sel := r.tourney(kk, w, kk, n)
		// 2. Apply the row exchanges across the full matrix width, so
		// L of earlier panels and the pending right part stay
		// consistent with one global permutation.
		for t := 0; t < w; t++ {
			dst, src := kk+t, sel[t]
			if dst == src {
				continue
			}
			rd, rs := r.lu.Row(dst), r.lu.Row(src)
			for j := 0; j < n; j++ {
				rd[j], rs[j] = rs[j], rd[j]
			}
			r.perm[dst], r.perm[src] = r.perm[src], r.perm[dst]
			r.swaps++
			pivotSwaps.Inc()
			// A later winner displaced to src keeps being reachable.
			for u := t + 1; u < w; u++ {
				if sel[u] == dst {
					sel[u] = src
				}
			}
		}
		// 3. Panel factorization, now pivot-free: the tournament
		// winners sit on the diagonal.
		if err := r.panelLU(kk, w); err != nil {
			return err
		}
		// 4. Row-panel update: U12 ← L11⁻¹·A12 (unit lower triangle).
		r.rowPanel(kk, w)
		// 5. Trailing Schur update A22 −= L21·U12 through the fused
		// cache-oblivious kernel tier.
		r.trailing(kk+w, n, kk+w, n, kk, w)
	}
	return nil
}

// tourney selects w pivot rows for the panel columns [kk, kk+w) from
// rows [lo, hi): blocks of 2w rows run a local partial-pivoted
// factorization and their winners merge pairwise up the tree — the
// CALU reduction. Independent subtrees fork on the runtime.
func (r *caRun) tourney(kk, w, lo, hi int) []int {
	if hi-lo <= 2*w {
		cand := make([]int, hi-lo)
		for i := range cand {
			cand[i] = lo + i
		}
		return pickWinners(r.lu, kk, w, cand)
	}
	// Split at a multiple of 2w so every leaf but the last is a full
	// block; the recursion depth is the tournament-tree depth.
	blocks := (hi - lo + 2*w - 1) / (2 * w)
	mid := lo + (blocks/2)*2*w
	var left, right []int
	if r.rt != nil && hi-lo > 8*w {
		r.rt.Do(
			func() { left = r.tourney(kk, w, lo, mid) },
			func() { right = r.tourney(kk, w, mid, hi) },
		)
	} else {
		left = r.tourney(kk, w, lo, mid)
		right = r.tourney(kk, w, mid, hi)
	}
	pivotMatches.Inc()
	merged := make([]int, 0, len(left)+len(right))
	merged = append(merged, left...)
	merged = append(merged, right...)
	return pickWinners(r.lu, kk, w, merged)
}

// pickWinners plays one tournament match: it copies the candidate
// rows' panel columns into a scratch block, runs a partial-pivoted
// elimination on the copy, and returns the first min(w, len(cand))
// rows of the resulting pivot order — the rows a partial-pivoted
// factorization of just these candidates would have promoted. The
// matrix itself is never modified here.
func pickWinners(lu *matrix.Dense[float64], kk, w int, cand []int) []int {
	m := len(cand)
	if m <= w {
		out := make([]int, m)
		copy(out, cand)
		return out
	}
	s := matrix.New[float64](m, w)
	for i, row := range cand {
		copy(s.Row(i), lu.Row(row)[kk:kk+w])
	}
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	for k := 0; k < w; k++ {
		p, best := k, abs(s.At(k, k))
		for i := k + 1; i < m; i++ {
			if v := abs(s.At(i, k)); v > best {
				p, best = i, v
			}
		}
		if best == 0 || math.IsNaN(best) {
			// Singular (or poisoned) column in this match: keep the
			// current order and move on; the panel factorization's
			// threshold check reports the singularity with the column.
			continue
		}
		if p != k {
			rp, rk := s.Row(p), s.Row(k)
			for j := 0; j < w; j++ {
				rp[j], rk[j] = rk[j], rp[j]
			}
			order[p], order[k] = order[k], order[p]
		}
		ck := s.Row(k)
		inv := 1 / ck[k]
		for i := k + 1; i < m; i++ {
			ci := s.Row(i)
			mult := ci[k] * inv
			for j := k + 1; j < w; j++ {
				ci[j] -= mult * ck[j]
			}
		}
	}
	winners := make([]int, w)
	for t := 0; t < w; t++ {
		winners[t] = cand[order[t]]
	}
	return winners
}

// panelLU factors the column panel [kk, n) × [kk, kk+w) in place with
// the tournament's pivot rows already on the diagonal. Pivots are
// checked against the threshold-aware singularity test (ErrSingular,
// scaled by the column's magnitude), which also catches non-finite
// pivots.
func (r *caRun) panelLU(kk, w int) error {
	n := r.lu.N()
	for k := kk; k < kk+w; k++ {
		ck := r.lu.Row(k)
		piv := ck[k]
		colMax := abs(piv)
		for i := k + 1; i < n; i++ {
			if v := abs(r.lu.At(i, k)); v > colMax {
				colMax = v
			}
		}
		if !(abs(piv) > pivotTol(n, colMax)) || math.IsInf(piv, 0) {
			return singularAt(k)
		}
		inv := 1 / piv
		for i := k + 1; i < n; i++ {
			ci := r.lu.Row(i)
			m := ci[k] * inv
			ci[k] = m
			for j := k + 1; j < kk+w; j++ {
				ci[j] -= m * ck[j]
			}
		}
	}
	return nil
}

// rowPanel applies L11's eliminations to the row panel A12 (forward
// substitution with the unit lower triangle), forking disjoint column
// ranges on the runtime.
func (r *caRun) rowPanel(kk, w int) {
	n := r.lu.N()
	var apply func(j0, j1 int)
	apply = func(j0, j1 int) {
		if r.rt != nil && j1-j0 > r.cfg.grain {
			h := j0 + (j1-j0)/2
			r.rt.Do(func() { apply(j0, h) }, func() { apply(h, j1) })
			return
		}
		for k := kk; k < kk+w; k++ {
			ck := r.lu.Row(k)
			for i := k + 1; i < kk+w; i++ {
				ci := r.lu.Row(i)
				m := ci[k]
				for j := j0; j < j1; j++ {
					ci[j] -= m * ck[j]
				}
			}
		}
	}
	apply(kk+w, n)
}

// trailing runs the Schur-complement update
// C[i0:i1, j0:j1] −= L[i0:i1, k0:k0+w] · U[k0:k0+w, j0:j1]
// as a cache-oblivious recursion over disjoint output tiles. Full w×w
// leaves dispatch core.DisjointBlock with the fused MulSub op — the
// same kernel tier (and counters) as the pivot-free engines — and the
// ragged edges of non-multiple sides fall back to the register-blocked
// rectangular loop.
func (r *caRun) trailing(i0, i1, j0, j1, k0, w int) {
	m, q := i1-i0, j1-j0
	if m <= 0 || q <= 0 {
		return
	}
	if m <= w && q <= w {
		if m == w && q == w {
			if data, stride, ok := matrix.Flat[float64](r.lu); ok {
				pivotTrailing.Inc()
				core.DisjointBlock[float64](core.MulSub[float64]{}, core.Full{},
					data[i0*stride+j0:], stride,
					data[i0*stride+k0:], stride,
					data[k0*stride+j0:], stride,
					data[k0*stride+k0:], stride, w)
				return
			}
		}
		pivotFallbacks.Inc()
		negMulBlock(r.lu, i0, i1, k0, k0+w, j0, j1)
		return
	}
	// Halve the longer axis at a multiple of w so interior leaves stay
	// exactly w×w; both halves write disjoint C tiles, so they fork.
	fork := func(size int, f1, f2 func()) {
		if r.rt != nil && size > r.cfg.grain {
			r.rt.Do(f1, f2)
		} else {
			f1()
			f2()
		}
	}
	if m >= q {
		half := (m / 2 / w) * w
		if half == 0 {
			half = w
		}
		h := i0 + half
		fork(m,
			func() { r.trailing(i0, h, j0, j1, k0, w) },
			func() { r.trailing(h, i1, j0, j1, k0, w) })
	} else {
		half := (q / 2 / w) * w
		if half == 0 {
			half = w
		}
		h := j0 + half
		fork(q,
			func() { r.trailing(i0, i1, j0, h, k0, w) },
			func() { r.trailing(i0, i1, h, j1, k0, w) })
	}
}

// machEps is the float64 unit roundoff (2⁻⁵²).
const machEps = 0x1p-52

// pivotTol is the threshold below which a pivot counts as singular:
// scaled by the column's max magnitude, so a denormal pivot in a
// well-scaled column is rejected instead of producing Inf factors,
// while a uniformly tiny (but well-conditioned) matrix still factors.
func pivotTol(n int, colMax float64) float64 {
	return float64(n) * machEps * colMax
}

// singularAt wraps ErrSingular with the offending column.
func singularAt(k int) error {
	return fmt.Errorf("linalg: singular at column %d: %w", k, ErrSingular)
}
