package linalg_test

import (
	"fmt"

	"gep/internal/linalg"
	"gep/internal/matrix"
)

func ExampleLUIGEP() {
	a := matrix.FromRows([][]float64{
		{4, 2},
		{2, 5},
	})
	linalg.LUIGEP(a, 1)
	// Packed factors: L21 = 0.5, U = [[4,2],[0,4]].
	fmt.Println(a.At(1, 0), a.At(1, 1))
	// Output: 0.5 4
}

func ExampleSolveLU() {
	a := matrix.FromRows([][]float64{
		{4, 2},
		{2, 5},
	})
	lu := a.Clone()
	linalg.LUIGEP(lu, 1)
	x := linalg.SolveLU(lu, []float64{10, 9})
	fmt.Printf("%.0f %.0f\n", x[0], x[1])
	// Output: 2 1
}

func ExampleDeterminant() {
	a := matrix.FromRows([][]float64{
		{3, 1},
		{1, 3},
	})
	fmt.Printf("%.0f\n", linalg.Determinant(a))
	// Output: 8
}

func ExampleFactor() {
	// Needs pivoting: zero leading pivot.
	a := matrix.FromRows([][]float64{
		{0, 1},
		{2, 0},
	})
	f, err := linalg.Factor(a)
	if err != nil {
		fmt.Println(err)
		return
	}
	x := f.Solve([]float64{3, 4})
	fmt.Printf("%.0f %.0f\n", x[0], x[1])
	// Output: 2 3
}

func ExampleMulIGEP() {
	a := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	b := matrix.FromRows([][]float64{{5, 6}, {7, 8}})
	c := matrix.NewSquare[float64](2)
	linalg.MulIGEP(c, a, b, 1)
	fmt.Println(c.At(0, 0), c.At(1, 1))
	// Output: 19 50
}
