package linalg

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"gep/internal/matrix"
	"gep/internal/par"
)

// lupResidual returns max |(P·A − L·U)[i][j]| / max |A| — the
// permutation-applied reconstruction error of a pivoted factorization,
// the metric FuzzFactorCAVsFactor compares across pivot strategies.
func lupResidual(a *matrix.Dense[float64], f *LUP) float64 {
	n := a.N()
	scale := maxAbs(a)
	if scale == 0 {
		scale = 1
	}
	var worst float64
	for i := 0; i < n; i++ {
		pa := a.Row(f.Perm[i])
		for j := 0; j < n; j++ {
			// (L·U)[i][j] = Σ_{k ≤ min(i,j)} L[i][k]·U[k][j] with
			// L[i][i] = 1 implicit.
			s := 0.0
			if i <= j {
				for k := 0; k < i; k++ {
					s += f.LU.At(i, k) * f.LU.At(k, j)
				}
				s += f.LU.At(i, j)
			} else {
				for k := 0; k < j; k++ {
					s += f.LU.At(i, k) * f.LU.At(k, j)
				}
				s += f.LU.At(i, j) * f.LU.At(j, j)
			}
			if d := math.Abs(pa[j] - s); d > worst {
				worst = d
			}
		}
	}
	return worst / scale
}

// unpivotedResidual factors a clone with LUIGEP (padding to a power of
// two when needed) and returns the solve residual, +Inf when the
// factors are non-finite — the "what would the paper's pivot-free path
// have done" probe of the adversarial oracle.
func unpivotedResidual(a *matrix.Dense[float64], b []float64) float64 {
	n := a.N()
	work := a.Clone()
	padded := work
	if !matrix.IsPow2(n) {
		padded = matrix.PadPow2Diag(work, 0, 1)
	}
	LUIGEP(padded, 32)
	lu := padded
	if padded.N() != n {
		lu = matrix.Crop(padded, n)
	}
	x := SolveLU(lu, b)
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return math.Inf(1)
		}
	}
	r := Residual(a, x, b)
	if math.IsNaN(r) {
		return math.Inf(1)
	}
	return r
}

func TestFactorCASolvesGeneralMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(120))
	for _, n := range []int{1, 2, 5, 16, 33, 64, 100} {
		a := matrix.NewSquare[float64](n)
		a.Apply(func(i, j int, _ float64) float64 { return rng.NormFloat64() })
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := MatVec(a, x)
		f, err := FactorCA(a, WithPanelWidth(8))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got := f.Solve(b)
		if r := Residual(a, got, b); r > 1e-8 {
			t.Fatalf("n=%d: residual %g", n, r)
		}
		if r := lupResidual(a, f); r > 1e-12 {
			t.Fatalf("n=%d: reconstruction residual %g", n, r)
		}
	}
}

// TestFactorCAPanelWidths: the factorization must be correct for any
// panel width, including width 1 (pure partial pivoting via trivial
// tournaments) and widths larger than the matrix.
func TestFactorCAPanelWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	const n = 48
	a := matrix.NewSquare[float64](n)
	a.Apply(func(i, j int, _ float64) float64 { return rng.NormFloat64() })
	for _, w := range []int{1, 3, 4, 8, 32, 100} {
		f, err := FactorCA(a, WithPanelWidth(w))
		if err != nil {
			t.Fatalf("panel=%d: %v", w, err)
		}
		if r := lupResidual(a, f); r > 1e-12 {
			t.Fatalf("panel=%d: reconstruction residual %g", w, r)
		}
	}
}

// TestFactorCAParallelMatchesSerial: the parallel recursions fork only
// across disjoint writes and reorder no arithmetic, so the factors,
// permutation and swap count must be bit-identical to the serial path.
func TestFactorCAParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	for _, n := range []int{64, 97, 128} {
		a := matrix.NewSquare[float64](n)
		a.Apply(func(i, j int, _ float64) float64 { return rng.NormFloat64() })
		want, err := FactorCA(a, WithPanelWidth(16))
		if err != nil {
			t.Fatal(err)
		}
		rt := par.NewRuntime(4)
		got, err := FactorCAParallelOn(rt, a, WithPanelWidth(16), WithCAGrain(16))
		rt.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !got.LU.EqualFunc(want.LU, func(x, y float64) bool { return x == y }) {
			t.Fatalf("n=%d: parallel factors differ from serial", n)
		}
		for i := range want.Perm {
			if want.Perm[i] != got.Perm[i] {
				t.Fatalf("n=%d: Perm[%d] = %d vs %d", n, i, got.Perm[i], want.Perm[i])
			}
		}
		if want.Swaps != got.Swaps {
			t.Fatalf("n=%d: swaps %d vs %d", n, got.Swaps, want.Swaps)
		}
	}
}

// TestFactorCAAdversarialOracle is the acceptance criterion: on the
// separating fixtures the unpivoted path diverges (residual > 1e-3 or
// non-finite) while FactorCA stays at machine precision (≤ 1e-10); on
// the remaining fixtures FactorCA must simply be accurate.
func TestFactorCAAdversarialOracle(t *testing.T) {
	for _, fix := range Adversarial() {
		n := 64
		if fix.Name == "wilkinson" {
			// Growth 2^(n-1) affects every pivot order; keep the
			// comparison in exact range.
			n = 32
		}
		a := fix.Make(n)
		b := make([]float64, n)
		for i := range b {
			b[i] = 1 + float64(i%7)
		}
		f, err := FactorCA(a)
		if err != nil {
			t.Fatalf("%s: FactorCA: %v", fix.Name, err)
		}
		x := f.Solve(b)
		pivoted := Residual(a, x, b)
		if fix.Separates {
			if pivoted > 1e-10 {
				t.Errorf("%s: pivoted residual %g > 1e-10", fix.Name, pivoted)
			}
			if unpiv := unpivotedResidual(a, b); unpiv <= 1e-3 {
				t.Errorf("%s: unpivoted residual %g did not diverge", fix.Name, unpiv)
			}
		} else {
			// Non-separating fixtures stress conditioning (nearsing's
			// solution norm is ~1/δ), so bound the residual relative
			// to ‖x‖ as backward stability predicts.
			xn := 1.0
			for _, v := range x {
				if math.Abs(v) > xn {
					xn = math.Abs(v)
				}
			}
			if pivoted/xn > 1e-12 {
				t.Errorf("%s: pivoted relative residual %g > 1e-12", fix.Name, pivoted/xn)
			}
		}
	}
}

// TestFactorCAAgreesWithFactorOnFixtures: differential check of the
// two pivoted paths on the shared fixtures — both must reconstruct
// P·A = L·U to machine precision (their permutations may differ).
func TestFactorCAAgreesWithFactorOnFixtures(t *testing.T) {
	for _, fix := range Adversarial() {
		const n = 32
		a := fix.Make(n)
		fp, err := Factor(a)
		if err != nil {
			t.Fatalf("%s: Factor: %v", fix.Name, err)
		}
		fc, err := FactorCA(a, WithPanelWidth(8))
		if err != nil {
			t.Fatalf("%s: FactorCA: %v", fix.Name, err)
		}
		// Wilkinson's growth is 2^31 here, so scale the tolerance by
		// the factor magnitude like a backward-stable bound does.
		growth := maxAbs(fc.LU) / maxAbs(a)
		tol := 1e-12 * math.Max(growth, 1)
		if r := lupResidual(a, fp); r > tol {
			t.Errorf("%s: Factor reconstruction %g > %g", fix.Name, r, tol)
		}
		if r := lupResidual(a, fc); r > tol {
			t.Errorf("%s: FactorCA reconstruction %g > %g", fix.Name, r, tol)
		}
	}
}

func TestFactorCASingular(t *testing.T) {
	a := matrix.FromRows([][]float64{
		{1, 2, 3},
		{2, 4, 6},
		{1, 1, 1},
	})
	_, err := FactorCA(a, WithPanelWidth(2))
	if err == nil {
		t.Fatal("singular matrix accepted")
	}
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("error %v does not wrap ErrSingular", err)
	}
	if _, err := FactorCA(matrix.NewSquare[float64](4)); !errors.Is(err, ErrSingular) {
		t.Fatalf("zero matrix: error %v does not wrap ErrSingular", err)
	}
}

func TestFactorCADegenerate(t *testing.T) {
	// n=0 is a valid empty factorization.
	f, err := FactorCA(matrix.NewSquare[float64](0))
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); d != 1 {
		t.Fatalf("n=0 Det = %g, want 1", d)
	}
	if x := f.Solve(nil); len(x) != 0 {
		t.Fatalf("n=0 Solve returned %v", x)
	}
}

func TestFactorCADoesNotModifyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	a := matrix.NewSquare[float64](37)
	a.Apply(func(i, j int, _ float64) float64 { return rng.NormFloat64() })
	orig := a.Clone()
	if _, err := FactorCA(a, WithPanelWidth(8)); err != nil {
		t.Fatal(err)
	}
	if !a.EqualFunc(orig, func(x, y float64) bool { return x == y }) {
		t.Fatal("FactorCA modified its input")
	}
}

// TestStressFactorCAParallel drives concurrent factorizations on
// isolated runtimes (the serve usage pattern) under the race detector:
// shared state would show up as races or cross-job corruption.
func TestStressFactorCAParallel(t *testing.T) {
	const jobs = 4
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for g := 0; g < jobs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + g)))
			n := 96 + 16*g
			a := matrix.NewSquare[float64](n)
			a.Apply(func(i, j int, _ float64) float64 { return rng.NormFloat64() })
			rt := par.NewRuntime(2)
			defer rt.Close()
			for iter := 0; iter < 3; iter++ {
				f, err := FactorCAParallelOn(rt, a, WithPanelWidth(16), WithCAGrain(32))
				if err != nil {
					errs[g] = err
					return
				}
				if r := lupResidual(a, f); r > 1e-12 {
					errs[g] = errors.New("reconstruction residual too large")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", g, err)
		}
	}
}

// FuzzFactorCAVsFactor drives random matrices through both pivoted
// factorizations and compares permutation-applied reconstruction
// residuals. Auto-discovered by the CI fuzz job.
func FuzzFactorCAVsFactor(fz *testing.F) {
	fz.Add(int64(1), uint8(8), uint8(4))
	fz.Add(int64(2), uint8(33), uint8(8))
	fz.Add(int64(3), uint8(64), uint8(16))
	fz.Fuzz(func(t *testing.T, seed int64, nRaw, panelRaw uint8) {
		n := int(nRaw)%80 + 1
		panel := int(panelRaw)%32 + 1
		rng := rand.New(rand.NewSource(seed))
		a := randDense(rng, n)
		fp, err := Factor(a)
		if err != nil {
			// Singular draws (measure zero, but the fuzzer hunts for
			// them): FactorCA must agree that it is singular or
			// factor it accurately — never return garbage silently.
			if fc, err2 := FactorCA(a, WithPanelWidth(panel)); err2 == nil {
				if r := lupResidual(a, fc); r > 1e-10 {
					t.Fatalf("Factor singular but FactorCA returned residual %g", r)
				}
			}
			return
		}
		// Guard: skip genuinely ill-conditioned draws where pivot-order
		// differences legitimately change success/accuracy.
		minPiv, scale := math.Inf(1), maxAbs(a)
		for i := 0; i < n; i++ {
			if v := math.Abs(fp.LU.At(i, i)); v < minPiv {
				minPiv = v
			}
		}
		if scale == 0 || minPiv/scale < 1e-8 {
			t.Skip("ill-conditioned draw")
		}
		fc, err := FactorCA(a, WithPanelWidth(panel))
		if err != nil {
			t.Fatalf("n=%d panel=%d: FactorCA failed where Factor succeeded: %v", n, panel, err)
		}
		rp, rc := lupResidual(a, fp), lupResidual(a, fc)
		if rc > 1e-10 && rc > 1e3*rp {
			t.Fatalf("n=%d panel=%d: FactorCA residual %g vs Factor %g", n, panel, rc, rp)
		}
	})
}
