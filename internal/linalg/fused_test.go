package linalg

import (
	"math/rand"
	"testing"

	"gep/internal/core"
	"gep/internal/matrix"
	"gep/internal/par"
)

// Differential tests for the engine-backed fused entry points
// (fused.go) against this package's hand kernels and the iterative
// GEP reference semantics.

func TestMulFusedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		a, b := randDense(rng, n), randDense(rng, n)
		want := matrix.NewSquare[float64](n)
		MulNaive(want, a, b)
		for _, base := range []int{1, 4, 64} {
			got := matrix.NewSquare[float64](n)
			MulFused(got, a, b, base)
			approxEqual(t, want, got, n, "MulFused")
		}
	}
}

// TestLUFusedBitwiseMatchesGEP: the engine's LU op keeps the division
// in the j == k update exactly as written GEP performs it, so the
// fused path is bitwise equal to LUGEP (not LUGEPOpt, which hoists a
// reciprocal and rounds differently).
func TestLUFusedBitwiseMatchesGEP(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, n := range []int{4, 16, 64} {
		a := diagDominant(rng, n)
		want := a.Clone()
		LUGEP(want)
		for _, base := range []int{1, 8, 64} {
			got := a.Clone()
			LUFused(got, base)
			if !want.EqualFunc(got, func(x, y float64) bool { return x == y }) {
				t.Fatalf("n=%d base=%d: LUFused not bitwise equal to LUGEP", n, base)
			}
		}
	}
}

// TestGaussFusedMatchesIterative: the Gaussian set has no hand kernel
// here (no multipliers are stored), so the oracle is the iterative
// GEP loop nest with the same op — the reference semantics every
// engine must preserve.
func TestGaussFusedMatchesIterative(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for _, n := range []int{4, 16, 64} {
		a := diagDominant(rng, n)
		want := a.Clone()
		core.RunGEP[float64](want, core.GaussElim[float64]{}.Func(), core.Gaussian{})
		for _, base := range []int{1, 8, 64} {
			got := a.Clone()
			GaussFused(got, base)
			if !want.EqualFunc(got, func(x, y float64) bool { return x == y }) {
				t.Fatalf("n=%d base=%d: GaussFused differs from iterative GEP", n, base)
			}
		}
	}
}

// TestFusedParallelMatchesSerial: the parallel fused entry points run
// the same update sequence through the work-stealing runtime
// (internal/par), so at every worker count the result must be bitwise
// equal to the serial fused path.
func TestFusedParallelMatchesSerial(t *testing.T) {
	defer par.ResetWorkers()
	rng := rand.New(rand.NewSource(53))
	const n, base, grain = 64, 8, 16
	a, b := randDense(rng, n), randDense(rng, n)
	lu := diagDominant(rng, n)

	wantMul := matrix.NewSquare[float64](n)
	MulFused(wantMul, a, b, base)
	wantLU := lu.Clone()
	LUFused(wantLU, base)
	wantGauss := lu.Clone()
	GaussFused(wantGauss, base)

	eq := func(x, y float64) bool { return x == y }
	for _, p := range []int{1, 2, 4} {
		par.SetWorkers(p)
		gotMul := matrix.NewSquare[float64](n)
		MulFusedParallel(gotMul, a, b, base, grain)
		if !wantMul.EqualFunc(gotMul, eq) {
			t.Fatalf("p=%d: MulFusedParallel differs from MulFused", p)
		}
		gotLU := lu.Clone()
		LUFusedParallel(gotLU, base, grain)
		if !wantLU.EqualFunc(gotLU, eq) {
			t.Fatalf("p=%d: LUFusedParallel differs from LUFused", p)
		}
		gotGauss := lu.Clone()
		GaussFusedParallel(gotGauss, base, grain)
		if !wantGauss.EqualFunc(gotGauss, eq) {
			t.Fatalf("p=%d: GaussFusedParallel differs from GaussFused", p)
		}
	}
}
