package linalg

import (
	"math/rand"
	"testing"

	"gep/internal/core"
	"gep/internal/matrix"
)

// Differential tests for the engine-backed fused entry points
// (fused.go) against this package's hand kernels and the iterative
// GEP reference semantics.

func TestMulFusedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		a, b := randDense(rng, n), randDense(rng, n)
		want := matrix.NewSquare[float64](n)
		MulNaive(want, a, b)
		for _, base := range []int{1, 4, 64} {
			got := matrix.NewSquare[float64](n)
			MulFused(got, a, b, base)
			approxEqual(t, want, got, n, "MulFused")
		}
	}
}

// TestLUFusedBitwiseMatchesGEP: the engine's LU op keeps the division
// in the j == k update exactly as written GEP performs it, so the
// fused path is bitwise equal to LUGEP (not LUGEPOpt, which hoists a
// reciprocal and rounds differently).
func TestLUFusedBitwiseMatchesGEP(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, n := range []int{4, 16, 64} {
		a := diagDominant(rng, n)
		want := a.Clone()
		LUGEP(want)
		for _, base := range []int{1, 8, 64} {
			got := a.Clone()
			LUFused(got, base)
			if !want.EqualFunc(got, func(x, y float64) bool { return x == y }) {
				t.Fatalf("n=%d base=%d: LUFused not bitwise equal to LUGEP", n, base)
			}
		}
	}
}

// TestGaussFusedMatchesIterative: the Gaussian set has no hand kernel
// here (no multipliers are stored), so the oracle is the iterative
// GEP loop nest with the same op — the reference semantics every
// engine must preserve.
func TestGaussFusedMatchesIterative(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for _, n := range []int{4, 16, 64} {
		a := diagDominant(rng, n)
		want := a.Clone()
		core.RunGEP[float64](want, core.GaussElim[float64]{}.Func(), core.Gaussian{})
		for _, base := range []int{1, 8, 64} {
			got := a.Clone()
			GaussFused(got, base)
			if !want.EqualFunc(got, func(x, y float64) bool { return x == y }) {
				t.Fatalf("n=%d base=%d: GaussFused differs from iterative GEP", n, base)
			}
		}
	}
}
