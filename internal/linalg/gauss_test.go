package linalg

import (
	"math"
	"math/rand"
	"testing"

	"gep/internal/matrix"
)

// diagDominant is safely factorizable without pivoting.
func diagDominant(rng *rand.Rand, n int) *matrix.Dense[float64] {
	m := matrix.NewSquare[float64](n)
	m.Apply(func(i, j int, _ float64) float64 {
		if i == j {
			return float64(2*n) + rng.Float64()
		}
		return rng.Float64()*2 - 1
	})
	return m
}

// reassemble multiplies the packed LU factors back together.
func reassemble(lu *matrix.Dense[float64]) *matrix.Dense[float64] {
	n := lu.N()
	l := matrix.NewSquare[float64](n)
	u := matrix.NewSquare[float64](n)
	for i := 0; i < n; i++ {
		l.Set(i, i, 1)
		for j := 0; j < n; j++ {
			if j < i {
				l.Set(i, j, lu.At(i, j))
			} else {
				u.Set(i, j, lu.At(i, j))
			}
		}
	}
	out := matrix.NewSquare[float64](n)
	MulNaive(out, l, u)
	return out
}

// TestLUFactorizationsReassemble: every variant's L·U must reproduce A.
func TestLUFactorizationsReassemble(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	variants := map[string]func(m *matrix.Dense[float64]){
		"gep":     LUGEP,
		"gepopt":  LUGEPOpt,
		"tiled4":  func(m *matrix.Dense[float64]) { LUTiled(m, 4) },
		"tiled16": func(m *matrix.Dense[float64]) { LUTiled(m, 16) },
		"igep1":   func(m *matrix.Dense[float64]) { LUIGEP(m, 1) },
		"igep8":   func(m *matrix.Dense[float64]) { LUIGEP(m, 8) },
		"igeppar": func(m *matrix.Dense[float64]) { LUIGEPParallel(m, 4, 8) },
	}
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		a := diagDominant(rng, n)
		for name, factor := range variants {
			lu := a.Clone()
			factor(lu)
			back := reassemble(lu)
			tol := 1e-10 * float64(n)
			if d := MaxAbsDiff(a, back); d > tol {
				t.Fatalf("%s n=%d: |L·U - A| = %g > %g", name, n, d, tol)
			}
		}
	}
}

// TestLUVariantsAgree: all variants produce (numerically) the same
// packed factors.
func TestLUVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{8, 32, 64} {
		a := diagDominant(rng, n)
		ref := a.Clone()
		LUGEPOpt(ref)
		for name, factor := range map[string]func(m *matrix.Dense[float64]){
			"gep":   LUGEP,
			"tiled": func(m *matrix.Dense[float64]) { LUTiled(m, 8) },
			"igep":  func(m *matrix.Dense[float64]) { LUIGEP(m, 4) },
		} {
			lu := a.Clone()
			factor(lu)
			tol := 1e-10 * float64(n)
			if d := MaxAbsDiff(ref, lu); d > tol {
				t.Fatalf("%s n=%d: factors differ from reference by %g", name, n, d)
			}
		}
	}
}

// TestLUIGEPBitwiseMatchesGEPOpt: I-GEP for LU performs the identical
// operations on identical operand values (the paper's exactness for
// this instance), with reciprocal-multiplication multipliers matching
// LUGEPOpt's.
func TestLUIGEPBitwiseMatchesGEPOpt(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, n := range []int{4, 16, 64} {
		a := diagDominant(rng, n)
		ref := a.Clone()
		LUGEPOpt(ref)
		got := a.Clone()
		LUIGEP(got, 1)
		if !ref.EqualFunc(got, func(x, y float64) bool { return x == y }) {
			t.Fatalf("n=%d: LUIGEP(base=1) not bitwise equal to LUGEPOpt", n)
		}
	}
}

// TestLUParallelBitwiseMatchesSerial: goroutine execution changes only
// scheduling, never values.
func TestLUParallelBitwiseMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	n := 64
	a := diagDominant(rng, n)
	s := a.Clone()
	LUIGEP(s, 8)
	p := a.Clone()
	LUIGEPParallel(p, 8, 16)
	if !s.EqualFunc(p, func(x, y float64) bool { return x == y }) {
		t.Fatal("parallel LU not bitwise equal to serial")
	}
}

func TestSolveLU(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for _, n := range []int{1, 4, 16, 64} {
		a := diagDominant(rng, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := MatVec(a, x)
		lu := a.Clone()
		LUIGEP(lu, 8)
		got := SolveLU(lu, b)
		if r := Residual(a, got, b); r > 1e-8 {
			t.Fatalf("n=%d: residual %g", n, r)
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-8 {
				t.Fatalf("n=%d: x[%d] = %g, want %g", n, i, got[i], x[i])
			}
		}
	}
}

func TestSolveLUValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong vector length")
		}
	}()
	SolveLU(matrix.NewSquare[float64](4), make([]float64, 3))
}

func TestGEFlops(t *testing.T) {
	if got := GEFlops(3); math.Abs(got-18) > 1e-12 {
		t.Fatalf("GEFlops(3) = %g, want 18", got)
	}
}

func TestResidualDetectsBadSolution(t *testing.T) {
	a := matrix.FromRows([][]float64{{2, 0}, {0, 2}})
	b := []float64{2, 2}
	if r := Residual(a, []float64{1, 1}, b); r != 0 {
		t.Fatalf("residual of exact solution = %g", r)
	}
	if r := Residual(a, []float64{1, 2}, b); r != 2 {
		t.Fatalf("residual of bad solution = %g, want 2", r)
	}
}

// TestLUHilbertLike stresses numerics on a harder (but still
// dominant-enough) matrix and cross-checks the solve path end to end.
func TestLUHilbertLike(t *testing.T) {
	n := 32
	a := matrix.NewSquare[float64](n)
	a.Apply(func(i, j int, _ float64) float64 {
		if i == j {
			return 3
		}
		return 1 / float64(i+j+2)
	})
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%5) - 2
	}
	b := MatVec(a, x)
	lu := a.Clone()
	LUTiled(lu, 8)
	got := SolveLU(lu, b)
	if r := Residual(a, got, b); r > 1e-9 {
		t.Fatalf("residual %g", r)
	}
}
