package linalg

import (
	"math"
	"math/rand"
	"testing"

	"gep/internal/matrix"
)

func TestDeterminantKnownValues(t *testing.T) {
	if d := Determinant(matrix.NewSquare[float64](0)); d != 1 {
		t.Fatalf("det of empty = %g, want 1", d)
	}
	a := matrix.FromRows([][]float64{{3}})
	if d := Determinant(a); d != 3 {
		t.Fatalf("det([[3]]) = %g", d)
	}
	b := matrix.FromRows([][]float64{{2, 1}, {1, 3}})
	if d := Determinant(b); math.Abs(d-5) > 1e-12 {
		t.Fatalf("det = %g, want 5", d)
	}
	// Triangular: product of the diagonal.
	c := matrix.FromRows([][]float64{{2, 5, 7}, {0, 3, 1}, {0, 0, 4}})
	if d := Determinant(c); math.Abs(d-24) > 1e-10 {
		t.Fatalf("det = %g, want 24", d)
	}
}

func TestDeterminantMultiplicative(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for _, n := range []int{4, 8, 16} {
		a := diagDominant(rng, n)
		b := diagDominant(rng, n)
		ab := matrix.NewSquare[float64](n)
		MulNaive(ab, a, b)
		da, db, dab := Determinant(a), Determinant(b), Determinant(ab)
		if rel := math.Abs(dab-da*db) / math.Abs(dab); rel > 1e-8 {
			t.Fatalf("n=%d: det(AB) = %g, det(A)det(B) = %g (rel %g)", n, dab, da*db, rel)
		}
	}
}

func TestInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, n := range []int{1, 2, 5, 16, 33} {
		a := diagDominant(rng, n)
		inv := Invert(a)
		prod := matrix.NewSquare[float64](n)
		MulNaive(prod, a, inv)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(prod.At(i, j)-want) > 1e-9 {
					t.Fatalf("n=%d: (A·A⁻¹)[%d][%d] = %g", n, i, j, prod.At(i, j))
				}
			}
		}
	}
}

func TestSolveLUManyMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	n := 16
	a := diagDominant(rng, n)
	lu := a.Clone()
	LUIGEP(lu, 8)
	b := matrix.New[float64](n, 3)
	b.Apply(func(i, j int, _ float64) float64 { return rng.NormFloat64() })
	x := SolveLUMany(lu, b)
	for c := 0; c < 3; c++ {
		col := make([]float64, n)
		for i := range col {
			col[i] = b.At(i, c)
		}
		single := SolveLU(lu, col)
		for i := range single {
			if math.Abs(single[i]-x.At(i, c)) > 1e-10 {
				t.Fatalf("col %d row %d: %g vs %g", c, i, x.At(i, c), single[i])
			}
		}
	}
}

func TestSolveLUManyValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SolveLUMany(matrix.NewSquare[float64](4), matrix.New[float64](3, 2))
}

func TestInvertDoesNotModifyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	a := diagDominant(rng, 8)
	orig := a.Clone()
	_ = Invert(a)
	_ = Determinant(a)
	if !a.EqualFunc(orig, func(x, y float64) bool { return x == y }) {
		t.Fatal("input modified")
	}
}
