package linalg

import (
	"math"
	"math/rand"
	"testing"

	"gep/internal/matrix"
)

func randDense(rng *rand.Rand, n int) *matrix.Dense[float64] {
	m := matrix.NewSquare[float64](n)
	m.Apply(func(i, j int, _ float64) float64 { return rng.Float64()*2 - 1 })
	return m
}

// approxEqual compares within an accumulation-scaled tolerance: the
// variants associate the k-sum differently.
func approxEqual(t *testing.T, want, got *matrix.Dense[float64], n int, label string) {
	t.Helper()
	tol := 1e-12 * float64(n)
	if d := MaxAbsDiff(want, got); d > tol {
		t.Fatalf("%s: max diff %g > %g", label, d, tol)
	}
}

func TestMulVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		a, b := randDense(rng, n), randDense(rng, n)
		want := matrix.NewSquare[float64](n)
		MulNaive(want, a, b)

		got := matrix.NewSquare[float64](n)
		MulJKI(got, a, b)
		approxEqual(t, want, got, n, "MulJKI")

		for _, tile := range []int{1, 3, 8, 64} {
			got = matrix.NewSquare[float64](n)
			MulTiled(got, a, b, tile)
			approxEqual(t, want, got, n, "MulTiled")
		}

		for _, base := range []int{1, 2, 8, 64} {
			got = matrix.NewSquare[float64](n)
			MulIGEP(got, a, b, base)
			approxEqual(t, want, got, n, "MulIGEP")
		}

		got = matrix.NewSquare[float64](n)
		MulIGEPParallel(got, a, b, 4, 8)
		approxEqual(t, want, got, n, "MulIGEPParallel")
	}
}

// TestMulParallelBitwiseMatchesSerial: the parallel recursion performs
// the identical operations in the identical per-cell order, so results
// are bitwise equal to the serial recursion.
func TestMulParallelBitwiseMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 64
	a, b := randDense(rng, n), randDense(rng, n)
	serial := matrix.NewSquare[float64](n)
	MulIGEP(serial, a, b, 8)
	par := matrix.NewSquare[float64](n)
	MulIGEPParallel(par, a, b, 8, 16)
	if !serial.EqualFunc(par, func(x, y float64) bool { return x == y }) {
		t.Fatal("parallel MulIGEP not bitwise equal to serial")
	}
}

func TestMulAccumulates(t *testing.T) {
	// C += A·B: pre-existing C contents must be kept.
	n := 8
	rng := rand.New(rand.NewSource(22))
	a, b := randDense(rng, n), randDense(rng, n)
	c := matrix.NewSquare[float64](n)
	c.Fill(1)
	want := matrix.NewSquare[float64](n)
	want.Fill(1)
	MulNaive(want, a, b)
	MulIGEP(c, a, b, 2)
	approxEqual(t, want, c, n, "accumulation")
}

func TestMulTiledMorton(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{4, 16, 64} {
		for _, base := range []int{2, 4} {
			if base > n {
				continue
			}
			a, b := randDense(rng, n), randDense(rng, n)
			want := matrix.NewSquare[float64](n)
			MulNaive(want, a, b)

			at := matrix.NewTiled[float64](n, base)
			bt := matrix.NewTiled[float64](n, base)
			ct := matrix.NewTiled[float64](n, base)
			at.FromDense(a)
			bt.FromDense(b)
			MulTiledMorton(ct, at, bt, base)
			approxEqual(t, want, ct.ToDense(), n, "MulTiledMorton")
		}
	}
}

func TestMulIdentity(t *testing.T) {
	n := 16
	rng := rand.New(rand.NewSource(24))
	a := randDense(rng, n)
	id := matrix.NewSquare[float64](n)
	for i := 0; i < n; i++ {
		id.Set(i, i, 1)
	}
	c := matrix.NewSquare[float64](n)
	MulIGEP(c, a, id, 4)
	if !c.EqualFunc(a, func(x, y float64) bool { return x == y }) {
		t.Fatal("A·I != A")
	}
	c = matrix.NewSquare[float64](n)
	MulIGEP(c, id, a, 4)
	if !c.EqualFunc(a, func(x, y float64) bool { return x == y }) {
		t.Fatal("I·A != A")
	}
}

func TestMulFlops(t *testing.T) {
	if MulFlops(100) != 2e6 {
		t.Fatalf("MulFlops(100) = %g", MulFlops(100))
	}
}

func TestMulIGEPValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-power-of-two")
		}
	}()
	m := matrix.NewSquare[float64](6)
	MulIGEP(m, m, m, 2)
}

func TestMulNumericalSanity(t *testing.T) {
	// 2x2 hand-computed product.
	a := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	b := matrix.FromRows([][]float64{{5, 6}, {7, 8}})
	want := matrix.FromRows([][]float64{{19, 22}, {43, 50}})
	c := matrix.NewSquare[float64](2)
	MulNaive(c, a, b)
	if MaxAbsDiff(c, want) != 0 {
		t.Fatalf("naive 2x2 product wrong: %v", c)
	}
	c = matrix.NewSquare[float64](2)
	MulIGEP(c, a, b, 1)
	if MaxAbsDiff(c, want) != 0 {
		t.Fatalf("I-GEP 2x2 product wrong: %v", c)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	b := matrix.FromRows([][]float64{{1, 2.5}, {3, 4}})
	if d := MaxAbsDiff(a, b); math.Abs(d-0.5) > 1e-15 {
		t.Fatalf("MaxAbsDiff = %g, want 0.5", d)
	}
}
