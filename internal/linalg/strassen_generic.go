package linalg

import (
	"gep/internal/matrix"
)

// MulStrassenGeneric mirrors MulStrassen element-for-element over the
// matrix.Grid interface: same recursion shape, same Winograd schedule,
// same peeling, same ascending-k classical leaves, same two-rounding
// discipline — so its result is bitwise identical to MulStrassen
// (strassen_test.go pins this). Its purpose is instrumentation: the
// bounds2 experiment runs it over cachesim recording grids to obtain
// the engine's exact memory-access trace, including the arena
// temporaries, which the caller supplies through get/put so traced
// runs can model the pool's address reuse (a recycled buffer must
// reappear at the same simulated address, exactly as the real arena
// hands back the same allocation). get(h) returns an h×h grid; put
// returns it to the pool. Pass nil for both to allocate plainly.
//
// The classical leaves replay the generic-path element order (k-outer
// triple loop per base block). The fused kernels permute accesses
// *within* one base block, which leaves the block-level locality the
// I/O bounds are about unchanged; DESIGN.md §15 discusses this.
//
// The optional trailing base overrides the classical leaf side
// (default strassenBase). The result is bitwise independent of base —
// every cell's additions stay strictly ascending in k at any blocking
// — but the access trace is not: simulations at small M pass a finer
// base (exp_bounds traces I-GEP at base 8 for the same reason) so the
// leaf working set does not drown the recursion being measured.
func MulStrassenGeneric(c, a, b matrix.Grid[float64], crossover int, get func(h int) matrix.Grid[float64], put func(h int, g matrix.Grid[float64]), base ...int) {
	n := c.N()
	if n == 0 {
		return
	}
	if a.N() != n || b.N() != n {
		panic("linalg: MulStrassenGeneric size mismatch")
	}
	if crossover < 1 {
		crossover = DefaultCrossover
	}
	if get == nil {
		get = func(h int) matrix.Grid[float64] { return matrix.NewSquare[float64](h) }
		put = func(int, matrix.Grid[float64]) {}
	}
	bs := strassenBase
	if len(base) > 0 && base[0] >= 1 {
		bs = base[0]
	}
	st := &gStrassen{crossover: crossover, base: bs, get: get, put: put}
	st.mul(gv(c), gv(a), gv(b), n)
}

type gStrassen struct {
	crossover int
	base      int
	get       func(h int) matrix.Grid[float64]
	put       func(h int, g matrix.Grid[float64])
}

// gview is fview's grid twin: an offset window over a Grid.
type gview struct {
	g      matrix.Grid[float64]
	i0, j0 int
}

func gv(g matrix.Grid[float64]) gview   { return gview{g: g} }
func (v gview) sub(i, j int) gview      { return gview{g: v.g, i0: v.i0 + i, j0: v.j0 + j} }
func (v gview) at(i, j int) float64     { return v.g.At(v.i0+i, v.j0+j) }
func (v gview) set(i, j int, x float64) { v.g.Set(v.i0+i, v.j0+j, x) }

func (st *gStrassen) mul(c, a, b gview, s int) {
	if s <= st.crossover {
		gZero(c, s)
		st.classic(c, a, b, s)
		return
	}
	if s&1 == 1 {
		st.mul(c, a, b, s-1)
		st.peelFixup(c, a, b, s, true)
		return
	}
	st.winograd(c, a, b, s)
}

// winograd is the same two-temporary schedule as strassen.go, with the
// temporaries drawn from the caller's pool.
func (st *gStrassen) winograd(c, a, b gview, s int) {
	h := s / 2
	a11, a12, a21, a22 := a, a.sub(0, h), a.sub(h, 0), a.sub(h, h)
	b11, b12, b21, b22 := b, b.sub(0, h), b.sub(h, 0), b.sub(h, h)
	c11, c12, c21, c22 := c, c.sub(0, h), c.sub(h, 0), c.sub(h, h)

	xg, yg := st.get(h), st.get(h)
	x, y := gv(xg), gv(yg)

	gSub(x, a11, a21, h)   // X = S3
	gSub(y, b22, b12, h)   // Y = T3
	st.mul(c21, x, y, h)   // C21 = P7
	gAdd(x, a21, a22, h)   // X = S1
	gSub(y, b12, b11, h)   // Y = T1
	st.mul(c22, x, y, h)   // C22 = P5
	gSub(x, x, a11, h)     // X = S2
	gSub(y, b22, y, h)     // Y = T2
	st.mul(c12, x, y, h)   // C12 = P6
	gSub(x, a12, x, h)     // X = S4
	st.mul(c11, x, b22, h) // C11 = P3
	st.mul(x, a11, b11, h) // X = P1
	gAddAcc(c12, x, h)     // C12 = U2
	gAddAcc(c21, c12, h)   // C21 = U3
	gAddAcc(c12, c22, h)   // C12 = U4
	gAddAcc(c22, c21, h)   // C22 final
	gAddAcc(c12, c11, h)   // C12 final
	gSub(y, b21, y, h)     // Y = T4′
	st.mul(c11, a22, y, h) // C11 = P4′
	gAddAcc(c21, c11, h)   // C21 final
	st.mul(y, a12, b21, h) // Y = P2
	gAdd(c11, x, y, h)     // C11 = P1 + P2 final

	st.put(h, xg)
	st.put(h, yg)
}

func (st *gStrassen) classic(c, a, b gview, s int) {
	if s <= st.base {
		// Generic-path leaf: k-outer ascending triple loop, the same
		// per-cell order and rounding as the fused kernels.
		for k := 0; k < s; k++ {
			for i := 0; i < s; i++ {
				u := a.at(i, k)
				for j := 0; j < s; j++ {
					t := u * b.at(k, j)
					c.set(i, j, c.at(i, j)+t)
				}
			}
		}
		return
	}
	if s&1 == 1 {
		st.classic(c, a, b, s-1)
		st.peelFixup(c, a, b, s, false)
		return
	}
	h := s / 2
	c11, c12, c21, c22 := c, c.sub(0, h), c.sub(h, 0), c.sub(h, h)
	a1, a2 := a, a.sub(0, h)
	b1, b2 := b, b.sub(h, 0)
	st.classic(c11, a1, b1, h)
	st.classic(c12, a1, b1.sub(0, h), h)
	st.classic(c21, a1.sub(h, 0), b1, h)
	st.classic(c22, a1.sub(h, 0), b1.sub(0, h), h)
	st.classic(c11, a2, b2, h)
	st.classic(c12, a2, b2.sub(0, h), h)
	st.classic(c21, a2.sub(h, 0), b2, h)
	st.classic(c22, a2.sub(h, 0), b2.sub(0, h), h)
}

func (st *gStrassen) peelFixup(c, a, b gview, s int, overwrite bool) {
	m := s - 1
	for i := 0; i < m; i++ {
		u := a.at(i, m)
		for j := 0; j < m; j++ {
			t := u * b.at(m, j)
			c.set(i, j, c.at(i, j)+t)
		}
	}
	for i := 0; i < m; i++ {
		x := 0.0
		if !overwrite {
			x = c.at(i, m)
		}
		for k := 0; k < s; k++ {
			t := a.at(i, k) * b.at(k, m)
			x += t
		}
		c.set(i, m, x)
	}
	if overwrite {
		for j := 0; j < s; j++ {
			c.set(m, j, 0)
		}
	}
	for k := 0; k < s; k++ {
		u := a.at(m, k)
		for j := 0; j < s; j++ {
			t := u * b.at(k, j)
			c.set(m, j, c.at(m, j)+t)
		}
	}
}

func gZero(c gview, s int) {
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			c.set(i, j, 0)
		}
	}
}

func gAdd(dst, x, y gview, s int) {
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			dst.set(i, j, x.at(i, j)+y.at(i, j))
		}
	}
}

func gSub(dst, x, y gview, s int) {
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			dst.set(i, j, x.at(i, j)-y.at(i, j))
		}
	}
}

func gAddAcc(dst, src gview, s int) {
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			dst.set(i, j, dst.at(i, j)+src.at(i, j))
		}
	}
}
