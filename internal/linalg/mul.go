package linalg

import (
	"fmt"

	"gep/internal/matrix"
	"gep/internal/par"
)

// Flops returns the floating-point operation count of an n×n matrix
// multiplication (the figure-of-merit denominator for Figure 11).
func MulFlops(n int) float64 { return 2 * float64(n) * float64(n) * float64(n) }

func checkMulDims(c, a, b *matrix.Dense[float64]) int {
	n := c.N()
	if a.N() != n || b.N() != n {
		panic(fmt.Sprintf("linalg: size mismatch C=%d A=%d B=%d", n, a.N(), b.N()))
	}
	return n
}

// MulNaive computes C += A·B with the classic i,k,j triple loop — the
// unblocked GEP-order baseline. O(n³/B) cache misses.
func MulNaive(c, a, b *matrix.Dense[float64]) {
	n := checkMulDims(c, a, b)
	for i := 0; i < n; i++ {
		ci := c.Row(i)
		ai := a.Row(i)
		for k := 0; k < n; k++ {
			aik := ai[k]
			bk := b.Row(k)
			for j := 0; j < n; j++ {
				ci[j] += aik * bk[j]
			}
		}
	}
}

// MulJKI computes C += A·B in j,k,i order — a deliberately
// cache-hostile ordering (column walks in row-major storage), used by
// the layout/ordering ablation.
func MulJKI(c, a, b *matrix.Dense[float64]) {
	n := checkMulDims(c, a, b)
	for j := 0; j < n; j++ {
		for k := 0; k < n; k++ {
			bkj := b.At(k, j)
			for i := 0; i < n; i++ {
				c.Set(i, j, c.At(i, j)+a.At(i, k)*bkj)
			}
		}
	}
}

// MulTiled computes C += A·B with cache-aware square tiling and a
// 4-way unrolled inner kernel — the cache-aware "tuned BLAS"
// comparator. tile should be sized so three tiles fit in the target
// cache (the cache-aware tuning knob I-GEP does not need).
func MulTiled(c, a, b *matrix.Dense[float64], tile int) {
	n := checkMulDims(c, a, b)
	if tile < 1 {
		panic("linalg: tile must be >= 1")
	}
	for ii := 0; ii < n; ii += tile {
		iMax := minInt(ii+tile, n)
		for kk := 0; kk < n; kk += tile {
			kMax := minInt(kk+tile, n)
			for jj := 0; jj < n; jj += tile {
				jMax := minInt(jj+tile, n)
				mulBlock(c, a, b, ii, iMax, kk, kMax, jj, jMax)
			}
		}
	}
}

// mulBlock is the shared register-blocked micro-kernel: C[i0:i1,j0:j1]
// += A[i0:i1,k0:k1]·B[k0:k1,j0:j1], k-unrolled by 4.
func mulBlock(c, a, b *matrix.Dense[float64], i0, i1, k0, k1, j0, j1 int) {
	for i := i0; i < i1; i++ {
		ci := c.Row(i)[j0:j1]
		ai := a.Row(i)
		k := k0
		for ; k+3 < k1; k += 4 {
			a0, a1, a2, a3 := ai[k], ai[k+1], ai[k+2], ai[k+3]
			b0 := b.Row(k)[j0:j1]
			b1 := b.Row(k + 1)[j0:j1]
			b2 := b.Row(k + 2)[j0:j1]
			b3 := b.Row(k + 3)[j0:j1]
			for j := range ci {
				ci[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; k < k1; k++ {
			aik := ai[k]
			bk := b.Row(k)[j0:j1]
			for j := range ci {
				ci[j] += aik * bk[j]
			}
		}
	}
}

// MulIGEP computes C += A·B with the cache-oblivious 8-way recursion
// (the all-D instantiation of I-GEP on disjoint matrices) switching to
// the register-blocked iterative kernel at base×base subproblems.
// It needs no cache parameters: the recursion adapts to every level of
// the hierarchy, giving O(n³/(B√M)) misses. n must be a power of two.
func MulIGEP(c, a, b *matrix.Dense[float64], base int) {
	n := checkMulDims(c, a, b)
	if n == 0 {
		return
	}
	if !matrix.IsPow2(n) {
		panic(fmt.Sprintf("linalg: MulIGEP needs power-of-two n, got %d", n))
	}
	if base < 1 {
		base = 1
	}
	mulRec(c, a, b, 0, 0, 0, n, base)
}

// mulRec handles C[i0:,j0:] += A[i0:,k0:]·B[k0:,j0:] on s×s blocks.
// The two k-halves are sequenced (each cell's additions stay in
// increasing k order, as the paper notes — no associativity assumed);
// the four quadrants within a half are independent.
func mulRec(c, a, b *matrix.Dense[float64], i0, j0, k0, s, base int) {
	if s <= base {
		mulBlock(c, a, b, i0, i0+s, k0, k0+s, j0, j0+s)
		return
	}
	h := s / 2
	mulRec(c, a, b, i0, j0, k0, h, base)
	mulRec(c, a, b, i0, j0+h, k0, h, base)
	mulRec(c, a, b, i0+h, j0, k0, h, base)
	mulRec(c, a, b, i0+h, j0+h, k0, h, base)
	mulRec(c, a, b, i0, j0, k0+h, h, base)
	mulRec(c, a, b, i0, j0+h, k0+h, h, base)
	mulRec(c, a, b, i0+h, j0, k0+h, h, base)
	mulRec(c, a, b, i0+h, j0+h, k0+h, h, base)
}

// MulIGEPParallel is MulIGEP with the quadrants of each k-half run on
// goroutines down to the given grain — the multithreaded I-GEP for
// matrix multiplication with span O(n) (§3).
func MulIGEPParallel(c, a, b *matrix.Dense[float64], base, grain int) {
	MulIGEPParallelOn(nil, c, a, b, base, grain)
}

// MulIGEPParallelOn is MulIGEPParallel with all forks confined to rt
// (nil = the default runtime).
func MulIGEPParallelOn(rt *par.Runtime, c, a, b *matrix.Dense[float64], base, grain int) {
	n := checkMulDims(c, a, b)
	if n == 0 {
		return
	}
	if !matrix.IsPow2(n) {
		panic(fmt.Sprintf("linalg: MulIGEPParallel needs power-of-two n, got %d", n))
	}
	if base < 1 {
		base = 1
	}
	if grain < base {
		grain = base
	}
	mulRecPar(c, a, b, 0, 0, 0, n, base, grain, par.Or(rt))
}

// mulRecPar runs the quadrants of each k-half as a fork-join group on
// the work-stealing runtime of internal/par: forks land on the
// caller's worker deque (or run inline past the depth cutoff), so deep
// recursions never create one goroutine per spawn.
func mulRecPar(c, a, b *matrix.Dense[float64], i0, j0, k0, s, base, grain int, rt *par.Runtime) {
	if s <= grain {
		mulRec(c, a, b, i0, j0, k0, s, base)
		return
	}
	h := s / 2
	for _, kh := range []int{k0, k0 + h} {
		kh := kh
		rt.Do(
			func() { mulRecPar(c, a, b, i0, j0, kh, h, base, grain, rt) },
			func() { mulRecPar(c, a, b, i0, j0+h, kh, h, base, grain, rt) },
			func() { mulRecPar(c, a, b, i0+h, j0, kh, h, base, grain, rt) },
			func() { mulRecPar(c, a, b, i0+h, j0+h, kh, h, base, grain, rt) },
		)
	}
}

// MulTiledMorton multiplies with the same recursion as MulIGEP but
// over bit-interleaved (Morton-tiled) operands, the paper's §4.2
// layout optimization; conversion costs are the caller's to include,
// as the paper does.
func MulTiledMorton(c, a, b *matrix.Tiled[float64], base int) {
	n := c.N()
	if a.N() != n || b.N() != n {
		panic("linalg: size mismatch")
	}
	if c.Block() != base || a.Block() != base || b.Block() != base {
		panic("linalg: MulTiledMorton requires tile size == base")
	}
	mulMortonRec(c, a, b, 0, 0, 0, n, base)
}

func mulMortonRec(c, a, b *matrix.Tiled[float64], i0, j0, k0, s, base int) {
	if s <= base {
		ct := c.TileData(i0/base, j0/base)
		at := a.TileData(i0/base, k0/base)
		bt := b.TileData(k0/base, j0/base)
		mulFlatBlock(ct, at, bt, base)
		return
	}
	h := s / 2
	mulMortonRec(c, a, b, i0, j0, k0, h, base)
	mulMortonRec(c, a, b, i0, j0+h, k0, h, base)
	mulMortonRec(c, a, b, i0+h, j0, k0, h, base)
	mulMortonRec(c, a, b, i0+h, j0+h, k0, h, base)
	mulMortonRec(c, a, b, i0, j0, k0+h, h, base)
	mulMortonRec(c, a, b, i0, j0+h, k0+h, h, base)
	mulMortonRec(c, a, b, i0+h, j0, k0+h, h, base)
	mulMortonRec(c, a, b, i0+h, j0+h, k0+h, h, base)
}

// mulFlatBlock multiplies two contiguous row-major base×base tiles
// into a third, k-unrolled by 4.
func mulFlatBlock(ct, at, bt []float64, n int) {
	for i := 0; i < n; i++ {
		ci := ct[i*n : (i+1)*n]
		ai := at[i*n : (i+1)*n]
		k := 0
		for ; k+3 < n; k += 4 {
			a0, a1, a2, a3 := ai[k], ai[k+1], ai[k+2], ai[k+3]
			b0 := bt[k*n : (k+1)*n]
			b1 := bt[(k+1)*n : (k+2)*n]
			b2 := bt[(k+2)*n : (k+3)*n]
			b3 := bt[(k+3)*n : (k+4)*n]
			for j := range ci {
				ci[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; k < n; k++ {
			aik := ai[k]
			bk := bt[k*n : (k+1)*n]
			for j := range ci {
				ci[j] += aik * bk[j]
			}
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
