package linalg

import (
	"math"
	"math/rand"
	"testing"

	"gep/internal/matrix"
	"gep/internal/metrics"
	"gep/internal/par"
)

// maxAbs returns the max-abs-entry norm used by StrassenErrorBound.
func maxAbs(m *matrix.Dense[float64]) float64 {
	n := m.Rows()
	v := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if a := math.Abs(m.At(i, j)); a > v {
				v = a
			}
		}
	}
	return v
}

// strassenDiffCheck compares a Strassen product against the fused
// classical product within the a-priori Winograd error bound.
func strassenDiffCheck(t *testing.T, got *matrix.Dense[float64], a, b *matrix.Dense[float64], n, crossover int, label string) {
	t.Helper()
	want := matrix.NewSquare[float64](n)
	if matrix.IsPow2(n) {
		MulFused(want, a, b, 64)
	} else {
		MulNaive(want, a, b) // MulFused is pow2-only
	}
	bound := StrassenErrorBound(n, crossover, maxAbs(a), maxAbs(b))
	if d := MaxAbsDiff(want, got); d > bound {
		t.Fatalf("%s n=%d crossover=%d: max diff %g > bound %g", label, n, crossover, d, bound)
	}
}

// TestMulStrassenMatchesNaive: small shapes, deep recursion (tiny
// crossover forces Winograd levels even at n=8), oracle is the naive
// triple loop.
func TestMulStrassenMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for _, n := range []int{1, 2, 3, 5, 7, 8, 12, 16, 17, 31, 33, 64} {
		a, b := randDense(rng, n), randDense(rng, n)
		want := matrix.NewSquare[float64](n)
		MulNaive(want, a, b)
		for _, co := range []int{2, 4, 8, 0} {
			got := matrix.NewSquare[float64](n)
			MulStrassen(got, a, b, WithCrossover(co))
			eff := co
			if eff == 0 {
				eff = DefaultCrossover
			}
			bound := StrassenErrorBound(n, eff, maxAbs(a), maxAbs(b))
			if bound < 1e-12*float64(n) {
				bound = 1e-12 * float64(n)
			}
			if d := MaxAbsDiff(want, got); d > bound {
				t.Fatalf("n=%d crossover=%d: max diff %g > %g", n, co, d, bound)
			}
		}
	}
}

// TestMulStrassenDifferential is the ISSUE's acceptance matrix:
// n ∈ {odd, pow2, pow2±1} × workers ∈ {1, 2, 4} × crossover ∈
// {one Winograd level, auto}, every cell compared against the fused
// classical product within the explicit Strassen error bound, and the
// parallel result asserted bit-identical to the serial one.
func TestMulStrassenDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, n := range []int{63, 64, 65, 96, 127, 128, 129} {
		a, b := randDense(rng, n), randDense(rng, n)
		for _, co := range []int{(n + 1) / 2, 0, 16} { // one level, auto, deep
			serial := matrix.NewSquare[float64](n)
			MulStrassen(serial, a, b, WithCrossover(co))
			eff := co
			if eff == 0 {
				eff = DefaultCrossover
			}
			strassenDiffCheck(t, serial, a, b, n, eff, "MulStrassen")
			for _, workers := range []int{1, 2, 4} {
				rt := par.NewRuntime(workers)
				got := matrix.NewSquare[float64](n)
				MulStrassenParallelOn(rt, got, a, b, WithCrossover(co))
				rt.Close()
				if !serial.EqualFunc(got, func(x, y float64) bool { return x == y }) {
					t.Fatalf("n=%d crossover=%d workers=%d: parallel not bitwise equal to serial", n, co, workers)
				}
			}
		}
	}
}

// TestMulStrassenBitwiseReproducible: same inputs, same worker count,
// repeated runs must agree bit for bit (fixed expression trees; the
// scheduler only reorders disjoint writes).
func TestMulStrassenBitwiseReproducible(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	n := 129
	a, b := randDense(rng, n), randDense(rng, n)
	rt := par.NewRuntime(4)
	defer rt.Close()
	first := matrix.NewSquare[float64](n)
	MulStrassenParallelOn(rt, first, a, b, WithCrossover(16))
	for run := 0; run < 3; run++ {
		got := matrix.NewSquare[float64](n)
		MulStrassenParallelOn(rt, got, a, b, WithCrossover(16))
		if !first.EqualFunc(got, func(x, y float64) bool { return x == y }) {
			t.Fatalf("run %d: not bit-reproducible", run)
		}
	}
}

// TestMulStrassenParallelForks: a size large enough that the parallel
// classical leaves actually fork on the runtime (s > grain) must still
// be bitwise equal to the serial schedule.
func TestMulStrassenParallelForks(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	n := 384
	a, b := randDense(rng, n), randDense(rng, n)
	serial := matrix.NewSquare[float64](n)
	MulStrassen(serial, a, b)
	rt := par.NewRuntime(4)
	got := matrix.NewSquare[float64](n)
	MulStrassenParallelOn(rt, got, a, b)
	pooled := rt.Metrics().Snapshot()["par.spawn.pooled"]
	rt.Close()
	if !serial.EqualFunc(got, func(x, y float64) bool { return x == y }) {
		t.Fatalf("forked parallel result not bitwise equal to serial")
	}
	if pooled == 0 {
		t.Fatalf("expected the classical leaves to fork on the runtime")
	}
}

// TestMulStrassenClassicalFallback: a crossover at or above n takes
// the purely classical path, which must be bitwise equal to MulFused
// on a zeroed destination (same recursion shape, same fused kernels,
// same ascending-k order).
func TestMulStrassenClassicalFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for _, n := range []int{64, 128, 256} {
		a, b := randDense(rng, n), randDense(rng, n)
		want := matrix.NewSquare[float64](n)
		MulFused(want, a, b, 64)
		got := matrix.NewSquare[float64](n)
		MulStrassen(got, a, b, WithCrossover(n))
		if !want.EqualFunc(got, func(x, y float64) bool { return x == y }) {
			t.Fatalf("n=%d: classical fallback not bitwise equal to MulFused", n)
		}
	}
}

// TestStrassenArenaBalanced: every arena get is matched by a put
// (leak check), and across a multi-level recursion the pool recycles
// buffers, so allocations stay strictly below gets (reuse check).
func TestStrassenArenaBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	n := 256
	a, b := randDense(rng, n), randDense(rng, n)
	c := matrix.NewSquare[float64](n)
	before := metrics.Snapshot()
	MulStrassen(c, a, b, WithCrossover(16))
	d := metrics.Diff(before, metrics.Snapshot())
	get, put, alloc := d["linalg.strassen.arena.get"], d["linalg.strassen.arena.put"], d["linalg.strassen.arena.alloc"]
	if get == 0 {
		t.Fatalf("expected arena traffic, got none")
	}
	if get != put {
		t.Fatalf("arena leak: get=%d put=%d", get, put)
	}
	if alloc >= get {
		t.Fatalf("arena not reusing buffers: alloc=%d get=%d", alloc, get)
	}
}

// TestMulStrassenGenericBitwise: the grid mirror the bounds2
// experiment traces must be bitwise identical to the flat engine —
// same recursion shape, same schedule, same rounding — at every shape
// class and crossover.
func TestMulStrassenGenericBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	for _, n := range []int{5, 17, 33, 64, 96, 129} {
		a, b := randDense(rng, n), randDense(rng, n)
		for _, co := range []int{4, 16, 0} {
			want := matrix.NewSquare[float64](n)
			MulStrassen(want, a, b, WithCrossover(co))
			got := matrix.NewSquare[float64](n)
			MulStrassenGeneric(got, a, b, co, nil, nil)
			if !want.EqualFunc(got, func(x, y float64) bool { return x == y }) {
				t.Fatalf("n=%d crossover=%d: generic mirror not bitwise equal", n, co)
			}
		}
	}
}

// FuzzStrassenVsClassical drives random shapes, seeds, and crossovers
// through MulStrassen and checks against the naive product within the
// explicit error bound. Auto-discovered by the CI fuzz job.
func FuzzStrassenVsClassical(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(2))
	f.Add(int64(2), uint8(13), uint8(4))
	f.Add(int64(3), uint8(32), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, coRaw uint8) {
		n := int(nRaw)%48 + 1
		co := int(coRaw) % 32
		rng := rand.New(rand.NewSource(seed))
		a, b := randDense(rng, n), randDense(rng, n)
		got := matrix.NewSquare[float64](n)
		MulStrassen(got, a, b, WithCrossover(co))
		want := matrix.NewSquare[float64](n)
		MulNaive(want, a, b)
		eff := co
		if eff == 0 {
			eff = DefaultCrossover
		}
		bound := StrassenErrorBound(n, eff, maxAbs(a), maxAbs(b))
		if bound < 1e-12*float64(n) {
			bound = 1e-12 * float64(n)
		}
		if d := MaxAbsDiff(want, got); d > bound {
			t.Fatalf("n=%d crossover=%d: max diff %g > bound %g", n, co, d, bound)
		}
	})
}
