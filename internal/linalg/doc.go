// Package linalg contains the specialized float64 kernels used by the
// paper's performance experiments (§4.2): square matrix multiplication
// and Gaussian elimination / LU decomposition without pivoting, each in
// three forms —
//
//   - the naive GEP-style triple loop (the paper's "GEP" baseline),
//   - a cache-aware tiled kernel with register blocking (our stand-in
//     for the hand-tuned BLAS the paper compares against; see
//     DESIGN.md §4 for the substitution argument), and
//   - the cache-oblivious I-GEP recursion with an iterative base-case
//     kernel (the paper's optimized I-GEP, §4.2).
//
// The generic framework in internal/core runs these same computations
// through interfaces; this package mirrors the paper's per-application
// hand-specialized C code so the timing experiments measure kernel
// quality rather than interface dispatch.
//
// Key entry points:
//
//   - MulNaive / MulJKI / MulTiled / MulTiledMorton / MulIGEP /
//     MulIGEPParallel: C += A·B in the forms Figure 11 compares, with
//     MulFlops as the GFLOPS denominator.
//   - LUGEP / LUGEPOpt / LUTiled / LUIGEP / LUIGEPParallel: in-place
//     LU decomposition without pivoting (Figure 10), with GEFlops as
//     the denominator.
//   - Factor / SolveLU / Determinant / Invert: the consumers that make
//     the LU output useful and testable against known identities.
//   - GaussGF2Fused / GaussGF2FusedParallel: unpivoted elimination
//     over GF(2) on bit-packed matrix.Bits storage, driven through
//     the core engines' word-parallel and four-Russians kernels
//     (DESIGN.md §13).
//   - SolveGF2 / RankGF2 / MulVecGF2: pivoted GF(2) consumers —
//     partial pivoting is outside GEP's fixed update set, so these
//     run a direct word-parallel Gauss-Jordan RREF on the packed
//     rows.
package linalg
