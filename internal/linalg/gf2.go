package linalg

import (
	"fmt"
	mathbits "math/bits"

	"gep/internal/core"
	"gep/internal/matrix"
)

// GF(2) linear algebra over bit-packed matrices. Two families live
// here:
//
//   - the GEP-path eliminators GaussGF2Fused / GaussGF2FusedParallel —
//     the exact boolean analogue of GaussFused: RunIGEP / RunABCD with
//     the core.GF2Elim op over the Gaussian set, word-parallel via the
//     packed kernels of internal/core/bits.go. Like all unpivoted GEP
//     elimination they require every leading principal minor to be
//     nonsingular (over GF(2): an LU-factorable matrix).
//
//   - the direct solvers SolveGF2 / RankGF2 — packed Gauss-Jordan with
//     partial pivoting (row swaps), which GEP's fixed update set cannot
//     express, so they work on any input. They share the word-parallel
//     row primitives of matrix.Bits.

// GaussGF2Fused performs in-place GF(2) Gaussian elimination (no
// multipliers stored — over GF(2) the multiplier equals the eliminated
// bit) through RunIGEP with the packed word-parallel kernel. The side
// must be a power of two; base is the base-case side (0 selects the
// packed default of 512) and tableWidth the four-Russians group width
// (0 disables the table kernel, < 0 selects the default of 8). The
// result is upper-triangular only when c is eliminable without
// pivoting; for general matrices use SolveGF2 / RankGF2.
func GaussGF2Fused(c *matrix.Bits, base, tableWidth int) {
	core.RunIGEP[bool](c, core.GF2Elim{}, core.Gaussian{}, gf2Opts(base, tableWidth)...)
}

// GaussGF2FusedParallel is GaussGF2Fused through the multithreaded
// A/B/C/D recursion on the work-stealing runtime; bit-identical to
// GaussGF2Fused at every worker count. c must be word-aligned
// (matrix.Bits.Aligned) and the grain is clamped to >= 64 so
// concurrent quadrants never share an edge word.
func GaussGF2FusedParallel(c *matrix.Bits, base, tableWidth, grain int) {
	if !c.Aligned() {
		panic("linalg: GaussGF2FusedParallel requires a word-aligned matrix (see Bits.Aligned)")
	}
	if grain < 64 {
		grain = 64
	}
	opts := append(gf2Opts(base, tableWidth), core.WithParallel[bool](grain))
	core.RunABCD[bool](c, core.GF2Elim{}, core.Gaussian{}, opts...)
}

// gf2Opts translates the (base, tableWidth) conventions into engine
// options: base 0 and tableWidth < 0 keep the engine defaults.
func gf2Opts(base, tableWidth int) []core.Option[bool] {
	var opts []core.Option[bool]
	if base != 0 {
		opts = append(opts, core.WithBaseSize[bool](base))
	}
	if tableWidth >= 0 {
		opts = append(opts, core.WithTableWidth[bool](tableWidth))
	}
	return opts
}

// SolveGF2 solves A·x = b over GF(2). a is not modified; b must have
// a.N() entries. When the system is underdetermined the free variables
// are set to false, so the returned x is one solution of possibly
// many; an inconsistent system returns an error wrapping ErrSingular
// (match with errors.Is) that carries the rank. Pivoting is by row
// swap (partial pivoting — over GF(2) any nonzero pivot is exact), so
// unlike the GEP-path eliminators any matrix is accepted.
func SolveGF2(a *matrix.Bits, b []bool) ([]bool, error) {
	n := a.N()
	if len(b) != n {
		panic(fmt.Sprintf("linalg: SolveGF2 got %d-vector for %dx%d system", len(b), n, n))
	}
	// Augmented [A | b], reduced to RREF word-parallel.
	m := matrix.NewBits(n, n+1)
	m.Sub(0, 0, n, n).CopyFrom(a)
	for i, v := range b {
		m.Set(i, n, v)
	}
	pivots := gf2RREF(m, n)
	// Inconsistent exactly when some zero row of A has a 1 in the
	// augmented column.
	for r := len(pivots); r < n; r++ {
		if m.At(r, n) {
			return nil, fmt.Errorf("linalg: GF(2) system inconsistent (rank %d of %d): %w",
				len(pivots), n, ErrSingular)
		}
	}
	x := make([]bool, n)
	for r, c := range pivots {
		x[c] = m.At(r, n)
	}
	return x, nil
}

// RankGF2 returns the rank of a over GF(2); a is not modified.
func RankGF2(a *matrix.Bits) int {
	m := a.Clone()
	return len(gf2RREF(m, m.Cols()))
}

// gf2RREF reduces m in place to reduced row-echelon form over GF(2)
// considering pivots in the first cols columns only (the remaining
// columns — e.g. an augmented right-hand side — are carried along).
// It returns the pivot column of each pivot row, in row order; the
// length of the result is the rank of m's first cols columns.
func gf2RREF(m *matrix.Bits, cols int) []int {
	rows := m.Rows()
	pivots := make([]int, 0, min(rows, cols))
	r := 0
	for c := 0; c < cols && r < rows; c++ {
		p := -1
		for i := r; i < rows; i++ {
			if m.At(i, c) {
				p = i
				break
			}
		}
		if p < 0 {
			continue
		}
		m.SwapRows(r, p)
		// Jordan step: clear column c in every other row with one
		// word-parallel XOR of the pivot row's suffix [c, Cols()).
		src, _, _ := m.RowSpan(r, c, m.Cols())
		for i := 0; i < rows; i++ {
			if i == r || !m.At(i, c) {
				continue
			}
			dst, fm, lm := m.RowSpan(i, c, m.Cols())
			nw := len(dst)
			if nw == 1 {
				dst[0] ^= src[0] & fm
				continue
			}
			dst[0] ^= src[0] & fm
			for w := 1; w < nw-1; w++ {
				dst[w] ^= src[w]
			}
			dst[nw-1] ^= src[nw-1] & lm
		}
		pivots = append(pivots, c)
		r++
	}
	return pivots
}

// MulVecGF2 returns A·x over GF(2): out[i] = ⊕_j A[i,j]∧x[j], the
// verification primitive for SolveGF2. Aligned matrices run
// word-parallel (AND + popcount-parity per word).
func MulVecGF2(a *matrix.Bits, x []bool) []bool {
	rows, cols := a.Rows(), a.Cols()
	if len(x) != cols {
		panic(fmt.Sprintf("linalg: MulVecGF2 got %d-vector for %dx%d matrix", len(x), rows, cols))
	}
	out := make([]bool, rows)
	if cols == 0 {
		return out
	}
	if !a.Aligned() {
		for i := 0; i < rows; i++ {
			acc := false
			for j := 0; j < cols; j++ {
				acc = acc != (a.At(i, j) && x[j])
			}
			out[i] = acc
		}
		return out
	}
	xw := make([]uint64, (cols+63)>>6)
	for j, v := range x {
		if v {
			xw[j>>6] |= 1 << (uint(j) & 63)
		}
	}
	for i := 0; i < rows; i++ {
		row, fm, lm := a.RowSpan(i, 0, cols)
		nw := len(row)
		pop := 0
		if nw == 1 {
			pop = mathbits.OnesCount64(row[0] & fm & xw[0])
		} else {
			pop = mathbits.OnesCount64(row[0]&fm&xw[0]) +
				mathbits.OnesCount64(row[nw-1]&lm&xw[nw-1])
			for w := 1; w < nw-1; w++ {
				pop += mathbits.OnesCount64(row[w] & xw[w])
			}
		}
		out[i] = pop&1 == 1
	}
	return out
}
