package linalg

// Engine-backed entry points: the same computations as the
// hand-specialized kernels in this package, expressed through the
// generic core engines with the fused update ops. They exist so the
// benchmarks (and downstream users who want the engines' generality —
// wrapper grids, traces, out-of-core stores) get the closed-form block
// kernels without writing per-application recursions.
//
// Every parallel entry point has an ...On sibling taking an optional
// *par.Runtime: nil runs on the process-wide default runtime (the
// historical behavior), a non-nil runtime confines all forks to that
// runtime's worker budget — the per-job isolation internal/serve is
// built on.

import (
	"gep/internal/core"
	"gep/internal/matrix"
	"gep/internal/par"
)

// MulFused computes c += a·b through RunDisjoint with the fused
// multiply-accumulate op (4×4 register-tiled micro-kernel on fully
// covered blocks). Sides must be equal powers of two. The result is
// bit-identical to the generic engine with the same op.
func MulFused(c, a, b *matrix.Dense[float64], base int) {
	checkMulDims(c, a, b)
	core.RunDisjoint[float64](c, a, b, b, core.MulAdd[float64]{}, core.Full{},
		core.WithBaseSize[float64](base))
}

// MulFusedParallel is MulFused through the multithreaded all-D
// recursion: forks above the grain go to the work-stealing runtime
// (internal/par), base blocks run the same fused micro-kernel. The
// all-D recursion has span O(n) (Theorem 3.1), the best-scaling
// workload of Figure 12. Results are bit-identical to MulFused.
func MulFusedParallel(c, a, b *matrix.Dense[float64], base, grain int) {
	MulFusedParallelOn(nil, c, a, b, base, grain)
}

// MulFusedParallelOn is MulFusedParallel with all forks confined to
// rt (nil = the default runtime).
func MulFusedParallelOn(rt *par.Runtime, c, a, b *matrix.Dense[float64], base, grain int) {
	checkMulDims(c, a, b)
	core.RunDisjoint[float64](c, a, b, b, core.MulAdd[float64]{}, core.Full{},
		core.WithBaseSize[float64](base), core.WithParallel[float64](grain),
		core.WithRuntime[float64](rt))
}

// LUFused performs in-place LU decomposition (multipliers below the
// diagonal) through RunIGEP with the fused LU op over the LU set.
func LUFused(c *matrix.Dense[float64], base int) {
	core.RunIGEP[float64](c, core.LUFactor[float64]{}, core.LU{},
		core.WithBaseSize[float64](base))
}

// LUFusedParallel is LUFused through the multithreaded A/B/C/D
// recursion (Figure 6) on the work-stealing runtime. RunABCD refines
// the same partial order as RunIGEP, so results are bit-identical to
// LUFused at every worker count.
func LUFusedParallel(c *matrix.Dense[float64], base, grain int) {
	LUFusedParallelOn(nil, c, base, grain)
}

// LUFusedParallelOn is LUFusedParallel with all forks confined to rt
// (nil = the default runtime).
func LUFusedParallelOn(rt *par.Runtime, c *matrix.Dense[float64], base, grain int) {
	core.RunABCD[float64](c, core.LUFactor[float64]{}, core.LU{},
		core.WithBaseSize[float64](base), core.WithParallel[float64](grain),
		core.WithRuntime[float64](rt))
}

// GaussFused performs in-place Gaussian elimination (no multipliers
// stored) through RunIGEP with the fused elimination op over the
// Gaussian set.
func GaussFused(c *matrix.Dense[float64], base int) {
	core.RunIGEP[float64](c, core.GaussElim[float64]{}, core.Gaussian{},
		core.WithBaseSize[float64](base))
}

// GaussFusedParallel is GaussFused through the multithreaded A/B/C/D
// recursion on the work-stealing runtime; bit-identical to GaussFused
// at every worker count.
func GaussFusedParallel(c *matrix.Dense[float64], base, grain int) {
	GaussFusedParallelOn(nil, c, base, grain)
}

// GaussFusedParallelOn is GaussFusedParallel with all forks confined
// to rt (nil = the default runtime).
func GaussFusedParallelOn(rt *par.Runtime, c *matrix.Dense[float64], base, grain int) {
	core.RunABCD[float64](c, core.GaussElim[float64]{}, core.Gaussian{},
		core.WithBaseSize[float64](base), core.WithParallel[float64](grain),
		core.WithRuntime[float64](rt))
}
