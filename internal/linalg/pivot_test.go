package linalg

import (
	"math"
	"math/rand"
	"testing"

	"gep/internal/matrix"
)

func TestFactorSolvesGeneralMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for _, n := range []int{1, 2, 5, 16, 40} {
		// General (not diagonally dominant) random matrix: pivot-free
		// elimination would be unstable or break; LUP must handle it.
		a := matrix.NewSquare[float64](n)
		a.Apply(func(i, j int, _ float64) float64 { return rng.NormFloat64() })
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := MatVec(a, x)
		f, err := Factor(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got := f.Solve(b)
		if r := Residual(a, got, b); r > 1e-8 {
			t.Fatalf("n=%d: residual %g", n, r)
		}
	}
}

func TestFactorNeedsPivotingCase(t *testing.T) {
	// Zero leading pivot: pivot-free elimination is impossible; LUP
	// succeeds.
	a := matrix.FromRows([][]float64{{0, 1}, {1, 0}})
	if !NeedsPivoting(a, 16) {
		t.Fatal("zero pivot not detected")
	}
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve([]float64{2, 3})
	if x[0] != 3 || x[1] != 2 {
		t.Fatalf("x = %v, want [3 2]", x)
	}
	if d := f.Det(); d != -1 {
		t.Fatalf("det = %g, want -1", d)
	}
}

func TestFactorSingular(t *testing.T) {
	a := matrix.FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Factor(a); err == nil {
		t.Fatal("singular matrix accepted")
	}
}

func TestLUPDetMatchesPivotFree(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, n := range []int{3, 8, 17} {
		a := matrix.NewSquare[float64](n)
		a.Apply(func(i, j int, _ float64) float64 {
			if i == j {
				return float64(2 * n)
			}
			return rng.Float64()
		})
		f, err := Factor(a)
		if err != nil {
			t.Fatal(err)
		}
		dPivot := f.Det()
		dFree := Determinant(a)
		if rel := math.Abs(dPivot-dFree) / math.Abs(dPivot); rel > 1e-8 {
			t.Fatalf("n=%d: pivoted det %g vs pivot-free %g", n, dPivot, dFree)
		}
	}
}

func TestNeedsPivotingAcceptsDominant(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	a := diagDominant(rng, 16)
	if NeedsPivoting(a, 16) {
		t.Fatal("diagonally dominant matrix flagged")
	}
}

func TestFactorDoesNotModifyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	a := matrix.NewSquare[float64](6)
	a.Apply(func(i, j int, _ float64) float64 { return rng.NormFloat64() })
	orig := a.Clone()
	if _, err := Factor(a); err != nil {
		t.Fatal(err)
	}
	if !a.EqualFunc(orig, func(x, y float64) bool { return x == y }) {
		t.Fatal("Factor modified its input")
	}
}

func TestLUPSolveValidation(t *testing.T) {
	a := matrix.FromRows([][]float64{{1, 0}, {0, 1}})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Solve([]float64{1})
}
