package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"gep/internal/matrix"
)

func TestFactorSolvesGeneralMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for _, n := range []int{1, 2, 5, 16, 40} {
		// General (not diagonally dominant) random matrix: pivot-free
		// elimination would be unstable or break; LUP must handle it.
		a := matrix.NewSquare[float64](n)
		a.Apply(func(i, j int, _ float64) float64 { return rng.NormFloat64() })
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := MatVec(a, x)
		f, err := Factor(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got := f.Solve(b)
		if r := Residual(a, got, b); r > 1e-8 {
			t.Fatalf("n=%d: residual %g", n, r)
		}
	}
}

func TestFactorNeedsPivotingCase(t *testing.T) {
	// Zero leading pivot: pivot-free elimination is impossible; LUP
	// succeeds.
	a := matrix.FromRows([][]float64{{0, 1}, {1, 0}})
	if !NeedsPivoting(a, 16) {
		t.Fatal("zero pivot not detected")
	}
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve([]float64{2, 3})
	if x[0] != 3 || x[1] != 2 {
		t.Fatalf("x = %v, want [3 2]", x)
	}
	if d := f.Det(); d != -1 {
		t.Fatalf("det = %g, want -1", d)
	}
}

func TestFactorSingular(t *testing.T) {
	a := matrix.FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Factor(a); err == nil {
		t.Fatal("singular matrix accepted")
	}
}

func TestLUPDetMatchesPivotFree(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, n := range []int{3, 8, 17} {
		a := matrix.NewSquare[float64](n)
		a.Apply(func(i, j int, _ float64) float64 {
			if i == j {
				return float64(2 * n)
			}
			return rng.Float64()
		})
		f, err := Factor(a)
		if err != nil {
			t.Fatal(err)
		}
		dPivot := f.Det()
		dFree := Determinant(a)
		if rel := math.Abs(dPivot-dFree) / math.Abs(dPivot); rel > 1e-8 {
			t.Fatalf("n=%d: pivoted det %g vs pivot-free %g", n, dPivot, dFree)
		}
	}
}

func TestNeedsPivotingAcceptsDominant(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	a := diagDominant(rng, 16)
	if NeedsPivoting(a, 16) {
		t.Fatal("diagonally dominant matrix flagged")
	}
}

func TestFactorDoesNotModifyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	a := matrix.NewSquare[float64](6)
	a.Apply(func(i, j int, _ float64) float64 { return rng.NormFloat64() })
	orig := a.Clone()
	if _, err := Factor(a); err != nil {
		t.Fatal(err)
	}
	if !a.EqualFunc(orig, func(x, y float64) bool { return x == y }) {
		t.Fatal("Factor modified its input")
	}
}

func TestLUPSolveValidation(t *testing.T) {
	a := matrix.FromRows([][]float64{{1, 0}, {0, 1}})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Solve([]float64{1})
}

// TestNeedsPivotingNonFinite: regression for the NaN-blind guard — a
// non-finite pivot or multiplier fails both m > growth and m < -growth,
// so the old range check reported poisoned matrices safe for the
// pivot-free path.
func TestNeedsPivotingNonFinite(t *testing.T) {
	cases := []struct {
		name string
		rows [][]float64
	}{
		{"nan pivot", [][]float64{{math.NaN(), 1}, {1, 1}}},
		{"inf pivot", [][]float64{{math.Inf(1), 1}, {1, 1}}},
		{"neg inf pivot", [][]float64{{math.Inf(-1), 1}, {1, 1}}},
		{"nan multiplier", [][]float64{{1, 1}, {math.NaN(), 1}}},
		{"inf multiplier", [][]float64{{1, 1}, {math.Inf(1), 1}}},
		// NaN away from column 0 propagates into a later pivot.
		{"nan propagates", [][]float64{{4, math.NaN(), 0}, {1, 4, 0}, {0, 1, 4}}},
		// Finite but huge entry: 1/1e-300 overflows the multiplier to
		// +Inf without any non-finite input value.
		{"overflowing multiplier", [][]float64{{1e-300, 1}, {1e300, 1}}},
	}
	for _, tc := range cases {
		a := matrix.FromRows(tc.rows)
		if !NeedsPivoting(a, 16) {
			t.Errorf("%s: reported safe for the pivot-free path", tc.name)
		}
	}
}

// TestFactorErrSingular: the sentinel must be match-able with
// errors.Is and carry the offending column in the message.
func TestFactorErrSingular(t *testing.T) {
	a := matrix.FromRows([][]float64{{1, 2}, {2, 4}})
	_, err := Factor(a)
	if err == nil {
		t.Fatal("singular matrix accepted")
	}
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("Factor error %v does not wrap ErrSingular", err)
	}
	// Zero matrix: singular at column 0.
	if _, err := Factor(matrix.NewSquare[float64](3)); !errors.Is(err, ErrSingular) {
		t.Fatalf("zero matrix error %v does not wrap ErrSingular", err)
	}
}

// TestFactorThresholdAware: a column whose entries cancel to values
// negligible against the input column's magnitude must be reported
// singular instead of dividing by a denormal and producing Inf
// factors. The old check accepted any exactly-nonzero pivot.
func TestFactorThresholdAware(t *testing.T) {
	// Column 1 cancels from magnitude 1e16 down to 2 — far below
	// n·ε·1e16 ≈ 6.7, i.e. singular to working precision. The old
	// exact-zero check accepted the pivot 2 and returned garbage
	// factors silently.
	a := matrix.FromRows([][]float64{
		{1e16, 1e16, 0},
		{1e16, 1e16 + 2, 1},
		{1e16, 1e16 - 2, 2},
	})
	_, err := Factor(a)
	if err == nil {
		t.Fatal("numerically singular matrix accepted")
	}
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("error %v does not wrap ErrSingular", err)
	}
	// Same cancellation at denormal scale: the surviving pivot
	// (~1.7e-310) is subnormal and 1/pivot overflows, so the old path
	// silently produced Inf factors.
	d := matrix.FromRows([][]float64{
		{1e-294, 1e-294, 0},
		{1e-294, 1e-294 + 1e-310, 1},
		{1e-294, 1e-294 - 1e-310, 2},
	})
	if _, err := Factor(d); !errors.Is(err, ErrSingular) {
		t.Fatalf("denormal-pivot matrix: error %v does not wrap ErrSingular", err)
	}
	// NaN input: poisoned columns are singular, not factorable.
	b := matrix.FromRows([][]float64{{math.NaN(), 1}, {1, 1}})
	if _, err := Factor(b); !errors.Is(err, ErrSingular) {
		t.Fatalf("NaN matrix: error %v does not wrap ErrSingular", err)
	}
	// Uniformly tiny but perfectly conditioned: must still factor
	// (the threshold is relative to the column, not absolute).
	c := matrix.FromRows([][]float64{{1e-300, 0}, {0, 1e-300}})
	f, err := Factor(c)
	if err != nil {
		t.Fatalf("tiny well-conditioned matrix rejected: %v", err)
	}
	x := f.Solve([]float64{1e-300, 2e-300})
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("x = %v, want [1 2]", x)
	}
}

// TestLUPDegenerate: the audited LUP surface — n=0 factorizations have
// defined results, invalid receivers panic with a diagnostic.
func TestLUPDegenerate(t *testing.T) {
	// n=0: valid, empty solution, det of the empty matrix is 1.
	f, err := Factor(matrix.NewSquare[float64](0))
	if err != nil {
		t.Fatal(err)
	}
	if x := f.Solve(nil); len(x) != 0 {
		t.Fatalf("n=0 Solve returned %v", x)
	}
	if d := f.Det(); d != 1 {
		t.Fatalf("n=0 Det = %g, want 1", d)
	}

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	// A failed Factor returns a nil *LUP; using it must panic with the
	// diagnostic, not dereference garbage.
	bad, err := Factor(matrix.FromRows([][]float64{{1, 2}, {2, 4}}))
	if err == nil {
		t.Fatal("singular matrix accepted")
	}
	mustPanic("nil.Solve", func() { bad.Solve([]float64{1, 2}) })
	mustPanic("nil.Det", func() { _ = bad.Det() })
	mustPanic("zero.Solve", func() { new(LUP).Solve(nil) })
	mustPanic("zero.Det", func() { _ = new(LUP).Det() })
	mustPanic("mismatched perm", func() {
		f := &LUP{LU: matrix.NewSquare[float64](2), Perm: []int{0}}
		_ = f.Det()
	})
}
