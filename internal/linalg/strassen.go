package linalg

// Strassen-Winograd matrix multiplication: the first engine in this
// repository that is asymptotically faster than the paper's Θ(n³) GEP
// family. The recursion trades one of the eight classical quadrant
// multiplies for fifteen quadrant additions (Winograd's operation-
// minimal variant of Strassen's identity), giving O(n^log₂7) ≈
// O(n^2.807) flops, and switches to the classical cache-oblivious
// recursion at a crossover size where the O(s²) addition overhead
// stops paying for the saved eighth multiply. Classical leaves bottom
// out in the existing fused disjoint kernel (core.DisjointBlock →
// MulAdd.DisjointKernel / kernelFlat), so below the crossover the
// engine is exactly the MulFused machinery.
//
// Design points (DESIGN.md §15):
//
//   - Temporaries come from a pooled arena: the serial Winograd
//     schedule (Douglas et al.'s two-temporary ordering) needs exactly
//     two (s/2)² buffers per level, reused across the seven sibling
//     products, so the total extra working set is 2·(n/2)²·Σ4⁻ᵏ ≤
//     2n²/3 — and the arena recycles freed buffers across levels and
//     sizes, so repeated calls allocate nothing.
//   - Non-power-of-two sides use dynamic peeling: an odd side s is
//     handled as the even (s−1)-side product plus a rank-1 update and
//     one peeled row/column of full dot products — O(s²) fix-up work,
//     no full-matrix padding copy.
//   - Parallel entry points fork the classical sub-multiplies'
//     quadrants on the par.Runtime work-stealing pool with the same
//     depth-cutoff discipline as RunABCD (the runtime inlines forks
//     past its cutoff); the fork grain is sized from Runtime.Workers,
//     never from GOMAXPROCS. The Winograd chain itself is sequenced so
//     sibling products can share the two arena temporaries.
//   - Determinism: every output cell's value is a fixed expression
//     tree — the schedule fixes which products feed which quadrant and
//     in which association order, and classical accumulation applies
//     strictly ascending in k with the two-rounding (t := u·v; x += t)
//     discipline of the fused kernels. Scheduling only reorders
//     disjoint writes, so results are bit-identical run-to-run, across
//     worker counts, and between MulStrassen and MulStrassenParallel.
//
// MulStrassen computes c = a·b (overwrite), unlike MulFused's
// accumulate contract: the sub-cubic recursion has no natural
// c += a·b form without one extra n² buffer, and every caller in this
// repository multiplies into a fresh matrix. c must not overlap a or b.

import (
	"math/bits"
	"sync"

	"gep/internal/core"
	"gep/internal/matrix"
	"gep/internal/metrics"
	"gep/internal/par"
)

// DefaultCrossover is the auto-tuned side at which the Winograd
// recursion hands over to the classical fused recursion. Measured
// against MulFused on the benchmark container (EXPERIMENTS.md records
// the sweep): at n ∈ {1024, 2048} crossovers of 64–192 all beat
// MulFused, with the minimum near 64–128 — the fused kernel is scalar
// Go, so the saved eighth multiply pays down to small leaves — while
// larger crossovers forfeit Winograd levels (co=512 gives 6.1s vs
// 3.9s at n=2048 against 7.7s fused). 128 is chosen over 64 to keep
// one fork level inside parallel classical leaves and two doublings
// of error-bound headroom. WithCrossover overrides it.
const DefaultCrossover = 128

// strassenBase is the side at which classical leaves call the fused
// disjoint kernel — the same empirically tuned base size as the other
// engines (core's autoBaseSize).
const strassenBase = 64

// Arena telemetry: get/put must balance after every run (the leak
// assertion in strassen_test.go), and alloc < get whenever buffers are
// actually recycled across siblings and levels.
var (
	arenaGetCount   = metrics.New("linalg.strassen.arena.get")
	arenaPutCount   = metrics.New("linalg.strassen.arena.put")
	arenaAllocCount = metrics.New("linalg.strassen.arena.alloc")
	strassenNodes   = metrics.New("linalg.strassen.nodes")
)

// StrassenOption configures MulStrassen; see WithCrossover.
type StrassenOption func(*strassenCfg)

type strassenCfg struct {
	crossover int
}

// WithCrossover overrides the Winograd→classical crossover side
// (values < 1 keep DefaultCrossover). A crossover at or above n runs
// the purely classical recursion — bit-identical to MulFused on a
// zeroed destination.
func WithCrossover(s int) StrassenOption {
	return func(c *strassenCfg) {
		if s >= 1 {
			c.crossover = s
		}
	}
}

// fview is an s×s strided window over flat row-major storage; the side
// travels alongside in the recursion.
type fview struct {
	d      []float64
	stride int
}

func viewOf(m *matrix.Dense[float64]) fview {
	d, stride, _ := matrix.Flat[float64](m)
	return fview{d: d, stride: stride}
}

func (v fview) sub(i, j int) fview { return fview{d: v.d[i*v.stride+j:], stride: v.stride} }

func (v fview) row(i, s int) []float64 { return v.d[i*v.stride : i*v.stride+s] }

// arena pools temp buffers by side. Gets and puts may race only when a
// future schedule forks Winograd nodes; the mutex is uncontended in the
// sequenced schedule and costs two atomic ops per (s/2)²-sized buffer.
type arena struct {
	mu   sync.Mutex
	free map[int][][]float64
}

func newArena() *arena { return &arena{free: map[int][][]float64{}} }

func (ar *arena) get(h int) []float64 {
	arenaGetCount.Inc()
	ar.mu.Lock()
	if l := ar.free[h]; len(l) > 0 {
		buf := l[len(l)-1]
		ar.free[h] = l[:len(l)-1]
		ar.mu.Unlock()
		return buf
	}
	ar.mu.Unlock()
	arenaAllocCount.Inc()
	return make([]float64, h*h)
}

func (ar *arena) put(h int, buf []float64) {
	arenaPutCount.Inc()
	ar.mu.Lock()
	ar.free[h] = append(ar.free[h], buf)
	ar.mu.Unlock()
}

type strassenState struct {
	crossover int
	base      int
	grain     int          // classical quadrants fork while s > grain
	rt        *par.Runtime // nil = serial
	ar        *arena
}

// MulStrassen computes c = a·b (overwriting c) with the serial
// Strassen-Winograd recursion. Any side length; c must not overlap
// a or b.
func MulStrassen(c, a, b *matrix.Dense[float64], opts ...StrassenOption) {
	mulStrassen(nil, c, a, b, opts)
}

// MulStrassenParallel is MulStrassen with the classical sub-multiplies
// forked on the default work-stealing runtime. Bit-identical to
// MulStrassen at every worker count.
func MulStrassenParallel(c, a, b *matrix.Dense[float64], opts ...StrassenOption) {
	mulStrassen(par.Or(nil), c, a, b, opts)
}

// MulStrassenParallelOn is MulStrassenParallel with all forks confined
// to rt (nil = the default runtime).
func MulStrassenParallelOn(rt *par.Runtime, c, a, b *matrix.Dense[float64], opts ...StrassenOption) {
	mulStrassen(par.Or(rt), c, a, b, opts)
}

func mulStrassen(rt *par.Runtime, c, a, b *matrix.Dense[float64], opts []StrassenOption) {
	n := checkMulDims(c, a, b)
	if n == 0 {
		return
	}
	cfg := strassenCfg{crossover: DefaultCrossover}
	for _, o := range opts {
		o(&cfg)
	}
	st := &strassenState{crossover: cfg.crossover, base: strassenBase, rt: rt, ar: newArena()}
	if rt != nil {
		// Fork grain sized from the runtime's actual worker budget
		// (Runtime.Workers, not GOMAXPROCS), mirroring par's automatic
		// depth cutoff of log₂(workers)+2 fork levels: quadrant halving
		// below n>>levels could only create forks the runtime would
		// inline anyway.
		levels := bits.Len(uint(rt.Workers())) + 2
		st.grain = n >> levels
		if st.grain < st.base {
			st.grain = st.base
		}
	}
	st.mul(viewOf(c), viewOf(a), viewOf(b), n)
}

// mul computes C = A·B (overwrite) on s×s views.
func (st *strassenState) mul(c, a, b fview, s int) {
	if s <= st.crossover {
		zero(c, s)
		st.classic(c, a, b, s)
		return
	}
	if s&1 == 1 {
		// Dynamic peeling: even-side product on the leading block, then
		// O(s²) fix-ups for the peeled row, column, and k = s−1 term.
		st.mul(c, a, b, s-1)
		st.peelFixup(c, a, b, s, true)
		return
	}
	st.winograd(c, a, b, s)
}

// winograd is one Strassen-Winograd level: 7 sub-products + 15
// quadrant additions in the two-temporary ordering of Douglas et al.
// With S1 = A21+A22, S2 = S1−A11, S3 = A11−A21, S4 = A12−S2,
// T1 = B12−B11, T2 = B22−T1, T3 = B22−B12, T4′ = B21−T2 and products
// P1 = A11·B11, P2 = A12·B21, P3 = S4·B22, P4′ = A22·T4′, P5 = S1·T1,
// P6 = S2·T2, P7 = S3·T3, the output quadrants are
//
//	C11 = P1 + P2
//	C12 = ((P6 + P1) + P5) + P3
//	C21 = ((P6 + P1) + P7) + P4′
//	C22 = ((P6 + P1) + P7) + P5
//
// (P4′ absorbs the conventional U3−P4 subtraction into its right
// operand, so every combination step is an addition). The schedule
// below realizes exactly these expression trees while keeping only the
// two temporaries X and Y live.
func (st *strassenState) winograd(c, a, b fview, s int) {
	strassenNodes.Inc()
	h := s / 2
	a11, a12, a21, a22 := a, a.sub(0, h), a.sub(h, 0), a.sub(h, h)
	b11, b12, b21, b22 := b, b.sub(0, h), b.sub(h, 0), b.sub(h, h)
	c11, c12, c21, c22 := c, c.sub(0, h), c.sub(h, 0), c.sub(h, h)

	xb, yb := st.ar.get(h), st.ar.get(h)
	x, y := fview{d: xb, stride: h}, fview{d: yb, stride: h}

	subv(x, a11, a21, h)   // X = S3
	subv(y, b22, b12, h)   // Y = T3
	st.mul(c21, x, y, h)   // C21 = P7
	addv(x, a21, a22, h)   // X = S1
	subv(y, b12, b11, h)   // Y = T1
	st.mul(c22, x, y, h)   // C22 = P5
	subv(x, x, a11, h)     // X = S2
	subv(y, b22, y, h)     // Y = T2
	st.mul(c12, x, y, h)   // C12 = P6
	subv(x, a12, x, h)     // X = S4
	st.mul(c11, x, b22, h) // C11 = P3
	st.mul(x, a11, b11, h) // X = P1 (S4 was consumed by P3)
	addacc(c12, x, h)      // C12 = P6 + P1          (U2)
	addacc(c21, c12, h)    // C21 = U2 + P7          (U3)
	addacc(c12, c22, h)    // C12 = U2 + P5          (U4)
	addacc(c22, c21, h)    // C22 = U3 + P5          final
	addacc(c12, c11, h)    // C12 = U4 + P3          final
	subv(y, b21, y, h)     // Y = T4′
	st.mul(c11, a22, y, h) // C11 = P4′ (P3 was consumed above)
	addacc(c21, c11, h)    // C21 = U3 + P4′         final
	st.mul(y, a12, b21, h) // Y = P2 (T4′ was consumed by P4′)
	addto(c11, x, y, h)    // C11 = P1 + P2          final

	st.ar.put(h, xb)
	st.ar.put(h, yb)
}

// classic computes C += A·B with the classical cache-oblivious
// recursion on any side: odd sides peel, even sides split 8-way with
// the two k-halves sequenced (each cell's additions stay in ascending
// k order), and base blocks run the fused disjoint kernel. On
// power-of-two sides this is exactly MulFused's update order.
func (st *strassenState) classic(c, a, b fview, s int) {
	if s <= st.base {
		core.DisjointBlock[float64](core.MulAdd[float64]{}, core.Full{},
			c.d, c.stride, a.d, a.stride, b.d, b.stride, b.d, b.stride, s)
		return
	}
	if s&1 == 1 {
		st.classic(c, a, b, s-1)
		st.peelFixup(c, a, b, s, false)
		return
	}
	h := s / 2
	c11, c12, c21, c22 := c, c.sub(0, h), c.sub(h, 0), c.sub(h, h)
	a1, a2 := a, a.sub(0, h) // A[*, k-half] views: (row half, k half)
	b1, b2 := b, b.sub(h, 0)
	if st.rt != nil && s > st.grain {
		st.rt.Do(
			func() { st.classic(c11, a1, b1, h) },
			func() { st.classic(c12, a1, b1.sub(0, h), h) },
			func() { st.classic(c21, a1.sub(h, 0), b1, h) },
			func() { st.classic(c22, a1.sub(h, 0), b1.sub(0, h), h) },
		)
		st.rt.Do(
			func() { st.classic(c11, a2, b2, h) },
			func() { st.classic(c12, a2, b2.sub(0, h), h) },
			func() { st.classic(c21, a2.sub(h, 0), b2, h) },
			func() { st.classic(c22, a2.sub(h, 0), b2.sub(0, h), h) },
		)
		return
	}
	st.classic(c11, a1, b1, h)
	st.classic(c12, a1, b1.sub(0, h), h)
	st.classic(c21, a1.sub(h, 0), b1, h)
	st.classic(c22, a1.sub(h, 0), b1.sub(0, h), h)
	st.classic(c11, a2, b2, h)
	st.classic(c12, a2, b2.sub(0, h), h)
	st.classic(c21, a2.sub(h, 0), b2, h)
	st.classic(c22, a2.sub(h, 0), b2.sub(0, h), h)
}

// peelFixup applies the peeled contributions of an odd side s = m+1
// after the even m×m product: the k = m rank-1 term into the leading
// block (ascending-k order is preserved — every k < m contribution was
// already applied), then the peeled column j = m and row i = m as full
// dot products. overwrite selects product semantics for the peeled
// row/column (their cells received no contribution from the leading
// product); the rank-1 term always accumulates.
func (st *strassenState) peelFixup(c, a, b fview, s int, overwrite bool) {
	m := s - 1
	bm := b.row(m, m)
	for i := 0; i < m; i++ {
		u := a.d[i*a.stride+m]
		cr := c.row(i, m)
		for j, v := range bm {
			t := u * v
			cr[j] += t
		}
	}
	// Peeled column j = m, rows 0..m-1.
	for i := 0; i < m; i++ {
		ar := a.row(i, s)
		x := 0.0
		if !overwrite {
			x = c.d[i*c.stride+m]
		}
		for k, u := range ar {
			t := u * b.d[k*b.stride+m]
			x += t
		}
		c.d[i*c.stride+m] = x
	}
	// Peeled row i = m, all s columns, k outer (row-contiguous in B).
	am := a.row(m, s)
	cm := c.row(m, s)
	if overwrite {
		for j := range cm {
			cm[j] = 0
		}
	}
	for k, u := range am {
		br := b.row(k, s)
		for j, v := range br {
			t := u * v
			cm[j] += t
		}
	}
}

func zero(c fview, s int) {
	for i := 0; i < s; i++ {
		row := c.row(i, s)
		for j := range row {
			row[j] = 0
		}
	}
}

// addv sets dst = x + y elementwise.
func addv(dst, x, y fview, s int) {
	for i := 0; i < s; i++ {
		d, xr, yr := dst.row(i, s), x.row(i, s), y.row(i, s)
		for j, xv := range xr {
			d[j] = xv + yr[j]
		}
	}
}

// subv sets dst = x − y elementwise (dst may alias x or y).
func subv(dst, x, y fview, s int) {
	for i := 0; i < s; i++ {
		d, xr, yr := dst.row(i, s), x.row(i, s), y.row(i, s)
		for j, xv := range xr {
			d[j] = xv - yr[j]
		}
	}
}

// addacc sets dst += src elementwise.
func addacc(dst, src fview, s int) {
	for i := 0; i < s; i++ {
		d, sr := dst.row(i, s), src.row(i, s)
		for j, sv := range sr {
			d[j] += sv
		}
	}
}

// addto sets dst = x + y elementwise (dst disjoint from both).
func addto(dst, x, y fview, s int) { addv(dst, x, y, s) }

// StrassenErrorBound returns an a-priori bound on the max-norm error
// of MulStrassen relative to the exact product, following Higham's
// analysis of the Winograd variant (Accuracy and Stability of
// Numerical Algorithms, §23.2.2): with L Winograd levels above a
// crossover n₀, ‖Ĉ−C‖ ≤ 18^L·(n₀²+5n₀)·u·‖A‖‖B‖ to first order, where
// ‖·‖ is the max-abs-entry norm and u = 2⁻⁵³. The level count is taken
// conservatively (peeling rounds the halving up, and the classical
// −5n credit is dropped), so the bound holds for every side, and the
// differential tests compare |MulStrassen − MulFused| against it —
// the classical side's own error is far below the Strassen term.
func StrassenErrorBound(n, crossover int, maxA, maxB float64) float64 {
	const u = 0x1p-53
	if crossover < 1 {
		crossover = DefaultCrossover
	}
	levels := 0
	for s := n; s > crossover; s = (s + 1) / 2 {
		levels++
	}
	n0 := float64(minInt(crossover, n)) + 1
	f := n0*n0 + 5*n0
	for i := 0; i < levels; i++ {
		f *= 18
	}
	return f * u * maxA * maxB
}
