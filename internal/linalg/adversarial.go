package linalg

import "gep/internal/matrix"

// Adversarial fixtures for the pivoting path: matrices on which
// unpivoted elimination is unstable (or outright undefined) while a
// pivoted factorization stays accurate. They are exported so the
// linalg oracle tests and the bench `pivot` experiment measure the
// same inputs; see EXPERIMENTS.md ("pivot").

// Wilkinson returns the classic growth matrix: unit diagonal, −1
// strictly below it, +1 in the last column. Partial pivoting performs
// no swaps on it and the last column doubles at every step, so element
// growth reaches 2^(n−1) — the worst case for GEPP. It stresses both
// the pivoted and the unpivoted path equally (the pivot order is
// identical); use it to check they agree, not to separate them.
func Wilkinson(n int) *matrix.Dense[float64] {
	a := matrix.NewSquare[float64](n)
	a.Apply(func(i, j int, _ float64) float64 {
		switch {
		case i == j:
			return 1
		case j == n-1:
			return 1
		case i > j:
			return -1
		default:
			return 0
		}
	})
	return a
}

// TinyPivot returns a strictly diagonally dominant matrix with one
// poisoned entry: a[0][0] = 1e−18. Unpivoted elimination divides the
// whole first column by it (multipliers ~10¹⁸) and the factorization
// explodes; any pivoted path swaps row 0 away and solves to machine
// precision.
func TinyPivot(n int) *matrix.Dense[float64] {
	a := matrix.NewSquare[float64](n)
	a.Apply(func(i, j int, _ float64) float64 {
		if i == j {
			return float64(n) + 2
		}
		// Deterministic off-diagonal pattern in (−1, 1).
		return float64((i*31+j*17)%19-9) / 10
	})
	a.Set(0, 0, 1e-18)
	return a
}

// SignAlternating returns εI + s·sᵀ − I with s[i] = (−1)^i and
// ε = 1e−14: every off-diagonal entry is ±1 and every diagonal entry
// is ε. Its eigenvalues are ε−1 (n−1 of them) and ε−1+n, so it is well
// conditioned for moderate n — but every leading pivot of the
// unpivoted path is ε, giving multipliers of ±10¹⁴ at the very first
// column and garbage factors. A pivoted path swaps freely and stays at
// machine precision.
func SignAlternating(n int) *matrix.Dense[float64] {
	a := matrix.NewSquare[float64](n)
	a.Apply(func(i, j int, _ float64) float64 {
		if i == j {
			return 1e-14
		}
		if (i+j)%2 == 0 {
			return 1
		}
		return -1
	})
	return a
}

// NearSingular returns a diagonally dominant matrix whose last row is
// the sum of its first two rows plus a δ = 1e−8 diagonal perturbation:
// numerically rank-deficient to about 8 digits but still factorable.
// Pivoted solves keep a small residual (the factorization is backward
// stable even when x itself is sensitive); it is the conditioning
// stress in the fixture set.
func NearSingular(n int) *matrix.Dense[float64] {
	a := matrix.NewSquare[float64](n)
	a.Apply(func(i, j int, _ float64) float64 {
		if i == j {
			return float64(n) + 1
		}
		return float64((i*13+j*7)%11-5) / 10
	})
	if n >= 3 {
		r0, r1, rl := a.Row(0), a.Row(1), a.Row(n-1)
		for j := 0; j < n; j++ {
			rl[j] = r0[j] + r1[j]
		}
		rl[n-1] += 1e-8
	}
	return a
}

// AdversarialFixture names one fixture matrix; Adversarial enumerates
// them for table-driven tests and the bench experiment.
type AdversarialFixture struct {
	Name string
	// Make builds the n×n instance.
	Make func(n int) *matrix.Dense[float64]
	// Separates reports whether the fixture is expected to separate
	// pivoted from unpivoted elimination (residual oracle): true for
	// the tiny-pivot and sign-alternating families, false for
	// Wilkinson (same pivot order either way) and the conditioning
	// stress.
	Separates bool
}

// Adversarial returns the fixture set shared by the FactorCA residual
// tests, the Factor/LUIGEP differential tests and exp_pivot.
func Adversarial() []AdversarialFixture {
	return []AdversarialFixture{
		{Name: "wilkinson", Make: Wilkinson, Separates: false},
		{Name: "tinypivot", Make: TinyPivot, Separates: true},
		{Name: "signalt", Make: SignAlternating, Separates: true},
		{Name: "nearsing", Make: NearSingular, Separates: false},
	}
}
