package linalg

import (
	"math/rand"
	"testing"

	"gep/internal/matrix"
)

// Kernel microbenchmarks (n = 256 keeps `go test -bench ./...` quick;
// the figure-level sweeps live in the root bench_test.go).

const benchN = 256

func benchInput(seed int64) *matrix.Dense[float64] {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.NewSquare[float64](benchN)
	m.Apply(func(i, j int, _ float64) float64 { return rng.Float64() })
	return m
}

func benchDominant(seed int64) *matrix.Dense[float64] {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.NewSquare[float64](benchN)
	m.Apply(func(i, j int, _ float64) float64 {
		if i == j {
			return float64(2 * benchN)
		}
		return rng.Float64()
	})
	return m
}

func BenchmarkMulNaiveKernel(b *testing.B) {
	a, bb, c := benchInput(1), benchInput(2), matrix.NewSquare[float64](benchN)
	b.SetBytes(int64(MulFlops(benchN)))
	for i := 0; i < b.N; i++ {
		MulNaive(c, a, bb)
	}
}

func BenchmarkMulJKIKernel(b *testing.B) {
	a, bb, c := benchInput(1), benchInput(2), matrix.NewSquare[float64](benchN)
	b.SetBytes(int64(MulFlops(benchN)))
	for i := 0; i < b.N; i++ {
		MulJKI(c, a, bb)
	}
}

func BenchmarkMulIGEPKernel(b *testing.B) {
	a, bb, c := benchInput(1), benchInput(2), matrix.NewSquare[float64](benchN)
	b.SetBytes(int64(MulFlops(benchN)))
	for i := 0; i < b.N; i++ {
		MulIGEP(c, a, bb, 64)
	}
}

func BenchmarkMulTiledKernel(b *testing.B) {
	a, bb, c := benchInput(1), benchInput(2), matrix.NewSquare[float64](benchN)
	b.SetBytes(int64(MulFlops(benchN)))
	for i := 0; i < b.N; i++ {
		MulTiled(c, a, bb, 64)
	}
}

func BenchmarkMulMortonKernel(b *testing.B) {
	a, bb := benchInput(1), benchInput(2)
	at := matrix.NewTiled[float64](benchN, 64)
	bt := matrix.NewTiled[float64](benchN, 64)
	ct := matrix.NewTiled[float64](benchN, 64)
	at.FromDense(a)
	bt.FromDense(bb)
	b.SetBytes(int64(MulFlops(benchN)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulTiledMorton(ct, at, bt, 64)
	}
}

func benchFactor(b *testing.B, factor func(*matrix.Dense[float64])) {
	b.Helper()
	in := benchDominant(3)
	b.SetBytes(int64(GEFlops(benchN)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := in.Clone()
		b.StartTimer()
		factor(m)
	}
}

func BenchmarkLUGEPKernel(b *testing.B)    { benchFactor(b, LUGEP) }
func BenchmarkLUGEPOptKernel(b *testing.B) { benchFactor(b, LUGEPOpt) }
func BenchmarkLUIGEPKernel(b *testing.B) {
	benchFactor(b, func(m *matrix.Dense[float64]) { LUIGEP(m, 64) })
}
func BenchmarkLUTiledKernel(b *testing.B) {
	benchFactor(b, func(m *matrix.Dense[float64]) { LUTiled(m, 64) })
}
func BenchmarkLUPivoted(b *testing.B) {
	in := benchDominant(4)
	b.SetBytes(int64(GEFlops(benchN)))
	for i := 0; i < b.N; i++ {
		if _, err := Factor(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolve(b *testing.B) {
	in := benchDominant(5)
	lu := in.Clone()
	LUIGEP(lu, 64)
	rhs := make([]float64, benchN)
	for i := range rhs {
		rhs[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SolveLU(lu, rhs)
	}
}

func BenchmarkInvert(b *testing.B) {
	in := benchDominant(6)
	for i := 0; i < b.N; i++ {
		_ = Invert(in)
	}
}
