package linalg

import (
	"errors"
	"math/rand"
	"testing"

	"gep/internal/core"
	"gep/internal/matrix"
	"gep/internal/par"
)

// opaqueBoolGrid hides a Dense[bool] behind a distinct Grid type so
// the engines take the generic per-cell path — the oracle the packed
// GF(2) eliminator is compared against.
type opaqueBoolGrid struct{ d *matrix.Dense[bool] }

func (g opaqueBoolGrid) N() int               { return g.d.N() }
func (g opaqueBoolGrid) At(i, j int) bool     { return g.d.At(i, j) }
func (g opaqueBoolGrid) Set(i, j int, v bool) { g.d.Set(i, j, v) }

func randBitsSquare(rng *rand.Rand, n, density int) (*matrix.Bits, *matrix.Dense[bool]) {
	d := matrix.NewSquare[bool](n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Intn(100) < density {
				d.Set(i, j, true)
			}
		}
	}
	return matrix.PackBool(d), d
}

// TestGaussGF2FusedMatchesGeneric: the packed eliminator must be
// bit-identical to the generic engine with the same recursion shape on
// any input (validity of the elimination is irrelevant to the
// engine-equality contract).
func TestGaussGF2FusedMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for _, n := range []int{1, 4, 32, 128} {
		for _, base := range []int{1, 16, 512} {
			b, d := randBitsSquare(rng, n, 45)
			want := d.Clone()
			core.RunIGEP[bool](opaqueBoolGrid{want}, core.GF2Elim{}, core.Gaussian{},
				core.WithBaseSize[bool](base))
			for _, tw := range []int{0, 4, 8} {
				got := b.Clone()
				GaussGF2Fused(got, base, tw)
				if !matrix.Equal(want, matrix.UnpackBool(got)) {
					t.Fatalf("n=%d base=%d tw=%d: GaussGF2Fused diverges from generic", n, base, tw)
				}
			}
		}
	}
}

// TestGaussGF2FusedParallelMatchesSerial at p ∈ {1,2,4}.
func TestGaussGF2FusedParallelMatchesSerial(t *testing.T) {
	defer par.ResetWorkers()
	rng := rand.New(rand.NewSource(92))
	b, _ := randBitsSquare(rng, 256, 45)
	want := b.Clone()
	GaussGF2Fused(want, 0, -1)
	for _, p := range []int{1, 2, 4} {
		par.SetWorkers(p)
		got := b.Clone()
		GaussGF2FusedParallel(got, 0, -1, 64)
		if !matrix.EqualBits(want, got) {
			t.Fatalf("p=%d: parallel GF(2) elimination differs from serial", p)
		}
	}
}

// TestGaussGF2FusedUpperTriangle: on an LU-factorable input (built as
// unit-lower L times upper U with unit diagonal, so every leading
// principal minor is 1), elimination must reproduce U on and above the
// diagonal — the semantic (not just differential) correctness check.
func TestGaussGF2FusedUpperTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	const n = 64
	l := matrix.NewSquare[bool](n)
	u := matrix.NewSquare[bool](n)
	for i := 0; i < n; i++ {
		l.Set(i, i, true)
		u.Set(i, i, true)
		for j := 0; j < i; j++ {
			l.Set(i, j, rng.Intn(2) == 1)
		}
		for j := i + 1; j < n; j++ {
			u.Set(i, j, rng.Intn(2) == 1)
		}
	}
	a := matrix.NewBitsSquare(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			acc := false
			for k := 0; k <= min(i, j); k++ {
				acc = acc != (l.At(i, k) && u.At(k, j))
			}
			a.Set(i, j, acc)
		}
	}
	GaussGF2Fused(a, 0, -1)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			if a.At(i, j) != u.At(i, j) {
				t.Fatalf("eliminated cell (%d,%d) = %v, want U's %v", i, j, a.At(i, j), u.At(i, j))
			}
		}
	}
}

// TestSolveGF2Invertible: build an invertible A = P·L·U, pick x*, form
// b = A·x*; the solver must return exactly x* (unique solution).
func TestSolveGF2Invertible(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	for _, n := range []int{1, 2, 17, 64, 100} {
		a := randInvertibleGF2(rng, n)
		want := make([]bool, n)
		for i := range want {
			want[i] = rng.Intn(2) == 1
		}
		b := MulVecGF2(a, want)
		x, err := SolveGF2(a, b)
		if err != nil {
			t.Fatalf("n=%d: invertible system reported inconsistent: %v", n, err)
		}
		for i := range want {
			if x[i] != want[i] {
				t.Fatalf("n=%d: solution differs at %d", n, i)
			}
		}
	}
}

// TestSolveGF2SingularConsistentAndNot: a rank-deficient system must
// solve when b is in the column space and report ok=false otherwise.
func TestSolveGF2SingularConsistentAndNot(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	const n = 40
	a := randInvertibleGF2(rng, n)
	// Make row n-1 the XOR of rows 0 and 1: rank drops to n-1.
	r0, _, _ := a.RowSpan(0, 0, n)
	r1, _, _ := a.RowSpan(1, 0, n)
	for j := 0; j < n; j++ {
		a.Set(n-1, j, r0[j>>6]>>(uint(j)&63)&1 != r1[j>>6]>>(uint(j)&63)&1)
	}
	if got := RankGF2(a); got != n-1 {
		t.Fatalf("rank = %d, want %d", got, n-1)
	}
	xs := make([]bool, n)
	for i := range xs {
		xs[i] = rng.Intn(2) == 1
	}
	b := MulVecGF2(a, xs) // consistent by construction
	x, err := SolveGF2(a, b)
	if err != nil {
		t.Fatalf("consistent singular system reported inconsistent: %v", err)
	}
	back := MulVecGF2(a, x)
	for i := range b {
		if back[i] != b[i] {
			t.Fatalf("A·x differs from b at row %d", i)
		}
	}
	// Break consistency: b must satisfy b[n-1] = b[0] ⊕ b[1]; flip it.
	b[n-1] = !b[n-1]
	if _, err := SolveGF2(a, b); err == nil {
		t.Fatal("inconsistent system reported solvable")
	} else if !errors.Is(err, ErrSingular) {
		t.Fatalf("inconsistency error %v does not wrap ErrSingular", err)
	}
}

// TestRankGF2KnownRank builds matrices of known rank (echelon seed,
// rank-preserving row ops) and checks RankGF2.
func TestRankGF2KnownRank(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	const n = 50
	for _, r := range []int{0, 1, 7, 25, 50} {
		a := matrix.NewBitsSquare(n)
		// r echelon rows with distinct leading columns.
		lead := rng.Perm(n)[:r]
		for row := 0; row < r; row++ {
			a.Set(row, lead[row], true)
			for j := lead[row] + 1; j < n; j++ {
				if rng.Intn(2) == 1 {
					a.Set(row, j, true)
				}
			}
		}
		// Rank-preserving shuffle: add random rows into others, swap.
		for trial := 0; trial < 4*n; trial++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			switch rng.Intn(2) {
			case 0:
				a.SwapRows(i, j)
			case 1:
				wi, fm, lm := a.RowSpan(i, 0, n)
				wj, _, _ := a.RowSpan(j, 0, n)
				nw := len(wi)
				if nw == 1 {
					wi[0] ^= wj[0] & fm & lm
					continue
				}
				wi[0] ^= wj[0] & fm
				for w := 1; w < nw-1; w++ {
					wi[w] ^= wj[w]
				}
				wi[nw-1] ^= wj[nw-1] & lm
			}
		}
		if got := RankGF2(a); got != r {
			t.Fatalf("rank = %d, want %d", got, r)
		}
	}
}

// TestMulVecGF2UnalignedView checks the per-cell fallback against the
// word path.
func TestMulVecGF2UnalignedView(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	parent, _ := randBitsSquare(rng, 80, 50)
	v := parent.Sub(0, 5, 70, 70)
	x := make([]bool, 70)
	for i := range x {
		x[i] = rng.Intn(2) == 1
	}
	got := MulVecGF2(v, x) // unaligned: per-cell path
	aligned := v.Clone()   // aligned copy: word path
	want := MulVecGF2(aligned, x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVecGF2 unaligned diverges at row %d", i)
		}
	}
}

// randInvertibleGF2 returns P·L·U with unit-diagonal L and U: an
// invertible matrix by construction.
func randInvertibleGF2(rng *rand.Rand, n int) *matrix.Bits {
	a := matrix.NewBitsSquare(n)
	l := matrix.NewSquare[bool](n)
	u := matrix.NewSquare[bool](n)
	for i := 0; i < n; i++ {
		l.Set(i, i, true)
		u.Set(i, i, true)
		for j := 0; j < i; j++ {
			l.Set(i, j, rng.Intn(2) == 1)
		}
		for j := i + 1; j < n; j++ {
			u.Set(i, j, rng.Intn(2) == 1)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			acc := false
			for k := 0; k <= min(i, j); k++ {
				acc = acc != (l.At(i, k) && u.At(k, j))
			}
			a.Set(i, j, acc)
		}
	}
	for s := 0; s < n; s++ {
		a.SwapRows(s, s+rng.Intn(n-s))
	}
	return a
}
