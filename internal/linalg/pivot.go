package linalg

import (
	"errors"
	"fmt"
	"math"

	"gep/internal/matrix"
)

// LU decomposition WITH partial pivoting. The paper's framework covers
// elimination without pivoting only — pivoting's data-dependent row
// exchanges fall outside GEP's fixed update set (the paper states the
// restriction explicitly). This file provides a conventional blocked
// right-looking LUP as the library's robust entry point for general
// matrices, and as the correctness oracle that defines when the
// pivot-free cache-oblivious path is safe to use.

// ErrSingular reports a (numerically) singular matrix. Factor,
// FactorCA and SolveGF2 wrap it with position detail; match with
// errors.Is(err, ErrSingular).
var ErrSingular = errors.New("matrix is singular")

// LUP holds a P·A = L·U factorization: LU packs the factors in place
// and Perm maps factored row index to original row index.
//
// The zero value (and a nil *LUP, as returned by a failed Factor
// alongside its error) is not a valid factorization: Solve and Det
// panic on it with a diagnostic rather than returning garbage. An n=0
// factorization is valid: Solve returns an empty slice and Det returns
// 1 (the determinant of the empty matrix).
type LUP struct {
	LU   *matrix.Dense[float64]
	Perm []int
	// Swaps counts row exchanges (determinant sign).
	Swaps int
}

// Factor computes P·A = L·U with partial pivoting; a is not modified.
// It returns an error wrapping ErrSingular when a column's best pivot
// is zero, non-finite, or negligible against the column's magnitude
// (n·ε·max|column|) — the threshold keeps denormal-pivot matrices from
// silently producing Inf factors while uniformly tiny but
// well-conditioned matrices still factor.
func Factor(a *matrix.Dense[float64]) (*LUP, error) {
	n := a.N()
	lu := a.Clone()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	swaps := 0
	for k := 0; k < n; k++ {
		// The singularity threshold is scaled by the column's
		// magnitude in the *input* (the updated column's max is the
		// pivot itself, so scaling by it would be circular): a column
		// that elimination cancels down to denormals is singular to
		// working precision even though its best entry is nonzero.
		colMax := 0.0
		for i := 0; i < n; i++ {
			if v := abs(a.At(i, k)); v > colMax || math.IsNaN(v) {
				colMax = v
			}
		}
		// Pivot: largest |c[i][k]| for i >= k. A NaN column entry
		// makes colMax (hence the tolerance) NaN, and NaN is never
		// > tol, so poisoned columns fail the check below.
		p, best := k, abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := abs(lu.At(i, k)); v > best {
				p, best = i, v
			}
		}
		if !(best > pivotTol(n, colMax)) || math.IsInf(best, 0) {
			return nil, singularAt(k)
		}
		if p != k {
			rp, rk := lu.Row(p), lu.Row(k)
			for j := 0; j < n; j++ {
				rp[j], rk[j] = rk[j], rp[j]
			}
			perm[p], perm[k] = perm[k], perm[p]
			swaps++
		}
		ck := lu.Row(k)
		inv := 1 / ck[k]
		for i := k + 1; i < n; i++ {
			ci := lu.Row(i)
			m := ci[k] * inv
			ci[k] = m
			for j := k + 1; j < n; j++ {
				ci[j] -= m * ck[j]
			}
		}
	}
	return &LUP{LU: lu, Perm: perm, Swaps: swaps}, nil
}

// Solve solves A·x = b using the pivoted factors. It panics on an
// invalid receiver (nil, or the zero value left by a failed Factor)
// and on a length mismatch; an n=0 system returns an empty slice.
func (f *LUP) Solve(b []float64) []float64 {
	f.check("Solve")
	n := f.LU.N()
	if len(b) != n {
		panic(fmt.Sprintf("linalg: LUP.Solve got %d-vector for %dx%d system", len(b), n, n))
	}
	// Apply the permutation, then the usual substitutions.
	pb := make([]float64, n)
	for i, src := range f.Perm {
		pb[i] = b[src]
	}
	return SolveLU(f.LU, pb)
}

// Det returns det(A) from the pivoted factors. It panics on an
// invalid receiver (nil, or the zero value left by a failed Factor);
// the determinant of the empty (n=0) matrix is 1.
func (f *LUP) Det() float64 {
	f.check("Det")
	det := 1.0
	for i := 0; i < f.LU.N(); i++ {
		det *= f.LU.At(i, i)
	}
	if f.Swaps%2 == 1 {
		det = -det
	}
	return det
}

// check panics with a diagnostic when f is not a usable factorization
// (a nil receiver, or the zero value a caller kept after Factor
// returned an error). It also rejects a Perm whose length disagrees
// with LU, which no constructor in this package produces.
func (f *LUP) check(method string) {
	switch {
	case f == nil || f.LU == nil:
		panic("linalg: LUP." + method + " on invalid factorization (did Factor return an error?)")
	case len(f.Perm) != f.LU.N():
		panic(fmt.Sprintf("linalg: LUP.%s: Perm length %d does not match %dx%d LU",
			method, len(f.Perm), f.LU.N(), f.LU.N()))
	}
}

// NeedsPivoting reports whether pivot-free elimination of a is
// numerically risky: it runs a trial factorization and reports true if
// any pivot-free pivot is zero or non-finite, or any multiplier is
// non-finite or exceeds the given growth bound (e.g. 16). It is the
// guard a caller can use to pick between the cache-oblivious
// pivot-free path (LUIGEP) and Factor.
func NeedsPivoting(a *matrix.Dense[float64], growth float64) bool {
	n := a.N()
	lu := a.Clone()
	for k := 0; k < n; k++ {
		ck := lu.Row(k)
		piv := ck[k]
		// A NaN or ±Inf pivot (poisoned input, or blowup from an
		// earlier update) makes the trial meaningless — the pivot-free
		// path would propagate it, so it needs pivoting (or rejection)
		// by definition. Note NaN fails both m > g and m < -g, so the
		// range check alone would be NaN-blind.
		if piv == 0 || math.IsNaN(piv) || math.IsInf(piv, 0) {
			return true
		}
		inv := 1 / piv
		for i := k + 1; i < n; i++ {
			ci := lu.Row(i)
			m := ci[k] * inv
			// !(finite and within ±growth): catches NaN and ±Inf
			// multipliers as well as plain growth-bound violations.
			if !(m <= growth && m >= -growth) {
				return true
			}
			ci[k] = m
			for j := k + 1; j < n; j++ {
				ci[j] -= m * ck[j]
			}
		}
	}
	return false
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
