package linalg

import (
	"fmt"

	"gep/internal/matrix"
)

// LU decomposition WITH partial pivoting. The paper's framework covers
// elimination without pivoting only — pivoting's data-dependent row
// exchanges fall outside GEP's fixed update set (the paper states the
// restriction explicitly). This file provides a conventional blocked
// right-looking LUP as the library's robust entry point for general
// matrices, and as the correctness oracle that defines when the
// pivot-free cache-oblivious path is safe to use.

// LUP holds a P·A = L·U factorization: LU packs the factors in place
// and Perm maps factored row index to original row index.
type LUP struct {
	LU   *matrix.Dense[float64]
	Perm []int
	// Swaps counts row exchanges (determinant sign).
	Swaps int
}

// Factor computes P·A = L·U with partial pivoting; a is not modified.
// It returns an error on exact singularity.
func Factor(a *matrix.Dense[float64]) (*LUP, error) {
	n := a.N()
	lu := a.Clone()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	swaps := 0
	for k := 0; k < n; k++ {
		// Pivot: largest |c[i][k]| for i >= k.
		p, best := k, abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := abs(lu.At(i, k)); v > best {
				p, best = i, v
			}
		}
		if best == 0 {
			return nil, fmt.Errorf("linalg: singular at column %d", k)
		}
		if p != k {
			rp, rk := lu.Row(p), lu.Row(k)
			for j := 0; j < n; j++ {
				rp[j], rk[j] = rk[j], rp[j]
			}
			perm[p], perm[k] = perm[k], perm[p]
			swaps++
		}
		ck := lu.Row(k)
		inv := 1 / ck[k]
		for i := k + 1; i < n; i++ {
			ci := lu.Row(i)
			m := ci[k] * inv
			ci[k] = m
			for j := k + 1; j < n; j++ {
				ci[j] -= m * ck[j]
			}
		}
	}
	return &LUP{LU: lu, Perm: perm, Swaps: swaps}, nil
}

// Solve solves A·x = b using the pivoted factors.
func (f *LUP) Solve(b []float64) []float64 {
	n := f.LU.N()
	if len(b) != n {
		panic(fmt.Sprintf("linalg: LUP.Solve got %d-vector for %dx%d system", len(b), n, n))
	}
	// Apply the permutation, then the usual substitutions.
	pb := make([]float64, n)
	for i, src := range f.Perm {
		pb[i] = b[src]
	}
	return SolveLU(f.LU, pb)
}

// Det returns det(A) from the pivoted factors.
func (f *LUP) Det() float64 {
	det := 1.0
	for i := 0; i < f.LU.N(); i++ {
		det *= f.LU.At(i, i)
	}
	if f.Swaps%2 == 1 {
		det = -det
	}
	return det
}

// NeedsPivoting reports whether pivot-free elimination of a is
// numerically risky: it runs a trial factorization and reports true if
// any pivot-free pivot is zero or any multiplier exceeds the given
// growth bound (e.g. 16). It is the guard a caller can use to pick
// between the cache-oblivious pivot-free path (LUIGEP) and Factor.
func NeedsPivoting(a *matrix.Dense[float64], growth float64) bool {
	n := a.N()
	lu := a.Clone()
	for k := 0; k < n; k++ {
		ck := lu.Row(k)
		piv := ck[k]
		if piv == 0 {
			return true
		}
		inv := 1 / piv
		for i := k + 1; i < n; i++ {
			ci := lu.Row(i)
			m := ci[k] * inv
			if m > growth || m < -growth {
				return true
			}
			ci[k] = m
			for j := k + 1; j < n; j++ {
				ci[j] -= m * ck[j]
			}
		}
	}
	return false
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
