package linalg

import (
	"fmt"
	"math"

	"gep/internal/matrix"
	"gep/internal/par"
)

// Gaussian elimination / LU decomposition without pivoting, in the
// paper's three forms (§4.2, Figure 10): naive GEP, cache-aware tiled
// ("BLAS substitute"), and cache-oblivious I-GEP. All variants compute
// the in-place LU factorization: after the call, the strict lower
// triangle holds L (unit diagonal implicit) and the upper triangle
// holds U. Inputs must be factorizable without pivoting (e.g.
// diagonally dominant).

// GEFlops returns the flop count of an n×n elimination (~2n³/3), the
// %-of-peak denominator for Figure 10.
func GEFlops(n int) float64 {
	nf := float64(n)
	return 2 * nf * nf * nf / 3
}

// LUGEP is the pure GEP-form baseline: the triple loop of Figure 1
// over the LU update set with f(x,u,v,w) = x/w when j == k and
// x − u·v otherwise. One division per multiplier, O(n³/B) misses.
func LUGEP(c *matrix.Dense[float64]) {
	n := c.N()
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			ci := c.Row(i)
			ck := c.Row(k)
			// j == k: multiplier (the division stays in the inner
			// loop structure, as written GEP performs it).
			ci[k] = ci[k] / ck[k]
			for j := k + 1; j < n; j++ {
				ci[j] -= ci[k] * ck[j]
			}
		}
	}
}

// LUGEPOpt is the paper's "reasonably optimized GEP": divisions
// hoisted out of the innermost loop (o(n³) divisions) and rows
// accessed through slices. Still O(n³/B) misses — the optimization the
// in-core plots of Figures 8 and 10 compare I-GEP against.
func LUGEPOpt(c *matrix.Dense[float64]) {
	n := c.N()
	for k := 0; k < n; k++ {
		ck := c.Row(k)
		piv := ck[k]
		inv := 1 / piv
		for i := k + 1; i < n; i++ {
			ci := c.Row(i)
			m := ci[k] * inv
			ci[k] = m
			for j := k + 1; j < n; j++ {
				ci[j] -= m * ck[j]
			}
		}
	}
}

// LUTiled is the cache-aware blocked right-looking factorization (the
// structure of tuned BLAS/FLAME implementations): factor a column
// panel, apply its eliminations to the row panel, then update the
// trailing submatrix with a tiled matrix multiply.
func LUTiled(c *matrix.Dense[float64], tile int) {
	n := c.N()
	if tile < 1 {
		panic("linalg: tile must be >= 1")
	}
	for kk := 0; kk < n; kk += tile {
		kMax := minInt(kk+tile, n)
		// 1. Panel factorization: columns kk..kMax over all rows below.
		for k := kk; k < kMax; k++ {
			ck := c.Row(k)
			inv := 1 / ck[k]
			for i := k + 1; i < n; i++ {
				ci := c.Row(i)
				m := ci[k] * inv
				ci[k] = m
				for j := k + 1; j < kMax; j++ {
					ci[j] -= m * ck[j]
				}
			}
		}
		// 2. Row-panel update: apply L11's eliminations to A12
		// (forward substitution with the unit lower triangle).
		for k := kk; k < kMax; k++ {
			ck := c.Row(k)
			for i := k + 1; i < kMax; i++ {
				ci := c.Row(i)
				m := ci[k]
				for j := kMax; j < n; j++ {
					ci[j] -= m * ck[j]
				}
			}
		}
		// 3. Trailing update: A22 -= L21 · U12, tiled.
		for ii := kMax; ii < n; ii += tile {
			iTop := minInt(ii+tile, n)
			for jj := kMax; jj < n; jj += tile {
				jTop := minInt(jj+tile, n)
				negMulBlock(c, ii, iTop, kk, kMax, jj, jTop)
			}
		}
	}
}

// negMulBlock computes C[i0:i1, j0:j1] -= C[i0:i1, k0:k1]·C[k0:k1, j0:j1]
// (L-panel times U-panel of the same matrix; the regions are disjoint),
// k-unrolled by 4.
func negMulBlock(c *matrix.Dense[float64], i0, i1, k0, k1, j0, j1 int) {
	for i := i0; i < i1; i++ {
		ci := c.Row(i)[j0:j1]
		li := c.Row(i)
		k := k0
		for ; k+3 < k1; k += 4 {
			l0, l1, l2, l3 := li[k], li[k+1], li[k+2], li[k+3]
			u0 := c.Row(k)[j0:j1]
			u1 := c.Row(k + 1)[j0:j1]
			u2 := c.Row(k + 2)[j0:j1]
			u3 := c.Row(k + 3)[j0:j1]
			for j := range ci {
				ci[j] -= l0*u0[j] + l1*u1[j] + l2*u2[j] + l3*u3[j]
			}
		}
		for ; k < k1; k++ {
			lk := li[k]
			uk := c.Row(k)[j0:j1]
			for j := range ci {
				ci[j] -= lk * uk[j]
			}
		}
	}
}

// LUIGEP is the cache-oblivious I-GEP factorization: the A/B/C/D
// recursion of Figure 6 specialized to the LU update set
// {k < i ∧ k <= j}, with a G-order iterative kernel at base×base
// blocks. n must be a power of two.
func LUIGEP(c *matrix.Dense[float64], base int) {
	n := c.N()
	if n == 0 {
		return
	}
	if !matrix.IsPow2(n) {
		panic(fmt.Sprintf("linalg: LUIGEP needs power-of-two n, got %d", n))
	}
	if base < 1 {
		base = 1
	}
	luRec(c, 0, 0, 0, n, base, 0, nil)
}

// LUIGEPParallel runs the same recursion with Figure 6's parallel
// groups on goroutines down to the given grain.
func LUIGEPParallel(c *matrix.Dense[float64], base, grain int) {
	LUIGEPParallelOn(nil, c, base, grain)
}

// LUIGEPParallelOn is LUIGEPParallel with all forks confined to rt
// (nil = the default runtime).
func LUIGEPParallelOn(rt *par.Runtime, c *matrix.Dense[float64], base, grain int) {
	n := c.N()
	if n == 0 {
		return
	}
	if !matrix.IsPow2(n) {
		panic(fmt.Sprintf("linalg: LUIGEPParallel needs power-of-two n, got %d", n))
	}
	if base < 1 {
		base = 1
	}
	if grain < base {
		grain = base
	}
	luRec(c, 0, 0, 0, n, base, grain, par.Or(rt))
}

// luRec is the LU-specialized multithreaded I-GEP recursion. grain = 0
// disables parallelism; otherwise parallel groups spawn while s > grain
// as fork-join groups on rt (nil is allowed only when grain = 0).
func luRec(c *matrix.Dense[float64], xi, xj, k0, s, base, grain int, rt *par.Runtime) {
	// Prune using the LU set's box test: need some i > k and j >= k.
	if xi+s-1 <= k0 || xj+s-1 < k0 {
		return
	}
	if s <= base {
		if xi >= k0+s && xj >= k0+s {
			// Pure D block: every multiplier c[i,k] and pivot row
			// entry c[k,j] is already final, so the block update is
			// exactly C -= L·U — run the register-blocked GEMM kernel
			// (the paper's optimized iterative base case).
			negMulBlock(c, xi, xi+s, k0, k0+s, xj, xj+s)
			return
		}
		luKernel(c, xi, xj, k0, s)
		return
	}
	h := s / 2
	parOn := grain > 0 && s > grain
	run2 := func(f1, f2 func()) {
		if !parOn {
			f1()
			f2()
			return
		}
		rt.Do(f1, f2)
	}
	run4 := func(fs ...func()) {
		if !parOn {
			for _, f := range fs {
				f()
			}
			return
		}
		rt.Do(fs...)
	}
	iK, jK := xi == k0, xj == k0
	switch {
	case iK && jK: // A
		luRec(c, xi, xj, k0, h, base, grain, rt)
		run2(func() { luRec(c, xi, xj+h, k0, h, base, grain, rt) },
			func() { luRec(c, xi+h, xj, k0, h, base, grain, rt) })
		luRec(c, xi+h, xj+h, k0, h, base, grain, rt)
		luRec(c, xi+h, xj+h, k0+h, h, base, grain, rt)
		run2(func() { luRec(c, xi+h, xj, k0+h, h, base, grain, rt) },
			func() { luRec(c, xi, xj+h, k0+h, h, base, grain, rt) })
		luRec(c, xi, xj, k0+h, h, base, grain, rt)
	case iK: // B
		run2(func() { luRec(c, xi, xj, k0, h, base, grain, rt) },
			func() { luRec(c, xi, xj+h, k0, h, base, grain, rt) })
		run2(func() { luRec(c, xi+h, xj, k0, h, base, grain, rt) },
			func() { luRec(c, xi+h, xj+h, k0, h, base, grain, rt) })
		run2(func() { luRec(c, xi+h, xj, k0+h, h, base, grain, rt) },
			func() { luRec(c, xi+h, xj+h, k0+h, h, base, grain, rt) })
		run2(func() { luRec(c, xi, xj, k0+h, h, base, grain, rt) },
			func() { luRec(c, xi, xj+h, k0+h, h, base, grain, rt) })
	case jK: // C
		run2(func() { luRec(c, xi, xj, k0, h, base, grain, rt) },
			func() { luRec(c, xi+h, xj, k0, h, base, grain, rt) })
		run2(func() { luRec(c, xi, xj+h, k0, h, base, grain, rt) },
			func() { luRec(c, xi+h, xj+h, k0, h, base, grain, rt) })
		run2(func() { luRec(c, xi, xj+h, k0+h, h, base, grain, rt) },
			func() { luRec(c, xi+h, xj+h, k0+h, h, base, grain, rt) })
		run2(func() { luRec(c, xi, xj, k0+h, h, base, grain, rt) },
			func() { luRec(c, xi+h, xj, k0+h, h, base, grain, rt) })
	default: // D
		run4(func() { luRec(c, xi, xj, k0, h, base, grain, rt) },
			func() { luRec(c, xi, xj+h, k0, h, base, grain, rt) },
			func() { luRec(c, xi+h, xj, k0, h, base, grain, rt) },
			func() { luRec(c, xi+h, xj+h, k0, h, base, grain, rt) })
		run4(func() { luRec(c, xi, xj, k0+h, h, base, grain, rt) },
			func() { luRec(c, xi, xj+h, k0+h, h, base, grain, rt) },
			func() { luRec(c, xi+h, xj, k0+h, h, base, grain, rt) },
			func() { luRec(c, xi+h, xj+h, k0+h, h, base, grain, rt) })
	}
}

// luKernel applies, in G order, all LU-set updates with i ∈ [xi,xi+s),
// j ∈ [xj,xj+s), k ∈ [k0,k0+s). It covers every block kind: the index
// bounds realize the membership conditions k < i, k <= j.
func luKernel(c *matrix.Dense[float64], xi, xj, k0, s int) {
	for k := k0; k < k0+s; k++ {
		ck := c.Row(k)
		iLo := xi
		if k+1 > iLo {
			iLo = k + 1
		}
		jLo := xj
		if k+1 > jLo {
			jLo = k + 1
		}
		hasMult := k >= xj && k < xj+s // the j == k (division) update
		var inv float64
		if hasMult {
			inv = 1 / ck[k]
		}
		for i := iLo; i < xi+s; i++ {
			ci := c.Row(i)
			if hasMult {
				ci[k] *= inv
			}
			m := ci[k]
			for j := jLo; j < xj+s; j++ {
				ci[j] -= m * ck[j]
			}
		}
	}
}

// SolveLU solves A·x = b given the packed in-place LU factors produced
// by any of the factorizations above (unit lower triangle implicit).
func SolveLU(lu *matrix.Dense[float64], b []float64) []float64 {
	n := lu.N()
	if len(b) != n {
		panic(fmt.Sprintf("linalg: SolveLU got %d-vector for %dx%d system", len(b), n, n))
	}
	y := make([]float64, n)
	copy(y, b)
	// Forward substitution with L (unit diagonal).
	for i := 0; i < n; i++ {
		ri := lu.Row(i)
		s := y[i]
		for j := 0; j < i; j++ {
			s -= ri[j] * y[j]
		}
		y[i] = s
	}
	// Backward substitution with U.
	for i := n - 1; i >= 0; i-- {
		ri := lu.Row(i)
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= ri[j] * y[j]
		}
		y[i] = s / ri[i]
	}
	return y
}

// MatVec returns A·x.
func MatVec(a *matrix.Dense[float64], x []float64) []float64 {
	n := a.N()
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		ri := a.Row(i)
		s := 0.0
		for j, v := range ri {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Residual returns the max-norm of A·x − b, the standard solve check.
func Residual(a *matrix.Dense[float64], x, b []float64) float64 {
	ax := MatVec(a, x)
	worst := 0.0
	for i := range ax {
		if d := math.Abs(ax[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// MaxAbsDiff returns the largest element-wise |a-b|, used to compare
// factorizations that associate floating-point work differently.
func MaxAbsDiff(a, b *matrix.Dense[float64]) float64 {
	if a.N() != b.N() {
		panic("linalg: MaxAbsDiff size mismatch")
	}
	worst := 0.0
	for i := 0; i < a.N(); i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if d := math.Abs(ra[j] - rb[j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}
