package linalg

import (
	"fmt"

	"gep/internal/matrix"
)

// Higher-level solver operations built on the cache-oblivious LU
// factorization: determinants, multi-right-hand-side solves and
// inversion.

// Determinant returns det(A), computed by cache-oblivious LU without
// pivoting; a is not modified. Matrices that are singular "from the
// top" (a zero pivot) return 0 when the factorization survives, but
// non-dominant inputs may hit the pivot-free limitation (NaN/Inf), as
// with all pivot-free elimination.
func Determinant(a *matrix.Dense[float64]) float64 {
	n := a.N()
	if n == 0 {
		return 1
	}
	lu := padForLU(a)
	LUIGEP(lu, 64)
	det := 1.0
	for i := 0; i < n; i++ {
		det *= lu.At(i, i)
	}
	return det
}

// SolveLUMany solves A·X = B for each column of B given packed LU
// factors (as produced by LUIGEP/LUTiled/LUGEPOpt); it returns X.
func SolveLUMany(lu *matrix.Dense[float64], b *matrix.Dense[float64]) *matrix.Dense[float64] {
	n := lu.N()
	if b.Rows() != n {
		panic(fmt.Sprintf("linalg: SolveLUMany got %d-row rhs for %dx%d system", b.Rows(), n, n))
	}
	cols := b.Cols()
	x := b.Clone()
	// Forward substitution on all columns: L·Y = B.
	for i := 0; i < n; i++ {
		li := lu.Row(i)
		xi := x.Row(i)
		for k := 0; k < i; k++ {
			lik := li[k]
			if lik == 0 {
				continue
			}
			xk := x.Row(k)
			for c := 0; c < cols; c++ {
				xi[c] -= lik * xk[c]
			}
		}
	}
	// Backward substitution: U·X = Y.
	for i := n - 1; i >= 0; i-- {
		ui := lu.Row(i)
		xi := x.Row(i)
		for k := i + 1; k < n; k++ {
			uik := ui[k]
			if uik == 0 {
				continue
			}
			xk := x.Row(k)
			for c := 0; c < cols; c++ {
				xi[c] -= uik * xk[c]
			}
		}
		inv := 1 / ui[i]
		for c := 0; c < cols; c++ {
			xi[c] *= inv
		}
	}
	return x
}

// Invert returns A⁻¹ by factoring once and solving against the
// identity; a is not modified. The input must be factorizable without
// pivoting.
func Invert(a *matrix.Dense[float64]) *matrix.Dense[float64] {
	n := a.N()
	lu := padForLU(a)
	LUIGEP(lu, 64)
	lu = cropTo(lu, n)
	id := matrix.NewSquare[float64](n)
	for i := 0; i < n; i++ {
		id.Set(i, i, 1)
	}
	return SolveLUMany(lu, id)
}

// padForLU clones a, padding to a power-of-two side with an identity
// block (which leaves the leading factors unchanged).
func padForLU(a *matrix.Dense[float64]) *matrix.Dense[float64] {
	if matrix.IsPow2(a.N()) || a.N() == 0 {
		return a.Clone()
	}
	return matrix.PadPow2Diag(a, 0, 1)
}

func cropTo(a *matrix.Dense[float64], n int) *matrix.Dense[float64] {
	if a.N() == n {
		return a
	}
	return matrix.Crop(a, n)
}
