package apsp

import "gep/internal/matrix"

// Graph metrics derived from the all-pairs distance matrix: the kind
// of downstream analysis the APSP computation exists to feed.

// Eccentricities returns, per vertex, the greatest finite distance to
// any reachable vertex (Inf if some vertex is unreachable).
func Eccentricities(d *matrix.Dense[float64]) []float64 {
	n := d.N()
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		worst := 0.0
		row := d.Row(i)
		for j, v := range row {
			if i == j {
				continue
			}
			if v > worst {
				worst = v
			}
		}
		out[i] = worst
	}
	return out
}

// DiameterRadius returns the largest and smallest eccentricities over
// vertices with finite eccentricity; both are Inf for a graph where
// every vertex misses someone (e.g. no edges, n > 1).
func DiameterRadius(d *matrix.Dense[float64]) (diameter, radius float64) {
	ecc := Eccentricities(d)
	diameter, radius = 0, Inf
	finite := false
	for _, e := range ecc {
		if e == Inf {
			continue
		}
		finite = true
		if e > diameter {
			diameter = e
		}
		if e < radius {
			radius = e
		}
	}
	if !finite {
		return Inf, Inf
	}
	return diameter, radius
}
