package apsp

import (
	"fmt"

	"gep/internal/matrix"
	"gep/internal/par"
)

// Floyd-Warshall in the paper's compared forms. All operate in place
// on a distance matrix as produced by Graph.DistanceMatrix. The update
// set is Full and f is min-plus: d[i][j] = min(d[i][j], d[i][k]+d[k][j]).

// FWFlops returns the operation count (one add + one compare per
// update) used as the figure-of-merit denominator.
func FWFlops(n int) float64 { return 2 * float64(n) * float64(n) * float64(n) }

// FWGEP is the classic iterative Floyd-Warshall — the GEP baseline of
// Figure 8, with rows hoisted into slices (the "reasonably optimized"
// version the paper compares against).
func FWGEP(d *matrix.Dense[float64]) {
	n := d.N()
	for k := 0; k < n; k++ {
		dk := d.Row(k)
		for i := 0; i < n; i++ {
			di := d.Row(i)
			dik := di[k]
			if dik == Inf {
				continue
			}
			for j := 0; j < n; j++ {
				if t := dik + dk[j]; t < di[j] {
					di[j] = t
				}
			}
		}
	}
}

// FWGEPPure is the unoptimized triple loop without the row/constant
// hoisting or the Inf skip — the fully naive baseline.
func FWGEPPure(d *matrix.Dense[float64]) {
	n := d.N()
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if t := d.At(i, k) + d.At(k, j); t < d.At(i, j) {
					d.Set(i, j, t)
				}
			}
		}
	}
}

// FWIGEP is cache-oblivious Floyd-Warshall: the I-GEP recursion with a
// G-order iterative kernel at base×base blocks. n must be a power of
// two (pad with matrix.PadPow2Diag(d, Inf, 0) otherwise).
func FWIGEP(d *matrix.Dense[float64], base int) {
	n := d.N()
	if n == 0 {
		return
	}
	if !matrix.IsPow2(n) {
		panic(fmt.Sprintf("apsp: FWIGEP needs power-of-two n, got %d", n))
	}
	if base < 1 {
		base = 1
	}
	fwRec(d, 0, 0, 0, n, base, 0, nil)
}

// FWParallel is multithreaded I-GEP Floyd-Warshall (the A/B/C/D
// parallel structure of Figure 6) spawning goroutines down to grain.
func FWParallel(d *matrix.Dense[float64], base, grain int) {
	FWParallelOn(nil, d, base, grain)
}

// FWParallelOn is FWParallel with all forks confined to rt (nil = the
// default runtime).
func FWParallelOn(rt *par.Runtime, d *matrix.Dense[float64], base, grain int) {
	n := d.N()
	if n == 0 {
		return
	}
	if !matrix.IsPow2(n) {
		panic(fmt.Sprintf("apsp: FWParallel needs power-of-two n, got %d", n))
	}
	if base < 1 {
		base = 1
	}
	if grain < base {
		grain = base
	}
	fwRec(d, 0, 0, 0, n, base, grain, par.Or(rt))
}

// fwRec is the Floyd-Warshall-specialized I-GEP recursion; grain = 0
// runs serially, otherwise parallel groups fork on rt (nil is allowed
// only when grain = 0).
func fwRec(d *matrix.Dense[float64], xi, xj, k0, s, base, grain int, rt *par.Runtime) {
	if s <= base {
		fwKernel(d, xi, xj, k0, s)
		return
	}
	h := s / 2
	parOn := grain > 0 && s > grain
	run2 := func(f1, f2 func()) {
		if !parOn {
			f1()
			f2()
			return
		}
		rt.Do(f1, f2)
	}
	run4 := func(fs ...func()) {
		if !parOn {
			for _, f := range fs {
				f()
			}
			return
		}
		rt.Do(fs...)
	}
	iK, jK := xi == k0, xj == k0
	switch {
	case iK && jK: // A
		fwRec(d, xi, xj, k0, h, base, grain, rt)
		run2(func() { fwRec(d, xi, xj+h, k0, h, base, grain, rt) },
			func() { fwRec(d, xi+h, xj, k0, h, base, grain, rt) })
		fwRec(d, xi+h, xj+h, k0, h, base, grain, rt)
		fwRec(d, xi+h, xj+h, k0+h, h, base, grain, rt)
		run2(func() { fwRec(d, xi+h, xj, k0+h, h, base, grain, rt) },
			func() { fwRec(d, xi, xj+h, k0+h, h, base, grain, rt) })
		fwRec(d, xi, xj, k0+h, h, base, grain, rt)
	case iK: // B
		run2(func() { fwRec(d, xi, xj, k0, h, base, grain, rt) },
			func() { fwRec(d, xi, xj+h, k0, h, base, grain, rt) })
		run2(func() { fwRec(d, xi+h, xj, k0, h, base, grain, rt) },
			func() { fwRec(d, xi+h, xj+h, k0, h, base, grain, rt) })
		run2(func() { fwRec(d, xi+h, xj, k0+h, h, base, grain, rt) },
			func() { fwRec(d, xi+h, xj+h, k0+h, h, base, grain, rt) })
		run2(func() { fwRec(d, xi, xj, k0+h, h, base, grain, rt) },
			func() { fwRec(d, xi, xj+h, k0+h, h, base, grain, rt) })
	case jK: // C
		run2(func() { fwRec(d, xi, xj, k0, h, base, grain, rt) },
			func() { fwRec(d, xi+h, xj, k0, h, base, grain, rt) })
		run2(func() { fwRec(d, xi, xj+h, k0, h, base, grain, rt) },
			func() { fwRec(d, xi+h, xj+h, k0, h, base, grain, rt) })
		run2(func() { fwRec(d, xi, xj+h, k0+h, h, base, grain, rt) },
			func() { fwRec(d, xi+h, xj+h, k0+h, h, base, grain, rt) })
		run2(func() { fwRec(d, xi, xj, k0+h, h, base, grain, rt) },
			func() { fwRec(d, xi+h, xj, k0+h, h, base, grain, rt) })
	default: // D
		run4(func() { fwRec(d, xi, xj, k0, h, base, grain, rt) },
			func() { fwRec(d, xi, xj+h, k0, h, base, grain, rt) },
			func() { fwRec(d, xi+h, xj, k0, h, base, grain, rt) },
			func() { fwRec(d, xi+h, xj+h, k0, h, base, grain, rt) })
		run4(func() { fwRec(d, xi, xj, k0+h, h, base, grain, rt) },
			func() { fwRec(d, xi, xj+h, k0+h, h, base, grain, rt) },
			func() { fwRec(d, xi+h, xj, k0+h, h, base, grain, rt) },
			func() { fwRec(d, xi+h, xj+h, k0+h, h, base, grain, rt) })
	}
}

// fwKernel applies the block's min-plus updates in G order.
func fwKernel(d *matrix.Dense[float64], xi, xj, k0, s int) {
	for k := k0; k < k0+s; k++ {
		dk := d.Row(k)[xj : xj+s]
		for i := xi; i < xi+s; i++ {
			di := d.Row(i)
			dik := di[k]
			if dik == Inf {
				continue
			}
			dij := di[xj : xj+s]
			for j, dkj := range dk {
				if t := dik + dkj; t < dij[j] {
					dij[j] = t
				}
			}
		}
	}
}

// Solve computes all-pairs shortest path distances for g with
// cache-oblivious Floyd-Warshall, handling non-power-of-two sizes by
// padding. base <= 0 selects a reasonable default kernel size.
func Solve(g *Graph, base int) *matrix.Dense[float64] {
	if base <= 0 {
		base = 32
	}
	d := g.DistanceMatrix()
	n := g.N
	if n == 0 {
		return d
	}
	if matrix.IsPow2(n) {
		FWIGEP(d, base)
		return d
	}
	p := matrix.PadPow2Diag(d, Inf, 0)
	FWIGEP(p, base)
	return matrix.Crop(p, n)
}
