package apsp

import (
	"fmt"

	"gep/internal/matrix"
)

// Bit-interleaved (Morton-tiled) Floyd-Warshall: the paper's §4.2
// layout optimization applied to APSP. Base-case blocks are stored
// contiguously (row-major inside a tile, tiles in Morton order), so
// the recursion's working set is sequential in memory and the hardware
// prefetcher helps the cache-oblivious code the way it helps the
// iterative loop nest. The paper attributes its 4-6x Figure 8 speedups
// partly to exactly this arrangement (contrasting with [19], which
// observed I-GEP losing to GEP under prefetching with a plain layout).

// FWIGEPTiled runs cache-oblivious Floyd-Warshall in the
// bit-interleaved layout with tile side = base. The cost of converting
// to and from the layout is part of the call, as the paper reports it.
// n must be a power of two and base <= n.
func FWIGEPTiled(d *matrix.Dense[float64], base int) {
	n := d.N()
	if n == 0 {
		return
	}
	if !matrix.IsPow2(n) {
		panic(fmt.Sprintf("apsp: FWIGEPTiled needs power-of-two n, got %d", n))
	}
	if base > n {
		base = n
	}
	if !matrix.IsPow2(base) {
		panic(fmt.Sprintf("apsp: tile side %d must be a power of two", base))
	}
	t := matrix.NewTiled[float64](n, base)
	t.FromDense(d)
	fwRecT(t, 0, 0, 0, n)
	d.CopyFrom(t.ToDense())
}

// fwRecT is the I-GEP recursion over tile storage; the base case is
// exactly one tile.
func fwRecT(t *matrix.Tiled[float64], xi, xj, k0, s int) {
	b := t.Block()
	if s <= b {
		x := t.TileData(xi/b, xj/b)
		u := t.TileData(xi/b, k0/b)
		v := t.TileData(k0/b, xj/b)
		if xi != k0 && xj != k0 {
			fwTileD(x, u, v, b)
		} else {
			fwTileG(x, u, v, b)
		}
		return
	}
	// Figure 2's uniform serial schedule: forward pass over the four
	// quadrants with the first k-half, backward pass in reverse order
	// with the second half.
	h := s / 2
	fwRecT(t, xi, xj, k0, h)
	fwRecT(t, xi, xj+h, k0, h)
	fwRecT(t, xi+h, xj, k0, h)
	fwRecT(t, xi+h, xj+h, k0, h)
	fwRecT(t, xi+h, xj+h, k0+h, h)
	fwRecT(t, xi+h, xj, k0+h, h)
	fwRecT(t, xi, xj+h, k0+h, h)
	fwRecT(t, xi, xj, k0+h, h)
}

// fwTileG is the G-order kernel over one tile triple; x, u and v may
// alias (A: x==u==v, B: x==v, C: x==u), and the G order gives the
// correct semantics in every case.
func fwTileG(x, u, v []float64, s int) {
	for k := 0; k < s; k++ {
		vk := v[k*s : k*s+s]
		for i := 0; i < s; i++ {
			uik := u[i*s+k]
			if uik == Inf {
				continue
			}
			xi := x[i*s : i*s+s]
			for j, vkj := range vk {
				if t := uik + vkj; t < xi[j] {
					xi[j] = t
				}
			}
		}
	}
}

// fwTileD is the disjoint-tile kernel. It keeps the k-outer rank-1
// structure of the iterative loop: each inner iteration is a single
// independent add+compare, which out-of-order cores overlap freely —
// a k-unrolled min reduction would serialize on the min dependency
// chain instead. (Unlike GEMM, min-plus has one accumulator per cell,
// so unrolling over k buys latency, not throughput.)
func fwTileD(x, u, v []float64, s int) {
	for k := 0; k < s; k++ {
		vk := v[k*s : k*s+s]
		for i := 0; i < s; i++ {
			uik := u[i*s+k]
			if uik == Inf {
				continue
			}
			xi := x[i*s : i*s+s]
			for j, vkj := range vk {
				if t := uik + vkj; t < xi[j] {
					xi[j] = t
				}
			}
		}
	}
}
