package apsp

import (
	"gep/internal/core"
	"gep/internal/matrix"
	"gep/internal/par"
)

// FWFused runs Floyd-Warshall through the generic RunIGEP engine with
// the fused min-plus op: the engine's recursion with a closed-form
// block kernel instead of a per-element indirect call. The side must
// be a power of two. Output is bit-identical to the generic engine
// with the same op (min-plus is order-insensitive per cell anyway).
func FWFused(d *matrix.Dense[float64], base int) {
	core.RunIGEP[float64](d, core.MinPlus[float64]{}, core.Full{},
		core.WithBaseSize[float64](base))
}

// FWFusedParallel is FWFused through the multithreaded A/B/C/D
// recursion (Figure 6) on the work-stealing runtime (internal/par).
// RunABCD refines the same partial order as RunIGEP, so the output is
// bit-identical to FWFused at every worker count.
func FWFusedParallel(d *matrix.Dense[float64], base, grain int) {
	FWFusedParallelOn(nil, d, base, grain)
}

// FWFusedParallelOn is FWFusedParallel with all forks confined to rt
// (nil = the default runtime).
func FWFusedParallelOn(rt *par.Runtime, d *matrix.Dense[float64], base, grain int) {
	core.RunABCD[float64](d, core.MinPlus[float64]{}, core.Full{},
		core.WithBaseSize[float64](base), core.WithParallel[float64](grain),
		core.WithRuntime[float64](rt))
}
