package apsp

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"gep/internal/matrix"
)

func exactEq(a, b *matrix.Dense[float64]) bool {
	return a.EqualFunc(b, func(x, y float64) bool { return x == y })
}

// TestFWVariantsMatchDijkstra is the cross-algorithm oracle check:
// every Floyd-Warshall variant must agree exactly (integer weights)
// with all-pairs Dijkstra.
func TestFWVariantsMatchDijkstra(t *testing.T) {
	for _, n := range []int{1, 2, 8, 16, 32, 64} {
		for _, p := range []float64{0.05, 0.3, 0.9} {
			g := Random(n, p, 100, int64(n*100)+int64(p*10))
			want := AllPairsDijkstra(g)

			variants := map[string]func(d *matrix.Dense[float64]){
				"gep":      FWGEP,
				"gep-pure": FWGEPPure,
				"igep1":    func(d *matrix.Dense[float64]) { FWIGEP(d, 1) },
				"igep8":    func(d *matrix.Dense[float64]) { FWIGEP(d, 8) },
				"par":      func(d *matrix.Dense[float64]) { FWParallel(d, 4, 8) },
			}
			for name, fw := range variants {
				d := g.DistanceMatrix()
				fw(d)
				if !exactEq(want, d) {
					t.Fatalf("%s n=%d p=%.2f: differs from Dijkstra oracle", name, n, p)
				}
			}
		}
	}
}

// TestSolvePadsNonPow2 verifies the public padding path.
func TestSolvePadsNonPow2(t *testing.T) {
	for _, n := range []int{3, 5, 7, 12, 33} {
		g := Random(n, 0.4, 50, int64(n))
		want := AllPairsDijkstra(g)
		got := Solve(g, 4)
		if !exactEq(want, got) {
			t.Fatalf("n=%d: padded Solve differs from oracle", n)
		}
	}
}

func TestFWNegativeEdges(t *testing.T) {
	// Floyd-Warshall handles negative edges (no negative cycles);
	// compare I-GEP against the iterative reference directly.
	g := NewGraph(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, -2)
	g.AddEdge(2, 3, 1)
	g.AddEdge(0, 3, 10)
	g.AddEdge(3, 0, 2)
	want := g.DistanceMatrix()
	FWGEP(want)
	got := g.DistanceMatrix()
	FWIGEP(got, 2)
	if !exactEq(want, got) {
		t.Fatal("negative-edge I-GEP differs from iterative FW")
	}
	if want.At(0, 3) != 4 { // 0→1→2→3 = 5-2+1
		t.Fatalf("d(0,3) = %g, want 4", want.At(0, 3))
	}
}

func TestDijkstraSimple(t *testing.T) {
	g := NewGraph(5)
	g.AddEdge(0, 1, 10)
	g.AddEdge(0, 2, 3)
	g.AddEdge(2, 1, 4)
	g.AddEdge(1, 3, 2)
	g.AddEdge(2, 3, 8)
	d := Dijkstra(g, 0)
	want := []float64{0, 7, 3, 9, Inf}
	for i, w := range want {
		if d[i] != w {
			t.Fatalf("d[%d] = %g, want %g", i, d[i], w)
		}
	}
}

func TestBinHeapSortsRandomInput(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	h := &binHeap{}
	var vals []float64
	for i := 0; i < 500; i++ {
		v := rng.Float64() * 100
		vals = append(vals, v)
		h.push(heapItem{i, v})
	}
	sort.Float64s(vals)
	for i, want := range vals {
		got := h.pop().dist
		if got != want {
			t.Fatalf("pop %d = %g, want %g", i, got, want)
		}
	}
	if h.len() != 0 {
		t.Fatal("heap not empty")
	}
}

func TestPathReconstruction(t *testing.T) {
	for _, n := range []int{8, 16, 32} {
		g := Random(n, 0.3, 20, int64(n))
		d := Solve(g, 4)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				path := Path(g, d, u, v)
				if d.At(u, v) == Inf {
					if path != nil {
						t.Fatalf("path for unreachable (%d,%d)", u, v)
					}
					continue
				}
				if path == nil {
					t.Fatalf("no path found for reachable (%d,%d)", u, v)
				}
				if path[0] != u || path[len(path)-1] != v {
					t.Fatalf("path endpoints wrong: %v for (%d,%d)", path, u, v)
				}
				if w := g.PathWeight(path); w != d.At(u, v) {
					t.Fatalf("path weight %g != distance %g for (%d,%d)", w, d.At(u, v), u, v)
				}
			}
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := Random(10, 0.4, 30, 99)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ParseEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N != g.N || g2.Edges() != g.Edges() {
		t.Fatalf("round trip lost structure: %d/%d vs %d/%d", g2.N, g2.Edges(), g.N, g.Edges())
	}
	if !exactEq(g.DistanceMatrix(), g2.DistanceMatrix()) {
		t.Fatal("round trip changed distances")
	}
}

func TestParseEdgeListErrors(t *testing.T) {
	for _, in := range []string{
		"",               // no header
		"2 1\n5 0 1.0\n", // vertex out of range
		"2 2\n0 1 1.0\n", // truncated
		"-1 0\n",         // negative n
	} {
		if _, err := ParseEdgeList(bytes.NewBufferString(in)); err == nil {
			t.Fatalf("ParseEdgeList(%q) accepted bad input", in)
		}
	}
}

func TestDistanceMatrixParallelEdges(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 9)
	g.AddEdge(0, 1, 3)
	g.AddEdge(0, 1, 7)
	if d := g.DistanceMatrix(); d.At(0, 1) != 3 {
		t.Fatalf("parallel edges: got %g, want 3", d.At(0, 1))
	}
}

func TestFWParallelBitwiseMatchesSerial(t *testing.T) {
	g := Random(64, 0.2, 100, 5)
	s := g.DistanceMatrix()
	FWIGEP(s, 8)
	p := g.DistanceMatrix()
	FWParallel(p, 8, 16)
	if !exactEq(s, p) {
		t.Fatal("parallel FW differs from serial")
	}
}

func TestFWIGEPTiledMatchesOracle(t *testing.T) {
	for _, n := range []int{4, 16, 64} {
		for _, base := range []int{2, 8, 64} {
			if base > n {
				continue
			}
			g := Random(n, 0.3, 100, int64(n+base))
			want := AllPairsDijkstra(g)
			d := g.DistanceMatrix()
			FWIGEPTiled(d, base)
			if !exactEq(want, d) {
				t.Fatalf("n=%d base=%d: tiled FW differs from oracle", n, base)
			}
		}
	}
}

// bruteReach is an independent BFS-based reachability oracle.
func bruteReach(g *Graph) *matrix.Dense[bool] {
	r := matrix.NewSquare[bool](g.N)
	for s := 0; s < g.N; s++ {
		seen := make([]bool, g.N)
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range g.Adj[u] {
				if !seen[e.To] {
					seen[e.To] = true
					stack = append(stack, e.To)
				}
			}
		}
		for v, ok := range seen {
			r.Set(s, v, ok)
		}
	}
	return r
}

func TestTransitiveClosureMatchesBFS(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 33, 64} {
		g := Random(n, 2.5/float64(n+1), 10, int64(n*3))
		want := bruteReach(g)
		got := g.Reachability()
		if !matrix.Equal(want, got) {
			t.Fatalf("n=%d: closure differs from BFS oracle", n)
		}
	}
}

func TestTransitiveClosureEmpty(t *testing.T) {
	r := matrix.NewSquare[bool](0)
	TransitiveClosure(r) // must not panic
}

// randNegGraph returns a random graph with some negative edges but no
// negative cycles (weights shifted by vertex potentials, which
// preserves cycle weights as non-negative).
func randNegGraph(n int, p float64, seed int64) *Graph {
	base := Random(n, p, 20, seed)
	rng := rand.New(rand.NewSource(seed + 99))
	pot := make([]float64, n)
	for i := range pot {
		pot[i] = float64(rng.Intn(30))
	}
	g := NewGraph(n)
	for _, es := range base.Adj {
		for _, e := range es {
			// w' = w + pot[u] - pot[v]: can be negative, cycles keep
			// their (positive) total weight.
			g.AddEdge(e.From, e.To, e.Weight+pot[e.From]-pot[e.To])
		}
	}
	return g
}

func TestBellmanFordMatchesDijkstraNonNegative(t *testing.T) {
	g := Random(40, 0.2, 50, 7)
	for src := 0; src < 10; src++ {
		bf, err := BellmanFord(g, src)
		if err != nil {
			t.Fatal(err)
		}
		dj := Dijkstra(g, src)
		for v := range bf {
			if bf[v] != dj[v] {
				t.Fatalf("src=%d v=%d: BF %g vs Dijkstra %g", src, v, bf[v], dj[v])
			}
		}
	}
}

func TestBellmanFordNegativeCycle(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, -3)
	g.AddEdge(2, 1, 1)
	if _, err := BellmanFord(g, 0); err == nil {
		t.Fatal("negative cycle not detected")
	}
	if !HasNegativeCycle(g) {
		t.Fatal("HasNegativeCycle false")
	}
}

// TestFWMatchesJohnsonNegativeWeights: the Floyd-Warshall variants vs
// Johnson's algorithm on graphs with negative edges — an oracle check
// plain Dijkstra cannot provide.
func TestFWMatchesJohnsonNegativeWeights(t *testing.T) {
	for _, n := range []int{8, 16, 32} {
		g := randNegGraph(n, 0.3, int64(n))
		want, err := Johnson(g)
		if err != nil {
			t.Fatal(err)
		}
		for name, fw := range map[string]func(d *matrix.Dense[float64]){
			"gep":   FWGEP,
			"igep":  func(d *matrix.Dense[float64]) { FWIGEP(d, 4) },
			"tiled": func(d *matrix.Dense[float64]) { FWIGEPTiled(d, 8) },
		} {
			d := g.DistanceMatrix()
			fw(d)
			if !exactEq(want, d) {
				t.Fatalf("%s n=%d: differs from Johnson on negative weights", name, n)
			}
		}
	}
}

func TestJohnsonHandlesUnreachable(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, -2)
	d, err := Johnson(g)
	if err != nil {
		t.Fatal(err)
	}
	if d.At(0, 1) != -2 || d.At(1, 0) != Inf || d.At(2, 0) != Inf {
		t.Fatalf("unexpected distances: %v", d)
	}
}

// bruteSCC computes components via the BFS oracle.
func bruteSCC(g *Graph) []int {
	r := bruteReach(g)
	n := g.N
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	for u := 0; u < n; u++ {
		if comp[u] >= 0 {
			continue
		}
		comp[u] = next
		for v := u + 1; v < n; v++ {
			if comp[v] < 0 && r.At(u, v) && r.At(v, u) {
				comp[v] = next
			}
		}
		next++
	}
	return comp
}

func TestSCCMatchesBFSOracle(t *testing.T) {
	for _, n := range []int{1, 5, 16, 40} {
		g := Random(n, 2.0/float64(n+1), 5, int64(n*7))
		want := bruteSCC(g)
		got := g.SCC()
		if len(got) != len(want) {
			t.Fatalf("n=%d: SCC length mismatch", n)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: comp[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestSCCKnownCycle(t *testing.T) {
	g := NewGraph(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 0, 1) // cycle {0,1,2}
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 4, 1)
	comp := g.SCC()
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatalf("cycle not merged: %v", comp)
	}
	if comp[3] == comp[0] || comp[4] == comp[3] {
		t.Fatalf("chain merged wrongly: %v", comp)
	}
	nComp, edges := g.CondensationDAG()
	if nComp != 3 {
		t.Fatalf("condensation has %d components, want 3", nComp)
	}
	if len(edges) != 2 {
		t.Fatalf("condensation has %d edges, want 2: %v", len(edges), edges)
	}
}

func TestEccentricityDiameterRadius(t *testing.T) {
	// Path graph 0->1->2 with unit weights (directed both ways).
	g := NewGraph(3)
	for _, e := range [][2]int{{0, 1}, {1, 0}, {1, 2}, {2, 1}} {
		g.AddEdge(e[0], e[1], 1)
	}
	d := Solve(g, 2)
	ecc := Eccentricities(d)
	want := []float64{2, 1, 2}
	for i := range want {
		if ecc[i] != want[i] {
			t.Fatalf("ecc[%d] = %g, want %g", i, ecc[i], want[i])
		}
	}
	diam, rad := DiameterRadius(d)
	if diam != 2 || rad != 1 {
		t.Fatalf("diameter/radius = %g/%g, want 2/1", diam, rad)
	}
}

func TestDiameterDisconnected(t *testing.T) {
	g := NewGraph(2) // no edges
	d := Solve(g, 2)
	diam, rad := DiameterRadius(d)
	if diam != Inf || rad != Inf {
		t.Fatalf("disconnected: %g/%g, want Inf/Inf", diam, rad)
	}
}
