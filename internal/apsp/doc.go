// Package apsp implements all-pairs shortest paths: the paper's §4.1
// workload. It provides Floyd-Warshall in the three compared forms
// (iterative GEP, cache-oblivious I-GEP, and parallel I-GEP), graph
// generation and I/O, an independent Dijkstra oracle for verification,
// and path reconstruction.
//
// Key types and entry points:
//
//   - Graph: adjacency-list directed weighted graph, with Random
//     generation, ParseEdgeList/WriteEdgeList I/O, and DistanceMatrix
//     to produce the n×n input the GEP solvers update in place.
//   - FWGEPPure / FWGEP / FWIGEP / FWIGEPTiled / FWParallel: the
//     Floyd-Warshall ladder measured in Figures 8-9 — textbook triple
//     loop, loop-optimized GEP, cache-oblivious I-GEP recursion, the
//     Morton-tiled variant (§4.2), and the multithreaded A/B/C/D
//     recursion of Figure 6.
//   - Dijkstra / AllPairsDijkstra / BellmanFord / Johnson: independent
//     oracles used by the tests to validate every Floyd-Warshall
//     variant, including graphs with negative edges.
//   - TransitiveClosure, Reachability, SCC, CondensationDAG:
//     closure-semiring instances of the same GEP computation;
//     ClosureParallel runs the bool closure on the A/B/C/D schedule.
//   - TransitiveClosurePacked / ClosurePackedParallel /
//     (*Graph).ReachabilityPacked: the same closure over bit-packed
//     matrix.Bits storage — 64 cells per word through the
//     word-parallel and four-Russians kernels (DESIGN.md §13),
//     bit-identical to the bool path.
//   - Path / PathWeight, Eccentricities / DiameterRadius: path
//     reconstruction and the derived graph metrics reported by the
//     harness.
package apsp
