package apsp

import (
	"testing"

	"gep/internal/par"
)

// TestFWFusedMatchesHandKernel: the engine-backed fused entry point
// must agree exactly with the hand-specialized recursion (min-plus is
// order-insensitive per cell, so all correct variants are bitwise
// equal) and therefore with the Dijkstra oracle transitively.
func TestFWFusedMatchesHandKernel(t *testing.T) {
	for _, n := range []int{4, 16, 64} {
		for _, base := range []int{1, 8, 64} {
			g := Random(n, 0.25, 100, int64(7*n+base))
			want := g.DistanceMatrix()
			FWIGEP(want, 8)
			got := g.DistanceMatrix()
			FWFused(got, base)
			if !exactEq(want, got) {
				t.Fatalf("n=%d base=%d: fused FW differs from hand kernel", n, base)
			}
		}
	}
}

// TestFWFusedParallelMatchesSerial: the parallel entry point runs the
// same updates through the work-stealing runtime, so at every worker
// count the result must be bitwise equal to the serial fused path.
func TestFWFusedParallelMatchesSerial(t *testing.T) {
	defer par.ResetWorkers()
	const n, base, grain = 64, 8, 16
	g := Random(n, 0.25, 100, 99)
	want := g.DistanceMatrix()
	FWFused(want, base)
	for _, p := range []int{1, 2, 4} {
		par.SetWorkers(p)
		got := g.DistanceMatrix()
		FWFusedParallel(got, base, grain)
		if !exactEq(want, got) {
			t.Fatalf("p=%d: FWFusedParallel differs from FWFused", p)
		}
	}
}
