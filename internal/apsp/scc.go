package apsp

import "gep/internal/matrix"

// Strongly connected components from the transitive closure: u and v
// are in the same SCC iff each reaches the other. Quadratic-space but
// a natural consumer of the cache-oblivious closure, and an
// independent cross-check target for Tarjan-style algorithms.

// SCC returns a component ID per vertex (IDs are dense, in order of
// first appearance) computed from the cache-oblivious transitive
// closure.
func (g *Graph) SCC() []int {
	r := g.Reachability()
	return sccFromClosure(r)
}

func sccFromClosure(r *matrix.Dense[bool]) []int {
	n := r.N()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	for u := 0; u < n; u++ {
		if comp[u] >= 0 {
			continue
		}
		comp[u] = next
		for v := u + 1; v < n; v++ {
			if comp[v] < 0 && r.At(u, v) && r.At(v, u) {
				comp[v] = next
			}
		}
		next++
	}
	return comp
}

// CondensationDAG returns the component count and the edges of the
// condensation (one edge per reachable ordered component pair that has
// a direct edge in g).
func (g *Graph) CondensationDAG() (int, [][2]int) {
	comp := g.SCC()
	max := -1
	for _, c := range comp {
		if c > max {
			max = c
		}
	}
	seen := map[[2]int]bool{}
	var edges [][2]int
	for _, es := range g.Adj {
		for _, e := range es {
			cu, cv := comp[e.From], comp[e.To]
			if cu == cv {
				continue
			}
			key := [2]int{cu, cv}
			if !seen[key] {
				seen[key] = true
				edges = append(edges, key)
			}
		}
	}
	return max + 1, edges
}
