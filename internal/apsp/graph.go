package apsp

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"

	"gep/internal/matrix"
)

// Inf is the "no path" distance.
var Inf = math.Inf(1)

// Edge is a directed weighted edge.
type Edge struct {
	From, To int
	Weight   float64
}

// Graph is a directed weighted graph in adjacency-list form.
type Graph struct {
	N     int
	Adj   [][]Edge // Adj[u] lists edges leaving u
	edges int
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph {
	return &Graph{N: n, Adj: make([][]Edge, n)}
}

// AddEdge inserts a directed edge; negative weights are allowed (the
// Floyd-Warshall algorithms handle them as long as no negative cycle
// exists), but the Dijkstra oracle requires non-negative weights.
func (g *Graph) AddEdge(u, v int, w float64) {
	if u < 0 || u >= g.N || v < 0 || v >= g.N {
		panic(fmt.Sprintf("apsp: edge (%d,%d) out of range n=%d", u, v, g.N))
	}
	g.Adj[u] = append(g.Adj[u], Edge{From: u, To: v, Weight: w})
	g.edges++
}

// Edges returns the number of edges.
func (g *Graph) Edges() int { return g.edges }

// Random returns a G(n, p) directed graph with integer weights in
// [1, maxW]; integer weights keep min-plus arithmetic exact in float64,
// so all algorithm variants agree bitwise.
func Random(n int, p float64, maxW int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < p {
				g.AddEdge(u, v, float64(rng.Intn(maxW)+1))
			}
		}
	}
	return g
}

// DistanceMatrix returns the n×n initial distance matrix: 0 on the
// diagonal, edge weights (minimum over parallel edges) elsewhere, Inf
// where no edge exists.
func (g *Graph) DistanceMatrix() *matrix.Dense[float64] {
	d := matrix.NewSquare[float64](g.N)
	d.Fill(Inf)
	for i := 0; i < g.N; i++ {
		d.Set(i, i, 0)
	}
	for _, es := range g.Adj {
		for _, e := range es {
			if e.Weight < d.At(e.From, e.To) {
				d.Set(e.From, e.To, e.Weight)
			}
		}
	}
	return d
}

// ParseEdgeList reads a graph from "u v w" lines (0-based vertices);
// the first line must be "n m" with the vertex and edge counts.
func ParseEdgeList(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var n, m int
	if _, err := fmt.Fscan(br, &n, &m); err != nil {
		return nil, fmt.Errorf("apsp: reading header: %w", err)
	}
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("apsp: bad header n=%d m=%d", n, m)
	}
	g := NewGraph(n)
	for i := 0; i < m; i++ {
		var u, v int
		var w float64
		if _, err := fmt.Fscan(br, &u, &v, &w); err != nil {
			return nil, fmt.Errorf("apsp: reading edge %d: %w", i, err)
		}
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("apsp: edge %d (%d,%d) out of range", i, u, v)
		}
		g.AddEdge(u, v, w)
	}
	return g, nil
}

// WriteEdgeList writes the graph in the ParseEdgeList format.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.N, g.edges); err != nil {
		return err
	}
	for _, es := range g.Adj {
		for _, e := range es {
			if _, err := fmt.Fprintf(bw, "%d %d %g\n", e.From, e.To, e.Weight); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
