package apsp

import (
	"errors"

	"gep/internal/matrix"
)

// Johnson's algorithm: all-pairs shortest paths on sparse graphs with
// negative edge weights (no negative cycles) via Bellman-Ford
// reweighting plus Dijkstra from every source. It serves as the
// independent oracle for Floyd-Warshall on negative-weight inputs,
// where plain Dijkstra does not apply.

// ErrNegativeCycle is returned when a negative-weight cycle makes
// shortest paths undefined.
var ErrNegativeCycle = errors.New("apsp: negative cycle")

// BellmanFord computes single-source distances from src, supporting
// negative weights; it returns ErrNegativeCycle when one is reachable.
func BellmanFord(g *Graph, src int) ([]float64, error) {
	n := g.N
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	for round := 0; round < n-1; round++ {
		changed := false
		for _, es := range g.Adj {
			for _, e := range es {
				if dist[e.From] == Inf {
					continue
				}
				if nd := dist[e.From] + e.Weight; nd < dist[e.To] {
					dist[e.To] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	// One more relaxation detects negative cycles.
	for _, es := range g.Adj {
		for _, e := range es {
			if dist[e.From] != Inf && dist[e.From]+e.Weight < dist[e.To] {
				return nil, ErrNegativeCycle
			}
		}
	}
	return dist, nil
}

// Johnson returns the all-pairs distance matrix of g, allowing
// negative edge weights (no negative cycles).
func Johnson(g *Graph) (*matrix.Dense[float64], error) {
	n := g.N
	// Augment with a virtual source connected to every vertex by a
	// zero edge, and Bellman-Ford from it to get the potentials h.
	aug := NewGraph(n + 1)
	for _, es := range g.Adj {
		for _, e := range es {
			aug.AddEdge(e.From, e.To, e.Weight)
		}
	}
	for v := 0; v < n; v++ {
		aug.AddEdge(n, v, 0)
	}
	h, err := BellmanFord(aug, n)
	if err != nil {
		return nil, err
	}
	// Reweight: w'(u,v) = w(u,v) + h[u] - h[v] >= 0.
	rw := NewGraph(n)
	for _, es := range g.Adj {
		for _, e := range es {
			rw.AddEdge(e.From, e.To, e.Weight+h[e.From]-h[e.To])
		}
	}
	// Dijkstra from every source on the reweighted graph, then undo
	// the potentials.
	d := matrix.NewSquare[float64](n)
	for s := 0; s < n; s++ {
		ds := Dijkstra(rw, s)
		row := d.Row(s)
		for v := 0; v < n; v++ {
			if ds[v] == Inf {
				row[v] = Inf
			} else {
				row[v] = ds[v] - h[s] + h[v]
			}
		}
	}
	return d, nil
}

// HasNegativeCycle reports whether g contains a reachable
// negative-weight cycle (from any vertex).
func HasNegativeCycle(g *Graph) bool {
	_, err := Johnson(g)
	return errors.Is(err, ErrNegativeCycle)
}
