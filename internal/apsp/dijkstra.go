package apsp

import (
	"fmt"

	"gep/internal/matrix"
)

// Dijkstra's algorithm with a hand-rolled binary heap, used as an
// independent oracle to verify the Floyd-Warshall implementations
// (different algorithm, different code path, same answers on
// non-negative weights).

// heapItem is a (vertex, distance) pair in the priority queue.
type heapItem struct {
	v    int
	dist float64
}

// binHeap is a minimal binary min-heap specialized to heapItem; we
// roll our own (rather than container/heap) to keep the oracle free of
// interface indirection and to exercise it with its own tests.
type binHeap struct {
	items []heapItem
}

func (h *binHeap) len() int { return len(h.items) }

func (h *binHeap) push(it heapItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].dist <= h.items[i].dist {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *binHeap) pop() heapItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.items[l].dist < h.items[smallest].dist {
			smallest = l
		}
		if r < last && h.items[r].dist < h.items[smallest].dist {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top
}

// Dijkstra returns single-source shortest path distances from src.
// All edge weights must be non-negative.
func Dijkstra(g *Graph, src int) []float64 {
	if src < 0 || src >= g.N {
		panic(fmt.Sprintf("apsp: source %d out of range n=%d", src, g.N))
	}
	dist := make([]float64, g.N)
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	done := make([]bool, g.N)
	h := &binHeap{}
	h.push(heapItem{src, 0})
	for h.len() > 0 {
		it := h.pop()
		if done[it.v] {
			continue
		}
		done[it.v] = true
		for _, e := range g.Adj[it.v] {
			if e.Weight < 0 {
				panic("apsp: Dijkstra requires non-negative weights")
			}
			if nd := it.dist + e.Weight; nd < dist[e.To] {
				dist[e.To] = nd
				h.push(heapItem{e.To, nd})
			}
		}
	}
	return dist
}

// AllPairsDijkstra runs Dijkstra from every source — the O(nm log n)
// oracle for the Floyd-Warshall tests and benchmarks.
func AllPairsDijkstra(g *Graph) *matrix.Dense[float64] {
	d := matrix.NewSquare[float64](g.N)
	for s := 0; s < g.N; s++ {
		copy(d.Row(s), Dijkstra(g, s))
	}
	return d
}
