package apsp

import (
	"testing"

	"gep/internal/matrix"
)

const benchN = 256

func benchGraph() *Graph { return Random(benchN, 0.3, 1000, 1) }

func benchFWVariant(b *testing.B, run func(*matrix.Dense[float64])) {
	b.Helper()
	in := benchGraph().DistanceMatrix()
	b.SetBytes(int64(FWFlops(benchN)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := in.Clone()
		b.StartTimer()
		run(d)
	}
}

func BenchmarkFWGEPPureKernel(b *testing.B) { benchFWVariant(b, FWGEPPure) }
func BenchmarkFWGEPKernel(b *testing.B)     { benchFWVariant(b, FWGEP) }
func BenchmarkFWIGEPKernel(b *testing.B) {
	benchFWVariant(b, func(d *matrix.Dense[float64]) { FWIGEP(d, 64) })
}
func BenchmarkFWIGEPTiledKernel(b *testing.B) {
	benchFWVariant(b, func(d *matrix.Dense[float64]) { FWIGEPTiled(d, 64) })
}

func BenchmarkDijkstraAllPairs(b *testing.B) {
	g := benchGraph()
	for i := 0; i < b.N; i++ {
		_ = AllPairsDijkstra(g)
	}
}

func BenchmarkJohnson(b *testing.B) {
	g := benchGraph()
	for i := 0; i < b.N; i++ {
		if _, err := Johnson(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransitiveClosure(b *testing.B) {
	g := Random(benchN, 2.0/float64(benchN), 5, 2)
	for i := 0; i < b.N; i++ {
		_ = g.Reachability()
	}
}

func BenchmarkPathReconstruction(b *testing.B) {
	g := benchGraph()
	d := Solve(g, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Path(g, d, i%benchN, (i*7+1)%benchN)
	}
}
