package apsp

import (
	"fmt"

	"gep/internal/core"
	"gep/internal/matrix"
	"gep/internal/par"
)

// Packed transitive closure: the same boolean-semiring GEP instance as
// TransitiveClosure, run over a bit-packed matrix (64 cells per word).
// The engines are identical — RunIGEP / RunABCD with the core.Closure
// op — but the base cases dispatch to the word-parallel OR kernels and
// the four-Russians table kernel of internal/core/bits.go, so the
// closure runs at ~64 cells per instruction plus the table gain. The
// result is bit-for-bit equal to the unpacked path (asserted by the
// differential and fuzz tests in packed_test.go).

// TransitiveClosurePacked computes reachability in place over a packed
// boolean matrix: reach[i][j] must initially hold edge presence (the
// diagonal is forced true). Any side length is accepted. tableWidth is
// the four-Russians group width in bits; 0 disables the table kernel
// and tableWidth < 0 selects the default (8).
func TransitiveClosurePacked(reach *matrix.Bits, tableWidth int) {
	runPackedClosure(reach, func(m *matrix.Bits) {
		core.RunIGEP[bool](m, core.Closure{}, core.Full{}, packedOpts(tableWidth)...)
	})
}

// ClosurePackedParallel is TransitiveClosurePacked through the
// multithreaded A/B/C/D recursion on the work-stealing runtime. reach
// must be word-aligned (matrix.Bits.Aligned — true for any matrix from
// NewBits, false only for mid-word sub-views): concurrent quadrants
// split the column range at multiples of the grain, and the grain is
// clamped to >= 64 so sibling quadrants of an aligned matrix never
// share an edge word. Output is bit-identical to the serial packed and
// unpacked paths at every worker count.
func ClosurePackedParallel(reach *matrix.Bits, tableWidth, grain int) {
	ClosurePackedParallelOn(nil, reach, tableWidth, grain)
}

// ClosurePackedParallelOn is ClosurePackedParallel with all forks
// confined to rt (nil = the default runtime).
func ClosurePackedParallelOn(rt *par.Runtime, reach *matrix.Bits, tableWidth, grain int) {
	if !reach.Aligned() {
		panic("apsp: ClosurePackedParallel requires a word-aligned matrix (see Bits.Aligned)")
	}
	if grain < 64 {
		grain = 64
	}
	runPackedClosure(reach, func(m *matrix.Bits) {
		opts := append(packedOpts(tableWidth),
			core.WithParallel[bool](grain), core.WithRuntime[bool](rt))
		core.RunABCD[bool](m, core.Closure{}, core.Full{}, opts...)
	})
}

// runPackedClosure forces the diagonal, pads to a power of two when
// needed (padded diagonal forced in the same pass), runs the engine,
// and crops back through a Sub view — the same single-copy shape as
// TransitiveClosure.
func runPackedClosure(reach *matrix.Bits, run func(*matrix.Bits)) {
	n := reach.N()
	if n == 0 {
		return
	}
	for i := 0; i < n; i++ {
		reach.Set(i, i, true)
	}
	if matrix.IsPow2(n) {
		run(reach)
		return
	}
	p := matrix.PadBitsPow2(reach, false)
	for i := n; i < p.N(); i++ {
		p.Set(i, i, true)
	}
	run(p)
	reach.CopyFrom(p.Sub(0, 0, n, n))
}

// packedOpts translates the tableWidth convention (< 0 = default,
// 0 = word kernel only, > 0 = explicit width) into engine options.
func packedOpts(tableWidth int) []core.Option[bool] {
	if tableWidth < 0 {
		return nil
	}
	return []core.Option[bool]{core.WithTableWidth[bool](tableWidth)}
}

// ReachabilityPacked returns the closure matrix of g in packed form
// without modifying g.
func (g *Graph) ReachabilityPacked() *matrix.Bits {
	if g.N < 0 {
		panic(fmt.Sprintf("apsp: negative vertex count %d", g.N))
	}
	r := matrix.NewBitsSquare(g.N)
	for _, es := range g.Adj {
		for _, e := range es {
			r.Set(e.From, e.To, true)
		}
	}
	TransitiveClosurePacked(r, -1)
	return r
}
