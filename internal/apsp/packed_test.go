package apsp

import (
	"math/rand"
	"testing"

	"gep/internal/matrix"
	"gep/internal/par"
)

// randReach returns a random edge-presence matrix (no forced
// diagonal; the closure entry points force it themselves).
func randReach(rng *rand.Rand, n int, density int) *matrix.Dense[bool] {
	r := matrix.NewSquare[bool](n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Intn(100) < density {
				r.Set(i, j, true)
			}
		}
	}
	return r
}

// TestClosureParallelVsSerial: the A/B/C/D parallel closure must be
// bit-identical to the serial I-GEP closure at every worker count,
// including non-power-of-two sides through the padded path.
func TestClosureParallelVsSerial(t *testing.T) {
	defer par.ResetWorkers()
	rng := rand.New(rand.NewSource(81))
	for _, n := range []int{1, 7, 64, 100, 128} {
		want := randReach(rng, n, 8)
		src := want.Clone()
		TransitiveClosure(want)
		for _, p := range []int{1, 2, 4} {
			par.SetWorkers(p)
			got := src.Clone()
			ClosureParallel(got, 64)
			if !matrix.Equal(want, got) {
				t.Fatalf("n=%d p=%d: ClosureParallel differs from TransitiveClosure", n, p)
			}
		}
	}
}

// TestPackedClosureVsBool: the packed closures (serial, parallel, with
// and without the four-Russians kernel) must equal the bool path
// bit-for-bit, including non-power-of-two sides.
func TestPackedClosureVsBool(t *testing.T) {
	defer par.ResetWorkers()
	rng := rand.New(rand.NewSource(82))
	for _, n := range []int{1, 2, 13, 64, 100, 128, 200} {
		src := randReach(rng, n, 6)
		want := src.Clone()
		TransitiveClosure(want)
		for _, tw := range []int{-1, 0, 4} {
			got := matrix.PackBool(src)
			TransitiveClosurePacked(got, tw)
			if !matrix.Equal(want, matrix.UnpackBool(got)) {
				t.Fatalf("n=%d tw=%d: packed closure differs from bool closure", n, tw)
			}
		}
		for _, p := range []int{1, 2, 4} {
			par.SetWorkers(p)
			got := matrix.PackBool(src)
			ClosurePackedParallel(got, -1, 64)
			if !matrix.Equal(want, matrix.UnpackBool(got)) {
				t.Fatalf("n=%d p=%d: parallel packed closure differs from bool closure", n, p)
			}
		}
	}
}

// TestPackedClosureUnalignedView runs the serial packed closure on a
// mid-word square view and checks both the result and that cells
// outside the view are untouched.
func TestPackedClosureUnalignedView(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	const n, off = 65, 9
	src := randReach(rng, n, 6)
	want := src.Clone()
	TransitiveClosure(want)
	parent := matrix.NewBits(n, n+off+5)
	parent.Fill(true)
	v := parent.Sub(0, off, n, n)
	v.CopyFrom(matrix.PackBool(src))
	TransitiveClosurePacked(v, -1)
	if !matrix.Equal(want, matrix.UnpackBool(v)) {
		t.Fatal("packed closure on unaligned view differs from bool closure")
	}
	for i := 0; i < n; i++ {
		for _, j := range []int{0, off - 1, n + off, parent.Cols() - 1} {
			if !parent.At(i, j) {
				t.Fatalf("cell (%d,%d) outside the view was clobbered", i, j)
			}
		}
	}
}

// TestClosureParallelPackedRejectsUnaligned pins the alignment
// contract of the parallel packed entry point.
func TestClosureParallelPackedRejectsUnaligned(t *testing.T) {
	parent := matrix.NewBits(8, 16)
	v := parent.Sub(0, 3, 8, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("ClosurePackedParallel accepted an unaligned view")
		}
	}()
	ClosurePackedParallel(v, -1, 64)
}

// TestReachabilityPackedMatchesBool compares the packed graph entry
// point against Reachability on random graphs.
func TestReachabilityPackedMatchesBool(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := Random(50, 0.05, 10, seed)
		want := g.Reachability()
		got := g.ReachabilityPacked()
		if !matrix.Equal(want, matrix.UnpackBool(got)) {
			t.Fatalf("seed %d: ReachabilityPacked differs from Reachability", seed)
		}
	}
}

// FuzzBitsVsBool fuzzes random edge sets through the packed and bool
// closure paths and requires exact equality — the bit-packed engine's
// end-to-end differential oracle.
func FuzzBitsVsBool(fz *testing.F) {
	fz.Add([]byte{3, 0x80, 0x01})
	fz.Add([]byte{65, 0xFF, 0x00, 0xAA, 0x55})
	fz.Add([]byte{0})
	fz.Add([]byte{130, 0x10, 0x20, 0x40, 0x80, 0x01})
	fz.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		// First byte picks the side (0..160); the rest is an edge
		// bitstream, wrapping when short.
		n := int(data[0]) % 161
		data = data[1:]
		src := matrix.NewSquare[bool](n)
		if len(data) > 0 {
			bit := 0
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					b := data[(bit/8)%len(data)]
					if b>>(bit%8)&1 == 1 {
						src.Set(i, j, true)
					}
					bit++
				}
			}
		}
		want := src.Clone()
		TransitiveClosure(want)
		for _, tw := range []int{0, 8} {
			got := matrix.PackBool(src)
			TransitiveClosurePacked(got, tw)
			if !matrix.Equal(want, matrix.UnpackBool(got)) {
				t.Fatalf("n=%d tw=%d: packed closure diverged from bool closure", n, tw)
			}
		}
	})
}
