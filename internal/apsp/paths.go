package apsp

import (
	"gep/internal/matrix"
)

// Path reconstruction. The distance-only Floyd-Warshall variants do
// not carry successor information, so paths are rebuilt from the
// distance matrix and the graph: from u toward v, repeatedly follow an
// edge (u, x) with w(u,x) + d(x,v) == d(u,v). With exact (integer)
// weights this recovers a shortest path without having stored one.

// Path returns a shortest u→v path as a vertex sequence (inclusive),
// or nil if v is unreachable from u. d must be the APSP distance
// matrix of g.
func Path(g *Graph, d *matrix.Dense[float64], u, v int) []int {
	if d.At(u, v) == Inf {
		return nil
	}
	path := []int{u}
	cur := u
	// A shortest path visits each vertex at most once, bounding the
	// loop; the guard protects against inconsistent inputs.
	for steps := 0; cur != v; steps++ {
		if steps > g.N {
			return nil // d is not a valid distance matrix for g
		}
		next := -1
		for _, e := range g.Adj[cur] {
			if e.Weight+d.At(e.To, v) == d.At(cur, v) {
				next = e.To
				break
			}
		}
		if next == -1 {
			return nil
		}
		path = append(path, next)
		cur = next
	}
	return path
}

// PathWeight sums the weights along a vertex sequence, returning Inf
// if some hop has no edge (minimum-weight parallel edge is used).
func (g *Graph) PathWeight(path []int) float64 {
	total := 0.0
	for i := 0; i+1 < len(path); i++ {
		best := Inf
		for _, e := range g.Adj[path[i]] {
			if e.To == path[i+1] && e.Weight < best {
				best = e.Weight
			}
		}
		if best == Inf {
			return Inf
		}
		total += best
	}
	return total
}
