package apsp

import (
	"gep/internal/core"
	"gep/internal/matrix"
)

// Transitive closure (Warshall's algorithm): the boolean-semiring
// instance of GEP with f = x ∨ (u ∧ v), another computation the
// paradigm covers directly.

// TransitiveClosure computes reachability in place: reach[i][j] must
// initially hold edge presence (the diagonal is forced true). Any side
// length is accepted; the computation is cache-oblivious and runs the
// fused core.Closure kernel (base cases skip whole rows whose c[i,k] is
// false instead of calling the update per element).
func TransitiveClosure(reach *matrix.Dense[bool]) {
	n := reach.N()
	if n == 0 {
		return
	}
	for i := 0; i < n; i++ {
		reach.Set(i, i, true)
	}
	if matrix.IsPow2(n) {
		core.RunIGEP[bool](reach, core.Closure{}, core.Full{})
		return
	}
	p := matrix.PadPow2(reach, false)
	for i := n; i < p.N(); i++ {
		p.Set(i, i, true)
	}
	core.RunIGEP[bool](p, core.Closure{}, core.Full{})
	reach.CopyFrom(p.Sub(0, 0, n, n))
}

// Reachability returns the closure matrix of g without modifying it.
func (g *Graph) Reachability() *matrix.Dense[bool] {
	r := matrix.NewSquare[bool](g.N)
	for _, es := range g.Adj {
		for _, e := range es {
			r.Set(e.From, e.To, true)
		}
	}
	TransitiveClosure(r)
	return r
}
