package apsp

import (
	"gep/internal/core"
	"gep/internal/matrix"
	"gep/internal/par"
)

// Transitive closure (Warshall's algorithm): the boolean-semiring
// instance of GEP with f = x ∨ (u ∧ v), another computation the
// paradigm covers directly.

// TransitiveClosure computes reachability in place: reach[i][j] must
// initially hold edge presence (the diagonal is forced true). Any side
// length is accepted; the computation is cache-oblivious and runs the
// fused core.Closure kernel (base cases skip whole rows whose c[i,k] is
// false instead of calling the update per element).
func TransitiveClosure(reach *matrix.Dense[bool]) {
	n := reach.N()
	if n == 0 {
		return
	}
	forceDiag(reach, n)
	if matrix.IsPow2(n) {
		core.RunIGEP[bool](reach, core.Closure{}, core.Full{})
		return
	}
	// PadPow2Diag forces the padded diagonal in the same pass as the
	// pad, and the result is cropped directly back into reach through a
	// Sub view — one padded allocation, one copy back, no Crop clone.
	p := matrix.PadPow2Diag(reach, false, true)
	core.RunIGEP[bool](p, core.Closure{}, core.Full{})
	reach.CopyFrom(p.Sub(0, 0, n, n))
}

// ClosureParallel is TransitiveClosure through the multithreaded
// A/B/C/D recursion (Figure 6) on the work-stealing runtime
// (internal/par). RunABCD refines the same partial order as RunIGEP,
// so the output is bit-identical to TransitiveClosure at every worker
// count. grain is the subproblem side below which recursion runs
// serially.
func ClosureParallel(reach *matrix.Dense[bool], grain int) {
	ClosureParallelOn(nil, reach, grain)
}

// ClosureParallelOn is ClosureParallel with all forks confined to rt
// (nil = the default runtime).
func ClosureParallelOn(rt *par.Runtime, reach *matrix.Dense[bool], grain int) {
	n := reach.N()
	if n == 0 {
		return
	}
	forceDiag(reach, n)
	run := func(m *matrix.Dense[bool]) {
		core.RunABCD[bool](m, core.Closure{}, core.Full{},
			core.WithParallel[bool](grain), core.WithRuntime[bool](rt))
	}
	if matrix.IsPow2(n) {
		run(reach)
		return
	}
	p := matrix.PadPow2Diag(reach, false, true)
	run(p)
	reach.CopyFrom(p.Sub(0, 0, n, n))
}

// forceDiag sets the first n diagonal cells true (every vertex reaches
// itself).
func forceDiag(reach *matrix.Dense[bool], n int) {
	for i := 0; i < n; i++ {
		reach.Set(i, i, true)
	}
}

// Reachability returns the closure matrix of g without modifying it.
func (g *Graph) Reachability() *matrix.Dense[bool] {
	r := matrix.NewSquare[bool](g.N)
	for _, es := range g.Adj {
		for _, e := range es {
			r.Set(e.From, e.To, true)
		}
	}
	TransitiveClosure(r)
	return r
}
