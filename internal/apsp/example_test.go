package apsp_test

import (
	"fmt"

	"gep/internal/apsp"
)

func ExampleSolve() {
	g := apsp.NewGraph(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 3)
	g.AddEdge(0, 3, 10)
	d := apsp.Solve(g, 2)
	fmt.Println(d.At(0, 3))
	// Output: 6
}

func ExamplePath() {
	g := apsp.NewGraph(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 3)
	g.AddEdge(0, 3, 10)
	d := apsp.Solve(g, 2)
	fmt.Println(apsp.Path(g, d, 0, 3))
	// Output: [0 1 2 3]
}

func ExampleGraph_Reachability() {
	g := apsp.NewGraph(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	r := g.Reachability()
	fmt.Println(r.At(0, 2), r.At(2, 0))
	// Output: true false
}

func ExampleJohnson() {
	g := apsp.NewGraph(3)
	g.AddEdge(0, 1, 4)
	g.AddEdge(1, 2, -2) // negative edge, no negative cycle
	g.AddEdge(0, 2, 5)
	d, err := apsp.Johnson(g)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(d.At(0, 2))
	// Output: 2
}

func ExampleGraph_SCC() {
	g := apsp.NewGraph(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 0, 1) // {0,1} cyclic
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 2, 1)
	fmt.Println(g.SCC())
	// Output: [0 0 1 2]
}
