package core

import (
	"math/rand"
	"testing"

	"gep/internal/matrix"
)

// flatOfDense extracts the backing slice/stride of a dense square.
func flatOfDense(t *testing.T, m *matrix.Dense[float64]) ([]float64, int) {
	t.Helper()
	d, stride, ok := matrix.Flat[float64](m)
	if !ok {
		t.Fatalf("dense matrix has no flat form")
	}
	return d, stride
}

// TestDisjointBlockMatchesRunDisjoint: on power-of-two sides the
// detached base-case entry must be bitwise identical to the full
// RunDisjoint recursion with base size ≥ s (which executes exactly one
// base-case block).
func TestDisjointBlockMatchesRunDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for _, s := range []int{1, 2, 4, 8, 16, 64} {
		a, b := randFloatMatrix(rng, s), randFloatMatrix(rng, s)
		want := matrix.NewSquare[float64](s)
		RunDisjoint[float64](want, a, b, b, MulAdd[float64]{}, Full{}, WithBaseSize[float64](64))
		got := matrix.NewSquare[float64](s)
		gd, gs := flatOfDense(t, got)
		ad, as := flatOfDense(t, a)
		bd, bs := flatOfDense(t, b)
		DisjointBlock[float64](MulAdd[float64]{}, Full{}, gd, gs, ad, as, bd, bs, bd, bs, s)
		if !got.EqualFunc(want, sameBits) {
			t.Fatalf("s=%d: DisjointBlock differs from RunDisjoint base case", s)
		}
	}
}

// TestDisjointBlockAnySide: non-power-of-two sides (which RunDisjoint
// rejects) against a direct ascending-k triple loop with the fused
// kernels' two-rounding discipline.
func TestDisjointBlockAnySide(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, s := range []int{3, 5, 6, 12, 17, 48, 100} {
		a, b := randFloatMatrix(rng, s), randFloatMatrix(rng, s)
		want := matrix.NewSquare[float64](s)
		for k := 0; k < s; k++ {
			for i := 0; i < s; i++ {
				for j := 0; j < s; j++ {
					x := want.At(i, j)
					u := a.At(i, k) * b.At(k, j)
					want.Set(i, j, x+u)
				}
			}
		}
		got := matrix.NewSquare[float64](s)
		gd, gs := flatOfDense(t, got)
		ad, as := flatOfDense(t, a)
		bd, bs := flatOfDense(t, b)
		before := kernelFusedCount.Value()
		DisjointBlock[float64](MulAdd[float64]{}, Full{}, gd, gs, ad, as, bd, bs, bd, bs, s)
		if !got.EqualFunc(want, sameBits) {
			t.Fatalf("s=%d: DisjointBlock differs from direct ascending-k loop", s)
		}
		if s >= 4 && kernelFusedCount.Value() == before {
			t.Fatalf("s=%d: fused kernel never dispatched", s)
		}
	}
}

// TestDisjointBlockMinPlus: a second op exercises the generic
// fallback routing through the same entry.
func TestDisjointBlockMinPlus(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	s := 24
	a, b := randFloatMatrix(rng, s), randFloatMatrix(rng, s)
	want := matrix.NewSquare[float64](s)
	want.Apply(func(i, j int, _ float64) float64 { return 1e300 })
	f := MinPlus[float64]{}.Func()
	for k := 0; k < s; k++ {
		for i := 0; i < s; i++ {
			for j := 0; j < s; j++ {
				want.Set(i, j, f(i, j, k, want.At(i, j), a.At(i, k), b.At(k, j), b.At(k, k)))
			}
		}
	}
	got := matrix.NewSquare[float64](s)
	got.Apply(func(i, j int, _ float64) float64 { return 1e300 })
	gd, gs := flatOfDense(t, got)
	ad, as := flatOfDense(t, a)
	bd, bs := flatOfDense(t, b)
	DisjointBlock[float64](MinPlus[float64]{}, Full{}, gd, gs, ad, as, bd, bs, bd, bs, s)
	if !got.EqualFunc(want, sameBits) {
		t.Fatalf("DisjointBlock MinPlus differs from direct loop")
	}
}
