package core

import (
	"math/rand"
	"testing"

	"gep/internal/matrix"
	"gep/internal/par"
)

// Differential tests for the packed kernels (bits.go): every engine
// run over a *matrix.Bits must be bit-for-bit equal to the same engine
// run over the generic Grid path on the same boolean input, for every
// combination of op, set, base size, table width, alignment and
// worker count. The generic path is the oracle — it performs the
// paper's per-element updates literally.

// randPackedPair returns the same random boolean matrix in packed and
// dense form. density is the probability of a set cell in percent.
func randPackedPair(rng *rand.Rand, n, density int) (*matrix.Bits, *matrix.Dense[bool]) {
	d := matrix.NewSquare[bool](n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Intn(100) < density {
				d.Set(i, j, true)
			}
		}
	}
	return matrix.PackBool(d), d
}

// unalignedPacked copies d into a square view whose column 0 sits
// mid-word, to exercise the edge-masked kernels.
func unalignedPacked(d *matrix.Dense[bool], off int) *matrix.Bits {
	n := d.N()
	parent := matrix.NewBits(n, n+off+7)
	v := parent.Sub(0, off, n, n)
	v.CopyFrom(matrix.PackBool(d))
	return v
}

func packedEqualsDense(b *matrix.Bits, d *matrix.Dense[bool]) bool {
	for i := 0; i < d.N(); i++ {
		for j := 0; j < d.N(); j++ {
			if b.At(i, j) != d.At(i, j) {
				return false
			}
		}
	}
	return true
}

// packedOps are the (op, set) instances with packed kernels. The
// Gaussian set drives GF2Elim's designed use; Full additionally forces
// GF2Elim through its per-element fallback rows (j intervals that
// include column k) and Closure through k-overlapping blocks.
var packedOps = []struct {
	name string
	op   Op[bool]
	set  UpdateSet
}{
	{"closure/full", Closure{}, Full{}},
	{"closure/gauss", Closure{}, Gaussian{}},
	{"gf2elim/gauss", GF2Elim{}, Gaussian{}},
	{"gf2elim/full", GF2Elim{}, Full{}},
}

// TestPackedMatchesGenericIGEP runs RunIGEP over packed storage
// (aligned and mid-word views) against the opaque generic path across
// base sizes and table widths, including widths small enough that the
// four-Russians kernel triggers at these sizes. Oracle and packed runs
// share each base size: the gf2elim/full instance is deliberately
// outside I-GEP's correctness domain (update order matters), so the
// comparison must hold the recursion shape fixed and vary only the
// storage and kernel tier — exactly the property the packed kernels
// guarantee.
func TestPackedMatchesGenericIGEP(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, n := range []int{1, 2, 8, 16, 64, 128} {
		for _, tc := range packedOps {
			_, src := randPackedPair(rng, n, 30)
			for _, base := range []int{1, 8, 64, 512} {
				want := src.Clone()
				RunIGEP[bool](opaqueGrid[bool]{want}, tc.op, tc.set, WithBaseSize[bool](base))
				for _, tw := range []int{0, 4, 8} {
					for _, off := range []int{0, 13} {
						got := unalignedPacked(src, off)
						RunIGEP[bool](got, tc.op, tc.set,
							WithBaseSize[bool](base), WithTableWidth[bool](tw))
						if !packedEqualsDense(got, want) {
							t.Fatalf("n=%d %s base=%d tw=%d off=%d: packed IGEP diverges from generic",
								n, tc.name, base, tw, off)
						}
						if base == 512 {
							// The auto sentinel must resolve to the packed
							// default (512) when a word kernel binds — same
							// result as the explicit run, even on views.
							got = unalignedPacked(src, off)
							RunIGEP[bool](got, tc.op, tc.set, WithTableWidth[bool](tw))
							if !packedEqualsDense(got, want) {
								t.Fatalf("n=%d %s auto-base tw=%d off=%d: packed IGEP diverges from generic",
									n, tc.name, tw, off)
							}
						}
					}
				}
			}
		}
	}
}

// TestPackedMatchesGenericABCD runs the multithreaded A/B/C/D
// recursion over packed storage at several worker counts against the
// serial generic oracle. Matrices are aligned and the grain >= 64, the
// contract under which concurrent quadrants never share a word.
func TestPackedMatchesGenericABCD(t *testing.T) {
	defer par.ResetWorkers()
	rng := rand.New(rand.NewSource(72))
	for _, n := range []int{64, 128, 256} {
		for _, tc := range packedOps {
			_, src := randPackedPair(rng, n, 30)
			// Serial A/B/C/D on the opaque grid at the same base size is
			// the oracle: same recursion shape, generic per-cell kernel.
			want := src.Clone()
			RunABCD[bool](opaqueGrid[bool]{want}, tc.op, tc.set, WithBaseSize[bool](32))
			for _, p := range []int{1, 2, 4} {
				par.SetWorkers(p)
				got := matrix.PackBool(src)
				RunABCD[bool](got, tc.op, tc.set,
					WithBaseSize[bool](32), WithTableWidth[bool](4), WithParallel[bool](64))
				if !packedEqualsDense(got, want) {
					t.Fatalf("n=%d %s p=%d: packed ABCD diverges from generic", n, tc.name, p)
				}
			}
		}
	}
}

// TestPackedM4RITriggers pins the four-Russians crossover: at n=128,
// base 64, tw=4 the D-type blocks must take the table kernel (the
// counter moves), and the result still matches the oracle — so the
// m4ri runs asserted here are the very runs proven bit-identical
// above. It also checks tw=0 never tables.
func TestPackedM4RITriggers(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	_, src := randPackedPair(rng, 128, 30)
	want := src.Clone()
	RunIGEP[bool](opaqueGrid[bool]{want}, Closure{}, Full{})

	before := kernelBitsM4RICount.Value()
	got := matrix.PackBool(src)
	RunIGEP[bool](got, Closure{}, Full{}, WithBaseSize[bool](64), WithTableWidth[bool](4))
	if kernelBitsM4RICount.Value() == before {
		t.Fatal("four-Russians kernel never triggered at n=128 base=64 tw=4")
	}
	if !packedEqualsDense(got, want) {
		t.Fatal("four-Russians run diverges from generic")
	}

	before = kernelBitsM4RICount.Value()
	got = matrix.PackBool(src)
	RunIGEP[bool](got, Closure{}, Full{}, WithBaseSize[bool](64), WithTableWidth[bool](0))
	if kernelBitsM4RICount.Value() != before {
		t.Fatal("tw=0 still took the four-Russians kernel")
	}
	if !packedEqualsDense(got, want) {
		t.Fatal("tw=0 word-kernel run diverges from generic")
	}
}

// TestM4RIWinsCrossover sanity-checks the crossover predicate: the
// table path must be off for tiny blocks and tw=0, on for the sizes
// the auto base targets.
func TestM4RIWinsCrossover(t *testing.T) {
	for _, tc := range []struct {
		tw, s int
		want  bool
	}{
		{0, 512, false},
		{8, 8, false},
		{8, 64, false},
		{8, 128, true},
		{8, 512, true},
		{4, 16, true},
		{17, 512, false},
	} {
		if got := m4riWins(tc.tw, tc.s); got != tc.want {
			t.Errorf("m4riWins(%d, %d) = %v, want %v", tc.tw, tc.s, got, tc.want)
		}
	}
}

// opaqueBoolOp wraps an UpdateFunc with no kernel interfaces, forcing
// the engines down the generic per-cell path even on packed storage.
type opaqueBoolOp struct{ f UpdateFunc[bool] }

func (o opaqueBoolOp) Func() UpdateFunc[bool] { return o.f }

// TestPackedGenericFallback: a packed grid with an op that has no
// BitsKernel must still compute correctly through the per-cell generic
// path (the Grid interface), proving Bits is a drop-in Grid — and
// RunGEP's packed fast path must agree with that generic path.
func TestPackedGenericFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	_, src := randPackedPair(rng, 16, 40)
	want := src.Clone()
	RunGEP[bool](opaqueGrid[bool]{want}, Closure{}, Full{})
	for name, op := range map[string]Op[bool]{
		"opaque-op": opaqueBoolOp{Closure{}.Func()},
		"fused-op":  Closure{},
	} {
		got := matrix.PackBool(src)
		RunGEP[bool](got, op, Full{})
		if !packedEqualsDense(got, want) {
			t.Fatalf("%s: packed grid under RunGEP diverges from dense", name)
		}
		got = matrix.PackBool(src)
		RunIGEP[bool](got, op, Full{}, WithBaseSize[bool](4))
		if !packedEqualsDense(got, want) {
			t.Fatalf("%s: packed grid under RunIGEP diverges from dense", name)
		}
	}
}
