package core

import (
	"gep/internal/matrix"
	"gep/internal/par"
)

// Multithreaded I-GEP (Figures 4-6 of the paper). The recursion is
// specialized by the amount of overlap between the written submatrix X
// and the read submatrices U = c[I,K], V = c[K,J], W = c[K,K]:
//
//	A  — I = J = K          (X ≡ U ≡ V ≡ W, the initial call)
//	B  — I = K, J ∩ K = ∅   (X ≡ V, U ≡ W)
//	C  — J = K, I ∩ K = ∅   (X ≡ U, V ≡ W)
//	D  — I ∩ K = J ∩ K = ∅  (all four disjoint)
//
// The l subscripts of the paper (B₁/B₂, C₁/C₂, D₁..D₄) encode only the
// relative position of X to the pivot block (Figure 13); execution is
// identical within a kind, so this implementation derives the kind
// from the coordinates: a call (xi, xj, k0, s) has I = [xi, xi+s),
// J = [xj, xj+s), K = [k0, k0+s), and I = K iff xi == k0 (input
// conditions 2.1 exclude partial overlap).
//
// The less the overlap, the more recursive calls may proceed in
// parallel: A's sequence is A; (B ∥ C); D; A; (B ∥ C); D, B and C run
// their same-kind pair and D-pair in parallel, and D runs all four
// quadrants of each half in parallel, giving T∞ = O(n log² n)
// (Theorem 3.1), and O(n) for the all-D disjoint recursion of matrix
// multiplication.

// RunABCD executes the multithreaded I-GEP recursion on c. It performs
// exactly the same updates with the same read-value semantics as
// RunIGEP (both refine the same partial order), so the two always
// produce identical results; RunABCD additionally exposes the
// parallelism of Figure 6, enabled with WithParallel.
func RunABCD[T any](c matrix.Grid[T], op Op[T], set UpdateSet, opts ...Option[T]) {
	n := c.N()
	checkPow2(n)
	if n == 0 {
		return
	}
	cfg := buildConfig(opts)
	if cfg.spawn == nil {
		cfg.spawn = goSpawn
	}
	cfg.bindFast(c, set, op)
	st := &abcdState[T]{c: c, f: op.Func(), set: set, cfg: &cfg}
	st.run(0, 0, 0, n)
}

// goSpawn is the default task spawner: the work-stealing fork-join
// runtime of internal/par. A fork goes to the caller's worker deque
// (LIFO self-execution, FIFO stealing); forks at or past the runtime's
// depth cutoff run inline on the caller by policy, so parallel runs
// never oversubscribe the Go scheduler no matter how many tasks the
// recursion exposes.
func goSpawn(task func()) (wait func()) { return par.Spawn(task) }

type abcdState[T any] struct {
	c   matrix.Grid[T]
	f   UpdateFunc[T]
	set UpdateSet
	cfg *config[T]
}

// par runs the given tasks, concurrently when parallel execution is on
// and the subproblem side s is above the grain. The last task always
// runs on the calling goroutine.
func (st *abcdState[T]) par(s int, tasks ...func()) { parGroup(st.cfg, s, tasks...) }

func (st *abcdState[T]) run(xi, xj, k0, s int) {
	if st.cfg.prune && !st.set.Intersects(xi, xi+s-1, xj, xj+s-1, k0, k0+s-1) {
		return
	}
	if s <= st.cfg.baseSize {
		baseCase(st.c, st.f, st.set, st.cfg, xi, xj, k0, s)
		return
	}
	h := s / 2
	iK, jK := xi == k0, xj == k0
	switch {
	case iK && jK: // A (Figure 6, function A)
		st.run(xi, xj, k0, h) // A(X11)
		st.par(s,
			func() { st.run(xi, xj+h, k0, h) }, // B1(X12)
			func() { st.run(xi+h, xj, k0, h) }, // C1(X21)
		)
		st.run(xi+h, xj+h, k0, h)   // D1(X22)
		st.run(xi+h, xj+h, k0+h, h) // A(X22)
		st.par(s,
			func() { st.run(xi+h, xj, k0+h, h) }, // B2(X21)
			func() { st.run(xi, xj+h, k0+h, h) }, // C2(X12)
		)
		st.run(xi, xj, k0+h, h) // D4(X11)

	case iK: // B (X rows coincide with the pivot rows)
		st.par(s,
			func() { st.run(xi, xj, k0, h) },   // B(X11)
			func() { st.run(xi, xj+h, k0, h) }, // B(X12)
		)
		st.par(s,
			func() { st.run(xi+h, xj, k0, h) },   // D(X21)
			func() { st.run(xi+h, xj+h, k0, h) }, // D(X22)
		)
		st.par(s,
			func() { st.run(xi+h, xj, k0+h, h) },   // B(X21)
			func() { st.run(xi+h, xj+h, k0+h, h) }, // B(X22)
		)
		st.par(s,
			func() { st.run(xi, xj, k0+h, h) },   // D(X11)
			func() { st.run(xi, xj+h, k0+h, h) }, // D(X12)
		)

	case jK: // C (X columns coincide with the pivot columns)
		st.par(s,
			func() { st.run(xi, xj, k0, h) },   // C(X11)
			func() { st.run(xi+h, xj, k0, h) }, // C(X21)
		)
		st.par(s,
			func() { st.run(xi, xj+h, k0, h) },   // D(X12)
			func() { st.run(xi+h, xj+h, k0, h) }, // D(X22)
		)
		st.par(s,
			func() { st.run(xi, xj+h, k0+h, h) },   // C(X12)
			func() { st.run(xi+h, xj+h, k0+h, h) }, // C(X22)
		)
		st.par(s,
			func() { st.run(xi, xj, k0+h, h) },   // D(X11)
			func() { st.run(xi+h, xj, k0+h, h) }, // D(X21)
		)

	default: // D (X disjoint from pivot rows and columns)
		st.par(s,
			func() { st.run(xi, xj, k0, h) },
			func() { st.run(xi, xj+h, k0, h) },
			func() { st.run(xi+h, xj, k0, h) },
			func() { st.run(xi+h, xj+h, k0, h) },
		)
		st.par(s,
			func() { st.run(xi, xj, k0+h, h) },
			func() { st.run(xi, xj+h, k0+h, h) },
			func() { st.run(xi+h, xj, k0+h, h) },
			func() { st.run(xi+h, xj+h, k0+h, h) },
		)
	}
}

// RunDisjoint executes the all-D recursion over four pairwise-disjoint
// grids: X is written, U is read at (i,k), V at (k,j) and W at (k,k).
// This is how matrix multiplication runs in the framework
// (C += A·B with X=C, U=A, V=B; f ignores w) with span O(n): with
// disjoint matrices every quadrant of each half-pass is independent.
//
// Note that, exactly as the paper observes for matrix multiplication,
// RunDisjoint does not assume f is associative in its accumulation:
// the two k-halves are sequenced, so each cell's updates still apply in
// increasing k order.
func RunDisjoint[T any](x, u, v, w matrix.Grid[T], op Op[T], set UpdateSet, opts ...Option[T]) {
	n := x.N()
	checkPow2(n)
	if u.N() != n || v.N() != n || w.N() != n {
		panic("core: RunDisjoint requires equal-size grids")
	}
	if n == 0 {
		return
	}
	cfg := buildConfig(opts)
	if cfg.spawn == nil {
		cfg.spawn = goSpawn
	}
	cfg.ranger, _ = set.(Ranger)
	st := &disjointState[T]{x: x, u: u, v: v, w: w, f: op.Func(), set: set, cfg: &cfg}
	st.fx, st.fu, st.fv, st.fw = flatOf(x), flatOf(u), flatOf(v), flatOf(w)
	st.flat = st.fx.ok && st.fu.ok && st.fv.ok && st.fw.ok
	if st.flat {
		st.dop, _ = op.(DisjointKerneler[T])
	}
	cfg.resolveBaseSize(st.flat)
	st.run(0, 0, 0, n)
}

type disjointState[T any] struct {
	x, u, v, w matrix.Grid[T]
	f          UpdateFunc[T]
	set        UpdateSet
	cfg        *config[T]

	// Flat fast path, taken when all four grids are *matrix.Dense;
	// dop is the op's fused disjoint kernel when it provides one.
	fx, fu, fv, fw flatRect[T]
	flat           bool
	dop            DisjointKerneler[T]
}

func (st *disjointState[T]) par(s int, tasks ...func()) { parGroup(st.cfg, s, tasks...) }

func (st *disjointState[T]) run(xi, xj, k0, s int) {
	if st.cfg.prune && !st.set.Intersects(xi, xi+s-1, xj, xj+s-1, k0, k0+s-1) {
		return
	}
	if s <= st.cfg.baseSize {
		if st.flat {
			if st.dop != nil && st.dop.DisjointKernel(
				st.fx.data, st.fx.stride, st.fu.data, st.fu.stride,
				st.fv.data, st.fv.stride, st.fw.data, st.fw.stride,
				st.cfg.ranger, xi, xj, k0, s) {
				kernelFusedCount.Inc()
				return
			}
			st.kernelFlat(xi, xj, k0, s)
			return
		}
		kernelGenericCount.Inc()
		for k := k0; k < k0+s; k++ {
			for i := xi; i < xi+s; i++ {
				for j := xj; j < xj+s; j++ {
					if st.set.Contains(i, j, k) {
						st.x.Set(i, j, st.f(i, j, k,
							st.x.At(i, j), st.u.At(i, k), st.v.At(k, j), st.w.At(k, k)))
					}
				}
			}
		}
		return
	}
	h := s / 2
	st.par(s,
		func() { st.run(xi, xj, k0, h) },
		func() { st.run(xi, xj+h, k0, h) },
		func() { st.run(xi+h, xj, k0, h) },
		func() { st.run(xi+h, xj+h, k0, h) },
	)
	st.par(s,
		func() { st.run(xi, xj, k0+h, h) },
		func() { st.run(xi, xj+h, k0+h, h) },
		func() { st.run(xi+h, xj, k0+h, h) },
		func() { st.run(xi+h, xj+h, k0+h, h) },
	)
}
