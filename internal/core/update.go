package core

import (
	"gep/internal/matrix"
	"gep/internal/par"
)

// UpdateFunc computes the new value of c[i,j] from the current values
// x = c[i,j], u = c[i,k], v = c[k,j] and w = c[k,k]. It corresponds to
// the function f of Figure 1 of the paper; the indices are supplied for
// convenience (the paper's f ignores them) and must not be used to
// read other matrix cells, or the cache-oblivious bounds and the C-GEP
// correctness guarantee no longer apply.
type UpdateFunc[T any] func(i, j, k int, x, u, v, w T) T

// UpdateSet is the set Σ_G of update triples ⟨i,j,k⟩ a GEP computation
// applies. All indices are 0-based.
type UpdateSet interface {
	// Contains reports whether ⟨i,j,k⟩ ∈ Σ_G.
	Contains(i, j, k int) bool

	// Intersects reports whether Σ_G contains any triple in the box
	// [i1,i2] × [j1,j2] × [k1,k2] (inclusive bounds). It implements
	// the T_{X,[k1,k2]} ∩ Σ_G = ∅ pruning test of line 1 of I-GEP and
	// C-GEP. Returning true conservatively is always allowed; it
	// affects only performance, never correctness.
	Intersects(i1, i2, j1, j2, k1, k2 int) bool
}

// TauSet is an UpdateSet that can answer the τ query of Definition 2.3
// in O(1); the standard sets in this package all implement it.
type TauSet interface {
	UpdateSet
	// Tau returns the largest l' <= l with ⟨i,j,l'⟩ ∈ Σ_G, or -1 if no
	// such l' exists (the paper's τ_ij(l), 0-based, with -1 standing
	// for the paper's 0 = "initial state").
	Tau(i, j, l int) int
}

// Ranger is an UpdateSet whose membership, for fixed i and k, is a
// contiguous column interval: Contains(i, j, k) holds exactly for
// lo <= j < hi. The flat-slice kernels use it to hoist the per-element
// Contains test out of the inner loop — the j loop runs straight over
// [lo, hi) intersected with the block — so implement it whenever the
// set's column sections are intervals (all the paper's standard
// instances are: Full, Gaussian, LU). Sets that do not implement
// Ranger fall back to the per-element Contains path; like Intersects,
// Ranger affects only performance, never correctness — but an
// implementation must be exact, not conservative.
type Ranger interface {
	UpdateSet
	// JRange returns the half-open interval [lo, hi) of columns j with
	// ⟨i,j,k⟩ ∈ Σ_G. An empty set is any lo >= hi; an interval
	// unbounded above may use math.MaxInt.
	JRange(i, k int) (lo, hi int)
}

// Tau evaluates τ_ij(l) for any UpdateSet, using the set's own Tau
// method when it implements TauSet and a downward scan otherwise.
func Tau(s UpdateSet, i, j, l int) int {
	if ts, ok := s.(TauSet); ok {
		return ts.Tau(i, j, l)
	}
	for k := l; k >= 0; k-- {
		if s.Contains(i, j, k) {
			return k
		}
	}
	return -1
}

// config carries the tunable knobs of the recursive algorithms, plus
// the fast-path bindings resolved once per run (see fastpath.go).
type config[T any] struct {
	baseSize int
	prune    bool
	parallel bool
	grain    int
	newAux   func(rows, cols int) matrix.Rect[T]
	spawn    func(task func()) (wait func())
	baseHook func(i0, j0, k0, s int) bool

	// flatData/flatStride are the row-major backing of the grid when it
	// is a *matrix.Dense[T] (flatData == nil otherwise); ranger is the
	// set's Ranger view when it has one; blockOp is the op's fused
	// in-place kernel when the op provides one and flat storage bound.
	// All are bound by bindFast.
	flatData   []T
	flatStride int
	ranger     Ranger
	blockOp    BlockKerneler[T]

	// bits/bitsOp bind the packed fast path when the grid is a
	// *matrix.Bits (T = bool only) and the op provides a word-parallel
	// kernel; tableWidth is the four-Russians group width in bits
	// (0 disables the table path).
	bits       *matrix.Bits
	bitsOp     BitsKerneler
	tableWidth int
}

// bindFast resolves the fast-path hooks for one run: flat storage via
// the matrix.Flat type assertion, the set's optional Ranger, and the
// op's optional fused block kernel (only meaningful over flat storage).
// Wrapper grids (cache simulators, tracers, out-of-core stores),
// unknown sets and bare UpdateFuncs simply leave the generic path in
// place. It also resolves the automatic base size.
func (c *config[T]) bindFast(g matrix.Grid[T], set UpdateSet, op Op[T]) {
	if data, stride, ok := matrix.Flat[T](g); ok {
		c.flatData, c.flatStride = data, stride
	}
	if bb, ok := any(g).(*matrix.Bits); ok {
		c.bits = bb
		c.bitsOp, _ = op.(BitsKerneler)
	}
	c.ranger, _ = set.(Ranger)
	if c.flatData != nil {
		c.blockOp, _ = op.(BlockKerneler[T])
	}
	c.resolveBaseSize(c.flatData != nil)
}

// autoBaseSize is the tuned default base-case side when flat storage
// binds (the paper's §4.2 base-size finding: 64-128 depending on the
// machine; 64 here).
const autoBaseSize = 64

// resolveBaseSize replaces the baseSize == 0 "auto" sentinel with the
// tuned kernel size when the flat or fused path bound and with 1 (the
// pure recursion of Figures 2 and 3) otherwise, so wrapper grids keep
// their exact per-update semantics. Packed grids with a word kernel
// bound use the larger packed default (see autoBaseSizeBits).
func (c *config[T]) resolveBaseSize(flat bool) {
	if c.baseSize != 0 {
		return
	}
	switch {
	case c.bits != nil && c.bitsOp != nil:
		c.baseSize = autoBaseSizeBits
	case flat:
		c.baseSize = autoBaseSize
	default:
		c.baseSize = 1
	}
}

func defaultConfig[T any]() config[T] {
	return config[T]{
		baseSize:   0, // auto: resolveBaseSize picks 512 (packed), 64 (flat) or 1
		prune:      true,
		parallel:   false,
		grain:      64,
		tableWidth: defaultTableWidth,
		newAux: func(rows, cols int) matrix.Rect[T] {
			return matrix.New[T](rows, cols)
		},
	}
}

// Option configures the recursive GEP algorithms.
type Option[T any] func(*config[T])

// WithBaseSize sets the subproblem side at which the recursion switches
// to an iterative kernel (the paper's empirically tuned "base-size",
// §4.2: 128 on Xeon, 64 on Opteron). The default is automatic: 64 when
// the engine binds the flat fast path (dense storage) and 1 — the pure
// recursion of Figures 2 and 3 — for wrapper grids, whose cache-miss
// and trace semantics depend on the exact recursive update order.
// Passing an explicit value overrides the automatic choice either way.
//
// For I-GEP the kernel executes the block in G order, which is
// equivalent for every (f, Σ_G) instance on which I-GEP is correct.
// For C-GEP the kernel performs the H base-case body (saved-state reads
// and saves) in G order.
func WithBaseSize[T any](b int) Option[T] {
	if b < 1 {
		panic("core: base size must be >= 1")
	}
	return func(c *config[T]) { c.baseSize = b }
}

// WithTableWidth sets the four-Russians group width in bits for the
// packed base case: source rows are processed tw at a time through a
// 2^tw-entry row-combination table (see internal/core/bits.go). 0
// disables the table path entirely, leaving the plain word-parallel
// kernel; the default is 8. The option is meaningful only for runs
// over a *matrix.Bits grid with a BitsKerneler op and is ignored
// otherwise. Whatever the width, the crossover test m4riWins still
// gates the table path per block, so small base cases never pay for
// table construction.
func WithTableWidth[T any](tw int) Option[T] {
	if tw < 0 || tw > 16 {
		panic("core: table width must be in [0, 16]")
	}
	return func(c *config[T]) { c.tableWidth = tw }
}

// WithPrune enables or disables the line-1 quadrant pruning test
// (default enabled). Disabling it exists for the pruning ablation
// benchmark.
func WithPrune[T any](on bool) Option[T] {
	return func(c *config[T]) { c.prune = on }
}

// WithParallel enables goroutine execution of the parallel steps of the
// multithreaded A/B/C/D recursion (Figure 6). grain is the subproblem
// side below which calls run serially; it bounds spawn overhead.
// Only RunABCD and RunDisjoint honor this option.
func WithParallel[T any](grain int) Option[T] {
	if grain < 1 {
		panic("core: parallel grain must be >= 1")
	}
	return func(c *config[T]) {
		c.parallel = true
		c.grain = grain
	}
}

// WithAuxFactory sets the allocator used for C-GEP's auxiliary matrices
// u0, u1, v0, v1 (n×n each for RunCGEP; n×(n/2) and (n/2)×n bands for
// RunCGEPCompact). The default allocates in-core dense matrices; the
// out-of-core driver passes a file-backed factory so that the aux state
// obeys the same memory budget as the main matrix.
func WithAuxFactory[T any](f func(rows, cols int) matrix.Rect[T]) Option[T] {
	return func(c *config[T]) { c.newAux = f }
}

// WithBaseCase installs an external base-case executor: hook is called
// for every base-case block (i0, j0, k0, s) before any built-in kernel
// dispatch, and returning true consumes the block — the engine then
// performs no accesses of its own for it. Returning false falls
// through to the normal fused → flat → generic hierarchy.
//
// The hook exists for storage layers whose base cases want custom
// staging: internal/ooc pins the block's tiles into RAM, runs
// TileKernel over the resident buffers, and prefetches the next
// block's tiles in the background. Pair it with WithBaseSize matched
// to the storage tile side so blocks align with tiles.
func WithBaseCase[T any](hook func(i0, j0, k0, s int) bool) Option[T] {
	return func(c *config[T]) { c.baseHook = hook }
}

// WithRuntime routes the parallel recursion's forks to rt instead of
// the process-wide default work-stealing runtime. Pass the per-job
// runtime of an isolated tenant (see par.NewRuntime and
// internal/serve) so concurrent computations cannot occupy each
// other's worker budgets; nil keeps the default. WithRuntime is a
// convenience over WithSpawn — the two set the same hook, last one
// wins.
func WithRuntime[T any](rt *par.Runtime) Option[T] {
	return func(c *config[T]) { c.spawn = par.Or(rt).Spawn }
}

// WithSpawn replaces the goroutine spawner used by parallel execution.
// It exists so the schedule simulator (internal/sched) and tests can
// intercept task creation; spawn must return a function that waits for
// the task to complete. The default runs `go task()` with a
// sync.WaitGroup.
func WithSpawn[T any](spawn func(task func()) (wait func())) Option[T] {
	return func(c *config[T]) { c.spawn = spawn }
}

func buildConfig[T any](opts []Option[T]) config[T] {
	c := defaultConfig[T]()
	for _, o := range opts {
		o(&c)
	}
	return c
}
