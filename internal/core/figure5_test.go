package core

import "testing"

// Validation of Figures 4, 5, 13 and 14 of the paper: walk the A/B/C/D
// recursion over coordinates, classify every call by Figure 13's
// preconditions (including the l subscripts, which encode the position
// of X relative to the pivot block), and check that each parent's
// children match Figure 5's transition table exactly.

// fKind is a function instantiation from Figure 13.
type fKind string

const (
	kA  fKind = "A"
	kB1 fKind = "B1"
	kB2 fKind = "B2"
	kC1 fKind = "C1"
	kC2 fKind = "C2"
	kD1 fKind = "D1"
	kD2 fKind = "D2"
	kD3 fKind = "D3"
	kD4 fKind = "D4"
)

// classify applies Figure 13's preconditions to a call with
// X = c[i1..i2, j1..j2] and k-range [k1..k2] (0-based inclusive).
func classify(t *testing.T, i1, i2, j1, j2, k1, k2 int) fKind {
	t.Helper()
	switch {
	case i1 == k1 && j1 == k1:
		return kA
	case i1 == k1 && j1 > k2:
		return kB1
	case i1 == k1 && j2 < k1:
		return kB2
	case i1 > k2 && j1 == k1:
		return kC1
	case i2 < k1 && j1 == k1:
		return kC2
	case i1 > k2 && j1 > k2:
		return kD1
	case i1 > k2 && j2 < k1:
		return kD2
	case i2 < k1 && j1 > k2:
		return kD3
	case i2 < k1 && j2 < k1:
		return kD4
	}
	t.Fatalf("call (i=[%d,%d], j=[%d,%d], k=[%d,%d]) matches no Figure 13 precondition — input conditions 2.1 violated",
		i1, i2, j1, j2, k1, k2)
	return ""
}

// figure5 is the transition table: for each parent kind, the kinds of
// the eight recursive calls in Figure 4's order
// (F11, F12, F21, F22 | F'22, F'21, F'12, F'11).
var figure5 = map[fKind][8]fKind{
	kA:  {kA, kB1, kC1, kD1, kA, kB2, kC2, kD4},
	kB1: {kB1, kB1, kD1, kD1, kB1, kB1, kD3, kD3},
	kB2: {kB2, kB2, kD2, kD2, kB2, kB2, kD4, kD4},
	kC1: {kC1, kD1, kC1, kD1, kC1, kD2, kC1, kD2},
	kC2: {kC2, kD3, kC2, kD3, kC2, kD4, kC2, kD4},
	kD1: {kD1, kD1, kD1, kD1, kD1, kD1, kD1, kD1},
	kD2: {kD2, kD2, kD2, kD2, kD2, kD2, kD2, kD2},
	kD3: {kD3, kD3, kD3, kD3, kD3, kD3, kD3, kD3},
	kD4: {kD4, kD4, kD4, kD4, kD4, kD4, kD4, kD4},
}

// TestFigure5TransitionTable walks the recursion from A(c,c,c,c) at
// n=32 and asserts every call's children classify exactly as Figure 5
// prescribes, and that input conditions 2.1 hold at every node.
func TestFigure5TransitionTable(t *testing.T) {
	calls := 0
	var walk func(xi, xj, k0, s int)
	walk = func(xi, xj, k0, s int) {
		calls++
		i1, i2 := xi, xi+s-1
		j1, j2 := xj, xj+s-1
		k1, k2 := k0, k0+s-1

		// Input conditions 2.1: equal power-of-two sizes (by
		// construction) and equal-or-disjoint index ranges.
		if i1 != k1 && !(i2 < k1 || i1 > k2) {
			t.Fatalf("i-range [%d,%d] partially overlaps k-range [%d,%d]", i1, i2, k1, k2)
		}
		if j1 != k1 && !(j2 < k1 || j1 > k2) {
			t.Fatalf("j-range [%d,%d] partially overlaps k-range [%d,%d]", j1, j2, k1, k2)
		}

		parent := classify(t, i1, i2, j1, j2, k1, k2)
		if s == 1 {
			return
		}
		h := s / 2
		// Figure 4's call order: forward F11, F12, F21, F22 with the
		// first k-half; backward F'22, F'21, F'12, F'11 with the
		// second.
		children := [8][4]int{
			{xi, xj, k0, h},
			{xi, xj + h, k0, h},
			{xi + h, xj, k0, h},
			{xi + h, xj + h, k0, h},
			{xi + h, xj + h, k0 + h, h},
			{xi + h, xj, k0 + h, h},
			{xi, xj + h, k0 + h, h},
			{xi, xj, k0 + h, h},
		}
		want := figure5[parent]
		for idx, ch := range children {
			ci1, ci2 := ch[0], ch[0]+ch[3]-1
			cj1, cj2 := ch[1], ch[1]+ch[3]-1
			ck1, ck2 := ch[2], ch[2]+ch[3]-1
			got := classify(t, ci1, ci2, cj1, cj2, ck1, ck2)
			if got != want[idx] {
				t.Fatalf("parent %s child %d: classified %s, Figure 5 says %s", parent, idx, got, want[idx])
			}
			walk(ch[0], ch[1], ch[2], ch[3])
		}
	}
	const n = 32
	walk(0, 0, 0, n)
	// 1 + 8 + 64 + ... = (8^(log2 n +1) - 1) / 7 calls.
	want := 0
	for lvl, c := 0, 1; lvl <= 5; lvl, c = lvl+1, c*8 {
		want += c
	}
	if calls != want {
		t.Fatalf("visited %d calls, want %d", calls, want)
	}
}

// TestFigure14Positions cross-checks the geometric reading of the l
// subscripts (Figure 14): B1/B2 have U,V on the k-rows with X right or
// left; C1/C2 above/below; D1..D4 the four diagonal quadrants.
func TestFigure14Positions(t *testing.T) {
	// At the first subdivision of A(0,0,0,n) with h = n/2 the eight
	// children land in the canonical positions.
	n := 8
	h := n / 2
	cases := []struct {
		xi, xj, k0 int
		want       fKind
	}{
		{0, 0, 0, kA},  // X11 forward: the diagonal block itself
		{0, h, 0, kB1}, // X12 forward: right of pivot columns
		{h, 0, 0, kC1}, // X21 forward: below pivot rows
		{h, h, 0, kD1}, // X22 forward: down-right of pivot block
		{h, h, h, kA},  // X22 backward
		{h, 0, h, kB2}, // X21 backward: left of pivot columns
		{0, h, h, kC2}, // X12 backward: above pivot rows
		{0, 0, h, kD4}, // X11 backward: up-left of pivot block
	}
	for _, c := range cases {
		got := classify(t, c.xi, c.xi+h-1, c.xj, c.xj+h-1, c.k0, c.k0+h-1)
		if got != c.want {
			t.Fatalf("block (%d,%d) k=%d: classified %s, want %s", c.xi, c.xj, c.k0, got, c.want)
		}
	}
}
