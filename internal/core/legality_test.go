package core

import (
	"math/rand"
	"testing"

	"gep/internal/matrix"
)

func minPlusF(i, j, k int, x, u, v, w int64) int64 {
	if s := u + v; s < x {
		return s
	}
	return x
}

// distanceGen samples valid distance matrices: zero diagonal,
// non-negative weights (so no negative cycles) with a large finite
// "no edge" sentinel.
func distanceGen(rng *rand.Rand, n int) *matrix.Dense[int64] {
	in := matrix.NewSquare[int64](n)
	in.Apply(func(i, j int, _ int64) int64 {
		if i == j {
			return 0
		}
		if rng.Intn(3) == 0 {
			return 1 << 40
		}
		return rng.Int63n(100) + 1
	})
	return in
}

func TestLegalityAcceptsFloydWarshallDomain(t *testing.T) {
	r := CheckIGEPLegality(minPlusF, Full{}, 16, 5, 1, distanceGen)
	if !r.Legal {
		t.Fatalf("min-plus on distance matrices flagged illegal: %v", r)
	}
	if r.Trials == 0 {
		t.Fatal("no trials run")
	}
}

// TestLegalityDomainSensitivity documents a genuine subtlety the
// checker surfaces: min-plus over Full is only I-GEP-legal on the
// Floyd-Warshall input domain. On arbitrary matrices (negative
// self-loops = negative cycles) the iterative and recursive orders
// genuinely diverge, and the checker must find that.
func TestLegalityDomainSensitivity(t *testing.T) {
	r := CheckIGEPLegality(minPlusF, Full{}, 16, 20, 2, nil)
	if r.Legal {
		t.Fatal("min-plus on arbitrary inputs (negative cycles) not flagged")
	}
}

func TestLegalityAcceptsGaussian(t *testing.T) {
	// Over the Gaussian set, x - u·v (integer elimination without the
	// division) is exact for I-GEP: the u, v, w values it reads are
	// fully updated, matching G.
	ge := func(i, j, k int, x, u, v, w int64) int64 { return x - u*v }
	r := CheckIGEPLegality(ge, Gaussian{}, 16, 5, 3, nil)
	if !r.Legal {
		t.Fatalf("gaussian elimination flagged illegal: %v", r)
	}
}

func TestLegalityRejectsSum(t *testing.T) {
	// The paper's counterexample class: summing f over the full set.
	sum := UpdateFunc[int64](func(i, j, k int, x, u, v, w int64) int64 { return x + u + v + w })
	r := CheckIGEPLegality(sum, Full{}, 8, 5, 4, nil)
	if r.Legal {
		t.Fatal("sum over Full not flagged illegal")
	}
	if r.Counterexample == nil {
		t.Fatal("no counterexample recorded")
	}
	// The counterexample must actually diverge: replay it.
	want := r.Counterexample.Clone()
	RunGEP[int64](want, sum, Full{})
	got := r.Counterexample.Clone()
	// Base 1 matches the legality checker's own replay (pure recursion).
	RunIGEP[int64](got, sum, Full{}, WithBaseSize[int64](1))
	i, j := r.Cell[0], r.Cell[1]
	if want.At(i, j) == got.At(i, j) {
		t.Fatal("recorded counterexample does not reproduce")
	}
}

func TestLegalityStringForms(t *testing.T) {
	legal := LegalityReport{Legal: true, Trials: 7}
	if s := legal.String(); s == "" {
		t.Fatal("empty report string")
	}
	illegal := LegalityReport{Legal: false, Cell: [2]int{1, 2}, Trials: 3}
	if s := illegal.String(); s == "" {
		t.Fatal("empty report string")
	}
}
