package core

import (
	"testing"

	"gep/internal/matrix"
)

// Native fuzz targets. `go test` runs the seed corpus as regular
// tests; `go test -fuzz=FuzzCGEP ./internal/core` explores further.
// The oracle in both targets is differential: C-GEP must equal the
// iterative loop nest on EVERY instance the fuzzer can construct.

// decodeFuzzInstance builds a GEP instance from raw fuzz bytes:
// the first byte picks the size, the next picks the update function,
// then membership bits for Σ and int8 matrix entries.
func decodeFuzzInstance(data []byte) (n int, f UpdateFunc[int64], set *Explicit, in *matrix.Dense[int64], ok bool) {
	if len(data) < 3 {
		return 0, nil, nil, nil, false
	}
	n = 1 << (int(data[0]) % 4) // 1, 2, 4, 8
	fs := []UpdateFunc[int64]{
		func(i, j, k int, x, u, v, w int64) int64 { return x + u + v + w },
		func(i, j, k int, x, u, v, w int64) int64 { return x - 2*u + 3*v ^ w },
		func(i, j, k int, x, u, v, w int64) int64 {
			if u+v < x {
				return u + v
			}
			return x
		},
		func(i, j, k int, x, u, v, w int64) int64 { return x*1 + u*v - w + int64(i+j+k) },
	}
	f = fs[int(data[1])%len(fs)]
	data = data[2:]

	set = NewExplicit(n)
	bitIdx := 0
	nextBit := func() bool {
		if bitIdx/8 >= len(data) {
			return false
		}
		b := data[bitIdx/8]>>(bitIdx%8)&1 == 1
		bitIdx++
		return b
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if nextBit() {
					set.Add(i, j, k)
				}
			}
		}
	}
	// Matrix entries from the remaining bytes.
	valStart := (bitIdx + 7) / 8
	in = matrix.NewSquare[int64](n)
	idx := 0
	in.Apply(func(i, j int, _ int64) int64 {
		var b byte
		if valStart+idx < len(data) {
			b = data[valStart+idx]
		}
		idx++
		return int64(int8(b))
	})
	return n, f, set, in, true
}

func FuzzCGEPMatchesGEP(fz *testing.F) {
	fz.Add([]byte{2, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3, 4})
	fz.Add([]byte{1, 1, 0xAA, 0x55, 7})
	fz.Add([]byte{3, 2, 0x0F, 0xF0, 0xCC, 200, 100, 50})
	fz.Add([]byte{0, 3, 0x01})
	fz.Fuzz(func(t *testing.T, data []byte) {
		_, f, set, in, ok := decodeFuzzInstance(data)
		if !ok {
			return
		}
		want := in.Clone()
		RunGEP[int64](want, f, set)
		for name, run := range map[string]func(m *matrix.Dense[int64]){
			"cgep":    func(m *matrix.Dense[int64]) { RunCGEP[int64](m, f, set) },
			"compact": func(m *matrix.Dense[int64]) { RunCGEPCompact[int64](m, f, set) },
			"par":     func(m *matrix.Dense[int64]) { RunCGEPParallel[int64](m, f, set, WithParallel[int64](2)) },
		} {
			got := in.Clone()
			run(got)
			if !matrix.Equal(want, got) {
				t.Fatalf("%s diverged from iterative GEP on fuzzed instance", name)
			}
		}
	})
}

func FuzzIGEPTheorem21(fz *testing.F) {
	fz.Add([]byte{2, 0, 0xF7, 0x9A, 3, 4})
	fz.Add([]byte{3, 1, 0x13, 0x37, 0xBE, 0xEF})
	fz.Fuzz(func(t *testing.T, data []byte) {
		n, f, set, in, ok := decodeFuzzInstance(data)
		if !ok {
			return
		}
		// Theorem 2.1 in counting form: each Σ triple applied exactly
		// once, nothing else.
		seen := map[[3]int]int{}
		counting := UpdateFunc[int64](func(i, j, k int, x, u, v, w int64) int64 {
			seen[[3]int{i, j, k}]++
			return f(i, j, k, x, u, v, w)
		})
		c := in.Clone()
		RunIGEP[int64](c, counting, set)
		if len(seen) != set.Len() {
			t.Fatalf("applied %d distinct updates, Σ has %d", len(seen), set.Len())
		}
		for tr, count := range seen {
			if count != 1 {
				t.Fatalf("update %v applied %d times", tr, count)
			}
			if !set.Contains(tr[0], tr[1], tr[2]) {
				t.Fatalf("foreign update %v", tr)
			}
		}
		_ = n
	})
}
