package core

import (
	"fmt"

	"gep/internal/matrix"
)

// RunGEP executes the iterative GEP computation G of Figure 1: for k,
// i, j in lexicographic order, apply
//
//	c[i,j] ← f(c[i,j], c[i,k], c[k,j], c[k,k])   for ⟨i,j,k⟩ ∈ Σ_G.
//
// It runs in O(n³) time and incurs O(n³/B) I/Os on a row-major matrix.
// Any side length n >= 0 is accepted (the power-of-two restriction is
// only needed by the recursive algorithms).
//
// op is the update op: a bare UpdateFunc for the generic per-element
// path, or a fused op (MinPlus, MulAdd, ...) to run the whole matrix
// through its closed-form kernel — same outputs either way.
func RunGEP[T any](c matrix.Grid[T], op Op[T], set UpdateSet) {
	n := c.N()
	f := op.Func()
	if bb, ok := any(c).(*matrix.Bits); ok {
		// Packed fast path: the whole matrix as one word-parallel base
		// case (the four-Russians path never applies here — the block
		// overlaps its own k-range — so the table width is moot).
		if bk, ok := op.(BitsKerneler); ok {
			rg, _ := set.(Ranger)
			if bk.BitsKernel(bb, rg, 0, 0, 0, 0, n) {
				return
			}
		}
	}
	if data, stride, ok := matrix.Flat[T](c); ok {
		// Flat fast path: G is exactly the base-case kernel applied to
		// the whole matrix (see fastpath.go); outputs are identical.
		rg, _ := set.(Ranger)
		if bk, ok := op.(BlockKerneler[T]); ok && bk.BlockKernel(data, stride, rg, 0, 0, 0, n) {
			kernelFusedCount.Inc()
			return
		}
		igepKernelFlat(data, stride, rg, f, set, 0, 0, 0, n)
		return
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if set.Contains(i, j, k) {
					c.Set(i, j, f(i, j, k, c.At(i, j), c.At(i, k), c.At(k, j), c.At(k, k)))
				}
			}
		}
	}
}

// checkPow2 validates the side length required by the recursive
// algorithms (the paper assumes n = 2^q; use matrix.PadPow2 first).
func checkPow2(n int) {
	if n > 0 && !matrix.IsPow2(n) {
		panic(fmt.Sprintf("core: recursive GEP needs a power-of-two side, got %d (pad with matrix.PadPow2)", n))
	}
}
