package core

// Tile-granular base cases for the out-of-core runtime. When a matrix
// lives on disk in a block-contiguous layout (internal/ooc's
// Morton-tiled stores), each base-case block of the I-GEP recursion
// touches at most four tiles — X at (i0,j0), U at (i0,k0), V at
// (k0,j0) and W at (k0,k0) — and each tile is one contiguous run of
// bytes the store can fault in whole. TileKernel executes one such
// block directly over the four resident tile buffers, reusing the
// fused closed-form kernels of ops.go where their shape applies, so
// the out-of-core engine pays zero per-element indirection once a
// tile is resident.
//
// Like every kernel tier (see ops.go), TileKernel applies the same
// updates, in the same order, reading the same cell states, with the
// same floating-point rounding sequence as the generic path — outputs
// are bit-identical to the in-core engines, which the differential
// tests in internal/ooc assert with Float64bits.

// TileKernel executes the in-place base-case block
// [i0,i0+s)×[j0,j0+s) for the k-range [k0,k0+s) over four s×s
// row-major tile buffers:
//
//	x = c[i0:i0+s, j0:j0+s]   (written)
//	u = c[i0:i0+s, k0:k0+s]
//	v = c[k0:k0+s, j0:j0+s]
//	w = c[k0:k0+s, k0:k0+s]
//
// The block obeys input conditions 2.1: i0 and j0 each either equal
// k0 or start a disjoint aligned quadrant. Callers must pass the SAME
// slice for every coinciding quadrant (j0 == k0 makes u the x slice,
// i0 == k0 makes v the x slice and w the u slice, the diagonal block
// makes all four one slice); aliasing is how the kernel observes its
// own writes exactly as the in-core in-place kernels do.
//
// Dispatch follows the kernel hierarchy of fastpath.go: the op's
// fused closed-form kernel when the block shape admits one (BlockKernel
// on the diagonal, DisjointKernel when all four quadrants are
// distinct), the Ranger-hoisted flat loop otherwise, and the
// per-element Contains loop for sets without column intervals.
func TileKernel[T any](op Op[T], set UpdateSet, x, u, v, w []T, i0, j0, k0, s int) {
	rg, _ := set.(Ranger)
	if rg != nil {
		local := shiftSet{rg: rg, di: i0, dj: j0, dk: k0}
		if i0 == k0 && j0 == k0 {
			// Diagonal block: one tile, the in-place base case. Local
			// i == k and j == k coincide with the global tests, so the
			// fused in-place kernels apply verbatim.
			if bk, ok := op.(BlockKerneler[T]); ok && bk.BlockKernel(x, s, local, 0, 0, 0, s) {
				kernelTileFusedCount.Inc()
				return
			}
		} else if i0 != k0 && j0 != k0 {
			// All four quadrants distinct: X is written, U, V, W are
			// read-only — the RunDisjoint shape.
			if dk, ok := op.(DisjointKerneler[T]); ok && dk.DisjointKernel(x, s, u, s, v, s, w, s, local, 0, 0, 0, s) {
				kernelTileFusedCount.Inc()
				return
			}
		}
		kernelTileFlatCount.Inc()
		tileKernelRange(x, u, v, w, rg, op.Func(), i0, j0, k0, s)
		return
	}
	kernelTileGenericCount.Inc()
	tileKernelGeneric(x, u, v, w, set, op.Func(), i0, j0, k0, s)
}

// shiftSet presents a Ranger in block-local coordinates: the fused
// kernels run tiles with local indices starting at zero, so membership
// queries translate by the block origin before consulting the global
// set, and column intervals translate back.
type shiftSet struct {
	rg         Ranger
	di, dj, dk int
}

// Contains implements UpdateSet.
func (t shiftSet) Contains(i, j, k int) bool {
	return t.rg.Contains(i+t.di, j+t.dj, k+t.dk)
}

// Intersects implements UpdateSet.
func (t shiftSet) Intersects(i1, i2, j1, j2, k1, k2 int) bool {
	return t.rg.Intersects(i1+t.di, i2+t.di, j1+t.dj, j2+t.dj, k1+t.dk, k2+t.dk)
}

// JRange implements Ranger. An interval unbounded above (math.MaxInt)
// stays far above any block bound after translation, so no special
// case is needed; the kernels clamp to the block either way.
func (t shiftSet) JRange(i, k int) (lo, hi int) {
	lo, hi = t.rg.JRange(i+t.di, k+t.dk)
	return lo - t.dj, hi - t.dj
}

// tileKernelRange is igepKernelFlatRange over four tile buffers: the
// loops run in global coordinates (so f receives the true indices and
// the j == k split lands exactly where the flat kernel splits) and
// only the addressing subtracts the tile origins. The register
// discipline is identical: u and w hoist out of the j loop and reload
// after the j == k update, whose writes are the only way row i's
// pinned cells can change mid-interval (when j == k occurs inside the
// block, j0 == k0 and x aliases u by the caller contract, so the
// reload observes the write just as the flat kernel does).
func tileKernelRange[T any](x, u, v, w []T, rg Ranger, f UpdateFunc[T], i0, j0, k0, s int) {
	for k := k0; k < k0+s; k++ {
		vk := v[(k-k0)*s:]
		wv := w[(k-k0)*s+(k-k0)]
		for i := i0; i < i0+s; i++ {
			lo, hi := rg.JRange(i, k)
			if lo < j0 {
				lo = j0
			}
			if hi > j0+s {
				hi = j0 + s
			}
			if lo >= hi {
				continue
			}
			xi := x[(i-i0)*s:]
			uv := u[(i-i0)*s+(k-k0)]
			j := lo
			if k >= lo && k < hi {
				for ; j < k; j++ {
					xi[j-j0] = f(i, j, k, xi[j-j0], uv, vk[j-j0], wv)
				}
				// j == k: x = c[i,k] = uv and v = c[k,k] = wv (no prior
				// iteration of this row touched column k or the pivot).
				xi[k-j0] = f(i, k, k, uv, uv, wv, wv)
				uv = u[(i-i0)*s+(k-k0)]
				wv = w[(k-k0)*s+(k-k0)]
				j = k + 1
			}
			for ; j < hi; j++ {
				xi[j-j0] = f(i, j, k, xi[j-j0], uv, vk[j-j0], wv)
			}
		}
	}
}

// tileKernelGeneric is igepKernel over four tile buffers: membership
// per element via set.Contains, every operand re-read per update, so
// aliasing needs no analysis at all.
func tileKernelGeneric[T any](x, u, v, w []T, set UpdateSet, f UpdateFunc[T], i0, j0, k0, s int) {
	for k := k0; k < k0+s; k++ {
		for i := i0; i < i0+s; i++ {
			for j := j0; j < j0+s; j++ {
				if set.Contains(i, j, k) {
					x[(i-i0)*s+(j-j0)] = f(i, j, k,
						x[(i-i0)*s+(j-j0)],
						u[(i-i0)*s+(k-k0)],
						v[(k-k0)*s+(j-j0)],
						w[(k-k0)*s+(k-k0)])
				}
			}
		}
	}
}

// Block is one base-case quadrant of the I-GEP recursion: the update
// box [I,I+S)×[J,J+S) with k-range [K,K+S).
type Block struct {
	// I, J, K are the block origin; S is the side length.
	I, J, K, S int
}

// IGEPBlocks enumerates the base-case blocks RunIGEP visits, in visit
// order, for side length n (a power of two), base-case side base and
// the given set's pruning (prune mirrors WithPrune; pass true for the
// default). It is the prefetch oracle of the out-of-core runtime: the
// tile driver walks this sequence one block ahead of the recursion and
// faults the next block's tiles in the background. The enumeration
// replicates igep() exactly, so position p+1 is always the block the
// recursion executes after position p.
func IGEPBlocks(n, base int, set UpdateSet, prune bool) []Block {
	checkPow2(n)
	if n == 0 {
		return nil
	}
	if base < 1 {
		base = 1
	}
	return appendBlocks(nil, set, prune, base, 0, 0, 0, n)
}

// appendBlocks mirrors igep()'s control flow (pruning test, base-case
// cut, forward and backward quadrant passes).
func appendBlocks(dst []Block, set UpdateSet, prune bool, base, i0, j0, k0, s int) []Block {
	if prune && !set.Intersects(i0, i0+s-1, j0, j0+s-1, k0, k0+s-1) {
		return dst
	}
	if s <= base {
		return append(dst, Block{I: i0, J: j0, K: k0, S: s})
	}
	h := s / 2
	dst = appendBlocks(dst, set, prune, base, i0, j0, k0, h)
	dst = appendBlocks(dst, set, prune, base, i0, j0+h, k0, h)
	dst = appendBlocks(dst, set, prune, base, i0+h, j0, k0, h)
	dst = appendBlocks(dst, set, prune, base, i0+h, j0+h, k0, h)
	dst = appendBlocks(dst, set, prune, base, i0+h, j0+h, k0+h, h)
	dst = appendBlocks(dst, set, prune, base, i0+h, j0, k0+h, h)
	dst = appendBlocks(dst, set, prune, base, i0, j0+h, k0+h, h)
	dst = appendBlocks(dst, set, prune, base, i0, j0, k0+h, h)
	return dst
}
