package core

import (
	"math/rand"
	"testing"

	"gep/internal/matrix"
)

// Differential tests for the flat-slice fast path (fastpath.go): every
// engine must produce bit-identical output whether the matrix is
// presented as a *matrix.Dense (fast path) or hidden behind an opaque
// Grid wrapper (generic interface path), for the standard Ranger sets
// and for sets with no fast-path hooks at all.

// opaqueGrid hides a *Dense behind a distinct Grid type so the
// matrix.Flat type assertion fails and the engines take the generic
// path.
type opaqueGrid[T any] struct{ d *matrix.Dense[T] }

func (g opaqueGrid[T]) N() int            { return g.d.N() }
func (g opaqueGrid[T]) At(i, j int) T     { return g.d.At(i, j) }
func (g opaqueGrid[T]) Set(i, j int, v T) { g.d.Set(i, j, v) }

// opaquePredicate strips every optional interface (Ranger, TauSet, an
// analytic Intersects) from a set, leaving bare Contains semantics.
type opaquePredicate struct{ s UpdateSet }

func (p opaquePredicate) Contains(i, j, k int) bool { return p.s.Contains(i, j, k) }
func (p opaquePredicate) Intersects(i1, i2, j1, j2, k1, k2 int) bool {
	return p.s.Intersects(i1, i2, j1, j2, k1, k2)
}

// diffSets are the update sets the differential tests cover: the three
// Ranger instances, a Predicate with interval sections but no JRange
// (fast grid path, per-element Contains), and a non-interval Predicate.
var diffSets = map[string]UpdateSet{
	"full":     Full{},
	"gaussian": Gaussian{},
	"lu":       LU{},
	"pred-interval": Predicate{
		Pred: func(i, j, k int) bool { return k < i && k < j },
	},
	"pred-scatter": Predicate{
		Pred: func(i, j, k int) bool { return (i+2*j+3*k)%3 != 0 },
	},
}

// engines under test: every generic engine with a flat fast path.
// base sizes probe both the pure recursion (leaves of side 1) and
// block kernels.
func diffEngines(base int) map[string]func(c matrix.Grid[int64], f UpdateFunc[int64], set UpdateSet) {
	return map[string]func(c matrix.Grid[int64], f UpdateFunc[int64], set UpdateSet){
		"gep": func(c matrix.Grid[int64], f UpdateFunc[int64], set UpdateSet) {
			RunGEP(c, f, set)
		},
		"igep": func(c matrix.Grid[int64], f UpdateFunc[int64], set UpdateSet) {
			RunIGEP(c, f, set, WithBaseSize[int64](base))
		},
		"cgep": func(c matrix.Grid[int64], f UpdateFunc[int64], set UpdateSet) {
			RunCGEP(c, f, set, WithBaseSize[int64](base))
		},
		"cgep-compact": func(c matrix.Grid[int64], f UpdateFunc[int64], set UpdateSet) {
			RunCGEPCompact(c, f, set, WithBaseSize[int64](base))
		},
		"cgep-parallel": func(c matrix.Grid[int64], f UpdateFunc[int64], set UpdateSet) {
			RunCGEPParallel(c, f, set, WithBaseSize[int64](base), WithParallel[int64](8))
		},
		"abcd": func(c matrix.Grid[int64], f UpdateFunc[int64], set UpdateSet) {
			RunABCD(c, f, set, WithBaseSize[int64](base), WithParallel[int64](8))
		},
	}
}

// TestFastPathDifferential checks fast == generic for every engine,
// set, update function, power-of-two size up to 64 and two base sizes.
func TestFastPathDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		src := randMatrix(t, rng, n)
		for setName, set := range diffSets {
			for fname, f := range testFuncs {
				for _, base := range []int{1, 16} {
					for engName, run := range diffEngines(base) {
						fast := src.Clone()
						run(fast, f, set)
						slow := src.Clone()
						run(opaqueGrid[int64]{slow}, f, set)
						label := engName + "/" + setName + "/" + fname
						if !matrix.Equal(fast, slow) {
							t.Fatalf("n=%d base=%d %s: fast path diverges from generic path\nfast:\n%v\ngeneric:\n%v",
								n, base, label, fast, slow)
						}
					}
				}
			}
		}
	}
}

// TestFastPathDifferentialRanger pins the Ranger hoisting specifically:
// the same standard set run with and without its JRange visible must
// agree on the fast grid path for every size 1..64 (RunGEP accepts any
// side length).
func TestFastPathDifferentialRanger(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	std := map[string]UpdateSet{"full": Full{}, "gaussian": Gaussian{}, "lu": LU{}}
	for n := 1; n <= 64; n++ {
		src := randMatrix(t, rng, n)
		for setName, set := range std {
			for fname, f := range testFuncs {
				ranged := src.Clone()
				RunGEP[int64](ranged, f, set)
				plain := src.Clone()
				RunGEP[int64](plain, f, opaquePredicate{set})
				if !matrix.Equal(ranged, plain) {
					t.Fatalf("n=%d %s/%s: Ranger kernel diverges from Contains kernel", n, setName, fname)
				}
			}
		}
	}
}

// TestJRangeMatchesContains verifies the Ranger contract itself: for
// the standard sets, JRange describes exactly the members Contains
// reports.
func TestJRangeMatchesContains(t *testing.T) {
	const n = 48
	for name, set := range map[string]Ranger{"full": Full{}, "gaussian": Gaussian{}, "lu": LU{}} {
		for i := 0; i < n; i++ {
			for k := 0; k < n; k++ {
				lo, hi := set.JRange(i, k)
				for j := 0; j < n; j++ {
					want := set.Contains(i, j, k)
					got := j >= lo && j < hi
					if want != got {
						t.Fatalf("%s: JRange(%d,%d)=[%d,%d) disagrees with Contains at j=%d (want %v)",
							name, i, k, lo, hi, j, want)
					}
				}
			}
		}
	}
}

// TestFastPathDisjoint covers RunDisjoint's flat kernel against the
// generic wrapper path.
func TestFastPathDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 2, 8, 32} {
		x0 := randMatrix(t, rng, n)
		u := randMatrix(t, rng, n)
		v := randMatrix(t, rng, n)
		w := randMatrix(t, rng, n)
		for setName, set := range diffSets {
			for fname, f := range testFuncs {
				fast := x0.Clone()
				RunDisjoint[int64](fast, u, v, w, f, set, WithBaseSize[int64](8))
				slow := x0.Clone()
				RunDisjoint[int64](opaqueGrid[int64]{slow}, opaqueGrid[int64]{u}, opaqueGrid[int64]{v}, opaqueGrid[int64]{w},
					f, set, WithBaseSize[int64](8))
				if !matrix.Equal(fast, slow) {
					t.Fatalf("disjoint n=%d %s/%s: fast path diverges", n, setName, fname)
				}
			}
		}
	}
}

// TestFastPathStridedView checks that the fast path is taken and
// correct when the Dense is a view into a larger parent (stride >
// side), which is how padded and blocked matrices appear.
func TestFastPathStridedView(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const parentN, n = 96, 32
	parent := randMatrix(t, rng, parentN)
	view := parent.Sub(5, 9, n, n)
	ref := matrix.NewSquare[int64](n)
	ref.CopyFrom(view)
	for setName, set := range diffSets {
		for fname, f := range testFuncs {
			viewRun := parent.Clone().Sub(5, 9, n, n)
			RunIGEP[int64](viewRun, f, set, WithBaseSize[int64](8))

			want := ref.Clone()
			RunIGEP[int64](opaqueGrid[int64]{want}, f, set, WithBaseSize[int64](8))
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if viewRun.At(i, j) != want.At(i, j) {
						t.Fatalf("%s/%s: strided-view fast path diverges at (%d,%d)", setName, fname, i, j)
					}
				}
			}
		}
	}
}

// TestParallelEnginesBoundedPool exercises the runtime-backed
// parallel engines with aggressive grains (many more tasks than
// workers) and checks results against the serial reference; run under
// -race in CI.
func TestParallelEnginesBoundedPool(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	const n = 64
	src := randMatrix(t, rng, n)
	for setName, set := range diffSets {
		for fname, f := range testFuncs {
			want := runOnClone(src, func(m *matrix.Dense[int64]) { RunGEP[int64](m, f, set) })
			gotABCD := runOnClone(src, func(m *matrix.Dense[int64]) {
				RunABCD[int64](m, f, set, WithBaseSize[int64](4), WithParallel[int64](4))
			})
			gotCGEP := runOnClone(src, func(m *matrix.Dense[int64]) {
				RunCGEPParallel[int64](m, f, set, WithBaseSize[int64](4), WithParallel[int64](4))
			})
			// I-GEP (and hence ABCD) is only guaranteed to equal G on
			// instances where I-GEP is legal; C-GEP always is. Compare
			// ABCD against serial ABCD instead, C-GEP against G.
			wantABCD := runOnClone(src, func(m *matrix.Dense[int64]) {
				RunABCD[int64](m, f, set, WithBaseSize[int64](4))
			})
			requireEqual(t, wantABCD, gotABCD, "abcd-parallel/"+setName+"/"+fname)
			requireEqual(t, want, gotCGEP, "cgep-parallel/"+setName+"/"+fname)
		}
	}
}
