package core

// DisjointBlock executes one all-D base-case block of side s over flat
// row-major storage: x[i,j] ← f(x[i,j], u[i,k], v[k,j], w[k,k]) for
// every ⟨i,j,k⟩ of the set inside the local [0,s)³ cube, k ascending
// per cell. It is the RunDisjoint base case detached from the
// power-of-two recursion — same kernel-hierarchy dispatch
// (fused DisjointKerneler first, then the Ranger-hoisted flat loop),
// same counters, same bit-exact update order — exposed for engines
// whose recursion shape is not the 8-way GEP octree and whose leaf
// sides need not be powers of two: the Strassen-Winograd multiply
// (internal/linalg, internal/ooc) bottoms out here.
//
// The slices address the block locally: element (i, j) of X lives at
// x[i*xs+j], and likewise for u, v, w. Aliased operands (e.g. v == w
// for multiplication) are the caller's choice, exactly as with
// RunDisjoint.
func DisjointBlock[T any](op Op[T], set UpdateSet, x []T, xs int, u []T, us int, v []T, vs int, w []T, ws int, s int) {
	rg, _ := set.(Ranger)
	if dk, ok := op.(DisjointKerneler[T]); ok && dk.DisjointKernel(x, xs, u, us, v, vs, w, ws, rg, 0, 0, 0, s) {
		kernelFusedCount.Inc()
		return
	}
	st := &disjointState[T]{
		f:   op.Func(),
		set: set,
		cfg: &config[T]{ranger: rg},
		fx:  flatRect[T]{data: x, stride: xs, ok: true},
		fu:  flatRect[T]{data: u, stride: us, ok: true},
		fv:  flatRect[T]{data: v, stride: vs, ok: true},
		fw:  flatRect[T]{data: w, stride: ws, ok: true},
	}
	st.kernelFlat(0, 0, 0, s)
}
