// Package core implements the Gaussian Elimination Paradigm (GEP)
// framework of Chowdhury and Ramachandran (SODA'06, SPAA'07):
//
//   - RunGEP: the iterative triply nested loop G (Figure 1 of the
//     paper) — O(n³) work, O(n³/B) I/Os.
//   - RunIGEP: the recursive, in-place, cache-oblivious I-GEP F
//     (Figure 2) — O(n³) work, O(n³/(B√M)) I/Os; correct for important
//     instances such as Floyd-Warshall APSP, Gaussian elimination / LU
//     without pivoting, and matrix multiplication, but not for
//     arbitrary (f, Σ_G).
//   - RunCGEP / RunCGEPCompact: the fully general C-GEP H (Figure 3),
//     which matches G on every input by saving the intermediate cell
//     states G would have read (4n² extra cells for RunCGEP, 2n² for
//     the compact band variant).
//   - RunABCD / RunDisjoint: the multithreaded I-GEP function family
//     A/B/C/D (Figures 4-6) with T∞ = O(n log² n), and its disjoint
//     variant for matrix multiplication with T∞ = O(n).
//   - Pi / Delta: the aligned-block functions of Definition 2.2 used by
//     Theorem 2.2 to characterize exactly which cell states I-GEP reads.
//
// Indexing convention: the paper is 1-based with "state 0" meaning the
// initial value; this package is 0-based throughout, so cell states are
// numbered -1 (initial) through n-1, Pi and Delta return -1 where the
// paper returns z-1 = 0, and Tau returns -1 where Definition 2.3
// returns 0.
//
// A GEP computation is specified by an update function f and an update
// set Σ_G. The update function receives the indices (i, j, k) as well
// as the four cell values; the paper's index-free f(x,u,v,w) is the
// special case that ignores them (indices are needed to express, e.g.,
// LU decomposition, where the j == k update divides by the pivot while
// j > k updates eliminate).
//
// All algorithms run over the matrix.Grid accessor interface, so the
// same code executes over in-core matrices, cache-simulator tracers
// (internal/cachesim), and out-of-core stores (internal/ooc).
package core
