package core

import "math/bits"

// Aligned-block machinery of Definition 2.2 (0-based translation).
//
// An aligned subinterval for n = 2^q is [a, b] with b-a+1 = 2^r and
// a ≡ 0 (mod 2^r); an aligned subsquare is [a,b] × [a,b]. Pi and Delta
// locate the largest aligned block separating one point from another
// and return the block's upper end; Theorem 2.2 uses them to state
// exactly which historical cell states I-GEP reads:
//
// Immediately before F applies ⟨i,j,k⟩:
//
//	c[i,j] = c_{k-1}(i,j)
//	c[i,k] = c_{Pi(j,k)}(i,k)
//	c[k,j] = c_{Pi(i,k)}(k,j)
//	c[k,k] = c_{Delta(i,j,k)}(k,k)
//
// where c_l(i,j) denotes the value of c[i,j] after exactly the updates
// ⟨i,j,k'⟩ ∈ Σ_G with k' <= l have been applied (l = -1 is the initial
// value; the paper writes state 0 for the same thing).

// Pi returns the upper end b (0-based, inclusive) of the largest
// aligned subinterval containing z but not x, or z-1 when x == z
// (Definition 2.2(b), shifted to 0-based indices).
func Pi(x, z int) int {
	if x == z {
		return z - 1
	}
	h := bits.Len(uint(x^z)) - 1 // highest differing bit
	return z | (1<<h - 1)
}

// Delta returns the upper end b of the largest aligned subsquare
// [a,b]×[a,b] containing (z,z) but not (x,y), or z-1 when x == y == z
// (Definition 2.2(a), 0-based).
func Delta(x, y, z int) int {
	if x == z && y == z {
		return z - 1
	}
	r := -1
	if x != z {
		r = bits.Len(uint(x^z)) - 1
	}
	if y != z {
		if hy := bits.Len(uint(y^z)) - 1; hy > r {
			r = hy
		}
	}
	return z | (1<<r - 1)
}

// AlignedInterval returns the aligned subinterval [a, b] of size 2^r
// containing z (0-based).
func AlignedInterval(z, r int) (a, b int) {
	a = z &^ (1<<r - 1)
	return a, a + 1<<r - 1
}

// IsAlignedInterval reports whether [a, b] (0-based, inclusive) is an
// aligned subinterval: power-of-two length and aligned start.
func IsAlignedInterval(a, b int) bool {
	size := b - a + 1
	if size <= 0 || size&(size-1) != 0 {
		return false
	}
	return a%size == 0
}
