package core

import "gep/internal/metrics"

// Engine telemetry. Counters cost one atomic add per event and are
// incremented at recursion granularity, never per element: a fork is
// one task handed to the spawner by a Figure-6 schedule, and a kernel
// dispatch is one base-case block (baseSize² elements of work per
// increment, so at the tuned base sizes the overhead is unmeasurable;
// only the pure baseSize=1 recursion pays one add per update, and that
// configuration exists for theory validation, not performance).
// internal/bench snapshots these around every experiment so each
// BENCH_*.json row can report, e.g., what fraction of base cases took
// the flat fast path of fastpath.go.
var (
	forkCount          = metrics.New("core.forks")
	kernelFusedCount   = metrics.New("core.kernel.fused")
	kernelFlatCount    = metrics.New("core.kernel.flat")
	kernelGenericCount = metrics.New("core.kernel.generic")

	// Tile base-case dispatches (TileKernel, the out-of-core path),
	// split by the tier that ran: a fused closed-form kernel, the
	// Ranger-hoisted loop, or the per-element Contains loop.
	kernelTileFusedCount   = metrics.New("core.kernel.tile.fused")
	kernelTileFlatCount    = metrics.New("core.kernel.tile.flat")
	kernelTileGenericCount = metrics.New("core.kernel.tile.generic")

	// Packed base-case dispatches (bits.go), split by the tier that
	// ran: the plain word-parallel kernel or the four-Russians table
	// kernel. Packed blocks that decline both (no Ranger bound) fall
	// through to the generic path and count under core.kernel.generic.
	kernelBitsWordCount = metrics.New("core.kernel.bits.word")
	kernelBitsM4RICount = metrics.New("core.kernel.bits.m4ri")
)

// parGroup executes tasks as one fork-join group: when parallel
// execution is enabled and the subproblem side s is above the grain,
// all but the last task are offered to the spawner and the last runs
// on the calling goroutine; otherwise all run serially in order. It is
// the shared body of the A/B/C/D, disjoint, and parallel C-GEP
// `parallel:` steps (Figure 6).
func parGroup[T any](cfg *config[T], s int, tasks ...func()) {
	if !cfg.parallel || s <= cfg.grain {
		for _, t := range tasks {
			t()
		}
		return
	}
	forkCount.Add(int64(len(tasks) - 1))
	waits := make([]func(), 0, len(tasks)-1)
	for _, t := range tasks[:len(tasks)-1] {
		waits = append(waits, cfg.spawn(t))
	}
	tasks[len(tasks)-1]()
	for _, w := range waits {
		w()
	}
}
