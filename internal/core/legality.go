package core

import (
	"fmt"
	"math/rand"

	"gep/internal/matrix"
)

// §2.3 of the paper frames I-GEP and C-GEP as cache-oblivious tiling
// transformations for compilers: C-GEP is legal for every loop nest in
// GEP form, while I-GEP is legal only for instances whose update
// function tolerates the reordered intermediate reads (Theorem 2.2).
// CheckIGEPLegality is the practical counterpart: a randomized
// differential tester that certifies illegality (a found
// counterexample is definitive) and otherwise reports the instance
// compatible up to the tested sizes — the kind of evidence an
// optimizing compiler could gather before applying the aggressive
// transformation, falling back to C-GEP on failure.

// LegalityReport is the outcome of CheckIGEPLegality.
type LegalityReport struct {
	// Legal is false iff a concrete divergence was found.
	Legal bool
	// Counterexample holds the diverging input when Legal is false.
	Counterexample *matrix.Dense[int64]
	// Cell is a diverging position (row, col) when Legal is false.
	Cell [2]int
	// Trials is the number of (size, input) combinations tested.
	Trials int
}

// String summarizes the verdict for harness output.
func (r LegalityReport) String() string {
	if r.Legal {
		return fmt.Sprintf("no divergence in %d trials (I-GEP compatible up to tested sizes)", r.Trials)
	}
	return fmt.Sprintf("I-GEP illegal: diverges at cell (%d,%d) after %d trials", r.Cell[0], r.Cell[1], r.Trials)
}

// InputGen draws a random n×n test input. Legality can be
// domain-sensitive — e.g. min-plus over Full is I-GEP-exact on proper
// distance matrices (zero diagonal, no negative cycles) but diverges
// on arbitrary values — so the generator should sample the domain the
// loop nest will actually run on.
type InputGen func(rng *rand.Rand, n int) *matrix.Dense[int64]

// CheckIGEPLegality differentially tests RunIGEP against RunGEP on
// random inputs drawn by gen (nil selects small signed integers) for
// every power-of-two size up to maxN, with the given number of trials
// per size.
func CheckIGEPLegality(f UpdateFunc[int64], set UpdateSet, maxN, trialsPerSize int, seed int64, gen InputGen) LegalityReport {
	rng := rand.New(rand.NewSource(seed))
	if gen == nil {
		gen = func(rng *rand.Rand, n int) *matrix.Dense[int64] {
			in := matrix.NewSquare[int64](n)
			in.Apply(func(i, j int, _ int64) int64 { return rng.Int63n(19) - 9 })
			return in
		}
	}
	report := LegalityReport{Legal: true}
	for n := 1; n <= maxN; n *= 2 {
		for t := 0; t < trialsPerSize; t++ {
			report.Trials++
			in := gen(rng, n)
			want := in.Clone()
			RunGEP[int64](want, f, set)
			got := in.Clone()
			// Base size 1 tests the pure recursion of Figure 2 — the
			// strongest form of the transformation. Iterative kernels at
			// larger bases execute their blocks in G order and so can
			// only agree with G more often, never less (they would mask
			// divergences at the small sizes tested here).
			RunIGEP[int64](got, f, set, WithBaseSize[int64](1))
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if want.At(i, j) != got.At(i, j) {
						report.Legal = false
						report.Counterexample = in
						report.Cell = [2]int{i, j}
						return report
					}
				}
			}
		}
	}
	return report
}
