package core

import "testing"

// Brute-force references for Pi and Delta per Definition 2.2, checked
// against the bit-twiddling implementations over all points of several
// power-of-two ranges.

// bruteAligned enumerates all aligned subintervals [a,b] of [0,n).
func bruteAligned(n int) [][2]int {
	var out [][2]int
	for size := 1; size <= n; size *= 2 {
		for a := 0; a+size <= n; a += size {
			out = append(out, [2]int{a, a + size - 1})
		}
	}
	return out
}

func brutePi(n, x, z int) int {
	if x == z {
		return z - 1
	}
	best := -2
	bestSize := 0
	for _, iv := range bruteAligned(n) {
		a, b := iv[0], iv[1]
		if z >= a && z <= b && (x < a || x > b) && b-a+1 > bestSize {
			best, bestSize = b, b-a+1
		}
	}
	return best
}

func bruteDelta(n, x, y, z int) int {
	if x == z && y == z {
		return z - 1
	}
	best := -2
	bestSize := 0
	for _, iv := range bruteAligned(n) {
		a, b := iv[0], iv[1]
		inZ := z >= a && z <= b
		inXY := x >= a && x <= b && y >= a && y <= b
		if inZ && !inXY && b-a+1 > bestSize {
			best, bestSize = b, b-a+1
		}
	}
	return best
}

func TestPiAgainstBruteForce(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		for x := 0; x < n; x++ {
			for z := 0; z < n; z++ {
				want := brutePi(n, x, z)
				got := Pi(x, z)
				if got != want {
					t.Fatalf("Pi(%d,%d) n=%d: got %d, want %d", x, z, n, got, want)
				}
			}
		}
	}
}

func TestDeltaAgainstBruteForce(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				for z := 0; z < n; z++ {
					want := bruteDelta(n, x, y, z)
					got := Delta(x, y, z)
					if got != want {
						t.Fatalf("Delta(%d,%d,%d) n=%d: got %d, want %d", x, y, z, n, got, want)
					}
				}
			}
		}
	}
}

// TestPiDeltaRelations checks structural facts the theory relies on.
func TestPiDeltaRelations(t *testing.T) {
	const n = 64
	for x := 0; x < n; x++ {
		for z := 0; z < n; z++ {
			p := Pi(x, z)
			if x == z {
				if p != z-1 {
					t.Fatalf("Pi(z,z) = %d, want %d", p, z-1)
				}
				continue
			}
			// p >= z and the aligned interval ending at p contains z
			// but not x.
			if p < z {
				t.Fatalf("Pi(%d,%d) = %d < z", x, z, p)
			}
			if x <= p && x >= p-pow2Below(p-z+1)+1 {
				// weak sanity; full containment checked by brute force
				_ = x
			}
			// Delta dominates Pi in both coordinates: the separating
			// square must exclude (x,y), so it is at least as large as
			// the larger of the two interval separations.
			for y := 0; y < n; y++ {
				d := Delta(x, y, z)
				if x == z && y == z {
					continue
				}
				if d < z-1 {
					t.Fatalf("Delta(%d,%d,%d) = %d < z-1", x, y, z, d)
				}
				pi1, pi2 := -1, -1
				if x != z {
					pi1 = Pi(x, z)
				}
				if y != z {
					pi2 = Pi(y, z)
				}
				if m := max(pi1, pi2); d != max(m, z-1) && d != m {
					// Delta is exactly the max of the two interval ends
					// (when at least one coordinate differs).
					t.Fatalf("Delta(%d,%d,%d) = %d, expected max(Pi)=%d", x, y, z, d, m)
				}
			}
		}
	}
}

func pow2Below(v int) int {
	p := 1
	for p*2 <= v {
		p *= 2
	}
	return p
}

func TestIsAlignedInterval(t *testing.T) {
	cases := []struct {
		a, b int
		want bool
	}{
		{0, 0, true}, {0, 1, true}, {2, 3, true}, {1, 2, false},
		{0, 3, true}, {4, 7, true}, {4, 6, false}, {2, 5, false},
		{8, 15, true}, {8, 11, true}, {12, 15, true}, {10, 13, false},
	}
	for _, c := range cases {
		if got := IsAlignedInterval(c.a, c.b); got != c.want {
			t.Errorf("IsAlignedInterval(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAlignedInterval(t *testing.T) {
	for r := 0; r <= 5; r++ {
		for z := 0; z < 64; z++ {
			a, b := AlignedInterval(z, r)
			if !IsAlignedInterval(a, b) {
				t.Fatalf("AlignedInterval(%d,%d) = [%d,%d] not aligned", z, r, a, b)
			}
			if z < a || z > b {
				t.Fatalf("AlignedInterval(%d,%d) = [%d,%d] misses z", z, r, a, b)
			}
			if b-a+1 != 1<<r {
				t.Fatalf("AlignedInterval(%d,%d) size %d, want %d", z, r, b-a+1, 1<<r)
			}
		}
	}
}
