package core

import (
	mathbits "math/bits"
	"sync"

	"gep/internal/matrix"
)

// Bit-packed base-case kernels. When an engine runs over a
// *matrix.Bits grid (64 boolean cells per word), the base-case
// dispatch binds a third storage tier above flat and generic: the op's
// word-parallel kernel, which updates a whole row interval per machine
// instruction instead of per cell. Two ops provide one — Closure
// (x ∨ (u ∧ v), row-OR) and GF2Elim (x ⊕ (u ∧ v), row-XOR) — and both
// additionally carry an M4RI-style "method of four Russians" variant:
// for blocks whose sources cannot change mid-block, the k loop is
// processed in groups of tw rows, all 2^tw row combinations of a group
// are tabulated incrementally (each table entry is one row-op away
// from a previous entry), and each target row then applies its whole
// group in a single table lookup — an extra ~tw/2 speedup on top of
// the 64× packing.
//
// The dispatch contract is the same as for the fused float kernels
// (ops.go): every packed kernel applies the same updates, reading the
// same cell states, as the generic per-element kernel running the
// op's Func — final contents are bit-for-bit identical, which the
// differential and fuzz tests in bits_test.go assert. The four-
// Russians path is therefore only taken when its preconditions make
// it exact:
//
//   - the written rows (i-range) are disjoint from the source rows
//     (k-range), so no source row changes while its group is tabled;
//   - the written columns (j-range) are disjoint from the k-range, so
//     the u = c[i,k] selector bits read as one table index are the
//     same bits the per-element kernel would read one k at a time;
//   - the update set covers the whole block (blockCovered), so the
//     group lookup applies exactly the per-element update set.
//
// In the I-GEP/ABCD recursion all base-case blocks satisfy "each range
// equals or is disjoint from the k-range" (input conditions 2.1), so
// every block other than the O((n/b)²) pivot-row/column blocks takes
// the four-Russians path; the rest run the plain word kernel.

// BitsKerneler is an Op with a word-parallel kernel for base-case
// blocks over a packed boolean matrix. tw is the four-Russians table
// width in bits (0 disables the table path; see WithTableWidth).
type BitsKerneler interface {
	Op[bool]
	// BitsKernel executes the base-case block [i0,i0+s)×[j0,j0+s) for
	// the k-range [k0,k0+s) over the packed matrix, exactly as the
	// generic kernel would with Func. It returns false to decline (for
	// example when rg is nil); the caller then falls back to the
	// generic per-element path.
	BitsKernel(b *matrix.Bits, rg Ranger, tw, i0, j0, k0, s int) bool
}

// defaultTableWidth is the four-Russians group width the engines use
// unless WithTableWidth overrides it: 2^8 = 256 table entries, the
// classic M4RI sweet spot (table build amortizes once s ≳ 128).
const defaultTableWidth = 8

// autoBaseSizeBits is the automatic base-case side for packed grids.
// A packed base block is 64× smaller in bytes than a float block of
// the same side (512² bits = 32 KB — L1-resident), and the four-
// Russians gain grows with the block side, so the packed default sits
// well above the float default of 64.
const autoBaseSizeBits = 512

// m4riWins reports whether the four-Russians path is expected to beat
// the plain word kernel on an s-side block at table width tw: the
// table path costs (s/tw)·(2^tw + s) row-ops against the plain
// kernel's ~s²/2 (half the selector bits set on average), with a 2×
// safety margin for the table's cache footprint.
func m4riWins(tw, s int) bool {
	return tw > 0 && tw <= 16 && s*tw >= 2*(1<<uint(tw)+s)
}

// disjointRange reports [a, a+s) ∩ [b, b+s) = ∅. Under input
// conditions 2.1 the ranges either coincide or are disjoint, so this
// is simply a != b, but the explicit form keeps the kernels safe for
// any caller.
func disjointRange(a, b, s int) bool { return a+s <= b || b+s <= a }

// orSpan applies dst |= src under the RowSpan edge-mask convention.
func orSpan(dst, src []uint64, fm, lm uint64) {
	n := len(dst)
	if n == 1 {
		dst[0] |= src[0] & fm
		return
	}
	dst[0] |= src[0] & fm
	for w := 1; w < n-1; w++ {
		dst[w] |= src[w]
	}
	dst[n-1] |= src[n-1] & lm
}

// xorSpan applies dst ^= src under the RowSpan edge-mask convention.
func xorSpan(dst, src []uint64, fm, lm uint64) {
	n := len(dst)
	if n == 1 {
		dst[0] ^= src[0] & fm
		return
	}
	dst[0] ^= src[0] & fm
	for w := 1; w < n-1; w++ {
		dst[w] ^= src[w]
	}
	dst[n-1] ^= src[n-1] & lm
}

// m4riTables pools four-Russians table buffers: base cases allocate up
// to 2^tw · s/64 words per call and may run concurrently on the
// work-stealing runtime.
var m4riTables sync.Pool

func m4riBuf(words int) *[]uint64 {
	if p, _ := m4riTables.Get().(*[]uint64); p != nil {
		if cap(*p) >= words {
			*p = (*p)[:words]
			return p
		}
	}
	buf := make([]uint64, words)
	return &buf
}

// bitsM4RI runs the four-Russians base case over the packed matrix:
// for each group of t <= tw source rows [kg, kg+t), table entry idx
// holds the OR (xor=false) or XOR (xor=true) of the source rows
// selected by the bits of idx, built incrementally (entry = previous
// entry ∘ one row); each target row i then reads its t selector bits
// c[i, kg..kg+t) as the table index and applies the entry in one
// masked word pass. Preconditions (checked by the callers): sources
// and selector bits must be invariant across the block and the update
// set must cover it.
func bitsM4RI(b *matrix.Bits, tw, i0, j0, k0, s int, xor bool) {
	_, fm, lm := b.RowSpan(i0, j0, j0+s)
	probe, _, _ := b.RowSpan(i0, j0, j0+s)
	nw := len(probe)
	tp := m4riBuf((1 << uint(tw)) * nw)
	defer m4riTables.Put(tp)
	tbl := *tp
	for kg := k0; kg < k0+s; kg += tw {
		t := tw
		if kg+t > k0+s {
			t = k0 + s - kg
		}
		entries := 1 << uint(t)
		for w := 0; w < nw; w++ {
			tbl[w] = 0
		}
		for idx := 1; idx < entries; idx++ {
			lsb := idx & -idx
			bit := mathbits.TrailingZeros(uint(idx))
			src, _, _ := b.RowSpan(kg+bit, j0, j0+s)
			prev := tbl[(idx^lsb)*nw:]
			dst := tbl[idx*nw:]
			if xor {
				for w := 0; w < nw; w++ {
					dst[w] = prev[w] ^ src[w]
				}
			} else {
				for w := 0; w < nw; w++ {
					dst[w] = prev[w] | src[w]
				}
			}
		}
		for i := i0; i < i0+s; i++ {
			idx := b.Bits64(i, kg, t)
			if idx == 0 {
				continue
			}
			e := tbl[int(idx)*nw : int(idx)*nw+nw]
			dw, _, _ := b.RowSpan(i, j0, j0+s)
			if xor {
				xorSpan(dw, e, fm, lm)
			} else {
				orSpan(dw, e, fm, lm)
			}
		}
	}
}

// BitsKernel implements BitsKerneler for the transitive-closure op:
// when the selector bit u = c[i,k] is set, row i's member interval
// ORs in row k word-parallel (u is invariant across the row — the
// only in-interval write to column k is x ∨ (u ∧ w) = u itself — and
// when i == k the OR is a self-union, an identity, exactly like the
// per-element updates it replaces). Blocks with row-, column- and
// set-invariant sources take the four-Russians table path.
func (Closure) BitsKernel(b *matrix.Bits, rg Ranger, tw, i0, j0, k0, s int) bool {
	if rg == nil {
		return false
	}
	if m4riWins(tw, s) && disjointRange(i0, k0, s) && disjointRange(j0, k0, s) &&
		blockCovered(rg, i0, j0, k0, s) {
		kernelBitsM4RICount.Inc()
		bitsM4RI(b, tw, i0, j0, k0, s, false)
		return true
	}
	kernelBitsWordCount.Inc()
	for k := k0; k < k0+s; k++ {
		for i := i0; i < i0+s; i++ {
			lo, hi := rg.JRange(i, k)
			if lo < j0 {
				lo = j0
			}
			if hi > j0+s {
				hi = j0 + s
			}
			if lo >= hi || !b.At(i, k) {
				continue
			}
			dw, fm, lm := b.RowSpan(i, lo, hi)
			sw, _, _ := b.RowSpan(k, lo, hi)
			orSpan(dw, sw, fm, lm)
		}
	}
	return true
}

// GF2Elim is the GF(2) Gaussian-elimination op:
// f(x,u,v,w) = x ⊕ (u ∧ v) — over GF(2) the multiplier u/w equals u
// (the pivot w is 1 whenever elimination is defined), subtraction is
// XOR, and multiplication is AND, so the float update x − (u/w)·v
// collapses to a single XOR-AND. Combined with the Gaussian set it
// reduces a packed matrix to upper-triangular form; inputs must be
// eliminable without pivoting (all leading principal minors
// nonsingular over GF(2)) for the result to be an echelon form, but
// the kernels compute the GEP recurrence exactly for any input. For
// general matrices use the pivoted direct solvers in internal/linalg
// (SolveGF2, RankGF2).
type GF2Elim struct{}

// Func implements Op.
func (GF2Elim) Func() UpdateFunc[bool] {
	return func(_, _, _ int, x, u, v, _ bool) bool { return x != (u && v) }
}

// BlockKernel implements BlockKerneler over flat []bool storage — the
// element-wise baseline the packed engines are benchmarked against.
// Unlike Closure, XOR is not idempotent: a j == k update rewrites the
// selector u = c[i,k], and an i == k row rewrites its own source, so
// those (rare, Ranger-dependent) rows take an exact per-element loop
// and only the k < lo, i != k rows run with u hoisted.
func (GF2Elim) BlockKernel(data []bool, stride int, rg Ranger, i0, j0, k0, s int) bool {
	if rg == nil {
		return false
	}
	for k := k0; k < k0+s; k++ {
		ck := data[k*stride:]
		for i := i0; i < i0+s; i++ {
			lo, hi := rg.JRange(i, k)
			if lo < j0 {
				lo = j0
			}
			if hi > j0+s {
				hi = j0 + s
			}
			if lo >= hi {
				continue
			}
			ci := data[i*stride:]
			if lo <= k || i == k {
				// Exact per-element fallback: u and the source row may
				// change inside the interval.
				for j := lo; j < hi; j++ {
					if ci[k] && ck[j] {
						ci[j] = !ci[j]
					}
				}
				continue
			}
			if !ci[k] {
				continue
			}
			for j := lo; j < hi; j++ {
				if ck[j] {
					ci[j] = !ci[j]
				}
			}
		}
	}
	return true
}

// BitsKernel implements BitsKerneler: when the selector bit u = c[i,k]
// is set, row i's member interval XORs in row k word-parallel. The
// hoist is exact only when the interval excludes column k (u
// invariant) and i != k (source invariant); other rows — which never
// arise under the Gaussian set, whose intervals start at k+1 — take an
// exact per-element loop. Blocks whose written rows and columns are
// both strictly above the k-range take the four-Russians table path.
func (GF2Elim) BitsKernel(b *matrix.Bits, rg Ranger, tw, i0, j0, k0, s int) bool {
	if rg == nil {
		return false
	}
	if m4riWins(tw, s) && i0 >= k0+s && j0 >= k0+s && blockCovered(rg, i0, j0, k0, s) {
		kernelBitsM4RICount.Inc()
		bitsM4RI(b, tw, i0, j0, k0, s, true)
		return true
	}
	kernelBitsWordCount.Inc()
	for k := k0; k < k0+s; k++ {
		for i := i0; i < i0+s; i++ {
			lo, hi := rg.JRange(i, k)
			if lo < j0 {
				lo = j0
			}
			if hi > j0+s {
				hi = j0 + s
			}
			if lo >= hi {
				continue
			}
			if lo <= k || i == k {
				for j := lo; j < hi; j++ {
					if b.At(i, k) && b.At(k, j) {
						b.Set(i, j, !b.At(i, j))
					}
				}
				continue
			}
			if !b.At(i, k) {
				continue
			}
			dw, fm, lm := b.RowSpan(i, lo, hi)
			sw, _, _ := b.RowSpan(k, lo, hi)
			xorSpan(dw, sw, fm, lm)
		}
	}
	return true
}

// Compile-time checks: the packed ops provide the kernels the bits
// dispatch tier looks for.
var (
	_ BitsKerneler        = Closure{}
	_ BitsKerneler        = GF2Elim{}
	_ BlockKerneler[bool] = GF2Elim{}
)
