package core

import "gep/internal/matrix"

// RunIGEP executes the cache-oblivious I-GEP recursion F of Figure 2 on
// the square matrix c, in place. With the default options it performs
// exactly the pure recursion; WithBaseSize switches to an iterative
// kernel at small subproblems (§4.2 of the paper).
//
// I-GEP performs the same set of updates as RunGEP (Theorem 2.1) but
// may supply different intermediate values to f (Theorem 2.2); it is
// provably equivalent to RunGEP for the standard instances —
// Floyd-Warshall (Full set, min-plus f), Gaussian elimination
// (Gaussian set), LU decomposition (LU set), and matrix multiplication
// — but not for arbitrary (f, Σ_G); use RunCGEP for full generality.
//
// The side length must be a power of two (pad with matrix.PadPow2).
// I/O complexity: O(n³/(B√M)) under the tall-cache assumption.
//
// op is the update op: a bare UpdateFunc runs the flat or generic
// per-element kernels; a fused op (MinPlus, MulAdd, GaussElim,
// LUFactor, Closure) runs its closed-form base-case kernel, with
// bit-identical outputs.
func RunIGEP[T any](c matrix.Grid[T], op Op[T], set UpdateSet, opts ...Option[T]) {
	n := c.N()
	checkPow2(n)
	if n == 0 {
		return
	}
	cfg := buildConfig(opts)
	cfg.bindFast(c, set, op)
	igep(c, op.Func(), set, &cfg, 0, 0, 0, n)
}

// igep is F(X, k1, k2) with X = c[i0 : i0+s, j0 : j0+s] and the k-range
// [k0, k0+s). Input conditions 2.1 hold by construction: the i-, j- and
// k-ranges have equal power-of-two length and each either equals or is
// disjoint from the k-range.
func igep[T any](c matrix.Grid[T], f UpdateFunc[T], set UpdateSet, cfg *config[T], i0, j0, k0, s int) {
	// Line 1: skip quadrants whose update box misses Σ_G entirely.
	if cfg.prune && !set.Intersects(i0, i0+s-1, j0, j0+s-1, k0, k0+s-1) {
		return
	}
	if s <= cfg.baseSize {
		baseCase(c, f, set, cfg, i0, j0, k0, s)
		return
	}
	h := s / 2
	// Forward pass: k-range [k0, k0+h) over the four quadrants.
	igep(c, f, set, cfg, i0, j0, k0, h)     // X11
	igep(c, f, set, cfg, i0, j0+h, k0, h)   // X12
	igep(c, f, set, cfg, i0+h, j0, k0, h)   // X21
	igep(c, f, set, cfg, i0+h, j0+h, k0, h) // X22
	// Backward pass: k-range [k0+h, k0+s) in reverse quadrant order.
	igep(c, f, set, cfg, i0+h, j0+h, k0+h, h) // X22
	igep(c, f, set, cfg, i0+h, j0, k0+h, h)   // X21
	igep(c, f, set, cfg, i0, j0+h, k0+h, h)   // X12
	igep(c, f, set, cfg, i0, j0, k0+h, h)     // X11
}

// igepKernel executes a base-case block iteratively in G order. For
// s == 1 it is exactly line 2 of Figure 2; for s > 1 it is the paper's
// "GEP-like iterative kernel" optimization, equivalent to the pure
// recursion on every instance for which I-GEP itself is correct.
func igepKernel[T any](c matrix.Grid[T], f UpdateFunc[T], set UpdateSet, i0, j0, k0, s int) {
	kernelGenericCount.Inc()
	for k := k0; k < k0+s; k++ {
		for i := i0; i < i0+s; i++ {
			for j := j0; j < j0+s; j++ {
				if set.Contains(i, j, k) {
					c.Set(i, j, f(i, j, k, c.At(i, j), c.At(i, k), c.At(k, j), c.At(k, k)))
				}
			}
		}
	}
}
