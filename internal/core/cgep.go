package core

import "gep/internal/matrix"

// C-GEP (function H, Figure 3): the fully general cache-oblivious
// implementation of GEP. It follows exactly the recursion of I-GEP but
// replaces the direct reads of c[i,k], c[k,j] and c[k,k] with reads of
// saved intermediate states so that every update sees precisely the
// values the iterative G would have supplied (second column of
// Table 1). Four auxiliary matrices record the states:
//
//	u0[i,j] — value of c[i,j] in state τ_ij(j-1)
//	u1[i,j] — value of c[i,j] in state τ_ij(j)
//	v0[i,j] — value of c[i,j] in state τ_ij(i-1)
//	v1[i,j] — value of c[i,j] in state τ_ij(i)
//
// all initialized to c. The update ⟨i,j,k⟩ then computes
//
//	c[i,j] ← f(c[i,j], u_{[j>k]}[i,k], v_{[i>k]}[k,j],
//	           u_{[(i>k) ∨ (i=k ∧ j>k)]}[k,k])
//
// and re-saves c[i,j] into whichever of the four slots has k as its
// trigger. Time and I/O bounds are those of I-GEP.

// cgepState bundles the recursion parameters of H. For RunCGEP the aux
// matrices are full n×n and the band bases are 0; for RunCGEPCompact
// u0/u1 are n×(n/2) column bands (columns [uColBase, uColBase+n/2))
// and v0/v1 are (n/2)×n row bands.
type cgepState[T any] struct {
	c   matrix.Grid[T]
	f   UpdateFunc[T]
	set UpdateSet
	cfg *config[T]

	u0, u1 matrix.Rect[T]
	v0, v1 matrix.Rect[T]

	uColBase int // first column stored in u0/u1
	vRowBase int // first row stored in v0/v1
	uCols    int // number of columns stored (n or n/2)
	vRows    int // number of rows stored (n or n/2)

	// Flat fast path (see fastpath.go): taken when c and all four aux
	// matrices are dense. tauSet is the set's O(1) τ view, resolved
	// once instead of per save test.
	fc, fu0, fu1, fv0, fv1 flatRect[T]
	flat                   bool
	tauSet                 TauSet
}

// bindFlat resolves the flat views of c and the aux matrices plus the
// set's TauSet/Ranger hooks, and the automatic base size. The fast
// kernel runs only when all five stores are dense; a file-backed aux
// factory (WithAuxFactory) or a wrapper grid falls back to the generic
// kernel.
//
// The C-GEP engines accept fused ops but never run their block kernels:
// H's base case must route the u/v/w reads through the saved-state aux
// matrices and perform the τ-triggered saves, which a closed-form
// direct-read kernel cannot do. They run the op's Func through the flat
// or generic H kernels instead — the fused → flat → generic hierarchy
// simply has its first rung empty here (see DESIGN.md §10).
func (st *cgepState[T]) bindFlat() {
	st.fc = flatOf(st.c)
	st.fu0, st.fu1 = flatRectOf(st.u0), flatRectOf(st.u1)
	st.fv0, st.fv1 = flatRectOf(st.v0), flatRectOf(st.v1)
	st.flat = st.fc.ok && st.fu0.ok && st.fu1.ok && st.fv0.ok && st.fv1.ok
	st.tauSet, _ = st.set.(TauSet)
	st.cfg.ranger, _ = st.set.(Ranger)
	st.cfg.resolveBaseSize(st.flat)
}

// tauOf is Tau(st.set, i, j, l) with the TauSet assertion hoisted.
func (st *cgepState[T]) tauOf(i, j, l int) int {
	if st.tauSet != nil {
		return st.tauSet.Tau(i, j, l)
	}
	for k := l; k >= 0; k-- {
		if st.set.Contains(i, j, k) {
			return k
		}
	}
	return -1
}

// RunCGEP executes C-GEP with the 4n²-extra-space scheme of §2.2.2.
// It is a provably correct cache-oblivious implementation of RunGEP
// for every update function and update set: the two always produce
// identical results. The side length must be a power of two.
func RunCGEP[T any](c matrix.Grid[T], op Op[T], set UpdateSet, opts ...Option[T]) {
	n := c.N()
	checkPow2(n)
	if n == 0 {
		return
	}
	cfg := buildConfig(opts)
	st := &cgepState[T]{
		c: c, f: op.Func(), set: set, cfg: &cfg,
		u0: cfg.newAux(n, n), u1: cfg.newAux(n, n),
		v0: cfg.newAux(n, n), v1: cfg.newAux(n, n),
		uCols: n, vRows: n,
	}
	st.bindFlat()
	// Initialize every aux matrix to c (Figure 3 preamble).
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x := c.At(i, j)
			st.u0.Set(i, j, x)
			st.u1.Set(i, j, x)
			st.v0.Set(i, j, x)
			st.v1.Set(i, j, x)
		}
	}
	st.rec(0, 0, 0, n)
}

// RunCGEPCompact executes C-GEP with the reduced-space scheme: the aux
// state is restricted to the columns (for u0/u1) and rows (for v0/v1)
// of the half of the k-range currently being processed, and is
// re-initialized from c between the two halves — 2n² extra cells
// instead of 4n², at the cost of the extra (re)initialization passes
// the paper observed to make the compact variant slightly slower.
//
// (The technical report's variant reaches n²+n extra cells with a finer
// scheme; this implementation keeps the same top-level idea — trade
// reinitialization work for space — at 2n². See DESIGN.md §4.)
//
// Correctness of the band restriction: reads at update ⟨i,j,k⟩ touch
// only u-columns k, v-rows k and the diagonal cell (k,k), all inside
// the active half. A save for a cell outside the active band can only
// trigger in the first half (its trigger τ is <= its column/row index);
// skipping it is safe because the skipped value — c's state
// τ_ij(j-1) < n/2 — equals c's state at the end of the first half
// (there are no Σ_G updates for that cell between the two), which is
// exactly what the re-initialization stores.
func RunCGEPCompact[T any](c matrix.Grid[T], op Op[T], set UpdateSet, opts ...Option[T]) {
	n := c.N()
	checkPow2(n)
	if n == 0 {
		return
	}
	if n == 1 {
		// A single cell: H degenerates to G.
		RunGEP(c, op, set)
		return
	}
	cfg := buildConfig(opts)
	m := n / 2
	st := &cgepState[T]{
		c: c, f: op.Func(), set: set, cfg: &cfg,
		u0: cfg.newAux(n, m), u1: cfg.newAux(n, m),
		v0: cfg.newAux(m, n), v1: cfg.newAux(m, n),
		uCols: m, vRows: m,
	}
	st.bindFlat()

	// First half: k ∈ [0, m). Bands hold columns/rows [0, m).
	st.uColBase, st.vRowBase = 0, 0
	st.reinitBands()
	st.rec(0, 0, 0, m) // X11, forward pass of the root
	st.rec(0, m, 0, m) // X12
	st.rec(m, 0, 0, m) // X21
	st.rec(m, m, 0, m) // X22

	// Second half: k ∈ [m, n). Re-point the bands at columns/rows
	// [m, n) and refill them with c's current state.
	st.uColBase, st.vRowBase = m, m
	st.reinitBands()
	st.rec(m, m, m, m) // X22, backward pass of the root
	st.rec(m, 0, m, m) // X21
	st.rec(0, m, m, m) // X12
	st.rec(0, 0, m, m) // X11
}

// reinitBands loads the active columns of u0/u1 and rows of v0/v1 from
// the current contents of c.
func (st *cgepState[T]) reinitBands() {
	n := st.c.N()
	for i := 0; i < n; i++ {
		for j := 0; j < st.uCols; j++ {
			x := st.c.At(i, st.uColBase+j)
			st.u0.Set(i, j, x)
			st.u1.Set(i, j, x)
		}
	}
	for i := 0; i < st.vRows; i++ {
		for j := 0; j < n; j++ {
			x := st.c.At(st.vRowBase+i, j)
			st.v0.Set(i, j, x)
			st.v1.Set(i, j, x)
		}
	}
}

// rec is H(X, k1, k2) with X = c[i0 : i0+s, j0 : j0+s] and k-range
// [k0, k0+s) — the same recursion shape as igep.
func (st *cgepState[T]) rec(i0, j0, k0, s int) {
	if st.cfg.prune && !st.set.Intersects(i0, i0+s-1, j0, j0+s-1, k0, k0+s-1) {
		return
	}
	if s <= st.cfg.baseSize {
		if st.flat {
			st.kernelFlat(i0, j0, k0, s)
		} else {
			st.kernel(i0, j0, k0, s)
		}
		return
	}
	h := s / 2
	st.rec(i0, j0, k0, h)       // X11  forward
	st.rec(i0, j0+h, k0, h)     // X12
	st.rec(i0+h, j0, k0, h)     // X21
	st.rec(i0+h, j0+h, k0, h)   // X22
	st.rec(i0+h, j0+h, k0+h, h) // X22  backward
	st.rec(i0+h, j0, k0+h, h)   // X21
	st.rec(i0, j0+h, k0+h, h)   // X12
	st.rec(i0, j0, k0+h, h)     // X11
}

// kernel executes a base-case block in G order with the H read/save
// discipline (lines 2-8 of Figure 3 for s == 1; the block-kernel
// generalization otherwise).
func (st *cgepState[T]) kernel(i0, j0, k0, s int) {
	kernelGenericCount.Inc()
	ucb, vrb := st.uColBase, st.vRowBase
	for k := k0; k < k0+s; k++ {
		for i := i0; i < i0+s; i++ {
			for j := j0; j < j0+s; j++ {
				if !st.set.Contains(i, j, k) {
					continue
				}
				// Reads (line 4): the saved states that equal what
				// G would read (Table 1, column 2).
				var u T
				if j > k {
					u = st.u1.At(i, k-ucb)
				} else {
					u = st.u0.At(i, k-ucb)
				}
				var v T
				if i > k {
					v = st.v1.At(k-vrb, j)
				} else {
					v = st.v0.At(k-vrb, j)
				}
				var w T
				if i > k || (i == k && j > k) {
					w = st.u1.At(k, k-ucb)
				} else {
					w = st.u0.At(k, k-ucb)
				}
				x := st.f(i, j, k, st.c.At(i, j), u, v, w)
				st.c.Set(i, j, x)

				// Saves (lines 5-8): record c[i,j]'s new state in
				// whichever slots have k as their trigger. Saves
				// whose target lies outside the active band are
				// skipped (see RunCGEPCompact for why that is safe).
				if j-ucb >= 0 && j-ucb < st.uCols {
					if k == Tau(st.set, i, j, j-1) {
						st.u0.Set(i, j-ucb, x)
					}
					if k == Tau(st.set, i, j, j) {
						st.u1.Set(i, j-ucb, x)
					}
				}
				if i-vrb >= 0 && i-vrb < st.vRows {
					if k == Tau(st.set, i, j, i-1) {
						st.v0.Set(i-vrb, j, x)
					}
					if k == Tau(st.set, i, j, i) {
						st.v1.Set(i-vrb, j, x)
					}
				}
			}
		}
	}
}

// kernelFlat is kernel over flat storage: plain slice indexing for c
// and the aux matrices, the Ranger column interval in place of the
// per-element Contains test, and the TauSet assertion hoisted out of
// the save tests. Reads and writes are element-for-element those of
// kernel, so outputs are bit-identical; the aux reads are kept fresh
// per element because a save at j == k (u side) or i == k (v side) can
// feed a later read in the same loop, exactly as in the generic path.
func (st *cgepState[T]) kernelFlat(i0, j0, k0, s int) {
	kernelFlatCount.Inc()
	ucb, vrb := st.uColBase, st.vRowBase
	rg := st.cfg.ranger
	for k := k0; k < k0+s; k++ {
		for i := i0; i < i0+s; i++ {
			lo, hi := j0, j0+s
			if rg != nil {
				l, h := rg.JRange(i, k)
				if l > lo {
					lo = l
				}
				if h < hi {
					hi = h
				}
				if lo >= hi {
					continue
				}
			}
			ci := st.fc.row(i)
			for j := lo; j < hi; j++ {
				if rg == nil && !st.set.Contains(i, j, k) {
					continue
				}
				// Reads (line 4 of Figure 3): the saved states that
				// equal what G would read (Table 1, column 2).
				var u T
				if j > k {
					u = st.fu1.at(i, k-ucb)
				} else {
					u = st.fu0.at(i, k-ucb)
				}
				var v T
				if i > k {
					v = st.fv1.at(k-vrb, j)
				} else {
					v = st.fv0.at(k-vrb, j)
				}
				var w T
				if i > k || (i == k && j > k) {
					w = st.fu1.at(k, k-ucb)
				} else {
					w = st.fu0.at(k, k-ucb)
				}
				x := st.f(i, j, k, ci[j], u, v, w)
				ci[j] = x

				// Saves (lines 5-8), band-restricted as in kernel.
				if j-ucb >= 0 && j-ucb < st.uCols {
					if k == st.tauOf(i, j, j-1) {
						st.fu0.set(i, j-ucb, x)
					}
					if k == st.tauOf(i, j, j) {
						st.fu1.set(i, j-ucb, x)
					}
				}
				if i-vrb >= 0 && i-vrb < st.vRows {
					if k == st.tauOf(i, j, i-1) {
						st.fv0.set(i-vrb, j, x)
					}
					if k == st.tauOf(i, j, i) {
						st.fv1.set(i-vrb, j, x)
					}
				}
			}
		}
	}
}
