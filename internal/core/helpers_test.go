package core

import (
	"math/rand"
	"testing"

	"gep/internal/matrix"
)

// Test helpers shared by the core tests: deterministic random
// matrices, random update sets, and a family of exact-arithmetic
// update functions over int64 for which different value histories
// yield different outputs (so any semantic divergence is caught).

func randMatrix(t *testing.T, rng *rand.Rand, n int) *matrix.Dense[int64] {
	t.Helper()
	m := matrix.NewSquare[int64](n)
	m.Apply(func(i, j int, _ int64) int64 { return rng.Int63n(100) - 50 })
	return m
}

func randFloatMatrix(rng *rand.Rand, n int) *matrix.Dense[float64] {
	m := matrix.NewSquare[float64](n)
	m.Apply(func(i, j int, _ float64) float64 { return rng.Float64()*10 - 5 })
	return m
}

// randExplicit returns a random update set over [0,n)³ where each
// triple is present independently with probability p.
func randExplicit(rng *rand.Rand, n int, p float64) *Explicit {
	s := NewExplicit(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if rng.Float64() < p {
					s.Add(i, j, k)
				}
			}
		}
	}
	return s
}

// testFuncs is a family of update functions chosen so that supplying a
// value from the wrong state almost surely changes the result.
var testFuncs = map[string]UpdateFunc[int64]{
	"linear": func(i, j, k int, x, u, v, w int64) int64 {
		return x + 2*u + 3*v + 5*w
	},
	"affine-indexed": func(i, j, k int, x, u, v, w int64) int64 {
		return x + u - v + 7*w + int64(i-j+k)
	},
	"minplus": func(i, j, k int, x, u, v, w int64) int64 {
		if u+v < x {
			return u + v
		}
		return x
	},
	"mix": func(i, j, k int, x, u, v, w int64) int64 {
		return 3*x - u + v ^ (w << 1)
	},
}

// runOnClone applies run to a clone of src and returns the result.
func runOnClone(src *matrix.Dense[int64], run func(m *matrix.Dense[int64])) *matrix.Dense[int64] {
	m := src.Clone()
	run(m)
	return m
}

func requireEqual(t *testing.T, want, got *matrix.Dense[int64], label string) {
	t.Helper()
	if !matrix.Equal(want, got) {
		t.Fatalf("%s: result differs from reference\nwant:\n%v\ngot:\n%v", label, want, got)
	}
}

// fwMin is the Floyd-Warshall min-plus update over float64.
var fwMin UpdateFunc[float64] = func(i, j, k int, x, u, v, w float64) float64 {
	if d := u + v; d < x {
		return d
	}
	return x
}
