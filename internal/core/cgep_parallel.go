package core

import "gep/internal/matrix"

// Parallel C-GEP (§3 of the paper: "A similar parallel algorithm with
// the same parallel time bound applies to C-GEP"). The recursion is
// the A/B/C/D schedule of Figure 6 applied to H's base case: parallel
// tasks write disjoint X blocks and save aux state only at their own
// (i,j) cells, while their aux reads target cells owned by recursive
// calls already sequenced before them — the same dependence argument
// that makes multithreaded I-GEP safe.

// RunCGEPParallel executes C-GEP (4n² scheme) with the multithreaded
// recursion; combine with WithParallel to enable goroutines. Results
// are always identical to RunGEP and RunCGEP.
func RunCGEPParallel[T any](c matrix.Grid[T], op Op[T], set UpdateSet, opts ...Option[T]) {
	n := c.N()
	checkPow2(n)
	if n == 0 {
		return
	}
	cfg := buildConfig(opts)
	if cfg.spawn == nil {
		cfg.spawn = goSpawn
	}
	st := &cgepState[T]{
		c: c, f: op.Func(), set: set, cfg: &cfg,
		u0: cfg.newAux(n, n), u1: cfg.newAux(n, n),
		v0: cfg.newAux(n, n), v1: cfg.newAux(n, n),
		uCols: n, vRows: n,
	}
	st.bindFlat()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x := c.At(i, j)
			st.u0.Set(i, j, x)
			st.u1.Set(i, j, x)
			st.v0.Set(i, j, x)
			st.v1.Set(i, j, x)
		}
	}
	st.recPar(0, 0, 0, n)
}

// par runs tasks concurrently when enabled and above the grain.
func (st *cgepState[T]) par(s int, tasks ...func()) { parGroup(st.cfg, s, tasks...) }

// recPar is H over the Figure 6 schedule.
func (st *cgepState[T]) recPar(xi, xj, k0, s int) {
	if st.cfg.prune && !st.set.Intersects(xi, xi+s-1, xj, xj+s-1, k0, k0+s-1) {
		return
	}
	if s <= st.cfg.baseSize {
		if st.flat {
			st.kernelFlat(xi, xj, k0, s)
		} else {
			st.kernel(xi, xj, k0, s)
		}
		return
	}
	h := s / 2
	iK, jK := xi == k0, xj == k0
	switch {
	case iK && jK: // A
		st.recPar(xi, xj, k0, h)
		st.par(s,
			func() { st.recPar(xi, xj+h, k0, h) },
			func() { st.recPar(xi+h, xj, k0, h) },
		)
		st.recPar(xi+h, xj+h, k0, h)
		st.recPar(xi+h, xj+h, k0+h, h)
		st.par(s,
			func() { st.recPar(xi+h, xj, k0+h, h) },
			func() { st.recPar(xi, xj+h, k0+h, h) },
		)
		st.recPar(xi, xj, k0+h, h)
	case iK: // B
		st.par(s,
			func() { st.recPar(xi, xj, k0, h) },
			func() { st.recPar(xi, xj+h, k0, h) },
		)
		st.par(s,
			func() { st.recPar(xi+h, xj, k0, h) },
			func() { st.recPar(xi+h, xj+h, k0, h) },
		)
		st.par(s,
			func() { st.recPar(xi+h, xj, k0+h, h) },
			func() { st.recPar(xi+h, xj+h, k0+h, h) },
		)
		st.par(s,
			func() { st.recPar(xi, xj, k0+h, h) },
			func() { st.recPar(xi, xj+h, k0+h, h) },
		)
	case jK: // C
		st.par(s,
			func() { st.recPar(xi, xj, k0, h) },
			func() { st.recPar(xi+h, xj, k0, h) },
		)
		st.par(s,
			func() { st.recPar(xi, xj+h, k0, h) },
			func() { st.recPar(xi+h, xj+h, k0, h) },
		)
		st.par(s,
			func() { st.recPar(xi, xj+h, k0+h, h) },
			func() { st.recPar(xi+h, xj+h, k0+h, h) },
		)
		st.par(s,
			func() { st.recPar(xi, xj, k0+h, h) },
			func() { st.recPar(xi+h, xj, k0+h, h) },
		)
	default: // D
		st.par(s,
			func() { st.recPar(xi, xj, k0, h) },
			func() { st.recPar(xi, xj+h, k0, h) },
			func() { st.recPar(xi+h, xj, k0, h) },
			func() { st.recPar(xi+h, xj+h, k0, h) },
		)
		st.par(s,
			func() { st.recPar(xi, xj, k0+h, h) },
			func() { st.recPar(xi, xj+h, k0+h, h) },
			func() { st.recPar(xi+h, xj, k0+h, h) },
			func() { st.recPar(xi+h, xj+h, k0+h, h) },
		)
	}
}
