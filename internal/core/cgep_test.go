package core

import (
	"math/rand"
	"testing"

	"gep/internal/matrix"
)

// C-GEP's contract is unconditional: for every update function f and
// every update set Σ_G, RunCGEP and RunCGEPCompact produce exactly the
// output of the iterative RunGEP. These tests sweep random explicit
// sets, the standard sets, all the exact-arithmetic test functions,
// several sizes and base-kernel sizes.

func TestCGEPMatchesGEPOnRandomSets(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{1, 2, 4, 8, 16} {
		for _, p := range []float64{0.1, 0.5, 0.9, 1.0} {
			set := randExplicit(rng, n, p)
			for name, f := range testFuncs {
				in := randMatrix(t, rng, n)
				want := runOnClone(in, func(m *matrix.Dense[int64]) { RunGEP[int64](m, f, set) })

				got := runOnClone(in, func(m *matrix.Dense[int64]) { RunCGEP[int64](m, f, set) })
				requireEqual(t, want, got, "RunCGEP "+name)

				compact := runOnClone(in, func(m *matrix.Dense[int64]) { RunCGEPCompact[int64](m, f, set) })
				requireEqual(t, want, compact, "RunCGEPCompact "+name)
			}
		}
	}
}

func TestCGEPMatchesGEPOnStandardSets(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sets := map[string]UpdateSet{
		"full":     Full{},
		"gaussian": Gaussian{},
		"lu":       LU{},
	}
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		for sname, set := range sets {
			for fname, f := range testFuncs {
				in := randMatrix(t, rng, n)
				want := runOnClone(in, func(m *matrix.Dense[int64]) { RunGEP[int64](m, f, set) })
				got := runOnClone(in, func(m *matrix.Dense[int64]) { RunCGEP[int64](m, f, set) })
				requireEqual(t, want, got, sname+"/"+fname)
				compact := runOnClone(in, func(m *matrix.Dense[int64]) { RunCGEPCompact[int64](m, f, set) })
				requireEqual(t, want, compact, "compact "+sname+"/"+fname)
			}
		}
	}
}

// TestCGEPBaseSizes: the iterative block kernel (base-size > 1) must
// preserve the exact-G semantics of C-GEP.
func TestCGEPBaseSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := testFuncs["linear"]
	for _, n := range []int{8, 16, 32} {
		set := randExplicit(rng, n, 0.6)
		in := randMatrix(t, rng, n)
		want := runOnClone(in, func(m *matrix.Dense[int64]) { RunGEP[int64](m, f, set) })
		for _, base := range []int{1, 2, 4, 8} {
			got := runOnClone(in, func(m *matrix.Dense[int64]) {
				RunCGEP[int64](m, f, set, WithBaseSize[int64](base))
			})
			requireEqual(t, want, got, "RunCGEP base")
			compact := runOnClone(in, func(m *matrix.Dense[int64]) {
				RunCGEPCompact[int64](m, f, set, WithBaseSize[int64](base))
			})
			requireEqual(t, want, compact, "RunCGEPCompact base")
		}
	}
}

// TestCGEPPredicateSet exercises the conservative Predicate set (no
// pruning information, scan-based τ).
func TestCGEPPredicateSet(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	// A quirky but deterministic membership rule.
	pred := Predicate{Pred: func(i, j, k int) bool { return (i+2*j+3*k)%4 != 1 }}
	f := testFuncs["affine-indexed"]
	for _, n := range []int{4, 8, 16} {
		in := randMatrix(t, rng, n)
		want := runOnClone(in, func(m *matrix.Dense[int64]) { RunGEP[int64](m, f, pred) })
		got := runOnClone(in, func(m *matrix.Dense[int64]) { RunCGEP[int64](m, f, pred) })
		requireEqual(t, want, got, "predicate")
		compact := runOnClone(in, func(m *matrix.Dense[int64]) { RunCGEPCompact[int64](m, f, pred) })
		requireEqual(t, want, compact, "predicate compact")
	}
}

// TestCGEPAuxFactory verifies the custom aux allocator is honored.
func TestCGEPAuxFactory(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	n := 8
	allocs := 0
	factory := func(r, c int) matrix.Rect[int64] {
		allocs++
		return matrix.New[int64](r, c)
	}
	in := randMatrix(t, rng, n)
	f := testFuncs["linear"]
	want := runOnClone(in, func(m *matrix.Dense[int64]) { RunGEP[int64](m, f, Full{}) })
	got := runOnClone(in, func(m *matrix.Dense[int64]) {
		RunCGEP[int64](m, f, Full{}, WithAuxFactory[int64](factory))
	})
	requireEqual(t, want, got, "aux factory")
	if allocs != 4 {
		t.Fatalf("aux factory called %d times, want 4", allocs)
	}
}

// TestIGEPDivergesSomewhere double-checks that the C-GEP tests are not
// vacuous: for the random-set regime above, plain I-GEP must disagree
// with G on at least one instance (otherwise C-GEP would be pointless).
func TestIGEPDivergesSomewhere(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	f := testFuncs["linear"]
	diverged := false
	for trial := 0; trial < 20 && !diverged; trial++ {
		n := 4
		set := randExplicit(rng, n, 0.8)
		in := randMatrix(t, rng, n)
		want := runOnClone(in, func(m *matrix.Dense[int64]) { RunGEP[int64](m, f, set) })
		// Base 1 is the pure recursion; the automatic flat-path base
		// (64) would run these tiny instances as one k-outer block,
		// which coincides with G and hides the divergence.
		got := runOnClone(in, func(m *matrix.Dense[int64]) { RunIGEP[int64](m, f, set, WithBaseSize[int64](1)) })
		if !matrix.Equal(want, got) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("I-GEP never diverged from GEP on random instances; C-GEP tests are vacuous")
	}
}

func TestTauScanFallback(t *testing.T) {
	// Predicate without TauFn uses the downward scan; compare against
	// the Explicit implementation.
	n := 8
	rng := rand.New(rand.NewSource(16))
	ex := randExplicit(rng, n, 0.4)
	pred := Predicate{Pred: ex.Contains}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for l := -1; l < n; l++ {
				if got, want := Tau(pred, i, j, l), ex.Tau(i, j, l); got != want {
					t.Fatalf("Tau(%d,%d,%d): scan %d, explicit %d", i, j, l, got, want)
				}
			}
		}
	}
}

// TestCGEPParallelMatchesGEP: the multithreaded C-GEP recursion (§3)
// must preserve the unconditional exactness guarantee, serially and on
// goroutines.
func TestCGEPParallelMatchesGEP(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		set := randExplicit(rng, n, 0.7)
		for name, f := range testFuncs {
			in := randMatrix(t, rng, n)
			want := runOnClone(in, func(m *matrix.Dense[int64]) { RunGEP[int64](m, f, set) })
			serial := runOnClone(in, func(m *matrix.Dense[int64]) { RunCGEPParallel[int64](m, f, set) })
			requireEqual(t, want, serial, "serial RunCGEPParallel "+name)
			par := runOnClone(in, func(m *matrix.Dense[int64]) {
				RunCGEPParallel[int64](m, f, set, WithParallel[int64](4), WithBaseSize[int64](2))
			})
			requireEqual(t, want, par, "parallel RunCGEPParallel "+name)
		}
	}
}
