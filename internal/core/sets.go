package core

import "math"

// Standard update sets Σ_G for the GEP instances the paper studies,
// plus generic predicate- and extension-based sets for arbitrary
// computations and tests. All implement TauSet where an O(1) τ is
// available.

// Full is the complete update set {⟨i,j,k⟩ : 0 <= i,j,k < n}. It is
// the Σ_G of Floyd-Warshall's APSP and of matrix multiplication in GEP
// form.
type Full struct{}

// Contains implements UpdateSet.
func (Full) Contains(i, j, k int) bool { return true }

// Intersects implements UpdateSet.
func (Full) Intersects(i1, i2, j1, j2, k1, k2 int) bool { return true }

// Tau implements TauSet: every k' <= l is in the set.
func (Full) Tau(i, j, l int) int { return l }

// JRange implements Ranger: every column is a member.
func (Full) JRange(i, k int) (lo, hi int) { return 0, math.MaxInt }

// Gaussian is Σ_G for Gaussian elimination without pivoting:
// {⟨i,j,k⟩ : k < i ∧ k < j}. Combined with
// f(x,u,v,w) = x - (u/w)·v it reduces c to upper-triangular form
// (the strictly-lower part is left unreduced).
type Gaussian struct{}

// Contains implements UpdateSet.
func (Gaussian) Contains(i, j, k int) bool { return k < i && k < j }

// Intersects implements UpdateSet: some k in [k1,k2] is below some i in
// [i1,i2] and some j in [j1,j2] exactly when k1 < i2 and k1 < j2.
func (Gaussian) Intersects(i1, i2, j1, j2, k1, k2 int) bool {
	return k1 < i2 && k1 < j2
}

// JRange implements Ranger: for k < i the member columns are j > k.
func (Gaussian) JRange(i, k int) (lo, hi int) {
	if k >= i {
		return 0, 0
	}
	return k + 1, math.MaxInt
}

// Tau implements TauSet.
func (Gaussian) Tau(i, j, l int) int {
	m := min3(l, i-1, j-1)
	if m < 0 {
		return -1
	}
	return m
}

// LU is Σ_G for LU decomposition without pivoting:
// {⟨i,j,k⟩ : k < i ∧ k <= j}. Combined with
//
//	f(i,j,k,x,u,v,w) = x/w       if j == k   (multiplier l_ik)
//	                   x - u·v   if j > k    (elimination)
//
// it leaves L (unit diagonal implicit) strictly below the diagonal and
// U on and above it.
type LU struct{}

// Contains implements UpdateSet.
func (LU) Contains(i, j, k int) bool { return k < i && k <= j }

// Intersects implements UpdateSet.
func (LU) Intersects(i1, i2, j1, j2, k1, k2 int) bool {
	return k1 < i2 && k1 <= j2
}

// JRange implements Ranger: for k < i the member columns are j >= k.
func (LU) JRange(i, k int) (lo, hi int) {
	if k >= i {
		return 0, 0
	}
	return k, math.MaxInt
}

// Tau implements TauSet.
func (LU) Tau(i, j, l int) int {
	m := min3(l, i-1, j)
	if m < 0 {
		return -1
	}
	return m
}

// FloydWarshall is Σ_G for Floyd-Warshall's all-pairs shortest paths.
// It equals Full: every triple is updated with f = min(x, u+v).
type FloydWarshall = Full

// Predicate adapts an arbitrary membership function to UpdateSet. Its
// Intersects is conservative (always true) unless an analytic box test
// is supplied, so pruning is disabled but correctness is unaffected;
// τ falls back to a downward scan unless TauFn is supplied.
type Predicate struct {
	// Pred reports membership of ⟨i,j,k⟩; must be deterministic.
	Pred func(i, j, k int) bool
	// BoxFn, if non-nil, implements the Intersects pruning test.
	BoxFn func(i1, i2, j1, j2, k1, k2 int) bool
	// TauFn, if non-nil, implements τ in O(1).
	TauFn func(i, j, l int) int
}

// Contains implements UpdateSet.
func (p Predicate) Contains(i, j, k int) bool { return p.Pred(i, j, k) }

// Intersects implements UpdateSet.
func (p Predicate) Intersects(i1, i2, j1, j2, k1, k2 int) bool {
	if p.BoxFn != nil {
		return p.BoxFn(i1, i2, j1, j2, k1, k2)
	}
	return true
}

// Tau implements TauSet.
func (p Predicate) Tau(i, j, l int) int {
	if p.TauFn != nil {
		return p.TauFn(i, j, l)
	}
	for k := l; k >= 0; k-- {
		if p.Pred(i, j, k) {
			return k
		}
	}
	return -1
}

// Explicit is an extensionally given update set, used mainly by tests
// and the theorem checkers: it stores its triples and answers Contains,
// Intersects and Tau exactly.
type Explicit struct {
	n       int
	members map[[3]int]bool
	// byCell[i*n+j] holds the sorted k values with ⟨i,j,k⟩ present,
	// enabling O(log) τ queries.
	byCell [][]int
}

// NewExplicit returns an empty explicit set over [0,n)³.
func NewExplicit(n int) *Explicit {
	return &Explicit{
		n:       n,
		members: make(map[[3]int]bool),
		byCell:  make([][]int, n*n),
	}
}

// Add inserts ⟨i,j,k⟩; duplicates are ignored.
func (e *Explicit) Add(i, j, k int) {
	t := [3]int{i, j, k}
	if e.members[t] {
		return
	}
	e.members[t] = true
	cell := i*e.n + j
	ks := e.byCell[cell]
	// Insert keeping ks sorted ascending.
	pos := len(ks)
	for pos > 0 && ks[pos-1] > k {
		pos--
	}
	ks = append(ks, 0)
	copy(ks[pos+1:], ks[pos:])
	ks[pos] = k
	e.byCell[cell] = ks
}

// Len returns the number of triples in the set.
func (e *Explicit) Len() int { return len(e.members) }

// Triples returns all members; the order is unspecified.
func (e *Explicit) Triples() [][3]int {
	out := make([][3]int, 0, len(e.members))
	for t := range e.members {
		out = append(out, t)
	}
	return out
}

// Contains implements UpdateSet.
func (e *Explicit) Contains(i, j, k int) bool { return e.members[[3]int{i, j, k}] }

// Intersects implements UpdateSet exactly by scanning the cell lists of
// the box; adequate for the test-scale sets this type is meant for.
func (e *Explicit) Intersects(i1, i2, j1, j2, k1, k2 int) bool {
	for i := i1; i <= i2; i++ {
		for j := j1; j <= j2; j++ {
			for _, k := range e.byCell[i*e.n+j] {
				if k >= k1 && k <= k2 {
					return true
				}
				if k > k2 {
					break
				}
			}
		}
	}
	return false
}

// Tau implements TauSet.
func (e *Explicit) Tau(i, j, l int) int {
	ks := e.byCell[i*e.n+j]
	best := -1
	for _, k := range ks {
		if k > l {
			break
		}
		best = k
	}
	return best
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

var (
	_ TauSet = Full{}
	_ TauSet = Gaussian{}
	_ TauSet = LU{}
	_ TauSet = Predicate{}
	_ TauSet = (*Explicit)(nil)

	_ Ranger = Full{}
	_ Ranger = Gaussian{}
	_ Ranger = LU{}
)
