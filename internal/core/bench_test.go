package core

import (
	"fmt"
	"math/rand"
	"testing"

	"gep/internal/matrix"
)

// Generic-engine benchmarks: these measure the interface-dispatch
// engines (the paper's framework itself); the tuned per-application
// kernels live in internal/linalg and internal/apsp.

const benchN = 128

func benchFWMatrix() *matrix.Dense[float64] {
	rng := rand.New(rand.NewSource(1))
	m := matrix.NewSquare[float64](benchN)
	m.Apply(func(i, j int, _ float64) float64 {
		if i == j {
			return 0
		}
		return float64(rng.Intn(1000) + 1)
	})
	return m
}

// benchMinPlus is kept as a bare UpdateFunc (not a fused Op) so these
// benchmarks keep measuring the flat-slice indirect-call path.
var benchMinPlus UpdateFunc[float64] = func(i, j, k int, x, u, v, w float64) float64 {
	if s := u + v; s < x {
		return s
	}
	return x
}

func benchEngine(b *testing.B, run func(m *matrix.Dense[float64])) {
	b.Helper()
	in := benchFWMatrix()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := in.Clone()
		b.StartTimer()
		run(m)
	}
}

func BenchmarkEngineGEP(b *testing.B) {
	benchEngine(b, func(m *matrix.Dense[float64]) { RunGEP[float64](m, benchMinPlus, Full{}) })
}

func BenchmarkEngineIGEP(b *testing.B) {
	benchEngine(b, func(m *matrix.Dense[float64]) {
		RunIGEP[float64](m, benchMinPlus, Full{}, WithBaseSize[float64](32))
	})
}

func BenchmarkEngineIGEPBase1(b *testing.B) {
	benchEngine(b, func(m *matrix.Dense[float64]) { RunIGEP[float64](m, benchMinPlus, Full{}) })
}

func BenchmarkEngineCGEP(b *testing.B) {
	benchEngine(b, func(m *matrix.Dense[float64]) {
		RunCGEP[float64](m, benchMinPlus, Full{}, WithBaseSize[float64](32))
	})
}

func BenchmarkEngineCGEPCompact(b *testing.B) {
	benchEngine(b, func(m *matrix.Dense[float64]) {
		RunCGEPCompact[float64](m, benchMinPlus, Full{}, WithBaseSize[float64](32))
	})
}

func BenchmarkEngineABCD(b *testing.B) {
	benchEngine(b, func(m *matrix.Dense[float64]) {
		RunABCD[float64](m, benchMinPlus, Full{}, WithBaseSize[float64](32))
	})
}

func BenchmarkEngineABCDParallel(b *testing.B) {
	benchEngine(b, func(m *matrix.Dense[float64]) {
		RunABCD[float64](m, benchMinPlus, Full{}, WithBaseSize[float64](32), WithParallel[float64](64))
	})
}

// --- Fast-path vs generic-path benchmarks -------------------------
//
// These quantify the abstraction tax the flat-slice kernels remove:
// per-element Grid.At/Set interface dispatch + bounds checks, and the
// per-⟨i,j,k⟩ set.Contains call. "fast" presents the matrix as a
// *matrix.Dense (flat kernels engage); "generic" hides the identical
// matrix behind an opaque wrapper (the seed path). Record results in
// results/fastpath_bench.txt.

// benchOpaque forces the generic interface path for benchmarks.
type benchOpaque struct{ d *matrix.Dense[float64] }

func (g benchOpaque) N() int                  { return g.d.N() }
func (g benchOpaque) At(i, j int) float64     { return g.d.At(i, j) }
func (g benchOpaque) Set(i, j int, v float64) { g.d.Set(i, j, v) }

func benchFWMatrixN(n int) *matrix.Dense[float64] {
	rng := rand.New(rand.NewSource(1))
	m := matrix.NewSquare[float64](n)
	m.Apply(func(i, j int, _ float64) float64 {
		if i == j {
			return 0
		}
		return float64(rng.Intn(1000) + 1)
	})
	return m
}

func benchFastVsGeneric(b *testing.B, sizes []int, run func(c matrix.Grid[float64])) {
	b.Helper()
	for _, n := range sizes {
		in := benchFWMatrixN(n)
		b.Run(fmt.Sprintf("fast-n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := in.Clone()
				b.StartTimer()
				run(m)
			}
		})
		b.Run(fmt.Sprintf("generic-n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := in.Clone()
				b.StartTimer()
				run(benchOpaque{m})
			}
		})
	}
}

// BenchmarkIGEPFastVsGeneric measures RunIGEP (the CacheOblivious
// engine) with the paper's tuned base size. The n=1024 pair backs the
// "≥2× over the seed generic path" acceptance figure.
func BenchmarkIGEPFastVsGeneric(b *testing.B) {
	benchFastVsGeneric(b, []int{128, 512, 1024}, func(c matrix.Grid[float64]) {
		RunIGEP[float64](c, benchMinPlus, Full{}, WithBaseSize[float64](64))
	})
}

func BenchmarkCGEPFastVsGeneric(b *testing.B) {
	benchFastVsGeneric(b, []int{128, 512}, func(c matrix.Grid[float64]) {
		RunCGEP[float64](c, benchMinPlus, Full{}, WithBaseSize[float64](64))
	})
}

func BenchmarkABCDFastVsGeneric(b *testing.B) {
	benchFastVsGeneric(b, []int{128, 512}, func(c matrix.Grid[float64]) {
		RunABCD[float64](c, benchMinPlus, Full{}, WithBaseSize[float64](64))
	})
}

// BenchmarkABCDParallelPool measures the runtime-backed parallel
// engine (fast path) against its serial run, the WithParallel scaling
// check.
func BenchmarkABCDParallelPool(b *testing.B) {
	for _, n := range []int{256, 512} {
		in := benchFWMatrixN(n)
		b.Run(fmt.Sprintf("serial-n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := in.Clone()
				b.StartTimer()
				RunABCD[float64](m, benchMinPlus, Full{}, WithBaseSize[float64](64))
			}
		})
		b.Run(fmt.Sprintf("parallel-n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := in.Clone()
				b.StartTimer()
				RunABCD[float64](m, benchMinPlus, Full{}, WithBaseSize[float64](64), WithParallel[float64](64))
			}
		})
	}
}

func BenchmarkPiDelta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Pi(i&1023, (i*7)&1023)
		_ = Delta(i&1023, (i*3)&1023, (i*7)&1023)
	}
}

func BenchmarkTauAnalytic(b *testing.B) {
	s := LU{}
	for i := 0; i < b.N; i++ {
		_ = s.Tau(i&255, (i*3)&255, (i*7)&255)
	}
}
