package core

import (
	"math/rand"
	"testing"

	"gep/internal/matrix"
)

// Generic-engine benchmarks: these measure the interface-dispatch
// engines (the paper's framework itself); the tuned per-application
// kernels live in internal/linalg and internal/apsp.

const benchN = 128

func benchFWMatrix() *matrix.Dense[float64] {
	rng := rand.New(rand.NewSource(1))
	m := matrix.NewSquare[float64](benchN)
	m.Apply(func(i, j int, _ float64) float64 {
		if i == j {
			return 0
		}
		return float64(rng.Intn(1000) + 1)
	})
	return m
}

func benchMinPlus(i, j, k int, x, u, v, w float64) float64 {
	if s := u + v; s < x {
		return s
	}
	return x
}

func benchEngine(b *testing.B, run func(m *matrix.Dense[float64])) {
	b.Helper()
	in := benchFWMatrix()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := in.Clone()
		b.StartTimer()
		run(m)
	}
}

func BenchmarkEngineGEP(b *testing.B) {
	benchEngine(b, func(m *matrix.Dense[float64]) { RunGEP[float64](m, benchMinPlus, Full{}) })
}

func BenchmarkEngineIGEP(b *testing.B) {
	benchEngine(b, func(m *matrix.Dense[float64]) {
		RunIGEP[float64](m, benchMinPlus, Full{}, WithBaseSize[float64](32))
	})
}

func BenchmarkEngineIGEPBase1(b *testing.B) {
	benchEngine(b, func(m *matrix.Dense[float64]) { RunIGEP[float64](m, benchMinPlus, Full{}) })
}

func BenchmarkEngineCGEP(b *testing.B) {
	benchEngine(b, func(m *matrix.Dense[float64]) {
		RunCGEP[float64](m, benchMinPlus, Full{}, WithBaseSize[float64](32))
	})
}

func BenchmarkEngineCGEPCompact(b *testing.B) {
	benchEngine(b, func(m *matrix.Dense[float64]) {
		RunCGEPCompact[float64](m, benchMinPlus, Full{}, WithBaseSize[float64](32))
	})
}

func BenchmarkEngineABCD(b *testing.B) {
	benchEngine(b, func(m *matrix.Dense[float64]) {
		RunABCD[float64](m, benchMinPlus, Full{}, WithBaseSize[float64](32))
	})
}

func BenchmarkEngineABCDParallel(b *testing.B) {
	benchEngine(b, func(m *matrix.Dense[float64]) {
		RunABCD[float64](m, benchMinPlus, Full{}, WithBaseSize[float64](32), WithParallel[float64](64))
	})
}

func BenchmarkPiDelta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Pi(i&1023, (i*7)&1023)
		_ = Delta(i&1023, (i*3)&1023, (i*7)&1023)
	}
}

func BenchmarkTauAnalytic(b *testing.B) {
	s := LU{}
	for i := 0; i < b.N; i++ {
		_ = s.Tau(i&255, (i*3)&255, (i*7)&255)
	}
}
