package core

// Fused update ops. The engines' hot loops pay one indirect UpdateFunc
// call per element on top of the flat-slice addressing of fastpath.go —
// the dominant remaining constant against hand-specialized kernels
// (§4.2 of the paper reaches competitive constants only with tight
// iterative kernels). An Op bundles the update function with optional
// closed-form block kernels the engines can substitute for the whole
// base case: the indirect call disappears, the update arithmetic sits
// inline in the loop, and the compiler keeps the operands in registers.
//
// The dispatch contract, enforced by the differential tests in
// ops_test.go: a fused kernel must apply the same updates, in the same
// order, reading the same cell states, with the same floating-point
// rounding sequence, as the generic kernel running the op's Func —
// outputs are bit-identical, so callers can switch freely between the
// generic oracle and the fused kernels. Kernels therefore use explicit
// temporaries (t := u*v; x + t) everywhere: Go only fuses a multiply
// and an add into one FMA (one rounding instead of two) when they form
// a single expression, so the temporary pins the two-rounding semantics
// of the generic Func on every architecture.
//
// A plain UpdateFunc is itself an Op (Func returns the function), so
// every engine accepts either; unknown ops and wrapper grids simply run
// the flat or generic path.

// Op is an update function bundled with optional fused kernels. Engines
// take an Op; pass an UpdateFunc directly for the generic treatment or
// one of the built-in ops (MinPlus, MulAdd, GaussElim, LUFactor,
// Closure) to let base cases run closed-form. Implementations may
// additionally satisfy BlockKerneler and DisjointKerneler.
type Op[T any] interface {
	// Func returns the update f the generic and flat paths call per
	// element; it is the semantic definition of the op.
	Func() UpdateFunc[T]
}

// Func implements Op: a bare update function is an op with no fused
// kernels.
func (f UpdateFunc[T]) Func() UpdateFunc[T] { return f }

// BlockKerneler is an Op with a closed-form kernel for the in-place
// base case shared by RunGEP, RunIGEP, RunABCD and the C-GEP engines'
// I-GEP-shaped recursion (X, U, V, W all inside the one matrix).
type BlockKerneler[T any] interface {
	Op[T]
	// BlockKernel executes the base-case block [i0,i0+s)×[j0,j0+s) for
	// the k-range [k0,k0+s) over the row-major backing slice, exactly as
	// igepKernelFlat would with Func. It returns false to decline (for
	// example when rg is nil and the kernel has no per-element membership
	// path); the caller then falls back to the flat kernel.
	BlockKernel(data []T, stride int, rg Ranger, i0, j0, k0, s int) bool
}

// DisjointKerneler is an Op with a closed-form kernel for RunDisjoint's
// base case, where X is written and U, V, W are read-only and disjoint
// from X (the all-D recursion of matrix multiplication).
type DisjointKerneler[T any] interface {
	Op[T]
	// DisjointKernel executes X[i,j] ← f(X[i,j], U[i,k], V[k,j], W[k,k])
	// over the block [xi,xi+s)×[xj,xj+s)×[k0,k0+s), with each grid given
	// as its row-major backing slice and stride. Returns false to
	// decline, as in BlockKernel.
	DisjointKernel(x []T, xs int, u []T, us int, v []T, vs int, w []T, ws int, rg Ranger, xi, xj, k0, s int) bool
}

// Real is the constraint of the built-in numeric ops: any ordered
// numeric type the update arithmetic (+, *, /, <) is defined on.
type Real interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uintptr |
		~float32 | ~float64
}

// MinPlus is the Floyd-Warshall op: f(x,u,v,w) = min(x, u+v). Its
// fused kernels hoist u = c[i,k] out of the j loop and run it 4-way
// unrolled; min is insensitive to the w argument, so no pivot handling
// is needed beyond the register reload at j == k.
type MinPlus[T Real] struct{}

// Func implements Op.
func (MinPlus[T]) Func() UpdateFunc[T] {
	return func(_, _, _ int, x, u, v, _ T) T {
		if d := u + v; d < x {
			return d
		}
		return x
	}
}

// BlockKernel implements BlockKerneler. The loop structure mirrors
// igepKernelFlatRange exactly — clamp the Ranger interval, split at
// j == k, reload u after the pivot-column update — so reads and writes
// are element-for-element those of the generic path.
func (MinPlus[T]) BlockKernel(data []T, stride int, rg Ranger, i0, j0, k0, s int) bool {
	if rg == nil {
		return false
	}
	for k := k0; k < k0+s; k++ {
		ck := data[k*stride:]
		for i := i0; i < i0+s; i++ {
			lo, hi := rg.JRange(i, k)
			if lo < j0 {
				lo = j0
			}
			if hi > j0+s {
				hi = j0 + s
			}
			if lo >= hi {
				continue
			}
			ci := data[i*stride:]
			u := ci[k]
			j := lo
			if k >= lo && k < hi {
				for ; j < k; j++ {
					if d := u + ck[j]; d < ci[j] {
						ci[j] = d
					}
				}
				// j == k: x = u and v = c[k,k]; the write may change u.
				if d := u + ck[k]; d < u {
					ci[k] = d
					u = d
				}
				j = k + 1
			}
			for ; j+3 < hi; j += 4 {
				if d := u + ck[j]; d < ci[j] {
					ci[j] = d
				}
				if d := u + ck[j+1]; d < ci[j+1] {
					ci[j+1] = d
				}
				if d := u + ck[j+2]; d < ci[j+2] {
					ci[j+2] = d
				}
				if d := u + ck[j+3]; d < ci[j+3] {
					ci[j+3] = d
				}
			}
			for ; j < hi; j++ {
				if d := u + ck[j]; d < ci[j] {
					ci[j] = d
				}
			}
		}
	}
	return true
}

// DisjointKernel implements DisjointKerneler: the disjoint-grid variant
// needs no j == k split (only X is written), so u = U[i,k] is
// loop-invariant across the whole row.
func (MinPlus[T]) DisjointKernel(x []T, xs int, u []T, us int, v []T, vs int, _ []T, _ int, rg Ranger, xi, xj, k0, s int) bool {
	if rg == nil {
		return false
	}
	for k := k0; k < k0+s; k++ {
		vk := v[k*vs:]
		for i := xi; i < xi+s; i++ {
			lo, hi := rg.JRange(i, k)
			if lo < xj {
				lo = xj
			}
			if hi > xj+s {
				hi = xj + s
			}
			if lo >= hi {
				continue
			}
			xr := x[i*xs:]
			ui := u[i*us+k]
			j := lo
			for ; j+3 < hi; j += 4 {
				if d := ui + vk[j]; d < xr[j] {
					xr[j] = d
				}
				if d := ui + vk[j+1]; d < xr[j+1] {
					xr[j+1] = d
				}
				if d := ui + vk[j+2]; d < xr[j+2] {
					xr[j+2] = d
				}
				if d := ui + vk[j+3]; d < xr[j+3] {
					xr[j+3] = d
				}
			}
			for ; j < hi; j++ {
				if d := ui + vk[j]; d < xr[j] {
					xr[j] = d
				}
			}
		}
	}
	return true
}

// MulAdd is the matrix-multiplication op: f(x,u,v,w) = x + u·v with
// the product rounded before the add (two roundings — the generic
// semantics; see the package comment on FMA). Its disjoint kernel is a
// 4×4 register-tiled micro-kernel when the block is fully covered by
// the update set, and a 4-way unrolled rank-1 loop otherwise.
type MulAdd[T Real] struct{}

// Func implements Op.
func (MulAdd[T]) Func() UpdateFunc[T] {
	return func(_, _, _ int, x, u, v, _ T) T {
		t := u * v
		return x + t
	}
}

// BlockKernel implements BlockKerneler for the in-place engines
// (multiplication normally runs through RunDisjoint, but the in-place
// form c ← c + c·c is a valid GEP instance and keeps the op usable with
// every engine).
func (MulAdd[T]) BlockKernel(data []T, stride int, rg Ranger, i0, j0, k0, s int) bool {
	if rg == nil {
		return false
	}
	for k := k0; k < k0+s; k++ {
		ck := data[k*stride:]
		for i := i0; i < i0+s; i++ {
			lo, hi := rg.JRange(i, k)
			if lo < j0 {
				lo = j0
			}
			if hi > j0+s {
				hi = j0 + s
			}
			if lo >= hi {
				continue
			}
			ci := data[i*stride:]
			u := ci[k]
			j := lo
			if k >= lo && k < hi {
				for ; j < k; j++ {
					t := u * ck[j]
					ci[j] += t
				}
				// j == k: x = u and v = c[k,k]; the write changes u.
				t := u * ck[k]
				ci[k] = u + t
				u = ci[k]
				j = k + 1
			}
			for ; j+3 < hi; j += 4 {
				t0 := u * ck[j]
				ci[j] += t0
				t1 := u * ck[j+1]
				ci[j+1] += t1
				t2 := u * ck[j+2]
				ci[j+2] += t2
				t3 := u * ck[j+3]
				ci[j+3] += t3
			}
			for ; j < hi; j++ {
				t := u * ck[j]
				ci[j] += t
			}
		}
	}
	return true
}

// DisjointKernel implements DisjointKerneler. When every ⟨i,j,k⟩ of the
// block is a member and the side is a multiple of 4, it runs the 4×4
// register-tiled micro-kernel: 16 accumulators live across the k loop,
// so each X cell is loaded and stored once per block instead of once
// per k. Per cell the accumulator applies the same ascending-k sequence
// of (round(u·v), round(x+t)) steps as the generic path, so the tiling
// does not change a single bit. Partially covered blocks take the
// rank-1 fused loop, which handles the Ranger interval per (i,k).
func (MulAdd[T]) DisjointKernel(x []T, xs int, u []T, us int, v []T, vs int, _ []T, _ int, rg Ranger, xi, xj, k0, s int) bool {
	if rg == nil {
		return false
	}
	if s%4 == 0 && blockCovered(rg, xi, xj, k0, s) {
		mulTile4x4(x, xs, u, us, v, vs, xi, xj, k0, s)
		return true
	}
	for k := k0; k < k0+s; k++ {
		vk := v[k*vs:]
		for i := xi; i < xi+s; i++ {
			lo, hi := rg.JRange(i, k)
			if lo < xj {
				lo = xj
			}
			if hi > xj+s {
				hi = xj + s
			}
			if lo >= hi {
				continue
			}
			xr := x[i*xs:]
			ui := u[i*us+k]
			j := lo
			for ; j+3 < hi; j += 4 {
				t0 := ui * vk[j]
				xr[j] += t0
				t1 := ui * vk[j+1]
				xr[j+1] += t1
				t2 := ui * vk[j+2]
				xr[j+2] += t2
				t3 := ui * vk[j+3]
				xr[j+3] += t3
			}
			for ; j < hi; j++ {
				t := ui * vk[j]
				xr[j] += t
			}
		}
	}
	return true
}

// blockCovered reports whether the update set contains every ⟨i,j,k⟩ of
// the block — the precondition of the register-tiled micro-kernel. Full
// answers in O(1); other Rangers are scanned per (i,k), an O(s²) test
// against the block's O(s³) work.
func blockCovered(rg Ranger, xi, xj, k0, s int) bool {
	if _, ok := rg.(Full); ok {
		return true
	}
	for k := k0; k < k0+s; k++ {
		for i := xi; i < xi+s; i++ {
			lo, hi := rg.JRange(i, k)
			if lo > xj || hi < xj+s {
				return false
			}
		}
	}
	return true
}

// mulTile4x4 is the register-tiled disjoint multiply micro-kernel:
// X[4×4] += U[4×s]·V[s×4], accumulators in registers, k innermost.
func mulTile4x4[T Real](x []T, xs int, u []T, us int, v []T, vs int, xi, xj, k0, s int) {
	for i := xi; i < xi+s; i += 4 {
		x0, x1, x2, x3 := x[i*xs:], x[(i+1)*xs:], x[(i+2)*xs:], x[(i+3)*xs:]
		u0, u1, u2, u3 := u[i*us:], u[(i+1)*us:], u[(i+2)*us:], u[(i+3)*us:]
		for j := xj; j < xj+s; j += 4 {
			c00, c01, c02, c03 := x0[j], x0[j+1], x0[j+2], x0[j+3]
			c10, c11, c12, c13 := x1[j], x1[j+1], x1[j+2], x1[j+3]
			c20, c21, c22, c23 := x2[j], x2[j+1], x2[j+2], x2[j+3]
			c30, c31, c32, c33 := x3[j], x3[j+1], x3[j+2], x3[j+3]
			for k := k0; k < k0+s; k++ {
				vk := v[k*vs:]
				b0, b1, b2, b3 := vk[j], vk[j+1], vk[j+2], vk[j+3]
				a := u0[k]
				t0 := a * b0
				c00 += t0
				t1 := a * b1
				c01 += t1
				t2 := a * b2
				c02 += t2
				t3 := a * b3
				c03 += t3
				a = u1[k]
				t0 = a * b0
				c10 += t0
				t1 = a * b1
				c11 += t1
				t2 = a * b2
				c12 += t2
				t3 = a * b3
				c13 += t3
				a = u2[k]
				t0 = a * b0
				c20 += t0
				t1 = a * b1
				c21 += t1
				t2 = a * b2
				c22 += t2
				t3 = a * b3
				c23 += t3
				a = u3[k]
				t0 = a * b0
				c30 += t0
				t1 = a * b1
				c31 += t1
				t2 = a * b2
				c32 += t2
				t3 = a * b3
				c33 += t3
			}
			x0[j], x0[j+1], x0[j+2], x0[j+3] = c00, c01, c02, c03
			x1[j], x1[j+1], x1[j+2], x1[j+3] = c10, c11, c12, c13
			x2[j], x2[j+1], x2[j+2], x2[j+3] = c20, c21, c22, c23
			x3[j], x3[j+1], x3[j+2], x3[j+3] = c30, c31, c32, c33
		}
	}
}

// MulSub is the multiply-subtract op: f(x,u,v,w) = x − u·v with the
// product rounded before the subtraction (two roundings, as with
// MulAdd). It is the Schur-complement update C −= L·U that blocked
// factorizations with pivoting (linalg.FactorCA) issue against
// disjoint panels, expressed as an engine op so the trailing update
// keeps the fused kernel tier and its counters. The disjoint kernel
// mirrors MulAdd's: a 4×4 register-tiled micro-kernel on fully covered
// blocks, a 4-way unrolled rank-1 loop otherwise.
type MulSub[T Real] struct{}

// Func implements Op.
func (MulSub[T]) Func() UpdateFunc[T] {
	return func(_, _, _ int, x, u, v, _ T) T {
		t := u * v
		return x - t
	}
}

// DisjointKernel implements DisjointKerneler; see MulAdd.DisjointKernel
// for the dispatch structure it mirrors.
func (MulSub[T]) DisjointKernel(x []T, xs int, u []T, us int, v []T, vs int, _ []T, _ int, rg Ranger, xi, xj, k0, s int) bool {
	if rg == nil {
		return false
	}
	if s%4 == 0 && blockCovered(rg, xi, xj, k0, s) {
		mulSubTile4x4(x, xs, u, us, v, vs, xi, xj, k0, s)
		return true
	}
	for k := k0; k < k0+s; k++ {
		vk := v[k*vs:]
		for i := xi; i < xi+s; i++ {
			lo, hi := rg.JRange(i, k)
			if lo < xj {
				lo = xj
			}
			if hi > xj+s {
				hi = xj + s
			}
			if lo >= hi {
				continue
			}
			xr := x[i*xs:]
			ui := u[i*us+k]
			j := lo
			for ; j+3 < hi; j += 4 {
				t0 := ui * vk[j]
				xr[j] -= t0
				t1 := ui * vk[j+1]
				xr[j+1] -= t1
				t2 := ui * vk[j+2]
				xr[j+2] -= t2
				t3 := ui * vk[j+3]
				xr[j+3] -= t3
			}
			for ; j < hi; j++ {
				t := ui * vk[j]
				xr[j] -= t
			}
		}
	}
	return true
}

// mulSubTile4x4 is mulTile4x4 with subtracting accumulators:
// X[4×4] −= U[4×s]·V[s×4].
func mulSubTile4x4[T Real](x []T, xs int, u []T, us int, v []T, vs int, xi, xj, k0, s int) {
	for i := xi; i < xi+s; i += 4 {
		x0, x1, x2, x3 := x[i*xs:], x[(i+1)*xs:], x[(i+2)*xs:], x[(i+3)*xs:]
		u0, u1, u2, u3 := u[i*us:], u[(i+1)*us:], u[(i+2)*us:], u[(i+3)*us:]
		for j := xj; j < xj+s; j += 4 {
			c00, c01, c02, c03 := x0[j], x0[j+1], x0[j+2], x0[j+3]
			c10, c11, c12, c13 := x1[j], x1[j+1], x1[j+2], x1[j+3]
			c20, c21, c22, c23 := x2[j], x2[j+1], x2[j+2], x2[j+3]
			c30, c31, c32, c33 := x3[j], x3[j+1], x3[j+2], x3[j+3]
			for k := k0; k < k0+s; k++ {
				vk := v[k*vs:]
				b0, b1, b2, b3 := vk[j], vk[j+1], vk[j+2], vk[j+3]
				a := u0[k]
				t0 := a * b0
				c00 -= t0
				t1 := a * b1
				c01 -= t1
				t2 := a * b2
				c02 -= t2
				t3 := a * b3
				c03 -= t3
				a = u1[k]
				t0 = a * b0
				c10 -= t0
				t1 = a * b1
				c11 -= t1
				t2 = a * b2
				c12 -= t2
				t3 = a * b3
				c13 -= t3
				a = u2[k]
				t0 = a * b0
				c20 -= t0
				t1 = a * b1
				c21 -= t1
				t2 = a * b2
				c22 -= t2
				t3 = a * b3
				c23 -= t3
				a = u3[k]
				t0 = a * b0
				c30 -= t0
				t1 = a * b1
				c31 -= t1
				t2 = a * b2
				c32 -= t2
				t3 = a * b3
				c33 -= t3
			}
			x0[j], x0[j+1], x0[j+2], x0[j+3] = c00, c01, c02, c03
			x1[j], x1[j+1], x1[j+2], x1[j+3] = c10, c11, c12, c13
			x2[j], x2[j+1], x2[j+2], x2[j+3] = c20, c21, c22, c23
			x3[j], x3[j+1], x3[j+2], x3[j+3] = c30, c31, c32, c33
		}
	}
}

// GaussElim is the Gaussian-elimination op:
// f(x,u,v,w) = x - (u/w)·v, two roundings after the division exactly as
// in Func. The fused kernel hoists the multiplier m = u/w out of the j
// loop — the same operands divided once instead of per element, so the
// quotient is bit-identical.
type GaussElim[T Real] struct{}

// Func implements Op.
func (GaussElim[T]) Func() UpdateFunc[T] {
	return func(_, _, _ int, x, u, v, w T) T {
		m := u / w
		t := m * v
		return x - t
	}
}

// BlockKernel implements BlockKerneler. With the Gaussian set the
// interval never contains j == k (members need k < j) and never has
// i == k (members need k < i), but the split is kept so the kernel
// stays exact for any Ranger it meets.
func (GaussElim[T]) BlockKernel(data []T, stride int, rg Ranger, i0, j0, k0, s int) bool {
	if rg == nil {
		return false
	}
	for k := k0; k < k0+s; k++ {
		ck := data[k*stride:]
		for i := i0; i < i0+s; i++ {
			lo, hi := rg.JRange(i, k)
			if lo < j0 {
				lo = j0
			}
			if hi > j0+s {
				hi = j0 + s
			}
			if lo >= hi {
				continue
			}
			ci := data[i*stride:]
			u, w := ci[k], ck[k]
			j := lo
			if k >= lo && k < hi {
				m := u / w
				for ; j < k; j++ {
					t := m * ck[j]
					ci[j] -= t
				}
				// j == k: x = u, v = w; the write changes u (and w when
				// i == k, as ci and ck are then the same row).
				t := m * w
				ci[k] = u - t
				u, w = ci[k], ck[k]
				j = k + 1
			}
			m := u / w
			for ; j+3 < hi; j += 4 {
				t0 := m * ck[j]
				ci[j] -= t0
				t1 := m * ck[j+1]
				ci[j+1] -= t1
				t2 := m * ck[j+2]
				ci[j+2] -= t2
				t3 := m * ck[j+3]
				ci[j+3] -= t3
			}
			for ; j < hi; j++ {
				t := m * ck[j]
				ci[j] -= t
			}
		}
	}
	return true
}

// LUFactor is the LU-decomposition op for the LU set:
//
//	f(x,u,v,w) = x/w      if j == k  (stores the multiplier l_ik)
//	             x - u·v  if j != k  (elimination with the multiplier)
//
// The fused kernel computes the multiplier at the interval's j == k
// head and then runs the elimination with u = l_ik registered.
type LUFactor[T Real] struct{}

// Func implements Op.
func (LUFactor[T]) Func() UpdateFunc[T] {
	return func(_, j, k int, x, u, v, w T) T {
		if j == k {
			return x / w
		}
		t := u * v
		return x - t
	}
}

// BlockKernel implements BlockKerneler.
func (LUFactor[T]) BlockKernel(data []T, stride int, rg Ranger, i0, j0, k0, s int) bool {
	if rg == nil {
		return false
	}
	for k := k0; k < k0+s; k++ {
		ck := data[k*stride:]
		for i := i0; i < i0+s; i++ {
			lo, hi := rg.JRange(i, k)
			if lo < j0 {
				lo = j0
			}
			if hi > j0+s {
				hi = j0 + s
			}
			if lo >= hi {
				continue
			}
			ci := data[i*stride:]
			u, w := ci[k], ck[k]
			j := lo
			if k >= lo && k < hi {
				for ; j < k; j++ {
					t := u * ck[j]
					ci[j] -= t
				}
				// j == k: x = u, so the multiplier is u/w. The
				// elimination phase below no longer needs w.
				ci[k] = u / w
				u = ci[k]
				j = k + 1
			}
			for ; j+3 < hi; j += 4 {
				t0 := u * ck[j]
				ci[j] -= t0
				t1 := u * ck[j+1]
				ci[j+1] -= t1
				t2 := u * ck[j+2]
				ci[j+2] -= t2
				t3 := u * ck[j+3]
				ci[j+3] -= t3
			}
			for ; j < hi; j++ {
				t := u * ck[j]
				ci[j] -= t
			}
		}
	}
	return true
}

// Closure is the transitive-closure op over bool:
// f(x,u,v,w) = x ∨ (u ∧ v) — Warshall's algorithm. The fused kernel
// skips whole rows with u = c[i,k] false (every update then returns x
// unchanged) and stores only rising edges; cell values are identical to
// the generic path's.
type Closure struct{}

// Func implements Op.
func (Closure) Func() UpdateFunc[bool] {
	return func(_, _, _ int, x, u, v, _ bool) bool { return x || (u && v) }
}

// BlockKernel implements BlockKerneler. No j == k split is needed:
// within a row, u = c[i,k] can only be rewritten at j == k with
// x ∨ (u ∧ c[k,k]) = u, its own value.
func (Closure) BlockKernel(data []bool, stride int, rg Ranger, i0, j0, k0, s int) bool {
	if rg == nil {
		return false
	}
	for k := k0; k < k0+s; k++ {
		ck := data[k*stride:]
		for i := i0; i < i0+s; i++ {
			lo, hi := rg.JRange(i, k)
			if lo < j0 {
				lo = j0
			}
			if hi > j0+s {
				hi = j0 + s
			}
			if lo >= hi {
				continue
			}
			ci := data[i*stride:]
			if !ci[k] {
				continue
			}
			for j := lo; j < hi; j++ {
				if ck[j] {
					ci[j] = true
				}
			}
		}
	}
	return true
}

// Compile-time checks: the built-in ops provide the kernels the
// dispatch layer looks for, and a bare UpdateFunc is an Op.
var (
	_ BlockKerneler[float64]    = MinPlus[float64]{}
	_ DisjointKerneler[float64] = MinPlus[float64]{}
	_ BlockKerneler[int64]      = MulAdd[int64]{}
	_ DisjointKerneler[int64]   = MulAdd[int64]{}
	_ DisjointKerneler[float64] = MulSub[float64]{}
	_ BlockKerneler[float64]    = GaussElim[float64]{}
	_ BlockKerneler[float64]    = LUFactor[float64]{}
	_ BlockKerneler[bool]       = Closure{}
	_ Op[int64]                 = UpdateFunc[int64](nil)
)
