package core

import "gep/internal/matrix"

// Flat-slice fast-path kernels. The generic engines address the matrix
// through the Grid interface, which costs an interface dispatch and a
// bounds check per element access, and consult set.Contains — another
// interface call — per ⟨i,j,k⟩. The recursion already achieves the
// optimal O(n³/(B√M)) miss bound; these kernels close the remaining
// per-element constant-factor gap to the hand-specialized kernels in
// internal/linalg (§4.2's "iterative kernel quality" concern):
//
//   - when the grid is a *matrix.Dense[T] (detected once per run via
//     matrix.Flat), base-case blocks run over the row-major backing
//     slice with hoisted row slices for c[i,*] and c[k,*];
//   - when the set implements Ranger, the per-element Contains test is
//     replaced by a per-(k,i) column interval, and the registered
//     values u = c[i,k], w = c[k,k] are hoisted out of the j loop;
//   - everything else falls back to the generic path, so wrapper grids
//     (cache simulators, tracers, out-of-core stores) and exotic sets
//     keep their exact semantics.
//
// Every fast-path kernel applies the same updates, in the same order,
// reading the same cell states, as its generic counterpart — outputs
// are bit-identical (asserted by the differential tests in
// fastpath_test.go).

// baseCase dispatches one base-case block of the in-place engines in
// the kernel-hierarchy order fused → flat → generic: the op's fused
// closed-form kernel when one bound (and accepts the block), the
// flat-slice kernel with the indirect per-element call when storage is
// dense, and the Grid-interface kernel otherwise. All three produce
// bit-identical results (see ops.go and the differential tests).
func baseCase[T any](c matrix.Grid[T], f UpdateFunc[T], set UpdateSet, cfg *config[T], i0, j0, k0, s int) {
	if cfg.baseHook != nil && cfg.baseHook(i0, j0, k0, s) {
		return
	}
	if cfg.bits != nil {
		if cfg.bitsOp != nil && cfg.bitsOp.BitsKernel(cfg.bits, cfg.ranger, cfg.tableWidth, i0, j0, k0, s) {
			return
		}
		igepKernel(c, f, set, i0, j0, k0, s)
		return
	}
	if cfg.flatData != nil {
		if cfg.blockOp != nil && cfg.blockOp.BlockKernel(cfg.flatData, cfg.flatStride, cfg.ranger, i0, j0, k0, s) {
			kernelFusedCount.Inc()
			return
		}
		igepKernelFlat(cfg.flatData, cfg.flatStride, cfg.ranger, f, set, i0, j0, k0, s)
		return
	}
	igepKernel(c, f, set, i0, j0, k0, s)
}

// igepKernelFlat is igepKernel over flat row-major storage. rg may be
// nil, in which case membership is tested per element via set.
func igepKernelFlat[T any](data []T, stride int, rg Ranger, f UpdateFunc[T], set UpdateSet, i0, j0, k0, s int) {
	kernelFlatCount.Inc()
	if rg != nil {
		igepKernelFlatRange(data, stride, rg, f, i0, j0, k0, s)
		return
	}
	for k := k0; k < k0+s; k++ {
		ck := data[k*stride:]
		for i := i0; i < i0+s; i++ {
			ci := data[i*stride:]
			for j := j0; j < j0+s; j++ {
				if set.Contains(i, j, k) {
					ci[j] = f(i, j, k, ci[j], ci[k], ck[j], ck[k])
				}
			}
		}
	}
}

// igepKernelFlatRange is the fully hoisted kernel for Ranger sets. For
// each (k, i) the member columns form the interval [lo, hi); within it
// the only cells the j loop writes are row i's columns in [lo, hi), so
// u = c[i,k] and w = c[k,k] are loop-invariant except across the j == k
// update (which writes column k of row i, and — when i == k — the
// pivot cell itself). The loop therefore splits at j == k and reloads
// both registers after it, preserving bit-identical reads with the
// per-element generic kernel.
func igepKernelFlatRange[T any](data []T, stride int, rg Ranger, f UpdateFunc[T], i0, j0, k0, s int) {
	for k := k0; k < k0+s; k++ {
		ck := data[k*stride:]
		for i := i0; i < i0+s; i++ {
			lo, hi := rg.JRange(i, k)
			if lo < j0 {
				lo = j0
			}
			if hi > j0+s {
				hi = j0 + s
			}
			if lo >= hi {
				continue
			}
			ci := data[i*stride:]
			u, w := ci[k], ck[k]
			j := lo
			if k >= lo && k < hi {
				for ; j < k; j++ {
					ci[j] = f(i, j, k, ci[j], u, ck[j], w)
				}
				// j == k: x = c[i,k] = u and v = c[k,k] = w (no prior
				// iteration of this row touched column k or the pivot).
				ci[k] = f(i, k, k, u, u, w, w)
				u, w = ci[k], ck[k]
				j = k + 1
			}
			for ; j < hi; j++ {
				ci[j] = f(i, j, k, ci[j], u, ck[j], w)
			}
		}
	}
}

// flatRect is a resolved flat view of a matrix.Rect: concrete methods
// the compiler can inline, with plain slice indexing instead of
// interface dispatch. ok reports whether the resolution succeeded.
type flatRect[T any] struct {
	data   []T
	stride int
	ok     bool
}

func (r flatRect[T]) at(i, j int) T     { return r.data[i*r.stride+j] }
func (r flatRect[T]) set(i, j int, v T) { r.data[i*r.stride+j] = v }

// row returns the suffix slice starting at row i's first column.
func (r flatRect[T]) row(i int) []T { return r.data[i*r.stride:] }

// flatOf resolves a Grid's flat view (ok=false for wrapper grids).
func flatOf[T any](g matrix.Grid[T]) flatRect[T] {
	data, stride, ok := matrix.Flat[T](g)
	return flatRect[T]{data: data, stride: stride, ok: ok}
}

// flatRectOf resolves a Rect's flat view (ok=false for non-Dense aux).
func flatRectOf[T any](r matrix.Rect[T]) flatRect[T] {
	data, stride, ok := matrix.FlatRect[T](r)
	return flatRect[T]{data: data, stride: stride, ok: ok}
}

// kernelFlat is the disjoint-grid (RunDisjoint) base case over flat
// storage: X is written, U, V, W are read-only and disjoint from X, so
// the u = U[i,k] and w = W[k,k] registers are loop-invariant across
// the whole j loop, with no split needed. Reads match the generic path
// exactly because the generic path's per-element re-reads can never
// observe a change (only X is written).
func (st *disjointState[T]) kernelFlat(xi, xj, k0, s int) {
	kernelFlatCount.Inc()
	rg := st.cfg.ranger
	for k := k0; k < k0+s; k++ {
		vk := st.fv.row(k)
		w := st.fw.at(k, k)
		for i := xi; i < xi+s; i++ {
			xrow := st.fx.row(i)
			u := st.fu.at(i, k)
			if rg != nil {
				lo, hi := rg.JRange(i, k)
				if lo < xj {
					lo = xj
				}
				if hi > xj+s {
					hi = xj + s
				}
				for j := lo; j < hi; j++ {
					xrow[j] = st.f(i, j, k, xrow[j], u, vk[j], w)
				}
				continue
			}
			for j := xj; j < xj+s; j++ {
				if st.set.Contains(i, j, k) {
					xrow[j] = st.f(i, j, k, xrow[j], u, vk[j], w)
				}
			}
		}
	}
}
