package core

import (
	"math"
	"math/rand"
	"testing"

	"gep/internal/matrix"
)

// I-GEP must agree with iterative GEP on every instance the paper
// proves it correct for: Floyd-Warshall (Full set, min-plus f),
// Gaussian elimination (Gaussian set), LU decomposition (LU set).
// These tests sweep sizes and base-kernel sizes.

// fwInf is the "no edge" sentinel for exact-arithmetic Floyd-Warshall:
// large enough that no real path competes, small enough that sums of a
// few sentinels cannot overflow int64.
const fwInf = int64(1) << 40

// fwMinInt is min-plus over int64; exact, so I-GEP and GEP results are
// comparable with ==. (Over float64 the two may associate the same
// path sum differently and differ in the last ulp — see
// TestIGEPFloydWarshallFloat.)
var fwMinInt UpdateFunc[int64] = func(i, j, k int, x, u, v, w int64) int64 {
	if d := u + v; d < x {
		return d
	}
	return x
}

func floydWarshallInputInt(rng *rand.Rand, n int) *matrix.Dense[int64] {
	c := matrix.NewSquare[int64](n)
	c.Apply(func(i, j int, _ int64) int64 {
		if i == j {
			return 0
		}
		if rng.Float64() < 0.3 {
			return fwInf // no edge
		}
		return rng.Int63n(1000) + 1
	})
	return c
}

func floydWarshallInput(rng *rand.Rand, n int) *matrix.Dense[float64] {
	c := matrix.NewSquare[float64](n)
	c.Apply(func(i, j int, _ float64) float64 {
		if i == j {
			return 0
		}
		if rng.Float64() < 0.3 {
			return math.Inf(1) // no edge
		}
		return rng.Float64() * 10
	})
	return c
}

func TestIGEPFloydWarshallMatchesGEP(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		for _, base := range []int{1, 2, 4, 16} {
			in := floydWarshallInputInt(rng, n)
			want := in.Clone()
			RunGEP[int64](want, fwMinInt, Full{})
			got := in.Clone()
			RunIGEP[int64](got, fwMinInt, Full{}, WithBaseSize[int64](base))
			requireEqual(t, want, got, "I-GEP Floyd-Warshall")
		}
	}
}

// TestIGEPFloydWarshallFloat: over float64, I-GEP's distances agree
// with GEP's up to floating-point associativity of path sums (the
// update sequences associate the same shortest path differently).
func TestIGEPFloydWarshallFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	approx := func(a, b float64) bool {
		if a == b {
			return true // covers ±Inf
		}
		d := math.Abs(a - b)
		return d <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
	}
	for _, n := range []int{4, 16, 64} {
		for _, base := range []int{1, 4} {
			in := floydWarshallInput(rng, n)
			want := in.Clone()
			RunGEP[float64](want, fwMin, Full{})
			got := in.Clone()
			RunIGEP[float64](got, fwMin, Full{}, WithBaseSize[float64](base))
			if !got.EqualFunc(want, approx) {
				t.Fatalf("n=%d base=%d: float Floyd-Warshall diverged beyond fp tolerance", n, base)
			}
		}
	}
}

// geUpdate is Gaussian elimination without pivoting: eliminate c[i,j]
// using row k. Applied over the Gaussian set {k < i, k < j}.
var geUpdate UpdateFunc[float64] = func(i, j, k int, x, u, v, w float64) float64 {
	return x - u*v/w
}

// luUpdate is LU decomposition without pivoting over the LU set
// {k < i, k <= j}: the j == k update stores the multiplier.
var luUpdate UpdateFunc[float64] = func(i, j, k int, x, u, v, w float64) float64 {
	if j == k {
		return x / w
	}
	return x - u*v
}

// diagDominant returns a diagonally dominant random matrix, for which
// elimination without pivoting is numerically safe.
func diagDominant(rng *rand.Rand, n int) *matrix.Dense[float64] {
	c := matrix.NewSquare[float64](n)
	c.Apply(func(i, j int, _ float64) float64 {
		if i == j {
			return float64(4 * n)
		}
		return rng.Float64()*2 - 1
	})
	return c
}

func TestIGEPGaussianMatchesGEP(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		for _, base := range []int{1, 4} {
			in := diagDominant(rng, n)
			want := in.Clone()
			RunGEP[float64](want, geUpdate, Gaussian{})
			got := in.Clone()
			RunIGEP[float64](got, geUpdate, Gaussian{}, WithBaseSize[float64](base))
			// Gaussian elimination is one of the instances the paper
			// proves exact for I-GEP: the same operations happen with
			// the same operand values, so results are bitwise equal.
			if !got.EqualFunc(want, func(a, b float64) bool { return a == b }) {
				t.Fatalf("n=%d base=%d: I-GEP Gaussian elimination differs from GEP", n, base)
			}
		}
	}
}

func TestIGEPLUMatchesGEP(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		for _, base := range []int{1, 2, 8} {
			in := diagDominant(rng, n)
			want := in.Clone()
			RunGEP[float64](want, luUpdate, LU{})
			got := in.Clone()
			RunIGEP[float64](got, luUpdate, LU{}, WithBaseSize[float64](base))
			if !got.EqualFunc(want, func(a, b float64) bool { return a == b }) {
				t.Fatalf("n=%d base=%d: I-GEP LU differs from GEP", n, base)
			}
		}
	}
}

// TestIGEPPruningIrrelevant checks that disabling the line-1 pruning
// test changes nothing but work.
func TestIGEPPruningIrrelevant(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := diagDominant(rng, 16)
	a := in.Clone()
	RunIGEP[float64](a, geUpdate, Gaussian{}, WithPrune[float64](true))
	b := in.Clone()
	RunIGEP[float64](b, geUpdate, Gaussian{}, WithPrune[float64](false))
	if !a.EqualFunc(b, func(x, y float64) bool { return x == y }) {
		t.Fatal("pruning changed the result")
	}
}

// TestCounterexample221 reproduces the paper's §2.2.1 example showing
// I-GEP is not correct for arbitrary (f, Σ_G): n=2, f = sum of inputs,
// Σ_G full, c = [[0,0],[0,1]]. G yields c[1][0] = 2 while I-GEP yields
// c[1][0] = 8 (the paper's c[2,1], 1-based). C-GEP must match G.
func TestCounterexample221(t *testing.T) {
	sum := UpdateFunc[int64](func(i, j, k int, x, u, v, w int64) int64 { return x + u + v + w })
	in := matrix.FromRows([][]int64{{0, 0}, {0, 1}})

	g := in.Clone()
	RunGEP[int64](g, sum, Full{})
	if g.At(1, 0) != 2 {
		t.Fatalf("G: c[1][0] = %d, want 2", g.At(1, 0))
	}

	f := in.Clone()
	// Base 1: the paper's divergence is a property of the pure F
	// recursion; at the automatic base size the 2×2 instance would run
	// as a single k-outer block and coincide with G.
	RunIGEP[int64](f, sum, Full{}, WithBaseSize[int64](1))
	if f.At(1, 0) != 8 {
		t.Fatalf("I-GEP: c[1][0] = %d, want 8 (the paper's divergence)", f.At(1, 0))
	}

	h := in.Clone()
	RunCGEP[int64](h, sum, Full{})
	if !matrix.Equal(g, h) {
		t.Fatalf("C-GEP differs from G on the counterexample:\nG:\n%v\nC-GEP:\n%v", g, h)
	}
	hc := in.Clone()
	RunCGEPCompact[int64](hc, sum, Full{})
	if !matrix.Equal(g, hc) {
		t.Fatalf("compact C-GEP differs from G on the counterexample")
	}
}

// TestABCDMatchesIGEP: the multithreaded recursion performs the same
// computation as F on correct instances, serially and in parallel.
func TestABCDMatchesIGEP(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		in := floydWarshallInputInt(rng, n)
		want := in.Clone()
		RunIGEP[int64](want, fwMinInt, Full{})

		serial := in.Clone()
		RunABCD[int64](serial, fwMinInt, Full{})
		requireEqual(t, want, serial, "serial ABCD")

		par := in.Clone()
		RunABCD[int64](par, fwMinInt, Full{}, WithParallel[int64](4))
		requireEqual(t, want, par, "parallel ABCD")
	}
}

func TestABCDGaussianParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{8, 32} {
		in := diagDominant(rng, n)
		want := in.Clone()
		RunGEP[float64](want, geUpdate, Gaussian{})
		got := in.Clone()
		RunABCD[float64](got, geUpdate, Gaussian{}, WithParallel[float64](2), WithBaseSize[float64](2))
		if !got.EqualFunc(want, func(a, b float64) bool { return a == b }) {
			t.Fatalf("n=%d: parallel ABCD Gaussian differs from GEP", n)
		}
	}
}

// TestRunDisjointMultiply: C += A·B through the all-D recursion
// matches the naive triple loop.
func TestRunDisjointMultiply(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mulUpdate := UpdateFunc[float64](func(i, j, k int, x, u, v, _ float64) float64 { return x + u*v })
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		a := randFloatMatrix(rng, n)
		b := randFloatMatrix(rng, n)

		want := matrix.NewSquare[float64](n)
		for i := 0; i < n; i++ {
			for k := 0; k < n; k++ {
				for j := 0; j < n; j++ {
					want.Set(i, j, want.At(i, j)+a.At(i, k)*b.At(k, j))
				}
			}
		}

		got := matrix.NewSquare[float64](n)
		RunDisjoint[float64](got, a, b, b, mulUpdate, Full{})
		// The D recursion applies each cell's k-updates in increasing
		// order, and FP addition order per cell matches the k-loop,
		// so results are bitwise equal to the ikj loop above.
		if !got.EqualFunc(want, func(x, y float64) bool { return x == y }) {
			t.Fatalf("n=%d: RunDisjoint multiply differs from naive", n)
		}

		par := matrix.NewSquare[float64](n)
		RunDisjoint[float64](par, a, b, b, mulUpdate, Full{}, WithParallel[float64](4))
		if !par.EqualFunc(want, func(x, y float64) bool { return x == y }) {
			t.Fatalf("n=%d: parallel RunDisjoint multiply differs from naive", n)
		}
	}
}

// TestIGEPZeroAndOne covers the degenerate sizes.
func TestIGEPZeroAndOne(t *testing.T) {
	empty := matrix.NewSquare[float64](0)
	RunIGEP[float64](empty, fwMin, Full{}) // must not panic

	one := matrix.FromRows([][]int64{{7}})
	sum := UpdateFunc[int64](func(i, j, k int, x, u, v, w int64) int64 { return x + u + v + w })
	RunIGEP[int64](one, sum, Full{})
	if one.At(0, 0) != 28 {
		t.Fatalf("n=1: got %d, want 28", one.At(0, 0))
	}
}

// TestIGEPNonPow2Panics documents the power-of-two requirement.
func TestIGEPNonPow2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two side")
		}
	}()
	m := matrix.NewSquare[float64](3)
	RunIGEP[float64](m, fwMin, Full{})
}

// TestEnginesOverTiledStorage: the generic engines run over any Grid;
// the bit-interleaved Tiled storage must give identical results to
// Dense.
func TestEnginesOverTiledStorage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 32
	in := floydWarshallInputInt(rng, n)
	want := in.Clone()
	RunIGEP[int64](want, fwMinInt, Full{}, WithBaseSize[int64](4))

	tiled := matrix.NewTiled[int64](n, 8)
	tiled.FromDense(in)
	RunIGEP[int64](tiled, fwMinInt, Full{}, WithBaseSize[int64](4))
	if !tiled.ToDense().EqualFunc(want, func(a, b int64) bool { return a == b }) {
		t.Fatal("I-GEP over Tiled storage differs from Dense")
	}

	tiled2 := matrix.NewTiled[int64](n, 4)
	tiled2.FromDense(in)
	g := in.Clone()
	RunGEP[int64](g, fwMinInt, Full{})
	RunCGEP[int64](tiled2, fwMinInt, Full{})
	if !tiled2.ToDense().EqualFunc(g, func(a, b int64) bool { return a == b }) {
		t.Fatal("C-GEP over Tiled storage differs from iterative")
	}
}
