package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"gep/internal/matrix"
)

// gatherTile copies the s×s quadrant at (r0, c0) out of m into a fresh
// row-major buffer.
func gatherTile(m *matrix.Dense[float64], r0, c0, s int) []float64 {
	out := make([]float64, s*s)
	for i := 0; i < s; i++ {
		copy(out[i*s:(i+1)*s], m.Row(r0 + i)[c0:c0+s])
	}
	return out
}

// scatterTile writes the buffer back into the quadrant.
func scatterTile(m *matrix.Dense[float64], buf []float64, r0, c0, s int) {
	for i := 0; i < s; i++ {
		copy(m.Row(r0 + i)[c0:c0+s], buf[i*s:(i+1)*s])
	}
}

// blockTiles assembles the four operand tiles of block (i0,j0,k0,s)
// with the aliasing TileKernel's contract requires: coinciding
// quadrants share one buffer.
func blockTiles(m *matrix.Dense[float64], i0, j0, k0, s int) (x, u, v, w []float64) {
	x = gatherTile(m, i0, j0, s)
	u = x
	if j0 != k0 {
		u = gatherTile(m, i0, k0, s)
	}
	v = x
	if i0 != k0 {
		v = gatherTile(m, k0, j0, s)
	} else if j0 != k0 {
		// i0 == k0, j0 != k0: V coincides with X only when i0 == k0,
		// which holds here, so v stays x. (Branch kept for clarity.)
		v = x
	}
	switch {
	case i0 == k0 && j0 == k0:
		w = x
	case i0 == k0:
		w = u // W = (k0,k0) = (i0,k0) = U
	case j0 == k0:
		w = v // W = (k0,k0) = (k0,j0) = V
	default:
		w = gatherTile(m, k0, k0, s)
	}
	return x, u, v, w
}

// runTileBlock executes TileKernel for one block over a copy of m and
// returns the resulting matrix.
func runTileBlock(m *matrix.Dense[float64], op Op[float64], set UpdateSet, i0, j0, k0, s int) *matrix.Dense[float64] {
	got := m.Clone()
	x, u, v, w := blockTiles(got, i0, j0, k0, s)
	TileKernel(op, set, x, u, v, w, i0, j0, k0, s)
	// Scatter every distinct buffer back.
	scatterTile(got, x, i0, j0, s)
	if j0 != k0 {
		scatterTile(got, u, i0, k0, s)
	}
	if i0 != k0 {
		scatterTile(got, v, k0, j0, s)
	}
	if i0 != k0 && j0 != k0 {
		scatterTile(got, w, k0, k0, s)
	}
	return got
}

func bitsEqual(t *testing.T, label string, want, got *matrix.Dense[float64]) {
	t.Helper()
	n := want.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if math.Float64bits(want.At(i, j)) != math.Float64bits(got.At(i, j)) {
				t.Fatalf("%s: cell (%d,%d) = %x, want %x", label, i, j,
					math.Float64bits(got.At(i, j)), math.Float64bits(want.At(i, j)))
			}
		}
	}
}

// TestTileKernelMatchesGeneric: for every alias shape a base-case
// block can take (diagonal, i-aligned, j-aligned, fully disjoint),
// every built-in op × set pairing produces bit-identical results to
// the generic Grid kernel on the same block.
func TestTileKernelMatchesGeneric(t *testing.T) {
	const n, s = 8, 4
	ops := []struct {
		name string
		op   Op[float64]
	}{
		{"MinPlus", MinPlus[float64]{}},
		{"MulAdd", MulAdd[float64]{}},
		{"GaussElim", GaussElim[float64]{}},
		{"LUFactor", LUFactor[float64]{}},
		{"BareFunc", UpdateFunc[float64](func(i, j, k int, x, u, v, w float64) float64 {
			return x + 0.5*u - 0.25*v + 0.125*w
		})},
	}
	sets := []struct {
		name string
		set  UpdateSet
	}{
		{"Full", Full{}},
		{"Gaussian", Gaussian{}},
		{"LU", LU{}},
		{"NoRanger", Predicate{Pred: LU{}.Contains}}, // hides JRange: generic tier
	}
	blocks := []struct {
		name       string
		i0, j0, k0 int
	}{
		{"diagonal", 0, 0, 0},
		{"i-aligned", 0, 4, 0}, // i0 == k0, j0 != k0: X=V, U=W
		{"j-aligned", 4, 0, 0}, // j0 == k0, i0 != k0: X=U, V=W
		{"disjoint", 4, 4, 0},  // all four distinct
		{"reverse-k", 0, 0, 4}, // k-range after the block
	}
	rng := rand.New(rand.NewSource(11))
	in := matrix.NewSquare[float64](n)
	// Diagonally dominant keeps GaussElim/LUFactor divisions finite.
	in.Apply(func(i, j int, _ float64) float64 {
		if i == j {
			return 16 + rng.Float64()
		}
		return rng.NormFloat64()
	})

	for _, o := range ops {
		for _, st := range sets {
			for _, b := range blocks {
				label := fmt.Sprintf("%s/%s/%s", o.name, st.name, b.name)
				want := in.Clone()
				igepKernel[float64](want, o.op.Func(), st.set, b.i0, b.j0, b.k0, s)
				got := runTileBlock(in, o.op, st.set, b.i0, b.j0, b.k0, s)
				bitsEqual(t, label, want, got)
			}
		}
	}
}

// TestIGEPBlocksMatchesRecursion: the enumeration visits exactly the
// blocks the real recursion visits, in the same order — the contract
// the out-of-core prefetcher depends on.
func TestIGEPBlocksMatchesRecursion(t *testing.T) {
	for _, tc := range []struct {
		n, base int
		set     UpdateSet
	}{
		{16, 4, Full{}},
		{16, 4, Gaussian{}},
		{16, 2, LU{}},
		{8, 8, Full{}},
		{8, 1, Full{}},
	} {
		want := IGEPBlocks(tc.n, tc.base, tc.set, true)
		var got []Block
		m := matrix.NewSquare[float64](tc.n)
		hook := func(i0, j0, k0, s int) bool {
			got = append(got, Block{I: i0, J: j0, K: k0, S: s})
			return true
		}
		RunIGEP[float64](m, MinPlus[float64]{}, tc.set,
			WithBaseSize[float64](tc.base), WithBaseCase[float64](hook))
		if len(got) != len(want) {
			t.Fatalf("n=%d base=%d %T: %d blocks visited, enumeration has %d",
				tc.n, tc.base, tc.set, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d base=%d %T: block %d visited %+v, enumerated %+v",
					tc.n, tc.base, tc.set, i, got[i], want[i])
			}
		}
	}
}

// TestWithBaseCaseFallThrough: a hook returning false leaves the
// built-in kernels in charge, bit-identically.
func TestWithBaseCaseFallThrough(t *testing.T) {
	const n = 16
	rng := rand.New(rand.NewSource(5))
	in := matrix.NewSquare[float64](n)
	in.Apply(func(i, j int, _ float64) float64 { return float64(rng.Intn(100)) })

	want := in.Clone()
	RunIGEP[float64](want, MinPlus[float64]{}, Full{}, WithBaseSize[float64](4))

	calls := 0
	got := in.Clone()
	RunIGEP[float64](got, MinPlus[float64]{}, Full{},
		WithBaseSize[float64](4),
		WithBaseCase[float64](func(i0, j0, k0, s int) bool { calls++; return false }))
	if calls == 0 {
		t.Fatal("hook never called")
	}
	bitsEqual(t, "fall-through", want, got)
}
