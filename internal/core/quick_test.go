package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gep/internal/matrix"
)

// Property-based tests (testing/quick) over randomly generated GEP
// instances. Each property quantifies over the instance space: update
// set density, matrix contents, sizes and base-kernel sizes all vary.

// instance decodes quick's random seeds into a GEP instance.
type instance struct {
	n    int
	set  *Explicit
	in   *matrix.Dense[int64]
	base int
}

func decodeInstance(seed int64, sizeExp uint8, density uint8, baseExp uint8) instance {
	rng := rand.New(rand.NewSource(seed))
	n := 1 << (sizeExp % 5) // 1..16
	p := 0.15 + 0.8*float64(density%100)/100
	set := NewExplicit(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if rng.Float64() < p {
					set.Add(i, j, k)
				}
			}
		}
	}
	in := matrix.NewSquare[int64](n)
	in.Apply(func(i, j int, _ int64) int64 { return rng.Int63n(2000) - 1000 })
	base := 1 << (baseExp % 4) // 1..8
	return instance{n: n, set: set, in: in, base: base}
}

var quickF UpdateFunc[int64] = func(i, j, k int, x, u, v, w int64) int64 {
	return 3*x - 2*u + v + 7*w + int64(k)
}

// Property: C-GEP (both variants, any base size) equals iterative GEP
// on every instance.
func TestQuickCGEPEqualsGEP(t *testing.T) {
	prop := func(seed int64, sizeExp, density, baseExp uint8) bool {
		inst := decodeInstance(seed, sizeExp, density, baseExp)
		want := inst.in.Clone()
		RunGEP[int64](want, quickF, inst.set)
		got := inst.in.Clone()
		RunCGEP[int64](got, quickF, inst.set, WithBaseSize[int64](inst.base))
		if !matrix.Equal(want, got) {
			return false
		}
		compact := inst.in.Clone()
		RunCGEPCompact[int64](compact, quickF, inst.set, WithBaseSize[int64](inst.base))
		return matrix.Equal(want, compact)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: I-GEP applies exactly |Σ_G ∩ [0,n)³| updates, regardless
// of instance (Theorem 2.1(a,b) in counting form).
func TestQuickIGEPUpdateCount(t *testing.T) {
	prop := func(seed int64, sizeExp, density uint8) bool {
		inst := decodeInstance(seed, sizeExp, density, 0)
		count := 0
		counting := UpdateFunc[int64](func(i, j, k int, x, u, v, w int64) int64 {
			count++
			return quickF(i, j, k, x, u, v, w)
		})
		c := inst.in.Clone()
		RunIGEP[int64](c, counting, inst.set)
		return count == inst.set.Len()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: I-GEP and the ABCD recursion produce identical outputs on
// every instance (they refine the same partial order with the same
// read semantics), even when I-GEP itself diverges from G.
func TestQuickABCDEqualsIGEP(t *testing.T) {
	prop := func(seed int64, sizeExp, density, baseExp uint8) bool {
		inst := decodeInstance(seed, sizeExp, density, baseExp)
		a := inst.in.Clone()
		RunIGEP[int64](a, quickF, inst.set, WithBaseSize[int64](inst.base))
		b := inst.in.Clone()
		RunABCD[int64](b, quickF, inst.set, WithBaseSize[int64](inst.base))
		return matrix.Equal(a, b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: pruning never changes results, for I-GEP and C-GEP alike.
func TestQuickPruningNeutral(t *testing.T) {
	prop := func(seed int64, sizeExp, density uint8) bool {
		inst := decodeInstance(seed, sizeExp, density, 1)
		a := inst.in.Clone()
		RunIGEP[int64](a, quickF, inst.set, WithPrune[int64](true))
		b := inst.in.Clone()
		RunIGEP[int64](b, quickF, inst.set, WithPrune[int64](false))
		if !matrix.Equal(a, b) {
			return false
		}
		c := inst.in.Clone()
		RunCGEP[int64](c, quickF, inst.set, WithPrune[int64](true))
		d := inst.in.Clone()
		RunCGEP[int64](d, quickF, inst.set, WithPrune[int64](false))
		return matrix.Equal(c, d)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: cells with no updates in Σ_G are never written by any
// engine (frame condition).
func TestQuickUntouchedCellsPreserved(t *testing.T) {
	prop := func(seed int64, sizeExp, density uint8) bool {
		inst := decodeInstance(seed, sizeExp, density, 0)
		touched := make(map[[2]int]bool)
		for _, tr := range inst.set.Triples() {
			touched[[2]int{tr[0], tr[1]}] = true
		}
		for _, run := range []func(m *matrix.Dense[int64]){
			func(m *matrix.Dense[int64]) { RunGEP[int64](m, quickF, inst.set) },
			func(m *matrix.Dense[int64]) { RunIGEP[int64](m, quickF, inst.set) },
			func(m *matrix.Dense[int64]) { RunCGEP[int64](m, quickF, inst.set) },
			func(m *matrix.Dense[int64]) { RunCGEPCompact[int64](m, quickF, inst.set) },
		} {
			m := inst.in.Clone()
			run(m)
			for i := 0; i < inst.n; i++ {
				for j := 0; j < inst.n; j++ {
					if !touched[[2]int{i, j}] && m.At(i, j) != inst.in.At(i, j) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: τ consistency — Tau(i,j,l) is the maximum set member <= l,
// for all the analytic sets, cross-checked against the generic scan.
func TestQuickTauConsistency(t *testing.T) {
	sets := []TauSet{Full{}, Gaussian{}, LU{}}
	prop := func(i8, j8, l8, which uint8) bool {
		n := 32
		i, j, l := int(i8)%n, int(j8)%n, int(l8)%n
		s := sets[int(which)%len(sets)]
		got := s.Tau(i, j, l)
		// Generic downward scan using only Contains.
		want := -1
		for k := l; k >= 0; k-- {
			if s.Contains(i, j, k) {
				want = k
				break
			}
		}
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Intersects agrees with brute-force box membership for the
// analytic sets.
func TestQuickIntersectsConsistency(t *testing.T) {
	sets := []UpdateSet{Full{}, Gaussian{}, LU{}}
	prop := func(a, b, c, d, e, f, which uint8) bool {
		n := 12
		i1, i2 := int(a)%n, int(b)%n
		if i1 > i2 {
			i1, i2 = i2, i1
		}
		j1, j2 := int(c)%n, int(d)%n
		if j1 > j2 {
			j1, j2 = j2, j1
		}
		k1, k2 := int(e)%n, int(f)%n
		if k1 > k2 {
			k1, k2 = k2, k1
		}
		s := sets[int(which)%len(sets)]
		want := false
		for i := i1; i <= i2 && !want; i++ {
			for j := j1; j <= j2 && !want; j++ {
				for k := k1; k <= k2 && !want; k++ {
					want = s.Contains(i, j, k)
				}
			}
		}
		return s.Intersects(i1, i2, j1, j2, k1, k2) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
