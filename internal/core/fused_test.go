package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"gep/internal/matrix"
)

// sameBits is the equality the differential tests assert: identical
// bit patterns. Plain == would reject NaN == NaN, and the muladd/Full
// instances overflow to NaN by design (the magnitude squares at every
// k), which is exactly where order-of-operation bugs would hide.
func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// Differential tests for the fused block kernels (ops.go): every
// engine must produce bit-identical output whether the op is passed as
// the fused struct (block kernels engage on flat storage) or as its
// bare Func (flat path with the per-element indirect call) or run over
// an opaque wrapper grid (fully generic path). The fused kernels exist
// purely for speed; any observable difference is a bug.

// fusedCase pairs a fused op with the update sets it is used with and
// an input generator whose matrices keep the arithmetic exact or
// well-ordered (diagonally dominant for the division-based ops).
type fusedFloatCase struct {
	name string
	op   Op[float64]
	sets map[string]UpdateSet
	gen  func(rng *rand.Rand, n int) *matrix.Dense[float64]
}

func fusedFloatCases() []fusedFloatCase {
	uniform := func(rng *rand.Rand, n int) *matrix.Dense[float64] {
		m := matrix.NewSquare[float64](n)
		m.Apply(func(i, j int, _ float64) float64 { return rng.Float64()*2 - 1 })
		return m
	}
	return []fusedFloatCase{
		{
			name: "minplus",
			op:   MinPlus[float64]{},
			sets: map[string]UpdateSet{"full": Full{}, "gaussian": Gaussian{}, "lu": LU{}},
			gen:  floydWarshallInput,
		},
		{
			name: "muladd",
			op:   MulAdd[float64]{},
			sets: map[string]UpdateSet{"full": Full{}, "gaussian": Gaussian{}, "lu": LU{}},
			gen:  uniform,
		},
		{
			name: "gauss",
			op:   GaussElim[float64]{},
			sets: map[string]UpdateSet{"gaussian": Gaussian{}},
			gen:  diagDominant,
		},
		{
			name: "lu",
			op:   LUFactor[float64]{},
			sets: map[string]UpdateSet{"lu": LU{}},
			gen:  diagDominant,
		},
	}
}

// fusedEngines are the engines with a fused dispatch rung.
func fusedEngines(base int) map[string]func(c matrix.Grid[float64], op Op[float64], set UpdateSet) {
	return map[string]func(c matrix.Grid[float64], op Op[float64], set UpdateSet){
		"gep": func(c matrix.Grid[float64], op Op[float64], set UpdateSet) {
			RunGEP(c, op, set)
		},
		"igep": func(c matrix.Grid[float64], op Op[float64], set UpdateSet) {
			RunIGEP(c, op, set, WithBaseSize[float64](base))
		},
		"abcd": func(c matrix.Grid[float64], op Op[float64], set UpdateSet) {
			RunABCD(c, op, set, WithBaseSize[float64](base))
		},
		"abcd-par": func(c matrix.Grid[float64], op Op[float64], set UpdateSet) {
			RunABCD(c, op, set, WithBaseSize[float64](base), WithParallel[float64](8))
		},
	}
}

// TestFusedKernelsBitIdentical is the headline differential: fused op
// == bare Func == opaque generic grid, bit for bit, for every op, set,
// engine, size and base size.
func TestFusedKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range fusedFloatCases() {
		f := tc.op.Func() // bare Func: flat path without fused kernels
		for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
			in := tc.gen(rng, n)
			for setName, set := range tc.sets {
				for _, base := range []int{1, 2, 4, 8, 64} {
					for engName, run := range fusedEngines(base) {
						want := in.Clone()
						run(want, f, set)
						got := in.Clone()
						before := kernelFusedCount.Value()
						run(got, tc.op, set)
						if !got.EqualFunc(want, sameBits) {
							t.Fatalf("%s/%s/%s n=%d base=%d: fused differs from flat",
								tc.name, engName, setName, n, base)
						}
						if n >= 4 && base >= 4 && kernelFusedCount.Value() == before {
							t.Fatalf("%s/%s/%s n=%d base=%d: fused kernel never dispatched",
								tc.name, engName, setName, n, base)
						}
						opaque := in.Clone()
						run(opaqueGrid[float64]{opaque}, tc.op, set)
						if !opaque.EqualFunc(want, sameBits) {
							t.Fatalf("%s/%s/%s n=%d base=%d: generic grid differs",
								tc.name, engName, setName, n, base)
						}
					}
				}
			}
		}
	}
}

// TestFusedDisjointBitIdentical covers the RunDisjoint rung: the 4×4
// register-tiled multiply and the rank-1 min-plus kernel against the
// bare-Func flat path and the naive loop.
func TestFusedDisjointBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ops := map[string]Op[float64]{
		"muladd":  MulAdd[float64]{},
		"minplus": MinPlus[float64]{},
	}
	for opName, op := range ops {
		f := op.Func()
		for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
			a, b := randFloatMatrix(rng, n), randFloatMatrix(rng, n)
			for _, base := range []int{1, 2, 4, 8, 64} {
				want := matrix.NewSquare[float64](n)
				RunDisjoint[float64](want, a, b, b, f, Full{}, WithBaseSize[float64](base))
				got := matrix.NewSquare[float64](n)
				before := kernelFusedCount.Value()
				RunDisjoint[float64](got, a, b, b, op, Full{}, WithBaseSize[float64](base))
				if !got.EqualFunc(want, sameBits) {
					t.Fatalf("%s n=%d base=%d: fused disjoint differs from flat", opName, n, base)
				}
				if n >= 4 && base >= 4 && kernelFusedCount.Value() == before {
					t.Fatalf("%s n=%d base=%d: disjoint fused kernel never dispatched", opName, n, base)
				}
				// Gaussian restricts j per k; exercises the uncovered-
				// block fallback inside the disjoint kernels.
				wantG := matrix.NewSquare[float64](n)
				RunDisjoint[float64](wantG, a, b, b, f, Gaussian{}, WithBaseSize[float64](base))
				gotG := matrix.NewSquare[float64](n)
				RunDisjoint[float64](gotG, a, b, b, op, Gaussian{}, WithBaseSize[float64](base))
				if !gotG.EqualFunc(wantG, sameBits) {
					t.Fatalf("%s n=%d base=%d: fused disjoint (gaussian) differs", opName, n, base)
				}
			}
		}
	}
}

// TestFusedClosureBitIdentical covers the boolean-semiring op.
func TestFusedClosureBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		in := matrix.NewSquare[bool](n)
		in.Apply(func(i, j int, _ bool) bool { return i == j || rng.Float64() < 0.15 })
		f := Closure{}.Func()
		for _, base := range []int{1, 4, 64} {
			want := in.Clone()
			RunIGEP[bool](want, f, Full{}, WithBaseSize[bool](base))
			got := in.Clone()
			RunIGEP[bool](got, Closure{}, Full{}, WithBaseSize[bool](base))
			if !got.EqualFunc(want, func(a, b bool) bool { return a == b }) {
				t.Fatalf("n=%d base=%d: fused closure differs from flat", n, base)
			}
		}
	}
}

// TestFusedIntOps: the fused kernels are generic over the element
// type; int64 min-plus and multiply-accumulate are exact, so equality
// is trivial to interpret.
func TestFusedIntOps(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, n := range []int{4, 16, 64} {
		in := floydWarshallInputInt(rng, n)
		want := in.Clone()
		RunIGEP[int64](want, MinPlus[int64]{}.Func(), Full{}, WithBaseSize[int64](8))
		got := in.Clone()
		RunIGEP[int64](got, MinPlus[int64]{}, Full{}, WithBaseSize[int64](8))
		requireEqual(t, want, got, "fused int64 min-plus")

		mm := randMatrix(t, rng, n)
		wantM := mm.Clone()
		RunGEP[int64](wantM, MulAdd[int64]{}.Func(), LU{})
		gotM := mm.Clone()
		RunGEP[int64](gotM, MulAdd[int64]{}, LU{})
		requireEqual(t, wantM, gotM, "fused int64 mul-add")
	}
}

// FuzzFusedVsGeneric drives the fused dispatch with fuzzer-chosen
// size, base size, op and set, asserting bit-identity against the
// bare-Func path on every instance.
func FuzzFusedVsGeneric(fz *testing.F) {
	fz.Add(uint8(2), uint8(1), uint8(0), uint8(0), int64(1))
	fz.Add(uint8(3), uint8(6), uint8(1), uint8(1), int64(2))
	fz.Add(uint8(5), uint8(2), uint8(2), uint8(1), int64(3))
	fz.Add(uint8(6), uint8(0), uint8(3), uint8(2), int64(4))
	fz.Fuzz(func(t *testing.T, sizeExp, baseExp, opSel, setSel uint8, seed int64) {
		n := 1 << (int(sizeExp) % 7)    // 1..64
		base := 1 << (int(baseExp) % 7) // 1..64
		rng := rand.New(rand.NewSource(seed))
		cases := fusedFloatCases()
		tc := cases[int(opSel)%len(cases)]
		setNames := make([]string, 0, len(tc.sets))
		for name := range tc.sets {
			setNames = append(setNames, name)
		}
		sort.Strings(setNames) // map order is random; select deterministically
		set := tc.sets[setNames[int(setSel)%len(setNames)]]
		in := tc.gen(rng, n)
		want := in.Clone()
		RunIGEP[float64](want, tc.op.Func(), set, WithBaseSize[float64](base))
		got := in.Clone()
		RunIGEP[float64](got, tc.op, set, WithBaseSize[float64](base))
		if !got.EqualFunc(want, sameBits) {
			t.Fatalf("op=%s n=%d base=%d: fused diverged from flat", tc.name, n, base)
		}
	})
}
