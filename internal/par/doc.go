// Package par provides the bounded fork-join spawner shared by the
// parallel GEP engines (internal/core, internal/linalg, internal/apsp).
//
// The multithreaded recursions of Figure 6 expose far more parallel
// tasks than there are processors: spawning a goroutine per task
// oversubscribes the scheduler and loses the locality that makes
// work-stealing analyses (Lemma 3.1, modeled in internal/sched) work —
// a LIFO-executing worker keeps a subtree's blocks in its cache. This
// package bounds concurrency the way a work-stealing pool does at the
// "steal" boundary: a fixed budget of GOMAXPROCS worker slots, and a
// task that finds no free slot runs inline on its caller, exactly as an
// unstolen Cilk child would. Inline fallback also makes nested Spawn
// calls trivially deadlock-free: a task never blocks waiting for a
// slot.
//
// Key entry points: Spawn offers one task to the pool and returns a
// wait function (the signature core.WithSpawn expects); Do executes a
// slice of tasks as one fork-join group. Both record their
// pooled-vs-inline decisions in internal/metrics ("par.spawn.pooled",
// "par.spawn.inline"), which is the live saturation signal of the
// pool in BENCH_*.json telemetry.
package par
