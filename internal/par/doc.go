// Package par is the work-stealing fork-join runtime behind the
// parallel GEP engines (internal/core, internal/linalg, internal/apsp,
// internal/dp).
//
// The multithreaded recursions of Figure 6 expose far more parallel
// tasks than there are processors — that surplus (parallel slack) is
// what gives the paper's Theorem 3.1 its T_p = O(T_1/p + T_inf)
// guarantee, but only if the scheduler keeps it. A Runtime owns a
// long-lived worker set: each worker owns a LIFO deque it pushes and
// pops at the tail, idle workers steal FIFO from the head of a
// randomly chosen victim, and a fork at or past the depth cutoff runs
// inline on its caller by policy. LIFO self-execution reproduces the
// serial depth-first order on each worker (so a subtree's blocks stay
// in that worker's cache — the locality behind Lemma 3.1/3.2, modeled
// in internal/sched), FIFO stealing migrates the largest pending
// subtrees (so one steal pays for many local pops), and the depth
// cutoff stops forking once the slack already exceeds the worker
// count, instead of discarding slack whenever a token pool happens to
// be full. Joins help rather than block: a goroutine waiting on a
// fork executes other pending tasks (its own deque first, then
// stealing no shallower than the awaited fork), which makes nested
// fork-join deadlock-free by construction.
//
// There are two ways to get a runtime. The package-level functions
// (Spawn, Do, NewGroup, SetWorkers, ...) operate on the process-wide
// default instance, sized by GOMAXPROCS — the right choice for a
// program running one computation at a time, and the historical
// behavior of this package. NewRuntime creates an additional isolated
// instance with its own workers, deques and metrics registry: tasks
// spawned on one runtime are only ever executed by that runtime's
// workers (or inline by its callers), so concurrent computations on
// separate Runtimes cannot occupy each other's worker budgets. That
// isolation is what internal/serve builds its multi-tenant job
// service on — one Runtime per job — and it is observable: each
// runtime's counters live in its own metrics.Registry, and
// "par.spawn.pooled" == "par.local" + "par.steal" + "par.help" holds
// per registry. Engines accept a runtime through their ...On entry
// points (e.g. linalg.LUFusedParallelOn) or core.WithRuntime; passing
// nil means the default instance.
//
// A non-default Runtime has a lifecycle: Close drains its workers and
// retires it (later Spawn/Do calls run inline, staying correct), and
// Abort is best-effort cancellation — queued and future task bodies
// are skipped and joiners released, leaving results undefined, which
// is only acceptable because an aborted job's output is discarded.
// Close and Abort of the default runtime panic.
//
// Key entry points: Runtime.Spawn forks one task and returns a wait
// function (the signature core.WithSpawn expects); Runtime.Do
// executes a slice of tasks as one fork-join group; Group is the
// incremental variant. Every decision is recorded — "par.spawn.pooled"
// vs "par.spawn.inline" on the fork side, "par.local" / "par.steal" /
// "par.help" on the execution side, and a per-worker depth histogram
// ("par.w<i>.d<k>") — and lands in BENCH_*.json telemetry. See
// DESIGN.md §11 for the scheduling discipline and its cache argument,
// and §14 for runtime isolation.
package par
