// Package par is the work-stealing fork-join runtime shared by the
// parallel GEP engines (internal/core, internal/linalg, internal/apsp,
// internal/dp).
//
// The multithreaded recursions of Figure 6 expose far more parallel
// tasks than there are processors — that surplus (parallel slack) is
// what gives the paper's Theorem 3.1 its T_p = O(T_1/p + T_inf)
// guarantee, but only if the scheduler keeps it. This package runs a
// long-lived worker set sized by GOMAXPROCS (or SetWorkers): each
// worker owns a LIFO deque it pushes and pops at the tail, idle
// workers steal FIFO from the head of a randomly chosen victim, and a
// fork at or past the depth cutoff runs inline on its caller by
// policy. LIFO self-execution reproduces the serial depth-first order
// on each worker (so a subtree's blocks stay in that worker's cache —
// the locality behind Lemma 3.1/3.2, modeled in internal/sched), FIFO
// stealing migrates the largest pending subtrees (so one steal pays
// for many local pops), and the depth cutoff stops forking once the
// slack already exceeds the worker count, instead of discarding slack
// whenever a token pool happens to be full. Joins help rather than
// block: a goroutine waiting on a fork executes other pending tasks
// (its own deque first, then stealing no shallower than the awaited
// fork), which makes nested fork-join deadlock-free by construction.
//
// Key entry points: Spawn forks one task and returns a wait function
// (the signature core.WithSpawn expects); Do executes a slice of tasks
// as one fork-join group; Group is the incremental variant. Every
// decision is recorded in internal/metrics — "par.spawn.pooled" vs
// "par.spawn.inline" on the fork side, "par.local" / "par.steal" /
// "par.help" on the execution side, and a per-worker depth histogram
// ("par.w<i>.d<k>") — and lands in BENCH_*.json telemetry. See
// DESIGN.md §11 for the full discipline and its cache argument.
package par
