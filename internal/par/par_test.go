package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestDoRunsAllTasks checks completion and result visibility for flat
// and deeply nested fork-join groups.
func TestDoRunsAllTasks(t *testing.T) {
	var n atomic.Int64
	tasks := make([]func(), 100)
	for i := range tasks {
		tasks[i] = func() { n.Add(1) }
	}
	Do(tasks...)
	if got := n.Load(); got != 100 {
		t.Fatalf("Do ran %d of 100 tasks", got)
	}
}

// TestNestedSpawnNoDeadlock forces far more nested forks than worker
// slots; inline fallback must keep the recursion deadlock-free.
func TestNestedSpawnNoDeadlock(t *testing.T) {
	var sum atomic.Int64
	var rec func(depth int)
	rec = func(depth int) {
		if depth == 0 {
			sum.Add(1)
			return
		}
		Do(
			func() { rec(depth - 1) },
			func() { rec(depth - 1) },
			func() { rec(depth - 1) },
			func() { rec(depth - 1) },
		)
	}
	rec(6) // 4^6 = 4096 leaves through a pool of GOMAXPROCS slots
	if got := sum.Load(); got != 4096 {
		t.Fatalf("nested recursion completed %d of 4096 leaves", got)
	}
}

// TestSpawnBounded checks the pool never runs more than GOMAXPROCS
// spawned tasks concurrently (the wait functions synchronize, so the
// counter is exact for pooled tasks; inline tasks run on callers we
// created ourselves).
func TestSpawnBounded(t *testing.T) {
	budget := int64(runtime.GOMAXPROCS(0))
	var cur, peak atomic.Int64
	var mu sync.Mutex
	var waits []func()
	for i := 0; i < 200; i++ {
		w := Spawn(func() {
			c := cur.Add(1)
			mu.Lock()
			if c > peak.Load() {
				peak.Store(c)
			}
			mu.Unlock()
			cur.Add(-1)
		})
		waits = append(waits, w)
	}
	for _, w := range waits {
		w()
	}
	// Callers count too: a saturated Spawn runs inline on this
	// goroutine, so concurrency can reach budget+1 but no further.
	if p := peak.Load(); p > budget+1 {
		t.Fatalf("peak concurrency %d exceeds pool budget %d(+1 inline)", p, budget)
	}
}

// TestSetWorkersResizes pins an explicit budget and checks Workers
// reflects it, then restores GOMAXPROCS tracking for other tests.
func TestSetWorkersResizes(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	defer resize(orig, false) // back to tracking mode

	SetWorkers(3)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", got)
	}
	// Pinned budgets ignore GOMAXPROCS moves.
	runtime.GOMAXPROCS(orig + 1)
	defer runtime.GOMAXPROCS(orig)
	if got := Workers(); got != 3 {
		t.Fatalf("pinned Workers() = %d after GOMAXPROCS change, want 3", got)
	}
	// The pool still works at the new size.
	var n atomic.Int64
	Do(func() { n.Add(1) }, func() { n.Add(1) }, func() { n.Add(1) })
	if n.Load() != 3 {
		t.Fatal("Do lost tasks after SetWorkers")
	}
	if Workers() < 1 {
		t.Fatal("worker budget below 1")
	}
	SetWorkers(0) // clamps to 1
	if got := Workers(); got != 1 {
		t.Fatalf("SetWorkers(0) gave %d workers, want 1", got)
	}
}

// TestWorkersTracksGOMAXPROCS: without a pinned budget, the pool
// follows runtime.GOMAXPROCS instead of the value frozen at package
// init.
func TestWorkersTracksGOMAXPROCS(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	defer func() {
		runtime.GOMAXPROCS(orig)
		resize(orig, false)
	}()
	resize(orig, false) // ensure tracking mode

	if got := Workers(); got != orig {
		t.Fatalf("Workers() = %d, want GOMAXPROCS = %d", got, orig)
	}
	next := orig + 2
	runtime.GOMAXPROCS(next)
	if got := Workers(); got != next {
		t.Fatalf("Workers() = %d after GOMAXPROCS(%d)", got, next)
	}
	// Tasks spawned across a resize still complete and release cleanly.
	var n atomic.Int64
	var waits []func()
	for i := 0; i < 8; i++ {
		waits = append(waits, Spawn(func() { n.Add(1) }))
		if i == 3 {
			runtime.GOMAXPROCS(orig)
		}
	}
	for _, w := range waits {
		w()
	}
	if n.Load() != 8 {
		t.Fatalf("completed %d of 8 tasks across a resize", n.Load())
	}
}
