package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"gep/internal/metrics"
)

// TestDoRunsAllTasks checks completion and result visibility for flat
// fork-join groups.
func TestDoRunsAllTasks(t *testing.T) {
	var n atomic.Int64
	tasks := make([]func(), 100)
	for i := range tasks {
		tasks[i] = func() { n.Add(1) }
	}
	Do(tasks...)
	if got := n.Load(); got != 100 {
		t.Fatalf("Do ran %d of 100 tasks", got)
	}
}

// TestNestedSpawnNoDeadlock forces far more nested forks than workers;
// the depth cutoff and join-helping must keep the recursion
// deadlock-free.
func TestNestedSpawnNoDeadlock(t *testing.T) {
	var sum atomic.Int64
	var rec func(depth int)
	rec = func(depth int) {
		if depth == 0 {
			sum.Add(1)
			return
		}
		Do(
			func() { rec(depth - 1) },
			func() { rec(depth - 1) },
			func() { rec(depth - 1) },
			func() { rec(depth - 1) },
		)
	}
	rec(6) // 4^6 = 4096 leaves through the worker set
	if got := sum.Load(); got != 4096 {
		t.Fatalf("nested recursion completed %d of 4096 leaves", got)
	}
}

// TestSpawnBounded checks concurrency never exceeds the worker count
// plus the one goroutine that may be helping inside a join.
func TestSpawnBounded(t *testing.T) {
	budget := int64(Workers())
	var cur, peak atomic.Int64
	var mu sync.Mutex
	var waits []func()
	for i := 0; i < 200; i++ {
		w := Spawn(func() {
			c := cur.Add(1)
			mu.Lock()
			if c > peak.Load() {
				peak.Store(c)
			}
			mu.Unlock()
			cur.Add(-1)
		})
		waits = append(waits, w)
	}
	for _, w := range waits {
		w()
	}
	// The caller counts too: it runs inline forks and helps during
	// joins, so concurrency can reach budget+1 but no further.
	if p := peak.Load(); p > budget+1 {
		t.Fatalf("peak concurrency %d exceeds %d workers (+1 joiner)", p, budget)
	}
}

// TestSetWorkersResizes pins an explicit size and checks Workers
// reflects it, then restores GOMAXPROCS tracking for other tests.
func TestSetWorkersResizes(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	defer ResetWorkers()

	SetWorkers(3)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", got)
	}
	// Pinned sizes ignore GOMAXPROCS moves.
	runtime.GOMAXPROCS(orig + 1)
	defer runtime.GOMAXPROCS(orig)
	if got := Workers(); got != 3 {
		t.Fatalf("pinned Workers() = %d after GOMAXPROCS change, want 3", got)
	}
	// The runtime still works at the new size.
	var n atomic.Int64
	Do(func() { n.Add(1) }, func() { n.Add(1) }, func() { n.Add(1) })
	if n.Load() != 3 {
		t.Fatal("Do lost tasks after SetWorkers")
	}
	if Workers() < 1 {
		t.Fatal("worker count below 1")
	}
	SetWorkers(0) // clamps to 1
	if got := Workers(); got != 1 {
		t.Fatalf("SetWorkers(0) gave %d workers, want 1", got)
	}
}

// TestWorkersTracksGOMAXPROCS: without a pinned size, the worker set
// follows runtime.GOMAXPROCS instead of the value frozen at package
// init.
func TestWorkersTracksGOMAXPROCS(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	defer func() {
		runtime.GOMAXPROCS(orig)
		ResetWorkers()
	}()
	ResetWorkers() // ensure tracking mode

	if got := Workers(); got != orig {
		t.Fatalf("Workers() = %d, want GOMAXPROCS = %d", got, orig)
	}
	next := orig + 2
	runtime.GOMAXPROCS(next)
	if got := Workers(); got != next {
		t.Fatalf("Workers() = %d after GOMAXPROCS(%d)", got, next)
	}
	// Tasks spawned across a resize still complete: the retiring
	// generation drains, and any straggler is executed by its joiner.
	var n atomic.Int64
	var waits []func()
	for i := 0; i < 8; i++ {
		waits = append(waits, Spawn(func() { n.Add(1) }))
		if i == 3 {
			runtime.GOMAXPROCS(orig)
		}
	}
	for _, w := range waits {
		w()
	}
	if n.Load() != 8 {
		t.Fatalf("completed %d of 8 tasks across a resize", n.Load())
	}
}

// spawnDelta runs f and returns the deltas of the spawn- and
// execution-side counters across it.
func spawnDelta(f func()) (pooled, inline, local, steal, help int64) {
	before := metrics.Snapshot()
	f()
	d := metrics.Diff(before, metrics.Snapshot())
	return d["par.spawn.pooled"], d["par.spawn.inline"],
		d["par.local"], d["par.steal"], d["par.help"]
}

// TestSpawnAccountingExact asserts the two accounting invariants the
// telemetry promises: every Spawn is counted exactly once as pooled or
// inline, and every pooled task is executed (and counted) exactly once
// as local, stolen, or helped — with no drops or double counts even
// when SetWorkers retires a generation mid-stream.
func TestSpawnAccountingExact(t *testing.T) {
	defer ResetWorkers()

	check := func(name string, spawns int64, body func()) {
		t.Helper()
		pooled, inline, local, steal, help := spawnDelta(body)
		if pooled+inline != spawns {
			t.Fatalf("%s: pooled(%d) + inline(%d) = %d, want exactly %d spawns",
				name, pooled, inline, pooled+inline, spawns)
		}
		if got := local + steal + help; got != pooled {
			t.Fatalf("%s: local(%d) + steal(%d) + help(%d) = %d executed, want pooled = %d",
				name, local, steal, help, got, pooled)
		}
	}

	// Serial worker set: everything must inline.
	SetWorkers(1)
	check("p=1", 50, func() {
		var waits []func()
		for i := 0; i < 50; i++ {
			waits = append(waits, Spawn(func() {}))
		}
		for _, w := range waits {
			w()
		}
	})

	// Multi-worker set: mix of local pushes (from workers), injected
	// pushes (from this test goroutine) and cutoff inlining. Do(4)
	// forks 3 and runs the last task directly, so the outer group
	// spawns 3 and each of the 4 bodies spawns 3 more: 15 total.
	SetWorkers(4)
	check("p=4 nested", 15, func() {
		Do(
			func() { Do(func() {}, func() {}, func() {}, func() {}) },
			func() { Do(func() {}, func() {}, func() {}, func() {}) },
			func() { Do(func() {}, func() {}, func() {}, func() {}) },
			func() { Do(func() {}, func() {}, func() {}, func() {}) },
		)
	})

	// Resize mid-stream: spawn against a 4-worker set, retire it to a
	// 2-worker set while waits are outstanding, then join everything.
	check("resize mid-stream", 40, func() {
		var waits []func()
		for i := 0; i < 40; i++ {
			waits = append(waits, Spawn(func() {}))
			if i == 20 {
				SetWorkers(2)
			}
		}
		for _, w := range waits {
			w()
		}
	})
}

// TestSpawnCountPrecise pins down the exact spawn arithmetic of Do
// that TestSpawnAccountingExact's nested case relies on.
func TestSpawnCountPrecise(t *testing.T) {
	defer ResetWorkers()
	SetWorkers(1)
	pooled, inline, _, _, _ := spawnDelta(func() {
		Do(func() {}, func() {}, func() {}, func() {})
	})
	if pooled != 0 || inline != 3 {
		t.Fatalf("Do(4) at p=1: pooled=%d inline=%d, want 0/3 (last task runs direct)", pooled, inline)
	}
}

// TestWorkDistribution checks the deque discipline end to end: a task
// running on a worker pushes its forks onto its own deque
// (par.spawn.local), and while that worker blocks, some other
// goroutine — the idle second worker stealing FIFO, or the joiner
// helping — must pick a child up. The parent blocks until one child
// has run, so distribution off the home deque is forced, not timing-
// dependent.
func TestWorkDistribution(t *testing.T) {
	defer ResetWorkers()
	SetWorkers(2)

	parentStarted := make(chan struct{})
	childRan := make(chan struct{}, 4)
	before := metrics.Snapshot()
	parentWait := Spawn(func() {
		close(parentStarted)
		var g Group
		for i := 0; i < 4; i++ {
			g.Go(func() { childRan <- struct{}{} })
		}
		// The parent's goroutine is blocked here, outside any join:
		// only a thief or a helping joiner can run the first child.
		<-childRan
		g.Wait()
	})
	// Don't join until the parent is running on a worker, so its forks
	// are local pushes rather than injections.
	<-parentStarted
	parentWait()
	d := metrics.Diff(before, metrics.Snapshot())
	if d["par.spawn.local"] < 4 {
		t.Fatalf("par.spawn.local = %d, want >= 4 (worker pushing its own forks)", d["par.spawn.local"])
	}
	if d["par.steal"]+d["par.help"] < 1 {
		t.Fatalf("steal=%d help=%d: no task left its home deque", d["par.steal"], d["par.help"])
	}
}

// TestDequeDiscipline pins the queue orders the scheduler relies on:
// owners pop newest-first (LIFO), thieves take oldest-first (FIFO),
// and depth-restricted steals skip shallower tasks without reordering
// the rest.
func TestDequeDiscipline(t *testing.T) {
	mk := func(depth int32) *wtask { return &wtask{depth: depth} }
	var d deque
	t0, t1, t2 := mk(0), mk(1), mk(2)
	d.push(t0)
	d.push(t1)
	d.push(t2)
	if got := d.pop(); got != t2 {
		t.Fatal("pop is not LIFO")
	}
	d.push(t2)
	if got := d.stealMin(0); got != t0 {
		t.Fatal("stealMin(0) is not FIFO")
	}
	if got := d.stealMin(2); got != t2 {
		t.Fatal("stealMin(2) did not skip the shallower task")
	}
	if got := d.stealMin(2); got != nil {
		t.Fatal("stealMin(2) returned a task below the depth bound")
	}
	if got := d.stealMin(0); got != t1 {
		t.Fatal("depth-restricted steal disturbed the remaining order")
	}
	if d.pop() != nil || d.stealMin(0) != nil {
		t.Fatal("deque not empty after draining")
	}
}

// TestDepthCutoffInlines verifies the policy cutoff: forks at depth >=
// cutoff run inline even though workers and deque space are free.
func TestDepthCutoffInlines(t *testing.T) {
	defer func() {
		SetDepthCutoff(0)
		ResetWorkers()
	}()
	SetWorkers(4)
	SetDepthCutoff(1) // every nested fork (depth >= 1) inlines

	var leaves atomic.Int64
	pooled, inline, _, _, _ := spawnDelta(func() {
		var rec func(d int)
		rec = func(d int) {
			if d == 0 {
				leaves.Add(1)
				return
			}
			Do(func() { rec(d - 1) }, func() { rec(d - 1) })
		}
		rec(5)
	})
	if leaves.Load() != 32 {
		t.Fatalf("completed %d of 32 leaves", leaves.Load())
	}
	// Depth counts Spawn edges: forks made while executing a pooled
	// task sit at depth >= 1 and must inline under cutoff 1. Only the
	// calling goroutine's direct recursion chain forks at depth 0 —
	// once per level, 5 in total. 2^5-1 = 31 spawns altogether.
	if pooled != 5 || inline != 26 {
		t.Fatalf("cutoff 1: pooled=%d inline=%d, want 5/26", pooled, inline)
	}
	if got := DepthCutoff(); got != 1 {
		t.Fatalf("DepthCutoff() = %d, want 1", got)
	}
}

// TestGroupWaitsAll checks the incremental fork-join scope.
func TestGroupWaitsAll(t *testing.T) {
	var n atomic.Int64
	var g Group
	for i := 0; i < 37; i++ {
		g.Go(func() { n.Add(1) })
	}
	g.Wait()
	if n.Load() != 37 {
		t.Fatalf("Group completed %d of 37 tasks", n.Load())
	}
	// Reusable after Wait.
	g.Go(func() { n.Add(1) })
	g.Wait()
	if n.Load() != 38 {
		t.Fatal("Group not reusable after Wait")
	}
}

// TestJoinHelpsOwnForks: with a single worker busy on an unrelated
// blocking task, a joiner must execute its own pooled forks itself
// (the par.help path) rather than deadlocking behind the busy worker.
func TestJoinHelpsOwnForks(t *testing.T) {
	defer ResetWorkers()
	SetWorkers(2)

	block := make(chan struct{})
	var busyStarted sync.WaitGroup
	busyStarted.Add(2)
	busy1 := Spawn(func() { busyStarted.Done(); <-block })
	busy2 := Spawn(func() { busyStarted.Done(); <-block })
	busyStarted.Wait() // both workers are now provably occupied
	var ran atomic.Int64
	_, _, _, _, help := spawnDelta(func() {
		w := Spawn(func() { ran.Add(1) })
		w() // both workers blocked: only helping can run this
	})
	close(block)
	busy1()
	busy2()
	if ran.Load() != 1 {
		t.Fatal("join did not run the pending task")
	}
	if help < 1 {
		t.Fatalf("expected the joiner to help (par.help >= 1), got %d", help)
	}
}
