package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestDoRunsAllTasks checks completion and result visibility for flat
// and deeply nested fork-join groups.
func TestDoRunsAllTasks(t *testing.T) {
	var n atomic.Int64
	tasks := make([]func(), 100)
	for i := range tasks {
		tasks[i] = func() { n.Add(1) }
	}
	Do(tasks...)
	if got := n.Load(); got != 100 {
		t.Fatalf("Do ran %d of 100 tasks", got)
	}
}

// TestNestedSpawnNoDeadlock forces far more nested forks than worker
// slots; inline fallback must keep the recursion deadlock-free.
func TestNestedSpawnNoDeadlock(t *testing.T) {
	var sum atomic.Int64
	var rec func(depth int)
	rec = func(depth int) {
		if depth == 0 {
			sum.Add(1)
			return
		}
		Do(
			func() { rec(depth - 1) },
			func() { rec(depth - 1) },
			func() { rec(depth - 1) },
			func() { rec(depth - 1) },
		)
	}
	rec(6) // 4^6 = 4096 leaves through a pool of GOMAXPROCS slots
	if got := sum.Load(); got != 4096 {
		t.Fatalf("nested recursion completed %d of 4096 leaves", got)
	}
}

// TestSpawnBounded checks the pool never runs more than GOMAXPROCS
// spawned tasks concurrently (the wait functions synchronize, so the
// counter is exact for pooled tasks; inline tasks run on callers we
// created ourselves).
func TestSpawnBounded(t *testing.T) {
	budget := int64(runtime.GOMAXPROCS(0))
	var cur, peak atomic.Int64
	var mu sync.Mutex
	var waits []func()
	for i := 0; i < 200; i++ {
		w := Spawn(func() {
			c := cur.Add(1)
			mu.Lock()
			if c > peak.Load() {
				peak.Store(c)
			}
			mu.Unlock()
			cur.Add(-1)
		})
		waits = append(waits, w)
	}
	for _, w := range waits {
		w()
	}
	// Callers count too: a saturated Spawn runs inline on this
	// goroutine, so concurrency can reach budget+1 but no further.
	if p := peak.Load(); p > budget+1 {
		t.Fatalf("peak concurrency %d exceeds pool budget %d(+1 inline)", p, budget)
	}
}
