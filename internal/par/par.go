package par

import (
	"runtime"

	"gep/internal/metrics"
)

// sem holds one token per worker slot. The budget is fixed at package
// init from GOMAXPROCS; a token is held for the lifetime of the
// spawned goroutine.
var sem = make(chan struct{}, runtime.GOMAXPROCS(0))

// Telemetry: how often tasks actually reached a pool worker vs ran
// inline on their caller. The ratio is the live saturation signal —
// near-zero inline runs mean spare slots, mostly-inline means the pool
// is the bottleneck. Snapshots land in BENCH_*.json via internal/bench.
var (
	pooledCount = metrics.New("par.spawn.pooled")
	inlineCount = metrics.New("par.spawn.inline")
)

// Spawn runs task on a pool worker when a slot is free and inline on
// the caller otherwise. The returned wait function blocks until task
// has completed (it returns immediately after an inline run). The
// signature matches core.WithSpawn.
func Spawn(task func()) (wait func()) {
	select {
	case sem <- struct{}{}:
		pooledCount.Inc()
		done := make(chan struct{})
		go func() {
			defer func() {
				<-sem
				close(done)
			}()
			task()
		}()
		return func() { <-done }
	default:
		inlineCount.Inc()
		task()
		return func() {}
	}
}

// Do executes the tasks as one fork-join group: all but the last are
// offered to the pool, the last runs on the calling goroutine, and Do
// returns only when every task has completed.
func Do(tasks ...func()) {
	switch len(tasks) {
	case 0:
		return
	case 1:
		tasks[0]()
		return
	}
	waits := make([]func(), 0, len(tasks)-1)
	for _, t := range tasks[:len(tasks)-1] {
		waits = append(waits, Spawn(t))
	}
	tasks[len(tasks)-1]()
	for _, w := range waits {
		w()
	}
}
