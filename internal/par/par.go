package par

import "runtime"

func gomaxprocs() int { return runtime.GOMAXPROCS(0) }

// SetWorkers fixes the worker set size to n (clamped to >= 1) and
// stops tracking GOMAXPROCS; the previous generation of workers drains
// its deques and retires. Use ResetWorkers to return to automatic
// sizing.
func SetWorkers(n int) { resize(n, true) }

// ResetWorkers returns the runtime to its default mode: a worker set
// sized by (and tracking) runtime.GOMAXPROCS.
func ResetWorkers() { resize(gomaxprocs(), false) }

// Workers returns the current worker-set size.
func Workers() int { return len(current().workers) }

// SetDepthCutoff overrides the fork-depth serial cutoff: Spawns at
// depth >= d run inline on their caller. d <= 0 restores the automatic
// policy (log2(workers) + 2, enough fork levels to saturate the
// workers with 4-8x slack for stealing). The change rebuilds the
// worker set, so it is a test-and-experiment knob, not a hot-path one.
func SetDepthCutoff(d int32) {
	sched.cutoffOverride.Store(max32(d, 0))
	resize(Workers(), sched.pinned.Load())
}

// DepthCutoff returns the active fork-depth cutoff.
func DepthCutoff() int32 { return current().cutoff }

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

func noopWait() {}

// Spawn forks task and returns a function that waits for it to
// complete. The signature matches core.WithSpawn.
//
// Routing policy, in order:
//
//  1. One worker, or fork depth at/past the cutoff: run inline on the
//     caller and return a no-op wait. This is a policy decision made
//     before any queueing — under the old semaphore pool, deep forks
//     ran inline only because the tokens happened to be taken, which
//     discarded exactly the parallel slack the A/B/C/D recursion
//     creates at its deep fork points.
//  2. Caller is a worker of the live generation: push onto its own
//     deque (LIFO end). The owner pops newest-first, so an unstolen
//     child runs in the same order, on the same goroutine, with the
//     same warm cache as the serial execution — the work-first
//     discipline that preserves the Lemma 3.1/3.2 locality arguments.
//  3. Otherwise (external goroutine, e.g. the engine's initial call):
//     push onto a pseudo-randomly chosen worker's deque.
//
// The returned wait helps: while the task is unfinished, the waiting
// goroutine executes other pending tasks (own deque first, then
// stealing no shallower than the awaited fork) rather than blocking a
// worker, so joins can never deadlock the worker set, and a task
// stranded by a concurrent SetWorkers resize is executed by its own
// joiner.
func Spawn(task func()) (wait func()) {
	rt := current()
	if len(rt.workers) == 1 {
		// Serial budget: every fork inlines, no ids, no queues — the
		// p = 1 wall time is the serial wall time plus one branch.
		inlineCount.Inc()
		task()
		return noopWait
	}
	id := goid()
	ctx := lookupCtx(id)
	var depth int32
	if ctx != nil {
		depth = ctx.depth + 1
	}
	if depth >= rt.cutoff {
		inlineCount.Inc()
		runInline(id, ctx, depth, task)
		return noopWait
	}
	t := &wtask{fn: task, depth: depth, done: make(chan struct{})}
	pooledCount.Inc()
	if w := workerOf(ctx, rt); w != nil {
		localSpawnCount.Inc()
		w.dq.push(t)
	} else {
		injectSpawnCount.Inc()
		injectVictim(rt).dq.push(t)
	}
	rt.wakeOne()
	return func() { rt.join(t) }
}

// workerOf returns the caller's worker when it belongs to the live
// generation, else nil.
func workerOf(ctx *gctx, rt *scheduler) *worker {
	if ctx != nil && ctx.w != nil && ctx.w.rt == rt {
		return ctx.w
	}
	return nil
}

// runInline executes a policy-inlined fork on the caller, keeping the
// goroutine's fork depth current so nested Spawns keep counting levels
// (otherwise an inlined subtree would restart the cutoff clock).
func runInline(id uint64, ctx *gctx, depth int32, task func()) {
	if ctx == nil {
		ctx = &gctx{}
		registerCtx(id, ctx)
		defer unregisterCtx(id)
	}
	old := ctx.depth
	ctx.depth = depth
	task()
	ctx.depth = old
}

// Do executes the tasks as one fork-join group: all but the last are
// forked, the last runs on the calling goroutine, and Do returns only
// when every task has completed.
func Do(tasks ...func()) {
	switch len(tasks) {
	case 0:
		return
	case 1:
		tasks[0]()
		return
	}
	waits := make([]func(), 0, len(tasks)-1)
	for _, t := range tasks[:len(tasks)-1] {
		waits = append(waits, Spawn(t))
	}
	tasks[len(tasks)-1]()
	for _, w := range waits {
		w()
	}
}

// Group is an incremental fork-join scope for call sites that fork a
// data-dependent number of tasks: Go forks, Wait joins them all. The
// zero value is ready to use. A Group is not safe for concurrent use
// by multiple goroutines (fork-join scopes are owned by one frame);
// after Wait it is empty and may be reused.
type Group struct {
	waits []func()
}

// Go forks task into the group.
func (g *Group) Go(task func()) { g.waits = append(g.waits, Spawn(task)) }

// Wait blocks until every task forked since the last Wait completes.
func (g *Group) Wait() {
	for _, w := range g.waits {
		w()
	}
	g.waits = g.waits[:0]
}
