package par

import (
	"runtime"
	"sync"
	"sync/atomic"

	"gep/internal/metrics"
)

// The worker budget follows runtime.GOMAXPROCS instead of being frozen
// at package init: every Spawn re-checks the current GOMAXPROCS and
// swaps in a fresh semaphore when it changed (e.g. a test or caller
// resized the runtime after this package was linked in). SetWorkers
// pins an explicit budget, after which GOMAXPROCS changes are ignored.
//
// A spawned goroutine releases its token into the exact channel it
// acquired from, so resizing never corrupts accounting: tokens of a
// retired semaphore drain into the retired channel and are simply
// garbage-collected with it.
var pool struct {
	mu  sync.Mutex
	sem atomic.Pointer[chan struct{}]
	// procs is the GOMAXPROCS value sem was sized from, or 0 when the
	// size was pinned by SetWorkers.
	procs  atomic.Int64
	pinned atomic.Bool
}

func init() {
	resize(runtime.GOMAXPROCS(0), false)
}

// resize installs a fresh semaphore with n slots. Callers hold no lock;
// racing resizes are serialized by pool.mu.
func resize(n int, pin bool) {
	if n < 1 {
		n = 1
	}
	pool.mu.Lock()
	defer pool.mu.Unlock()
	sem := make(chan struct{}, n)
	pool.sem.Store(&sem)
	pool.pinned.Store(pin)
	if pin {
		pool.procs.Store(0)
	} else {
		pool.procs.Store(int64(n))
	}
}

// SetWorkers fixes the worker budget to n (clamped to >= 1) and stops
// tracking GOMAXPROCS. Goroutines already running keep their slots in
// the previous pool; new spawns see only the new budget.
func SetWorkers(n int) { resize(n, true) }

// Workers returns the current worker budget.
func Workers() int { return cap(*acquireSem()) }

// acquireSem returns the current semaphore, first re-sizing the pool if
// GOMAXPROCS moved since the semaphore was created (unless pinned).
func acquireSem() *chan struct{} {
	if !pool.pinned.Load() {
		if p := int64(runtime.GOMAXPROCS(0)); p != pool.procs.Load() {
			resize(int(p), false)
		}
	}
	return pool.sem.Load()
}

// Telemetry: how often tasks actually reached a pool worker vs ran
// inline on their caller. The ratio is the live saturation signal —
// near-zero inline runs mean spare slots, mostly-inline means the pool
// is the bottleneck. Snapshots land in BENCH_*.json via internal/bench.
var (
	pooledCount = metrics.New("par.spawn.pooled")
	inlineCount = metrics.New("par.spawn.inline")
)

// Spawn runs task on a pool worker when a slot is free and inline on
// the caller otherwise. The returned wait function blocks until task
// has completed (it returns immediately after an inline run). The
// signature matches core.WithSpawn.
func Spawn(task func()) (wait func()) {
	sem := *acquireSem()
	select {
	case sem <- struct{}{}:
		pooledCount.Inc()
		done := make(chan struct{})
		go func() {
			defer func() {
				// Release into the channel the token came from, even if
				// the pool has been resized since.
				<-sem
				close(done)
			}()
			task()
		}()
		return func() { <-done }
	default:
		inlineCount.Inc()
		task()
		return func() {}
	}
}

// Do executes the tasks as one fork-join group: all but the last are
// offered to the pool, the last runs on the calling goroutine, and Do
// returns only when every task has completed.
func Do(tasks ...func()) {
	switch len(tasks) {
	case 0:
		return
	case 1:
		tasks[0]()
		return
	}
	waits := make([]func(), 0, len(tasks)-1)
	for _, t := range tasks[:len(tasks)-1] {
		waits = append(waits, Spawn(t))
	}
	tasks[len(tasks)-1]()
	for _, w := range waits {
		w()
	}
}
