package par

import "runtime"

func gomaxprocs() int { return runtime.GOMAXPROCS(0) }

// SetWorkers fixes this runtime's worker-set size to n (clamped to
// >= 1) and stops tracking GOMAXPROCS; the previous generation of
// workers drains its deques and retires. Use ResetWorkers to return to
// automatic sizing. On a closed runtime it is a no-op.
func (r *Runtime) SetWorkers(n int) { r.resize(n, true) }

// ResetWorkers returns the runtime to its default mode: a worker set
// sized by (and tracking) runtime.GOMAXPROCS.
func (r *Runtime) ResetWorkers() { r.resize(gomaxprocs(), false) }

// Workers returns the current worker-set size.
func (r *Runtime) Workers() int { return len(r.current().workers) }

// SetDepthCutoff overrides the fork-depth serial cutoff: Spawns at
// depth >= d run inline on their caller. d <= 0 restores the automatic
// policy (log2(workers) + 2, enough fork levels to saturate the
// workers with 4-8x slack for stealing). The change rebuilds the
// worker set, so it is a test-and-experiment knob, not a hot-path one.
func (r *Runtime) SetDepthCutoff(d int32) {
	r.cutoffOverride.Store(max32(d, 0))
	r.resize(r.Workers(), r.pinned.Load())
}

// DepthCutoff returns the active fork-depth cutoff.
func (r *Runtime) DepthCutoff() int32 { return r.current().cutoff }

// SetWorkers fixes the default runtime's worker-set size; see
// Runtime.SetWorkers.
func SetWorkers(n int) { std.SetWorkers(n) }

// ResetWorkers returns the default runtime to GOMAXPROCS tracking; see
// Runtime.ResetWorkers.
func ResetWorkers() { std.ResetWorkers() }

// Workers returns the default runtime's worker-set size.
func Workers() int { return std.Workers() }

// SetDepthCutoff overrides the default runtime's fork-depth cutoff;
// see Runtime.SetDepthCutoff.
func SetDepthCutoff(d int32) { std.SetDepthCutoff(d) }

// DepthCutoff returns the default runtime's fork-depth cutoff.
func DepthCutoff() int32 { return std.DepthCutoff() }

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

func noopWait() {}

// Spawn forks task on this runtime and returns a function that waits
// for it to complete. The signature matches core.WithSpawn.
//
// Routing policy, in order:
//
//  1. Aborted runtime: the task is discarded — it never runs, and the
//     returned wait is a no-op (see Abort).
//  2. One worker, a closed runtime, or fork depth at/past the cutoff:
//     run inline on the caller and return a no-op wait. This is a
//     policy decision made before any queueing — under the old
//     semaphore pool, deep forks ran inline only because the tokens
//     happened to be taken, which discarded exactly the parallel slack
//     the A/B/C/D recursion creates at its deep fork points.
//  3. Caller is a worker of this runtime's live generation: push onto
//     its own deque (LIFO end). The owner pops newest-first, so an
//     unstolen child runs in the same order, on the same goroutine,
//     with the same warm cache as the serial execution — the
//     work-first discipline that preserves the Lemma 3.1/3.2 locality
//     arguments.
//  4. Otherwise (external goroutine — the engine's initial call, or a
//     worker of some other Runtime): push onto a pseudo-randomly
//     chosen worker's deque of this runtime.
//
// The returned wait helps: while the task is unfinished, the waiting
// goroutine executes other pending tasks of this runtime (own deque
// first, then stealing no shallower than the awaited fork) rather than
// blocking a worker, so joins can never deadlock the worker set, and a
// task stranded by a concurrent SetWorkers resize is executed by its
// own joiner.
func (r *Runtime) Spawn(task func()) (wait func()) {
	if r.aborted.Load() {
		return noopWait
	}
	rt := r.current()
	if len(rt.workers) == 1 || r.closed.Load() {
		// Serial budget: every fork inlines, no ids, no queues — the
		// p = 1 wall time is the serial wall time plus one branch.
		r.c.inline.Inc()
		task()
		return noopWait
	}
	id := goid()
	ctx := lookupCtx(id)
	var depth int32
	if ctx != nil {
		depth = ctx.depth + 1
	}
	if depth >= rt.cutoff {
		r.c.inline.Inc()
		runInline(id, ctx, depth, task)
		return noopWait
	}
	t := &wtask{fn: task, depth: depth, done: make(chan struct{})}
	r.c.pooled.Inc()
	if w := workerOf(ctx, rt); w != nil {
		r.c.localSpawn.Inc()
		w.dq.push(t)
	} else {
		r.c.injectSpawn.Inc()
		injectVictim(rt).dq.push(t)
	}
	rt.wakeOne()
	return func() { rt.join(t) }
}

// Spawn forks task on the default runtime; see Runtime.Spawn.
func Spawn(task func()) (wait func()) { return std.Spawn(task) }

// workerOf returns the caller's worker when it belongs to the live
// generation of the spawning runtime, else nil.
func workerOf(ctx *gctx, rt *scheduler) *worker {
	if ctx != nil && ctx.w != nil && ctx.w.rt == rt {
		return ctx.w
	}
	return nil
}

// runInline executes a policy-inlined fork on the caller, keeping the
// goroutine's fork depth current so nested Spawns keep counting levels
// (otherwise an inlined subtree would restart the cutoff clock).
func runInline(id uint64, ctx *gctx, depth int32, task func()) {
	if ctx == nil {
		ctx = &gctx{}
		registerCtx(id, ctx)
		defer unregisterCtx(id)
	}
	old := ctx.depth
	ctx.depth = depth
	task()
	ctx.depth = old
}

// Do executes the tasks as one fork-join group on this runtime: all
// but the last are forked, the last runs on the calling goroutine, and
// Do returns only when every task has completed. On an aborted runtime
// Do returns immediately without running any task.
func (r *Runtime) Do(tasks ...func()) {
	if r.aborted.Load() {
		return
	}
	switch len(tasks) {
	case 0:
		return
	case 1:
		tasks[0]()
		return
	}
	waits := make([]func(), 0, len(tasks)-1)
	for _, t := range tasks[:len(tasks)-1] {
		waits = append(waits, r.Spawn(t))
	}
	tasks[len(tasks)-1]()
	for _, w := range waits {
		w()
	}
}

// Do executes the tasks as one fork-join group on the default runtime;
// see Runtime.Do.
func Do(tasks ...func()) { std.Do(tasks...) }

// Group is an incremental fork-join scope for call sites that fork a
// data-dependent number of tasks: Go forks, Wait joins them all. The
// zero value forks on the default runtime; NewGroup binds one to a
// specific Runtime. A Group is not safe for concurrent use by multiple
// goroutines (fork-join scopes are owned by one frame); after Wait it
// is empty and may be reused.
type Group struct {
	rt    *Runtime
	waits []func()
}

// NewGroup returns a Group whose forks go to this runtime.
func (r *Runtime) NewGroup() *Group { return &Group{rt: r} }

// Go forks task into the group.
func (g *Group) Go(task func()) {
	rt := g.rt
	if rt == nil {
		rt = std
	}
	g.waits = append(g.waits, rt.Spawn(task))
}

// Wait blocks until every task forked since the last Wait completes.
func (g *Group) Wait() {
	for _, w := range g.waits {
		w()
	}
	g.waits = g.waits[:0]
}

// Or returns r when non-nil and the default runtime otherwise — the
// normalization every engine entry point that takes an optional
// *Runtime applies, so nil keeps the historical shared-pool behavior.
func Or(r *Runtime) *Runtime {
	if r != nil {
		return r
	}
	return std
}
