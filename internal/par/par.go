// Package par provides the bounded fork-join spawner shared by the
// parallel GEP engines (internal/core, internal/linalg, internal/apsp).
//
// The multithreaded recursions of Figure 6 expose far more parallel
// tasks than there are processors: spawning a goroutine per task
// oversubscribes the scheduler and loses the locality that makes
// work-stealing analyses (Lemma 3.1, modeled in internal/sched) work —
// a LIFO-executing worker keeps a subtree's blocks in its cache. This
// package bounds concurrency the way a work-stealing pool does at the
// "steal" boundary: a fixed budget of GOMAXPROCS worker slots, and a
// task that finds no free slot runs inline on its caller, exactly as an
// unstolen Cilk child would. Inline fallback also makes nested Spawn
// calls trivially deadlock-free: a task never blocks waiting for a
// slot.
package par

import "runtime"

// sem holds one token per worker slot. The budget is fixed at package
// init from GOMAXPROCS; a token is held for the lifetime of the
// spawned goroutine.
var sem = make(chan struct{}, runtime.GOMAXPROCS(0))

// Spawn runs task on a pool worker when a slot is free and inline on
// the caller otherwise. The returned wait function blocks until task
// has completed (it returns immediately after an inline run). The
// signature matches core.WithSpawn.
func Spawn(task func()) (wait func()) {
	select {
	case sem <- struct{}{}:
		done := make(chan struct{})
		go func() {
			defer func() {
				<-sem
				close(done)
			}()
			task()
		}()
		return func() { <-done }
	default:
		task()
		return func() {}
	}
}

// Do executes the tasks as one fork-join group: all but the last are
// offered to the pool, the last runs on the calling goroutine, and Do
// returns only when every task has completed.
func Do(tasks ...func()) {
	switch len(tasks) {
	case 0:
		return
	case 1:
		tasks[0]()
		return
	}
	waits := make([]func(), 0, len(tasks)-1)
	for _, t := range tasks[:len(tasks)-1] {
		waits = append(waits, Spawn(t))
	}
	tasks[len(tasks)-1]()
	for _, w := range waits {
		w()
	}
}
