package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRuntimeIsolatedBudgets runs two runtimes with disjoint worker
// budgets concurrently and asserts, from each runtime's own metrics
// registry, that every pooled task was executed inside its own runtime
// (pooled == local + steal + help per registry): work never migrates
// across runtimes, so neither tenant can occupy the other's workers.
func TestRuntimeIsolatedBudgets(t *testing.T) {
	r1 := NewRuntime(2)
	defer r1.Close()
	r2 := NewRuntime(2)
	defer r2.Close()

	var n1, n2 atomic.Int64
	load := func(r *Runtime, n *atomic.Int64) {
		var g Group
		for i := 0; i < 200; i++ {
			g = *r.NewGroup()
			for j := 0; j < 8; j++ {
				g.Go(func() {
					n.Add(1)
					time.Sleep(50 * time.Microsecond)
				})
			}
			g.Wait()
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); load(r1, &n1) }()
	go func() { defer wg.Done(); load(r2, &n2) }()
	wg.Wait()

	if n1.Load() != 1600 || n2.Load() != 1600 {
		t.Fatalf("task counts: r1=%d r2=%d, want 1600 each", n1.Load(), n2.Load())
	}
	for i, r := range []*Runtime{r1, r2} {
		s := r.Metrics().Snapshot()
		pooled := s["par.spawn.pooled"]
		executed := s["par.local"] + s["par.steal"] + s["par.help"]
		if pooled == 0 {
			t.Errorf("runtime %d: no pooled spawns — load ran elsewhere", i+1)
		}
		if pooled != executed {
			t.Errorf("runtime %d: pooled=%d but local+steal+help=%d — tasks executed outside their runtime",
				i+1, pooled, executed)
		}
		if got := s["par.spawn.pooled"] + s["par.spawn.inline"]; got != 1600 {
			t.Errorf("runtime %d: spawns=%d, want 1600", i+1, got)
		}
	}
	// The default runtime saw none of this work.
	if w := Workers(); w < 1 {
		t.Fatalf("default runtime broken: %d workers", w)
	}
}

// TestRuntimeWorkersPinned checks that NewRuntime(n) pins the budget
// and ignores GOMAXPROCS, while NewRuntime(0) tracks it.
func TestRuntimeWorkersPinned(t *testing.T) {
	r := NewRuntime(3)
	defer r.Close()
	if got := r.Workers(); got != 3 {
		t.Fatalf("Workers() = %d, want 3", got)
	}
	r.SetWorkers(5)
	if got := r.Workers(); got != 5 {
		t.Fatalf("after SetWorkers(5): Workers() = %d", got)
	}
}

// TestRuntimeCloseInlines checks that tasks spawned after Close still
// run (inline), so a straggler caller stays correct.
func TestRuntimeCloseInlines(t *testing.T) {
	r := NewRuntime(2)
	r.Close()
	r.Close() // idempotent
	ran := false
	r.Spawn(func() { ran = true })()
	if !ran {
		t.Fatal("task spawned after Close did not run")
	}
	done := 0
	r.Do(func() { done++ }, func() { done++ })
	if done != 2 {
		t.Fatalf("Do after Close ran %d of 2 tasks", done)
	}
}

// TestRuntimeAbortDiscards checks that Abort discards queued and
// future work without wedging joiners, and that Aborted reports it.
func TestRuntimeAbortDiscards(t *testing.T) {
	r := NewRuntime(2)
	defer r.Close()
	if r.Aborted() {
		t.Fatal("fresh runtime reports aborted")
	}
	r.Abort()
	if !r.Aborted() {
		t.Fatal("Aborted() false after Abort")
	}
	ran := false
	wait := r.Spawn(func() { ran = true })
	wait() // must not block
	r.Do(func() { ran = true }, func() { ran = true })
	if ran {
		t.Fatal("aborted runtime executed a task body")
	}
}

// TestDefaultGuards checks that the default runtime rejects the
// operations that would strand every library user.
func TestDefaultGuards(t *testing.T) {
	for name, f := range map[string]func(){
		"Close": func() { Default().Close() },
		"Abort": func() { Default().Abort() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s of the default runtime did not panic", name)
				}
			}()
			f()
		}()
	}
}
