package par

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"gep/internal/metrics"
)

// The work-stealing machinery: a long-lived worker set, one LIFO deque
// per worker, randomized FIFO stealing, and a join that helps (executes
// pending tasks) instead of blocking a worker. See DESIGN.md §11 for
// why this preserves the cache arguments of Lemmas 3.1/3.2, and §14
// for the isolation argument of per-Runtime worker sets.

// wtask is one forked task in flight.
type wtask struct {
	fn    func()
	depth int32
	done  chan struct{}
}

// deque is one worker's task queue. The owner pushes and pops at the
// tail (LIFO — the most recently forked, cache-hottest subproblem
// first, which at p = 1 reproduces the serial depth-first execution
// order exactly); thieves take from the head (FIFO — the oldest,
// biggest pending subtree, so one steal pays for many local pops).
// A mutex is plenty: pushes happen once per fork-join group above the
// grain, never per element, so contention is unmeasurable next to the
// base-case kernels.
type deque struct {
	mu sync.Mutex
	q  []*wtask
}

func (d *deque) push(t *wtask) {
	d.mu.Lock()
	d.q = append(d.q, t)
	d.mu.Unlock()
}

// pop removes and returns the newest task (owner end), or nil.
func (d *deque) pop() *wtask {
	d.mu.Lock()
	n := len(d.q)
	if n == 0 {
		d.mu.Unlock()
		return nil
	}
	t := d.q[n-1]
	d.q[n-1] = nil
	d.q = d.q[:n-1]
	d.mu.Unlock()
	return t
}

// stealMin removes and returns the oldest task whose fork depth is at
// least min, or nil. Workers steal with min = 0 (plain FIFO); joins
// steal with min = the awaited task's depth ("leapfrogging"), which
// bounds the stack growth of helping: a join only ever executes tasks
// at or below its own position in the fork tree.
func (d *deque) stealMin(min int32) *wtask {
	d.mu.Lock()
	for i, t := range d.q {
		if t.depth >= min {
			copy(d.q[i:], d.q[i+1:])
			d.q[len(d.q)-1] = nil
			d.q = d.q[:len(d.q)-1]
			d.mu.Unlock()
			return t
		}
	}
	d.mu.Unlock()
	return nil
}

// rtCounters is one Runtime's scheduler telemetry, registered in the
// Runtime's metrics registry. The spawn-side pair is exhaustive and
// exclusive: every Spawn call increments exactly one of
// par.spawn.pooled (enqueued on a deque) or par.spawn.inline (ran on
// the caller by policy: one worker, closed runtime, or fork depth
// at/past the cutoff). The execution-side trio is exhaustive over
// pooled tasks: par.local (owner popped its own deque), par.steal
// (taken FIFO by another worker), par.help (executed by a goroutine
// waiting inside a join). Once every wait has returned,
// par.local + par.steal + par.help == par.spawn.pooled exactly —
// par_test.go asserts this, including across a SetWorkers resize.
type rtCounters struct {
	pooled      *metrics.Counter
	inline      *metrics.Counter
	localSpawn  *metrics.Counter
	injectSpawn *metrics.Counter
	local       *metrics.Counter
	steal       *metrics.Counter
	help        *metrics.Counter
}

func newRTCounters(reg *metrics.Registry) rtCounters {
	return rtCounters{
		pooled:      reg.Counter("par.spawn.pooled"),
		inline:      reg.Counter("par.spawn.inline"),
		localSpawn:  reg.Counter("par.spawn.local"),
		injectSpawn: reg.Counter("par.spawn.inject"),
		local:       reg.Counter("par.local"),
		steal:       reg.Counter("par.steal"),
		help:        reg.Counter("par.help"),
	}
}

// depthBuckets is the number of exact per-worker depth-histogram
// buckets; executions at depth >= depthBuckets-1 land in the last one.
const depthBuckets = 5

// worker is one long-lived executor goroutine plus its deque.
type worker struct {
	rt    *scheduler
	idx   int
	dq    deque
	seed  uint64
	ctx   *gctx
	tasks *metrics.Counter
	// depth[k] counts executed tasks forked at depth k (last bucket:
	// depth >= depthBuckets-1) — the per-worker depth histogram
	// ("par.w<idx>.d<k>") that shows where in the fork tree each
	// worker's share of the A/B/C/D recursion actually ran.
	depth [depthBuckets]*metrics.Counter
}

// scheduler is one generation of a Runtime: the worker set sized at
// creation, its wake channel, and the depth cutoff. SetWorkers installs
// a fresh generation; the old one drains its deques and retires (and
// any task a retiring generation leaves behind is executed by its
// joiner, so no fork is ever lost across a resize). Close retires the
// final generation without a successor.
type scheduler struct {
	owner   *Runtime
	workers []*worker
	wake    chan struct{} // capacity len(workers); wakeOne never blocks
	stop    chan struct{}
	cutoff  int32
}

// Runtime is one instance of the work-stealing fork-join runtime: a
// worker set with its own deques, depth cutoff, and metrics registry.
// The package-level functions (Spawn, Do, SetWorkers, ...) delegate to
// the process-wide Default runtime, which sizes itself from GOMAXPROCS
// — the library facade never needs to know runtimes exist. Additional
// runtimes (NewRuntime) give each tenant of a long-lived process an
// isolated worker budget: a job running on a 2-worker Runtime can
// never occupy the workers of another job's Runtime, because tasks are
// only ever pushed to, stolen from, and drained by the deques of the
// runtime they were spawned on (DESIGN.md §14).
//
// All methods are safe for concurrent use.
type Runtime struct {
	mu  sync.Mutex // serializes resizes
	cur atomic.Pointer[scheduler]
	// procs is the GOMAXPROCS value the worker set was sized from, or 0
	// when pinned by SetWorkers/NewRuntime.
	procs  atomic.Int64
	pinned atomic.Bool
	// cutoffOverride, when non-zero, replaces the automatic depth
	// cutoff at the next (re)build. See SetDepthCutoff.
	cutoffOverride atomic.Int32
	aborted        atomic.Bool
	closed         atomic.Bool
	reg            *metrics.Registry
	c              rtCounters
}

// std is the process-wide default runtime behind the package-level
// functions. Its counters live in metrics.Default under the historical
// names ("par.spawn.pooled", "par.w<i>.tasks", ...), so existing
// telemetry consumers see no change.
var std = newRuntime(0, metrics.Default)

// Default returns the process-wide default runtime — the instance the
// package-level Spawn/Do/Group delegate to. Engine entry points that
// accept an optional *Runtime substitute Default for nil.
func Default() *Runtime { return std }

// NewRuntime creates an isolated runtime. workers > 0 pins the worker
// set to exactly that size (the per-job budget of internal/serve);
// workers <= 0 sizes it from GOMAXPROCS and tracks later changes, like
// the default runtime. Close releases the workers when done; an
// unclosed Runtime leaks its worker goroutines (they park on the wake
// channel, holding no CPU, but never exit).
func NewRuntime(workers int) *Runtime {
	return newRuntime(workers, metrics.NewRegistry("par"))
}

func newRuntime(workers int, reg *metrics.Registry) *Runtime {
	r := &Runtime{reg: reg, c: newRTCounters(reg)}
	if workers > 0 {
		r.resize(workers, true)
	} else {
		r.resize(gomaxprocs(), false)
	}
	return r
}

// Metrics returns the runtime's counter registry. For the default
// runtime this is metrics.Default; for a NewRuntime instance it is a
// private scope holding only that runtime's "par.*" counters, which is
// what lets a multi-tenant process attribute scheduler activity per
// job (internal/serve snapshots it into job status).
func (r *Runtime) Metrics() *metrics.Registry { return r.reg }

// resize installs a fresh scheduler generation with n workers. Racing
// resizes serialize on r.mu; the retiring generation is told to stop
// and drains itself.
func (r *Runtime) resize(n int, pin bool) {
	if n < 1 {
		n = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed.Load() {
		return
	}
	old := r.cur.Load()
	rt := &scheduler{
		owner:   r,
		workers: make([]*worker, n),
		wake:    make(chan struct{}, n),
		stop:    make(chan struct{}),
		cutoff:  autoCutoff(n),
	}
	if o := r.cutoffOverride.Load(); o > 0 {
		rt.cutoff = o
	}
	for i := range rt.workers {
		w := &worker{
			rt:    rt,
			idx:   i,
			seed:  uint64(i)*0x9e3779b97f4a7c15 + 1,
			tasks: r.reg.Counter(fmt.Sprintf("par.w%d.tasks", i)),
		}
		for k := range w.depth {
			w.depth[k] = r.reg.Counter(fmt.Sprintf("par.w%d.d%d", i, k))
		}
		rt.workers[i] = w
	}
	r.cur.Store(rt)
	r.pinned.Store(pin)
	if pin {
		r.procs.Store(0)
	} else {
		r.procs.Store(int64(n))
	}
	for _, w := range rt.workers {
		go w.run()
	}
	if old != nil {
		close(old.stop)
	}
}

// Close retires the runtime's workers: the current generation drains
// its deques and its goroutines exit. After Close, Spawn and Do still
// execute their tasks (inline on the caller), so late calls stay
// correct; they just no longer parallelize. Close is idempotent and
// must not be called on the default runtime (that would strand the
// whole process's library users), which panics.
func (r *Runtime) Close() {
	if r == std {
		panic("par: Close of the default runtime")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed.Swap(true) {
		return
	}
	if cur := r.cur.Load(); cur != nil {
		close(cur.stop)
	}
}

// Abort makes the runtime discard work: subsequent Spawns return
// without running their task, queued tasks complete without executing
// their bodies, and Do becomes a no-op. Results computed on an aborted
// runtime are undefined — Abort exists for cancellation paths
// (deadline exceeded, client gone) where the output is discarded
// anyway; it bounds how much of an in-flight recursion still runs by
// cutting every fork-join group it has not yet reached. Aborting the
// default runtime panics for the same reason closing it does. Abort
// does not release the workers; pair it with Close.
func (r *Runtime) Abort() {
	if r == std {
		panic("par: Abort of the default runtime")
	}
	r.aborted.Store(true)
}

// Aborted reports whether Abort has been called. Long base-case hooks
// can poll it to stop early.
func (r *Runtime) Aborted() bool { return r.aborted.Load() }

// autoCutoff picks the fork depth at which Spawn switches to inline
// execution: ~log2(p) levels saturate p workers for the binary and
// 4-ary forks of the Figure-6 schedules, and two extra levels keep
// roughly 4-8x parallel slack for stealing to balance, after which
// further forking only adds bookkeeping.
func autoCutoff(workers int) int32 {
	return int32(bits.Len(uint(workers)) + 2)
}

// current returns the live scheduler, first resizing when GOMAXPROCS
// moved since the worker set was built (unless pinned or closed).
func (r *Runtime) current() *scheduler {
	if !r.pinned.Load() && !r.closed.Load() {
		if p := int64(gomaxprocs()); p != r.procs.Load() {
			r.resize(int(p), false)
		}
	}
	return r.cur.Load()
}

// wakeOne nudges one parked worker; a full buffer means at least
// len(workers) wakeups are already pending, so dropping is safe (every
// woken worker rescans all deques before parking again).
func (rt *scheduler) wakeOne() {
	select {
	case rt.wake <- struct{}{}:
	default:
	}
}

// run is the worker main loop: pop own deque LIFO, else steal FIFO
// from a random victim, else park until woken. On stop (a SetWorkers
// resize or Close) the worker drains every deque of its generation and
// exits.
func (w *worker) run() {
	id := goid()
	w.ctx = &gctx{w: w}
	registerCtx(id, w.ctx)
	defer unregisterCtx(id)
	c := &w.rt.owner.c
	for {
		if t := w.dq.pop(); t != nil {
			c.local.Inc()
			w.exec(t)
			continue
		}
		if t := w.rt.stealFor(w); t != nil {
			c.steal.Inc()
			w.exec(t)
			continue
		}
		select {
		case <-w.rt.wake:
		case <-w.rt.stop:
			for {
				t := w.dq.pop()
				if t != nil {
					c.local.Inc()
				} else if t = w.rt.stealFor(w); t != nil {
					c.steal.Inc()
				} else {
					return
				}
				w.exec(t)
			}
		}
	}
}

// rand steps the worker's xorshift64 state: per-worker, no locks, no
// global rand dependency. It drives victim selection for stealing.
func (w *worker) rand() uint64 {
	w.seed ^= w.seed << 13
	w.seed ^= w.seed >> 7
	w.seed ^= w.seed << 17
	return w.seed
}

// stealFor scans the other workers' deques from a random start and
// takes the oldest task of the first non-empty one.
func (rt *scheduler) stealFor(w *worker) *wtask {
	n := len(rt.workers)
	if n < 2 {
		return nil
	}
	start := int(w.rand() % uint64(n))
	for i := 0; i < n; i++ {
		v := rt.workers[(start+i)%n]
		if v == w {
			continue
		}
		if t := v.dq.stealMin(0); t != nil {
			return t
		}
	}
	return nil
}

// injectSeed drives victim selection for spawns from goroutines that
// are not workers of the spawning runtime (the initial call of an
// engine run, or a cross-runtime spawn).
var injectSeed atomic.Uint64

func injectVictim(rt *scheduler) *worker {
	s := injectSeed.Add(0x9e3779b97f4a7c15)
	return rt.workers[int(s%uint64(len(rt.workers)))]
}

// exec runs one task on a worker, recording the per-worker histogram
// and keeping the goroutine's fork depth current for nested Spawns.
func (w *worker) exec(t *wtask) {
	w.tasks.Inc()
	b := int(t.depth)
	if b >= depthBuckets {
		b = depthBuckets - 1
	}
	w.depth[b].Inc()
	old := w.ctx.depth
	w.ctx.depth = t.depth
	w.rt.runTask(t)
	w.ctx.depth = old
}

// runTask executes the task body and always closes done, so joiners
// are released even if the body panics (the panic then propagates on
// the executing goroutine, exactly as the pre-runtime pool behaved).
// On an aborted runtime the body is skipped: the task completes — its
// joiners are released and the accounting invariants hold — without
// doing its work.
func (rt *scheduler) runTask(t *wtask) {
	defer close(t.done)
	if rt.owner.aborted.Load() {
		return
	}
	t.fn()
}

// stealMinFor scans every deque of this generation for a task forked
// at depth >= min, used by joins: the awaited task itself always
// qualifies, so when the scan comes up empty the awaited task is
// already running somewhere and parking on its done channel is safe.
func (rt *scheduler) stealMinFor(min int32, seed *uint64) *wtask {
	n := len(rt.workers)
	*seed ^= *seed << 13
	*seed ^= *seed >> 7
	*seed ^= *seed << 17
	start := int(*seed % uint64(n))
	for i := 0; i < n; i++ {
		if t := rt.workers[(start+i)%n].dq.stealMin(min); t != nil {
			return t
		}
	}
	return nil
}

// join blocks until t completes, helping with pending work instead of
// idling: first the caller's own deque (its freshest forks — the
// depth-first order a serial run would take next), then any deque of
// t's generation, restricted to tasks no shallower than t. When no
// helpable task exists, t is provably running on some goroutine, and
// join parks on its done channel. Helping never crosses runtimes: only
// the deques of t's own generation are scanned, so a joiner from one
// job cannot be conscripted into another job's work.
func (rt *scheduler) join(t *wtask) {
	id := goid()
	ctx := lookupCtx(id)
	temp := false
	if ctx == nil {
		ctx = &gctx{}
		registerCtx(id, ctx)
		temp = true
	}
	seed := id*0x9e3779b97f4a7c15 + 0x6a09e667f3bcc909
	for {
		select {
		case <-t.done:
			if temp {
				unregisterCtx(id)
			}
			return
		default:
		}
		var h *wtask
		if w := ctx.w; w != nil && w.rt == rt {
			h = w.dq.pop()
		}
		if h == nil {
			h = rt.stealMinFor(t.depth, &seed)
		}
		if h == nil {
			<-t.done
			if temp {
				unregisterCtx(id)
			}
			return
		}
		rt.owner.c.help.Inc()
		old := ctx.depth
		ctx.depth = h.depth
		rt.runTask(h)
		ctx.depth = old
	}
}
