package par

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"gep/internal/metrics"
)

// The work-stealing machinery: a long-lived worker set, one LIFO deque
// per worker, randomized FIFO stealing, and a join that helps (executes
// pending tasks) instead of blocking a worker. See DESIGN.md §11 for
// why this preserves the cache arguments of Lemmas 3.1/3.2.

// wtask is one forked task in flight.
type wtask struct {
	fn    func()
	depth int32
	done  chan struct{}
}

// deque is one worker's task queue. The owner pushes and pops at the
// tail (LIFO — the most recently forked, cache-hottest subproblem
// first, which at p = 1 reproduces the serial depth-first execution
// order exactly); thieves take from the head (FIFO — the oldest,
// biggest pending subtree, so one steal pays for many local pops).
// A mutex is plenty: pushes happen once per fork-join group above the
// grain, never per element, so contention is unmeasurable next to the
// base-case kernels.
type deque struct {
	mu sync.Mutex
	q  []*wtask
}

func (d *deque) push(t *wtask) {
	d.mu.Lock()
	d.q = append(d.q, t)
	d.mu.Unlock()
}

// pop removes and returns the newest task (owner end), or nil.
func (d *deque) pop() *wtask {
	d.mu.Lock()
	n := len(d.q)
	if n == 0 {
		d.mu.Unlock()
		return nil
	}
	t := d.q[n-1]
	d.q[n-1] = nil
	d.q = d.q[:n-1]
	d.mu.Unlock()
	return t
}

// stealMin removes and returns the oldest task whose fork depth is at
// least min, or nil. Workers steal with min = 0 (plain FIFO); joins
// steal with min = the awaited task's depth ("leapfrogging"), which
// bounds the stack growth of helping: a join only ever executes tasks
// at or below its own position in the fork tree.
func (d *deque) stealMin(min int32) *wtask {
	d.mu.Lock()
	for i, t := range d.q {
		if t.depth >= min {
			copy(d.q[i:], d.q[i+1:])
			d.q[len(d.q)-1] = nil
			d.q = d.q[:len(d.q)-1]
			d.mu.Unlock()
			return t
		}
	}
	d.mu.Unlock()
	return nil
}

// Telemetry. The spawn-side pair is exhaustive and exclusive: every
// Spawn call increments exactly one of par.spawn.pooled (enqueued on a
// deque) or par.spawn.inline (ran on the caller by policy: one worker,
// or fork depth at/past the cutoff). The execution-side trio is
// exhaustive over pooled tasks: par.local (owner popped its own deque),
// par.steal (taken FIFO by another worker), par.help (executed by a
// goroutine waiting inside a join). Once every wait has returned,
// par.local + par.steal + par.help == par.spawn.pooled exactly —
// par_test.go asserts this, including across a SetWorkers resize.
var (
	pooledCount      = metrics.New("par.spawn.pooled")
	inlineCount      = metrics.New("par.spawn.inline")
	localSpawnCount  = metrics.New("par.spawn.local")
	injectSpawnCount = metrics.New("par.spawn.inject")
	localCount       = metrics.New("par.local")
	stealCount       = metrics.New("par.steal")
	helpCount        = metrics.New("par.help")
)

// depthBuckets is the number of exact per-worker depth-histogram
// buckets; executions at depth >= depthBuckets-1 land in the last one.
const depthBuckets = 5

// workerCounters caches the lazily registered per-worker counters so a
// SetWorkers resize (which recreates the worker set) reuses them
// instead of tripping the duplicate-registration panic in metrics.New.
var workerCounters struct {
	mu sync.Mutex
	m  map[string]*metrics.Counter
}

func namedCounter(name string) *metrics.Counter {
	workerCounters.mu.Lock()
	defer workerCounters.mu.Unlock()
	if workerCounters.m == nil {
		workerCounters.m = make(map[string]*metrics.Counter)
	}
	if c, ok := workerCounters.m[name]; ok {
		return c
	}
	c := metrics.New(name)
	workerCounters.m[name] = c
	return c
}

// worker is one long-lived executor goroutine plus its deque.
type worker struct {
	rt    *scheduler
	idx   int
	dq    deque
	seed  uint64
	ctx   *gctx
	tasks *metrics.Counter
	// depth[k] counts executed tasks forked at depth k (last bucket:
	// depth >= depthBuckets-1) — the per-worker depth histogram
	// ("par.w<idx>.d<k>") that shows where in the fork tree each
	// worker's share of the A/B/C/D recursion actually ran.
	depth [depthBuckets]*metrics.Counter
}

// scheduler is one generation of the runtime: the worker set sized at
// creation, its wake channel, and the depth cutoff. SetWorkers installs
// a fresh generation; the old one drains its deques and retires (and
// any task a retiring generation leaves behind is executed by its
// joiner, so no fork is ever lost across a resize).
type scheduler struct {
	workers []*worker
	wake    chan struct{} // capacity len(workers); wakeOne never blocks
	stop    chan struct{}
	cutoff  int32
}

var sched struct {
	mu  sync.Mutex
	cur atomic.Pointer[scheduler]
	// procs is the GOMAXPROCS value the worker set was sized from, or 0
	// when pinned by SetWorkers.
	procs  atomic.Int64
	pinned atomic.Bool
	// cutoffOverride, when non-zero, replaces the automatic depth
	// cutoff at the next (re)build. See SetDepthCutoff.
	cutoffOverride atomic.Int32
}

func init() {
	resize(defaultWorkers(), false)
}

func defaultWorkers() int { return gomaxprocs() }

// resize installs a fresh scheduler generation with n workers. Racing
// resizes serialize on sched.mu; the retiring generation is told to
// stop and drains itself.
func resize(n int, pin bool) {
	if n < 1 {
		n = 1
	}
	sched.mu.Lock()
	defer sched.mu.Unlock()
	old := sched.cur.Load()
	rt := &scheduler{
		workers: make([]*worker, n),
		wake:    make(chan struct{}, n),
		stop:    make(chan struct{}),
		cutoff:  autoCutoff(n),
	}
	if o := sched.cutoffOverride.Load(); o > 0 {
		rt.cutoff = o
	}
	for i := range rt.workers {
		w := &worker{
			rt:    rt,
			idx:   i,
			seed:  uint64(i)*0x9e3779b97f4a7c15 + 1,
			tasks: namedCounter(fmt.Sprintf("par.w%d.tasks", i)),
		}
		for k := range w.depth {
			w.depth[k] = namedCounter(fmt.Sprintf("par.w%d.d%d", i, k))
		}
		rt.workers[i] = w
	}
	sched.cur.Store(rt)
	sched.pinned.Store(pin)
	if pin {
		sched.procs.Store(0)
	} else {
		sched.procs.Store(int64(n))
	}
	for _, w := range rt.workers {
		go w.run()
	}
	if old != nil {
		close(old.stop)
	}
}

// autoCutoff picks the fork depth at which Spawn switches to inline
// execution: ~log2(p) levels saturate p workers for the binary and
// 4-ary forks of the Figure-6 schedules, and two extra levels keep
// roughly 4-8x parallel slack for stealing to balance, after which
// further forking only adds bookkeeping.
func autoCutoff(workers int) int32 {
	return int32(bits.Len(uint(workers)) + 2)
}

// current returns the live scheduler, first resizing when GOMAXPROCS
// moved since the worker set was built (unless pinned).
func current() *scheduler {
	if !sched.pinned.Load() {
		if p := int64(gomaxprocs()); p != sched.procs.Load() {
			resize(int(p), false)
		}
	}
	return sched.cur.Load()
}

// wakeOne nudges one parked worker; a full buffer means at least
// len(workers) wakeups are already pending, so dropping is safe (every
// woken worker rescans all deques before parking again).
func (rt *scheduler) wakeOne() {
	select {
	case rt.wake <- struct{}{}:
	default:
	}
}

// run is the worker main loop: pop own deque LIFO, else steal FIFO
// from a random victim, else park until woken. On stop (a SetWorkers
// resize) the worker drains every deque of its generation and exits.
func (w *worker) run() {
	id := goid()
	w.ctx = &gctx{w: w}
	registerCtx(id, w.ctx)
	defer unregisterCtx(id)
	for {
		if t := w.dq.pop(); t != nil {
			localCount.Inc()
			w.exec(t)
			continue
		}
		if t := w.rt.stealFor(w); t != nil {
			stealCount.Inc()
			w.exec(t)
			continue
		}
		select {
		case <-w.rt.wake:
		case <-w.rt.stop:
			for {
				t := w.dq.pop()
				if t != nil {
					localCount.Inc()
				} else if t = w.rt.stealFor(w); t != nil {
					stealCount.Inc()
				} else {
					return
				}
				w.exec(t)
			}
		}
	}
}

// stealFor scans the other workers' deques from a random start and
// takes the oldest task of the first non-empty one.
func (w *worker) rand() uint64 {
	// xorshift64: per-worker, no locks, no global rand dependency.
	w.seed ^= w.seed << 13
	w.seed ^= w.seed >> 7
	w.seed ^= w.seed << 17
	return w.seed
}

func (rt *scheduler) stealFor(w *worker) *wtask {
	n := len(rt.workers)
	if n < 2 {
		return nil
	}
	start := int(w.rand() % uint64(n))
	for i := 0; i < n; i++ {
		v := rt.workers[(start+i)%n]
		if v == w {
			continue
		}
		if t := v.dq.stealMin(0); t != nil {
			return t
		}
	}
	return nil
}

// injectSeed drives victim selection for spawns from goroutines that
// are not workers (the initial call of an engine run).
var injectSeed atomic.Uint64

func injectVictim(rt *scheduler) *worker {
	s := injectSeed.Add(0x9e3779b97f4a7c15)
	return rt.workers[int(s%uint64(len(rt.workers)))]
}

// exec runs one task on a worker, recording the per-worker histogram
// and keeping the goroutine's fork depth current for nested Spawns.
func (w *worker) exec(t *wtask) {
	w.tasks.Inc()
	b := int(t.depth)
	if b >= depthBuckets {
		b = depthBuckets - 1
	}
	w.depth[b].Inc()
	old := w.ctx.depth
	w.ctx.depth = t.depth
	runTask(t)
	w.ctx.depth = old
}

// runTask executes the task body and always closes done, so joiners
// are released even if the body panics (the panic then propagates on
// the executing goroutine, exactly as the pre-runtime pool behaved).
func runTask(t *wtask) {
	defer close(t.done)
	t.fn()
}

// stealMinFor scans every deque of this generation for a task forked
// at depth >= min, used by joins: the awaited task itself always
// qualifies, so when the scan comes up empty the awaited task is
// already running somewhere and parking on its done channel is safe.
func (rt *scheduler) stealMinFor(min int32, seed *uint64) *wtask {
	n := len(rt.workers)
	*seed ^= *seed << 13
	*seed ^= *seed >> 7
	*seed ^= *seed << 17
	start := int(*seed % uint64(n))
	for i := 0; i < n; i++ {
		if t := rt.workers[(start+i)%n].dq.stealMin(min); t != nil {
			return t
		}
	}
	return nil
}

// join blocks until t completes, helping with pending work instead of
// idling: first the caller's own deque (its freshest forks — the
// depth-first order a serial run would take next), then any deque of
// t's generation, restricted to tasks no shallower than t. When no
// helpable task exists, t is provably running on some goroutine, and
// join parks on its done channel.
func (rt *scheduler) join(t *wtask) {
	id := goid()
	ctx := lookupCtx(id)
	temp := false
	if ctx == nil {
		ctx = &gctx{}
		registerCtx(id, ctx)
		temp = true
	}
	seed := id*0x9e3779b97f4a7c15 + 0x6a09e667f3bcc909
	for {
		select {
		case <-t.done:
			if temp {
				unregisterCtx(id)
			}
			return
		default:
		}
		var h *wtask
		if w := ctx.w; w != nil && w.rt == rt {
			h = w.dq.pop()
		}
		if h == nil {
			h = rt.stealMinFor(t.depth, &seed)
		}
		if h == nil {
			<-t.done
			if temp {
				unregisterCtx(id)
			}
			return
		}
		helpCount.Inc()
		old := ctx.depth
		ctx.depth = h.depth
		runTask(h)
		ctx.depth = old
	}
}
