package par

import (
	"runtime"
	"sync"
)

// Goroutine identity. Go deliberately hides goroutine ids, but a
// fork-join runtime needs one piece of goroutine-local state: "which
// worker (and at what fork depth) is the goroutine calling Spawn?" —
// that is what routes a fork to the caller's own deque (the work-first
// LIFO discipline) instead of a random victim, and what the depth
// cutoff reads. The id is recovered by parsing the header line of
// runtime.Stack for the current goroutine ("goroutine N [running]:"),
// which costs about a microsecond. Spawn happens once per fork-join
// group above the grain size — thousands of times per engine run, not
// per element — so the cost is noise next to the base-case kernels.

// goid returns the current goroutine's id.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	const skip = len("goroutine ")
	var id uint64
	for _, c := range buf[skip:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// gctx is the per-goroutine scheduling context: the worker the
// goroutine belongs to (nil for external goroutines that are only
// temporarily executing tasks, e.g. while helping during a join) and
// the fork depth of the task it is currently running. depth is only
// ever read and written by the owning goroutine, so it needs no
// synchronization; the registry below is what crosses goroutines and
// it is guarded by sharded mutexes.
type gctx struct {
	w     *worker
	depth int32
}

const ctxShards = 64

var ctxReg [ctxShards]struct {
	mu sync.Mutex
	m  map[uint64]*gctx
}

func registerCtx(id uint64, c *gctx) {
	s := &ctxReg[id%ctxShards]
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[uint64]*gctx)
	}
	s.m[id] = c
	s.mu.Unlock()
}

func unregisterCtx(id uint64) {
	s := &ctxReg[id%ctxShards]
	s.mu.Lock()
	delete(s.m, id)
	s.mu.Unlock()
}

func lookupCtx(id uint64) *gctx {
	s := &ctxReg[id%ctxShards]
	s.mu.Lock()
	c := s.m[id]
	s.mu.Unlock()
	return c
}
