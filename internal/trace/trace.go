package trace

import (
	"fmt"
	"sort"
	"sync"

	"gep/internal/core"
	"gep/internal/matrix"
)

// Update is one recorded application of the update function: the
// triple, a timestamp, the four operand values supplied to f, and f's
// result.
type Update struct {
	I, J, K    int
	T          int
	X, U, V, W int64
	Result     int64
}

// Recorder collects the update stream of an instrumented run. It is
// safe for concurrent use so parallel executions can be traced too
// (timestamps then reflect observation order, which is a valid
// linearization for the per-cell checks).
type Recorder struct {
	mu      sync.Mutex
	updates []Update
}

// Wrap returns an update function that records every application of f.
func (r *Recorder) Wrap(f core.UpdateFunc[int64]) core.UpdateFunc[int64] {
	return func(i, j, k int, x, u, v, w int64) int64 {
		res := f(i, j, k, x, u, v, w)
		r.mu.Lock()
		r.updates = append(r.updates, Update{
			I: i, J: j, K: k, T: len(r.updates),
			X: x, U: u, V: v, W: w, Result: res,
		})
		r.mu.Unlock()
		return res
	}
}

// Updates returns the recorded stream in timestamp order.
func (r *Recorder) Updates() []Update {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Update, len(r.updates))
	copy(out, r.updates)
	return out
}

// Len returns the number of recorded updates.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.updates)
}

// CheckTheorem21 verifies parts (a), (b) and (c) of Theorem 2.1 for a
// recorded run over an n×n matrix with update set Σ_G.
func CheckTheorem21(updates []Update, set core.UpdateSet, n int) error {
	seen := make(map[[3]int]bool, len(updates))
	lastK := make(map[[2]int]int)
	for _, u := range updates {
		t3 := [3]int{u.I, u.J, u.K}
		// (a) ⊆: every performed update is in Σ_G.
		if !set.Contains(u.I, u.J, u.K) {
			return fmt.Errorf("theorem 2.1(a): performed update ⟨%d,%d,%d⟩ ∉ Σ_G", u.I, u.J, u.K)
		}
		// (b): at most once.
		if seen[t3] {
			return fmt.Errorf("theorem 2.1(b): update ⟨%d,%d,%d⟩ performed twice", u.I, u.J, u.K)
		}
		seen[t3] = true
		// (c): per-cell k strictly increasing in time.
		cell := [2]int{u.I, u.J}
		if prev, ok := lastK[cell]; ok && u.K <= prev {
			return fmt.Errorf("theorem 2.1(c): cell (%d,%d) updated with k=%d after k=%d", u.I, u.J, u.K, prev)
		}
		lastK[cell] = u.K
	}
	// (a) ⊇: every Σ_G triple in range was performed.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if set.Contains(i, j, k) && !seen[[3]int{i, j, k}] {
					return fmt.Errorf("theorem 2.1(a): update ⟨%d,%d,%d⟩ ∈ Σ_G not performed", i, j, k)
				}
			}
		}
	}
	return nil
}

// history gives O(log) access to the state sequence of each cell:
// state(i, j, l) = value of c[i,j] after all its updates with k' <= l.
type history struct {
	init *matrix.Dense[int64]
	// perCell[(i,j)] holds (k, result) pairs sorted by k. Theorem
	// 2.1(b,c) guarantees ks are unique and (in a serial run) applied
	// in this order, so the cell's value after state l is the result
	// of the largest k' <= l.
	perCell map[[2]int][]kv
}

type kv struct {
	k int
	v int64
}

func newHistory(updates []Update, init *matrix.Dense[int64]) *history {
	h := &history{init: init, perCell: make(map[[2]int][]kv)}
	for _, u := range updates {
		cell := [2]int{u.I, u.J}
		h.perCell[cell] = append(h.perCell[cell], kv{u.K, u.Result})
	}
	for cell, seq := range h.perCell {
		sort.Slice(seq, func(a, b int) bool { return seq[a].k < seq[b].k })
		h.perCell[cell] = seq
	}
	return h
}

// state returns c_l(i,j).
func (h *history) state(i, j, l int) int64 {
	seq := h.perCell[[2]int{i, j}]
	lo, hi := 0, len(seq) // first index with k > l
	for lo < hi {
		mid := (lo + hi) / 2
		if seq[mid].k <= l {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return h.init.At(i, j)
	}
	return seq[lo-1].v
}

// CheckTheorem22 verifies that each recorded I-GEP update read exactly
// the states Theorem 2.2 predicts, given the initial matrix.
func CheckTheorem22(updates []Update, init *matrix.Dense[int64]) error {
	h := newHistory(updates, init)
	for _, u := range updates {
		if want := h.state(u.I, u.J, u.K-1); u.X != want {
			return fmt.Errorf("theorem 2.2: ⟨%d,%d,%d⟩ read x=%d, want c_{%d}(%d,%d)=%d",
				u.I, u.J, u.K, u.X, u.K-1, u.I, u.J, want)
		}
		if want := h.state(u.I, u.K, core.Pi(u.J, u.K)); u.U != want {
			return fmt.Errorf("theorem 2.2: ⟨%d,%d,%d⟩ read u=%d, want c_{π(%d,%d)=%d}(%d,%d)=%d",
				u.I, u.J, u.K, u.U, u.J, u.K, core.Pi(u.J, u.K), u.I, u.K, want)
		}
		if want := h.state(u.K, u.J, core.Pi(u.I, u.K)); u.V != want {
			return fmt.Errorf("theorem 2.2: ⟨%d,%d,%d⟩ read v=%d, want c_{π(%d,%d)=%d}(%d,%d)=%d",
				u.I, u.J, u.K, u.V, u.I, u.K, core.Pi(u.I, u.K), u.K, u.J, want)
		}
		if want := h.state(u.K, u.K, core.Delta(u.I, u.J, u.K)); u.W != want {
			return fmt.Errorf("theorem 2.2: ⟨%d,%d,%d⟩ read w=%d, want c_{δ=%d}(%d,%d)=%d",
				u.I, u.J, u.K, u.W, core.Delta(u.I, u.J, u.K), u.K, u.K, want)
		}
	}
	return nil
}

// CheckTableOneG verifies the G column of Table 1 against a recorded
// iterative-GEP run: G reads ĉ_{k-1}(i,j), ĉ_{k-[j<=k]}(i,k),
// ĉ_{k-[i<=k]}(k,j), ĉ_{k-[(i<k) ∨ (i=k ∧ j<=k)]}(k,k), where state
// subscripts count applied updates (0-based: subscript k means
// "after updates with k' <= k", and k-1 with our -1 convention).
func CheckTableOneG(updates []Update, init *matrix.Dense[int64]) error {
	h := newHistory(updates, init)
	b2i := func(b bool) int {
		if b {
			return 1
		}
		return 0
	}
	for _, u := range updates {
		i, j, k := u.I, u.J, u.K
		if want := h.state(i, j, k-1); u.X != want {
			return fmt.Errorf("table 1 (G): ⟨%d,%d,%d⟩ read x=%d, want %d", i, j, k, u.X, want)
		}
		if want := h.state(i, k, k-b2i(j <= k)); u.U != want {
			return fmt.Errorf("table 1 (G): ⟨%d,%d,%d⟩ read u=%d, want %d", i, j, k, u.U, want)
		}
		if want := h.state(k, j, k-b2i(i <= k)); u.V != want {
			return fmt.Errorf("table 1 (G): ⟨%d,%d,%d⟩ read v=%d, want %d", i, j, k, u.V, want)
		}
		if want := h.state(k, k, k-b2i(i < k || (i == k && j <= k))); u.W != want {
			return fmt.Errorf("table 1 (G): ⟨%d,%d,%d⟩ read w=%d, want %d", i, j, k, u.W, want)
		}
	}
	return nil
}

// VerifyIGEP runs I-GEP instrumented on a copy of init and checks both
// theorems; it returns the number of updates performed.
func VerifyIGEP(init *matrix.Dense[int64], f core.UpdateFunc[int64], set core.UpdateSet) (int, error) {
	var rec Recorder
	c := init.Clone()
	// Base 1: Theorem 2.2 characterizes the pure F recursion. Larger
	// base blocks execute in k-outer (G) order, whose reads differ on
	// instances outside the theorem's legal class.
	core.RunIGEP[int64](c, rec.Wrap(f), set, core.WithBaseSize[int64](1))
	ups := rec.Updates()
	if err := CheckTheorem21(ups, set, init.N()); err != nil {
		return len(ups), err
	}
	if err := CheckTheorem22(ups, init); err != nil {
		return len(ups), err
	}
	return len(ups), nil
}

// VerifyGEP runs iterative GEP instrumented and checks Theorem 2.1
// (which holds for G trivially by construction) and the G column of
// Table 1.
func VerifyGEP(init *matrix.Dense[int64], f core.UpdateFunc[int64], set core.UpdateSet) (int, error) {
	var rec Recorder
	c := init.Clone()
	core.RunGEP[int64](c, rec.Wrap(f), set)
	ups := rec.Updates()
	if err := CheckTheorem21(ups, set, init.N()); err != nil {
		return len(ups), err
	}
	if err := CheckTableOneG(ups, init); err != nil {
		return len(ups), err
	}
	return len(ups), nil
}
