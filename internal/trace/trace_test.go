package trace

import (
	"math/rand"
	"testing"

	"gep/internal/core"
	"gep/internal/matrix"
)

func randMat(rng *rand.Rand, n int) *matrix.Dense[int64] {
	m := matrix.NewSquare[int64](n)
	m.Apply(func(i, j int, _ int64) int64 { return rng.Int63n(1000) - 500 })
	return m
}

func randSet(rng *rand.Rand, n int, p float64) *core.Explicit {
	s := core.NewExplicit(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if rng.Float64() < p {
					s.Add(i, j, k)
				}
			}
		}
	}
	return s
}

var linF core.UpdateFunc[int64] = func(i, j, k int, x, u, v, w int64) int64 {
	return x + 2*u + 3*v + 5*w
}

// TestTheoremsHoldForIGEP: the central theory validation. For random
// update sets and inputs, an instrumented I-GEP run must satisfy
// Theorems 2.1 and 2.2 exactly.
func TestTheoremsHoldForIGEP(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for _, n := range []int{1, 2, 4, 8, 16} {
		for _, p := range []float64{0.2, 0.7, 1.0} {
			set := randSet(rng, n, p)
			in := randMat(rng, n)
			count, err := VerifyIGEP(in, linF, set)
			if err != nil {
				t.Fatalf("n=%d p=%.1f: %v", n, p, err)
			}
			if count != set.Len() {
				t.Fatalf("n=%d p=%.1f: performed %d updates, Σ_G has %d", n, p, count, set.Len())
			}
		}
	}
}

// TestTheoremsHoldForStandardSets covers the analytic sets.
func TestTheoremsHoldForStandardSets(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	sets := map[string]core.UpdateSet{
		"full":     core.Full{},
		"gaussian": core.Gaussian{},
		"lu":       core.LU{},
	}
	for name, set := range sets {
		for _, n := range []int{4, 8, 16} {
			in := randMat(rng, n)
			if _, err := VerifyIGEP(in, linF, set); err != nil {
				t.Fatalf("%s n=%d: %v", name, n, err)
			}
		}
	}
}

// TestTableOneGColumn validates the G column of Table 1 on live
// iterative runs.
func TestTableOneGColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for _, n := range []int{2, 4, 8, 16} {
		set := randSet(rng, n, 0.6)
		in := randMat(rng, n)
		if _, err := VerifyGEP(in, linF, set); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// TestTheorem22DetectsViolation: feeding G's trace to the F-state
// checker must fail for some instance (F and G read genuinely
// different states — that is the whole point of §2.2.1), proving the
// checker has teeth.
func TestTheorem22DetectsViolation(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	violated := false
	for trial := 0; trial < 10 && !violated; trial++ {
		n := 4
		in := randMat(rng, n)
		var rec Recorder
		c := in.Clone()
		core.RunGEP[int64](c, rec.Wrap(linF), core.Full{})
		if err := CheckTheorem22(rec.Updates(), in); err != nil {
			violated = true
		}
	}
	if !violated {
		t.Fatal("CheckTheorem22 accepted G traces; checker is vacuous")
	}
}

// TestTheorem21DetectsViolations feeds corrupted traces to the checker.
func TestTheorem21DetectsViolations(t *testing.T) {
	n := 4
	set := core.Full{}
	in := matrix.NewSquare[int64](n)
	var rec Recorder
	c := in.Clone()
	core.RunIGEP[int64](c, rec.Wrap(linF), set)
	good := rec.Updates()

	// Duplicate an update → (b) must fail.
	dup := append(append([]Update{}, good...), good[0])
	if err := CheckTheorem21(dup, set, n); err == nil {
		t.Fatal("duplicated update not detected")
	}

	// Drop an update → (a) must fail.
	if err := CheckTheorem21(good[1:], set, n); err == nil {
		t.Fatal("missing update not detected")
	}

	// Swap two same-cell updates → (c) must fail.
	swapped := append([]Update{}, good...)
	ia, ib := -1, -1
	for x := range swapped {
		for y := x + 1; y < len(swapped); y++ {
			if swapped[x].I == swapped[y].I && swapped[x].J == swapped[y].J {
				ia, ib = x, y
				break
			}
		}
		if ia >= 0 {
			break
		}
	}
	if ia < 0 {
		t.Fatal("no same-cell pair found")
	}
	swapped[ia], swapped[ib] = swapped[ib], swapped[ia]
	if err := CheckTheorem21(swapped, set, n); err == nil {
		t.Fatal("out-of-order same-cell updates not detected")
	}

	// An update outside Σ_G → (a) must fail.
	gauss := core.Gaussian{}
	bad := []Update{{I: 0, J: 0, K: 0}}
	if err := CheckTheorem21(bad, gauss, 1); err == nil {
		t.Fatal("foreign update not detected")
	}
}

// TestRecorderConcurrent ensures tracing a parallel ABCD run records
// every update exactly once.
func TestRecorderConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	n := 32
	in := randMat(rng, n)
	var rec Recorder
	c := in.Clone()
	core.RunABCD[int64](c, rec.Wrap(func(i, j, k int, x, u, v, w int64) int64 {
		if d := u + v; d < x {
			return d
		}
		return x
	}), core.Full{}, core.WithParallel[int64](4))
	if got, want := rec.Len(), n*n*n; got != want {
		t.Fatalf("recorded %d updates, want %d", got, want)
	}
	if err := CheckTheorem21(rec.Updates(), core.Full{}, n); err != nil {
		// (c) uses observation order, which for a correct parallel run
		// is still per-cell monotone because same-cell updates are
		// ordered by the recursion's sequential dependencies.
		t.Fatalf("parallel trace violates theorem 2.1: %v", err)
	}
}

// TestTheorem22HoldsForABCD: the multithreaded recursion (run
// serially) is another linear extension of I-GEP's partial order, so
// Theorem 2.2's state characterization must hold for its traces too.
func TestTheorem22HoldsForABCD(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	for _, n := range []int{4, 8, 16} {
		set := randSet(rng, n, 0.6)
		in := randMat(rng, n)
		var rec Recorder
		c := in.Clone()
		// Base 1: Theorem 2.2 describes the pure recursion's reads.
		core.RunABCD[int64](c, rec.Wrap(linF), set, core.WithBaseSize[int64](1))
		ups := rec.Updates()
		if err := CheckTheorem21(ups, set, n); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := CheckTheorem22(ups, in); err != nil {
			t.Fatalf("n=%d: ABCD trace violates theorem 2.2: %v", n, err)
		}
	}
}

// TestIGEPAndABCDSameFinalStateOnArbitraryInstances: even where both
// diverge from G, F and the ABCD refinement agree with each other.
func TestIGEPAndABCDSameFinalStateOnArbitraryInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	for trial := 0; trial < 10; trial++ {
		n := 8
		set := randSet(rng, n, 0.8)
		in := randMat(rng, n)
		a := in.Clone()
		core.RunIGEP[int64](a, linF, set)
		b := in.Clone()
		core.RunABCD[int64](b, linF, set)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if a.At(i, j) != b.At(i, j) {
					t.Fatalf("trial %d: F and ABCD diverge at (%d,%d)", trial, i, j)
				}
			}
		}
	}
}
