// Package trace instruments GEP executions and checks them against the
// paper's theory:
//
//   - Theorem 2.1: I-GEP performs exactly the updates of Σ_G, each at
//     most once, and per-cell in increasing k order.
//   - Theorem 2.2: immediately before I-GEP applies ⟨i,j,k⟩, the four
//     operands hold the historical states c_{k-1}(i,j),
//     c_{π(j,k)}(i,k), c_{π(i,k)}(k,j) and c_{δ(i,j,k)}(k,k).
//   - Table 1 (column G): the iterative GEP reads states ĉ_{k-1}(i,j),
//     ĉ_{k-[j<=k]}(i,k), ĉ_{k-[i<=k]}(k,j) and
//     ĉ_{k-[(i<k) ∨ (i=k ∧ j<=k)]}(k,k).
//
// The checkers power both the test suite and the `gep-bench table1`
// experiment. States are numbered 0-based with -1 for the initial
// value, matching package core.
//
// Key types and entry points:
//
//   - Recorder: wraps a core.UpdateFunc to capture every applied
//     update (triple, timestamp, operand values, result); safe for
//     concurrent use so parallel executions can be traced.
//   - CheckTheorem21 / CheckTheorem22 / CheckTableOneG: the three
//     verifiers over a recorded update stream.
//   - VerifyIGEP / VerifyGEP: one-call run-and-check wrappers used by
//     the table1 experiment; they return the update count checked.
package trace
