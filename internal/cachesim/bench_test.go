package cachesim

import "testing"

func BenchmarkAccessSetAssociative(b *testing.B) {
	c := New("b", 512<<10, 64, 8)
	for i := 0; i < b.N; i++ {
		c.Access(int64(i*64) & (1<<22 - 1))
	}
}

func BenchmarkAccessFullyAssociative(b *testing.B) {
	c := New("b", 512<<10, 64, 0)
	for i := 0; i < b.N; i++ {
		c.Access(int64(i*64) & (1<<22 - 1))
	}
}

func BenchmarkSimulateOptimal(b *testing.B) {
	trace := make([]int64, 1<<15)
	for i := range trace {
		trace[i] = int64((i * 2654435761) & (1<<16 - 1) &^ 63)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SimulateOptimal(trace, 4096, 64)
	}
}
