package cachesim

// Hierarchy chains cache levels: an access that misses level i
// proceeds to level i+1 (inclusive hierarchy, as Cachegrind models).
type Hierarchy struct {
	Levels []*Cache
}

// NewHierarchy builds a hierarchy from first (fastest) to last.
func NewHierarchy(levels ...*Cache) *Hierarchy {
	return &Hierarchy{Levels: levels}
}

// IdealCache returns a single-level fully associative hierarchy with
// the given M and B — the ideal-cache model of the paper.
func IdealCache(m, b int64) *Hierarchy {
	return NewHierarchy(New("ideal", m, b, 0))
}

// Pentium4Xeon models the paper's Intel P4 Xeon: 8 KB 4-way L1 and
// 512 KB 8-way L2, both with 64-byte lines (Table 2).
func Pentium4Xeon() *Hierarchy {
	return NewHierarchy(
		New("L1", 8<<10, 64, 4),
		New("L2", 512<<10, 64, 8),
	)
}

// Opteron models the paper's AMD Opteron 250/850: 64 KB 2-way L1 and
// 1 MB 8-way L2, 64-byte lines (Table 2).
func Opteron() *Hierarchy {
	return NewHierarchy(
		New("L1", 64<<10, 64, 2),
		New("L2", 1<<20, 64, 8),
	)
}

// Scaled returns a two-level fully associative hierarchy with the
// given capacities — the ideal-cache model at reduced size, so that
// small simulation matrices exercise the same capacity ratios as the
// paper's full-size runs. (Full associativity avoids the power-of-two
// row-stride conflict artifacts that set-associative geometries
// inject at small n; use Pentium4Xeon/Opteron for hardware-faithful
// associativity.)
func Scaled(l1, l2 int64, line int64) *Hierarchy {
	return NewHierarchy(
		New("L1", l1, line, 0),
		New("L2", l2, line, 0),
	)
}

// Access simulates one access at the byte address addr.
func (h *Hierarchy) Access(addr int64) {
	for _, c := range h.Levels {
		if !c.Access(addr) {
			return // hit at this level
		}
	}
}

// Stats returns per-level counters, fastest first.
func (h *Hierarchy) Stats() []Stats {
	out := make([]Stats, len(h.Levels))
	for i, c := range h.Levels {
		out[i] = c.Stats()
	}
	return out
}

// Reset clears all levels.
func (h *Hierarchy) Reset() {
	for _, c := range h.Levels {
		c.Reset()
	}
}

// Level returns the stats of level i (0 = fastest).
func (h *Hierarchy) Level(i int) Stats { return h.Levels[i].Stats() }
