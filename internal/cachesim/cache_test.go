package cachesim

import (
	"math/rand"
	"testing"

	"gep/internal/core"
	"gep/internal/matrix"
)

func TestColdMisses(t *testing.T) {
	c := New("t", 1024, 64, 0)
	// First touch of each block misses; repeat hits.
	for rep := 0; rep < 3; rep++ {
		for addr := int64(0); addr < 1024; addr += 64 {
			c.Access(addr)
		}
	}
	s := c.Stats()
	if s.Accesses != 48 {
		t.Fatalf("accesses = %d, want 48", s.Accesses)
	}
	if s.Misses != 16 {
		t.Fatalf("misses = %d, want 16 (cold only)", s.Misses)
	}
}

func TestSequentialScanMisses(t *testing.T) {
	// Scanning N bytes with line size B incurs exactly N/B misses
	// regardless of M — the O(n/B) scanning bound.
	c := New("t", 4096, 64, 0)
	const n = 1 << 20
	for addr := int64(0); addr < n; addr++ {
		c.Access(addr)
	}
	if got, want := c.Stats().Misses, int64(n/64); got != want {
		t.Fatalf("scan misses = %d, want %d", got, want)
	}
}

func TestLRUEviction(t *testing.T) {
	// Fully associative, 2 lines of 64 bytes. Access A, B, C: C evicts
	// A (LRU). Then A misses again, evicting B.
	c := New("t", 128, 64, 0)
	a, b, cc := int64(0), int64(64), int64(128)
	for _, addr := range []int64{a, b, cc, a, b} {
		c.Access(addr)
	}
	// misses: a(cold) b(cold) c(cold) a(evicted) b(evicted) = 5
	if got := c.Stats().Misses; got != 5 {
		t.Fatalf("misses = %d, want 5", got)
	}
	// LRU promotion: a,b,a then c: c should evict b, not a.
	c.Reset()
	for _, addr := range []int64{a, b, a, cc, a} {
		c.Access(addr)
	}
	// misses: a, b, c = 3; final a hits.
	if got := c.Stats().Misses; got != 3 {
		t.Fatalf("with promotion: misses = %d, want 3", got)
	}
}

func TestSetAssociativeConflicts(t *testing.T) {
	// Direct-mapped (assoc 1) cache, 2 sets of 64B: addresses 0 and 128
	// map to set 0 and evict each other; address 64 maps to set 1.
	c := New("t", 128, 64, 1)
	for rep := 0; rep < 4; rep++ {
		c.Access(0)
		c.Access(128)
	}
	if got := c.Stats().Misses; got != 8 {
		t.Fatalf("conflict misses = %d, want 8 (ping-pong)", got)
	}
	c.Access(64)
	c.Access(64)
	if got := c.Stats().Misses; got != 9 {
		t.Fatalf("misses = %d, want 9", got)
	}
}

func TestFullyAssociativeNoConflicts(t *testing.T) {
	// The same ping-pong working set fits a fully associative cache.
	c := New("t", 128, 64, 0)
	for rep := 0; rep < 4; rep++ {
		c.Access(0)
		c.Access(128)
	}
	if got := c.Stats().Misses; got != 2 {
		t.Fatalf("misses = %d, want 2 (cold only)", got)
	}
}

// refLRU is a deliberately naive reference LRU used to validate both
// internal set representations.
type refLRU struct {
	ways int
	mru  []int64 // MRU first
}

func (r *refLRU) access(block int64) bool {
	for i, t := range r.mru {
		if t == block {
			copy(r.mru[1:i+1], r.mru[:i])
			r.mru[0] = block
			return false // hit
		}
	}
	if len(r.mru) >= r.ways {
		r.mru = r.mru[:r.ways-1]
	}
	r.mru = append([]int64{block}, r.mru...)
	return true // miss
}

// TestBothRepresentationsMatchReference drives the slice-based LRU
// (ways <= 64) and the map-based LRU (ways > 64) with random traces
// and compares every access outcome against the naive reference.
func TestBothRepresentationsMatchReference(t *testing.T) {
	for _, ways := range []int{2, 8, 64, 128, 512} {
		c := New("t", int64(ways)*64, 64, 0) // fully associative, `ways` lines
		ref := &refLRU{ways: ways}
		rng := rand.New(rand.NewSource(int64(ways)))
		for i := 0; i < 20000; i++ {
			addr := int64(rng.Intn(4*ways)) * 64
			got := c.Access(addr)
			want := ref.access(addr >> 6)
			if got != want {
				t.Fatalf("ways=%d access %d: miss=%v, reference says %v", ways, i, got, want)
			}
		}
	}
}

func TestHierarchyInclusion(t *testing.T) {
	h := NewHierarchy(
		New("L1", 128, 64, 0),
		New("L2", 1024, 64, 0),
	)
	// Working set of 4 lines: thrashes L1 (2 lines), fits L2.
	for rep := 0; rep < 10; rep++ {
		for a := int64(0); a < 256; a += 64 {
			h.Access(a)
		}
	}
	l1, l2 := h.Level(0), h.Level(1)
	if l1.Misses != 40 {
		t.Fatalf("L1 misses = %d, want 40 (thrash)", l1.Misses)
	}
	if l2.Misses != 4 {
		t.Fatalf("L2 misses = %d, want 4 (cold only)", l2.Misses)
	}
	if l2.Accesses != l1.Misses {
		t.Fatalf("L2 accesses (%d) != L1 misses (%d)", l2.Accesses, l1.Misses)
	}
}

func TestTracedGridCountsAccesses(t *testing.T) {
	h := IdealCache(1024, 64)
	m := matrix.NewSquare[float64](8)
	tg := NewTraced[float64](m, h, RowMajor, 0)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			tg.Set(i, j, 1)
			_ = tg.At(i, j)
		}
	}
	if got := h.Level(0).Accesses; got != 128 {
		t.Fatalf("accesses = %d, want 128", got)
	}
	// 8x8 float64 = 512 bytes = 8 lines: cold misses only.
	if got := h.Level(0).Misses; got != 8 {
		t.Fatalf("misses = %d, want 8", got)
	}
	if m.At(3, 3) != 1 {
		t.Fatal("traced write did not reach inner grid")
	}
}

func TestMortonTiledLayoutDistinctAndDense(t *testing.T) {
	idx := MortonTiled(4)(16)
	seen := make(map[int64]bool)
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			z := idx(i, j)
			if z < 0 || z >= 256 {
				t.Fatalf("index out of range: %d", z)
			}
			if seen[z] {
				t.Fatalf("duplicate index %d", z)
			}
			seen[z] = true
		}
	}
}

// TestIGEPBeatsGEPOnIdealCache is the headline qualitative result:
// on the same ideal cache, I-GEP's misses are far below GEP's
// (O(n³/(B√M)) vs O(n³/B)).
func TestIGEPBeatsGEPOnIdealCache(t *testing.T) {
	const n = 64
	fw := core.UpdateFunc[int64](func(i, j, k int, x, u, v, w int64) int64 {
		if d := u + v; d < x {
			return d
		}
		return x
	})
	run := func(algo func(g matrix.Grid[int64])) int64 {
		h := IdealCache(4096, 64) // M = 4 KB, B = 64 B: 8 lines... 64 lines
		m := matrix.NewSquare[int64](n)
		m.Apply(func(i, j int, _ int64) int64 { return int64((i*7+j*13)%100 + 1) })
		g := NewTraced[int64](m, h, RowMajor, 0)
		algo(g)
		return h.Level(0).Misses
	}
	gepMisses := run(func(g matrix.Grid[int64]) { core.RunGEP[int64](g, fw, core.Full{}) })
	igepMisses := run(func(g matrix.Grid[int64]) { core.RunIGEP[int64](g, fw, core.Full{}) })
	if igepMisses*2 >= gepMisses {
		t.Fatalf("I-GEP misses (%d) not well below GEP misses (%d)", igepMisses, gepMisses)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New("x", 100, 64, 0) },  // capacity not multiple of block
		func() { New("x", 0, 64, 0) },    // zero capacity
		func() { New("x", 1024, 0, 0) },  // zero block
		func() { New("x", 192, 64, 1) },  // 3 sets: not a power of two
		func() { New("x", 1024, 48, 0) }, // block not a power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
