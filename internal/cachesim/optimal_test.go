package cachesim

import (
	"math/rand"
	"testing"

	"gep/internal/core"
	"gep/internal/matrix"
)

func TestOptimalHandTrace(t *testing.T) {
	// Two-line cache, blocks A B C (64-byte strided). Trace:
	// A B C A B — LRU: A B C(evict A) A(evict B) B(evict C) = 5 misses.
	// OPT: on C's miss evict B (used later than... next uses: A at 3,
	// B at 4 → evict B), then A hits, B misses = 4 misses.
	trace := []int64{0, 64, 128, 0, 64}
	if got := SimulateLRU(trace, 128, 64); got != 5 {
		t.Fatalf("LRU misses = %d, want 5", got)
	}
	if got := SimulateOptimal(trace, 128, 64); got != 4 {
		t.Fatalf("OPT misses = %d, want 4", got)
	}
}

func TestOptimalNeverWorseThanLRU(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for trial := 0; trial < 20; trial++ {
		n := 2000
		span := int64(rng.Intn(60) + 4)
		trace := make([]int64, n)
		for i := range trace {
			trace[i] = int64(rng.Intn(int(span))) * 64
		}
		m := int64(rng.Intn(16)+2) * 64
		lru := SimulateLRU(trace, m, 64)
		opt := SimulateOptimal(trace, m, 64)
		if opt > lru {
			t.Fatalf("trial %d: OPT (%d) > LRU (%d)", trial, opt, lru)
		}
		// Cold misses are a common lower bound.
		distinct := map[int64]bool{}
		for _, a := range trace {
			distinct[a>>6] = true
		}
		if opt < int64(len(distinct)) {
			t.Fatalf("OPT (%d) below cold misses (%d)", opt, len(distinct))
		}
	}
}

// TestIdealCacheLRUWithinConstantOfOPT validates the simulator's core
// modeling assumption on a real algorithm trace: LRU misses on I-GEP
// are within a small constant of Belady's optimal at the same size
// (the Sleator-Tarjan/FOCS'99 justification for simulating the ideal
// cache with LRU).
func TestIdealCacheLRUWithinConstantOfOPT(t *testing.T) {
	const n = 32
	rec := &TraceRecorder{}
	m := matrix.NewSquare[int64](n)
	m.Apply(func(i, j int, _ int64) int64 { return int64((i*7+j)%50 + 1) })
	g := NewRecording[int64](m, rec, RowMajor, 0)
	fw := core.UpdateFunc[int64](func(i, j, k int, x, u, v, w int64) int64 {
		if s := u + v; s < x {
			return s
		}
		return x
	})
	core.RunIGEP[int64](g, fw, core.Full{})

	for _, cache := range []int64{1024, 4096} {
		lru := SimulateLRU(rec.Addrs(), cache, 64)
		opt := SimulateOptimal(rec.Addrs(), cache, 64)
		if opt == 0 {
			t.Fatal("degenerate trace")
		}
		if ratio := float64(lru) / float64(opt); ratio > 4 {
			t.Fatalf("M=%d: LRU/OPT = %.2f, want small constant", cache, ratio)
		}
	}
}

func TestTLBLayoutEffect(t *testing.T) {
	// The paper's §4.2 motivation: Morton-tiled base blocks touch far
	// fewer pages, so the recursion incurs fewer TLB misses than the
	// same recursion over a row-major layout.
	const n = 128
	run := func(layout func(n int) func(i, j int) int64) int64 {
		tlb := TLB(16, 4096) // deliberately small TLB
		m := matrix.NewSquare[int64](n)
		h := NewHierarchy(tlb)
		g := NewTraced[int64](m, h, layout, 0)
		fw := core.UpdateFunc[int64](func(i, j, k int, x, u, v, w int64) int64 { return x + u + v + w })
		core.RunIGEP[int64](g, fw, core.Full{}, core.WithBaseSize[int64](32))
		return tlb.Stats().Misses
	}
	rowMajor := run(RowMajor)
	morton := run(MortonTiled(32))
	if morton*2 >= rowMajor {
		t.Fatalf("Morton TLB misses (%d) not well below row-major (%d)", morton, rowMajor)
	}
}

func TestSimulateValidation(t *testing.T) {
	for _, f := range []func(){
		func() { SimulateOptimal([]int64{0}, 32, 64) },  // cache < 1 line
		func() { SimulateOptimal([]int64{0}, 128, 48) }, // non-pow2 block
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
