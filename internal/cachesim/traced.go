package cachesim

import (
	"gep/internal/matrix"
)

// Layout maps a cell (i, j) of an n×n matrix to its element index in
// memory order; the traced grid multiplies by the element size to get
// byte addresses. The two layouts the paper compares are provided.
type Layout func(n int) func(i, j int) int64

// RowMajor is the standard C layout.
func RowMajor(n int) func(i, j int) int64 {
	return func(i, j int) int64 { return int64(i)*int64(n) + int64(j) }
}

// MortonTiled is the paper's bit-interleaved layout (§4.2): block×block
// tiles in Morton order of tile coordinates, row-major inside tiles.
func MortonTiled(block int) Layout {
	return func(n int) func(i, j int) int64 {
		t := matrix.NewTiled[struct{}](max64(n, block), block)
		return func(i, j int) int64 { return int64(t.Index(i, j)) }
	}
}

func max64(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Traced wraps a Grid so every element access is simulated on a cache
// hierarchy. Distinct matrices sharing one hierarchy should use
// distinct base addresses (see NextBase).
type Traced[T any] struct {
	inner    matrix.Grid[T]
	h        *Hierarchy
	index    func(i, j int) int64
	base     int64
	elemSize int64
}

// ElemSize8 is the element size used for all traces (float64/int64).
const ElemSize8 = 8

// NewTraced wraps inner with address tracing on hierarchy h, placing
// the matrix at the given base byte address with the given layout.
func NewTraced[T any](inner matrix.Grid[T], h *Hierarchy, layout func(n int) func(i, j int) int64, base int64) *Traced[T] {
	return &Traced[T]{
		inner:    inner,
		h:        h,
		index:    layout(inner.N()),
		base:     base,
		elemSize: ElemSize8,
	}
}

// NextBase returns a base address suitable for a matrix placed after
// one of side n at the given base (block-aligned with a guard page, so
// two matrices never share a cache line).
func NextBase(base int64, n int) int64 {
	sz := int64(n)*int64(n)*ElemSize8 + 4096
	return base + (sz+4095)&^4095
}

// N implements matrix.Grid.
func (t *Traced[T]) N() int { return t.inner.N() }

// At implements matrix.Grid, recording a read.
func (t *Traced[T]) At(i, j int) T {
	t.h.Access(t.base + t.index(i, j)*t.elemSize)
	return t.inner.At(i, j)
}

// Set implements matrix.Grid, recording a write.
func (t *Traced[T]) Set(i, j int, v T) {
	t.h.Access(t.base + t.index(i, j)*t.elemSize)
	t.inner.Set(i, j, v)
}

// TracedRect is the Rect counterpart, used for C-GEP's aux matrices.
type TracedRect[T any] struct {
	inner    matrix.Rect[T]
	h        *Hierarchy
	cols     int64
	base     int64
	elemSize int64
}

// NewTracedRect wraps a rows×cols Rect in row-major address tracing.
func NewTracedRect[T any](inner matrix.Rect[T], h *Hierarchy, cols int, base int64) *TracedRect[T] {
	return &TracedRect[T]{inner: inner, h: h, cols: int64(cols), base: base, elemSize: ElemSize8}
}

// At implements matrix.Rect.
func (t *TracedRect[T]) At(i, j int) T {
	t.h.Access(t.base + (int64(i)*t.cols+int64(j))*t.elemSize)
	return t.inner.At(i, j)
}

// Set implements matrix.Rect.
func (t *TracedRect[T]) Set(i, j int, v T) {
	t.h.Access(t.base + (int64(i)*t.cols+int64(j))*t.elemSize)
	t.inner.Set(i, j, v)
}

var _ matrix.Grid[float64] = (*Traced[float64])(nil)
var _ matrix.Rect[float64] = (*TracedRect[float64])(nil)
