// Package cachesim is an ideal-cache-model simulator: it counts the
// block transfers (I/Os) an address trace incurs on a configurable
// cache hierarchy. It stands in for the Cachegrind profiler the paper
// uses (§4): cache-miss counts on a deterministic trace are themselves
// deterministic, so the simulated counts reproduce the paper's
// miss-count comparisons exactly in shape.
//
// The ideal-cache model assumes an optimal offline replacement policy;
// following standard practice (Frigo et al., FOCS'99) the simulator
// uses LRU, which is within a constant factor of optimal for
// algorithms with regular reuse and is what real hardware approximates.
// Both fully associative and set-associative geometries are supported,
// so the paper's concrete L1 (8 KB, 4-way, B = 64 B) and L2 (512 KB,
// 8-way, B = 64 B) can be modeled as well as the abstract (M, B)
// ideal cache.
//
// Key types and entry points:
//
//   - Cache / Hierarchy: one simulated level and an inclusive chain of
//     levels, with per-level Stats counters. Pentium4Xeon and Opteron
//     build the paper's Table 2 machines; Scaled builds reduced
//     geometries so small matrices exercise the paper's capacity
//     ratios; TLB models page-translation pressure (§4.2's stated
//     reason for bit-interleaved layouts).
//   - TracedGrid / TracedRect (traced.go): matrix.Grid wrappers that
//     feed every element access through a hierarchy under a chosen
//     address layout (RowMajor, MortonTiled).
//   - TraceRecorder / SimulateLRU / SimulateOptimal (optimal.go):
//     record a trace once and replay it against many cache sizes, or
//     against Belady's provably minimal MIN policy.
//
// Every simulated miss is also totaled in internal/metrics
// ("cachesim.misses"), so BENCH_*.json reports carry the simulated
// I/O traffic of each experiment.
package cachesim
