package cachesim

import "container/heap"

// Offline optimal (Belady/MIN) replacement. The ideal-cache model of
// the paper assumes an optimal offline policy; the online simulator
// uses LRU (a constant-factor substitute per the standard
// resource-augmentation argument). This file provides the genuine
// article for validation: record a trace, then replay it evicting the
// block whose next use is farthest in the future.

// TraceRecorder captures raw byte addresses for offline simulation.
type TraceRecorder struct {
	addrs []int64
}

// Access records one access.
func (t *TraceRecorder) Access(addr int64) { t.addrs = append(t.addrs, addr) }

// Len returns the number of recorded accesses.
func (t *TraceRecorder) Len() int { return len(t.addrs) }

// Addrs returns the recorded addresses.
func (t *TraceRecorder) Addrs() []int64 { return t.addrs }

// RecordingGrid adapts a TraceRecorder to the same role as Traced: it
// records instead of simulating, so one run can feed many replays.
type RecordingGrid[T any] struct {
	inner interface {
		N() int
		At(i, j int) T
		Set(i, j int, v T)
	}
	rec   *TraceRecorder
	index func(i, j int) int64
	base  int64
}

// NewRecording wraps a grid with address recording.
func NewRecording[T any](inner interface {
	N() int
	At(i, j int) T
	Set(i, j int, v T)
}, rec *TraceRecorder, layout func(n int) func(i, j int) int64, base int64) *RecordingGrid[T] {
	return &RecordingGrid[T]{inner: inner, rec: rec, index: layout(inner.N()), base: base}
}

// N implements matrix.Grid.
func (g *RecordingGrid[T]) N() int { return g.inner.N() }

// At implements matrix.Grid.
func (g *RecordingGrid[T]) At(i, j int) T {
	g.rec.Access(g.base + g.index(i, j)*ElemSize8)
	return g.inner.At(i, j)
}

// Set implements matrix.Grid.
func (g *RecordingGrid[T]) Set(i, j int, v T) {
	g.rec.Access(g.base + g.index(i, j)*ElemSize8)
	g.inner.Set(i, j, v)
}

// SimulateLRU replays a trace on a fully associative LRU cache of
// capacity m and block size b, returning the miss count.
func SimulateLRU(addrs []int64, m, b int64) int64 {
	c := New("replay", m, b, 0)
	var misses int64
	for _, a := range addrs {
		if c.Access(a) {
			misses++
		}
	}
	return misses
}

// SimulateOptimal replays a trace under Belady's MIN policy on a fully
// associative cache of capacity m and block size b, returning the
// (provably minimal) miss count.
func SimulateOptimal(addrs []int64, m, b int64) int64 {
	lines := int(m / b)
	if lines < 1 {
		panic("cachesim: cache smaller than one line")
	}
	shift := uint(0)
	for int64(1)<<shift < b {
		shift++
	}
	if int64(1)<<shift != b {
		panic("cachesim: block size not a power of two")
	}
	n := len(addrs)
	blocks := make([]int64, n)
	for i, a := range addrs {
		blocks[i] = a >> shift
	}
	// nextUse[i] = index of the next access to blocks[i] after i
	// (n if none).
	nextUse := make([]int, n)
	last := make(map[int64]int, lines*4)
	for i := n - 1; i >= 0; i-- {
		if nx, ok := last[blocks[i]]; ok {
			nextUse[i] = nx
		} else {
			nextUse[i] = n
		}
		last[blocks[i]] = i
	}

	resident := make(map[int64]bool, lines)
	// Max-heap of (nextUse, block) for resident blocks; entries may be
	// stale (lazy deletion via the current map).
	h := &useHeap{}
	current := make(map[int64]int, lines) // block -> its live next-use
	var misses int64
	for i := 0; i < n; i++ {
		blk := blocks[i]
		if resident[blk] {
			current[blk] = nextUse[i]
			heap.Push(h, useEntry{nextUse[i], blk})
			continue
		}
		misses++
		if len(resident) >= lines {
			// Evict the resident block with the farthest next use.
			for {
				top := heap.Pop(h).(useEntry)
				if resident[top.block] && current[top.block] == top.next {
					delete(resident, top.block)
					delete(current, top.block)
					break
				}
			}
		}
		resident[blk] = true
		current[blk] = nextUse[i]
		heap.Push(h, useEntry{nextUse[i], blk})
	}
	missCount.Add(misses)
	return misses
}

type useEntry struct {
	next  int
	block int64
}

type useHeap []useEntry

func (h useHeap) Len() int            { return len(h) }
func (h useHeap) Less(i, j int) bool  { return h[i].next > h[j].next } // max-heap
func (h useHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *useHeap) Push(x interface{}) { *h = append(*h, x.(useEntry)) }
func (h *useHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// TLB returns a cache modeling a translation lookaside buffer:
// `entries` fully associative page translations of the given page
// size. TLB pressure is the paper's stated reason for the
// bit-interleaved layout (§4.2): Morton-contiguous blocks touch far
// fewer distinct pages per base case.
func TLB(entries int, pageSize int64) *Cache {
	return New("TLB", int64(entries)*pageSize, pageSize, 0)
}
