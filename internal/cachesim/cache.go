package cachesim

import (
	"fmt"

	"gep/internal/metrics"
)

// missCount totals simulated misses across every Cache instance and
// level (a Hierarchy charges the miss at each level it passes
// through). Per-cache breakdowns stay on Cache.Stats; this global sum
// is the process-wide telemetry internal/bench snapshots into
// BENCH_*.json, where "how much simulated traffic did this experiment
// generate" is the interesting number.
var missCount = metrics.New("cachesim.misses")

// Cache simulates one level: capacity bytes, block (line) size bytes,
// and associativity (ways per set; Assoc <= 0 means fully associative).
type Cache struct {
	Name      string
	Capacity  int64
	BlockSize int64
	Assoc     int

	sets     []lruSet
	setShift uint  // log2(BlockSize)
	setMask  int64 // numSets - 1

	accesses int64
	misses   int64
}

// Stats reports the access and miss counters of one cache level.
type Stats struct {
	Name     string
	Accesses int64
	Misses   int64
}

// MissRate returns misses/accesses, or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// String renders the counters in the harness's one-line report form.
func (s Stats) String() string {
	return fmt.Sprintf("%s: %d accesses, %d misses (%.4f%%)",
		s.Name, s.Accesses, s.Misses, 100*s.MissRate())
}

// New returns a cache with the given geometry. capacity and block must
// be powers of two with block <= capacity; assoc <= 0 selects full
// associativity.
func New(name string, capacity, block int64, assoc int) *Cache {
	if capacity <= 0 || block <= 0 || capacity%block != 0 {
		panic(fmt.Sprintf("cachesim: bad geometry M=%d B=%d", capacity, block))
	}
	lines := capacity / block
	if assoc <= 0 || int64(assoc) > lines {
		assoc = int(lines)
	}
	numSets := lines / int64(assoc)
	if numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("cachesim: number of sets %d not a power of two", numSets))
	}
	shift := uint(0)
	for 1<<shift < block {
		shift++
	}
	if 1<<shift != block {
		panic(fmt.Sprintf("cachesim: block size %d not a power of two", block))
	}
	c := &Cache{
		Name:      name,
		Capacity:  capacity,
		BlockSize: block,
		Assoc:     assoc,
		sets:      make([]lruSet, numSets),
		setShift:  shift,
		setMask:   numSets - 1,
	}
	for i := range c.sets {
		c.sets[i].init(assoc)
	}
	return c
}

// Access simulates one access to the byte address addr; it returns
// true on a miss (block transfer from the next level).
func (c *Cache) Access(addr int64) bool {
	c.accesses++
	blockID := addr >> c.setShift
	set := &c.sets[blockID&c.setMask]
	if set.touch(blockID) {
		return false
	}
	c.misses++
	missCount.Inc()
	set.insert(blockID)
	return true
}

// Stats returns the current counters.
func (c *Cache) Stats() Stats {
	return Stats{Name: c.Name, Accesses: c.accesses, Misses: c.misses}
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	c.accesses, c.misses = 0, 0
	for i := range c.sets {
		c.sets[i].init(c.Assoc)
	}
}

// lruSet is one associativity set with move-to-front LRU. Small sets
// (hardware-like associativities) use a linear scan over a tag slice;
// large sets (fully associative ideal caches) use a map plus an
// intrusive doubly linked list.
type lruSet struct {
	ways int
	// Small-set representation: tags in MRU-first order.
	tags []int64
	// Large-set representation.
	index      map[int64]*lruNode
	head, tail *lruNode
}

type lruNode struct {
	tag        int64
	prev, next *lruNode
}

// mapThreshold is the associativity above which the map representation
// is used.
const mapThreshold = 64

func (s *lruSet) init(ways int) {
	s.ways = ways
	if ways <= mapThreshold {
		s.tags = s.tags[:0]
		if s.tags == nil {
			s.tags = make([]int64, 0, ways)
		}
		s.index, s.head, s.tail = nil, nil, nil
		return
	}
	s.tags = nil
	s.index = make(map[int64]*lruNode, ways)
	s.head, s.tail = nil, nil
}

// touch returns true and promotes the tag to MRU if present.
func (s *lruSet) touch(tag int64) bool {
	if s.index == nil {
		for i, t := range s.tags {
			if t == tag {
				copy(s.tags[1:i+1], s.tags[:i])
				s.tags[0] = tag
				return true
			}
		}
		return false
	}
	n, ok := s.index[tag]
	if !ok {
		return false
	}
	s.moveToFront(n)
	return true
}

// insert adds a missing tag as MRU, evicting the LRU entry if full.
func (s *lruSet) insert(tag int64) {
	if s.index == nil {
		if len(s.tags) >= s.ways {
			s.tags = s.tags[:s.ways-1] // drop LRU (last)
		}
		s.tags = append(s.tags, 0)
		copy(s.tags[1:], s.tags[:len(s.tags)-1])
		s.tags[0] = tag
		return
	}
	if len(s.index) >= s.ways {
		// Evict LRU (tail).
		old := s.tail
		s.unlink(old)
		delete(s.index, old.tag)
	}
	n := &lruNode{tag: tag}
	s.index[tag] = n
	s.pushFront(n)
}

func (s *lruSet) moveToFront(n *lruNode) {
	if s.head == n {
		return
	}
	s.unlink(n)
	s.pushFront(n)
}

func (s *lruSet) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		s.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (s *lruSet) pushFront(n *lruNode) {
	n.next = s.head
	if s.head != nil {
		s.head.prev = n
	}
	s.head = n
	if s.tail == nil {
		s.tail = n
	}
}
