package matrix

import (
	"math/rand"
	"testing"
)

// randBits fills b (and a Dense[bool] model of the same shape) with
// the same random cells.
func randBits(rng *rand.Rand, rows, cols int) (*Bits, *Dense[bool]) {
	b := NewBits(rows, cols)
	d := New[bool](rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := rng.Intn(2) == 1
			b.Set(i, j, v)
			d.Set(i, j, v)
		}
	}
	return b, d
}

func assertMatches(t *testing.T, b *Bits, d *Dense[bool], what string) {
	t.Helper()
	if b.Rows() != d.Rows() || b.Cols() != d.Cols() {
		t.Fatalf("%s: shape %dx%d vs model %dx%d", what, b.Rows(), b.Cols(), d.Rows(), d.Cols())
	}
	for i := 0; i < b.Rows(); i++ {
		for j := 0; j < b.Cols(); j++ {
			if b.At(i, j) != d.At(i, j) {
				t.Fatalf("%s: cell (%d,%d) = %v, model %v", what, i, j, b.At(i, j), d.At(i, j))
			}
		}
	}
}

// TestBitsAtSetMatchesModel drives random Set/At traffic through Bits
// and a Dense[bool] model over shapes straddling word boundaries.
func TestBitsAtSetMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, shape := range [][2]int{{1, 1}, {3, 63}, {5, 64}, {4, 65}, {7, 130}, {2, 200}} {
		b, d := randBits(rng, shape[0], shape[1])
		for trial := 0; trial < 500; trial++ {
			i, j := rng.Intn(shape[0]), rng.Intn(shape[1])
			v := rng.Intn(2) == 1
			b.Set(i, j, v)
			d.Set(i, j, v)
		}
		assertMatches(t, b, d, "Set/At")
	}
}

// TestBitsSubUnaligned exercises the classic packed-matrix bug class:
// sub-views whose first column falls mid-word. Writes through the view
// must land exactly on the viewed cells of the parent (edge masking),
// and reads must see the parent's cells at the offset position.
func TestBitsSubUnaligned(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const rows, cols = 9, 200
	for _, off := range []int{0, 1, 31, 63, 64, 65, 100, 127} {
		b, d := randBits(rng, rows, cols)
		r, c := 7, 70
		sb := b.Sub(1, off, r, c)
		sd := d.Sub(1, off, r, c)
		if wantAligned := off%64 == 0; sb.Aligned() != wantAligned {
			t.Fatalf("off=%d: Aligned() = %v, want %v", off, sb.Aligned(), wantAligned)
		}
		// Random writes through the view.
		for trial := 0; trial < 300; trial++ {
			i, j := rng.Intn(r), rng.Intn(c)
			v := rng.Intn(2) == 1
			sb.Set(i, j, v)
			sd.Set(i, j, v)
		}
		// Word-parallel Fill of a nested, further-offset view.
		sb.Sub(2, 3, 4, 50).Fill(true)
		for i := 2; i < 6; i++ {
			for j := 3; j < 53; j++ {
				sd.Set(i, j, true)
			}
		}
		assertMatches(t, b, d, "view writes (off="+string(rune('0'+off%10))+")")
		assertMatches(t, sb, UnpackBool(sb), "view self-consistency")
		// Cells outside the view rectangle were never touched: the
		// parent matches the model everywhere, checked above.
	}
}

// TestBitsRowSpanMasks checks RowSpan's edge-mask contract directly:
// OR-ing all-ones under the masks must set exactly the cells in
// [j0, j1) and nothing else, at every offset and width combination.
func TestBitsRowSpanMasks(t *testing.T) {
	for _, tc := range [][2]int{{0, 1}, {0, 64}, {0, 65}, {1, 64}, {63, 64}, {63, 65}, {5, 193}, {64, 128}, {70, 71}} {
		j0, j1 := tc[0], tc[1]
		b := NewBits(1, 200)
		words, fm, lm := b.RowSpan(0, j0, j1)
		n := len(words)
		if n == 1 {
			words[0] |= fm & lm
		} else {
			words[0] |= fm
			for w := 1; w < n-1; w++ {
				words[w] = ^uint64(0)
			}
			words[n-1] |= lm
		}
		for j := 0; j < 200; j++ {
			want := j >= j0 && j < j1
			if b.At(0, j) != want {
				t.Fatalf("RowSpan(%d,%d): cell %d = %v, want %v", j0, j1, j, b.At(0, j), want)
			}
		}
	}
}

// TestBitsBits64 checks the table-index extraction at word-straddling
// positions, on aligned matrices and unaligned views.
func TestBitsBits64(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	b, d := randBits(rng, 3, 300)
	check := func(v *Bits, m *Dense[bool], i, j, w int) {
		t.Helper()
		got := v.Bits64(i, j, w)
		for p := 0; p < w; p++ {
			want := m.At(i, j+p)
			if got>>uint(p)&1 == 1 != want {
				t.Fatalf("Bits64(%d,%d,%d) bit %d = %v, want %v", i, j, w, p, !want, want)
			}
		}
		if w < 64 && got>>uint(w) != 0 {
			t.Fatalf("Bits64(%d,%d,%d) has junk above bit %d: %#x", i, j, w, w, got)
		}
	}
	for _, j := range []int{0, 1, 60, 63, 64, 100, 127} {
		for _, w := range []int{1, 2, 8, 63, 64} {
			check(b, d, 1, j, w)
		}
	}
	sb, sd := b.Sub(0, 17, 3, 250), d.Sub(0, 17, 3, 250)
	for _, j := range []int{0, 1, 46, 47, 48, 110} {
		for _, w := range []int{1, 7, 8, 64} {
			check(sb, sd, 2, j, w)
		}
	}
}

// TestBitsCopyFromPhases covers word-wise same-phase copies and the
// per-cell mixed-phase fallback, through views on both sides.
func TestBitsCopyFromPhases(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, tc := range []struct{ dstOff, srcOff int }{{0, 0}, {3, 3}, {0, 5}, {5, 0}, {63, 1}} {
		parentD, modelD := randBits(rng, 6, 220)
		parentS, modelS := randBits(rng, 6, 220)
		r, c := 6, 140
		dst := parentD.Sub(0, tc.dstOff, r, c)
		src := parentS.Sub(0, tc.srcOff, r, c)
		dst.CopyFrom(src)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				modelD.Set(i, tc.dstOff+j, modelS.At(i, tc.srcOff+j))
			}
		}
		assertMatches(t, parentD, modelD, "CopyFrom")
	}
}

// TestBitsSwapRows checks the masked XOR swap, including on views
// (cells outside the view must stay put).
func TestBitsSwapRows(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	b, d := randBits(rng, 8, 190)
	v := b.Sub(0, 9, 8, 150)
	v.SwapRows(2, 6)
	for j := 9; j < 159; j++ {
		ri, rj := d.At(2, j), d.At(6, j)
		d.Set(2, j, rj)
		d.Set(6, j, ri)
	}
	assertMatches(t, b, d, "SwapRows")
	v.SwapRows(3, 3) // no-op
	assertMatches(t, b, d, "SwapRows self")
}

// TestBitsCount checks the popcount paths against per-cell counting.
func TestBitsCount(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	b, d := randBits(rng, 5, 170)
	v, m := b.Sub(1, 13, 4, 140), d.Sub(1, 13, 4, 140)
	want := 0
	for i := 0; i < 4; i++ {
		for j := 0; j < 140; j++ {
			if m.At(i, j) {
				want++
			}
		}
	}
	if got := v.Count(); got != want {
		t.Fatalf("Count() = %d, want %d", got, want)
	}
	for _, tc := range [][3]int{{0, 0, 140}, {1, 5, 6}, {2, 50, 52}, {3, 0, 1}, {3, 51, 115}} {
		i, j0, j1 := tc[0], tc[1], tc[2]
		want := 0
		for j := j0; j < j1; j++ {
			if m.At(i, j) {
				want++
			}
		}
		if got := v.CountRange(i, j0, j1); got != want {
			t.Fatalf("CountRange(%d,%d,%d) = %d, want %d", i, j0, j1, got, want)
		}
	}
}

// TestBitsPackRoundTrip checks PackBool/UnpackBool and EqualBits.
func TestBitsPackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	_, d := randBits(rng, 6, 130)
	p := PackBool(d)
	back := UnpackBool(p)
	if !Equal(d, back) {
		t.Fatal("PackBool/UnpackBool round trip diverged")
	}
	if !EqualBits(p, p.Clone()) {
		t.Fatal("Clone not EqualBits to source")
	}
	q := p.Clone()
	q.Set(5, 129, !q.At(5, 129))
	if EqualBits(p, q) {
		t.Fatal("EqualBits missed a flipped cell")
	}
}

// TestPadBitsPow2 checks padding: content preserved, new cells fill,
// pow-2 inputs cloned unchanged.
func TestPadBitsPow2(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	b, d := randBits(rng, 100, 100)
	b2 := b.Sub(0, 0, 100, 100) // exercise the view path too
	p := PadBitsPow2(b2, true)
	if p.N() != 128 {
		t.Fatalf("padded side %d, want 128", p.N())
	}
	for i := 0; i < 128; i++ {
		for j := 0; j < 128; j++ {
			want := true
			if i < 100 && j < 100 {
				want = d.At(i, j)
			}
			if p.At(i, j) != want {
				t.Fatalf("padded cell (%d,%d) = %v, want %v", i, j, p.At(i, j), want)
			}
		}
	}
	b64, _ := randBits(rng, 64, 64)
	p64 := PadBitsPow2(b64, false)
	if p64.N() != 64 || !EqualBits(b64, p64) {
		t.Fatal("pow-2 input not cloned unchanged")
	}
	if p64 == b64 {
		t.Fatal("PadBitsPow2 returned the input, want a copy")
	}
}

// TestBitsFill checks word-parallel Fill on unaligned views: exactly
// the view's cells change.
func TestBitsFill(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	b, d := randBits(rng, 4, 190)
	b.Sub(1, 37, 2, 100).Fill(true)
	for i := 1; i < 3; i++ {
		for j := 37; j < 137; j++ {
			d.Set(i, j, true)
		}
	}
	assertMatches(t, b, d, "Fill true")
	b.Sub(0, 63, 4, 66).Fill(false)
	for i := 0; i < 4; i++ {
		for j := 63; j < 129; j++ {
			d.Set(i, j, false)
		}
	}
	assertMatches(t, b, d, "Fill false")
}
