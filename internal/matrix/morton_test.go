package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMortonIndexSmall(t *testing.T) {
	// Z-order over a 4x4 grid:
	//  0  1  4  5
	//  2  3  6  7
	//  8  9 12 13
	// 10 11 14 15
	want := [][]int{
		{0, 1, 4, 5},
		{2, 3, 6, 7},
		{8, 9, 12, 13},
		{10, 11, 14, 15},
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if got := MortonIndex(i, j); got != want[i][j] {
				t.Errorf("MortonIndex(%d,%d) = %d, want %d", i, j, got, want[i][j])
			}
		}
	}
}

func TestMortonRoundTrip(t *testing.T) {
	f := func(i16, j16 uint16) bool {
		i, j := int(i16), int(j16)
		gi, gj := MortonDecode(MortonIndex(i, j))
		return gi == i && gj == j
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Morton order is a bijection on [0,n)² — all indices in
// [0, n²) are hit exactly once.
func TestMortonBijection(t *testing.T) {
	const n = 32
	seen := make([]bool, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			z := MortonIndex(i, j)
			if z < 0 || z >= n*n {
				t.Fatalf("MortonIndex(%d,%d) = %d out of range", i, j, z)
			}
			if seen[z] {
				t.Fatalf("MortonIndex(%d,%d) = %d duplicated", i, j, z)
			}
			seen[z] = true
		}
	}
}

// Property: quadrant contiguity — the key cache property. All cells of
// any aligned 2^r × 2^r quadrant occupy a contiguous Morton range.
func TestMortonQuadrantContiguity(t *testing.T) {
	const n = 64
	for r := 0; (1 << r) <= n; r++ {
		size := 1 << r
		for qi := 0; qi < n/size; qi++ {
			for qj := 0; qj < n/size; qj++ {
				lo, hi := 1<<62, -1
				for i := qi * size; i < (qi+1)*size; i++ {
					for j := qj * size; j < (qj+1)*size; j++ {
						z := MortonIndex(i, j)
						if z < lo {
							lo = z
						}
						if z > hi {
							hi = z
						}
					}
				}
				if hi-lo+1 != size*size {
					t.Fatalf("quadrant (%d,%d) size %d spans [%d,%d], not contiguous", qi, qj, size, lo, hi)
				}
			}
		}
	}
}

func TestTiledRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 8, 32} {
		for block := 1; block <= n; block *= 2 {
			a := NewSquare[float64](n)
			a.Apply(func(i, j int, _ float64) float64 { return rng.Float64() })
			tl := NewTiled[float64](n, block)
			tl.FromDense(a)
			back := tl.ToDense()
			if !back.EqualFunc(a, func(x, y float64) bool { return x == y }) {
				t.Fatalf("n=%d block=%d: FromDense/ToDense not a round trip", n, block)
			}
			// Element accessors agree with the dense original.
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if tl.At(i, j) != a.At(i, j) {
						t.Fatalf("Tiled.At(%d,%d) mismatch", i, j)
					}
				}
			}
		}
	}
}

func TestTiledSetAt(t *testing.T) {
	tl := NewTiled[int](8, 2)
	tl.Set(5, 6, 99)
	if tl.At(5, 6) != 99 {
		t.Fatal("Tiled Set/At round trip failed")
	}
	// Index covers the full range bijectively.
	seen := make([]bool, 64)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			idx := tl.Index(i, j)
			if seen[idx] {
				t.Fatalf("Index(%d,%d) = %d duplicated", i, j, idx)
			}
			seen[idx] = true
		}
	}
}

func TestTiledTileDataRowMajorWithinTile(t *testing.T) {
	tl := NewTiled[int](8, 4)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			tl.Set(i, j, i*8+j)
		}
	}
	tile := tl.TileData(1, 0) // tile rows 4..7, cols 0..3
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			want := (4+r)*8 + c
			if tile[r*4+c] != want {
				t.Fatalf("TileData[%d,%d] = %d, want %d", r, c, tile[r*4+c], want)
			}
		}
	}
}

func TestNewTiledValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { NewTiled[int](6, 2) },
		func() { NewTiled[int](8, 3) },
		func() { NewTiled[int](4, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			bad()
		}()
	}
}
