package matrix

import (
	"fmt"
	mathbits "math/bits"
	"strings"
)

// Bits is a dense rows×cols boolean matrix packed 64 cells per uint64:
// bit b of a row word holds one cell, so row operations (union, GF(2)
// row addition) run word-parallel — 64 cells per machine instruction —
// instead of cell-at-a-time. It mirrors Dense[bool]: row-major word
// storage, strided sub-views (including views whose first column falls
// mid-word), and it implements Grid[bool]/Rect[bool], so every generic
// engine in internal/core runs on it unchanged. The packed fast paths
// (internal/core/bits.go) detect it with PackedOf, exactly as the flat
// fast path detects *Dense[T] with Flat.
//
// Storage layout: cell (i, j) lives in data[i*stride + (off+j)/64] at
// bit (off+j)%64. off is 0 for matrices created with NewBits and may be
// 1..63 for sub-views starting at a word-unaligned column; stride is
// the parent's word stride for views. Word ops on views mask the edge
// words, so a view never reads or writes cells outside its rectangle.
type Bits struct {
	data   []uint64
	rows   int
	cols   int
	stride int // words per row step in the backing storage
	off    int // bit offset of column 0 within the row's first word
}

// NewBits returns a zero-initialized rows×cols packed boolean matrix.
func NewBits(rows, cols int) *Bits {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", rows, cols))
	}
	stride := (cols + 63) >> 6
	return &Bits{
		data:   make([]uint64, rows*stride),
		rows:   rows,
		cols:   cols,
		stride: stride,
	}
}

// NewBitsSquare returns a zero-initialized n×n packed boolean matrix.
func NewBitsSquare(n int) *Bits { return NewBits(n, n) }

// Rows returns the number of rows.
func (b *Bits) Rows() int { return b.rows }

// Cols returns the number of columns.
func (b *Bits) Cols() int { return b.cols }

// N returns the side length of a square matrix and panics otherwise;
// it makes *Bits satisfy Grid[bool].
func (b *Bits) N() int {
	if b.rows != b.cols {
		panic(fmt.Sprintf("matrix: N() on non-square %dx%d matrix", b.rows, b.cols))
	}
	return b.rows
}

// Aligned reports whether column 0 sits on a word boundary (true for
// all matrices created with NewBits; false for sub-views at
// word-unaligned column offsets). The parallel packed engines require
// an aligned matrix so concurrent quadrants never share an edge word.
func (b *Bits) Aligned() bool { return b.off == 0 }

func (b *Bits) check(i, j int) {
	if uint(i) >= uint(b.rows) || uint(j) >= uint(b.cols) {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, b.rows, b.cols))
	}
}

// At returns the cell at row i, column j.
func (b *Bits) At(i, j int) bool {
	b.check(i, j)
	a := b.off + j
	return b.data[i*b.stride+a>>6]>>(uint(a)&63)&1 == 1
}

// Set stores v at row i, column j.
func (b *Bits) Set(i, j int, v bool) {
	b.check(i, j)
	a := b.off + j
	w := &b.data[i*b.stride+a>>6]
	mask := uint64(1) << (uint(a) & 63)
	if v {
		*w |= mask
	} else {
		*w &^= mask
	}
}

// Sub returns an r×c view of b starting at (i, j). The view shares
// storage with b: writes through either are visible in both. Views may
// start at any column — word-unaligned views carry a bit offset and
// all word operations mask their edge words.
func (b *Bits) Sub(i, j, r, c int) *Bits {
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > b.rows || j+c > b.cols {
		panic(fmt.Sprintf("matrix: Sub(%d,%d,%d,%d) out of range %dx%d", i, j, r, c, b.rows, b.cols))
	}
	a := b.off + j
	return &Bits{
		data:   b.data[i*b.stride+a>>6:],
		rows:   r,
		cols:   c,
		stride: b.stride,
		off:    a & 63,
	}
}

// RowSpan returns the word slice covering columns [j0, j1) of row i,
// with the masks word operations must apply at the edges: words[0]
// under firstMask, words[1:len-1] in full, and words[len-1] under
// lastMask. When the span fits one word, firstMask == lastMask == the
// combined mask. The caller must keep bits outside the masks intact —
// this is what makes word kernels exact on unaligned sub-views.
func (b *Bits) RowSpan(i, j0, j1 int) (words []uint64, firstMask, lastMask uint64) {
	if uint(i) >= uint(b.rows) || j0 < 0 || j1 > b.cols || j0 >= j1 {
		panic(fmt.Sprintf("matrix: RowSpan(%d, %d, %d) out of range %dx%d", i, j0, j1, b.rows, b.cols))
	}
	a0 := b.off + j0
	a1 := b.off + j1 // exclusive
	w0 := a0 >> 6
	w1 := (a1 - 1) >> 6
	words = b.data[i*b.stride+w0 : i*b.stride+w1+1]
	firstMask = ^uint64(0) << (uint(a0) & 63)
	lastMask = ^uint64(0) >> (63 - (uint(a1-1) & 63))
	if w0 == w1 {
		m := firstMask & lastMask
		firstMask, lastMask = m, m
	}
	return words, firstMask, lastMask
}

// Bits64 reads w (1..64) consecutive cells of row i starting at column
// j into the low bits of a word: bit p of the result is cell (i, j+p).
// It is the table-index extraction of the four-Russians kernels.
func (b *Bits) Bits64(i, j, w int) uint64 {
	if w < 1 || w > 64 {
		panic(fmt.Sprintf("matrix: Bits64 width %d out of range", w))
	}
	b.check(i, j)
	b.check(i, j+w-1)
	a := b.off + j
	sh := uint(a) & 63
	base := i*b.stride + a>>6
	v := b.data[base] >> sh
	if sh+uint(w) > 64 {
		v |= b.data[base+1] << (64 - sh)
	}
	if w < 64 {
		v &= 1<<uint(w) - 1
	}
	return v
}

// Fill sets every cell to v.
func (b *Bits) Fill(v bool) {
	if b.cols == 0 {
		return
	}
	var fill uint64
	if v {
		fill = ^uint64(0)
	}
	for i := 0; i < b.rows; i++ {
		words, fm, lm := b.RowSpan(i, 0, b.cols)
		n := len(words)
		words[0] = words[0]&^fm | fill&fm
		for w := 1; w < n-1; w++ {
			words[w] = fill
		}
		if n > 1 {
			words[n-1] = words[n-1]&^lm | fill&lm
		}
	}
}

// CopyFrom copies src into b; dimensions must match. Same-phase pairs
// (equal column offset modulo 64 — in particular any two aligned
// matrices) copy word-at-a-time; mixed phases fall back to per-cell.
func (b *Bits) CopyFrom(src *Bits) {
	if b.rows != src.rows || b.cols != src.cols {
		panic(fmt.Sprintf("matrix: CopyFrom dimension mismatch %dx%d vs %dx%d", b.rows, b.cols, src.rows, src.cols))
	}
	if b.cols == 0 {
		return
	}
	if b.off != src.off {
		for i := 0; i < b.rows; i++ {
			for j := 0; j < b.cols; j++ {
				b.Set(i, j, src.At(i, j))
			}
		}
		return
	}
	for i := 0; i < b.rows; i++ {
		dw, fm, lm := b.RowSpan(i, 0, b.cols)
		sw, _, _ := src.RowSpan(i, 0, b.cols)
		n := len(dw)
		dw[0] = dw[0]&^fm | sw[0]&fm
		for w := 1; w < n-1; w++ {
			dw[w] = sw[w]
		}
		if n > 1 {
			dw[n-1] = dw[n-1]&^lm | sw[n-1]&lm
		}
	}
}

// Clone returns a deep copy of b as an aligned matrix.
func (b *Bits) Clone() *Bits {
	out := NewBits(b.rows, b.cols)
	out.CopyFrom(b)
	return out
}

// SwapRows exchanges rows i and j in place (a GF(2) elimination
// pivoting primitive). Cells outside the matrix's columns are left
// untouched, so views swap safely.
func (b *Bits) SwapRows(i, j int) {
	if i == j || b.cols == 0 {
		return
	}
	wi, fm, lm := b.RowSpan(i, 0, b.cols)
	wj, _, _ := b.RowSpan(j, 0, b.cols)
	n := len(wi)
	mask := fm
	for w := 0; w < n; w++ {
		if w > 0 {
			mask = ^uint64(0)
		}
		if w == n-1 {
			mask &= lm
		}
		t := (wi[w] ^ wj[w]) & mask
		wi[w] ^= t
		wj[w] ^= t
	}
}

// CountRange returns the number of set cells in columns [j0, j1) of
// row i (word-parallel popcount).
func (b *Bits) CountRange(i, j0, j1 int) int {
	if j0 >= j1 {
		return 0
	}
	words, fm, lm := b.RowSpan(i, j0, j1)
	n := len(words)
	if n == 1 {
		return mathbits.OnesCount64(words[0] & fm)
	}
	c := mathbits.OnesCount64(words[0]&fm) + mathbits.OnesCount64(words[n-1]&lm)
	for w := 1; w < n-1; w++ {
		c += mathbits.OnesCount64(words[w])
	}
	return c
}

// Count returns the total number of set cells.
func (b *Bits) Count() int {
	c := 0
	for i := 0; i < b.rows; i++ {
		c += b.CountRange(i, 0, b.cols)
	}
	return c
}

// EqualBits reports whether two packed matrices have identical shape
// and cell content (storage offsets and slack bits are ignored).
func EqualBits(a, b *Bits) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			if a.At(i, j) != b.At(i, j) {
				return false
			}
		}
	}
	return true
}

// PackBool converts a row-major boolean matrix into packed form.
func PackBool(d *Dense[bool]) *Bits {
	out := NewBits(d.Rows(), d.Cols())
	for i := 0; i < d.Rows(); i++ {
		row := d.Row(i)
		for j, v := range row {
			if v {
				out.Set(i, j, true)
			}
		}
	}
	return out
}

// UnpackBool converts a packed matrix back to row-major booleans.
func UnpackBool(b *Bits) *Dense[bool] {
	out := New[bool](b.rows, b.cols)
	for i := 0; i < b.rows; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] = b.At(i, j)
		}
	}
	return out
}

// PackedOf reports whether g is a packed boolean matrix and returns it
// if so. It is the packed counterpart of Flat: the engines' base-case
// dispatch (internal/core) uses it to bind the word-parallel kernels,
// and wrapper grids simply fail the assertion and keep the generic
// path.
func PackedOf(g Grid[bool]) (*Bits, bool) {
	b, ok := g.(*Bits)
	return b, ok
}

// PadBitsPow2 returns an m×m copy of the square packed matrix a, where
// m is the smallest power of two >= a.N(); new cells hold fill. It is
// PadPow2 for packed matrices.
func PadBitsPow2(a *Bits, fill bool) *Bits {
	n := a.N()
	m := NextPow2(n)
	if m == n {
		return a.Clone()
	}
	out := NewBitsSquare(m)
	if fill {
		out.Fill(true)
	}
	out.Sub(0, 0, n, n).CopyFrom(a)
	return out
}

// String renders the matrix for debugging; large matrices are elided.
func (b *Bits) String() string {
	const maxSide = 64
	var sb strings.Builder
	fmt.Fprintf(&sb, "%dx%d bits", b.rows, b.cols)
	if b.rows > maxSide || b.cols > maxSide {
		sb.WriteString(" (elided)")
		return sb.String()
	}
	sb.WriteByte('\n')
	for i := 0; i < b.rows; i++ {
		for j := 0; j < b.cols; j++ {
			if b.At(i, j) {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

var (
	_ Grid[bool] = (*Bits)(nil)
	_ Rect[bool] = (*Bits)(nil)
)
