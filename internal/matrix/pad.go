package matrix

import "math/bits"

// NextPow2 returns the smallest power of two >= n (and 1 for n <= 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Log2 returns log2(n) for a positive power of two n and panics
// otherwise.
func Log2(n int) int {
	if !IsPow2(n) {
		panic("matrix: Log2 of non-power-of-two")
	}
	return bits.TrailingZeros(uint(n))
}

// PadPow2 returns an m×m copy of the square matrix a, where m is the
// smallest power of two >= a.N(). New cells are fill. The GEP recursion
// assumes power-of-two sides (the paper fixes n = 2^q); padding with a
// problem-neutral element (e.g. +Inf off-diagonal for min-plus, 1 on
// the new diagonal for Gaussian elimination) preserves the answer on
// the original block.
func PadPow2[T any](a *Dense[T], fill T) *Dense[T] {
	n := a.N()
	m := NextPow2(n)
	if m == n {
		return a.Clone()
	}
	out := NewSquare[T](m)
	out.Fill(fill)
	out.Sub(0, 0, n, n).CopyFrom(a)
	return out
}

// PadPow2Diag pads like PadPow2 but sets the padded diagonal cells to
// diag instead of fill. Gaussian elimination needs a non-zero pivot on
// padded rows; Floyd-Warshall needs 0 self-distance.
func PadPow2Diag[T any](a *Dense[T], fill, diag T) *Dense[T] {
	n := a.N()
	out := PadPow2(a, fill)
	for i := n; i < out.N(); i++ {
		out.Set(i, i, diag)
	}
	return out
}

// Crop returns the top-left n×n corner of a as a fresh matrix.
func Crop[T any](a *Dense[T], n int) *Dense[T] {
	return a.Sub(0, 0, n, n).Clone()
}
