// Package matrix provides the dense-matrix substrate used by the GEP
// (Gaussian Elimination Paradigm) framework: row-major storage with
// strided submatrix views, bit-interleaved (Morton) tiled layouts, and
// power-of-two padding.
//
// The GEP algorithms (see internal/core) access matrices through the
// small Grid interface so that the same algorithm code can run over
// in-core matrices, cache-simulator tracers, and out-of-core stores.
//
// Key types and entry points:
//
//   - Grid / Rect: the minimal square and rectangular element
//     accessors the engines require. Implementations include
//     *Dense[T] (in-core), cachesim tracing wrappers, and ooc
//     file-backed matrices.
//   - Dense[T]: row-major storage, possibly a strided view into a
//     parent (Sub); New, NewSquare, Clone, Apply are the workhorses.
//   - Flat / FlatRect: the fast-path type assertions — when a Grid is
//     backed by one contiguous row-major slice, the engines' base-case
//     kernels (internal/core/fastpath.go) run directly over it,
//     skipping interface dispatch; wrapper grids simply fail the
//     assertion and keep the generic path.
//   - Tiled[T] (morton.go): the paper's bit-interleaved tiled layout
//     (§4.2), with FromDense/ToDense conversion.
//   - Bits (bits.go): bit-packed boolean matrices, 64 cells per
//     uint64 word, with mid-word Sub views, masked row spans
//     (RowSpan/Bits64), and PackBool/UnpackBool conversion. Bits is
//     itself a Grid[bool]/Rect[bool], so every engine runs on it
//     generically; the word-parallel kernels in internal/core are a
//     fast path on top (DESIGN.md §13).
//   - PadPow2 / Crop (pad.go): the power-of-two padding the recursive
//     algorithms require (the paper assumes n = 2^q); PadBitsPow2 is
//     the packed counterpart.
package matrix
