package matrix

import (
	"fmt"
	"math/bits"
)

// Morton (Z-order) index math. The paper (§4.2) stores base-case blocks
// in a bit-interleaved layout — block coordinates are Morton-interleaved
// so that recursive quadrants are contiguous in memory, reducing TLB
// misses — while elements inside a block stay row-major for prefetcher
// friendliness. MortonIndex and Tiled implement that layout.

// MortonIndex interleaves the bits of i and j (j provides the
// low-order bit) producing the Z-order index of cell (i, j).
func MortonIndex(i, j int) int {
	return int(spread(uint32(i))<<1 | spread(uint32(j)))
}

// MortonDecode is the inverse of MortonIndex.
func MortonDecode(z int) (i, j int) {
	return int(compact(uint64(z) >> 1)), int(compact(uint64(z)))
}

// spread inserts a zero bit above every bit of x: abc -> 0a0b0c.
func spread(x uint32) uint64 {
	v := uint64(x)
	v = (v | v<<16) & 0x0000ffff0000ffff
	v = (v | v<<8) & 0x00ff00ff00ff00ff
	v = (v | v<<4) & 0x0f0f0f0f0f0f0f0f
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// compact removes the interleaved zero bits: 0a0b0c -> abc.
func compact(v uint64) uint32 {
	v &= 0x5555555555555555
	v = (v | v>>1) & 0x3333333333333333
	v = (v | v>>2) & 0x0f0f0f0f0f0f0f0f
	v = (v | v>>4) & 0x00ff00ff00ff00ff
	v = (v | v>>8) & 0x0000ffff0000ffff
	v = (v | v>>16) & 0x00000000ffffffff
	return uint32(v)
}

// Tiled is an n×n matrix in the paper's bit-interleaved layout: the
// matrix is partitioned into block×block tiles; tiles are laid out in
// Morton order of their tile coordinates; elements within a tile are
// row-major. n and block must be powers of two with block <= n.
type Tiled[T any] struct {
	data  []T
	n     int
	block int
	// blockShift = log2(block), blockMask = block-1, area = block².
	blockShift int
	blockMask  int
	area       int
}

// NewTiled returns a zero-initialized n×n tiled matrix with the given
// tile side.
func NewTiled[T any](n, block int) *Tiled[T] {
	if !IsPow2(n) || !IsPow2(block) || block > n {
		panic(fmt.Sprintf("matrix: NewTiled(%d, %d): need powers of two with block <= n", n, block))
	}
	return &Tiled[T]{
		data:       make([]T, n*n),
		n:          n,
		block:      block,
		blockShift: bits.TrailingZeros(uint(block)),
		blockMask:  block - 1,
		area:       block * block,
	}
}

// N returns the side length.
func (t *Tiled[T]) N() int { return t.n }

// Block returns the tile side length.
func (t *Tiled[T]) Block() int { return t.block }

// Index returns the flat offset of cell (i, j) in the tiled layout.
func (t *Tiled[T]) Index(i, j int) int {
	bi, bj := i>>t.blockShift, j>>t.blockShift
	within := (i&t.blockMask)<<t.blockShift | j&t.blockMask
	return MortonIndex(bi, bj)*t.area + within
}

// At returns the element at (i, j).
func (t *Tiled[T]) At(i, j int) T { return t.data[t.Index(i, j)] }

// Set stores v at (i, j).
func (t *Tiled[T]) Set(i, j int, v T) { t.data[t.Index(i, j)] = v }

// Data returns the underlying flat storage in layout order.
func (t *Tiled[T]) Data() []T { return t.data }

// TileData returns the block×block row-major slice holding tile
// (bi, bj) of the matrix (tile coordinates, not element coordinates).
func (t *Tiled[T]) TileData(bi, bj int) []T {
	off := MortonIndex(bi, bj) * t.area
	return t.data[off : off+t.area]
}

// FromDense converts a row-major square matrix into tiled layout.
// This is the "convert to bit-interleaved format" step whose cost the
// paper includes in its reported times.
func (t *Tiled[T]) FromDense(a *Dense[T]) {
	n := a.N()
	if n != t.n {
		panic(fmt.Sprintf("matrix: FromDense size mismatch %d vs %d", n, t.n))
	}
	for bi := 0; bi < n>>t.blockShift; bi++ {
		for bj := 0; bj < n>>t.blockShift; bj++ {
			tile := t.TileData(bi, bj)
			for r := 0; r < t.block; r++ {
				copy(tile[r<<t.blockShift:(r+1)<<t.blockShift],
					a.Row(bi<<t.blockShift + r)[bj<<t.blockShift:(bj+1)<<t.blockShift])
			}
		}
	}
}

// ToDense converts back to a row-major matrix.
func (t *Tiled[T]) ToDense() *Dense[T] {
	a := NewSquare[T](t.n)
	for bi := 0; bi < t.n>>t.blockShift; bi++ {
		for bj := 0; bj < t.n>>t.blockShift; bj++ {
			tile := t.TileData(bi, bj)
			for r := 0; r < t.block; r++ {
				copy(a.Row(bi<<t.blockShift + r)[bj<<t.blockShift:(bj+1)<<t.blockShift],
					tile[r<<t.blockShift:(r+1)<<t.blockShift])
			}
		}
	}
	return a
}

var _ Grid[int] = (*Tiled[int])(nil)
var _ Grid[int] = (*Dense[int])(nil)
