package matrix

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewAndAccess(t *testing.T) {
	m := New[int](3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("dims = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	m.Set(2, 3, 42)
	if m.At(2, 3) != 42 {
		t.Fatalf("At(2,3) = %d, want 42", m.At(2, 3))
	}
	if m.At(0, 0) != 0 {
		t.Fatal("zero value not zero")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := New[int](2, 2)
	for _, fn := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, 2) },
		func() { m.At(-1, 0) },
		func() { m.Set(0, -1, 1) },
		func() { m.Row(2) },
		func() { m.Sub(1, 1, 2, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestFromRowsAndEqual(t *testing.T) {
	a := FromRows([][]int{{1, 2}, {3, 4}})
	b := FromSlice(2, 2, []int{1, 2, 3, 4})
	if !Equal(a, b) {
		t.Fatal("FromRows != FromSlice for same data")
	}
	b.Set(1, 1, 5)
	if Equal(a, b) {
		t.Fatal("Equal true after modification")
	}
}

func TestSubViewSharesStorage(t *testing.T) {
	m := New[int](4, 4)
	v := m.Sub(1, 1, 2, 2)
	v.Set(0, 0, 9)
	if m.At(1, 1) != 9 {
		t.Fatal("view write not visible in parent")
	}
	m.Set(2, 2, 7)
	if v.At(1, 1) != 7 {
		t.Fatal("parent write not visible in view")
	}
	if v.Stride() != 4 {
		t.Fatalf("view stride = %d, want 4", v.Stride())
	}
}

func TestSubViewRow(t *testing.T) {
	m := New[int](4, 6)
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			m.Set(i, j, i*10+j)
		}
	}
	v := m.Sub(1, 2, 2, 3)
	row := v.Row(1)
	if len(row) != 3 || row[0] != 22 || row[2] != 24 {
		t.Fatalf("view row = %v", row)
	}
}

func TestCloneIndependent(t *testing.T) {
	m := FromRows([][]int{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("clone shares storage")
	}
	// Cloning a strided view yields a contiguous copy.
	v := m.Sub(0, 1, 2, 1).Clone()
	if v.Stride() != v.Cols() {
		t.Fatal("clone of view is strided")
	}
	if v.At(0, 0) != 2 || v.At(1, 0) != 4 {
		t.Fatal("clone of view has wrong data")
	}
}

func TestDataPanicsOnView(t *testing.T) {
	m := New[int](4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Sub(0, 0, 2, 2).Data()
}

func TestFillApply(t *testing.T) {
	m := New[int](3, 3)
	m.Fill(5)
	m.Apply(func(i, j, v int) int { return v + i + j })
	if m.At(2, 2) != 9 || m.At(0, 0) != 5 {
		t.Fatalf("Apply wrong: %v", m)
	}
}

func TestGridHelpers(t *testing.T) {
	a := FromRows([][]int{{1, 2}, {3, 4}})
	b := NewSquare[int](2)
	CopyGrid[int](b, a)
	if !GridEqualFunc[int](a, b, func(x, y int) bool { return x == y }) {
		t.Fatal("CopyGrid/GridEqualFunc round trip failed")
	}
	b.Set(0, 0, 0)
	if GridEqualFunc[int](a, b, func(x, y int) bool { return x == y }) {
		t.Fatal("GridEqualFunc missed difference")
	}
}

func TestNPanicsNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New[int](2, 3).N()
}

// Property: Sub composes — a sub-view of a sub-view addresses the same
// cells as a single combined sub-view.
func TestSubComposition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New[int](8, 8)
		m.Apply(func(i, j, _ int) int { return rng.Int() })
		v1 := m.Sub(1, 2, 6, 5)
		v2 := v1.Sub(2, 1, 3, 3)
		direct := m.Sub(3, 3, 3, 3)
		return Equal(v2.Clone(), direct.Clone())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: row-major flat index round trip through At/Set is total
// and consistent for random shapes.
func TestAtSetRoundTrip(t *testing.T) {
	f := func(r8, c8 uint8, vals []int) bool {
		r, c := int(r8%20)+1, int(c8%20)+1
		m := New[int](r, c)
		for idx, v := range vals {
			i, j := (idx/c)%r, idx%c
			m.Set(i, j, v)
			if m.At(i, j) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStringRendering(t *testing.T) {
	small := FromRows([][]int{{1, 2}, {3, 4}})
	s := small.String()
	if !strings.Contains(s, "2x2") || !strings.Contains(s, "1 2") {
		t.Fatalf("String = %q", s)
	}
	big := New[int](20, 20)
	if s := big.String(); !strings.Contains(s, "elided") {
		t.Fatalf("large String = %q", s)
	}
}

func TestCopyFromMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New[int](2, 2).CopyFrom(New[int](3, 3))
}

func TestCopyGridMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CopyGrid[int](NewSquare[int](2), NewSquare[int](3))
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromRows([][]int{{1, 2}, {3}})
}

func TestFromSliceWrongLenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []int{1, 2, 3})
}

func TestNegativeDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New[int](-1, 2)
}

func TestEqualFuncShapeMismatch(t *testing.T) {
	if New[int](2, 3).EqualFunc(New[int](3, 2), func(a, b int) bool { return true }) {
		t.Fatal("shape mismatch reported equal")
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows[int](nil)
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Fatalf("empty FromRows: %dx%d", m.Rows(), m.Cols())
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]int{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose dims %dx%d", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose wrong at (%d,%d)", i, j)
			}
		}
	}
	back := tr.Transpose()
	if !Equal(m, back) {
		t.Fatal("double transpose not identity")
	}
}
