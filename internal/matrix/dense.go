package matrix

import (
	"fmt"
	"strings"
)

// Rect is the minimal element accessor: any rows×cols indexable store.
// C-GEP's auxiliary matrices only need Rect.
type Rect[T any] interface {
	// At returns the element at row i, column j (0-based).
	At(i, j int) T
	// Set stores v at row i, column j (0-based).
	Set(i, j int, v T)
}

// Grid is the minimal accessor interface the GEP algorithms require.
// Grids are square; N reports the side length. Implementations include
// *Dense[T] (in-core), cachesim tracing wrappers, and ooc file-backed
// matrices.
type Grid[T any] interface {
	// N returns the side length of the square grid.
	N() int
	// At returns the element at row i, column j (0-based).
	At(i, j int) T
	// Set stores v at row i, column j (0-based).
	Set(i, j int, v T)
}

// Dense is a dense rows×cols matrix stored in row-major order. A Dense
// may be a view into a larger matrix (stride > cols), in which case it
// shares storage with its parent.
type Dense[T any] struct {
	data   []T
	rows   int
	cols   int
	stride int
}

// New returns a zero-initialized rows×cols dense matrix.
func New[T any](rows, cols int) *Dense[T] {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", rows, cols))
	}
	return &Dense[T]{
		data:   make([]T, rows*cols),
		rows:   rows,
		cols:   cols,
		stride: cols,
	}
}

// NewSquare returns a zero-initialized n×n dense matrix.
func NewSquare[T any](n int) *Dense[T] { return New[T](n, n) }

// FromRows builds a dense matrix from a slice of equal-length rows,
// copying the data.
func FromRows[T any](rows [][]T) *Dense[T] {
	r := len(rows)
	if r == 0 {
		return New[T](0, 0)
	}
	c := len(rows[0])
	m := New[T](r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("matrix: ragged rows: row %d has %d cols, want %d", i, len(row), c))
		}
		copy(m.Row(i), row)
	}
	return m
}

// FromSlice builds an r×c dense matrix from row-major data, copying it.
func FromSlice[T any](r, c int, data []T) *Dense[T] {
	if len(data) != r*c {
		panic(fmt.Sprintf("matrix: FromSlice got %d elements, want %d", len(data), r*c))
	}
	m := New[T](r, c)
	copy(m.data, data)
	return m
}

// Rows returns the number of rows.
func (m *Dense[T]) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense[T]) Cols() int { return m.cols }

// Stride returns the row stride of the underlying storage.
func (m *Dense[T]) Stride() int { return m.stride }

// N returns the side length of a square matrix and panics otherwise.
// It makes *Dense[T] satisfy Grid[T].
func (m *Dense[T]) N() int {
	if m.rows != m.cols {
		panic(fmt.Sprintf("matrix: N() on non-square %dx%d matrix", m.rows, m.cols))
	}
	return m.rows
}

// At returns the element at row i, column j.
func (m *Dense[T]) At(i, j int) T {
	m.check(i, j)
	return m.data[i*m.stride+j]
}

// Set stores v at row i, column j.
func (m *Dense[T]) Set(i, j int, v T) {
	m.check(i, j)
	m.data[i*m.stride+j] = v
}

func (m *Dense[T]) check(i, j int) {
	if uint(i) >= uint(m.rows) || uint(j) >= uint(m.cols) {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns row i as a slice sharing the matrix storage.
func (m *Dense[T]) Row(i int) []T {
	if uint(i) >= uint(m.rows) {
		panic(fmt.Sprintf("matrix: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.stride : i*m.stride+m.cols]
}

// Data returns the underlying storage when the matrix is contiguous
// (stride == cols); it panics for strided views. It exists for
// performance-sensitive kernels that index the flat slice directly.
func (m *Dense[T]) Data() []T {
	if m.stride != m.cols {
		panic("matrix: Data() on strided view")
	}
	return m.data
}

// flatAccess is the hook behind Flat and FlatRect: it exposes the
// row-major backing slice and stride of the matrix (including views,
// whose data starts at the view origin). It is deliberately unexported
// — the only way to reach it from outside the package is through the
// Flat/FlatRect type assertions, so wrapper grids (cache simulators,
// tracers, out-of-core stores) can never be mistaken for flat storage.
func (m *Dense[T]) flatAccess() (data []T, stride int) { return m.data, m.stride }

// Flat reports whether g is backed by row-major in-core storage — i.e.
// whether it is a *Dense[T] — and if so returns the backing slice and
// row stride. Element (i, j) of g lives at data[i*stride+j]. The
// kernels in internal/core use this to run over the flat slice with no
// interface dispatch; any other Grid implementation returns ok=false
// and takes the generic path.
func Flat[T any](g Grid[T]) (data []T, stride int, ok bool) {
	d, isDense := g.(*Dense[T])
	if !isDense {
		return nil, 0, false
	}
	data, stride = d.flatAccess()
	return data, stride, true
}

// FlatRect is Flat for the minimal Rect accessor (C-GEP's auxiliary
// matrices).
func FlatRect[T any](r Rect[T]) (data []T, stride int, ok bool) {
	d, isDense := r.(*Dense[T])
	if !isDense {
		return nil, 0, false
	}
	data, stride = d.flatAccess()
	return data, stride, true
}

// Sub returns an r×c view of m starting at (i, j). The view shares
// storage with m: writes through either are visible in both.
func (m *Dense[T]) Sub(i, j, r, c int) *Dense[T] {
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > m.rows || j+c > m.cols {
		panic(fmt.Sprintf("matrix: Sub(%d,%d,%d,%d) out of range %dx%d", i, j, r, c, m.rows, m.cols))
	}
	return &Dense[T]{
		data:   m.data[i*m.stride+j:],
		rows:   r,
		cols:   c,
		stride: m.stride,
	}
}

// Clone returns a deep copy of m as a contiguous matrix.
func (m *Dense[T]) Clone() *Dense[T] {
	out := New[T](m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		copy(out.Row(i), m.Row(i))
	}
	return out
}

// CopyFrom copies src into m; dimensions must match.
func (m *Dense[T]) CopyFrom(src *Dense[T]) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(fmt.Sprintf("matrix: CopyFrom dimension mismatch %dx%d vs %dx%d", m.rows, m.cols, src.rows, src.cols))
	}
	for i := 0; i < m.rows; i++ {
		copy(m.Row(i), src.Row(i))
	}
}

// Fill sets every element of m to v.
func (m *Dense[T]) Fill(v T) {
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = v
		}
	}
}

// Apply replaces each element with f(i, j, m[i][j]).
func (m *Dense[T]) Apply(f func(i, j int, v T) T) {
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = f(i, j, row[j])
		}
	}
}

// EqualFunc reports whether m and b have identical shape and eq holds
// element-wise.
func (m *Dense[T]) EqualFunc(b *Dense[T], eq func(a, b T) bool) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		ra, rb := m.Row(i), b.Row(i)
		for j := range ra {
			if !eq(ra[j], rb[j]) {
				return false
			}
		}
	}
	return true
}

// Equal reports whether two matrices of a comparable element type are
// identical in shape and content.
func Equal[T comparable](a, b *Dense[T]) bool {
	return a.EqualFunc(b, func(x, y T) bool { return x == y })
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Dense[T]) String() string {
	const maxSide = 16
	var sb strings.Builder
	fmt.Fprintf(&sb, "%dx%d", m.rows, m.cols)
	if m.rows > maxSide || m.cols > maxSide {
		sb.WriteString(" (elided)")
		return sb.String()
	}
	sb.WriteByte('\n')
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%v", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// GridEqualFunc reports whether two grids have the same side length and
// eq holds element-wise. It is layout-agnostic.
func GridEqualFunc[T any](a, b Grid[T], eq func(x, y T) bool) bool {
	n := a.N()
	if b.N() != n {
		return false
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !eq(a.At(i, j), b.At(i, j)) {
				return false
			}
		}
	}
	return true
}

// CopyGrid copies src into dst element-wise; side lengths must match.
func CopyGrid[T any](dst, src Grid[T]) {
	n := src.N()
	if dst.N() != n {
		panic(fmt.Sprintf("matrix: CopyGrid size mismatch %d vs %d", dst.N(), n))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dst.Set(i, j, src.At(i, j))
		}
	}
}

// Transpose returns a fresh matrix with rows and columns exchanged.
func (m *Dense[T]) Transpose() *Dense[T] {
	out := New[T](m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Set(j, i, v)
		}
	}
	return out
}
