package matrix

import (
	"testing"
	"testing/quick"
)

func TestNextPow2(t *testing.T) {
	cases := map[int]int{
		-3: 1, 0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8,
		7: 8, 8: 8, 9: 16, 1000: 1024, 1024: 1024, 1025: 2048,
	}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestNextPow2Property(t *testing.T) {
	f := func(v uint16) bool {
		n := int(v)
		p := NextPow2(n)
		if !IsPow2(p) || p < n {
			return false
		}
		// Minimal: p/2 < n unless p == 1.
		return p == 1 || p/2 < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsPow2Log2(t *testing.T) {
	for q := 0; q < 20; q++ {
		n := 1 << q
		if !IsPow2(n) {
			t.Fatalf("IsPow2(%d) false", n)
		}
		if Log2(n) != q {
			t.Fatalf("Log2(%d) = %d, want %d", n, Log2(n), q)
		}
	}
	for _, n := range []int{0, -1, 3, 6, 12, 100} {
		if IsPow2(n) {
			t.Fatalf("IsPow2(%d) true", n)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Log2(3) should panic")
		}
	}()
	Log2(3)
}

func TestPadPow2(t *testing.T) {
	a := FromRows([][]int{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	p := PadPow2(a, -1)
	if p.N() != 4 {
		t.Fatalf("padded side = %d, want 4", p.N())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if p.At(i, j) != a.At(i, j) {
				t.Fatal("original block altered")
			}
		}
	}
	if p.At(3, 3) != -1 || p.At(0, 3) != -1 || p.At(3, 0) != -1 {
		t.Fatal("padding fill wrong")
	}
	// Already power-of-two: returns an independent clone.
	b := FromRows([][]int{{1, 2}, {3, 4}})
	pb := PadPow2(b, 0)
	pb.Set(0, 0, 9)
	if b.At(0, 0) != 1 {
		t.Fatal("PadPow2 on pow2 input shares storage")
	}
}

func TestPadPow2Diag(t *testing.T) {
	a := FromRows([][]int{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	p := PadPow2Diag(a, 0, 7)
	if p.At(3, 3) != 7 {
		t.Fatalf("padded diagonal = %d, want 7", p.At(3, 3))
	}
	if p.At(3, 2) != 0 || p.At(2, 3) != 0 {
		t.Fatal("off-diagonal padding wrong")
	}
}

func TestCropInversePad(t *testing.T) {
	f := func(side uint8, fill int) bool {
		n := int(side%13) + 1
		a := New[int](n, n)
		a.Apply(func(i, j, _ int) int { return i*100 + j })
		back := Crop(PadPow2(a, fill), n)
		return Equal(a, back)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
