package ooc

import "os"

// Striping: the store's logical byte space is cut into fixed
// StripeUnit chunks dealt round-robin across the backing files, RAID-0
// style: chunk c lives in file c mod S at physical offset
// (c div S)·unit. With S = 1 the mapping is the identity and every
// transfer is a single segment, so the legacy single-file layout is
// the degenerate case rather than a separate code path.
//
// The unit of parallelism is the stripe, not the transfer: each stripe
// has its own write-behind in-flight slots (tile.go), sized so S
// background writers can be on S files at once, and a tile is throttled
// by the slot of its home stripe — the stripe owning its first byte —
// which round-robins across files for consecutive tile indexes in a
// tile-contiguous layout. A transfer that spans a chunk boundary is
// simply split into per-stripe segments by readRaw/writeRaw; each
// segment retries independently under the fault/backoff policy of
// fault.go and counts one ooc.stripe.{read,write} segment.

const defaultStripeUnit = 1 << 16

// stripeOf returns the stripe index owning byte offset off.
func (s *Store) stripeOf(off int64) int {
	if len(s.files) == 1 {
		return 0
	}
	return int((off / int64(s.cfg.StripeUnit)) % int64(len(s.files)))
}

// stripeSpan resolves the longest prefix of [off, off+n) that lives
// contiguously in one stripe file: the stripe index, the physical
// offset there, and the prefix length.
func (s *Store) stripeSpan(off, n int64) (stripe int, phys, span int64) {
	if len(s.files) == 1 {
		return 0, off, n
	}
	unit := int64(s.cfg.StripeUnit)
	c := off / unit
	within := off % unit
	span = unit - within
	if span > n {
		span = n
	}
	return int(c % int64(len(s.files))), (c/int64(len(s.files)))*unit + within, span
}

// readRaw fills buf from logical offset off, segment by segment.
// Unwritten regions read as zero (the stripe files are sparse).
func (s *Store) readRaw(buf []byte, off int64) error {
	for len(buf) > 0 {
		st, phys, span := s.stripeSpan(off, int64(len(buf)))
		if err := s.readAtFile(s.files[st], buf[:span], phys, off); err != nil {
			return err
		}
		stripeReadCount.Inc()
		buf = buf[span:]
		off += span
	}
	return nil
}

// writeRaw writes buf at logical offset off, segment by segment.
func (s *Store) writeRaw(buf []byte, off int64) error {
	for len(buf) > 0 {
		st, phys, span := s.stripeSpan(off, int64(len(buf)))
		if err := s.writeAtFile(s.files[st], buf[:span], phys, off); err != nil {
			return err
		}
		stripeWriteCount.Inc()
		buf = buf[span:]
		off += span
	}
	return nil
}

// syncFiles fsyncs every stripe file (the durability barrier between
// the journal-apply step and the journal reset; see journal.go).
func (s *Store) syncFiles() error {
	for _, f := range s.files {
		if err := f.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// closeFiles closes every stripe file and (when the store owns them)
// removes them, keeping the first error.
func (s *Store) closeFiles(remove bool) error {
	var first error
	for _, f := range s.files {
		name := f.Name()
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		if remove {
			if err := os.Remove(name); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
