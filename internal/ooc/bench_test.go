package ooc

import "testing"

func BenchmarkStoreCachedAccess(b *testing.B) {
	s, err := Create(b.TempDir(), Config{PageSize: 4096, CacheSize: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.WriteFloat(int64(i&4095)*8, float64(i))
	}
}

func BenchmarkStoreFaultingAccess(b *testing.B) {
	s, err := Create(b.TempDir(), Config{PageSize: 4096, CacheSize: 8192})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Stride past the 2-page cache so most accesses fault.
		s.WriteFloat(int64(i%64)*4096*2+8, float64(i))
	}
}
