package ooc

import (
	"math/rand"
	"testing"

	"gep/internal/linalg"
	"gep/internal/matrix"
	"gep/internal/metrics"
)

func randomDense(n int, seed int64) *matrix.Dense[float64] {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.NewSquare[float64](n)
	m.Apply(func(i, j int, _ float64) float64 { return rng.Float64()*2 - 1 })
	return m
}

// strassenStore creates a store holding a, b, and an empty c, laid out
// Morton-tiled with the given tile side.
func strassenStore(t *testing.T, n, side int, cache int64, a, b *matrix.Dense[float64]) (*Store, *Matrix, *Matrix, *Matrix) {
	t.Helper()
	s, err := Create(t.TempDir(), Config{PageSize: 512, CacheSize: cache, WriteBehind: 2})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	bytes := int64(n) * int64(n) * 8
	la := MortonTiledLayout(side)
	ma := NewMatrix(s, n, 0, la)
	mb := NewMatrix(s, n, bytes, la)
	mc := NewMatrix(s, n, 2*bytes, la)
	if err := ma.Load(a); err != nil {
		t.Fatalf("load a: %v", err)
	}
	if err := mb.Load(b); err != nil {
		t.Fatalf("load b: %v", err)
	}
	return s, mc, ma, mb
}

// TestRunStrassenBitIdenticalToInCore: the tile-granular Strassen
// driver must be Float64bits-identical to the in-core MulStrassen at
// the same crossover, across tile sides, cache budgets that force
// eviction and scratch spills, and prefetch on/off.
func TestRunStrassenBitIdenticalToInCore(t *testing.T) {
	const n = 64
	a, b := randomDense(n, 90), randomDense(n, 91)
	for _, co := range []int{16, 32, 64} {
		want := matrix.NewSquare[float64](n)
		linalg.MulStrassen(want, a, b, linalg.WithCrossover(co))
		for _, side := range []int{16, 32} {
			if side > co {
				continue // crossover is clamped up to the tile side
			}
			for _, cache := range []int64{3 * int64(side) * int64(side) * 8, 1 << 20} {
				for _, prefetch := range []bool{false, true} {
					s, mc, ma, mb := strassenStore(t, n, side, cache, a, b)
					err := RunStrassen(mc, ma, mb, co, RunOptions{Prefetch: prefetch})
					if err != nil {
						t.Fatalf("co=%d side=%d cache=%d: RunStrassen: %v", co, side, cache, err)
					}
					got, err := mc.Unload()
					if err != nil {
						t.Fatalf("unload: %v", err)
					}
					bitsEqual(t, "RunStrassen", want, got)
					if err := s.Close(); err != nil {
						t.Fatalf("close: %v", err)
					}
				}
			}
		}
	}
}

// TestRunStrassenClassicalCrossover: crossover ≥ n runs the pure
// classical tile loop; its result must match MulFused bitwise (zeroed
// destination, ascending-k accumulation).
func TestRunStrassenClassicalCrossover(t *testing.T) {
	const n = 64
	a, b := randomDense(n, 92), randomDense(n, 93)
	want := matrix.NewSquare[float64](n)
	linalg.MulFused(want, a, b, 64)
	s, mc, ma, mb := strassenStore(t, n, 16, 1<<20, a, b)
	defer s.Close()
	if err := RunStrassen(mc, ma, mb, n, RunOptions{}); err != nil {
		t.Fatalf("RunStrassen: %v", err)
	}
	got, err := mc.Unload()
	if err != nil {
		t.Fatalf("unload: %v", err)
	}
	bitsEqual(t, "RunStrassen classical", want, got)
}

// TestRunStrassenScratchReuseAndFreshTiles: the scratch free list must
// recycle released temporaries across siblings and levels, and fresh
// pins must not read from disk (no tile-read transfers charged for
// first-touch scratch or product targets).
func TestRunStrassenScratchReuseAndFreshTiles(t *testing.T) {
	const n = 64
	a, b := randomDense(n, 94), randomDense(n, 95)
	s, mc, ma, mb := strassenStore(t, n, 16, 1<<20, a, b)
	defer s.Close()
	before := metrics.Snapshot()
	if err := RunStrassen(mc, ma, mb, 16, RunOptions{}); err != nil {
		t.Fatalf("RunStrassen: %v", err)
	}
	d := metrics.Diff(before, metrics.Snapshot())
	if d["ooc.strassen.scratch.reuse"] == 0 {
		t.Fatalf("expected scratch reuse across siblings, alloc=%d reuse=%d",
			d["ooc.strassen.scratch.alloc"], d["ooc.strassen.scratch.reuse"])
	}
	if d["ooc.tile.fresh"] == 0 {
		t.Fatalf("expected fresh (read-free) tile pins")
	}
	// Two Winograd levels need at most two temporaries per level.
	if got := d["ooc.strassen.scratch.alloc"]; got > 4 {
		t.Fatalf("scratch allocator not bounded: %d fresh scratch matrices", got)
	}
}

// TestRunStrassenValidation: the argument contract is enforced with
// errors, not corruption.
func TestRunStrassenValidation(t *testing.T) {
	const n = 32
	a, b := randomDense(n, 96), randomDense(n, 97)
	s, mc, ma, mb := strassenStore(t, n, 16, 1<<20, a, b)
	defer s.Close()
	if err := RunStrassen(ma, ma, mb, 16, RunOptions{}); err == nil {
		t.Fatalf("aliased destination accepted")
	}
	s2, err := Create(t.TempDir(), Config{PageSize: 512, CacheSize: 1 << 20})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer s2.Close()
	other := NewMatrix(s2, n, 0, MortonTiledLayout(16))
	if err := RunStrassen(mc, ma, other, 16, RunOptions{}); err == nil {
		t.Fatalf("cross-store operands accepted")
	}
	rm := NewMatrix(s2, n, int64(n)*int64(n)*8, RowMajorLayout)
	if err := RunStrassen(rm, other, other, 16, RunOptions{}); err == nil {
		t.Fatalf("row-major (untiled) layout accepted")
	}
	// The in-store matrices are untouched by the failed calls.
	if err := RunStrassen(mc, ma, mb, 16, RunOptions{}); err != nil {
		t.Fatalf("valid call after rejected ones: %v", err)
	}
	want := matrix.NewSquare[float64](n)
	linalg.MulStrassen(want, a, b, linalg.WithCrossover(16))
	got, err := mc.Unload()
	if err != nil {
		t.Fatalf("unload: %v", err)
	}
	bitsEqual(t, "post-validation run", want, got)
}
