package ooc

import "gep/internal/metrics"

// Tile-runtime telemetry. Incremented at tile/transfer granularity
// (never per element); internal/bench snapshots them around each
// experiment so BENCH_ooc.json rows can report, e.g., the prefetch hit
// rate, the checksum verification volume, or the journal traffic of a
// durable run. docs/OPERATIONS.md carries the full inventory.
var (
	tileHitCount        = metrics.New("ooc.tile.hit")
	tileFaultCount      = metrics.New("ooc.tile.fault")
	tileFreshCount      = metrics.New("ooc.tile.fresh")
	tileOvercommitCount = metrics.New("ooc.tile.overcommit")

	checksumOKCount   = metrics.New("ooc.tile.checksum.ok")
	checksumFailCount = metrics.New("ooc.tile.checksum.fail")

	compressSavedCount = metrics.New("ooc.compress.saved")

	stripeReadCount  = metrics.New("ooc.stripe.read")
	stripeWriteCount = metrics.New("ooc.stripe.write")

	journalAppendCount  = metrics.New("ooc.journal.append")
	journalCommitCount  = metrics.New("ooc.journal.commit")
	journalApplyCount   = metrics.New("ooc.journal.apply")
	journalRecoverCount = metrics.New("ooc.journal.recovered")

	scratchAllocCount = metrics.New("ooc.strassen.scratch.alloc")
	scratchReuseCount = metrics.New("ooc.strassen.scratch.reuse")

	prefetchIssuedCount = metrics.New("ooc.prefetch.issued")
	prefetchHitCount    = metrics.New("ooc.prefetch.hit")
	prefetchSkipCount   = metrics.New("ooc.prefetch.skip")

	writeBehindCount   = metrics.New("ooc.writebehind")
	retryCount         = metrics.New("ooc.retry")
	faultInjectedCount = metrics.New("ooc.fault.injected")
)
