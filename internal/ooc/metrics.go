package ooc

import "gep/internal/metrics"

// Tile-runtime telemetry. Incremented at tile/transfer granularity
// (never per element); internal/bench snapshots them around each
// experiment so BENCH_ooc.json rows can report, e.g., the prefetch hit
// rate or how often the pinned working set overcommitted the budget.
var (
	tileHitCount        = metrics.New("ooc.tile.hit")
	tileFaultCount      = metrics.New("ooc.tile.fault")
	tileFreshCount      = metrics.New("ooc.tile.fresh")
	tileOvercommitCount = metrics.New("ooc.tile.overcommit")

	scratchAllocCount = metrics.New("ooc.strassen.scratch.alloc")
	scratchReuseCount = metrics.New("ooc.strassen.scratch.reuse")

	prefetchIssuedCount = metrics.New("ooc.prefetch.issued")
	prefetchHitCount    = metrics.New("ooc.prefetch.hit")
	prefetchSkipCount   = metrics.New("ooc.prefetch.skip")

	writeBehindCount   = metrics.New("ooc.writebehind")
	retryCount         = metrics.New("ooc.retry")
	faultInjectedCount = metrics.New("ooc.fault.injected")
)
