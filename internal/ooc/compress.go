package ooc

import (
	"encoding/binary"
	"fmt"
)

// Tile compression: zero-run-length over 8-byte words. GEP working
// sets are float64 tiles, and the compressible ones in practice are
// the structurally sparse ones — banded factors, untouched scratch,
// zero-initialized products — where entire words are zero. The codec
// therefore only distinguishes zero words from literal words:
//
//	0x00 uvarint(n)             n zero words
//	0x01 uvarint(n) n×8 bytes   n literal words, verbatim
//
// A tile whose encoding is not strictly smaller than its raw form is
// stored raw (the tileCompressed flag stays clear), so compression can
// never inflate physical I/O; dense random tiles cost one failed
// encode pass (a single scan) and are then written raw. The split
// between logical bytes (always side²·8) and physical bytes (the
// encoded payload) is what Stats.BytesLogical/BytesPhysical report,
// keeping the §4.1 transfer accounting honest — see DESIGN.md §16.

// errCompress reports a corrupt compressed payload (distinct from a
// checksum mismatch: the checksum guards the physical bytes, this
// guards the structural validity of their decoding).
var errCompress = fmt.Errorf("ooc: corrupt compressed tile payload")

// zrleEncode compresses src (len a multiple of 8) and returns the
// encoding, or nil when the encoding would not be strictly smaller
// than src (incompressible — store raw).
func zrleEncode(src []byte) []byte {
	words := len(src) / 8
	dst := make([]byte, 0, len(src)/2)
	var scratch [binary.MaxVarintLen64]byte
	for w := 0; w < words; {
		run := w
		for run < words && isZeroWord(src[run*8:]) {
			run++
		}
		if run > w {
			dst = append(dst, 0x00)
			dst = append(dst, scratch[:binary.PutUvarint(scratch[:], uint64(run-w))]...)
			w = run
			continue
		}
		lit := w
		for lit < words && !isZeroWord(src[lit*8:]) {
			lit++
		}
		dst = append(dst, 0x01)
		dst = append(dst, scratch[:binary.PutUvarint(scratch[:], uint64(lit-w))]...)
		dst = append(dst, src[w*8:lit*8]...)
		if len(dst) >= len(src) {
			return nil // already no smaller than raw; give up early
		}
		w = lit
	}
	if len(dst) >= len(src) {
		return nil
	}
	return dst
}

// zrleDecode decompresses src into dst (whose length is the exact
// logical size). Any structural violation — token overrun, bad varint,
// short literals, wrong total — returns errCompress; dst may then hold
// partial data and must be discarded.
func zrleDecode(dst, src []byte) error {
	words := len(dst) / 8
	w := 0
	for len(src) > 0 {
		tok := src[0]
		src = src[1:]
		n, k := binary.Uvarint(src)
		if k <= 0 || n > uint64(words-w) {
			return errCompress
		}
		src = src[k:]
		switch tok {
		case 0x00:
			clear(dst[w*8 : (w+int(n))*8])
		case 0x01:
			if uint64(len(src)) < n*8 {
				return errCompress
			}
			copy(dst[w*8:], src[:n*8])
			src = src[n*8:]
		default:
			return errCompress
		}
		w += int(n)
	}
	if w != words {
		return errCompress
	}
	return nil
}

func isZeroWord(b []byte) bool {
	return binary.LittleEndian.Uint64(b) == 0
}
