package ooc

import (
	"fmt"

	"gep/internal/core"
	"gep/internal/matrix"
)

// Out-of-core Strassen-Winograd multiplication over the tile-granular
// store — the first non-GEP access pattern on the tile runtime. The
// recursion is the same two-temporary Winograd schedule as the in-core
// engine (internal/linalg/strassen.go): seven sub-products plus
// fifteen quadrant additions per level, sequenced so the two scratch
// matrices are reused across sibling products, with classical leaves
// below the crossover. Every matrix operation is tile-granular:
// quadrants of a Morton-tiled layout are tile-aligned, so a quadrant
// view is just a tile-coordinate offset, additions stream tile
// triples, and leaves run the fused disjoint kernel over resident
// tile buffers with the C tile pinned across the k sweep.
//
// Scratch lives in the same store, past the three matrices, managed by
// a per-run free list keyed by side: the serial schedule needs two
// (s/2)²-element temporaries per level, reused across siblings, so the
// scratch footprint is bounded by 2n²/3 elements — on disk, not in
// RAM; residency is still governed by the store's tile budget, and a
// scratch tile costs transfers only when it actually spills (fresh
// pins via PinTileZero are free of reads by construction).
//
// Determinism: the schedule fixes every output cell's expression tree
// and the leaves accumulate strictly ascending in k, so RunStrassen is
// bit-identical to the in-core MulStrassen at the same crossover —
// strassen_test.go pins this across cache budgets, which is the
// strongest correctness statement available for the eviction and
// write-behind machinery under a non-GEP access pattern.

// RunStrassen computes c = a·b (overwriting c) with the
// Strassen-Winograd recursion at tile granularity. c, a, b must live
// in one store, share a power-of-two side and one tile-contiguous
// layout tile side, and c must not alias a or b. The region of the
// store past the three matrices is used as scratch. crossover < tile
// side is clamped up to it; crossover ≥ n runs the purely classical
// tile loop (the comparator the bounds2 experiment uses).
func RunStrassen(c, a, b *Matrix, crossover int, opts RunOptions) error {
	if c.s != a.s || c.s != b.s {
		return fmt.Errorf("ooc: RunStrassen needs c, a, b in one store")
	}
	n := c.n
	if a.n != n || b.n != n {
		return fmt.Errorf("ooc: RunStrassen size mismatch: c=%d a=%d b=%d", n, a.n, b.n)
	}
	if !matrix.IsPow2(n) {
		return fmt.Errorf("ooc: RunStrassen needs a power-of-two side, got %d", n)
	}
	if c.base == a.base || c.base == b.base {
		return fmt.Errorf("ooc: RunStrassen destination must not alias an operand")
	}
	if c.tiling == nil || a.tiling == nil || b.tiling == nil {
		return fmt.Errorf("ooc: RunStrassen needs tile-contiguous layouts (use MortonTiledLayout)")
	}
	ts := c.tiling.Side
	if a.tiling.Side != ts || b.tiling.Side != ts {
		return fmt.Errorf("ooc: RunStrassen needs one tile side, got c=%d a=%d b=%d",
			ts, a.tiling.Side, b.tiling.Side)
	}
	if crossover < ts {
		crossover = ts // a leaf cannot be finer than one tile
	}
	scratch := c.base + c.Bytes()
	if e := a.base + a.Bytes(); e > scratch {
		scratch = e
	}
	if e := b.base + b.Bytes(); e > scratch {
		scratch = e
	}
	rs := &strassenOOC{
		s:         c.s,
		ts:        ts,
		crossover: crossover,
		prefetch:  opts.Prefetch,
		layout:    MortonTiledLayout(ts),
		next:      (scratch + 4095) &^ 4095,
		freeList:  map[int][]int64{},
	}
	err := rs.mul(mvOf(c), mvOf(a), mvOf(b), n)
	if serr := c.s.SyncTiles(); err == nil {
		err = serr
	}
	if err == nil {
		err = c.s.Err()
	}
	return err
}

type strassenOOC struct {
	s         *Store
	ts        int
	crossover int
	prefetch  bool
	layout    LayoutFunc
	next      int64           // bump pointer for fresh scratch matrices
	freeList  map[int][]int64 // released scratch bases by side
}

// mview is a quadrant view in tile coordinates: the quadrant whose
// first tile is (tr, tc) of m.
type mview struct {
	m      *Matrix
	tr, tc int
}

func mvOf(m *Matrix) mview           { return mview{m: m} }
func (v mview) sub(ti, tj int) mview { return mview{m: v.m, tr: v.tr + ti, tc: v.tc + tj} }
func (v mview) off(ti, tj int) int64 { return v.m.TileOffset(v.tr+ti, v.tc+tj) }

// alloc hands out an h×h scratch matrix, recycling a released one of
// the same side when available.
func (rs *strassenOOC) alloc(h int) *Matrix {
	if l := rs.freeList[h]; len(l) > 0 {
		base := l[len(l)-1]
		rs.freeList[h] = l[:len(l)-1]
		scratchReuseCount.Inc()
		return NewMatrix(rs.s, h, base, rs.layout)
	}
	base := rs.next
	rs.next += (int64(h)*int64(h)*8 + 4095) &^ 4095
	scratchAllocCount.Inc()
	return NewMatrix(rs.s, h, base, rs.layout)
}

func (rs *strassenOOC) release(h int, m *Matrix) {
	rs.freeList[h] = append(rs.freeList[h], m.base)
}

func (rs *strassenOOC) mul(c, a, b mview, s int) error {
	if s <= rs.crossover {
		return rs.leaf(c, a, b, s)
	}
	return rs.winograd(c, a, b, s)
}

// winograd is one recursion level — the same schedule, operand for
// operand, as the in-core engine; see strassen.go for the expression
// trees it realizes.
func (rs *strassenOOC) winograd(c, a, b mview, s int) error {
	h := s / 2
	ht := h / rs.ts
	a11, a12, a21, a22 := a, a.sub(0, ht), a.sub(ht, 0), a.sub(ht, ht)
	b11, b12, b21, b22 := b, b.sub(0, ht), b.sub(ht, 0), b.sub(ht, ht)
	c11, c12, c21, c22 := c, c.sub(0, ht), c.sub(ht, 0), c.sub(ht, ht)
	xm, ym := rs.alloc(h), rs.alloc(h)
	x, y := mvOf(xm), mvOf(ym)
	for _, step := range []func() error{
		func() error { return rs.sub(x, a11, a21, h) }, // X = S3
		func() error { return rs.sub(y, b22, b12, h) }, // Y = T3
		func() error { return rs.mul(c21, x, y, h) },   // C21 = P7
		func() error { return rs.add(x, a21, a22, h) }, // X = S1
		func() error { return rs.sub(y, b12, b11, h) }, // Y = T1
		func() error { return rs.mul(c22, x, y, h) },   // C22 = P5
		func() error { return rs.sub(x, x, a11, h) },   // X = S2
		func() error { return rs.sub(y, b22, y, h) },   // Y = T2
		func() error { return rs.mul(c12, x, y, h) },   // C12 = P6
		func() error { return rs.sub(x, a12, x, h) },   // X = S4
		func() error { return rs.mul(c11, x, b22, h) }, // C11 = P3
		func() error { return rs.mul(x, a11, b11, h) }, // X = P1
		func() error { return rs.addAcc(c12, x, h) },   // C12 = U2
		func() error { return rs.addAcc(c21, c12, h) }, // C21 = U3
		func() error { return rs.addAcc(c12, c22, h) }, // C12 = U4
		func() error { return rs.addAcc(c22, c21, h) }, // C22 final
		func() error { return rs.addAcc(c12, c11, h) }, // C12 final
		func() error { return rs.sub(y, b21, y, h) },   // Y = T4′
		func() error { return rs.mul(c11, a22, y, h) }, // C11 = P4′
		func() error { return rs.addAcc(c21, c11, h) }, // C21 final
		func() error { return rs.mul(y, a12, b21, h) }, // Y = P2
		func() error { return rs.addTo(c11, x, y, h) }, // C11 = P1+P2 final
	} {
		if err := step(); err != nil {
			return err
		}
	}
	rs.release(h, xm)
	rs.release(h, ym)
	return nil
}

// leaf is the classical tile loop: for each C tile, pin it fresh
// (zeroed, no read) and sweep k ascending, running the fused disjoint
// kernel over the resident buffers — the per-cell update order is
// ascending k exactly as in the in-core classical recursion, so leaf
// results are bitwise identical to MulFused's at any tile side.
func (rs *strassenOOC) leaf(c, a, b mview, s int) error {
	nt := s / rs.ts
	for ti := 0; ti < nt; ti++ {
		for tj := 0; tj < nt; tj++ {
			ct, err := rs.s.PinTileZero(c.off(ti, tj), rs.ts)
			if err != nil {
				return err
			}
			for tk := 0; tk < nt; tk++ {
				at, err := rs.s.PinTile(a.off(ti, tk), rs.ts)
				if err != nil {
					rs.s.UnpinTile(ct, true)
					return err
				}
				bt, err := rs.s.PinTile(b.off(tk, tj), rs.ts)
				if err != nil {
					rs.s.UnpinTile(at, false)
					rs.s.UnpinTile(ct, true)
					return err
				}
				if rs.prefetch && tk+1 < nt {
					rs.s.PrefetchTile(a.off(ti, tk+1), rs.ts)
					rs.s.PrefetchTile(b.off(tk+1, tj), rs.ts)
				}
				core.DisjointBlock[float64](core.MulAdd[float64]{}, core.Full{},
					ct.Data, rs.ts, at.Data, rs.ts, bt.Data, rs.ts, bt.Data, rs.ts, rs.ts)
				rs.s.UnpinTile(bt, false)
				rs.s.UnpinTile(at, false)
			}
			rs.s.UnpinTile(ct, true)
		}
	}
	return nil
}

// binTile streams one elementwise binary operation over the quadrant:
// per tile, pin the operands, produce the destination — fresh (no
// read) when it aliases neither operand, in place when it does — and
// unpin with only the destination dirty.
func (rs *strassenOOC) binTile(dst, x, y mview, s int, f func(d, xv, yv []float64)) error {
	nt := s / rs.ts
	for ti := 0; ti < nt; ti++ {
		for tj := 0; tj < nt; tj++ {
			do, xo, yo := dst.off(ti, tj), x.off(ti, tj), y.off(ti, tj)
			xt, err := rs.s.PinTile(xo, rs.ts)
			if err != nil {
				return err
			}
			yt, err := rs.s.PinTile(yo, rs.ts)
			if err != nil {
				rs.s.UnpinTile(xt, false)
				return err
			}
			dt := xt
			switch do {
			case xo:
			case yo:
				dt = yt
			default:
				dt, err = rs.s.PinTileZero(do, rs.ts)
				if err != nil {
					rs.s.UnpinTile(yt, false)
					rs.s.UnpinTile(xt, false)
					return err
				}
			}
			f(dt.Data, xt.Data, yt.Data)
			rs.s.UnpinTile(yt, dt == yt)
			rs.s.UnpinTile(xt, dt == xt)
			if dt != xt && dt != yt {
				rs.s.UnpinTile(dt, true)
			}
		}
	}
	return nil
}

func addF(d, xv, yv []float64) {
	for i, v := range xv {
		d[i] = v + yv[i]
	}
}

func subF(d, xv, yv []float64) {
	for i, v := range xv {
		d[i] = v - yv[i]
	}
}

// add sets dst = x + y; sub sets dst = x − y (dst may alias x or y);
// addAcc sets dst += src; addTo sets dst = x + y with dst disjoint.
func (rs *strassenOOC) add(dst, x, y mview, s int) error { return rs.binTile(dst, x, y, s, addF) }
func (rs *strassenOOC) sub(dst, x, y mview, s int) error { return rs.binTile(dst, x, y, s, subF) }
func (rs *strassenOOC) addAcc(dst, src mview, s int) error {
	return rs.binTile(dst, dst, src, s, addF)
}
func (rs *strassenOOC) addTo(dst, x, y mview, s int) error { return rs.binTile(dst, x, y, s, addF) }
