package ooc

import (
	"math/rand"
	"testing"
	"time"

	"gep/internal/core"
	"gep/internal/matrix"
)

func newTestStore(t *testing.T, pageSize int, cacheSize int64) *Store {
	t.Helper()
	s, err := Create(t.TempDir(), Config{PageSize: pageSize, CacheSize: cacheSize})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return s
}

func TestReadWriteRoundTrip(t *testing.T) {
	s := newTestStore(t, 64, 256) // 4 resident pages
	rng := rand.New(rand.NewSource(1))
	vals := make(map[int64]float64)
	for i := 0; i < 2000; i++ {
		off := int64(rng.Intn(500)) * 8
		v := rng.NormFloat64()
		s.WriteFloat(off, v)
		vals[off] = v
	}
	for off, v := range vals {
		if got := s.ReadFloat(off); got != v {
			t.Fatalf("ReadFloat(%d) = %v, want %v", off, got, v)
		}
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	s := newTestStore(t, 64, 128)
	if got := s.ReadFloat(12345 * 8); got != 0 {
		t.Fatalf("unwritten read = %v, want 0", got)
	}
}

func TestEvictionAndWriteBack(t *testing.T) {
	s := newTestStore(t, 64, 128) // 2 resident pages of 8 floats each
	// Write to 4 distinct pages; only 2 stay resident.
	for p := int64(0); p < 4; p++ {
		s.WriteFloat(p*64, float64(p+1))
	}
	if s.Resident() != 2 {
		t.Fatalf("resident = %d, want 2", s.Resident())
	}
	// All values survive eviction via write-back.
	for p := int64(0); p < 4; p++ {
		if got := s.ReadFloat(p * 64); got != float64(p+1) {
			t.Fatalf("page %d lost: %v", p, got)
		}
	}
	st := s.Stats()
	if st.PageWrites == 0 {
		t.Fatal("no write-backs recorded")
	}
	if st.PageReads < 4 {
		t.Fatalf("page reads = %d, want >= 4", st.PageReads)
	}
}

func TestHitCountingAndLRU(t *testing.T) {
	s := newTestStore(t, 64, 128) // 2 pages
	s.ReadFloat(0)                // page 0: fault
	s.ReadFloat(8)                // page 0: hit
	s.ReadFloat(64)               // page 1: fault
	s.ReadFloat(0)                // page 0: hit (promoted)
	s.ReadFloat(128)              // page 2: fault, evicts page 1 (LRU)
	s.ReadFloat(0)                // page 0: hit still
	s.ReadFloat(64)               // page 1: fault again
	st := s.Stats()
	if st.Faults != 4 {
		t.Fatalf("faults = %d, want 4", st.Faults)
	}
	if st.Hits != 3 {
		t.Fatalf("hits = %d, want 3", st.Hits)
	}
}

func TestIOTimeModel(t *testing.T) {
	s := newTestStore(t, 1<<16, 1<<17)
	if s.IOTime() != 0 {
		t.Fatal("nonzero I/O time before any access")
	}
	s.ReadFloat(0)
	got := s.IOTime()
	// One page read: one seek (4.5 ms) + 64 KiB / 85 MB/s (~0.77 ms).
	transfer := float64(1<<16) / 85e6 * float64(time.Second)
	want := 4500*time.Microsecond + time.Duration(transfer)
	if d := got - want; d < -time.Microsecond || d > time.Microsecond {
		t.Fatalf("IOTime = %v, want ~%v", got, want)
	}
}

func TestMatrixGridRoundTrip(t *testing.T) {
	s := newTestStore(t, 512, 4096)
	for _, layout := range []LayoutFunc{RowMajorLayout, MortonTiledLayout(4)} {
		m := NewMatrix(s, 16, 0, layout)
		src := matrix.NewSquare[float64](16)
		rng := rand.New(rand.NewSource(7))
		src.Apply(func(i, j int, _ float64) float64 { return rng.Float64() })
		if err := m.Load(src); err != nil {
			t.Fatal(err)
		}
		back, err := m.Unload()
		if err != nil {
			t.Fatal(err)
		}
		if !back.EqualFunc(src, func(a, b float64) bool { return a == b }) {
			t.Fatal("Load/Unload round trip failed")
		}
	}
}

// TestFloydWarshallOutOfCore runs the actual GEP algorithms on a
// disk-backed matrix with a tiny RAM budget and checks the answer
// against the in-core computation — the paper's "same code runs
// out-of-core unchanged" claim.
func TestFloydWarshallOutOfCore(t *testing.T) {
	const n = 32
	rng := rand.New(rand.NewSource(3))
	src := matrix.NewSquare[float64](n)
	src.Apply(func(i, j int, _ float64) float64 {
		if i == j {
			return 0
		}
		return float64(rng.Intn(1000) + 1)
	})
	fw := core.UpdateFunc[float64](func(i, j, k int, x, u, v, w float64) float64 {
		if d := u + v; d < x {
			return d
		}
		return x
	})

	want := src.Clone()
	core.RunGEP[float64](want, fw, core.Full{})

	// RAM budget: 4 pages of 512 B = 2 KB for an 8 KB matrix.
	s := newTestStore(t, 512, 2048)
	m := NewMatrix(s, n, 0, MortonTiledLayout(8))
	m.Load(src)
	s.ResetStats()
	core.RunIGEP[float64](m, fw, core.Full{})
	igepStats := s.Stats()
	got, err := m.Unload()
	if err != nil {
		t.Fatal(err)
	}
	// Integer edge weights: min-plus sums are exact in float64.
	if !got.EqualFunc(want, func(a, b float64) bool { return a == b }) {
		t.Fatal("out-of-core I-GEP Floyd-Warshall differs from in-core GEP")
	}
	if igepStats.PageReads == 0 {
		t.Fatal("expected page traffic with a 2 KB budget")
	}

	// And GEP on the same budget performs far more page I/O.
	s2 := newTestStore(t, 512, 2048)
	m2 := NewMatrix(s2, n, 0, RowMajorLayout)
	m2.Load(src)
	s2.ResetStats()
	core.RunGEP[float64](m2, fw, core.Full{})
	gepStats := s2.Stats()
	if gepStats.PageReads <= igepStats.PageReads {
		t.Fatalf("GEP page reads (%d) not above I-GEP's (%d)", gepStats.PageReads, igepStats.PageReads)
	}
}

// TestCGEPOutOfCoreWithFileBackedAux runs C-GEP whose aux matrices
// also live in the store.
func TestCGEPOutOfCoreWithFileBackedAux(t *testing.T) {
	const n = 16
	rng := rand.New(rand.NewSource(4))
	src := matrix.NewSquare[float64](n)
	src.Apply(func(i, j int, _ float64) float64 { return float64(rng.Intn(100)) })
	f := core.UpdateFunc[float64](func(i, j, k int, x, u, v, w float64) float64 { return x + 2*u - v + 3*w })

	want := src.Clone()
	core.RunGEP[float64](want, f, core.Full{})

	s := newTestStore(t, 512, 4096)
	m := NewMatrix(s, n, 0, MortonTiledLayout(4))
	m.Load(src)
	next := m.Bytes()
	factory := func(rows, cols int) matrix.Rect[float64] {
		r := NewRect(s, rows, cols, next)
		next += int64(rows) * int64(cols) * 8
		return r
	}
	core.RunCGEP[float64](m, f, core.Full{}, core.WithAuxFactory[float64](factory))
	got, err := m.Unload()
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualFunc(want, func(a, b float64) bool { return a == b }) {
		t.Fatal("out-of-core C-GEP differs from in-core GEP")
	}
}

func TestCreateValidation(t *testing.T) {
	if _, err := Create(t.TempDir(), Config{PageSize: 100, CacheSize: 1000}); err == nil {
		t.Fatal("page size not multiple of 8 accepted")
	}
	if _, err := Create(t.TempDir(), Config{PageSize: 64, CacheSize: 32}); err == nil {
		t.Fatal("cache smaller than one page accepted")
	}
}

func TestTiledRectRoundTrip(t *testing.T) {
	st := newTestStore(t, 512, 8192)
	base := int64(0)
	for _, sh := range [][2]int{{16, 8}, {32, 16}, {10, 7}, {1, 1}} {
		rows, cols := sh[0], sh[1]
		r := NewTiledRect(st, rows, cols, 4, base)
		vals := map[[2]int]float64{}
		rng := rand.New(rand.NewSource(int64(rows)))
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				v := rng.NormFloat64()
				r.Set(i, j, v)
				vals[[2]int{i, j}] = v
			}
		}
		for k, v := range vals {
			if got := r.At(k[0], k[1]); got != v {
				t.Fatalf("%dx%d: At(%d,%d) = %v, want %v", rows, cols, k[0], k[1], got, v)
			}
		}
		base += r.Bytes()
	}
}

func TestTiledRectDistinctCells(t *testing.T) {
	st := newTestStore(t, 512, 8192)
	r := NewTiledRect(st, 12, 9, 4, 0)
	// Writing every cell a unique value must not alias.
	for i := 0; i < 12; i++ {
		for j := 0; j < 9; j++ {
			r.Set(i, j, float64(i*100+j))
		}
	}
	for i := 0; i < 12; i++ {
		for j := 0; j < 9; j++ {
			if r.At(i, j) != float64(i*100+j) {
				t.Fatalf("aliasing at (%d,%d)", i, j)
			}
		}
	}
}
