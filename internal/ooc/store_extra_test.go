package ooc

import (
	"os"
	"testing"
	"time"

	"gep/internal/matrix"
)

// Tests for the store and view paths the round-trip tests do not
// reach: defaulted configuration, counter reset, eviction buffer
// reuse, write-back durability across eviction, file lifecycle, the
// layout clamps, and the constructor panics.

func TestDefaultDiskIsUsable(t *testing.T) {
	cfg := DefaultDisk()
	s, err := Create(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := s.Config()
	if got.PageSize != cfg.PageSize || got.CacheSize != cfg.CacheSize ||
		got.SeekTime != cfg.SeekTime || got.TransferRate != cfg.TransferRate {
		t.Fatalf("Config() = %+v, want cache geometry and disk model of %+v", got, cfg)
	}
	if got.MaxRetries != defaultMaxRetries || got.RetryBackoff != defaultRetryBackoff ||
		got.WriteBehind != defaultWriteBehind {
		t.Fatalf("Create did not default the failure policy: %+v", got)
	}
	if cfg.SeekTime != 4500*time.Microsecond || cfg.TransferRate != 85e6 {
		t.Fatalf("DefaultDisk drifted from the paper's disk model: %+v", cfg)
	}
}

// TestCreateDefaultsDiskModel: a Config that only fixes the cache
// geometry gets the paper's disk timing filled in.
func TestCreateDefaultsDiskModel(t *testing.T) {
	s := newTestStore(t, 64, 256)
	cfg := s.Config()
	if cfg.SeekTime == 0 || cfg.TransferRate == 0 {
		t.Fatalf("Create left disk model unset: %+v", cfg)
	}
}

func TestResetStatsKeepsCache(t *testing.T) {
	s := newTestStore(t, 64, 256)
	s.WriteFloat(0, 1)
	s.WriteFloat(8, 2)
	if s.Stats() == (Stats{}) {
		t.Fatal("writes recorded no stats")
	}
	resident := s.Resident()
	s.ResetStats()
	if s.Stats() != (Stats{}) {
		t.Fatalf("ResetStats left %+v", s.Stats())
	}
	if s.Resident() != resident {
		t.Fatalf("ResetStats changed residency: %d -> %d", resident, s.Resident())
	}
	// The cached page still serves hits without re-reading.
	if got := s.ReadFloat(0); got != 1 {
		t.Fatalf("ReadFloat after reset = %g", got)
	}
	if st := s.Stats(); st.Hits != 1 || st.PageReads != 0 {
		t.Fatalf("post-reset access stats = %+v, want 1 hit and no reads", st)
	}
}

// TestEvictionReusesBuffer: once the cache is full, faulting a new
// page must not grow residency — the LRU victim's buffer is recycled
// and, when dirty, written back first so its data survives.
func TestEvictionReusesBuffer(t *testing.T) {
	const pageSize, pages = 64, 2
	s := newTestStore(t, pageSize, pageSize*pages)
	for p := 0; p < pages; p++ {
		s.WriteFloat(int64(p*pageSize), float64(p+1))
	}
	if s.Resident() != pages {
		t.Fatalf("resident = %d, want %d", s.Resident(), pages)
	}
	for p := pages; p < 4*pages; p++ {
		s.WriteFloat(int64(p*pageSize), float64(p+1))
		if s.Resident() != pages {
			t.Fatalf("after faulting page %d: resident = %d, want %d", p, s.Resident(), pages)
		}
	}
	writes := s.Stats().PageWrites
	if writes == 0 {
		t.Fatal("dirty evictions recorded no page writes")
	}
	// Every page written, including the long-evicted first ones, reads
	// back intact (from disk, not cache: 8 pages > 2 resident).
	for p := 0; p < 4*pages; p++ {
		if got := s.ReadFloat(int64(p * pageSize)); got != float64(p+1) {
			t.Fatalf("page %d = %g, want %d", p, got, p+1)
		}
	}
}

// TestCleanEvictionSkipsWriteBack: pages that were only read are
// dropped without a disk write.
func TestCleanEvictionSkipsWriteBack(t *testing.T) {
	const pageSize = 64
	s := newTestStore(t, pageSize, pageSize) // 1 resident page
	for p := 0; p < 5; p++ {
		s.ReadFloat(int64(p * pageSize))
	}
	if st := s.Stats(); st.PageWrites != 0 {
		t.Fatalf("clean evictions wrote %d pages", st.PageWrites)
	}
}

func TestFlushWritesBackAllDirty(t *testing.T) {
	const pageSize = 64
	s := newTestStore(t, pageSize, 4*pageSize)
	for p := 0; p < 3; p++ {
		s.WriteFloat(int64(p*pageSize), float64(p))
	}
	s.Flush()
	if st := s.Stats(); st.PageWrites != 3 {
		t.Fatalf("Flush wrote %d pages, want 3", st.PageWrites)
	}
	// All resident pages are clean now; a second flush writes nothing.
	s.Flush()
	if st := s.Stats(); st.PageWrites != 3 {
		t.Fatalf("second Flush wrote %d more pages", st.PageWrites-3)
	}
}

// TestCloseRemovesOwnedFile: Close flushes and deletes the temp file
// the store created.
func TestCloseRemovesOwnedFile(t *testing.T) {
	s, err := Create(t.TempDir(), Config{PageSize: 64, CacheSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	s.WriteFloat(0, 7)
	name := s.files[0].Name()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(name); !os.IsNotExist(err) {
		t.Fatalf("backing file %s still exists after Close (stat err: %v)", name, err)
	}
}

func TestIOTimeCountsBothDirections(t *testing.T) {
	const pageSize = 64
	s := newTestStore(t, pageSize, pageSize) // 1 resident page
	s.WriteFloat(0, 1)                       // 1 read fault
	s.WriteFloat(pageSize, 2)                // evict dirty page: 1 write + 1 read
	st := s.Stats()
	if st.PageReads != 2 || st.PageWrites != 1 {
		t.Fatalf("stats = %+v, want 2 reads 1 write", st)
	}
	cfg := s.Config()
	n := st.PageReads + st.PageWrites
	transfer := float64(n) * float64(pageSize) / cfg.TransferRate
	want := time.Duration(n)*cfg.SeekTime + time.Duration(transfer*float64(time.Second))
	if got := s.IOTime(); got != want {
		t.Fatalf("IOTime = %v, want %v", got, want)
	}
}

func TestMortonTiledLayoutClampsBlock(t *testing.T) {
	s := newTestStore(t, 64, 1024)
	// block 8 > n 4: the layout must clamp instead of indexing out of
	// the tile grid.
	m := NewMatrix(s, 4, 0, MortonTiledLayout(8))
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			m.Set(i, j, float64(10*i+j))
		}
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if got := m.At(i, j); got != float64(10*i+j) {
				t.Fatalf("At(%d,%d) = %g", i, j, got)
			}
		}
	}
}

func TestLoadUnloadRoundTrip(t *testing.T) {
	const n = 8
	s := newTestStore(t, 64, 256)
	src := matrix.NewSquare[float64](n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			src.Set(i, j, float64(i*n+j))
		}
	}
	m := NewMatrix(s, n, 0, RowMajorLayout)
	m.Load(src)
	if m.N() != n || m.Bytes() != n*n*8 {
		t.Fatalf("N=%d Bytes=%d", m.N(), m.Bytes())
	}
	out, err := m.Unload()
	if err != nil {
		t.Fatal(err)
	}
	if !src.EqualFunc(out, func(a, b float64) bool { return a == b }) {
		t.Fatal("Unload differs from Load input")
	}
}

func TestRectRowMajorAddressing(t *testing.T) {
	s := newTestStore(t, 64, 1024)
	r := NewRect(s, 3, 5, 0)
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			r.Set(i, j, float64(100*i+j))
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			if got := r.At(i, j); got != float64(100*i+j) {
				t.Fatalf("At(%d,%d) = %g", i, j, got)
			}
			// Same cell straight from the store: row-major addressing.
			if got := s.ReadFloat(int64(i*5+j) * 8); got != float64(100*i+j) {
				t.Fatalf("store offset for (%d,%d) = %g", i, j, got)
			}
		}
	}
}

// TestTiledRectPadding: Bytes rounds both dimensions up to whole
// tiles, and an oversized tile clamps to the rect's dimensions.
func TestTiledRectPadding(t *testing.T) {
	s := newTestStore(t, 64, 1024)
	r := NewTiledRect(s, 5, 7, 4, 0)
	// ceil(5/4)=2 tile rows x ceil(7/4)=2 tile cols x 16 cells x 8 B.
	if got := r.Bytes(); got != 2*2*16*8 {
		t.Fatalf("Bytes = %d, want %d", got, 2*2*16*8)
	}
	clamped := NewTiledRect(s, 2, 3, 100, r.Bytes())
	if clamped.tile != 2 {
		t.Fatalf("tile = %d, want clamped to 2", clamped.tile)
	}
}

func TestConstructorPanics(t *testing.T) {
	s := newTestStore(t, 64, 256)
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("NewMatrix misaligned base", func() { NewMatrix(s, 4, 4, RowMajorLayout) })
	expectPanic("NewRect misaligned base", func() { NewRect(s, 2, 2, 12) })
	expectPanic("NewTiledRect misaligned base", func() { NewTiledRect(s, 2, 2, 1, 20) })
	expectPanic("NewTiledRect zero tile", func() { NewTiledRect(s, 2, 2, 0, 0) })
	m := NewMatrix(s, 4, 0, RowMajorLayout)
	expectPanic("Load size mismatch", func() { m.Load(matrix.NewSquare[float64](2)) })
}
