package ooc

import (
	"encoding/binary"
	"fmt"
	"math"

	"gep/internal/matrix"
)

// Matrix is an n×n float64 matrix living in a Store; it implements
// matrix.Grid[float64], so all GEP algorithms run on it unchanged —
// the paper's point that the in-core cache-oblivious code works
// out-of-core without modification. When its layout is tile-contiguous
// (MortonTiledLayout), the tile API (PinTile/PrefetchTile) additionally
// exposes whole aligned quadrants as resident flat buffers for the
// tile-granular runtime of run.go.
type Matrix struct {
	s      *Store
	n      int
	base   int64
	index  func(i, j int) int64
	tiling *Tiling
}

// Layout is the resolved cell→element mapping of an n×n matrix.
type Layout struct {
	// Index maps cell (i, j) to its element index (units of 8 bytes)
	// relative to the matrix base.
	Index func(i, j int) int64
	// Tile describes the layout's tile-contiguity when it has any:
	// non-nil means every aligned Side×Side quadrant occupies one
	// contiguous, row-major run of Side² elements. Element-contiguous
	// layouts (row-major) leave it nil, and the tile API is unavailable.
	Tile *Tiling
}

// Tiling is the tile geometry of a tile-contiguous layout.
type Tiling struct {
	// Side is the tile edge in elements.
	Side int
	// Index returns the element index of tile (ti, tj)'s first cell;
	// the tile's Side² elements follow contiguously in row-major order.
	Index func(ti, tj int) int64
}

// LayoutFunc instantiates a layout for a given matrix side; see
// RowMajorLayout and MortonTiledLayout. A LayoutFunc must be reusable:
// calling it for several sizes yields independent layouts.
type LayoutFunc func(n int) Layout

// RowMajorLayout stores rows contiguously. It has no tile structure.
func RowMajorLayout(n int) Layout {
	return Layout{
		Index: func(i, j int) int64 { return int64(i)*int64(n) + int64(j) },
	}
}

// MortonTiledLayout stores block×block tiles in Morton order with
// row-major elements inside each tile, so recursive quadrants are
// contiguous on disk — the natural external-memory layout for I-GEP.
// The block size is clamped to the matrix side per instantiation (the
// clamp is local to each call of the returned LayoutFunc, so one
// LayoutFunc value is safely reusable across matrix sizes).
func MortonTiledLayout(block int) LayoutFunc {
	return func(n int) Layout {
		b := block
		if n < b {
			b = n
		}
		t := matrix.NewTiled[struct{}](n, b)
		return Layout{
			Index: func(i, j int) int64 { return int64(t.Index(i, j)) },
			Tile: &Tiling{
				Side:  b,
				Index: func(ti, tj int) int64 { return int64(t.Index(ti*b, tj*b)) },
			},
		}
	}
}

// NewMatrix places an n×n matrix at byte offset base of the store.
func NewMatrix(s *Store, n int, base int64, layout LayoutFunc) *Matrix {
	if base%8 != 0 {
		panic(fmt.Sprintf("ooc: base %d not 8-aligned", base))
	}
	l := layout(n)
	return &Matrix{s: s, n: n, base: base, index: l.Index, tiling: l.Tile}
}

// N implements matrix.Grid.
func (m *Matrix) N() int { return m.n }

// At implements matrix.Grid. I/O failures surface via Store.Err.
func (m *Matrix) At(i, j int) float64 {
	return m.s.ReadFloat(m.base + m.index(i, j)*8)
}

// Set implements matrix.Grid. I/O failures surface via Store.Err.
func (m *Matrix) Set(i, j int, v float64) {
	m.s.WriteFloat(m.base+m.index(i, j)*8, v)
}

// Store returns the backing store.
func (m *Matrix) Store() *Store { return m.s }

// Bytes returns the on-disk footprint of the matrix.
func (m *Matrix) Bytes() int64 { return int64(m.n) * int64(m.n) * 8 }

// Tiling returns the matrix's tile geometry, or nil when its layout is
// not tile-contiguous.
func (m *Matrix) Tiling() *Tiling { return m.tiling }

// TileOffset returns the byte offset of tile (ti, tj). The matrix must
// have a tiling.
func (m *Matrix) TileOffset(ti, tj int) int64 {
	return m.base + m.tiling.Index(ti, tj)*8
}

// PinTile pins the tile containing cell block (ti·Side, tj·Side); see
// Store.PinTile. The matrix must have a tiling.
func (m *Matrix) PinTile(ti, tj int) (*Tile, error) {
	return m.s.PinTile(m.TileOffset(ti, tj), m.tiling.Side)
}

// PrefetchTile starts a best-effort background read of tile (ti, tj);
// see Store.PrefetchTile. The matrix must have a tiling.
func (m *Matrix) PrefetchTile(ti, tj int) {
	m.s.PrefetchTile(m.TileOffset(ti, tj), m.tiling.Side)
}

// Load copies a dense in-core matrix into the store. It panics if the
// sizes differ (API misuse) and returns the store's first I/O error.
func (m *Matrix) Load(src *matrix.Dense[float64]) error {
	if src.N() != m.n {
		panic("ooc: Load size mismatch")
	}
	for i := 0; i < m.n; i++ {
		row := src.Row(i)
		for j, v := range row {
			m.Set(i, j, v)
		}
	}
	return m.s.Err()
}

// LoadFunc fills the matrix tile by tile from f(i, j) — the scalable
// load path: nothing is staged densely in RAM, each tile is pinned
// fresh (no read), filled, and written back through the checksummed
// tile path, so matrices far larger than RAM load with one tile
// buffer resident. Requires a tile-contiguous layout.
func (m *Matrix) LoadFunc(f func(i, j int) float64) error {
	if m.tiling == nil {
		return fmt.Errorf("ooc: LoadFunc needs a tile-contiguous layout (use MortonTiledLayout)")
	}
	side := m.tiling.Side
	nt := m.n / side
	for ti := 0; ti < nt; ti++ {
		for tj := 0; tj < nt; tj++ {
			t, err := m.s.PinTileZero(m.TileOffset(ti, tj), side)
			if err != nil {
				return err
			}
			for r := 0; r < side; r++ {
				for c := 0; c < side; c++ {
					t.Data[r*side+c] = f(ti*side+r, tj*side+c)
				}
			}
			m.s.UnpinTile(t, true)
		}
	}
	return m.s.Err()
}

// LoadTiles copies a dense in-core matrix into the store through the
// tile path (see LoadFunc). It panics if the sizes differ.
func (m *Matrix) LoadTiles(src *matrix.Dense[float64]) error {
	if src.N() != m.n {
		panic("ooc: LoadTiles size mismatch")
	}
	return m.LoadFunc(src.At)
}

// Unload copies the matrix back into a fresh dense matrix, surfacing
// the store's first I/O error.
func (m *Matrix) Unload() (*matrix.Dense[float64], error) {
	out := matrix.NewSquare[float64](m.n)
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			out.Set(i, j, m.At(i, j))
		}
	}
	return out, m.s.Err()
}

// Digest returns an XXH64 digest of the matrix's logical contents,
// read tile by tile in row-major tile order through the verified tile
// path (per-tile sums chained into one). Two matrices with identical
// contents and tiling produce identical digests regardless of
// striping, compression, journaling, or crash/recovery history — the
// bit-identical-resume check the recovery matrix relies on. Requires a
// tile-contiguous layout.
func (m *Matrix) Digest() (uint64, error) {
	if m.tiling == nil {
		return 0, fmt.Errorf("ooc: Digest needs a tile-contiguous layout (use MortonTiledLayout)")
	}
	side := m.tiling.Side
	nt := m.n / side
	buf := make([]byte, side*side*8)
	sums := make([]byte, 0, nt*nt*8)
	var sumb [8]byte
	for ti := 0; ti < nt; ti++ {
		for tj := 0; tj < nt; tj++ {
			t, err := m.s.PinTile(m.TileOffset(ti, tj), side)
			if err != nil {
				return 0, err
			}
			for i, v := range t.Data {
				binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
			}
			m.s.UnpinTile(t, false)
			binary.LittleEndian.PutUint64(sumb[:], Checksum(buf))
			sums = append(sums, sumb[:]...)
		}
	}
	return Checksum(sums), m.s.Err()
}

// Rect is a rows×cols float64 region of a Store in row-major order; it
// implements matrix.Rect[float64] and backs C-GEP's aux matrices in
// the out-of-core experiments.
type Rect struct {
	s    *Store
	cols int64
	base int64
}

// NewRect places a rows×cols rect at byte offset base.
func NewRect(s *Store, rows, cols int, base int64) *Rect {
	if base%8 != 0 {
		panic(fmt.Sprintf("ooc: base %d not 8-aligned", base))
	}
	return &Rect{s: s, cols: int64(cols), base: base}
}

// At implements matrix.Rect.
func (r *Rect) At(i, j int) float64 {
	return r.s.ReadFloat(r.base + (int64(i)*r.cols+int64(j))*8)
}

// Set implements matrix.Rect.
func (r *Rect) Set(i, j int, v float64) {
	r.s.WriteFloat(r.base+(int64(i)*r.cols+int64(j))*8, v)
}

// TiledRect is a rows×cols float64 region stored as tile×tile blocks
// (tiles in row-major order, row-major inside each tile), giving 2-D
// locality for rectangular data such as C-GEP's aux matrices — whose
// access pattern is column bands for u0/u1 and row bands for v0/v1,
// both pathological in a plain row-major page layout.
type TiledRect struct {
	s           *Store
	rows, cols  int
	tile        int
	tilesPerRow int
	base        int64
}

// NewTiledRect places a rows×cols tiled rect at byte offset base; its
// on-disk footprint is Bytes() (tiles are padded up to full size).
func NewTiledRect(s *Store, rows, cols, tile int, base int64) *TiledRect {
	if base%8 != 0 {
		panic(fmt.Sprintf("ooc: base %d not 8-aligned", base))
	}
	if tile < 1 {
		panic("ooc: tile must be >= 1")
	}
	if tile > rows && rows > 0 {
		tile = rows
	}
	if tile > cols && cols > 0 {
		tile = cols
	}
	return &TiledRect{
		s: s, rows: rows, cols: cols, tile: tile,
		tilesPerRow: (cols + tile - 1) / tile,
		base:        base,
	}
}

// Bytes returns the on-disk footprint including tile padding.
func (r *TiledRect) Bytes() int64 {
	tr := (r.rows + r.tile - 1) / r.tile
	return int64(tr) * int64(r.tilesPerRow) * int64(r.tile) * int64(r.tile) * 8
}

func (r *TiledRect) index(i, j int) int64 {
	ti, tj := i/r.tile, j/r.tile
	within := (i%r.tile)*r.tile + j%r.tile
	return (int64(ti)*int64(r.tilesPerRow)+int64(tj))*int64(r.tile)*int64(r.tile) + int64(within)
}

// At implements matrix.Rect.
func (r *TiledRect) At(i, j int) float64 {
	return r.s.ReadFloat(r.base + r.index(i, j)*8)
}

// Set implements matrix.Rect.
func (r *TiledRect) Set(i, j int, v float64) {
	r.s.WriteFloat(r.base+r.index(i, j)*8, v)
}

var (
	_ matrix.Grid[float64] = (*Matrix)(nil)
	_ matrix.Rect[float64] = (*Rect)(nil)
	_ matrix.Rect[float64] = (*TiledRect)(nil)
)
