package ooc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Write-ahead journal: the recovery half of a durable store. Between
// sync points, tile write-backs never touch their home slots in the
// stripe files — each one appends a checksummed record to the journal
// and redirects the tile's metadata there (tileJournal). The home
// slots therefore always hold exactly the state of the last committed
// sync point, no matter where a crash lands. Checkpoint makes the next
// sync point durable with the classic redo protocol:
//
//	drain + journal every dirty tile → fsync journal
//	→ append COMMIT{tag} → fsync journal          (the commit point)
//	→ apply journal-resident tiles home → fsync stripes
//	→ reset the journal (atomic rename) with tag as its frontier
//
// A crash before the COMMIT record loses only the uncommitted epoch:
// the scanner discards the torn tail and the home slots still hold the
// previous sync point. A crash after COMMIT but mid-apply is repaired
// by redoing the apply — tile-record application is idempotent (same
// payload, same slot), so Recover simply applies every journal-
// resident tile of the committed prefix again and resets.
//
// File format (all integers little-endian; every structure carries a
// trailing XXH64 of its preceding bytes):
//
//	header   "GEPWAL01" ver u32, stripes u32, unit u32, metaCount u32,
//	         frontier i64, reserved u64, sum u64
//	         then metaCount 32-byte snapshot entries + their sum
//	T record 'T' pad3, side u32, off i64, flags u32, physLen u32,
//	         paySum u64, sum u64, then physLen payload bytes
//	C record 'C' pad7, frontier i64, sum u64
//
// The header's meta snapshot is the full tile-metadata table at reset
// time (all home-resident), so Open reconstructs integrity state
// without reading any tile. Record payloads are verified lazily — the
// scanner checks record headers only; paySum is checked when the
// payload is actually read (fault-in or apply), where a mismatch
// surfaces as *CorruptError.

const (
	journalMagic   = "GEPWAL01"
	journalVersion = 1
	journalName    = "journal.wal"
	stripePattern  = "stripe-%03d.dat"

	jhdrSize   = 48             // fixed header prefix
	jmetaSize  = 32             // one snapshot entry
	jtrecSize  = 40             // T record header
	jcrecSize  = 24             // C record
	maxTileLog = int64(1) << 32 // sanity bound on a tile's logical size
)

// errNotDurable rejects journal operations on stores without one.
var errNotDurable = errors.New("ooc: store has no journal (opened with Create, not CreateAt/Open)")

// journal is the write-ahead log of a durable store. Appends are
// serialized by mu because background write-back tasks journal their
// tiles concurrently with the driver.
type journal struct {
	f        *os.File
	path     string
	mu       sync.Mutex
	size     int64 // append position (end of the valid prefix)
	frontier int64 // last committed sync tag, -1 before the first
}

// appendTile appends one tile record and returns the payload's offset
// in the journal. Raw writes go through the store's retry/injection
// policy like every other transfer.
func (j *journal) appendTile(s *Store, off int64, side int, flags uint32, paySum uint64, payload []byte) (int64, error) {
	rec := make([]byte, jtrecSize+len(payload))
	rec[0] = 'T'
	binary.LittleEndian.PutUint32(rec[4:], uint32(side))
	binary.LittleEndian.PutUint64(rec[8:], uint64(off))
	binary.LittleEndian.PutUint32(rec[16:], flags)
	binary.LittleEndian.PutUint32(rec[20:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(rec[24:], paySum)
	binary.LittleEndian.PutUint64(rec[32:], Checksum(rec[:32]))
	copy(rec[jtrecSize:], payload)
	j.mu.Lock()
	defer j.mu.Unlock()
	pos := j.size
	if err := s.writeAtFile(j.f, rec, pos, off); err != nil {
		return 0, err
	}
	j.size = pos + int64(len(rec))
	s.stats.journalAppends.Add(1)
	s.stats.journalBytes.Add(int64(len(rec)))
	journalAppendCount.Inc()
	return pos + jtrecSize, nil
}

// appendCommit makes everything appended so far durable, then appends
// and fsyncs a COMMIT record carrying tag. After it returns, the sync
// point is recoverable.
func (j *journal) appendCommit(s *Store, tag int64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("ooc: journal sync: %w", err)
	}
	rec := make([]byte, jcrecSize)
	rec[0] = 'C'
	binary.LittleEndian.PutUint64(rec[8:], uint64(tag))
	binary.LittleEndian.PutUint64(rec[16:], Checksum(rec[:16]))
	if err := s.writeAtFile(j.f, rec, j.size, tag); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("ooc: journal sync: %w", err)
	}
	j.size += jcrecSize
	j.frontier = tag
	s.stats.journalCommits.Add(1)
	s.stats.journalBytes.Add(jcrecSize)
	journalCommitCount.Inc()
	return nil
}

// reset replaces the journal with a fresh one whose header carries
// frontier and the full meta snapshot (all entries home-resident),
// using write-to-temp + fsync + atomic rename so a crash mid-reset
// leaves either the old journal or the new one, never a hybrid.
func (j *journal) reset(frontier int64, stripes, unit int, offs []int64, metas []tileMeta) error {
	hdr := encodeJournalHeader(frontier, stripes, unit, offs, metas)
	tmp := j.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("ooc: journal reset: %w", err)
	}
	if _, err := f.Write(hdr); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ooc: journal reset: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ooc: journal reset: %w", err)
	}
	syncDir(filepath.Dir(j.path))
	nf, err := os.OpenFile(j.path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("ooc: journal reset: %w", err)
	}
	old := j.f
	j.f = nf
	j.size = int64(len(hdr))
	j.frontier = frontier
	old.Close()
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's entry is
// durable. Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

func encodeJournalHeader(frontier int64, stripes, unit int, offs []int64, metas []tileMeta) []byte {
	n := jhdrSize + len(offs)*jmetaSize
	if len(offs) > 0 {
		n += 8
	}
	hdr := make([]byte, n)
	copy(hdr, journalMagic)
	binary.LittleEndian.PutUint32(hdr[8:], journalVersion)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(stripes))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(unit))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(len(offs)))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(frontier))
	binary.LittleEndian.PutUint64(hdr[40:], Checksum(hdr[:40]))
	for i, off := range offs {
		e := hdr[jhdrSize+i*jmetaSize:]
		m := metas[i]
		binary.LittleEndian.PutUint64(e, uint64(off))
		binary.LittleEndian.PutUint32(e[8:], uint32(m.side))
		binary.LittleEndian.PutUint32(e[12:], m.flags&^tileJournal)
		binary.LittleEndian.PutUint32(e[16:], uint32(m.physLen))
		binary.LittleEndian.PutUint64(e[24:], m.sum)
	}
	if len(offs) > 0 {
		region := hdr[jhdrSize : jhdrSize+len(offs)*jmetaSize]
		binary.LittleEndian.PutUint64(hdr[n-8:], Checksum(region))
	}
	return hdr
}

// jscan is the result of scanning a journal: the reconstructed
// metadata table as of the last committed sync point, plus where the
// valid prefix ends.
type jscan struct {
	stripes, unit int
	frontier      int64
	meta          map[int64]tileMeta
	end           int64 // end of the committed prefix; appends resume here
	torn          bool  // bytes past end existed but did not commit
	records       int   // committed tile records
}

// scanJournal parses a journal image. A corrupt header is fatal (the
// store's geometry is unknowable); anything wrong after it — torn
// record, bad checksum, truncation — just ends the committed prefix:
// uncommitted epochs are discarded by design. The fuzz target
// FuzzJournalReplay drives this on arbitrary bytes.
func scanJournal(r io.ReaderAt, size int64) (*jscan, error) {
	hdr := make([]byte, jhdrSize)
	if _, err := io.ReadFull(io.NewSectionReader(r, 0, size), hdr); err != nil {
		return nil, fmt.Errorf("ooc: journal header: %w", err)
	}
	if string(hdr[:8]) != journalMagic {
		return nil, fmt.Errorf("ooc: journal header: bad magic %q", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != journalVersion {
		return nil, fmt.Errorf("ooc: journal version %d not supported", v)
	}
	if Checksum(hdr[:40]) != binary.LittleEndian.Uint64(hdr[40:]) {
		return nil, fmt.Errorf("ooc: journal header: checksum mismatch")
	}
	sc := &jscan{
		stripes:  int(binary.LittleEndian.Uint32(hdr[12:])),
		unit:     int(binary.LittleEndian.Uint32(hdr[16:])),
		frontier: int64(binary.LittleEndian.Uint64(hdr[24:])),
		meta:     make(map[int64]tileMeta),
	}
	if sc.stripes < 1 || sc.stripes > maxStripes || sc.unit < 8 || sc.unit%8 != 0 {
		return nil, fmt.Errorf("ooc: journal header: bad geometry: %d stripes, unit %d", sc.stripes, sc.unit)
	}
	metaCount := int64(binary.LittleEndian.Uint32(hdr[20:]))
	pos := int64(jhdrSize)
	if metaCount > 0 {
		regionLen := metaCount * jmetaSize
		if pos+regionLen+8 > size {
			return nil, fmt.Errorf("ooc: journal header: truncated meta snapshot")
		}
		region := make([]byte, regionLen)
		if _, err := r.ReadAt(region, pos); err != nil {
			return nil, fmt.Errorf("ooc: journal header: %w", err)
		}
		var sumb [8]byte
		if _, err := r.ReadAt(sumb[:], pos+regionLen); err != nil {
			return nil, fmt.Errorf("ooc: journal header: %w", err)
		}
		if Checksum(region) != binary.LittleEndian.Uint64(sumb[:]) {
			return nil, fmt.Errorf("ooc: journal header: meta snapshot checksum mismatch")
		}
		for i := int64(0); i < metaCount; i++ {
			e := region[i*jmetaSize:]
			off := int64(binary.LittleEndian.Uint64(e))
			m := tileMeta{
				side:    int(binary.LittleEndian.Uint32(e[8:])),
				flags:   binary.LittleEndian.Uint32(e[12:]) &^ tileJournal,
				physLen: int(binary.LittleEndian.Uint32(e[16:])),
				sum:     binary.LittleEndian.Uint64(e[24:]),
			}
			if !metaSane(off, m) {
				return nil, fmt.Errorf("ooc: journal header: invalid meta entry at %d", off)
			}
			sc.meta[off] = m
		}
		pos += regionLen + 8
	}
	sc.end = pos

	// Records: fold each epoch's tile records into the table only when
	// its COMMIT arrives.
	pending := make(map[int64]tileMeta)
	npending := 0
	for pos < size {
		var kind [1]byte
		if _, err := r.ReadAt(kind[:], pos); err != nil {
			break
		}
		switch kind[0] {
		case 'T':
			rec := make([]byte, jtrecSize)
			if pos+jtrecSize > size {
				pos = size // torn
				break
			}
			if _, err := r.ReadAt(rec, pos); err != nil {
				pos = size
				break
			}
			if Checksum(rec[:32]) != binary.LittleEndian.Uint64(rec[32:]) {
				pos = size
				break
			}
			off := int64(binary.LittleEndian.Uint64(rec[8:]))
			m := tileMeta{
				side:    int(binary.LittleEndian.Uint32(rec[4:])),
				flags:   binary.LittleEndian.Uint32(rec[16:]) | tileJournal,
				physLen: int(binary.LittleEndian.Uint32(rec[20:])),
				sum:     binary.LittleEndian.Uint64(rec[24:]),
				jpos:    pos + jtrecSize,
			}
			if !metaSane(off, m) || pos+jtrecSize+int64(m.physLen) > size {
				pos = size
				break
			}
			pending[off] = m
			npending++
			pos += jtrecSize + int64(m.physLen)
			continue
		case 'C':
			rec := make([]byte, jcrecSize)
			if pos+jcrecSize > size {
				pos = size
				break
			}
			if _, err := r.ReadAt(rec, pos); err != nil {
				pos = size
				break
			}
			if Checksum(rec[:16]) != binary.LittleEndian.Uint64(rec[16:]) {
				pos = size
				break
			}
			for off, m := range pending {
				sc.meta[off] = m
			}
			sc.records += npending
			pending = make(map[int64]tileMeta)
			npending = 0
			pos += jcrecSize
			sc.end = pos
			sc.frontier = int64(binary.LittleEndian.Uint64(rec[8:]))
			continue
		default:
			pos = size
		}
		break
	}
	sc.torn = pos > sc.end || len(pending) > 0
	return sc, nil
}

// metaSane bounds a decoded meta entry against structural invariants
// (defends the scanner and the fuzz target from hostile sizes).
func metaSane(off int64, m tileMeta) bool {
	if off < 0 || off%8 != 0 || m.side < 1 {
		return false
	}
	logical := int64(m.side) * int64(m.side) * 8
	if logical > maxTileLog {
		return false
	}
	if m.physLen < 1 || int64(m.physLen) > logical {
		return false
	}
	if m.flags&tileCompressed == 0 && int64(m.physLen) != logical {
		return false
	}
	return true
}

// RecoveryInfo reports what Store.Recover replayed.
type RecoveryInfo struct {
	// Frontier is the last committed sync tag — the point computation
	// can resume from (see RunOptions.StartBlock). -1 means no sync
	// point was ever committed: the store holds no durable computation
	// state and the run must start over.
	Frontier int64
	// Tiles is how many journal-resident tiles were applied to their
	// home slots.
	Tiles int
	// Bytes is the physical payload volume replayed.
	Bytes int64
	// Torn reports whether an uncommitted tail (a partially written
	// epoch) was found and discarded.
	Torn bool
}

// Recover replays the journal's committed prefix after a crash:
// every tile whose current payload still lives in the journal is
// checksum-verified and applied to its home slot, the stripe files are
// fsynced, and the journal is reset with its frontier intact. It
// returns the resumable frontier and what was replayed. Recover is
// idempotent — recovering an already-consistent store applies nothing.
func (s *Store) Recover() (RecoveryInfo, error) {
	if s.jr == nil {
		return RecoveryInfo{}, errNotDurable
	}
	info := RecoveryInfo{Frontier: s.jr.frontier, Torn: s.torn}
	offs := s.meta.journaled()
	for _, off := range offs {
		m, _ := s.meta.get(off)
		info.Bytes += int64(m.physLen)
	}
	info.Tiles = len(offs)
	if err := s.applyAndReset(); err != nil {
		return info, err
	}
	s.torn = false
	journalRecoverCount.Add(int64(info.Tiles))
	return info, nil
}

// Checkpoint makes the store durable at sync point tag: it drains all
// background I/O (reporting every failure, errors.Join-ed), journals
// every dirty resident tile and flushes dirty pages, commits the
// epoch, applies it to the stripe files, and resets the journal. After
// Checkpoint returns nil, a crash at any later moment recovers to
// exactly this state. Tags must be monotone; RunIGEP uses the count of
// completed base-case blocks. Checkpoint with pinned tiles is an error
// (their buffers are mid-update).
func (s *Store) Checkpoint(tag int64) error {
	if s.jr == nil {
		return errNotDurable
	}
	for _, t := range s.tc.tiles {
		if t.pins > 0 {
			return fmt.Errorf("ooc: Checkpoint with %d pinned tile(s)", s.pinnedTiles())
		}
	}
	var errs []error
	if err := s.syncTiles(false); err != nil {
		errs = append(errs, err)
	}
	if err := s.Flush(); err != nil {
		errs = append(errs, err)
	}
	if err := errors.Join(errs...); err != nil {
		return err
	}
	if err := s.jr.appendCommit(s, tag); err != nil {
		return err
	}
	return s.applyAndReset()
}

// pinnedTiles counts resident tiles with outstanding pins.
func (s *Store) pinnedTiles() int {
	n := 0
	for _, t := range s.tc.tiles {
		if t.pins > 0 {
			n++
		}
	}
	return n
}

// applyAndReset moves every journal-resident tile payload to its home
// slot (checksum-verified, parallel across stripes), fsyncs the stripe
// files, and resets the journal with the current frontier and meta
// snapshot. Idempotent: a crash anywhere inside redoes harmlessly.
func (s *Store) applyAndReset() error {
	offs := s.meta.journaled()
	if len(offs) > 0 {
		groups := make(map[int][]int64)
		for _, off := range offs {
			st := s.stripeOf(off)
			groups[st] = append(groups[st], off)
		}
		errs := make([]error, 0, len(groups))
		waits := make([]func(), 0, len(groups))
		errSlots := make([]error, len(groups))
		i := 0
		for _, g := range groups {
			g, slot := g, i
			waits = append(waits, s.spawn(func() {
				errSlots[slot] = s.applyGroup(g)
			}))
			i++
		}
		for _, w := range waits {
			w()
		}
		for _, err := range errSlots {
			if err != nil {
				errs = append(errs, err)
			}
		}
		if err := errors.Join(errs...); err != nil {
			return err
		}
		for _, off := range offs {
			m, _ := s.meta.get(off)
			m.flags &^= tileJournal
			m.jpos = 0
			s.meta.put(off, m)
		}
		s.stats.journalApplied.Add(int64(len(offs)))
		journalApplyCount.Add(int64(len(offs)))
	}
	if err := s.syncFiles(); err != nil {
		return fmt.Errorf("ooc: stripe sync: %w", err)
	}
	snapOffs, snapMetas := s.meta.snapshot()
	return s.jr.reset(s.jr.frontier, len(s.files), s.cfg.StripeUnit, snapOffs, snapMetas)
}

// applyGroup copies one stripe's journal-resident payloads home.
func (s *Store) applyGroup(offs []int64) error {
	for _, off := range offs {
		m, ok := s.meta.get(off)
		if !ok || m.flags&tileJournal == 0 {
			continue
		}
		buf := make([]byte, m.physLen)
		if err := s.readAtFile(s.jr.f, buf, m.jpos, off); err != nil {
			return err
		}
		if got := Checksum(buf); got != m.sum {
			checksumFailCount.Inc()
			s.stats.checksumFail.Add(1)
			return &CorruptError{Off: off, Side: m.side, Stripe: s.stripeOf(off), Want: m.sum, Got: got}
		}
		checksumOKCount.Inc()
		s.stats.checksumOK.Add(1)
		if err := s.writeRaw(buf, off); err != nil {
			return err
		}
		s.stats.journalBytes.Add(int64(m.physLen))
	}
	return nil
}
