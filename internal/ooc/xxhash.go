package ooc

import (
	"encoding/binary"
	"math/bits"
)

// Pure-Go XXH64 (Collet's xxHash, 64-bit variant, seed 0). The store
// checksums every tile payload and every journal record with it: it is
// the fastest non-cryptographic hash that is practical to implement
// dependency-free (the container bakes in no third-party modules), and
// its 64-bit state pipeline runs at several GB/s even without
// assembly — negligible next to the disk transfers it guards.
// Verified against the reference vectors in xxhash_test.go.

const (
	xxPrime1 = 11400714785074694791
	xxPrime2 = 14029467366897019727
	xxPrime3 = 1609587929392839161
	xxPrime4 = 9650029242287828579
	xxPrime5 = 2870177450012600261
)

// Checksum returns the XXH64 hash (seed 0) of b — the checksum the
// store writes beside every tile and journal record. Exported so tools
// (gep-bench oocrun) can compute comparable content digests.
func Checksum(b []byte) uint64 {
	n := len(b)
	var h uint64
	if n >= 32 {
		var v1, v2, v3, v4 uint64 = xxPrime1, xxPrime2, 0, 0
		v1 += xxPrime2
		v4 -= xxPrime1
		for len(b) >= 32 {
			v1 = xxRound(v1, binary.LittleEndian.Uint64(b))
			v2 = xxRound(v2, binary.LittleEndian.Uint64(b[8:]))
			v3 = xxRound(v3, binary.LittleEndian.Uint64(b[16:]))
			v4 = xxRound(v4, binary.LittleEndian.Uint64(b[24:]))
			b = b[32:]
		}
		h = bits.RotateLeft64(v1, 1) + bits.RotateLeft64(v2, 7) +
			bits.RotateLeft64(v3, 12) + bits.RotateLeft64(v4, 18)
		h = xxMerge(h, v1)
		h = xxMerge(h, v2)
		h = xxMerge(h, v3)
		h = xxMerge(h, v4)
	} else {
		h = xxPrime5
	}
	h += uint64(n)
	for len(b) >= 8 {
		h ^= xxRound(0, binary.LittleEndian.Uint64(b))
		h = bits.RotateLeft64(h, 27)*xxPrime1 + xxPrime4
		b = b[8:]
	}
	if len(b) >= 4 {
		h ^= uint64(binary.LittleEndian.Uint32(b)) * xxPrime1
		h = bits.RotateLeft64(h, 23)*xxPrime2 + xxPrime3
		b = b[4:]
	}
	for _, c := range b {
		h ^= uint64(c) * xxPrime5
		h = bits.RotateLeft64(h, 11) * xxPrime1
	}
	h ^= h >> 33
	h *= xxPrime2
	h ^= h >> 29
	h *= xxPrime3
	h ^= h >> 32
	return h
}

func xxRound(acc, x uint64) uint64 {
	return bits.RotateLeft64(acc+x*xxPrime2, 31) * xxPrime1
}

func xxMerge(h, v uint64) uint64 {
	return (h^xxRound(0, v))*xxPrime1 + xxPrime4
}
