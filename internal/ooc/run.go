package ooc

import (
	"errors"
	"fmt"

	"gep/internal/core"
)

// Tile-granular out-of-core I-GEP driver. The element path runs the
// unmodified engines over the matrix.Grid interface — correct, but
// every update pays four interface calls and a page-map probe. This
// driver instead installs a core.WithBaseCase hook that, per base-case
// block, pins the block's ≤4 aligned quadrant tiles into RAM and runs
// core.TileKernel straight over the resident flat buffers (reaching
// the same fused kernels the in-core engines use), while the store
// prefetches the next blocks' tiles and writes evicted dirty tiles
// back in the background. The I/O schedule still transfers exactly the
// quadrants the I-GEP recursion touches, in recursion order, so the
// §4.1 transfer accounting is unchanged — only the per-element CPU
// overhead and the compute/transfer serialization go away.
//
// Because core.RunIGEP visits base-case blocks in a deterministic
// order, "number of completed blocks" is a complete progress cursor:
// a durable store checkpointed every CheckpointEvery blocks can, after
// a crash, re-enter the same recursion with StartBlock set to the
// recovered frontier and skip the finished prefix without any I/O —
// the resumed run is bit-identical to an uninterrupted one.

// ErrStopped is returned by RunIGEP when RunOptions.StopAfter ended
// the run early — the crash-drill hook; the store is deliberately
// left unsynced (pair with Store.Abandon to simulate a kill).
var ErrStopped = errors.New("ooc: run stopped at requested block")

// RunOptions configures RunIGEP.
type RunOptions struct {
	// Prefetch enables background read-ahead of the next blocks' tiles
	// (issued after each block's pins, bounded by the store's
	// per-stripe slots; see Store.PrefetchTile for the best-effort
	// semantics).
	Prefetch bool
	// Lookahead is how many upcoming blocks to prefetch tiles for
	// (0 means the default of 2). Ignored unless Prefetch is set.
	Lookahead int

	// CheckpointEvery, when positive, commits a durable sync point
	// (Store.Checkpoint, tagged with the completed-block count) every
	// that many base-case blocks, plus one final checkpoint at
	// completion. Requires a durable store (CreateAt/Open).
	CheckpointEvery int64
	// StartBlock skips the first StartBlock base-case blocks — the
	// resume path: pass the frontier Store.Recover reported. Skipped
	// blocks cost no I/O.
	StartBlock int64
	// StopAfter, when positive, aborts the run with ErrStopped once
	// that many blocks have completed (counting skipped ones) WITHOUT
	// syncing the store — the crash-drill hook for recovery tests.
	StopAfter int64
	// OnCheckpoint, when set, is called after each committed sync
	// point with its tag (the completed-block count). The oocrun
	// subcommand uses it to announce kill points.
	OnCheckpoint func(blocks int64)
	// Stop, when set, is polled before each block; returning true
	// aborts the run with ErrStopped, leaving the store unsynced like
	// StopAfter does. The job server maps runtime aborts (cancel,
	// deadline) onto it.
	Stop func() bool
}

// coordinate of a tile in the quadrant grid.
type tcoord struct{ r, c int }

// RunIGEP executes I-GEP with update op over the update set on m using
// tile-granular I/O. m must use a tile-contiguous layout
// (MortonTiledLayout); the base-case size is the layout's tile side.
// Results are bit-identical to the in-core core.RunIGEP on the same
// input — including runs checkpointed, killed, recovered, and resumed
// via RunOptions.StartBlock. The first error from any layer — pin,
// kernel staging, write-behind, checkpoint, final sync — aborts the
// remaining work (the recursion still unwinds, but every subsequent
// block is consumed as a no-op) and is returned.
func RunIGEP(m *Matrix, op core.Op[float64], set core.UpdateSet, opts RunOptions) error {
	tl := m.Tiling()
	if tl == nil {
		return fmt.Errorf("ooc: RunIGEP needs a tile-contiguous layout (use MortonTiledLayout)")
	}
	if opts.CheckpointEvery > 0 && m.s.jr == nil {
		return errNotDurable
	}
	side := tl.Side
	look := opts.Lookahead
	if look <= 0 {
		look = 2
	}
	var blocks []core.Block
	if opts.Prefetch {
		blocks = core.IGEPBlocks(m.N(), side, set, true)
	}
	pos := int64(0)
	var runErr error
	hook := func(i0, j0, k0, s int) bool {
		if runErr != nil {
			pos++
			return true
		}
		if opts.Stop != nil && opts.Stop() {
			runErr = ErrStopped
			pos++
			return true
		}
		if s != side {
			// Unreachable when side divides the (power-of-two) matrix
			// side, which the layout guarantees; guarded for safety.
			runErr = fmt.Errorf("ooc: base-case side %d does not match tile side %d", s, side)
			pos++
			return true
		}
		if pos < opts.StartBlock {
			pos++
			return true
		}
		runErr = runBlock(m, op, set, i0, j0, k0, s)
		pos++
		if runErr == nil && opts.CheckpointEvery > 0 && pos%opts.CheckpointEvery == 0 {
			runErr = m.s.Checkpoint(pos)
			if runErr == nil && opts.OnCheckpoint != nil {
				opts.OnCheckpoint(pos)
			}
		}
		if runErr == nil && opts.StopAfter > 0 && pos >= opts.StopAfter {
			runErr = ErrStopped
			return true
		}
		if runErr == nil && opts.Prefetch {
			for _, b := range lookaheadBlocks(blocks, int(pos), look) {
				for _, cd := range blockTileCoords(b.I/side, b.J/side, b.K/side) {
					m.PrefetchTile(cd.r, cd.c)
				}
			}
		}
		return true
	}
	core.RunIGEP[float64](m, op, set,
		core.WithBaseSize[float64](side), core.WithBaseCase[float64](hook))
	if errors.Is(runErr, ErrStopped) {
		// Crash drill: leave the store unsynced on purpose.
		return runErr
	}
	if runErr == nil && opts.CheckpointEvery > 0 && pos%opts.CheckpointEvery != 0 {
		runErr = m.s.Checkpoint(pos)
		if runErr == nil && opts.OnCheckpoint != nil {
			opts.OnCheckpoint(pos)
		}
	}
	if err := m.s.SyncTiles(); runErr == nil {
		runErr = err
	}
	if runErr == nil {
		runErr = m.s.Err()
	}
	return runErr
}

// blockTileCoords lists the distinct quadrant tiles of base-case block
// (ti, tj) with pivot tile row/column tk: X=(ti,tj), U=(ti,tk),
// V=(tk,tj), W=(tk,tk), deduplicated, X first.
func blockTileCoords(ti, tj, tk int) []tcoord {
	coords := make([]tcoord, 0, 4)
	for _, cd := range [4]tcoord{{ti, tj}, {ti, tk}, {tk, tj}, {tk, tk}} {
		dup := false
		for _, have := range coords {
			if have == cd {
				dup = true
				break
			}
		}
		if !dup {
			coords = append(coords, cd)
		}
	}
	return coords
}

// lookaheadBlocks returns the next n blocks at/after position pos.
func lookaheadBlocks(blocks []core.Block, pos, n int) []core.Block {
	if pos >= len(blocks) {
		return nil
	}
	end := pos + n
	if end > len(blocks) {
		end = len(blocks)
	}
	return blocks[pos:end]
}

// runBlock pins the block's tiles, runs the tile kernel over the
// resident buffers, and unpins (marking only the written X tile
// dirty — the kernel writes no other quadrant; aliased quadrants share
// the X tile, so their writes are covered).
func runBlock(m *Matrix, op core.Op[float64], set core.UpdateSet, i0, j0, k0, s int) error {
	ti, tj, tk := i0/s, j0/s, k0/s
	coords := blockTileCoords(ti, tj, tk)
	tiles := make([]*Tile, len(coords))
	for n, cd := range coords {
		t, err := m.PinTile(cd.r, cd.c)
		if err != nil {
			for _, p := range tiles[:n] {
				m.s.UnpinTile(p, false)
			}
			return err
		}
		tiles[n] = t
	}
	pick := func(cd tcoord) *Tile {
		for n, have := range coords {
			if have == cd {
				return tiles[n]
			}
		}
		return nil
	}
	x := pick(tcoord{ti, tj})
	u := pick(tcoord{ti, tk})
	v := pick(tcoord{tk, tj})
	w := pick(tcoord{tk, tk})
	core.TileKernel(op, set, x.Data, u.Data, v.Data, w.Data, i0, j0, k0, s)
	for n, t := range tiles {
		m.s.UnpinTile(t, n == 0) // coords[0] is X
	}
	return nil
}
