package ooc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Tile-granular caching: the second, coarser regime of the store. The
// element API moves one float at a time through the page cache — four
// interface calls and a page-map probe per GEP update. The tile API
// instead faults whole aligned quadrants (one contiguous byte run in a
// Morton-tiled layout) into resident []float64 buffers that the fused
// kernels of internal/core run on directly, then writes dirty tiles
// back in the background while the engine computes the next block.
//
// Transfer accounting is at tile granularity: one TileRead/TileWrite
// (one modeled seek plus size/rate, see Store.IOTime) per tile moved,
// mirroring §4.1's accounting of one block transfer per block moved —
// overlapping the transfer with compute changes wall-clock time, not
// the transfer count, so the Figure 7 I/O-complexity story is
// unchanged by the asynchrony. Compression splits each transfer's
// size into logical (always side²·8, what §4.1 counts) and physical
// (the encoded payload, what the disk moves); the transfer count
// itself never changes.
//
// Every tile payload that leaves RAM is checksummed (meta.go) and, on
// a durable store, journaled (journal.go) instead of written home;
// every fault-in verifies the recorded checksum and surfaces a
// mismatch as *CorruptError. Coherence with the page cache stays
// conservative: pinning or prefetching a tile first flushes and drops
// every page overlapping its bytes, and element accesses route
// through the tile path whenever a checksummed tile covers them.

// Tile is a pinned, resident quadrant of a store: Side()² float64
// values in row-major order in Data. A Tile is valid between the
// PinTile that returned it and the matching UnpinTile; the runtime
// layer (run.go) and the kernels mutate Data in place.
type Tile struct {
	off  int64 // byte offset of the quadrant in the store
	side int   // edge length in elements

	// Data holds the resident elements, row-major, len side².
	Data []float64

	dirty      bool
	pins       int
	loading    *pendingIO // in-flight background read, nil once resident
	prefetched bool       // inserted by PrefetchTile, for hit accounting
	prev, next *Tile      // LRU links while resident and unpinned
}

// Side returns the tile's edge length in elements.
func (t *Tile) Side() int { return t.side }

// bytes returns the tile's resident size.
func (t *Tile) bytes() int64 { return int64(len(t.Data)) * 8 }

// pendingIO tracks one background task. wait joins it (executing it
// in-place if it is still queued, so a join can never hang on a
// stranded task); err is written by the task before it completes, so
// reading it after wait() is race-free.
type pendingIO struct {
	wait func()
	err  error
}

// tileCache is the tile half of a Store. All fields are owned by the
// driver goroutine; background tasks touch only their own buffers, the
// store's atomic counters, the metadata table (which has its own
// lock), the journal (likewise), and the err field of their own
// pendingIO.
type tileCache struct {
	budget      int64 // resident-byte budget (Config.CacheSize)
	writeBehind int   // per-stripe in-flight cap; <= 0 means synchronous

	tiles      map[int64]*Tile
	head, tail *Tile // unpinned-LRU, MRU at head
	bytes      int64 // resident bytes, pinned and unpinned

	pending  map[int64]*pendingIO // in-flight write-backs by offset
	inflight []chan struct{}      // per-stripe slots, shared by write-behind and prefetch
	waits    []func()             // joins for every task spawned since the last sync
}

func (c *tileCache) init(cfg Config) {
	c.budget = cfg.CacheSize
	c.writeBehind = cfg.WriteBehind
	c.tiles = make(map[int64]*Tile)
	c.pending = make(map[int64]*pendingIO)
	if cfg.WriteBehind > 0 {
		c.inflight = make([]chan struct{}, cfg.Stripes)
		for i := range c.inflight {
			c.inflight[i] = make(chan struct{}, cfg.WriteBehind)
		}
	}
}

func (c *tileCache) pushLRU(t *Tile) {
	t.next = c.head
	if c.head != nil {
		c.head.prev = t
	}
	c.head = t
	if c.tail == nil {
		c.tail = t
	}
}

func (c *tileCache) unlinkLRU(t *Tile) {
	if t.prev != nil {
		t.prev.next = t.next
	} else {
		c.head = t.next
	}
	if t.next != nil {
		t.next.prev = t.prev
	} else {
		c.tail = t.prev
	}
	t.prev, t.next = nil, nil
}

// PinTile faults the side×side quadrant at byte offset off into a
// resident tile and pins it. Pins nest; every PinTile needs a matching
// UnpinTile. Pinned tiles are never evicted, so a caller holding the
// ≤4 tiles of one base-case block may exceed the cache budget
// transiently (counted by the ooc.tile.overcommit metric).
func (s *Store) PinTile(off int64, side int) (*Tile, error) {
	if t, ok := s.tc.tiles[off]; ok {
		if t.side != side {
			return nil, fmt.Errorf("ooc: tile at %d pinned with side %d, resident with side %d", off, side, t.side)
		}
		if err := s.finishLoad(t); err != nil {
			s.tc.drop(t)
			return nil, err
		}
		if t.prefetched {
			t.prefetched = false
			prefetchHitCount.Inc()
		}
		if t.pins == 0 {
			s.tc.unlinkLRU(t)
		}
		t.pins++
		tileHitCount.Inc()
		return t, nil
	}
	tileFaultCount.Inc()
	size := int64(side) * int64(side) * 8
	if err := s.waitPending(off); err != nil {
		return nil, err
	}
	if err := s.dropPages(off, size); err != nil {
		return nil, err
	}
	if err := s.makeRoom(size); err != nil {
		return nil, err
	}
	t := &Tile{off: off, side: side, Data: make([]float64, side*side), pins: 1}
	if err := s.readTile(t); err != nil {
		return nil, err
	}
	s.tc.tiles[off] = t
	s.tc.bytes += size
	return t, nil
}

// PinTileZero pins the side×side quadrant at byte offset off as a
// zeroed resident tile WITHOUT reading it from disk: the caller
// declares the on-disk content irrelevant because it will fully
// overwrite the tile before unpinning. This is how the Strassen
// driver materializes product targets and recycled scratch tiles —
// a fresh tile costs no read transfer, so the §4.1 accounting charges
// scratch only for real spills (write-back and later re-read). The
// coherence walk is the same as PinTile's (join any in-flight
// write-back of the range — scratch offsets are recycled — then drop
// overlapping pages and make room); an already-resident tile is
// re-zeroed in place.
func (s *Store) PinTileZero(off int64, side int) (*Tile, error) {
	if t, ok := s.tc.tiles[off]; ok {
		if t.side != side {
			return nil, fmt.Errorf("ooc: tile at %d pinned with side %d, resident with side %d", off, side, t.side)
		}
		if err := s.finishLoad(t); err != nil {
			// The failed read's content is don't-care here, but the
			// error may be the store's sticky fault — surface it.
			s.tc.drop(t)
			return nil, err
		}
		if t.prefetched {
			t.prefetched = false
		}
		if t.pins == 0 {
			s.tc.unlinkLRU(t)
		}
		t.pins++
		for i := range t.Data {
			t.Data[i] = 0
		}
		tileFreshCount.Inc()
		return t, nil
	}
	size := int64(side) * int64(side) * 8
	if err := s.waitPending(off); err != nil {
		return nil, err
	}
	if err := s.dropPages(off, size); err != nil {
		return nil, err
	}
	if err := s.makeRoom(size); err != nil {
		return nil, err
	}
	t := &Tile{off: off, side: side, Data: make([]float64, side*side), pins: 1}
	s.tc.tiles[off] = t
	s.tc.bytes += size
	tileFreshCount.Inc()
	return t, nil
}

// UnpinTile releases one pin; dirty reports whether the caller wrote
// Data. The tile stays resident (and, once unpinned, evictable — at
// which point a dirty tile is written back in the background).
func (s *Store) UnpinTile(t *Tile, dirty bool) {
	if t.pins <= 0 {
		panic("ooc: UnpinTile without matching PinTile")
	}
	if dirty {
		t.dirty = true
	}
	t.pins--
	if t.pins == 0 {
		s.tc.pushLRU(t)
	}
}

// slot returns the in-flight slot channel of the stripe owning off.
func (c *tileCache) slot(s *Store, off int64) chan struct{} {
	return c.inflight[s.stripeOf(off)]
}

// PrefetchTile starts a background read of the quadrant at off so a
// later PinTile finds it resident. It is speculative and best-effort:
// it never blocks on a full slot and never evicts resident data to
// make room — when either would be needed, the prefetch is skipped
// (counted by ooc.prefetch.skip). Failures are equally silent; the
// eventual PinTile re-reads synchronously and reports them.
func (s *Store) PrefetchTile(off int64, side int) {
	if s.tc.writeBehind <= 0 {
		return // asynchrony disabled
	}
	if _, ok := s.tc.tiles[off]; ok {
		return
	}
	if _, ok := s.tc.pending[off]; ok {
		return // our own write-back is still in flight
	}
	size := int64(side) * int64(side) * 8
	if s.tc.bytes+size > s.tc.budget {
		prefetchSkipCount.Inc()
		return
	}
	if err := s.dropPages(off, size); err != nil {
		s.setErr(err)
		return
	}
	slot := s.tc.slot(s, off)
	select {
	case slot <- struct{}{}:
	default:
		prefetchSkipCount.Inc()
		return
	}
	p := &pendingIO{}
	t := &Tile{off: off, side: side, Data: make([]float64, side*side), loading: p, prefetched: true}
	s.tc.tiles[off] = t
	s.tc.bytes += size
	s.tc.pushLRU(t)
	p.wait = s.spawn(func() {
		defer func() { <-slot }()
		p.err = s.readTile(t)
	})
	s.tc.waits = append(s.tc.waits, p.wait)
	prefetchIssuedCount.Inc()
}

// finishLoad joins a tile's in-flight prefetch read, if any.
func (s *Store) finishLoad(t *Tile) error {
	if t.loading == nil {
		return nil
	}
	t.loading.wait()
	err := t.loading.err
	t.loading = nil
	return err
}

// drop removes an unpinned resident tile without writing it back
// (used when its contents are known invalid, e.g. a failed prefetch).
func (c *tileCache) drop(t *Tile) {
	if t.pins == 0 {
		c.unlinkLRU(t)
	}
	delete(c.tiles, t.off)
	c.bytes -= t.bytes()
}

// waitPending joins an in-flight write-back of the byte range at off,
// surfacing its error.
func (s *Store) waitPending(off int64) error {
	p, ok := s.tc.pending[off]
	if !ok {
		return nil
	}
	p.wait()
	delete(s.tc.pending, off)
	return p.err
}

// makeRoom evicts unpinned, fully-loaded LRU tiles until need bytes
// fit in the budget; dirty victims are written back in the background.
// When every resident tile is pinned or loading, the caller overcommits
// instead (pinned tiles can never be evicted).
func (s *Store) makeRoom(need int64) error {
	c := &s.tc
	for c.bytes+need > c.budget {
		victim := c.tail
		for victim != nil && victim.loading != nil {
			victim = victim.prev
		}
		if victim == nil {
			tileOvercommitCount.Inc()
			return nil
		}
		c.unlinkLRU(victim)
		delete(c.tiles, victim.off)
		c.bytes -= victim.bytes()
		if victim.dirty {
			if err := s.writeBehindTile(victim); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeBehindTile schedules the evicted tile's write-back on the slot
// of its home stripe. The tile is already out of the cache, so the
// background task owns its buffer exclusively. With asynchrony
// disabled the write happens inline.
func (s *Store) writeBehindTile(t *Tile) error {
	if s.tc.writeBehind <= 0 {
		return s.writeTile(t)
	}
	slot := s.tc.slot(s, t.off)
	for {
		select {
		case slot <- struct{}{}:
		default:
			if len(s.tc.waits) == 0 {
				// Slots full with nothing left to join: the slots were
				// leaked by spawns whose bodies an aborted runtime
				// dropped before releasing them. Write inline rather
				// than spin.
				return s.writeTile(t)
			}
			// This stripe's slots are full: join the oldest outstanding
			// task — the join executes it in place if it is still
			// queued — and retry. This bounds the driver's RAM overshoot
			// to Stripes×WriteBehind tiles without ever blocking on an
			// idle pool (every slot holder is in waits, so draining
			// always frees a slot eventually).
			s.drainOne()
			continue
		}
		break
	}
	p := &pendingIO{}
	s.tc.pending[t.off] = p
	p.wait = s.spawn(func() {
		defer func() { <-slot }()
		if err := s.writeTile(t); err != nil {
			p.err = err
			s.setErr(err)
		}
	})
	s.tc.waits = append(s.tc.waits, p.wait)
	writeBehindCount.Inc()
	return nil
}

// drainOne joins the oldest outstanding background task.
func (s *Store) drainOne() {
	if len(s.tc.waits) == 0 {
		return
	}
	s.tc.waits[0]()
	s.tc.waits = s.tc.waits[1:]
}

// SyncTiles drains every background task, writes every dirty unpinned
// resident tile back, and evicts all unpinned tiles, returning every
// error of the whole drain joined into one (errors.Join) — a
// multi-stripe failure reports every failed stripe, and errors.Is
// still matches the individual causes. After a successful SyncTiles
// the backing files (or, on a durable store, files plus journal) hold
// the complete current state. Tiles still pinned stay resident and are
// NOT written (their Data may be mid-update); the runtime never syncs
// with pins outstanding.
func (s *Store) SyncTiles() error {
	return s.syncTiles(true)
}

// syncTiles is SyncTiles with eviction optional: Checkpoint drains and
// writes back but keeps clean tiles resident, so a checkpoint does not
// empty the cache mid-run.
func (s *Store) syncTiles(evict bool) error {
	var errs []error
	for _, w := range s.tc.waits {
		w()
	}
	s.tc.waits = s.tc.waits[:0]
	for off, p := range s.tc.pending {
		if p.err != nil {
			errs = append(errs, p.err)
		}
		delete(s.tc.pending, off)
	}
	for off, t := range s.tc.tiles {
		if t.pins > 0 {
			continue
		}
		if t.loading != nil {
			// Prefetch joined above; a failed one leaves the tile
			// invalid but clean — dropping it is the whole cleanup.
			t.loading = nil
			t.dirty = false
			if !evict {
				s.tc.drop(t)
				continue
			}
		}
		if t.dirty {
			if err := s.writeTile(t); err != nil {
				errs = append(errs, err)
			}
		}
		if evict {
			delete(s.tc.tiles, off)
			s.tc.bytes -= t.bytes()
		}
	}
	if evict {
		s.tc.head, s.tc.tail = nil, nil
		for _, t := range s.tc.tiles { // pinned survivors keep LRU out
			t.prev, t.next = nil, nil
		}
	}
	return errors.Join(errs...)
}

// syncForElement keeps the element API coherent with the tile cache:
// if any tile state exists, it is synced to disk first. The common
// in-core-style workload (no tiles) pays only three length checks.
func (s *Store) syncForElement() error {
	if len(s.tc.tiles) == 0 && len(s.tc.pending) == 0 && len(s.tc.waits) == 0 {
		return nil
	}
	return s.SyncTiles()
}

// ResidentTiles returns the number of tiles currently resident.
func (s *Store) ResidentTiles() int { return len(s.tc.tiles) }

// readTile fills t.Data from disk (one modeled tile transfer),
// verifying the recorded checksum and decompressing when the payload
// is compressed. Quadrants never written through the tile path have
// no metadata and read raw (zero-filled past EOF, like pages).
func (s *Store) readTile(t *Tile) error {
	logical := int64(len(t.Data)) * 8
	m, ok := s.meta.get(t.off)
	var buf []byte
	if ok {
		raw, err := s.readTilePayload(t.off, m)
		if err != nil {
			return err
		}
		buf = raw
		s.stats.tileBytesRead.Add(int64(m.physLen))
	} else {
		buf = make([]byte, logical)
		if err := s.readRaw(buf, t.off); err != nil {
			return err
		}
		s.stats.tileBytesRead.Add(logical)
	}
	for i := range t.Data {
		t.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	s.stats.tileReads.Add(1)
	s.stats.tileLogicalRead.Add(logical)
	return nil
}

// readTilePayload reads the physical payload recorded for the tile at
// off — from the journal when the current version lives there, the
// home slot otherwise — verifies its checksum, and returns the raw
// logical bytes (decompressed when needed).
func (s *Store) readTilePayload(off int64, m tileMeta) ([]byte, error) {
	payload := make([]byte, m.physLen)
	var err error
	if m.flags&tileJournal != 0 {
		err = s.readAtFile(s.jr.f, payload, m.jpos, off)
		s.stats.journalBytes.Add(int64(m.physLen))
	} else {
		err = s.readRaw(payload, off)
	}
	if err != nil {
		return nil, err
	}
	if got := Checksum(payload); got != m.sum {
		checksumFailCount.Inc()
		s.stats.checksumFail.Add(1)
		return nil, &CorruptError{Off: off, Side: m.side, Stripe: s.stripeOf(off), Want: m.sum, Got: got}
	}
	checksumOKCount.Inc()
	s.stats.checksumOK.Add(1)
	if m.flags&tileCompressed == 0 {
		return payload, nil
	}
	raw := make([]byte, int64(m.side)*int64(m.side)*8)
	if err := zrleDecode(raw, payload); err != nil {
		return nil, fmt.Errorf("ooc: tile at %d: %w", off, err)
	}
	return raw, nil
}

// writeTile encodes t.Data (one modeled tile transfer), checksums the
// payload, and persists it — appended to the journal on a durable
// store, written to the home slot otherwise — then records the tile's
// metadata and marks it clean.
func (s *Store) writeTile(t *Tile) error {
	logical := len(t.Data) * 8
	raw := make([]byte, logical)
	for i, v := range t.Data {
		binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
	}
	payload := raw
	var flags uint32
	if s.cfg.Compress {
		if enc := zrleEncode(raw); enc != nil {
			payload = enc
			flags |= tileCompressed
			compressSavedCount.Add(int64(logical - len(enc)))
		}
	}
	sum := Checksum(payload)
	m := tileMeta{side: t.side, physLen: len(payload), flags: flags, sum: sum}
	if s.jr != nil {
		jpos, err := s.jr.appendTile(s, t.off, t.side, flags, sum, payload)
		if err != nil {
			return err
		}
		m.flags |= tileJournal
		m.jpos = jpos
	} else {
		if err := s.writeRaw(payload, t.off); err != nil {
			return err
		}
	}
	s.meta.put(t.off, m)
	s.stats.tileWrites.Add(1)
	s.stats.tileBytesWritten.Add(int64(len(payload)))
	s.stats.tileLogicalWritten.Add(int64(logical))
	t.dirty = false
	return nil
}
