package ooc

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Tile metadata: the integrity layer's source of truth. Every tile
// write-back records a tileMeta — the payload's length, checksum,
// whether it is compressed, and whether it currently lives in the
// journal (journal.go) or in its home slot in the stripe files. Tile
// fault-ins consult it to know how many physical bytes to read, where
// from, and what XXH64 sum they must carry; element accesses consult
// it to route offsets covered by a checksummed tile through the
// verified tile path instead of the raw page path.
//
// The table is keyed by the tile's logical byte offset. It is touched
// by background write-back tasks concurrently with the driver, so all
// access goes through the metaMu mutex; the sorted-offset covering
// index is rebuilt lazily (it is only needed on the element path and
// on page write-back, both rare during tile-granular runs).

// ErrCorrupt is the sentinel wrapped by every checksum-verification
// failure. Match with errors.Is; the full error is a *CorruptError
// carrying the tile's identity.
var ErrCorrupt = errors.New("ooc: tile checksum mismatch")

// CorruptError reports a tile whose payload failed checksum
// verification on fault-in (or journal replay). It wraps ErrCorrupt.
type CorruptError struct {
	// Off is the tile's logical byte offset in the store.
	Off int64
	// Side is the tile's edge length in elements.
	Side int
	// Stripe is the backing file holding the tile's first byte.
	Stripe int
	// Want and Got are the recorded and computed XXH64 sums.
	Want, Got uint64
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("ooc: tile at %d (side %d, stripe %d): checksum mismatch: want %016x got %016x",
		e.Off, e.Side, e.Stripe, e.Want, e.Got)
}

// Unwrap lets errors.Is(err, ErrCorrupt) match.
func (e *CorruptError) Unwrap() error { return ErrCorrupt }

const (
	// tileCompressed marks a zrle-encoded payload (compress.go).
	tileCompressed uint32 = 1 << iota
	// tileJournal marks a payload whose current version lives in the
	// journal at jpos, not yet applied to its home slot.
	tileJournal
)

// tileMeta describes one checksummed tile payload.
type tileMeta struct {
	side    int    // tile edge in elements
	physLen int    // payload bytes on disk
	flags   uint32 // tileCompressed | tileJournal
	sum     uint64 // XXH64 of the physical payload
	jpos    int64  // payload offset in the journal (tileJournal only)
}

// metaTable is the concurrent tile-metadata map plus its lazily
// rebuilt covering index.
type metaTable struct {
	mu  sync.Mutex
	m   map[int64]tileMeta
	idx []int64 // sorted offsets; nil when stale
}

func (mt *metaTable) init() { mt.m = make(map[int64]tileMeta) }

// put records meta for the tile at off.
func (mt *metaTable) put(off int64, m tileMeta) {
	mt.mu.Lock()
	if _, ok := mt.m[off]; !ok {
		mt.idx = nil
	}
	mt.m[off] = m
	mt.mu.Unlock()
}

// get returns the meta recorded for the tile at off.
func (mt *metaTable) get(off int64) (tileMeta, bool) {
	mt.mu.Lock()
	m, ok := mt.m[off]
	mt.mu.Unlock()
	return m, ok
}

// delete removes the entry at off.
func (mt *metaTable) delete(off int64) {
	mt.mu.Lock()
	if _, ok := mt.m[off]; ok {
		delete(mt.m, off)
		mt.idx = nil
	}
	mt.mu.Unlock()
}

// empty reports whether the table has no entries. It is the fast-path
// guard on the element API: a store that never used the tile path
// pays one mutex round-trip and a length check.
func (mt *metaTable) empty() bool {
	mt.mu.Lock()
	n := len(mt.m)
	mt.mu.Unlock()
	return n == 0
}

// covering returns the tile whose logical byte range contains off.
func (mt *metaTable) covering(off int64) (int64, tileMeta, bool) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	if len(mt.m) == 0 {
		return 0, tileMeta{}, false
	}
	idx := mt.index()
	i := sort.Search(len(idx), func(i int) bool { return idx[i] > off })
	if i == 0 {
		return 0, tileMeta{}, false
	}
	mo := idx[i-1]
	m := mt.m[mo]
	if off < mo+int64(m.side)*int64(m.side)*8 {
		return mo, m, true
	}
	return 0, tileMeta{}, false
}

// overlapping returns the offsets of every recorded tile whose range
// intersects [off, off+n), in ascending order.
func (mt *metaTable) overlapping(off, n int64) []int64 {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	if len(mt.m) == 0 {
		return nil
	}
	idx := mt.index()
	// The first candidate is the covering tile of off, if any; every
	// later candidate starts before off+n.
	i := sort.Search(len(idx), func(i int) bool { return idx[i] > off })
	if i > 0 {
		m := mt.m[idx[i-1]]
		if off < idx[i-1]+int64(m.side)*int64(m.side)*8 {
			i--
		}
	}
	var out []int64
	for ; i < len(idx) && idx[i] < off+n; i++ {
		out = append(out, idx[i])
	}
	return out
}

// journaled returns the offsets of every tile whose current payload
// lives in the journal, in ascending order.
func (mt *metaTable) journaled() []int64 {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	var out []int64
	for off, m := range mt.m {
		if m.flags&tileJournal != 0 {
			out = append(out, off)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// snapshot returns every entry (offsets ascending) — the journal
// header's meta snapshot at reset time.
func (mt *metaTable) snapshot() ([]int64, []tileMeta) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	offs := make([]int64, 0, len(mt.m))
	for off := range mt.m {
		offs = append(offs, off)
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	metas := make([]tileMeta, len(offs))
	for i, off := range offs {
		metas[i] = mt.m[off]
	}
	return offs, metas
}

// index returns the sorted offset slice, rebuilding if stale.
// Callers hold mu.
func (mt *metaTable) index() []int64 {
	if mt.idx != nil {
		return mt.idx
	}
	idx := make([]int64, 0, len(mt.m))
	for off := range mt.m {
		idx = append(idx, off)
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	mt.idx = idx
	return idx
}
