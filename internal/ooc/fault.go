package ooc

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"
)

// Raw-transfer layer: every byte that moves between the store and any
// of its backing files — stripe segments (stripe.go) and journal
// records (journal.go) alike — goes through readAtFile/writeAtFile,
// which add the two failure policies of Config: deterministic fault
// injection (FaultEvery) in front of the file, and bounded
// retry-with-backoff (MaxRetries, RetryBackoff) behind every failure.
// Keeping the policies here means the page cache, the tile cache, the
// write-behind tasks, and the journal all inherit them without any
// per-call-site handling.

// ErrInjected is the failure injected by Config.FaultEvery. Tests
// match it with errors.Is to prove an injected disk fault propagated
// through the full stack as an error.
var ErrInjected = errors.New("ooc: injected I/O fault")

// inject consumes one raw-transfer slot and reports whether this
// transfer is scheduled to fail. The counter is atomic because
// background tile transfers run concurrently with the driver.
func (s *Store) inject() error {
	if s.cfg.FaultEvery <= 0 {
		return nil
	}
	if atomic.AddInt64(&s.ioOps, 1)%s.cfg.FaultEvery == 0 {
		s.stats.injected.Add(1)
		faultInjectedCount.Inc()
		return ErrInjected
	}
	return nil
}

// retries returns the retry budget (0 when disabled).
func (s *Store) retries() int {
	if s.cfg.MaxRetries < 0 {
		return 0
	}
	return s.cfg.MaxRetries
}

// backoff returns the wait before retry number attempt (0-based),
// doubling per attempt and capped so a deep retry chain cannot stall a
// run for seconds.
func (s *Store) backoff(attempt int) time.Duration {
	d := s.cfg.RetryBackoff << attempt
	if d > maxRetryBackoff || d <= 0 {
		d = maxRetryBackoff
	}
	return d
}

// readAtFile fills buf from physical offset phys of f, zero-filling
// past EOF (the store's files are sparse: unwritten regions read as
// zero). Transient failures are retried per the store's retry policy;
// exhaustion returns the last error, wrapped with the logical offset
// off for identification.
func (s *Store) readAtFile(f *os.File, buf []byte, phys, off int64) error {
	var nr int
	var err error
	for attempt := 0; ; attempt++ {
		if err = s.inject(); err == nil {
			nr, err = f.ReadAt(buf, phys)
			if err == nil || err == io.EOF {
				break
			}
		}
		if attempt >= s.retries() {
			return fmt.Errorf("ooc: read %d bytes at %d: %w", len(buf), off, err)
		}
		s.stats.retries.Add(1)
		retryCount.Inc()
		time.Sleep(s.backoff(attempt))
	}
	clear(buf[nr:])
	return nil
}

// writeAtFile writes buf at physical offset phys of f with the same
// retry policy.
func (s *Store) writeAtFile(f *os.File, buf []byte, phys, off int64) error {
	var err error
	for attempt := 0; ; attempt++ {
		if err = s.inject(); err == nil {
			if _, err = f.WriteAt(buf, phys); err == nil {
				return nil
			}
		}
		if attempt >= s.retries() {
			return fmt.Errorf("ooc: write %d bytes at %d: %w", len(buf), off, err)
		}
		s.stats.retries.Add(1)
		retryCount.Inc()
		time.Sleep(s.backoff(attempt))
	}
}
