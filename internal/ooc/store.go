package ooc

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"time"
)

// Config fixes the cache geometry and the disk model of a Store.
type Config struct {
	// PageSize is B, the block transfer size in bytes.
	PageSize int
	// CacheSize is M, the RAM budget in bytes; the store keeps at most
	// CacheSize/PageSize pages resident.
	CacheSize int64
	// SeekTime is charged per page transfer (default 4.5 ms, the
	// paper's disk).
	SeekTime time.Duration
	// TransferRate in bytes/second (default 85 MB/s, mid-range of the
	// paper's disk's 64.1-107.86 MB/s).
	TransferRate float64
}

// DefaultDisk is the paper's Fujitsu MAP3735NC model.
func DefaultDisk() Config {
	return Config{
		PageSize:     1 << 16,
		CacheSize:    1 << 24,
		SeekTime:     4500 * time.Microsecond,
		TransferRate: 85e6,
	}
}

// Stats are the I/O counters of a Store.
type Stats struct {
	PageReads  int64 // pages faulted in from disk
	PageWrites int64 // dirty pages written back
	Hits       int64 // accesses served from the page cache
	Faults     int64 // accesses that required a page read
}

// Store is a file-backed float64 array with an LRU page cache.
type Store struct {
	f       *os.File
	own     bool // file created by us, remove on Close
	cfg     Config
	maxPage int

	pages      map[int64]*page
	head, tail *page // MRU at head

	stats Stats
}

type page struct {
	id         int64
	data       []byte
	dirty      bool
	prev, next *page
}

// Create makes a store backed by a fresh temporary file in dir (or the
// default temp dir when dir is empty).
func Create(dir string, cfg Config) (*Store, error) {
	if cfg.PageSize <= 0 || cfg.PageSize%8 != 0 {
		return nil, fmt.Errorf("ooc: page size %d must be a positive multiple of 8", cfg.PageSize)
	}
	maxPage := int(cfg.CacheSize / int64(cfg.PageSize))
	if maxPage < 1 {
		return nil, fmt.Errorf("ooc: cache size %d holds no %d-byte page", cfg.CacheSize, cfg.PageSize)
	}
	if cfg.SeekTime == 0 {
		cfg.SeekTime = 4500 * time.Microsecond
	}
	if cfg.TransferRate == 0 {
		cfg.TransferRate = 85e6
	}
	f, err := os.CreateTemp(dir, "gep-ooc-*.dat")
	if err != nil {
		return nil, fmt.Errorf("ooc: %w", err)
	}
	return &Store{
		f:       f,
		own:     true,
		cfg:     cfg,
		maxPage: maxPage,
		pages:   make(map[int64]*page, maxPage+1),
	}, nil
}

// Config returns the store's configuration.
func (s *Store) Config() Config { return s.cfg }

// Stats returns the current I/O counters.
func (s *Store) Stats() Stats { return s.stats }

// ResetStats zeroes the counters (cache contents are kept).
func (s *Store) ResetStats() { s.stats = Stats{} }

// IOTime returns the modeled disk time for the transfers counted so
// far: every page transfer pays one seek plus PageSize/TransferRate.
func (s *Store) IOTime() time.Duration {
	n := s.stats.PageReads + s.stats.PageWrites
	transfer := float64(n) * float64(s.cfg.PageSize) / s.cfg.TransferRate
	return time.Duration(n)*s.cfg.SeekTime + time.Duration(transfer*float64(time.Second))
}

// ReadFloat returns the float64 stored at byte offset off (8-aligned).
// Unwritten regions read as zero.
func (s *Store) ReadFloat(off int64) float64 {
	p := s.fault(off / int64(s.cfg.PageSize))
	bits := binary.LittleEndian.Uint64(p.data[off%int64(s.cfg.PageSize):])
	return math.Float64frombits(bits)
}

// WriteFloat stores v at byte offset off (8-aligned).
func (s *Store) WriteFloat(off int64, v float64) {
	p := s.fault(off / int64(s.cfg.PageSize))
	binary.LittleEndian.PutUint64(p.data[off%int64(s.cfg.PageSize):], math.Float64bits(v))
	p.dirty = true
}

// fault returns the resident page id, loading and evicting as needed.
func (s *Store) fault(id int64) *page {
	if p, ok := s.pages[id]; ok {
		s.stats.Hits++
		s.moveToFront(p)
		return p
	}
	s.stats.Faults++
	// Evict LRU page first so the buffer can be reused.
	var buf []byte
	if len(s.pages) >= s.maxPage {
		victim := s.tail
		s.unlink(victim)
		delete(s.pages, victim.id)
		if victim.dirty {
			s.writePage(victim)
		}
		buf = victim.data
	} else {
		buf = make([]byte, s.cfg.PageSize)
	}
	p := &page{id: id, data: buf}
	s.readPage(p)
	s.pages[id] = p
	s.pushFront(p)
	return p
}

func (s *Store) readPage(p *page) {
	s.stats.PageReads++
	nr, err := s.f.ReadAt(p.data, p.id*int64(s.cfg.PageSize))
	if err == io.EOF || (err == nil && nr < len(p.data)) {
		for i := nr; i < len(p.data); i++ {
			p.data[i] = 0
		}
		return
	}
	if err != nil {
		panic(fmt.Sprintf("ooc: read page %d: %v", p.id, err))
	}
}

func (s *Store) writePage(p *page) {
	s.stats.PageWrites++
	if _, err := s.f.WriteAt(p.data, p.id*int64(s.cfg.PageSize)); err != nil {
		panic(fmt.Sprintf("ooc: write page %d: %v", p.id, err))
	}
	p.dirty = false
}

// Flush writes back every dirty resident page.
func (s *Store) Flush() {
	for p := s.head; p != nil; p = p.next {
		if p.dirty {
			s.writePage(p)
		}
	}
}

// Close flushes, closes and (for stores we created) removes the
// backing file.
func (s *Store) Close() error {
	s.Flush()
	name := s.f.Name()
	err := s.f.Close()
	if s.own {
		if rmErr := os.Remove(name); err == nil {
			err = rmErr
		}
	}
	return err
}

// Resident returns the number of pages currently cached.
func (s *Store) Resident() int { return len(s.pages) }

func (s *Store) moveToFront(p *page) {
	if s.head == p {
		return
	}
	s.unlink(p)
	s.pushFront(p)
}

func (s *Store) unlink(p *page) {
	if p.prev != nil {
		p.prev.next = p.next
	} else {
		s.head = p.next
	}
	if p.next != nil {
		p.next.prev = p.prev
	} else {
		s.tail = p.prev
	}
	p.prev, p.next = nil, nil
}

func (s *Store) pushFront(p *page) {
	p.next = s.head
	if s.head != nil {
		s.head.prev = p
	}
	s.head = p
	if s.tail == nil {
		s.tail = p
	}
}
