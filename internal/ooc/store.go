package ooc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"gep/internal/par"
)

// Config fixes the cache geometry, the disk model, the striping and
// durability layout, and the failure policy of a Store.
type Config struct {
	// PageSize is B, the block transfer size in bytes.
	PageSize int
	// CacheSize is M, the RAM budget in bytes; the store keeps at most
	// CacheSize/PageSize pages resident, and the tile cache (tile.go)
	// keeps at most CacheSize bytes of unpinned tiles resident.
	CacheSize int64
	// SeekTime is charged per transfer (default 4.5 ms, the paper's
	// disk).
	SeekTime time.Duration
	// TransferRate in bytes/second (default 85 MB/s, mid-range of the
	// paper's disk's 64.1-107.86 MB/s).
	TransferRate float64

	// Stripes is the number of backing files the logical byte space is
	// striped across, RAID-0 style (0 means 1 — the legacy single-file
	// layout; see stripe.go). Each stripe gets its own write-behind
	// in-flight slots, so background write-back parallelism scales with
	// the stripe count.
	Stripes int
	// StripeUnit is the striping chunk size in bytes (0 means 64 KiB;
	// must be a multiple of 8). Tiles no larger than the unit map to a
	// single stripe segment.
	StripeUnit int

	// Compress enables zrle compression of tile payloads (compress.go).
	// Incompressible tiles are stored raw, so physical I/O never
	// exceeds logical; Stats.BytesLogical vs BytesPhysical report the
	// split.
	Compress bool

	// Runtime is the par runtime background tasks (write-behind,
	// prefetch, journal apply) spawn on; nil uses the package-level
	// default runtime. A server hosting several stores gives each job's
	// store its own runtime for isolation.
	Runtime *par.Runtime

	// MaxRetries is how many times a failed raw transfer is retried
	// before the error propagates to the caller (0 means the default of
	// 3; negative disables retries). Each retry sleeps RetryBackoff,
	// doubling per attempt.
	MaxRetries int
	// RetryBackoff is the initial wait before the first retry (0 means
	// the default of 100 µs).
	RetryBackoff time.Duration

	// FaultEvery, when positive, makes every FaultEvery-th raw disk
	// transfer fail with ErrInjected before touching the file. It is the
	// fault-injection hook the error-path tests use to prove that I/O
	// failures surface as errors — never panics or hangs — through every
	// layer (page cache, tile cache, write-behind, journal, engines).
	// Zero disables injection.
	FaultEvery int64

	// WriteBehind bounds the number of concurrently in-flight background
	// tile write-backs per stripe (0 means the default of 4; negative
	// forces synchronous write-back). Each in-flight write pins one
	// tile-sized buffer beyond CacheSize, so the worst-case RAM
	// overshoot is Stripes×WriteBehind tiles.
	WriteBehind int
}

const (
	defaultMaxRetries   = 3
	defaultRetryBackoff = 100 * time.Microsecond
	defaultWriteBehind  = 4
	maxRetryBackoff     = 50 * time.Millisecond
	maxStripes          = 64
)

// DefaultDisk is the paper's Fujitsu MAP3735NC model.
func DefaultDisk() Config {
	return Config{
		PageSize:     1 << 16,
		CacheSize:    1 << 24,
		SeekTime:     4500 * time.Microsecond,
		TransferRate: 85e6,
	}
}

// Stats is a snapshot of the I/O counters of a Store.
type Stats struct {
	PageReads  int64 // pages faulted in from disk
	PageWrites int64 // dirty pages written back
	Hits       int64 // element accesses served from the page cache
	Faults     int64 // element accesses that required a page read
	TileReads  int64 // whole tiles faulted into the tile cache
	TileWrites int64 // dirty tiles written back
	Retries    int64 // raw transfers retried after a failure
	Injected   int64 // failures injected by Config.FaultEvery

	// BytesLogical and BytesPhysical split the tile-payload traffic:
	// logical is what the computation moved (side²·8 per tile
	// transfer, the §4.1 accounting), physical is what the disk moved
	// after compression. Without compression the two are equal.
	BytesLogical  int64
	BytesPhysical int64

	ChecksumOK   int64 // tile payloads verified on fault-in/replay
	ChecksumFail int64 // payloads that failed verification (ErrCorrupt)

	JournalAppends int64 // tile records appended to the journal
	JournalCommits int64 // sync points committed
	JournalApplied int64 // journal-resident tiles applied home
	JournalBytes   int64 // journal traffic (records + replay reads)
}

// storeStats holds the live counters. Atomics, because background
// write-behind and prefetch tasks count their transfers concurrently
// with the driver goroutine.
type storeStats struct {
	pageReads, pageWrites, hits, faults atomic.Int64
	tileReads, tileWrites               atomic.Int64
	tileBytesRead, tileBytesWritten     atomic.Int64
	tileLogicalRead, tileLogicalWritten atomic.Int64
	retries, injected                   atomic.Int64
	checksumOK, checksumFail            atomic.Int64
	journalAppends, journalCommits      atomic.Int64
	journalApplied, journalBytes        atomic.Int64
}

// Store is a file-backed float64 array with two caching regimes: an
// LRU page cache serving the element API (ReadFloat/WriteFloat, the
// matrix.Grid path), and a tile cache (tile.go) serving whole-quadrant
// Pin/Prefetch for the tile-granular out-of-core runtime. The byte
// space is striped across one or more backing files (stripe.go), every
// tile payload is checksummed (meta.go) and optionally compressed
// (compress.go), and durable stores (CreateAt/Open) additionally run
// tile write-backs through a write-ahead journal (journal.go) so a
// killed run resumes from its last sync point via Recover.
//
// The two caching regimes are kept coherent: pinning a tile flushes
// and drops the pages it overlaps, and element accesses route through
// the verified tile path whenever a checksummed tile covers their
// offset (falling back to the page path elsewhere).
//
// The element API and the tile API must be driven from one goroutine
// (the engine's); the store's own background tasks (prefetch reads,
// write-behind, journal apply) are internally synchronized.
type Store struct {
	files   []*os.File // stripe files (len 1 without striping)
	dir     string     // durable store directory ("" for temp stores)
	own     bool       // files created by us, removed on Close
	cfg     Config
	maxPage int

	pages      map[int64]*page
	head, tail *page // MRU at head

	ioOps int64 // raw-transfer counter driving FaultEvery (atomic)

	stats storeStats

	errMu sync.Mutex
	err   error // first I/O error observed (sticky; see Err)

	meta metaTable
	jr   *journal // nil for non-durable stores
	torn bool     // Open found an uncommitted journal tail

	tc tileCache
}

type page struct {
	id         int64
	data       []byte
	dirty      bool
	prev, next *page
}

// resolve applies Config defaults and validates the geometry.
func (cfg *Config) resolve() (maxPage int, err error) {
	if cfg.PageSize <= 0 || cfg.PageSize%8 != 0 {
		return 0, fmt.Errorf("ooc: page size %d must be a positive multiple of 8", cfg.PageSize)
	}
	maxPage = int(cfg.CacheSize / int64(cfg.PageSize))
	if maxPage < 1 {
		return 0, fmt.Errorf("ooc: cache size %d holds no %d-byte page", cfg.CacheSize, cfg.PageSize)
	}
	if cfg.Stripes == 0 {
		cfg.Stripes = 1
	}
	if cfg.Stripes < 1 || cfg.Stripes > maxStripes {
		return 0, fmt.Errorf("ooc: stripe count %d out of range [1, %d]", cfg.Stripes, maxStripes)
	}
	if cfg.StripeUnit == 0 {
		cfg.StripeUnit = defaultStripeUnit
	}
	if cfg.StripeUnit < 8 || cfg.StripeUnit%8 != 0 {
		return 0, fmt.Errorf("ooc: stripe unit %d must be a positive multiple of 8", cfg.StripeUnit)
	}
	if cfg.SeekTime == 0 {
		cfg.SeekTime = 4500 * time.Microsecond
	}
	if cfg.TransferRate == 0 {
		cfg.TransferRate = 85e6
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = defaultMaxRetries
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = defaultRetryBackoff
	}
	if cfg.WriteBehind == 0 {
		cfg.WriteBehind = defaultWriteBehind
	}
	return maxPage, nil
}

func newStore(files []*os.File, dir string, own bool, cfg Config, maxPage int) *Store {
	s := &Store{
		files:   files,
		dir:     dir,
		own:     own,
		cfg:     cfg,
		maxPage: maxPage,
		pages:   make(map[int64]*page, maxPage+1),
	}
	s.meta.init()
	s.tc.init(cfg)
	return s
}

// Create makes a non-durable store backed by fresh temporary files in
// dir (or the default temp dir when dir is empty) — one per stripe,
// removed on Close. Tile payloads are checksummed (and compressed when
// Config.Compress is set) but there is no journal; for crash-
// recoverable stores use CreateAt.
func Create(dir string, cfg Config) (*Store, error) {
	maxPage, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	files := make([]*os.File, cfg.Stripes)
	for i := range files {
		f, err := os.CreateTemp(dir, "gep-ooc-*.dat")
		if err != nil {
			for _, g := range files[:i] {
				g.Close()
				os.Remove(g.Name())
			}
			return nil, fmt.Errorf("ooc: %w", err)
		}
		files[i] = f
	}
	return newStore(files, "", true, cfg, maxPage), nil
}

// CreateAt makes a durable store in directory dir (created if
// missing, which must not already hold a store): Config.Stripes
// backing files plus a write-ahead journal. The files survive Close;
// a crashed process reopens the directory with Open and resumes via
// Recover. The stripe geometry is recorded in the journal header, so
// Open needs no geometry in its Config.
func CreateAt(dir string, cfg Config) (*Store, error) {
	maxPage, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("ooc: %w", err)
	}
	if _, err := os.Stat(filepath.Join(dir, journalName)); err == nil {
		return nil, fmt.Errorf("ooc: %s already holds a store (use Open)", dir)
	}
	files := make([]*os.File, cfg.Stripes)
	for i := range files {
		f, err := os.OpenFile(filepath.Join(dir, fmt.Sprintf(stripePattern, i)),
			os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o666)
		if err != nil {
			for _, g := range files[:i] {
				g.Close()
			}
			return nil, fmt.Errorf("ooc: %w", err)
		}
		files[i] = f
	}
	s := newStore(files, dir, false, cfg, maxPage)
	s.jr = &journal{path: filepath.Join(dir, journalName), frontier: -1}
	hdr := encodeJournalHeader(-1, cfg.Stripes, cfg.StripeUnit, nil, nil)
	jf, err := os.OpenFile(s.jr.path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o666)
	if err == nil {
		if _, werr := jf.Write(hdr); werr == nil {
			err = jf.Sync()
		} else {
			err = werr
		}
	}
	if err != nil {
		s.closeFiles(false)
		return nil, fmt.Errorf("ooc: %w", err)
	}
	syncDir(dir)
	s.jr.f = jf
	s.jr.size = int64(len(hdr))
	return s, nil
}

// Open reopens a durable store created by CreateAt, reconstructing
// the tile-metadata table from the journal (committed epochs only; a
// torn uncommitted tail is discarded). cfg supplies the cache
// geometry and policies; the stripe geometry comes from the journal
// header (a non-zero cfg.Stripes/StripeUnit that disagrees is an
// error). Call Recover next to compact the journal and learn the
// resumable frontier.
func Open(dir string, cfg Config) (*Store, error) {
	jpath := filepath.Join(dir, journalName)
	jf, err := os.OpenFile(jpath, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("ooc: %w", err)
	}
	st, err := jf.Stat()
	if err != nil {
		jf.Close()
		return nil, fmt.Errorf("ooc: %w", err)
	}
	sc, err := scanJournal(jf, st.Size())
	if err != nil {
		jf.Close()
		return nil, err
	}
	if cfg.Stripes != 0 && cfg.Stripes != sc.stripes {
		jf.Close()
		return nil, fmt.Errorf("ooc: store has %d stripes, config says %d", sc.stripes, cfg.Stripes)
	}
	if cfg.StripeUnit != 0 && cfg.StripeUnit != sc.unit {
		jf.Close()
		return nil, fmt.Errorf("ooc: store has stripe unit %d, config says %d", sc.unit, cfg.StripeUnit)
	}
	cfg.Stripes, cfg.StripeUnit = sc.stripes, sc.unit
	maxPage, err := cfg.resolve()
	if err != nil {
		jf.Close()
		return nil, err
	}
	files := make([]*os.File, cfg.Stripes)
	for i := range files {
		f, ferr := os.OpenFile(filepath.Join(dir, fmt.Sprintf(stripePattern, i)), os.O_RDWR, 0)
		if ferr != nil {
			jf.Close()
			for _, g := range files[:i] {
				g.Close()
			}
			return nil, fmt.Errorf("ooc: %w", ferr)
		}
		files[i] = f
	}
	s := newStore(files, dir, false, cfg, maxPage)
	for off, m := range sc.meta {
		s.meta.put(off, m)
	}
	s.jr = &journal{f: jf, path: jpath, size: sc.end, frontier: sc.frontier}
	s.torn = sc.torn
	return s, nil
}

// Config returns the store's configuration (with defaults resolved).
func (s *Store) Config() Config { return s.cfg }

// Frontier returns the last committed sync tag of a durable store
// (-1 before the first Checkpoint) — the resume point Recover reports.
func (s *Store) Frontier() int64 {
	if s.jr == nil {
		return -1
	}
	return s.jr.frontier
}

// spawn runs f on the store's configured runtime (or the package
// default) and returns its join.
func (s *Store) spawn(f func()) func() {
	if s.cfg.Runtime != nil {
		if s.cfg.Runtime.Aborted() {
			// An aborted runtime drops spawned bodies, which would leak
			// the in-flight slot the closure is responsible for
			// releasing. Run inline instead: the store's accounting
			// stays sound while the driver's Stop poll winds the run
			// down (the job's output is discarded anyway).
			f()
			return func() {}
		}
		return s.cfg.Runtime.Spawn(f)
	}
	return par.Spawn(f)
}

// Stats returns a snapshot of the I/O counters.
func (s *Store) Stats() Stats {
	return Stats{
		PageReads:      s.stats.pageReads.Load(),
		PageWrites:     s.stats.pageWrites.Load(),
		Hits:           s.stats.hits.Load(),
		Faults:         s.stats.faults.Load(),
		TileReads:      s.stats.tileReads.Load(),
		TileWrites:     s.stats.tileWrites.Load(),
		Retries:        s.stats.retries.Load(),
		Injected:       s.stats.injected.Load(),
		BytesLogical:   s.stats.tileLogicalRead.Load() + s.stats.tileLogicalWritten.Load(),
		BytesPhysical:  s.stats.tileBytesRead.Load() + s.stats.tileBytesWritten.Load(),
		ChecksumOK:     s.stats.checksumOK.Load(),
		ChecksumFail:   s.stats.checksumFail.Load(),
		JournalAppends: s.stats.journalAppends.Load(),
		JournalCommits: s.stats.journalCommits.Load(),
		JournalApplied: s.stats.journalApplied.Load(),
		JournalBytes:   s.stats.journalBytes.Load(),
	}
}

// ResetStats zeroes the counters (cache contents are kept).
func (s *Store) ResetStats() { s.stats = storeStats{} }

// IOTime returns the modeled disk time for the transfers counted so
// far: every transfer — page or tile — pays one seek plus its size
// over the transfer rate. Tile transfers are charged their physical
// (post-compression) size: compression buys modeled transfer time,
// while the logical §4.1 transfer count (TileReads/TileWrites) is
// unchanged.
func (s *Store) IOTime() time.Duration {
	pages := s.stats.pageReads.Load() + s.stats.pageWrites.Load()
	tiles := s.stats.tileReads.Load() + s.stats.tileWrites.Load()
	bytes := float64(pages)*float64(s.cfg.PageSize) +
		float64(s.stats.tileBytesRead.Load()+s.stats.tileBytesWritten.Load())
	transfer := bytes / s.cfg.TransferRate
	return time.Duration(pages+tiles)*s.cfg.SeekTime + time.Duration(transfer*float64(time.Second))
}

// Err returns the first I/O error the store has observed, from any
// path: a failed element access (whose API cannot return errors — the
// matrix.Grid contract), a failed background write-back, or a failed
// prefetch. It is sticky, like (*bufio.Scanner).Err: the first error
// is kept (an individual failed read returns 0, a failed write is
// dropped, and later accesses still proceed normally), so callers
// check Err once after a run rather than after every access.
func (s *Store) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

// setErr records err as the sticky error if none is recorded yet.
func (s *Store) setErr(err error) {
	if err == nil {
		return
	}
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
}

// ReadFloat returns the float64 stored at byte offset off (8-aligned).
// Unwritten regions read as zero. Offsets covered by a checksummed
// tile are served through the verified tile path; elsewhere the page
// cache serves them raw. On I/O failure it returns 0 and records the
// error for Err.
func (s *Store) ReadFloat(off int64) float64 {
	if v, handled := s.elementViaTile(off, false, 0); handled {
		return v
	}
	p, err := s.fault(off / int64(s.cfg.PageSize))
	if err != nil {
		s.setErr(err)
		return 0
	}
	bits := binary.LittleEndian.Uint64(p.data[off%int64(s.cfg.PageSize):])
	return math.Float64frombits(bits)
}

// WriteFloat stores v at byte offset off (8-aligned). On I/O failure
// the write is dropped and the error recorded for Err.
func (s *Store) WriteFloat(off int64, v float64) {
	if _, handled := s.elementViaTile(off, true, v); handled {
		return
	}
	p, err := s.fault(off / int64(s.cfg.PageSize))
	if err != nil {
		s.setErr(err)
		return
	}
	binary.LittleEndian.PutUint64(p.data[off%int64(s.cfg.PageSize):], math.Float64bits(v))
	p.dirty = true
}

// elementViaTile serves an element access through the tile path when a
// checksummed tile covers off (so the access is verified and sees
// compressed/journaled payloads correctly). It reports handled=false
// when no tile covers off and the caller should use the page path;
// before deciding, any live tile-cache state is synced so a dirty
// resident tile covering off becomes visible as meta.
func (s *Store) elementViaTile(off int64, write bool, v float64) (float64, bool) {
	mo, m, ok := s.meta.covering(off)
	if !ok {
		if err := s.syncForElement(); err != nil {
			s.setErr(err)
			return 0, true
		}
		mo, m, ok = s.meta.covering(off)
		if !ok {
			return 0, false
		}
	}
	t, err := s.PinTile(mo, m.side)
	if err != nil {
		s.setErr(err)
		return 0, true
	}
	i := (off - mo) / 8
	var out float64
	if write {
		t.Data[i] = v
	} else {
		out = t.Data[i]
	}
	s.UnpinTile(t, write)
	return out, true
}

// fault returns the resident page id, loading and evicting as needed.
// Eviction is failure-atomic: the victim leaves the cache only after
// its dirty data is safely on disk, so a failed write-back loses
// nothing — the victim stays resident and dirty, and the error
// propagates.
func (s *Store) fault(id int64) (*page, error) {
	if p, ok := s.pages[id]; ok {
		s.stats.hits.Add(1)
		s.moveToFront(p)
		return p, nil
	}
	s.stats.faults.Add(1)
	var buf []byte
	if len(s.pages) >= s.maxPage {
		victim := s.tail
		if victim.dirty {
			if err := s.writePage(victim); err != nil {
				return nil, err
			}
		}
		s.unlink(victim)
		delete(s.pages, victim.id)
		buf = victim.data
	} else {
		buf = make([]byte, s.cfg.PageSize)
	}
	p := &page{id: id, data: buf}
	if err := s.readPage(p); err != nil {
		return nil, err
	}
	s.pages[id] = p
	s.pushFront(p)
	return p, nil
}

func (s *Store) readPage(p *page) error {
	s.stats.pageReads.Add(1)
	return s.readRaw(p.data, p.id*int64(s.cfg.PageSize))
}

// writePage writes a dirty page's raw bytes home. If checksummed
// tiles overlap the page's range, their meta entries are first
// materialized away (materializeRaw): the raw page bytes would
// otherwise invalidate recorded checksums or be shadowed by
// journal-resident payloads.
func (s *Store) writePage(p *page) error {
	if !s.meta.empty() {
		if err := s.materializeRaw(p); err != nil {
			return err
		}
	}
	s.stats.pageWrites.Add(1)
	if err := s.writeRaw(p.data, p.id*int64(s.cfg.PageSize)); err != nil {
		return err
	}
	p.dirty = false
	return nil
}

// materializeRaw converts every checksummed tile overlapping page p's
// byte range back to plain raw home storage: the payload is read from
// wherever it lives (journal or home), verified, decompressed, and
// written home raw; the page's overlapped bytes are refreshed from it
// (they may predate the tile's write-back); and the meta entry is
// deleted — the region becomes ordinary unverified page territory.
func (s *Store) materializeRaw(p *page) error {
	ps := int64(s.cfg.PageSize)
	pstart := p.id * ps
	for _, mo := range s.meta.overlapping(pstart, ps) {
		m, ok := s.meta.get(mo)
		if !ok {
			continue
		}
		logical := int64(m.side) * int64(m.side) * 8
		raw, err := s.readTilePayload(mo, m)
		if err != nil {
			return err
		}
		if m.flags&(tileCompressed|tileJournal) != 0 {
			if err := s.writeRaw(raw, mo); err != nil {
				return err
			}
		}
		lo, hi := max64(mo, pstart), min64(mo+logical, pstart+ps)
		copy(p.data[lo-pstart:hi-pstart], raw[lo-mo:hi-mo])
		s.meta.delete(mo)
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Flush writes back every dirty resident page. It attempts every page
// and returns all errors, joined.
func (s *Store) Flush() error {
	var errs []error
	for p := s.head; p != nil; p = p.next {
		if p.dirty {
			if err := s.writePage(p); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}

// dropPages flushes and evicts every resident page overlapping the
// byte range [off, off+n) — the page half of the page/tile coherence
// protocol: before a tile is faulted in, no page may hold a newer or
// soon-stale copy of its bytes.
func (s *Store) dropPages(off, n int64) error {
	if n <= 0 || len(s.pages) == 0 {
		return nil
	}
	ps := int64(s.cfg.PageSize)
	for id := off / ps; id <= (off+n-1)/ps; id++ {
		p, ok := s.pages[id]
		if !ok {
			continue
		}
		if p.dirty {
			if err := s.writePage(p); err != nil {
				return err
			}
		}
		s.unlink(p)
		delete(s.pages, id)
	}
	return nil
}

// Close flushes both caches, commits a final sync point on durable
// stores, closes, and (for temporary stores) removes the backing
// files. It returns the errors of the flush → commit → close → remove
// sequence, joined; a flush failure does not stop the close.
func (s *Store) Close() error {
	var errs []error
	if err := s.SyncTiles(); err != nil {
		errs = append(errs, err)
	}
	if err := s.Flush(); err != nil {
		errs = append(errs, err)
	}
	if s.jr != nil && errors.Join(errs...) == nil {
		if err := s.Checkpoint(s.jr.frontier); err != nil {
			errs = append(errs, err)
		}
	}
	if s.jr != nil {
		if err := s.jr.f.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	if err := s.closeFiles(s.own); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// Abandon closes the store's file handles without flushing any cached
// state — the in-process equivalent of SIGKILL, for crash drills: the
// on-disk state is whatever earlier writes and fsyncs made durable.
// The backing files are kept even for temporary stores. The store
// must not be used afterwards.
func (s *Store) Abandon() {
	// Join background tasks so no write lands after the handles close.
	for _, w := range s.tc.waits {
		w()
	}
	s.tc.waits = s.tc.waits[:0]
	if s.jr != nil {
		s.jr.f.Close()
	}
	s.closeFiles(false)
}

// Resident returns the number of pages currently cached.
func (s *Store) Resident() int { return len(s.pages) }

func (s *Store) moveToFront(p *page) {
	if s.head == p {
		return
	}
	s.unlink(p)
	s.pushFront(p)
}

func (s *Store) unlink(p *page) {
	if p.prev != nil {
		p.prev.next = p.next
	} else {
		s.head = p.next
	}
	if p.next != nil {
		p.next.prev = p.prev
	} else {
		s.tail = p.prev
	}
	p.prev, p.next = nil, nil
}

func (s *Store) pushFront(p *page) {
	p.next = s.head
	if s.head != nil {
		s.head.prev = p
	}
	s.head = p
	if s.tail == nil {
		s.tail = p
	}
}
