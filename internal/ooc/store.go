package ooc

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Config fixes the cache geometry, the disk model, and the failure
// policy of a Store.
type Config struct {
	// PageSize is B, the block transfer size in bytes.
	PageSize int
	// CacheSize is M, the RAM budget in bytes; the store keeps at most
	// CacheSize/PageSize pages resident, and the tile cache (tile.go)
	// keeps at most CacheSize bytes of unpinned tiles resident.
	CacheSize int64
	// SeekTime is charged per transfer (default 4.5 ms, the paper's
	// disk).
	SeekTime time.Duration
	// TransferRate in bytes/second (default 85 MB/s, mid-range of the
	// paper's disk's 64.1-107.86 MB/s).
	TransferRate float64

	// MaxRetries is how many times a failed raw transfer is retried
	// before the error propagates to the caller (0 means the default of
	// 3; negative disables retries). Each retry sleeps RetryBackoff,
	// doubling per attempt.
	MaxRetries int
	// RetryBackoff is the initial wait before the first retry (0 means
	// the default of 100 µs).
	RetryBackoff time.Duration

	// FaultEvery, when positive, makes every FaultEvery-th raw disk
	// transfer fail with ErrInjected before touching the file. It is the
	// fault-injection hook the error-path tests use to prove that I/O
	// failures surface as errors — never panics or hangs — through every
	// layer (page cache, tile cache, write-behind, engines). Zero
	// disables injection.
	FaultEvery int64

	// WriteBehind bounds the number of concurrently in-flight background
	// tile write-backs (0 means the default of 4; negative forces
	// synchronous write-back). Each in-flight write pins one tile-sized
	// buffer beyond CacheSize, so the worst-case RAM overshoot is
	// WriteBehind tiles.
	WriteBehind int
}

const (
	defaultMaxRetries   = 3
	defaultRetryBackoff = 100 * time.Microsecond
	defaultWriteBehind  = 4
	maxRetryBackoff     = 50 * time.Millisecond
)

// DefaultDisk is the paper's Fujitsu MAP3735NC model.
func DefaultDisk() Config {
	return Config{
		PageSize:     1 << 16,
		CacheSize:    1 << 24,
		SeekTime:     4500 * time.Microsecond,
		TransferRate: 85e6,
	}
}

// Stats is a snapshot of the I/O counters of a Store.
type Stats struct {
	PageReads  int64 // pages faulted in from disk
	PageWrites int64 // dirty pages written back
	Hits       int64 // element accesses served from the page cache
	Faults     int64 // element accesses that required a page read
	TileReads  int64 // whole tiles faulted into the tile cache
	TileWrites int64 // dirty tiles written back
	Retries    int64 // raw transfers retried after a failure
	Injected   int64 // failures injected by Config.FaultEvery
}

// storeStats holds the live counters. Atomics, because background
// write-behind and prefetch tasks count their transfers concurrently
// with the driver goroutine.
type storeStats struct {
	pageReads, pageWrites, hits, faults atomic.Int64
	tileReads, tileWrites               atomic.Int64
	tileBytesRead, tileBytesWritten     atomic.Int64
	retries, injected                   atomic.Int64
}

// Store is a file-backed float64 array with two caching regimes: an
// LRU page cache serving the element API (ReadFloat/WriteFloat, the
// matrix.Grid path), and a tile cache (tile.go) serving whole-quadrant
// Pin/Prefetch for the tile-granular out-of-core runtime. The two are
// kept coherent: pinning a tile flushes and drops the pages it
// overlaps, and any element access while tiles are resident first
// syncs the tile cache back to disk.
//
// The element API and the tile API must be driven from one goroutine
// (the engine's); the store's own background tasks (prefetch reads,
// write-behind) are internally synchronized.
type Store struct {
	f       *os.File
	own     bool // file created by us, remove on Close
	cfg     Config
	maxPage int

	pages      map[int64]*page
	head, tail *page // MRU at head

	ioOps int64 // raw-transfer counter driving FaultEvery (atomic)

	stats storeStats

	errMu sync.Mutex
	err   error // first I/O error observed (sticky; see Err)

	tc tileCache
}

type page struct {
	id         int64
	data       []byte
	dirty      bool
	prev, next *page
}

// Create makes a store backed by a fresh temporary file in dir (or the
// default temp dir when dir is empty).
func Create(dir string, cfg Config) (*Store, error) {
	if cfg.PageSize <= 0 || cfg.PageSize%8 != 0 {
		return nil, fmt.Errorf("ooc: page size %d must be a positive multiple of 8", cfg.PageSize)
	}
	maxPage := int(cfg.CacheSize / int64(cfg.PageSize))
	if maxPage < 1 {
		return nil, fmt.Errorf("ooc: cache size %d holds no %d-byte page", cfg.CacheSize, cfg.PageSize)
	}
	if cfg.SeekTime == 0 {
		cfg.SeekTime = 4500 * time.Microsecond
	}
	if cfg.TransferRate == 0 {
		cfg.TransferRate = 85e6
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = defaultMaxRetries
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = defaultRetryBackoff
	}
	if cfg.WriteBehind == 0 {
		cfg.WriteBehind = defaultWriteBehind
	}
	f, err := os.CreateTemp(dir, "gep-ooc-*.dat")
	if err != nil {
		return nil, fmt.Errorf("ooc: %w", err)
	}
	s := &Store{
		f:       f,
		own:     true,
		cfg:     cfg,
		maxPage: maxPage,
		pages:   make(map[int64]*page, maxPage+1),
	}
	s.tc.init(cfg)
	return s, nil
}

// Config returns the store's configuration (with defaults resolved).
func (s *Store) Config() Config { return s.cfg }

// Stats returns a snapshot of the I/O counters.
func (s *Store) Stats() Stats {
	return Stats{
		PageReads:  s.stats.pageReads.Load(),
		PageWrites: s.stats.pageWrites.Load(),
		Hits:       s.stats.hits.Load(),
		Faults:     s.stats.faults.Load(),
		TileReads:  s.stats.tileReads.Load(),
		TileWrites: s.stats.tileWrites.Load(),
		Retries:    s.stats.retries.Load(),
		Injected:   s.stats.injected.Load(),
	}
}

// ResetStats zeroes the counters (cache contents are kept).
func (s *Store) ResetStats() { s.stats = storeStats{} }

// IOTime returns the modeled disk time for the transfers counted so
// far: every transfer — page or tile — pays one seek plus its size
// over the transfer rate.
func (s *Store) IOTime() time.Duration {
	pages := s.stats.pageReads.Load() + s.stats.pageWrites.Load()
	tiles := s.stats.tileReads.Load() + s.stats.tileWrites.Load()
	bytes := float64(pages)*float64(s.cfg.PageSize) +
		float64(s.stats.tileBytesRead.Load()+s.stats.tileBytesWritten.Load())
	transfer := bytes / s.cfg.TransferRate
	return time.Duration(pages+tiles)*s.cfg.SeekTime + time.Duration(transfer*float64(time.Second))
}

// Err returns the first I/O error the store has observed, from any
// path: a failed element access (whose API cannot return errors — the
// matrix.Grid contract), a failed background write-back, or a failed
// prefetch. It is sticky, like (*bufio.Scanner).Err: the first error
// is kept (an individual failed read returns 0, a failed write is
// dropped, and later accesses still proceed normally), so callers
// check Err once after a run rather than after every access.
func (s *Store) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

// setErr records err as the sticky error if none is recorded yet.
func (s *Store) setErr(err error) {
	if err == nil {
		return
	}
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
}

// ReadFloat returns the float64 stored at byte offset off (8-aligned).
// Unwritten regions read as zero. On I/O failure it returns 0 and
// records the error for Err.
func (s *Store) ReadFloat(off int64) float64 {
	if err := s.syncForElement(); err != nil {
		s.setErr(err)
		return 0
	}
	p, err := s.fault(off / int64(s.cfg.PageSize))
	if err != nil {
		s.setErr(err)
		return 0
	}
	bits := binary.LittleEndian.Uint64(p.data[off%int64(s.cfg.PageSize):])
	return math.Float64frombits(bits)
}

// WriteFloat stores v at byte offset off (8-aligned). On I/O failure
// the write is dropped and the error recorded for Err.
func (s *Store) WriteFloat(off int64, v float64) {
	if err := s.syncForElement(); err != nil {
		s.setErr(err)
		return
	}
	p, err := s.fault(off / int64(s.cfg.PageSize))
	if err != nil {
		s.setErr(err)
		return
	}
	binary.LittleEndian.PutUint64(p.data[off%int64(s.cfg.PageSize):], math.Float64bits(v))
	p.dirty = true
}

// fault returns the resident page id, loading and evicting as needed.
// Eviction is failure-atomic: the victim leaves the cache only after
// its dirty data is safely on disk, so a failed write-back loses
// nothing — the victim stays resident and dirty, and the error
// propagates.
func (s *Store) fault(id int64) (*page, error) {
	if p, ok := s.pages[id]; ok {
		s.stats.hits.Add(1)
		s.moveToFront(p)
		return p, nil
	}
	s.stats.faults.Add(1)
	var buf []byte
	if len(s.pages) >= s.maxPage {
		victim := s.tail
		if victim.dirty {
			if err := s.writePage(victim); err != nil {
				return nil, err
			}
		}
		s.unlink(victim)
		delete(s.pages, victim.id)
		buf = victim.data
	} else {
		buf = make([]byte, s.cfg.PageSize)
	}
	p := &page{id: id, data: buf}
	if err := s.readPage(p); err != nil {
		return nil, err
	}
	s.pages[id] = p
	s.pushFront(p)
	return p, nil
}

func (s *Store) readPage(p *page) error {
	s.stats.pageReads.Add(1)
	return s.readAt(p.data, p.id*int64(s.cfg.PageSize))
}

func (s *Store) writePage(p *page) error {
	s.stats.pageWrites.Add(1)
	if err := s.writeAt(p.data, p.id*int64(s.cfg.PageSize)); err != nil {
		return err
	}
	p.dirty = false
	return nil
}

// Flush writes back every dirty resident page. It attempts every page
// and returns the first error.
func (s *Store) Flush() error {
	var first error
	for p := s.head; p != nil; p = p.next {
		if p.dirty {
			if err := s.writePage(p); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// dropPages flushes and evicts every resident page overlapping the
// byte range [off, off+n) — the page half of the page/tile coherence
// protocol: before a tile is faulted in, no page may hold a newer or
// soon-stale copy of its bytes.
func (s *Store) dropPages(off, n int64) error {
	if n <= 0 || len(s.pages) == 0 {
		return nil
	}
	ps := int64(s.cfg.PageSize)
	for id := off / ps; id <= (off+n-1)/ps; id++ {
		p, ok := s.pages[id]
		if !ok {
			continue
		}
		if p.dirty {
			if err := s.writePage(p); err != nil {
				return err
			}
		}
		s.unlink(p)
		delete(s.pages, id)
	}
	return nil
}

// Close flushes both caches, closes, and (for stores we created)
// removes the backing file. It returns the first error of the
// flush → close → remove sequence; a flush failure does not stop the
// close and removal.
func (s *Store) Close() error {
	err := s.SyncTiles()
	if ferr := s.Flush(); err == nil {
		err = ferr
	}
	name := s.f.Name()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	if s.own {
		if rmErr := os.Remove(name); err == nil {
			err = rmErr
		}
	}
	return err
}

// Resident returns the number of pages currently cached.
func (s *Store) Resident() int { return len(s.pages) }

func (s *Store) moveToFront(p *page) {
	if s.head == p {
		return
	}
	s.unlink(p)
	s.pushFront(p)
}

func (s *Store) unlink(p *page) {
	if p.prev != nil {
		p.prev.next = p.next
	} else {
		s.head = p.next
	}
	if p.next != nil {
		p.next.prev = p.prev
	} else {
		s.tail = p.prev
	}
	p.prev, p.next = nil, nil
}

func (s *Store) pushFront(p *page) {
	p.next = s.head
	if s.head != nil {
		s.head.prev = p
	}
	s.head = p
	if s.tail == nil {
		s.tail = p
	}
}
