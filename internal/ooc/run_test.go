package ooc

import (
	"math"
	"math/rand"
	"testing"

	"gep/internal/core"
	"gep/internal/matrix"
)

// randomInput builds an n×n matrix whose diagonal dominates, so the
// division-based ops (GaussElim, LUFactor) stay finite.
func randomInput(n int, seed int64) *matrix.Dense[float64] {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.NewSquare[float64](n)
	m.Apply(func(i, j int, _ float64) float64 {
		if i == j {
			return float64(n) + rng.Float64()
		}
		return rng.NormFloat64()
	})
	return m
}

func bitsEqual(t *testing.T, label string, want, got *matrix.Dense[float64]) {
	t.Helper()
	n := want.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if math.Float64bits(want.At(i, j)) != math.Float64bits(got.At(i, j)) {
				t.Fatalf("%s: cell (%d,%d) = %x, want %x", label, i, j,
					math.Float64bits(got.At(i, j)), math.Float64bits(want.At(i, j)))
			}
		}
	}
}

// TestRunIGEPBitIdenticalToInCore: the tile-granular out-of-core
// driver produces Float64bits-identical results to the in-core fused
// engines, across ops × sets × tile sides × page sizes × prefetch
// on/off, under a cache budget that forces eviction and write-behind.
func TestRunIGEPBitIdenticalToInCore(t *testing.T) {
	const n = 32
	cases := []struct {
		name string
		op   core.Op[float64]
		set  core.UpdateSet
	}{
		{"minplus-full", core.MinPlus[float64]{}, core.Full{}},
		{"gauss-gaussian", core.GaussElim[float64]{}, core.Gaussian{}},
		{"lu-lu", core.LUFactor[float64]{}, core.LU{}},
	}
	in := randomInput(n, 42)
	for _, tc := range cases {
		for _, side := range []int{4, 8} {
			// Reference: the in-core fused engine at the same base size,
			// so both runs perform the identical block sequence (orders
			// can differ across base sizes for update functions outside
			// I-GEP's correctness class, e.g. min-plus with the negative
			// cycles a NormFloat64 input has).
			want := in.Clone()
			core.RunIGEP[float64](want, tc.op, tc.set, core.WithBaseSize[float64](side))
			for _, pageSize := range []int{64, 512} {
				for _, prefetch := range []bool{false, true} {
					// Budget of 4 tiles: a block can pin up to 4, so
					// every block cycles the cache.
					cache := int64(4 * side * side * 8)
					if cache < int64(pageSize) {
						cache = int64(pageSize)
					}
					s, err := Create(t.TempDir(), Config{PageSize: pageSize, CacheSize: cache})
					if err != nil {
						t.Fatal(err)
					}
					m := NewMatrix(s, n, 0, MortonTiledLayout(side))
					if err := m.Load(in); err != nil {
						t.Fatal(err)
					}
					s.ResetStats()
					if err := RunIGEP(m, tc.op, tc.set, RunOptions{Prefetch: prefetch}); err != nil {
						t.Fatal(err)
					}
					st := s.Stats()
					if st.TileReads == 0 || st.TileWrites == 0 {
						t.Fatalf("%s side=%d: no tile traffic recorded: %+v", tc.name, side, st)
					}
					got, err := m.Unload()
					if err != nil {
						t.Fatal(err)
					}
					bitsEqual(t, tc.name, want, got)
					if err := s.Close(); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
}

// TestRunIGEPMatchesElementPath: tile-granular and element-at-a-time
// out-of-core runs agree bit-for-bit (the two paths share nothing
// below the engine API).
func TestRunIGEPMatchesElementPath(t *testing.T) {
	const n, side = 16, 4
	in := randomInput(n, 9)
	op := core.LUFactor[float64]{}

	s1 := newTestStore(t, 64, 1024)
	m1 := NewMatrix(s1, n, 0, MortonTiledLayout(side))
	if err := m1.Load(in); err != nil {
		t.Fatal(err)
	}
	core.RunIGEP[float64](m1, op, core.LU{}, core.WithBaseSize[float64](side))
	if err := s1.Err(); err != nil {
		t.Fatal(err)
	}
	want, err := m1.Unload()
	if err != nil {
		t.Fatal(err)
	}

	s2 := newTestStore(t, 64, 1024)
	m2 := NewMatrix(s2, n, 0, MortonTiledLayout(side))
	if err := m2.Load(in); err != nil {
		t.Fatal(err)
	}
	if err := RunIGEP(m2, op, core.LU{}, RunOptions{Prefetch: true}); err != nil {
		t.Fatal(err)
	}
	got, err := m2.Unload()
	if err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "tile-vs-element", want, got)
}

// TestRunIGEPNeedsTiling: a row-major matrix has no tile structure and
// the driver must say so instead of faulting garbage.
func TestRunIGEPNeedsTiling(t *testing.T) {
	s := newTestStore(t, 64, 1024)
	m := NewMatrix(s, 8, 0, RowMajorLayout)
	if err := RunIGEP(m, core.MinPlus[float64]{}, core.Full{}, RunOptions{}); err == nil {
		t.Fatal("RunIGEP accepted a layout without tiles")
	}
}

// TestTileElementCoherence: writes through one regime are visible
// through the other, in both directions.
func TestTileElementCoherence(t *testing.T) {
	const n, side = 8, 4
	s := newTestStore(t, 64, 4096)
	m := NewMatrix(s, n, 0, MortonTiledLayout(side))

	// Element write, then tile read.
	m.Set(1, 2, 42)
	tile, err := m.PinTile(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tile.Data[1*side+2] != 42 {
		t.Fatalf("tile did not observe element write: %g", tile.Data[1*side+2])
	}
	// Tile write, then element read.
	tile.Data[3*side+1] = 7
	s.UnpinTile(tile, true)
	if got := m.At(3, 1); got != 7 {
		t.Fatalf("element did not observe tile write: %g", got)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	// Element accesses covered by a checksummed tile are served through
	// the (verified) tile path and may keep the tile resident; a sync
	// still empties the cache.
	if err := s.SyncTiles(); err != nil {
		t.Fatal(err)
	}
	if s.ResidentTiles() != 0 {
		t.Fatalf("sync left %d tiles resident", s.ResidentTiles())
	}
}

// TestPinAliasedTiles: pinning the same tile twice yields the same
// resident buffer (the aliasing TileKernel depends on), and pins nest.
func TestPinAliasedTiles(t *testing.T) {
	const n, side = 8, 4
	s := newTestStore(t, 64, 4096)
	m := NewMatrix(s, n, 0, MortonTiledLayout(side))
	a, err := m.PinTile(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.PinTile(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same tile pinned twice returned distinct buffers")
	}
	s.UnpinTile(a, false)
	s.UnpinTile(b, true)
	if err := s.SyncTiles(); err != nil {
		t.Fatal(err)
	}
}

// TestMortonTiledLayoutReuse is the regression test for the captured-
// parameter bug: one LayoutFunc value used for a small matrix first
// (n < block, which clamps) must not shrink the tile size of a later,
// larger matrix built from the same value.
func TestMortonTiledLayoutReuse(t *testing.T) {
	lf := MortonTiledLayout(8)
	s := newTestStore(t, 64, 4096)

	small := NewMatrix(s, 4, 0, lf) // n < block: clamps to 4...
	if got := small.Tiling().Side; got != 4 {
		t.Fatalf("small matrix tile side = %d, want 4", got)
	}
	large := NewMatrix(s, 16, small.Bytes(), lf) // ...which must not stick
	if got := large.Tiling().Side; got != 8 {
		t.Fatalf("large matrix tile side = %d, want 8 (layout block mutated by earlier clamp)", got)
	}

	// And both matrices address distinct, consistent cells.
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			large.Set(i, j, float64(100*i+j))
		}
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			small.Set(i, j, -float64(10*i+j))
		}
	}
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			if got := large.At(i, j); got != float64(100*i+j) {
				t.Fatalf("large At(%d,%d) = %g", i, j, got)
			}
		}
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
}
